// vidqual_lint v2 — repo-specific static analysis (DESIGN.md §4.12).
//
// A dependency-free analysis engine (no libclang): a real tokenizer
// (lint_tokens.h) feeds a brace/scope tracker (lint_scope.h) that
// attributes tokens to their enclosing namespace + function, so rules are
// flow-aware instead of line-local.  Rule families:
//
//   unordered-iter    Iteration over an unordered container (FlatMap64 /
//                     FlatSet64 / std::unordered_*) whose body accumulates
//                     floats or appends to ordered output, with no sort in
//                     the following window.  Flow-aware since v2: loops
//                     that only count or probe are clean, so the blanket
//                     suppressions of v1 are gone.          [scope: src/]
//   wall-clock        rand()/time()/clock()/std::chrono wall clocks /
//                     std::random_device outside util/rng, src/obs and
//                     src/serve.  All randomness flows through seeded
//                     streams or results are not reproducible.
//                                                  [scope: src/, tests/]
//   naked-thread      std::thread / std::jthread / std::async /
//                     pthread_create outside util/thread_pool (and the
//                     serve acceptor).  [scope: src/ tools/ bench/ tests/]
//   io-in-core        printf-family / std::cout|cerr|clog in the analysis
//                     layers; output goes through core/report.
//                                            [scope: src/core, src/stats]
//   positioned-throw  A `throw` whose message carries no position (line /
//                     record / offset / path).            [scope: src/gen]
//   raw-mutex         Naked std::mutex / std::condition_variable /
//                     lock_guard / manual .lock()/.unlock() outside
//                     src/util/mutex.h; vq::Mutex carries the thread-
//                     safety annotations.  [scope: src/ tools/ bench/ tests/]
//   hot-path          Heap allocation, locking, IO, `throw` or
//                     std::string construction inside a function named by
//                     tools/hot_paths.txt or a `// vq:hot` marker.
//                                            [scope: wherever manifested]
//   wire-contract     Cross-checks docs/wire_contracts.json against the
//                     token streams: every declared magic/version/size/cap
//                     constant must be pinned to its manifest value in its
//                     header, referenced by every declared writer and
//                     reader, and (for magics) spelled literally only at
//                     declared sites — a one-sided format bump fails lint.
//                                                       [scope: all files]
//
// Suppressions: `// vq-lint: allow(rule)` on the violating line or the
// line directly above silences that one finding; `// vq-lint:
// allow-file(rule)` anywhere in a file silences the rule for the whole
// file.  Both accept a comma-separated rule list.  Every suppression in
// the repo must carry a one-line justification next to it (reviewed, not
// machine-checked).
//
// Patterns inside comments and literals never fire (they are distinct
// token kinds) — which also lets this linter lint itself.

#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace vq::lint {

struct SourceFile {
  std::string path;     // repo-relative, '/'-separated (used for scoping)
  std::string content;  // full file text
};

struct Finding {
  std::string path;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string_view name;
  std::string_view summary;
};

/// Optional rule inputs.  Default-constructed config disables the
/// wire-contract rule and runs hot-path from `// vq:hot` markers only.
struct LintConfig {
  std::string wire_manifest_json;  // docs/wire_contracts.json content
  std::string wire_manifest_path = "docs/wire_contracts.json";
  std::string hot_paths_text;      // tools/hot_paths.txt content
};

/// The rule table, in evaluation order.
[[nodiscard]] const std::vector<RuleInfo>& rules();

/// Lints a set of files as one unit.  Two passes: the first tokenizes and
/// collects the names of variables/members declared with unordered
/// container types across *all* files (so `fold.leaves` in one TU
/// resolves against the declaration in the header), the second applies
/// every rule.  Returns unsuppressed findings ordered by (path, line).
[[nodiscard]] std::vector<Finding> run_lint(
    const std::vector<SourceFile>& files);
[[nodiscard]] std::vector<Finding> run_lint(
    const std::vector<SourceFile>& files, const LintConfig& config);

/// Formats one finding as "path:line: [rule] message".
[[nodiscard]] std::string format_finding(const Finding& f);

/// Formats one finding as a GitHub Actions annotation:
/// "::error file=path,line=N::[rule] message".
[[nodiscard]] std::string format_github_annotation(const Finding& f);

}  // namespace vq::lint
