// vidqual_lint — repo-specific static analysis (DESIGN.md §4.7).
//
// A fast, dependency-free, file-level linter (tokenizing line scanner, no
// libclang) for the invariants the generic tools cannot express:
//
//   unordered-iter    Iteration over an unordered container (FlatMap64 /
//                     FlatSet64 / std::unordered_*) with no sort within the
//                     following window.  Hash-order iteration that feeds
//                     reports or serialisation is the classic determinism
//                     bug; every legitimate use either sorts right after or
//                     carries a justified suppression.     [scope: src/]
//   wall-clock        rand()/srand()/time()/clock()/std::chrono wall clocks /
//                     std::random_device in core paths.  All randomness must
//                     flow through util/rng's seeded streams, or results are
//                     not reproducible from a seed; all timing flows through
//                     src/obs (Stopwatch/VQ_SPAN), whose durations feed
//                     observability output only.  [scope: src/, except
//                     util/rng and obs/]
//   naked-thread      std::thread / std::jthread / std::async / pthread_create
//                     outside util/thread_pool.  One component owns threads;
//                     everything else parallelises through it (and inherits
//                     its exception + determinism guarantees).
//                     [scope: src/, tools/, bench/]
//   io-in-core        printf-family / std::cout|cerr|clog writes in the
//                     analysis layers; human-facing output goes through
//                     core/report.                  [scope: src/core, src/stats]
//   positioned-throw  A `throw` whose message carries no position (line /
//                     record / offset / path).  Fault-tolerant ingest lives
//                     and dies on positioned errors (robust_io).
//                     [scope: src/gen]
//
// Suppressions: `// vq-lint: allow(rule)` on the violating line or the line
// directly above silences that one finding; `// vq-lint: allow-file(rule)`
// anywhere in a file silences the rule for the whole file.  Both accept a
// comma-separated rule list.  Every suppression in the repo must carry a
// one-line justification next to it (reviewed, not machine-checked).
//
// The scanner strips comments and string/char literals (handling raw
// strings and digit separators) before matching, so patterns inside
// literals never fire — which also lets this linter lint itself.

#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace vq::lint {

struct SourceFile {
  std::string path;     // repo-relative, '/'-separated (used for scoping)
  std::string content;  // full file text
};

struct Finding {
  std::string path;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string_view name;
  std::string_view summary;
};

/// The rule table, in evaluation order.
[[nodiscard]] const std::vector<RuleInfo>& rules();

/// Lints a set of files as one unit.  Two passes: the first collects the
/// names of variables/members declared with unordered container types
/// across *all* files (so `fold.leaves` in one TU resolves against the
/// declaration in the header), the second applies every rule.  Returns
/// unsuppressed findings ordered by (path, line).
[[nodiscard]] std::vector<Finding> run_lint(
    const std::vector<SourceFile>& files);

/// Formats one finding as "path:line: [rule] message".
[[nodiscard]] std::string format_finding(const Finding& f);

}  // namespace vq::lint
