// vidqual — command-line front end.
//
//   vidqual generate --epochs 48 --sessions 3000 --out trace.csv
//   vidqual analyze  --in trace.csv [--min-sessions 100] [--top 5]
//   vidqual convert  --in trace.csv --out trace.vqtc
//   vidqual whatif   --in trace.csv --metric JoinFailure --top-frac 0.01
//   vidqual monitor  --in trace.csv [--delay 1]
//
// Trace files ending in .vqtr use the row-wise binary container, .vqtc the
// out-of-core columnar container (src/gen/columnar.h); anything else is
// treated as CSV.  --format csv|binary|columnar overrides the extension.
// analyze and monitor stream .vqtc inputs one epoch at a time instead of
// materializing the trace.

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>

#include <algorithm>

#include "src/baseline/hhh.h"
#include "src/core/anomaly.h"
#include "src/core/monitor.h"
#include "src/core/report.h"
#include "src/core/overlap.h"
#include "src/core/pipeline.h"
#include "src/core/prevalence.h"
#include "src/core/whatif.h"
#include "src/gen/columnar.h"
#include "src/gen/robust_io.h"
#include "src/gen/trace_io.h"
#include "src/gen/tracegen.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/serve/producer.h"
#include "src/serve/server.h"
#include "src/util/args.h"

namespace {

using namespace vq;

/// Set by the SIGINT/SIGTERM handler; both the file-mode epoch loop and the
/// socket server poll it, so drain semantics are uniform: seal the current
/// epoch, write the checkpoint, exit 0.
volatile std::sig_atomic_t g_drain_requested = 0;

extern "C" void handle_drain_signal(int) { g_drain_requested = 1; }

void install_drain_handlers() {
  std::signal(SIGINT, handle_drain_signal);
  std::signal(SIGTERM, handle_drain_signal);
  // A producer that vanishes mid-write must surface as EPIPE, not kill us.
  std::signal(SIGPIPE, SIG_IGN);
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  vidqual generate --out FILE [--epochs N=48] [--sessions N=3000]\n"
      "                   [--seed S=2013] [--sites N=379] [--cdns N=19]\n"
      "                   [--asns N=2000] [--no-events]\n"
      "  vidqual analyze  --in FILE [--min-sessions N=auto] [--top K=5]\n"
      "                   [--on-error strict|quarantine|best-effort]\n"
      "                   [--workers N=auto] [--shards N=auto]\n"
      "                   [--incremental] [--max-cells N]\n"
      "                   [--stats-out FILE] [--trace-out FILE]\n"
      "  vidqual convert  --in FILE --out FILE [--format csv|binary|"
      "columnar]\n"
      "                   [--on-error strict|quarantine|best-effort]\n"
      "  vidqual whatif   --in FILE [--metric NAME=JoinFailure]\n"
      "                   [--top-frac F=0.01] [--rank coverage|prevalence|"
      "persistence]\n"
      "                   [--min-sessions N=auto] [--reactive-delay H]\n"
      "  vidqual monitor  --in FILE [--delay H=1] [--min-sessions N=auto]\n"
      "                   [--checkpoint FILE] [--on-error strict|quarantine|"
      "best-effort]\n"
      "                   [--workers N=1] [--shards N=1] [--incremental]\n"
      "                   [--stop-after N] [--stats-out FILE] "
      "[--trace-out FILE]\n"
      "  vidqual monitor  --serve ADDR [--delay H=1] [--min-sessions N=1000]\n"
      "                   [--checkpoint FILE] [--on-error strict|quarantine|"
      "best-effort]\n"
      "                   [--queue-rows N=65536] [--overload block|shed]\n"
      "                   [--push-deadline-ms N=200] [--idle-timeout-ms "
      "N=30000]\n"
      "                   [--read-timeout-ms N=10000] [--max-frame-bytes N]\n"
      "                   [--max-conns N=64] [--serve-drain]\n"
      "                   [--workers N=1] [--shards N=1] [--incremental]\n"
      "  vidqual feed     --in FILE --connect ADDR [--rows-per-frame N=4096]\n"
      "                   [--on-error strict|quarantine|best-effort]\n"
      "  vidqual timeline --in FILE [--min-sessions N=auto] [--z 3.0]\n"
      "  vidqual report   --in FILE [--min-sessions N=auto] [--top K=5]\n"
      "\nFILEs ending in .vqtr are binary, .vqtc columnar; anything else is\n"
      "CSV (--format overrides the extension on generate/convert output).\n"
      "analyze/monitor stream .vqtc inputs at O(one epoch) memory.\n"
      "monitor --checkpoint saves detector state after every epoch (atomic\n"
      "temp-then-rename) and resumes from it when the file exists, so a\n"
      "killed monitor replays no epoch and re-raises no incident.\n"
      "monitor --serve ADDR listens on \"unix:<path>\" or \"<ipv4>:<port>\"\n"
      "for live producers (vidqual feed) instead of reading a file; SIGTERM\n"
      "or SIGINT drains: seal pending epochs, checkpoint, exit 0.\n"
      "--stats-out writes the deterministic metric snapshot (byte-identical\n"
      "for any --workers/--shards); --trace-out writes per-stage spans as\n"
      "chrome://tracing / Perfetto JSON.\n"
      "--incremental maintains the cluster lattice across epochs with\n"
      "per-leaf deltas instead of re-expanding every epoch; results are\n"
      "bit-identical, per-epoch cost proportional to leaf churn.\n"
      "--max-cells N bounds the lattice by sketch-based admission: only\n"
      "each epoch's heavy leaves (space-saving summary, N/127 leaf budget)\n"
      "enter the exact lattice; global ratios stay exact.\n");
  return 2;
}

enum class TraceFormat { kCsv, kBinary, kColumnar };

bool ends_with(std::string_view path, std::string_view suffix) {
  return path.size() > suffix.size() &&
         path.substr(path.size() - suffix.size()) == suffix;
}

TraceFormat format_for_path(std::string_view path) {
  if (ends_with(path, ".vqtr")) return TraceFormat::kBinary;
  if (ends_with(path, ".vqtc")) return TraceFormat::kColumnar;
  return TraceFormat::kCsv;
}

const char* format_name(TraceFormat f) {
  switch (f) {
    case TraceFormat::kCsv: return "csv";
    case TraceFormat::kBinary: return "binary";
    case TraceFormat::kColumnar: return "columnar";
  }
  return "?";
}

/// Output format: explicit --format wins, otherwise the path's extension.
/// nullopt (after a message) on an unknown --format name.
std::optional<TraceFormat> resolve_format(const ArgParser& args,
                                          std::string_view path) {
  const auto name = args.option("format");
  if (!name.has_value()) return format_for_path(path);
  if (*name == "csv") return TraceFormat::kCsv;
  if (*name == "binary") return TraceFormat::kBinary;
  if (*name == "columnar") return TraceFormat::kColumnar;
  std::fprintf(stderr,
               "unknown --format '%s' (use csv, binary, or columnar)\n",
               std::string{*name}.c_str());
  return std::nullopt;
}

void write_trace_as(TraceFormat format, const std::filesystem::path& path,
                    const SessionTable& table, const AttributeSchema& schema) {
  switch (format) {
    case TraceFormat::kCsv: write_trace_csv(path, table, schema); return;
    case TraceFormat::kBinary: write_trace_binary(path, table, schema); return;
    case TraceFormat::kColumnar:
      write_trace_columnar(path, table, schema);
      return;
  }
}

LoadedTrace load(std::string_view path) {
  const std::filesystem::path p{std::string{path}};
  switch (format_for_path(path)) {
    case TraceFormat::kBinary: return read_trace_binary(p);
    case TraceFormat::kColumnar: return read_trace_columnar(p);
    case TraceFormat::kCsv: break;
  }
  return read_trace_csv(p);
}

/// --on-error POLICY (default strict); exits via usage() on a bad name, so
/// callers receive a valid policy or the process is already done.
std::optional<ErrorPolicy> on_error_policy(const ArgParser& args) {
  const auto name = args.option("on-error").value_or("strict");
  const auto policy = parse_error_policy(name);
  if (!policy.has_value()) {
    std::fprintf(stderr,
                 "unknown --on-error '%s' (use strict, quarantine, or "
                 "best-effort)\n",
                 std::string{name}.c_str());
  }
  return policy;
}

/// Loads with the row-error policy and reports data quality on stderr.
RobustLoadedTrace load_robust(std::string_view path, ErrorPolicy policy) {
  const std::filesystem::path p{std::string{path}};
  const RobustReadOptions options{.policy = policy};
  RobustLoadedTrace loaded = [&] {
    switch (format_for_path(path)) {
      case TraceFormat::kBinary: return read_trace_binary_robust(p, options);
      case TraceFormat::kColumnar:
        return read_trace_columnar_robust(p, options);
      case TraceFormat::kCsv: break;
    }
    return read_trace_csv_robust(p, options);
  }();
  if (loaded.report.degraded()) {
    std::fprintf(stderr, "ingest (%s): %s\n",
                 std::string{error_policy_name(policy)}.c_str(),
                 loaded.report.summary().c_str());
  }
  return loaded;
}

/// --stats-out / --trace-out plumbing shared by analyze and monitor.
struct ObsRequest {
  std::optional<std::string> stats_path;
  std::optional<std::string> trace_path;
};

/// Parses the flags and flips the observability kill switch on when either
/// output was requested, so spans and timing histograms record for the run.
ObsRequest obs_request(const ArgParser& args) {
  ObsRequest req;
  if (const auto s = args.option("stats-out")) req.stats_path = std::string{*s};
  if (const auto t = args.option("trace-out")) req.trace_path = std::string{*t};
  if (req.stats_path.has_value() || req.trace_path.has_value()) {
    obs::set_enabled(true);
  }
  return req;
}

/// Writes the requested observability outputs; returns 0 on success. The
/// stats snapshot contains deterministic (kStable) metrics only, so it is
/// byte-identical across workers/shards settings on the same input.
int write_obs_outputs(const ObsRequest& req) {
  if (req.stats_path.has_value()) {
    std::ofstream out{*req.stats_path, std::ios::trunc};
    out << obs::Registry::global().snapshot_json();
    if (!out) {
      std::fprintf(stderr, "error: cannot write --stats-out %s\n",
                   req.stats_path->c_str());
      return 1;
    }
  }
  if (req.trace_path.has_value()) {
    std::ofstream out{*req.trace_path, std::ios::trunc};
    obs::TraceRecorder::global().write_chrome_trace(out);
    if (!out) {
      std::fprintf(stderr, "error: cannot write --trace-out %s\n",
                   req.trace_path->c_str());
      return 1;
    }
  }
  return 0;
}

std::uint32_t auto_min_sessions_from(std::uint64_t total_sessions,
                                     std::uint32_t num_epochs,
                                     const ArgParser& args) {
  const auto explicit_value = args.option_u64("min-sessions", 0);
  if (explicit_value > 0) {
    return static_cast<std::uint32_t>(explicit_value);
  }
  // ~2% of a mean epoch, floored: the statistical calibration DESIGN.md
  // derives from the paper's 1.5x ~= 2 sigma rule.
  const std::uint64_t per_epoch =
      num_epochs == 0 ? 0 : total_sessions / num_epochs;
  return static_cast<std::uint32_t>(std::max<std::uint64_t>(
      30, per_epoch / 50));
}

std::uint32_t auto_min_sessions(const SessionTable& table,
                                const ArgParser& args) {
  return auto_min_sessions_from(table.size(), table.num_epochs(), args);
}

std::optional<Metric> parse_metric(std::string_view name) {
  for (const Metric m : kAllMetrics) {
    if (metric_name(m) == name) return m;
  }
  return std::nullopt;
}

int cmd_generate(const ArgParser& args) {
  const auto out = args.option("out");
  if (!out.has_value()) return usage();

  WorldConfig world_config;
  world_config.num_sites =
      static_cast<std::uint32_t>(args.option_u64("sites", 379));
  world_config.num_cdns =
      static_cast<std::uint32_t>(args.option_u64("cdns", 19));
  world_config.num_asns =
      static_cast<std::uint32_t>(args.option_u64("asns", 2000));
  world_config.seed = args.option_u64("seed", 2013);
  const World world = World::build(world_config);

  const auto epochs =
      static_cast<std::uint32_t>(args.option_u64("epochs", 48));
  EventSchedule events = EventSchedule::none(epochs);
  if (!args.flag("no-events")) {
    EventScheduleConfig event_config;
    event_config.num_epochs = epochs;
    event_config.seed = world_config.seed + 1;
    events = EventSchedule::generate(world, event_config);
  }

  TraceConfig trace_config;
  trace_config.num_epochs = epochs;
  trace_config.sessions_per_epoch =
      static_cast<std::uint32_t>(args.option_u64("sessions", 3000));
  trace_config.seed = world_config.seed + 2;
  const SessionTable trace = generate_trace(world, events, trace_config);

  const auto format = resolve_format(args, *out);
  if (!format.has_value()) return 2;
  const std::filesystem::path path{std::string{*out}};
  write_trace_as(*format, path, trace, world.schema());
  std::printf("wrote %zu sessions over %u epochs to %s (%ju bytes)\n",
              trace.size(), trace.num_epochs(), path.string().c_str(),
              static_cast<std::uintmax_t>(std::filesystem::file_size(path)));
  return 0;
}

/// convert: re-encode a trace between the three containers.  Reads with the
/// row-error policy (so a damaged input can still be rescued into a clean
/// output) and writes the resolved output format.
int cmd_convert(const ArgParser& args) {
  const auto in = args.option("in");
  const auto out = args.option("out");
  if (!in.has_value() || !out.has_value()) return usage();
  const auto policy = on_error_policy(args);
  if (!policy.has_value()) return 2;
  const auto format = resolve_format(args, *out);
  if (!format.has_value()) return 2;
  const RobustLoadedTrace loaded = load_robust(*in, *policy);
  const std::filesystem::path path{std::string{*out}};
  write_trace_as(*format, path, loaded.table, loaded.schema);
  std::printf("converted %zu sessions over %u epochs to %s (%s, %ju bytes)\n",
              loaded.table.size(), loaded.table.num_epochs(),
              path.string().c_str(), format_name(*format),
              static_cast<std::uintmax_t>(std::filesystem::file_size(path)));
  return 0;
}

/// In-memory EpochColumnsSource over a loaded SessionTable, so streaming-only
/// modes (--incremental, --max-cells) also apply to csv/binary inputs.
class TableColumnsSource final : public EpochColumnsSource {
 public:
  TableColumnsSource(const SessionTable& table,
                     std::vector<std::uint32_t> degraded)
      : table_{table}, degraded_{std::move(degraded)} {}

  [[nodiscard]] std::uint32_t num_epochs() const override {
    return table_.num_epochs();
  }

  bool read_epoch(std::uint32_t e, SessionColumns& out) override {
    out.clear();
    for (const Session& s : table_.epoch(e)) out.push_back(s);
    return std::binary_search(degraded_.begin(), degraded_.end(), e);
  }

 private:
  const SessionTable& table_;
  std::vector<std::uint32_t> degraded_;
};

int cmd_analyze(const ArgParser& args) {
  const auto in = args.option("in");
  if (!in.has_value()) return usage();
  const auto policy = on_error_policy(args);
  if (!policy.has_value()) return 2;
  const ObsRequest obs_req = obs_request(args);  // before ingest spans start
  PipelineConfig config;
  config.workers = static_cast<std::size_t>(args.option_u64("workers", 0));
  config.shards = static_cast<std::size_t>(args.option_u64("shards", 0));
  config.incremental = args.flag("incremental");

  // --max-cells: sketch-bounded admission replaces the exact pass-1 fold.
  const auto max_cells =
      static_cast<std::size_t>(args.option_u64("max-cells", 0));
  std::optional<SketchAdmission> sketch;
  if (max_cells > 0) {
    sketch.emplace(SketchAdmissionParams{.max_cells = max_cells});
    config.fold_provider = [&sketch](const SessionColumns& columns,
                                     const ProblemThresholds& thresholds,
                                     std::uint32_t epoch) {
      return sketch->fold(columns, thresholds, epoch);
    };
  }
  // Both knobs are streaming-only (pipeline.h); non-columnar inputs go
  // through the in-memory adapter above when either is set.
  const bool force_streaming = config.incremental || max_cells > 0;

  // Columnar inputs stream epoch-by-epoch (O(one epoch) memory); the other
  // formats materialize.  Both paths produce identical reports on the same
  // sessions — the streaming fold is bit-identical to the row-wise one.
  PipelineResult result;
  AttributeSchema schema;
  if (format_for_path(*in) == TraceFormat::kColumnar) {
    ColumnarReader reader{std::filesystem::path{std::string{*in}},
                          RobustReadOptions{.policy = *policy}};
    config.cluster_params.min_sessions = auto_min_sessions_from(
        reader.total_sessions(), reader.num_epochs(), args);
    std::fprintf(stderr, "analyzing %zu sessions over %u epochs "
                 "(min_sessions=%u)...\n",
                 static_cast<std::size_t>(reader.total_sessions()),
                 reader.num_epochs(), config.cluster_params.min_sessions);
    result = run_pipeline_streaming(reader, config);
    const IngestReport report = reader.report();
    publish_ingest_metrics(report);
    if (report.degraded()) {
      std::fprintf(stderr, "ingest (%s): %s\n",
                   std::string{error_policy_name(*policy)}.c_str(),
                   report.summary().c_str());
    }
    schema = reader.take_schema();
  } else {
    RobustLoadedTrace loaded = load_robust(*in, *policy);
    const std::vector<std::uint32_t> degraded =
        loaded.report.degraded_epochs();
    config.cluster_params.min_sessions = auto_min_sessions(loaded.table, args);
    std::fprintf(stderr, "analyzing %zu sessions over %u epochs "
                 "(min_sessions=%u)...\n",
                 loaded.table.size(), loaded.table.num_epochs(),
                 config.cluster_params.min_sessions);
    if (force_streaming) {
      TableColumnsSource source{loaded.table, degraded};
      result = run_pipeline_streaming(source, config);
    } else {
      result = run_pipeline(loaded.table, config, degraded);
    }
    schema = std::move(loaded.schema);
  }
  if (sketch.has_value()) {
    const SketchAdmissionReport& rep = sketch->report();
    std::fprintf(stderr,
                 "sketch admission: %ju of %ju sessions admitted over %ju "
                 "epochs (budget %zu leaves/epoch, %ju admitted leaves, %ju "
                 "evictions)\n",
                 static_cast<std::uintmax_t>(rep.sessions_admitted),
                 static_cast<std::uintmax_t>(rep.sessions_seen),
                 static_cast<std::uintmax_t>(rep.epochs),
                 sketch->leaf_capacity(),
                 static_cast<std::uintmax_t>(rep.leaves_admitted),
                 static_cast<std::uintmax_t>(rep.evictions));
  }
  if (!result.degraded_epochs.empty()) {
    std::printf("data quality: %zu epoch(s) degraded by quarantined rows:",
                result.degraded_epochs.size());
    for (const std::uint32_t e : result.degraded_epochs) {
      std::printf(" %u", e);
    }
    std::printf("\n");
  }
  const auto top_k = args.option_u64("top", 5);

  for (const Metric m : kAllMetrics) {
    const auto agg = result.aggregates(m);
    double prob_ratio = 0.0;
    for (std::uint32_t e = 0; e < result.num_epochs; ++e) {
      const auto& a = result.at(m, e).analysis;
      prob_ratio += a.sessions == 0
                        ? 0.0
                        : static_cast<double>(a.problem_sessions) /
                              static_cast<double>(a.sessions);
    }
    prob_ratio /= std::max(1u, result.num_epochs);
    std::printf("\n%s: problem ratio %.3f | %.1f problem clusters/epoch | "
                "%.1f critical | coverage %.2f\n",
                std::string(metric_name(m)).c_str(), prob_ratio,
                agg.mean_problem_clusters, agg.mean_critical_clusters,
                agg.mean_critical_coverage);
    for (const std::uint64_t raw :
         top_critical_keys(result, m, top_k)) {
      std::printf("  %s\n",
                  schema.describe(ClusterKey::from_raw(raw)).c_str());
    }
  }
  return write_obs_outputs(obs_req);
}

int cmd_whatif(const ArgParser& args) {
  const auto in = args.option("in");
  if (!in.has_value()) return usage();
  const auto metric =
      parse_metric(args.option("metric").value_or("JoinFailure"));
  if (!metric.has_value()) {
    std::fprintf(stderr, "unknown metric (use BufRatio, Bitrate, JoinTime, "
                         "JoinFailure)\n");
    return 2;
  }
  RankBy rank = RankBy::kCoverage;
  const auto rank_name = args.option("rank").value_or("coverage");
  if (rank_name == "prevalence") rank = RankBy::kPrevalence;
  else if (rank_name == "persistence") rank = RankBy::kPersistence;
  else if (rank_name != "coverage") {
    std::fprintf(stderr, "unknown --rank\n");
    return 2;
  }

  const LoadedTrace loaded = load(*in);
  PipelineConfig config;
  config.cluster_params.min_sessions = auto_min_sessions(loaded.table, args);
  const PipelineResult result = run_pipeline(loaded.table, config);
  const WhatIfAnalyzer whatif{result};

  const double top_frac = args.option_double("top-frac", 0.01);
  const double fractions[] = {top_frac};
  const auto sweep = whatif.topk_sweep(*metric, rank, fractions);
  std::printf("fixing the top %.2f%% of %zu distinct critical clusters "
              "(%s-ranked) alleviates %.1f%% of %s problem sessions\n",
              100.0 * top_frac, whatif.distinct_critical_count(*metric),
              std::string(rank_by_name(rank)).c_str(),
              100.0 * sweep[0].alleviated_fraction,
              std::string(metric_name(*metric)).c_str());

  if (args.flag("reactive-delay")) {
    const auto delay =
        static_cast<std::uint32_t>(args.option_u64("reactive-delay", 1));
    const auto outcome = whatif.reactive(*metric, delay);
    std::printf("reactive strategy (fix after %u h): %.1f%% alleviated "
                "(potential %.1f%%)\n",
                delay, 100.0 * outcome.alleviated_fraction,
                100.0 * outcome.potential_fraction);
  }
  return 0;
}

/// monitor --serve ADDR: the live-socket form of cmd_monitor.  Same
/// detector, same checkpoint container, same incident print format — the
/// only difference is where the rows come from, which is what the
/// file-vs-socket differential test pins.
int cmd_monitor_serve(const ArgParser& args, std::string_view address) {
  const auto policy = on_error_policy(args);
  if (!policy.has_value()) return 2;
  const ObsRequest obs_req = obs_request(args);

  MonitorConfig config;
  // No trace to auto-derive from on a live socket: --min-sessions or the
  // library default.  Differential runs pass the same explicit value to
  // both modes.
  const auto min_sessions = args.option_u64("min-sessions", 0);
  if (min_sessions > 0) {
    config.cluster_params.min_sessions =
        static_cast<std::uint32_t>(min_sessions);
  }
  config.escalate_after =
      static_cast<std::uint32_t>(args.option_u64("delay", 1));
  // A live feed cannot take the kThrow arm; stale rows are counted and
  // dropped (server.h).
  config.order_policy = EpochOrderPolicy::kSkipStale;
  config.workers = static_cast<std::uint32_t>(args.option_u64("workers", 1));
  config.shards = static_cast<std::uint32_t>(args.option_u64("shards", 1));
  config.incremental = args.flag("incremental");
  StreamingDetector detector{config};

  serve::ServeConfig serve_config;
  serve_config.address = std::string{address};
  serve_config.row_policy = *policy;
  serve_config.queue_capacity_rows =
      static_cast<std::size_t>(args.option_u64("queue-rows", 1u << 16));
  const auto overload = args.option("overload").value_or("block");
  if (overload == "shed") {
    serve_config.overload = serve::OverloadPolicy::kShedOldest;
  } else if (overload != "block") {
    std::fprintf(stderr, "unknown --overload '%s' (use block or shed)\n",
                 std::string{overload}.c_str());
    return 2;
  }
  serve_config.push_deadline =
      std::chrono::milliseconds{args.option_u64("push-deadline-ms", 200)};
  serve_config.idle_timeout =
      std::chrono::milliseconds{args.option_u64("idle-timeout-ms", 30'000)};
  serve_config.read_timeout =
      std::chrono::milliseconds{args.option_u64("read-timeout-ms", 10'000)};
  serve_config.max_frame_bytes = static_cast<std::size_t>(
      args.option_u64("max-frame-bytes", serve::kDefaultMaxFrameBytes));
  serve_config.max_connections =
      static_cast<std::size_t>(args.option_u64("max-conns", 64));
  serve_config.drain_on_idle = args.flag("serve-drain");
  serve_config.drain_signal = &g_drain_requested;

  const auto checkpoint = args.option("checkpoint");
  if (checkpoint.has_value()) {
    serve_config.checkpoint_path = std::string{*checkpoint};
    if (std::filesystem::exists(serve_config.checkpoint_path)) {
      detector.load_checkpoint(serve_config.checkpoint_path);
      std::fprintf(stderr, "resuming from %s at epoch %u\n",
                   serve_config.checkpoint_path.string().c_str(),
                   detector.has_ingested() ? detector.last_epoch() + 1 : 0);
    }
  }

  AttributeSchema schema;
  serve::Server server{serve_config, detector, schema};
  server.set_event_callback(
      [](const IncidentEvent& event, const std::string& description) {
        if (event.update == IncidentUpdate::kNew) return;  // alert on action
        std::printf("%02u:00 %-9s %-11s %s (streak %u h, %.0f sessions)\n",
                    event.epoch,
                    std::string(incident_update_name(event.update)).c_str(),
                    std::string(metric_name(event.incident.metric)).c_str(),
                    description.c_str(), event.incident.streak,
                    event.incident.attributed);
        std::fflush(stdout);
      });
  install_drain_handlers();
  if (server.port() != 0) {
    std::fprintf(stderr, "serving on port %u\n", server.port());
  } else {
    std::fprintf(stderr, "serving on %s\n",
                 std::string{address}.c_str());
  }
  const int rc = server.run();

  std::printf("total incidents opened:");
  for (const Metric m : kAllMetrics) {
    std::printf(" %s=%ju", std::string(metric_name(m)).c_str(),
                static_cast<std::uintmax_t>(detector.total_opened(m)));
  }
  std::printf("\n");
  if (detector.suppressed_clears() > 0) {
    std::fprintf(stderr, "suppressed %ju clear(s) on degraded epochs\n",
                 static_cast<std::uintmax_t>(detector.suppressed_clears()));
  }
  const serve::ServeStats stats = server.stats();
  std::fprintf(stderr,
               "serve: %ju conns, rows received=%ju admitted=%ju "
               "quarantined=%ju shed=%ju stale=%ju, %ju epochs sealed, "
               "queue highwater=%ju%s\n",
               static_cast<std::uintmax_t>(stats.connections_accepted),
               static_cast<std::uintmax_t>(stats.rows_received),
               static_cast<std::uintmax_t>(stats.rows_admitted),
               static_cast<std::uintmax_t>(stats.rows_quarantined),
               static_cast<std::uintmax_t>(stats.rows_shed),
               static_cast<std::uintmax_t>(stats.rows_stale),
               static_cast<std::uintmax_t>(stats.epochs_sealed),
               static_cast<std::uintmax_t>(stats.queue_highwater),
               stats.accounting_exact() ? "" : " [ACCOUNTING MISMATCH]");
  const int obs_rc = write_obs_outputs(obs_req);
  return rc != 0 ? rc : obs_rc;
}

int cmd_monitor(const ArgParser& args) {
  if (const auto serve_addr = args.option("serve")) {
    return cmd_monitor_serve(args, *serve_addr);
  }
  const auto in = args.option("in");
  if (!in.has_value()) return usage();
  const auto policy = on_error_policy(args);
  if (!policy.has_value()) return 2;
  const ObsRequest obs_req = obs_request(args);  // before ingest spans start

  // Columnar inputs stream: one epoch's rows are materialized per detector
  // ingest instead of the whole trace.
  const bool streaming = format_for_path(*in) == TraceFormat::kColumnar;
  std::optional<ColumnarReader> reader;
  std::optional<RobustLoadedTrace> loaded;
  std::vector<std::uint32_t> degraded;
  std::uint32_t num_epochs = 0;
  std::uint64_t total_sessions = 0;
  if (streaming) {
    reader.emplace(std::filesystem::path{std::string{*in}},
                   RobustReadOptions{.policy = *policy});
    num_epochs = reader->num_epochs();
    total_sessions = reader->total_sessions();
  } else {
    loaded.emplace(load_robust(*in, *policy));
    degraded = loaded->report.degraded_epochs();
    num_epochs = loaded->table.num_epochs();
    total_sessions = loaded->table.size();
  }
  const AttributeSchema& schema = streaming ? reader->schema()
                                            : loaded->schema;

  MonitorConfig config;
  config.cluster_params.min_sessions =
      auto_min_sessions_from(total_sessions, num_epochs, args);
  config.escalate_after =
      static_cast<std::uint32_t>(args.option_u64("delay", 1));
  config.workers = static_cast<std::uint32_t>(args.option_u64("workers", 1));
  config.shards = static_cast<std::uint32_t>(args.option_u64("shards", 1));
  config.incremental = args.flag("incremental");
  StreamingDetector detector{config};

  // Resume: an existing checkpoint restores the registry/counters and skips
  // every epoch it already processed, so the resumed run's event stream
  // continues exactly where the killed run's left off.
  const auto checkpoint = args.option("checkpoint");
  std::filesystem::path checkpoint_path;
  std::uint32_t start = 0;
  if (checkpoint.has_value()) {
    checkpoint_path = std::string{*checkpoint};
    if (std::filesystem::exists(checkpoint_path)) {
      detector.load_checkpoint(checkpoint_path);
      if (detector.has_ingested()) start = detector.last_epoch() + 1;
      std::fprintf(stderr, "resuming from %s at epoch %u\n",
                   checkpoint_path.string().c_str(), start);
    }
  }
  // --stop-after N: process N epochs then exit without the summary line (a
  // deterministic stand-in for a mid-stream kill; CI diffs the concatenated
  // partial outputs against an uninterrupted run).
  const auto stop_after = args.option_u64("stop-after", 0);

  // Same drain semantics as serve mode (DESIGN.md §4.11): SIGINT/SIGTERM
  // finishes the epoch in flight, checkpoints it, and exits 0.
  install_drain_handlers();

  std::uint64_t processed = 0;
  SessionColumns columns;  // streaming scratch, reused across epochs
  std::vector<Session> rows;
  for (std::uint32_t e = start; e < num_epochs; ++e) {
    bool degraded_epoch = false;
    std::span<const Session> sessions;
    if (streaming) {
      degraded_epoch = reader->read_epoch(e, columns);
      rows.clear();
      columns.append_rows(e, rows);
      sessions = rows;
    } else {
      degraded_epoch =
          std::binary_search(degraded.begin(), degraded.end(), e);
      sessions = loaded->table.epoch(e);
    }
    const EpochDataQuality quality{.degraded = degraded_epoch};
    for (const IncidentEvent& event : detector.ingest(sessions, e, quality)) {
      if (event.update == IncidentUpdate::kNew) continue;  // alert on action
      std::printf("%02u:00 %-9s %-11s %s (streak %u h, %.0f sessions)\n", e,
                  std::string(incident_update_name(event.update)).c_str(),
                  std::string(metric_name(event.incident.metric)).c_str(),
                  schema.describe(event.incident.key).c_str(),
                  event.incident.streak, event.incident.attributed);
    }
    if (checkpoint.has_value()) detector.save_checkpoint(checkpoint_path);
    if (g_drain_requested != 0) {
      std::fprintf(stderr, "drain: sealed epoch %u%s, exiting\n", e,
                   checkpoint.has_value() ? " (checkpointed)" : "");
      return write_obs_outputs(obs_req);
    }
    if (stop_after != 0 && ++processed >= stop_after) {
      return write_obs_outputs(obs_req);
    }
  }
  if (streaming) {
    const IngestReport report = reader->report();
    publish_ingest_metrics(report);
    if (report.degraded()) {
      std::fprintf(stderr, "ingest (%s): %s\n",
                   std::string{error_policy_name(*policy)}.c_str(),
                   report.summary().c_str());
    }
  }
  std::printf("total incidents opened:");
  for (const Metric m : kAllMetrics) {
    std::printf(" %s=%ju", std::string(metric_name(m)).c_str(),
                static_cast<std::uintmax_t>(detector.total_opened(m)));
  }
  std::printf("\n");
  if (detector.suppressed_clears() > 0) {
    std::fprintf(stderr, "suppressed %ju clear(s) on degraded epochs\n",
                 static_cast<std::uintmax_t>(detector.suppressed_clears()));
  }
  return write_obs_outputs(obs_req);
}

/// feed: stream a trace file into a `monitor --serve` instance.  The table
/// is epoch-sorted after finalize, so send_rows naturally satisfies the
/// server's non-decreasing-epoch contract.
int cmd_feed(const ArgParser& args) {
  const auto in = args.option("in");
  const auto addr = args.option("connect");
  if (!in.has_value() || !addr.has_value()) return usage();
  const auto policy = on_error_policy(args);
  if (!policy.has_value()) return 2;
  std::signal(SIGPIPE, SIG_IGN);  // a dying server should EPIPE, not kill us

  const RobustLoadedTrace loaded = load_robust(*in, *policy);
  serve::Producer producer{std::string{*addr}};
  producer.send_hello(loaded.schema);
  const auto rows_per_frame = static_cast<std::size_t>(
      args.option_u64("rows-per-frame", 4096));
  producer.send_rows(loaded.table.sessions(), rows_per_frame);
  producer.close();
  std::printf("fed %zu rows over %u epochs to %s\n", loaded.table.size(),
              loaded.table.num_epochs(), std::string{*addr}.c_str());
  return 0;
}

int cmd_timeline(const ArgParser& args) {
  const auto in = args.option("in");
  if (!in.has_value()) return usage();
  const LoadedTrace loaded = load(*in);
  PipelineConfig config;
  config.cluster_params.min_sessions = auto_min_sessions(loaded.table, args);
  const PipelineResult result = run_pipeline(loaded.table, config);

  // Hourly problem-ratio sparklines.
  static constexpr const char* kBlocks[] = {" ", ".", ":", "-", "=",
                                            "+", "*", "#"};
  for (const Metric m : kAllMetrics) {
    std::vector<double> series;
    double peak = 1e-9;
    for (std::uint32_t e = 0; e < result.num_epochs; ++e) {
      const auto& a = result.at(m, e).analysis;
      const double ratio = a.sessions == 0
                               ? 0.0
                               : static_cast<double>(a.problem_sessions) /
                                     static_cast<double>(a.sessions);
      series.push_back(ratio);
      peak = std::max(peak, ratio);
    }
    std::printf("%-12s peak %.3f |", std::string(metric_name(m)).c_str(),
                peak);
    for (const double ratio : series) {
      const auto level = static_cast<std::size_t>(ratio / peak * 7.0);
      std::printf("%s", kBlocks[std::min<std::size_t>(level, 7)]);
    }
    std::printf("|\n");
  }

  // Anomalous epochs with suspects.
  AnomalyParams anomaly_params;
  anomaly_params.z_threshold = args.option_double("z", 3.0);
  const auto anomalies = detect_ratio_anomalies(result, anomaly_params);
  std::printf("\nanomalous epochs (z >= %.1f):\n", anomaly_params.z_threshold);
  if (anomalies.empty()) std::printf("  none\n");
  for (const RatioAnomaly& a : anomalies) {
    std::printf("  epoch %3u %-12s ratio %.3f (expected %.3f, z=%.1f)\n",
                a.anomaly.index, std::string(metric_name(a.metric)).c_str(),
                a.anomaly.value, a.anomaly.expected, a.anomaly.zscore);
    for (const ClusterKey& suspect : a.suspects) {
      std::printf("      suspect: %s\n",
                  loaded.schema.describe(suspect).c_str());
    }
  }

  // Longest-lived critical clusters.
  std::printf("\nlongest critical-cluster streaks:\n");
  for (const Metric m : kAllMetrics) {
    const auto report = build_prevalence(critical_cluster_keys(result, m),
                                         result.num_epochs);
    const ClusterTimeline* longest = nullptr;
    for (const auto& t : report.timelines) {
      if (longest == nullptr || t.max_persistence > longest->max_persistence) {
        longest = &t;
      }
    }
    if (longest != nullptr) {
      std::printf("  %-12s %-36s %u h (prevalence %.0f%%)\n",
                  std::string(metric_name(m)).c_str(),
                  loaded.schema.describe(longest->key).c_str(),
                  longest->max_persistence, 100.0 * longest->prevalence);
    }
  }
  return 0;
}

int cmd_report(const ArgParser& args) {
  const auto in = args.option("in");
  if (!in.has_value()) return usage();
  const LoadedTrace loaded = load(*in);
  PipelineConfig config;
  config.cluster_params.min_sessions = auto_min_sessions(loaded.table, args);
  const PipelineResult result = run_pipeline(loaded.table, config);
  ReportOptions options;
  options.top_clusters = args.option_u64("top", 5);
  std::fputs(
      render_report(loaded.table, result, loaded.schema, options).c_str(),
      stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args{argc, argv};
  const std::string_view command = args.positional(0);
  try {
    if (command == "generate") return cmd_generate(args);
    if (command == "analyze") return cmd_analyze(args);
    if (command == "convert") return cmd_convert(args);
    if (command == "whatif") return cmd_whatif(args);
    if (command == "monitor") return cmd_monitor(args);
    if (command == "feed") return cmd_feed(args);
    if (command == "timeline") return cmd_timeline(args);
    if (command == "report") return cmd_report(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
