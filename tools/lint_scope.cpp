#include "tools/lint_scope.h"

#include <algorithm>
#include <array>

namespace vq::lint {

namespace {

enum class FrameKind { kNamespace, kType, kFunction, kBlock };

struct Frame {
  FrameKind kind = FrameKind::kBlock;
  std::string segment;         // namespace/type name for qualification
  std::size_t span_index = 0;  // into functions_ when kind == kFunction
};

[[nodiscard]] bool is_kw(const Token& t, std::string_view kw) {
  return t.kind == TokKind::kIdent && t.text == kw;
}

[[nodiscard]] bool is_punct(const Token& t, std::string_view p) {
  return t.kind == TokKind::kPunct && t.text == p;
}

constexpr std::array<std::string_view, 4> kClassKeys = {"class", "struct",
                                                        "union", "enum"};

constexpr std::array<std::string_view, 8> kNotDeclNames = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof"};

/// The statement parser: consumes one declaration/definition at
/// namespace/type scope, pushing at most one frame.  See lint_scope.h for
/// the grammar sketch.
class Parser {
 public:
  Parser(const std::vector<Token>& toks, std::vector<Frame>& stack,
         std::vector<FunctionSpan>& functions)
      : t_(toks), stack_(stack), functions_(functions) {}

  /// Parses the statement starting at `i` (not preproc, not '}');
  /// returns the index to resume at (always > i).  Sets *pushed_function
  /// when the statement opened a function body.
  std::size_t statement(std::size_t i, bool* pushed_function);

 private:
  const std::vector<Token>& t_;
  std::vector<Frame>& stack_;
  std::vector<FunctionSpan>& functions_;

  [[nodiscard]] std::size_t n() const { return t_.size(); }

  /// Next non-preprocessor token at or after `i`; n() when exhausted.
  [[nodiscard]] std::size_t skip_preproc(std::size_t i) const {
    while (i < n() && t_[i].preproc) ++i;
    return i;
  }

  /// Previous non-preprocessor token strictly before `i`; n() when none.
  [[nodiscard]] std::size_t prev_tok(std::size_t i) const {
    while (i-- > 0) {
      if (!t_[i].preproc) return i;
    }
    return n();
  }

  /// `i` points at an opening bracket; returns the index one past its
  /// match, counting all of (), [], {} in one depth (lambdas inside
  /// argument lists nest correctly).
  [[nodiscard]] std::size_t skip_balanced(std::size_t i) const {
    int depth = 0;
    for (; i < n(); ++i) {
      if (t_[i].preproc || t_[i].kind != TokKind::kPunct) continue;
      const std::string& p = t_[i].text;
      if (p == "(" || p == "[" || p == "{") ++depth;
      if (p == ")" || p == "]" || p == "}") {
        if (--depth == 0) return i + 1;
      }
    }
    return n();
  }

  /// One past the closing '>' of "template <...>" at `i`; `i` if absent.
  [[nodiscard]] std::size_t skip_template_header(std::size_t i) const {
    if (i >= n() || !is_kw(t_[i], "template")) return i;
    std::size_t j = skip_preproc(i + 1);
    if (j >= n() || !is_punct(t_[j], "<")) return i;
    int depth = 0;
    for (; j < n(); ++j) {
      if (t_[j].preproc || t_[j].kind != TokKind::kPunct) continue;
      if (t_[j].text == "<") ++depth;
      if (t_[j].text == "<<") depth += 2;
      if (t_[j].text == ">") --depth;
      if (t_[j].text == ">>") depth -= 2;
      if (depth <= 0) return j + 1;
    }
    return i;
  }

  [[nodiscard]] std::string qualify(const std::string& name) const {
    std::string q;
    for (const Frame& f : stack_) {
      if ((f.kind == FrameKind::kNamespace || f.kind == FrameKind::kType) &&
          !f.segment.empty()) {
        q += f.segment;
        q += "::";
      }
    }
    return q + name;
  }

  void push_function(const std::string& name, std::size_t name_line,
                     std::size_t body_open) {
    Frame fr;
    fr.kind = FrameKind::kFunction;
    fr.span_index = functions_.size();
    FunctionSpan span;
    span.qualified = qualify(name);
    span.name_line = name_line;
    span.body_open = body_open;
    span.body_close = n() == 0 ? 0 : n() - 1;
    functions_.push_back(std::move(span));
    stack_.push_back(std::move(fr));
  }

  /// Declarator name ending just before the '(' at `open`:
  /// `A::B::name`, `~name`, `operator@`, `operator type`.  Empty when the
  /// preceding token cannot head a declarator.
  struct Name {
    std::string text;
    std::size_t line = 0;
  };
  [[nodiscard]] Name name_before(std::size_t open) const {
    Name out;
    std::size_t p = prev_tok(open);
    if (p == n()) return out;
    if (t_[p].kind == TokKind::kPunct) {
      // operator@ — walk back over the operator's punctuation.
      std::size_t q = p;
      std::vector<std::size_t> punct_toks;
      while (q != n() && t_[q].kind == TokKind::kPunct) {
        punct_toks.push_back(q);
        q = prev_tok(q);
      }
      if (q != n() && is_kw(t_[q], "operator")) {
        out.text = "operator";
        for (auto it = punct_toks.rbegin(); it != punct_toks.rend(); ++it) {
          out.text += t_[*it].text;
        }
        out.line = t_[q].line;
      }
      return out;
    }
    if (t_[p].kind != TokKind::kIdent) return out;
    for (const std::string_view bad : kNotDeclNames) {
      if (t_[p].text == bad) return out;
    }
    std::size_t begin = p;
    std::vector<std::size_t> parts{p};
    for (;;) {
      const std::size_t colon = prev_tok(begin);
      if (colon == n() || !is_punct(t_[colon], "::")) break;
      const std::size_t outer = prev_tok(colon);
      if (outer == n() || t_[outer].kind != TokKind::kIdent) break;
      parts.push_back(outer);
      begin = outer;
    }
    std::string name;
    const std::size_t tilde = prev_tok(begin);
    const std::size_t op = prev_tok(begin);
    if (op != n() && is_kw(t_[op], "operator")) {
      name = "operator ";  // conversion operator
    } else if (tilde != n() && is_punct(t_[tilde], "~")) {
      name = "~";
    }
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
      if (it != parts.rbegin()) name += "::";
      name += t_[*it].text;
    }
    out.text = std::move(name);
    out.line = t_[p].line;
    return out;
  }

  /// After a candidate declarator + parameter list at `i`: consumes
  /// qualifiers / annotation macros / trailing return / ctor-inits.
  /// Returns the resume index; outcomes: body opened (function pushed),
  /// declaration ended at ';', or `bail` set with the index to re-scan
  /// from because this was not a function after all.
  std::size_t qualifiers(std::size_t i, const Name& name, bool* opened,
                         std::size_t* bail) {
    bool in_trailing_return = false;
    while ((i = skip_preproc(i)) < n()) {
      const Token& tok = t_[i];
      if (is_punct(tok, ";")) return i + 1;
      if (is_punct(tok, "{")) {
        push_function(name.text, name.line, i);
        *opened = true;
        return i + 1;
      }
      if (is_punct(tok, "=")) return consume_initializer(i + 1);
      if (is_punct(tok, ":")) return ctor_inits(i + 1, name, opened, bail);
      if (in_trailing_return) {
        // Any type tokens allowed until one of the terminators above.
        if (is_punct(tok, "(") || is_punct(tok, "[")) {
          i = skip_balanced(i);
        } else {
          ++i;
        }
        continue;
      }
      if (is_punct(tok, "->")) {
        in_trailing_return = true;
        ++i;
        continue;
      }
      if (is_kw(tok, "const") || is_kw(tok, "noexcept") ||
          is_kw(tok, "override") || is_kw(tok, "final") ||
          is_kw(tok, "mutable") || is_kw(tok, "try") ||
          is_punct(tok, "&") || is_punct(tok, "&&")) {
        ++i;
        const std::size_t j = skip_preproc(i);
        if (j < n() && is_punct(t_[j], "(") && is_kw(tok, "noexcept")) {
          i = skip_balanced(j);
        }
        continue;
      }
      if (tok.kind == TokKind::kIdent) {
        // Annotation macro: IDENT(...) between the parameter list and the
        // body (VQ_REQUIRES(mu_), VQ_ACQUIRE(), ...).
        const std::size_t j = skip_preproc(i + 1);
        if (j < n() && is_punct(t_[j], "(")) {
          i = skip_balanced(j);
          continue;
        }
      }
      *bail = i;  // not a function declarator after all
      return i;
    }
    return n();
  }

  /// Constructor member initializers: `name(expr)` / `name{expr}` groups
  /// until the body '{'.  A '{' directly after an identifier is a member
  /// brace-init; any other top-level '{' is the body.
  std::size_t ctor_inits(std::size_t i, const Name& name, bool* opened,
                         std::size_t* bail) {
    bool prev_was_ident = false;
    while ((i = skip_preproc(i)) < n()) {
      const Token& tok = t_[i];
      if (is_punct(tok, "(") || is_punct(tok, "[")) {
        i = skip_balanced(i);
        prev_was_ident = false;
        continue;
      }
      if (is_punct(tok, "{")) {
        if (prev_was_ident) {
          i = skip_balanced(i);
          prev_was_ident = false;
          continue;
        }
        push_function(name.text, name.line, i);
        *opened = true;
        return i + 1;
      }
      if (is_punct(tok, ";") || is_punct(tok, "}")) {
        *bail = i;  // bitfield or base list that never opened — give up
        return i;
      }
      prev_was_ident = tok.kind == TokKind::kIdent;
      ++i;
    }
    return n();
  }

  /// `= initializer ;` with full nesting — also covers `= default;`,
  /// `= delete;`, aggregate `= { ... };` and lambda initializers.
  [[nodiscard]] std::size_t consume_initializer(std::size_t i) const {
    while ((i = skip_preproc(i)) < n()) {
      const Token& tok = t_[i];
      if (is_punct(tok, "(") || is_punct(tok, "[") || is_punct(tok, "{")) {
        i = skip_balanced(i);
        continue;
      }
      if (is_punct(tok, ";")) return i + 1;
      if (is_punct(tok, "}")) return i;  // enclosing scope closes
      ++i;
    }
    return n();
  }
};

std::size_t Parser::statement(std::size_t i, bool* pushed_function) {
  *pushed_function = false;
  const std::size_t start = i;

  // Access specifiers ("public:") inside class bodies.
  if (is_kw(t_[i], "public") || is_kw(t_[i], "private") ||
      is_kw(t_[i], "protected")) {
    const std::size_t j = skip_preproc(i + 1);
    if (j < n() && is_punct(t_[j], ":")) return j + 1;
  }

  // namespace [name] { ... }   |   namespace alias = ...;
  {
    std::size_t j = i;
    if (is_kw(t_[j], "inline")) j = skip_preproc(j + 1);
    if (j < n() && is_kw(t_[j], "namespace")) {
      std::string nsname;
      std::size_t k = skip_preproc(j + 1);
      while (k < n() &&
             (t_[k].kind == TokKind::kIdent || is_punct(t_[k], "::"))) {
        nsname += t_[k].text;
        k = skip_preproc(k + 1);
      }
      if (k < n() && is_punct(t_[k], "{")) {
        Frame fr;
        fr.kind = FrameKind::kNamespace;
        fr.segment = std::move(nsname);
        stack_.push_back(std::move(fr));
        return k + 1;
      }
      // Alias or using-directive: run to ';'.
      while (k < n() && !is_punct(t_[k], ";")) ++k;
      return k < n() ? k + 1 : n();
    }
  }

  i = skip_template_header(i);
  if (is_punct(t_[i], "{")) {
    // A bare block (or extern "C" caught below on re-entry).
    stack_.push_back(Frame{});
    return i + 1;
  }

  bool have_classkey = false;
  bool extern_linkage = false;
  std::string classname;
  std::size_t j = i;
  while ((j = skip_preproc(j)) < n()) {
    const Token& tok = t_[j];
    if (tok.kind == TokKind::kIdent) {
      if (std::any_of(
              kClassKeys.begin(), kClassKeys.end(),
              [&](std::string_view kw) { return is_kw(tok, kw); })) {
        // Class-key: capture the type name (skip "class" of enum class,
        // alignas(...) and final).
        have_classkey = true;
        std::size_t k = skip_preproc(j + 1);
        if (k < n() && is_kw(t_[k], "class")) k = skip_preproc(k + 1);
        while (k < n() && is_kw(t_[k], "alignas")) {
          const std::size_t g = skip_preproc(k + 1);
          k = g < n() && is_punct(t_[g], "(") ? skip_balanced(g) : k + 1;
          k = skip_preproc(k);
        }
        if (k < n() && t_[k].kind == TokKind::kIdent &&
            !is_kw(t_[k], "final")) {
          classname = t_[k].text;
          j = k + 1;
          continue;
        }
        ++j;
        continue;
      }
      if (is_kw(tok, "extern")) {
        const std::size_t k = skip_preproc(j + 1);
        if (k < n() && t_[k].kind == TokKind::kString) extern_linkage = true;
        ++j;
        continue;
      }
      if (is_kw(tok, "operator")) {
        // operator@ / operator() / operator type — find the param list.
        std::size_t k = skip_preproc(j + 1);
        if (k < n() && is_punct(t_[k], "(")) {
          const std::size_t maybe_call = skip_preproc(skip_balanced(k));
          if (maybe_call < n() && is_punct(t_[maybe_call], "(")) {
            k = maybe_call;  // operator()(params)
          }
        } else {
          while (k < n() && !is_punct(t_[k], "(") && !is_punct(t_[k], ";") &&
                 !is_punct(t_[k], "{")) {
            k = skip_preproc(k + 1);
          }
        }
        if (k < n() && is_punct(t_[k], "(")) {
          Name nm;
          nm.line = tok.line;
          nm.text = "operator";
          for (std::size_t w = skip_preproc(j + 1); w < k;
               w = skip_preproc(w + 1)) {
            nm.text += t_[w].text;
          }
          std::size_t bail = n();
          const std::size_t after =
              qualifiers(skip_balanced(k), nm, pushed_function, &bail);
          if (bail == n()) return after;
          j = bail;
          continue;
        }
        ++j;
        continue;
      }
      ++j;
      continue;
    }
    if (is_punct(tok, ";")) return j + 1;
    if (is_punct(tok, "=")) return consume_initializer(j + 1);
    if (is_punct(tok, "[")) {
      j = skip_balanced(j);
      continue;
    }
    if (is_punct(tok, "(")) {
      const Name nm = name_before(j);
      if (nm.text.empty()) {
        j = skip_balanced(j);
        continue;
      }
      std::size_t bail = n();
      const std::size_t after =
          qualifiers(skip_balanced(j), nm, pushed_function, &bail);
      if (bail == n()) return after;
      j = bail;
      continue;
    }
    if (is_punct(tok, "{")) {
      if (have_classkey) {
        Frame fr;
        fr.kind = FrameKind::kType;
        fr.segment = std::move(classname);
        stack_.push_back(std::move(fr));
        return j + 1;
      }
      if (extern_linkage) {
        stack_.push_back(Frame{});  // extern "C" { ... }
        return j + 1;
      }
      // Brace initializer without '=' (`Foo x{1};`) — consume and go on.
      j = skip_balanced(j);
      continue;
    }
    if (is_punct(tok, "}")) return j;  // enclosing scope closes
    ++j;
  }
  return std::max(start + 1, j);
}

}  // namespace

ScopeMap::ScopeMap(const std::vector<Token>& toks) {
  std::vector<Frame> stack;
  Parser parser{toks, stack, functions_};

  std::size_t current_span = functions_.size();  // sentinel: none
  const auto in_function = [&] { return current_span < functions_.size(); };

  std::size_t i = 0;
  while (i < toks.size()) {
    const Token& tok = toks[i];
    if (tok.preproc) {
      ++i;
      continue;
    }
    if (is_punct(tok, "}")) {
      if (!stack.empty()) {
        const Frame fr = stack.back();
        stack.pop_back();
        if (fr.kind == FrameKind::kFunction) {
          functions_[fr.span_index].body_close = i;
          current_span = functions_.size();
        }
      }
      ++i;
      continue;
    }
    if (in_function()) {
      if (is_punct(tok, "{")) {
        Frame fr;
        fr.kind = FrameKind::kBlock;
        stack.push_back(std::move(fr));
      }
      ++i;
      continue;
    }
    bool pushed = false;
    const std::size_t next = parser.statement(i, &pushed);
    if (pushed) current_span = stack.back().span_index;
    i = next <= i ? i + 1 : next;
  }

  // Unterminated bodies keep their provisional close at the last token.
}

const std::string& ScopeMap::function_at(std::size_t i) const {
  static const std::string kNone;
  // Spans are disjoint (bodies at namespace/type scope never nest), so a
  // linear check is fine for the file sizes this lints; the common callers
  // iterate spans directly.
  for (const FunctionSpan& f : functions_) {
    if (i > f.body_open && i < f.body_close) return f.qualified;
    if (f.body_open > i) break;
  }
  return kNone;
}

}  // namespace vq::lint
