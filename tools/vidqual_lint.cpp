// vidqual_lint CLI — runs the repo-specific lint rules (tools/lint_core.h)
// over files and directories given on the command line.
//
//   vidqual_lint [--list-rules] <file-or-dir>...
//
// Directories are walked recursively for .h/.cpp/.cc.  Paths are reported
// as given (CI invokes it from the repo root with `src tools bench`, so the
// scoping rules see repo-relative paths).  Exit status: 0 when clean, 1
// when any finding survives suppressions, 2 on usage/IO errors.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "tools/lint_core.h"

namespace {

namespace fs = std::filesystem;

[[nodiscard]] bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cpp" || ext == ".cc";
}

[[nodiscard]] bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in{p, std::ios::binary};
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--list-rules") {
      for (const vq::lint::RuleInfo& r : vq::lint::rules()) {
        std::printf("%-17s %s\n", std::string{r.name}.c_str(),
                    std::string{r.summary}.c_str());
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: vidqual_lint [--list-rules] <file-or-dir>...\n");
      return 0;
    }
    roots.emplace_back(arg);
  }
  if (roots.empty()) {
    std::fprintf(stderr,
                 "usage: vidqual_lint [--list-rules] <file-or-dir>...\n");
    return 2;
  }

  std::vector<vq::lint::SourceFile> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    const fs::file_status st = fs::status(root, ec);
    if (ec) {
      std::fprintf(stderr, "vidqual_lint: cannot stat %s\n", root.c_str());
      return 2;
    }
    std::vector<fs::path> paths;
    if (fs::is_directory(st)) {
      for (const auto& entry : fs::recursive_directory_iterator{root}) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          paths.push_back(entry.path());
        }
      }
    } else {
      paths.emplace_back(root);
    }
    for (const fs::path& p : paths) {
      vq::lint::SourceFile f;
      f.path = p.generic_string();
      if (!read_file(p, f.content)) {
        std::fprintf(stderr, "vidqual_lint: cannot read %s\n",
                     f.path.c_str());
        return 2;
      }
      files.push_back(std::move(f));
    }
  }

  const std::vector<vq::lint::Finding> findings = vq::lint::run_lint(files);
  for (const vq::lint::Finding& f : findings) {
    std::fprintf(stderr, "%s\n", vq::lint::format_finding(f).c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "vidqual_lint: %zu finding(s) in %zu file(s)\n",
                 findings.size(), files.size());
    return 1;
  }
  std::printf("vidqual_lint: %zu file(s) clean\n", files.size());
  return 0;
}
