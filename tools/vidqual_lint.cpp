// vidqual_lint CLI — runs the repo-specific lint rules (tools/lint_core.h)
// over files and directories given on the command line.
//
//   vidqual_lint [--list-rules] [--github]
//                [--wire-manifest <json>] [--hot-paths <txt>]
//                <file-or-dir>...
//
// Directories are walked recursively for .h/.cpp/.cc, skipping any
// directory named lint_fixtures (those files contain planted violations
// for tests/test_lint.cpp).  Paths are reported as given (CI invokes it
// from the repo root with `src tools bench tests`, so the scoping rules
// see repo-relative paths).  --github additionally prints findings as
// GitHub Actions annotations (::error file=...,line=...) on stdout.
// Exit status: 0 when clean, 1 when any finding survives suppressions,
// 2 on usage/IO errors.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "tools/lint_core.h"
#include "tools/lint_scope.h"
#include "tools/lint_tokens.h"

namespace {

namespace fs = std::filesystem;

constexpr std::string_view kUsage =
    "usage: vidqual_lint [--list-rules] [--github] "
    "[--wire-manifest <json>] [--hot-paths <txt>] <file-or-dir>...\n";

[[nodiscard]] bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cpp" || ext == ".cc";
}

/// True when any directory segment of `p` is lint_fixtures — planted
/// violations for the engine's own tests must not fail a tree-wide run.
[[nodiscard]] bool in_fixture_dir(const fs::path& p) {
  for (const fs::path& part : p.parent_path()) {
    if (part == "lint_fixtures") return true;
  }
  return false;
}

[[nodiscard]] bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in{p, std::ios::binary};
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  bool github = false;
  bool dump_functions = false;
  std::string wire_manifest_path;
  std::string hot_paths_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--list-rules") {
      for (const vq::lint::RuleInfo& r : vq::lint::rules()) {
        std::printf("%-17s %s\n", std::string{r.name}.c_str(),
                    std::string{r.summary}.c_str());
      }
      return 0;
    }
    if (arg == "--github") {
      github = true;
      continue;
    }
    if (arg == "--dump-functions") {
      dump_functions = true;
      continue;
    }
    if (arg == "--wire-manifest" || arg == "--hot-paths") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "vidqual_lint: %s needs a file argument\n",
                     std::string{arg}.c_str());
        return 2;
      }
      (arg == "--wire-manifest" ? wire_manifest_path : hot_paths_path) =
          argv[++i];
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", std::string{kUsage}.c_str());
      return 0;
    }
    roots.emplace_back(arg);
  }
  if (roots.empty()) {
    std::fprintf(stderr, "%s", std::string{kUsage}.c_str());
    return 2;
  }

  vq::lint::LintConfig config;
  if (!wire_manifest_path.empty()) {
    config.wire_manifest_path = wire_manifest_path;
    if (!read_file(wire_manifest_path, config.wire_manifest_json)) {
      std::fprintf(stderr, "vidqual_lint: cannot read %s\n",
                   wire_manifest_path.c_str());
      return 2;
    }
  }
  if (!hot_paths_path.empty() &&
      !read_file(hot_paths_path, config.hot_paths_text)) {
    std::fprintf(stderr, "vidqual_lint: cannot read %s\n",
                 hot_paths_path.c_str());
    return 2;
  }

  std::vector<vq::lint::SourceFile> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    const fs::file_status st = fs::status(root, ec);
    if (ec) {
      std::fprintf(stderr, "vidqual_lint: cannot stat %s\n", root.c_str());
      return 2;
    }
    std::vector<fs::path> paths;
    if (fs::is_directory(st)) {
      for (const auto& entry : fs::recursive_directory_iterator{root}) {
        if (entry.is_regular_file() && lintable(entry.path()) &&
            !in_fixture_dir(entry.path())) {
          paths.push_back(entry.path());
        }
      }
    } else {
      paths.emplace_back(root);
    }
    for (const fs::path& p : paths) {
      vq::lint::SourceFile f;
      f.path = p.generic_string();
      if (!read_file(p, f.content)) {
        std::fprintf(stderr, "vidqual_lint: cannot read %s\n",
                     f.path.c_str());
        return 2;
      }
      files.push_back(std::move(f));
    }
  }

  if (dump_functions) {
    // Maintenance aid for tools/hot_paths.txt: the qualified function
    // names the scope tracker attributes, with body line ranges.
    for (const vq::lint::SourceFile& f : files) {
      const std::vector<vq::lint::Token> toks = vq::lint::tokenize(f.content);
      const vq::lint::ScopeMap scopes{toks};
      for (const vq::lint::FunctionSpan& fn : scopes.functions()) {
        std::printf("%s:%zu-%zu %s\n", f.path.c_str(),
                    toks[fn.body_open].line, toks[fn.body_close].line,
                    fn.qualified.c_str());
      }
    }
    return 0;
  }

  const std::vector<vq::lint::Finding> findings =
      vq::lint::run_lint(files, config);
  for (const vq::lint::Finding& f : findings) {
    std::fprintf(stderr, "%s\n", vq::lint::format_finding(f).c_str());
    if (github) {
      std::printf("%s\n", vq::lint::format_github_annotation(f).c_str());
    }
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "vidqual_lint: %zu finding(s) in %zu file(s)\n",
                 findings.size(), files.size());
    return 1;
  }
  std::printf("vidqual_lint: %zu file(s) clean\n", files.size());
  return 0;
}
