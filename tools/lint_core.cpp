#include "tools/lint_core.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <unordered_set>

#include "tools/lint_manifest.h"
#include "tools/lint_scope.h"
#include "tools/lint_tokens.h"

namespace vq::lint {

namespace {

// --- token helpers -----------------------------------------------------------

[[nodiscard]] bool is_ident(const Token& t, std::string_view name) {
  return t.kind == TokKind::kIdent && t.text == name;
}

[[nodiscard]] bool is_punct(const Token& t, std::string_view p) {
  return t.kind == TokKind::kPunct && t.text == p;
}

/// True when the identifier at `i` is written `std::<ident>`.
[[nodiscard]] bool std_qualified(const std::vector<Token>& t,
                                 std::size_t i) {
  return i >= 2 && is_punct(t[i - 1], "::") && is_ident(t[i - 2], "std");
}

/// True when the next token after `i` is "(" — i.e. the identifier at `i`
/// is called (or declared with parameters).
[[nodiscard]] bool called(const std::vector<Token>& t, std::size_t i) {
  return i + 1 < t.size() && is_punct(t[i + 1], "(");
}

/// One past the matching closer for the opening bracket at `i`, counting
/// (), [] and {} in one depth.
[[nodiscard]] std::size_t skip_balanced(const std::vector<Token>& t,
                                        std::size_t i) {
  int depth = 0;
  for (; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kPunct) continue;
    const std::string& p = t[i].text;
    if (p == "(" || p == "[" || p == "{") ++depth;
    if (p == ")" || p == "]" || p == "}") {
      if (--depth == 0) return i + 1;
    }
  }
  return t.size();
}

/// One past the '>' matching the '<' at `i` (argument lists; "<<"/">>"
/// count twice, as in nested template closers).
[[nodiscard]] std::size_t skip_angles(const std::vector<Token>& t,
                                      std::size_t i) {
  int depth = 0;
  for (; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kPunct) continue;
    const std::string& p = t[i].text;
    if (p == "<") ++depth;
    if (p == "<<") depth += 2;
    if (p == ">") --depth;
    if (p == ">>") depth -= 2;
    if ((p == ">" || p == ">>") && depth <= 0) return i + 1;
    if (p == ";" || p == "{") break;  // not an argument list after all
  }
  return t.size();
}

/// Numeric value of a literal token ("27", "0x1b", "1'000"), or -1 when
/// it does not parse as an integer.
[[nodiscard]] long long literal_value(const std::string& text) {
  std::string digits;
  digits.reserve(text.size());
  for (const char c : text) {
    if (c != '\'') digits.push_back(c);
  }
  int base = 10;
  std::size_t i = 0;
  if (digits.size() > 2 && digits[0] == '0' &&
      (digits[1] == 'x' || digits[1] == 'X')) {
    base = 16;
    i = 2;
  } else if (digits.size() > 2 && digits[0] == '0' &&
             (digits[1] == 'b' || digits[1] == 'B')) {
    base = 2;
    i = 2;
  }
  long long acc = 0;
  bool any = false;
  for (; i < digits.size(); ++i) {
    const char c =
        static_cast<char>(std::tolower(static_cast<unsigned char>(digits[i])));
    int d = -1;
    if (c >= '0' && c <= '9') d = c - '0';
    if (base == 16 && c >= 'a' && c <= 'f') d = c - 'a' + 10;
    if (d < 0 || d >= base) {
      // Suffixes (u, l, f) end the number; a '.' makes it non-integral.
      if (c == '.') return -1;
      break;
    }
    acc = acc * base + d;
    any = true;
  }
  return any ? acc : -1;
}

// --- suppressions ------------------------------------------------------------

struct Suppressions {
  // (rule, line) pairs; line 0 = whole file.
  std::vector<std::pair<std::string, std::size_t>> allows;

  [[nodiscard]] bool covers(std::string_view rule, std::size_t line) const {
    return std::any_of(
        allows.begin(), allows.end(), [&](const auto& a) {
          return a.first == rule &&
                 (a.second == 0 || a.second == line || a.second + 1 == line);
        });
  }
};

Suppressions parse_suppressions(std::string_view raw) {
  Suppressions out;
  std::size_t line = 1;
  std::size_t start = 0;
  while (start <= raw.size()) {
    std::size_t eol = raw.find('\n', start);
    if (eol == std::string_view::npos) eol = raw.size();
    const std::string_view text = raw.substr(start, eol - start);
    const std::size_t tag = text.find("vq-lint:");
    if (tag != std::string_view::npos) {
      const std::string_view rest = text.substr(tag + 8);
      const bool file_wide =
          rest.find("allow-file(") != std::string_view::npos;
      const std::size_t open = rest.find('(');
      const std::size_t close =
          open == std::string_view::npos ? std::string_view::npos
                                         : rest.find(')', open);
      if (open != std::string_view::npos &&
          close != std::string_view::npos) {
        std::string_view list = rest.substr(open + 1, close - open - 1);
        while (!list.empty()) {
          std::size_t comma = list.find(',');
          std::string_view item = list.substr(0, comma);
          while (!item.empty() && item.front() == ' ') item.remove_prefix(1);
          while (!item.empty() && item.back() == ' ') item.remove_suffix(1);
          if (!item.empty()) {
            out.allows.emplace_back(std::string{item},
                                    file_wide ? 0 : line);
          }
          if (comma == std::string_view::npos) break;
          list.remove_prefix(comma + 1);
        }
      }
    }
    start = eol + 1;
    ++line;
  }
  return out;
}

/// 1-based lines carrying a hot-path marker: a `//` comment whose last
/// word is `vq:hot`.  Requiring end-of-line keeps prose mentions (and
/// this engine's own string literals) from registering as markers; a
/// justification for the marker goes on the line above.
std::vector<std::size_t> parse_hot_markers(std::string_view raw) {
  std::vector<std::size_t> out;
  std::size_t line = 1;
  std::size_t start = 0;
  const std::string_view marker = "vq:hot";
  while (start <= raw.size()) {
    std::size_t eol = raw.find('\n', start);
    if (eol == std::string_view::npos) eol = raw.size();
    std::string_view text = raw.substr(start, eol - start);
    while (!text.empty() &&
           (text.back() == ' ' || text.back() == '\t' ||
            text.back() == '\r')) {
      text.remove_suffix(1);
    }
    if (text.size() >= marker.size() &&
        text.compare(text.size() - marker.size(), marker.size(), marker) ==
            0 &&
        text.find("//") != std::string_view::npos &&
        text.find("//") < text.size() - marker.size()) {
      out.push_back(line);
    }
    start = eol + 1;
    ++line;
  }
  return out;
}

// --- path scoping ------------------------------------------------------------

[[nodiscard]] std::string normalize(std::string_view path) {
  std::string p{path};
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

/// True when `path` has `dir` ("src/core") as a leading or embedded
/// directory-segment prefix — so both "src/core/x.cpp" and
/// "/root/repo/src/core/x.cpp" match.
[[nodiscard]] bool under(std::string_view path, std::string_view dir) {
  const std::string p = normalize(path);
  const std::string d = std::string{dir} + "/";
  if (p.rfind(d, 0) == 0) return true;
  return p.find("/" + d) != std::string::npos;
}

/// True when `path` names the file `file` ("src/util/rng.cpp") exactly,
/// allowing an absolute prefix.
[[nodiscard]] bool is_file(std::string_view path, std::string_view file) {
  const std::string p = normalize(path);
  if (p == file) return true;
  return p.size() > file.size() &&
         p.compare(p.size() - file.size(), file.size(), file) == 0 &&
         p[p.size() - file.size() - 1] == '/';
}

// --- per-file context --------------------------------------------------------

struct FileCtx {
  const SourceFile* src = nullptr;
  std::vector<Token> toks;
  std::vector<FunctionSpan> functions;
  Suppressions suppressions;
  std::vector<std::size_t> hot_markers;
  std::unordered_set<std::string> float_names;  // per-file, by design
};

struct Sink {
  std::vector<Finding>* findings;
  const FileCtx* ctx;
  std::string_view rule;

  void emit(std::size_t line, std::string message) const {
    if (ctx->suppressions.covers(rule, line)) return;
    findings->push_back(Finding{ctx->src->path, line, std::string{rule},
                                std::move(message)});
  }
};

// --- registries --------------------------------------------------------------

constexpr std::array<std::string_view, 6> kUnorderedTypes = {
    "unordered_map",      "unordered_set", "unordered_multimap",
    "unordered_multiset", "FlatMap64",     "FlatSet64"};

/// Collects identifiers declared with an unordered container type:
/// `Type<...> [*&]* name` where the name is not immediately followed by
/// '(' (which would be a function declarator).  Cross-file by design: a
/// member declared in a header resolves against uses in every TU.
void collect_unordered_names(const std::vector<Token>& toks,
                             std::unordered_set<std::string>& names) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const bool unordered =
        std::any_of(kUnorderedTypes.begin(), kUnorderedTypes.end(),
                    [&](std::string_view ty) { return toks[i].text == ty; });
    if (!unordered) continue;
    std::size_t j = i + 1;
    if (j < toks.size() && is_punct(toks[j], "<")) j = skip_angles(toks, j);
    while (j < toks.size() &&
           (is_punct(toks[j], "*") || is_punct(toks[j], "&") ||
            is_punct(toks[j], "&&") || is_ident(toks[j], "const"))) {
      ++j;
    }
    if (j >= toks.size() || toks[j].kind != TokKind::kIdent) continue;
    if (called(toks, j)) continue;  // function returning the container
    names.insert(toks[j].text);
  }
}

/// Collects identifiers declared as raw float/double in this file —
/// `float|double [*&]* name` — the accumulator names the flow-aware
/// unordered-iter rule watches.  Per-file (unlike the container registry):
/// a `double value` somewhere else in the tree must not poison generic
/// code like flat_hash_map's merge helpers.
void collect_float_names(const std::vector<Token>& toks,
                         std::unordered_set<std::string>& names) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i], "float") && !is_ident(toks[i], "double")) {
      continue;
    }
    std::size_t j = i + 1;
    while (j < toks.size() &&
           (is_punct(toks[j], "*") || is_punct(toks[j], "&") ||
            is_punct(toks[j], "&&") || is_ident(toks[j], "const"))) {
      ++j;
    }
    if (j >= toks.size() || toks[j].kind != TokKind::kIdent) continue;
    if (called(toks, j)) continue;  // function returning float
    names.insert(toks[j].text);
  }
}

// --- rule: unordered-iter ----------------------------------------------------

/// A sort within this many lines after the iteration counts as the
/// "intervening sort" that restores determinism before anything is
/// emitted.
constexpr std::size_t kSortWindowLines = 40;

[[nodiscard]] bool sort_follows(const std::vector<Token>& toks,
                                std::size_t i) {
  const std::size_t limit = toks[i].line + kSortWindowLines;
  for (; i < toks.size() && toks[i].line <= limit; ++i) {
    if ((is_ident(toks[i], "sort") || is_ident(toks[i], "stable_sort")) &&
        called(toks, i)) {
      return true;
    }
  }
  return false;
}

/// Identifier written directly before the operator at `k`, looking
/// through one trailing index/call group: `registry_[mi] += x` resolves
/// to "registry_", `acc.total += x` to "total".
[[nodiscard]] std::string lhs_identifier(const std::vector<Token>& toks,
                                         std::size_t k) {
  if (k == 0) return {};
  std::size_t p = k - 1;
  if (is_punct(toks[p], "]") || is_punct(toks[p], ")")) {
    int depth = 0;
    for (std::size_t q = p + 1; q-- > 0;) {
      if (toks[q].kind != TokKind::kPunct) continue;
      const std::string& s = toks[q].text;
      if (s == "]" || s == ")") ++depth;
      if (s == "[" || s == "(") {
        if (--depth == 0) {
          if (q == 0) return {};
          p = q - 1;
          break;
        }
      }
    }
  }
  return toks[p].kind == TokKind::kIdent ? toks[p].text : std::string{};
}

constexpr std::array<std::string_view, 3> kOrderedAppends = {
    "push_back", "emplace_back", "append"};

/// Why iterating in hash order here is a determinism bug — or "" when the
/// body neither accumulates floats nor appends to ordered output.
[[nodiscard]] std::string flow_reason(
    const FileCtx& ctx, std::size_t begin, std::size_t end) {
  const std::vector<Token>& toks = ctx.toks;
  for (std::size_t k = begin; k < end && k < toks.size(); ++k) {
    const Token& t = toks[k];
    if (t.kind == TokKind::kPunct &&
        (t.text == "+=" || t.text == "-=" || t.text == "*=" ||
         t.text == "/=")) {
      const std::string lhs = lhs_identifier(toks, k);
      if (!lhs.empty() && ctx.float_names.count(lhs) != 0) {
        return "accumulates float '" + lhs + "' (" + t.text + ")";
      }
    }
    if (t.kind == TokKind::kIdent && called(toks, k) && k > 0 &&
        (is_punct(toks[k - 1], ".") || is_punct(toks[k - 1], "->"))) {
      const bool appends = std::any_of(
          kOrderedAppends.begin(), kOrderedAppends.end(),
          [&](std::string_view fn) { return t.text == fn; });
      if (appends) return "appends to ordered output ('" + t.text + "')";
    }
  }
  return {};
}

void check_unordered_iter(const FileCtx& ctx,
                          const std::unordered_set<std::string>& names,
                          Sink sink) {
  const std::vector<Token>& toks = ctx.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    // Range-for over a tracked container.
    if (is_ident(toks[i], "for") && called(toks, i)) {
      const std::size_t open = i + 1;
      const std::size_t close_past = skip_balanced(toks, open);
      // Top-level ':' splits declaration from range expression.
      std::size_t colon = 0;
      int depth = 0;
      bool classic = false;
      for (std::size_t k = open; k < close_past - 1; ++k) {
        if (toks[k].kind != TokKind::kPunct) continue;
        const std::string& p = toks[k].text;
        if (p == "(" || p == "[" || p == "{") ++depth;
        if (p == ")" || p == "]" || p == "}") --depth;
        if (depth != 1) continue;
        if (p == ";") classic = true;
        if (p == ":" && colon == 0) colon = k;
      }
      if (classic || colon == 0) continue;
      // Container name: last top-level identifier of the range expr.
      std::string name;
      depth = 0;
      for (std::size_t k = colon + 1; k < close_past - 1; ++k) {
        const Token& t = toks[k];
        if (t.kind == TokKind::kPunct) {
          const std::string& p = t.text;
          if (p == "(" || p == "[" || p == "{") ++depth;
          if (p == ")" || p == "]" || p == "}") --depth;
          continue;
        }
        if (depth == 0 && t.kind == TokKind::kIdent) name = t.text;
      }
      if (name.empty() || names.count(name) == 0) continue;
      // Body: brace block or single statement.
      std::size_t body_begin = close_past;
      std::size_t body_end;
      if (body_begin < toks.size() && is_punct(toks[body_begin], "{")) {
        body_end = skip_balanced(toks, body_begin);
      } else {
        body_end = body_begin;
        while (body_end < toks.size() && !is_punct(toks[body_end], ";")) {
          ++body_end;
        }
      }
      const std::string reason = flow_reason(ctx, body_begin, body_end);
      if (reason.empty()) continue;
      if (sort_follows(toks, i)) continue;
      sink.emit(toks[i].line,
                "range-for over unordered container '" + name + "' " +
                    reason + " with no sort in the next " +
                    std::to_string(kSortWindowLines) +
                    " lines; hash order must not reach output "
                    "(sort, or justify with a suppression)");
    }
    // for_each on a tracked container.
    if (is_ident(toks[i], "for_each") && called(toks, i) && i >= 2 &&
        (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")) &&
        toks[i - 2].kind == TokKind::kIdent) {
      const std::string& name = toks[i - 2].text;
      if (names.count(name) == 0) continue;
      const std::size_t body_begin = i + 1;
      const std::size_t body_end = skip_balanced(toks, body_begin);
      const std::string reason = flow_reason(ctx, body_begin, body_end);
      if (reason.empty()) continue;
      if (sort_follows(toks, i)) continue;
      sink.emit(toks[i].line,
                "for_each over unordered container '" + name + "' " +
                    reason + " with no sort in the next " +
                    std::to_string(kSortWindowLines) +
                    " lines; hash order must not reach output "
                    "(sort, or justify with a suppression)");
    }
  }
}

// --- rule: wall-clock --------------------------------------------------------

constexpr std::array<std::string_view, 8> kClockCalls = {
    "rand",      "srand",        "time",   "clock",
    "localtime", "gettimeofday", "gmtime", "mktime"};

constexpr std::array<std::string_view, 4> kClockTypes = {
    "system_clock", "steady_clock", "high_resolution_clock",
    "random_device"};

void check_wall_clock(const FileCtx& ctx, Sink sink) {
  const std::vector<Token>& toks = ctx.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || t.preproc) continue;
    for (const std::string_view fn : kClockCalls) {
      if (t.text == fn && called(toks, i)) {
        sink.emit(t.line,
                  "call to '" + std::string{fn} +
                      "' in a core path; all randomness and time must "
                      "flow through util/rng's seeded streams");
      }
    }
    for (const std::string_view ty : kClockTypes) {
      if (t.text == ty) {
        std::string msg{"'"};
        msg += ty;
        msg +=
            "' in a core path; results must be reproducible from a seed "
            "(use util/rng; timing belongs in src/obs or bench/)";
        sink.emit(t.line, msg);
      }
    }
  }
}

// --- rule: naked-thread ------------------------------------------------------

void check_naked_thread(const FileCtx& ctx, Sink sink) {
  const std::vector<Token>& toks = ctx.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || t.preproc) continue;
    if (t.text == "thread" && std_qualified(toks, i)) {
      // std::thread::hardware_concurrency is a query, not a spawn.
      if (i + 1 < toks.size() && is_punct(toks[i + 1], "::")) continue;
      sink.emit(t.line,
                "raw std::thread outside util/thread_pool; parallelise "
                "through ThreadPool::parallel_for so exceptions and "
                "determinism stay handled in one place");
    }
    if (t.text == "jthread" || t.text == "pthread_create" ||
        (t.text == "async" && std_qualified(toks, i))) {
      sink.emit(t.line, "'" + t.text +
                            "' outside util/thread_pool; parallelise "
                            "through ThreadPool::parallel_for");
    }
  }
}

// --- rule: io-in-core --------------------------------------------------------

constexpr std::array<std::string_view, 7> kPrintfFamily = {
    "printf", "fprintf", "vprintf", "vfprintf", "puts", "fputs", "putchar"};

constexpr std::array<std::string_view, 3> kStdStreams = {"cout", "cerr",
                                                         "clog"};

void check_io_in_core(const FileCtx& ctx, Sink sink) {
  const std::vector<Token>& toks = ctx.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || t.preproc) continue;
    for (const std::string_view fn : kPrintfFamily) {
      if (t.text == fn && called(toks, i)) {
        std::string msg{"'"};
        msg += fn;
        msg +=
            "' in the analysis layer; human-facing output goes through "
            "core/report";
        sink.emit(t.line, msg);
      }
    }
    for (const std::string_view st : kStdStreams) {
      if (t.text == st && std_qualified(toks, i)) {
        sink.emit(t.line,
                  "'std::" + std::string{st} +
                      "' in the analysis layer; human-facing output goes "
                      "through core/report");
      }
    }
  }
}

// --- rule: positioned-throw --------------------------------------------------

constexpr std::array<std::string_view, 5> kPositionWords = {
    "line", "offset", "record", "position", "path"};

void check_positioned_throw(const FileCtx& ctx, Sink sink) {
  const std::vector<Token>& toks = ctx.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i], "throw") || toks[i].preproc) continue;
    bool positioned = false;
    for (std::size_t k = i + 1; k < toks.size(); ++k) {
      if (is_punct(toks[k], ";")) break;
      if (toks[k].kind != TokKind::kIdent &&
          toks[k].kind != TokKind::kString) {
        continue;
      }
      positioned = std::any_of(
          kPositionWords.begin(), kPositionWords.end(),
          [&](std::string_view w) {
            return toks[k].text.find(w) != std::string::npos;
          });
      if (positioned) break;
    }
    if (positioned) continue;
    sink.emit(toks[i].line,
              "throw without a position (line/record/offset/path) in the "
              "ingest layer; fault-tolerant readers live on positioned "
              "errors (see robust_io)");
  }
}

// --- rule: raw-mutex ---------------------------------------------------------

constexpr std::array<std::string_view, 9> kRawMutexTypes = {
    "mutex",          "recursive_mutex",    "shared_mutex",
    "timed_mutex",    "condition_variable", "condition_variable_any",
    "lock_guard",     "unique_lock",        "scoped_lock"};

void check_raw_mutex(const FileCtx& ctx, Sink sink) {
  const std::vector<Token>& toks = ctx.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || t.preproc) continue;
    for (const std::string_view ty : kRawMutexTypes) {
      if (t.text == ty && std_qualified(toks, i)) {
        sink.emit(t.line,
                  "raw std::" + std::string{ty} +
                      " outside src/util/mutex.h; use vq::Mutex / "
                      "MutexLock / CondVar so the thread-safety "
                      "annotations see every lock");
      }
    }
    if ((t.text == "lock" || t.text == "unlock") && called(toks, i) &&
        i > 0 &&
        (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
      sink.emit(t.line,
                "manual ." + t.text +
                    "() outside src/util/mutex.h; scope-based MutexLock "
                    "keeps acquire/release paired under the annotations");
    }
  }
}

// --- rule: hot-path ----------------------------------------------------------

struct HotViolation {
  std::string_view what;
  std::string_view why;
};

[[nodiscard]] const HotViolation* hot_violation(
    const std::vector<Token>& toks, std::size_t i) {
  static constexpr HotViolation kNew{"operator new", "heap allocation"};
  static constexpr HotViolation kMalloc{"malloc-family call",
                                        "heap allocation"};
  static constexpr HotViolation kMakeSmart{"smart-pointer construction",
                                           "heap allocation"};
  static constexpr HotViolation kLock{"lock acquisition", "locking"};
  static constexpr HotViolation kIo{"IO call", "IO"};
  static constexpr HotViolation kThrow{"throw", "unwinding"};
  static constexpr HotViolation kString{"std::string construction",
                                        "heap allocation"};

  const Token& t = toks[i];
  if (t.kind != TokKind::kIdent || t.preproc) return nullptr;
  const std::string& s = t.text;
  if (s == "new") return &kNew;
  if ((s == "malloc" || s == "calloc" || s == "realloc") &&
      called(toks, i)) {
    return &kMalloc;
  }
  if (s == "make_unique" || s == "make_shared") return &kMakeSmart;
  if (s == "MutexLock" || s == "CondVar" || s == "lock_guard" ||
      s == "unique_lock" || s == "scoped_lock" || s == "mutex" ||
      s == "condition_variable") {
    return &kLock;
  }
  if ((s == "lock" || s == "unlock") && called(toks, i) && i > 0 &&
      (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
    return &kLock;
  }
  for (const std::string_view fn : kPrintfFamily) {
    if (s == fn && called(toks, i)) return &kIo;
  }
  if ((s == "fopen" || s == "fwrite" || s == "fread" || s == "fflush" ||
       s == "fclose") &&
      called(toks, i)) {
    return &kIo;
  }
  if (s == "ofstream" || s == "ifstream" || s == "fstream") return &kIo;
  for (const std::string_view st : kStdStreams) {
    if (s == st && std_qualified(toks, i)) return &kIo;
  }
  if (s == "throw") return &kThrow;
  if (s == "string" && std_qualified(toks, i)) return &kString;
  if (s == "to_string" || s == "stringstream" || s == "ostringstream" ||
      s == "istringstream") {
    return &kString;
  }
  return nullptr;
}

void check_hot_path(const FileCtx& ctx, const HotPaths& hot, Sink sink) {
  // Hot set: manifest entries plus `// vq:hot` markers (a marker names
  // the next function definition at or below it).
  std::vector<const FunctionSpan*> spans;
  for (const FunctionSpan& f : ctx.functions) {
    if (hot_matches(hot, f.qualified)) spans.push_back(&f);
  }
  for (const std::size_t marker : ctx.hot_markers) {
    const FunctionSpan* best = nullptr;
    for (const FunctionSpan& f : ctx.functions) {
      if (f.name_line >= marker &&
          (best == nullptr || f.name_line < best->name_line)) {
        best = &f;
      }
    }
    if (best != nullptr &&
        std::find(spans.begin(), spans.end(), best) == spans.end()) {
      spans.push_back(best);
    }
  }
  for (const FunctionSpan* f : spans) {
    for (std::size_t i = f->body_open + 1; i < f->body_close; ++i) {
      const HotViolation* v = hot_violation(ctx.toks, i);
      if (v == nullptr) continue;
      sink.emit(ctx.toks[i].line,
                std::string{v->what} + " ('" + ctx.toks[i].text +
                    "') in hot path '" + f->qualified + "'; " +
                    std::string{v->why} +
                    " is banned in manifested kernels "
                    "(tools/hot_paths.txt) — hoist it out of the loop or "
                    "justify with a suppression");
    }
  }
}

// --- rule: wire-contract -----------------------------------------------------

/// True when some statement (`;`-delimited token run) mentioning
/// `constant` also spells the contract value — `= 4096`, a
/// `static_assert(k == 27)`, or a `{'V','Q','C','H'}` initialiser.
[[nodiscard]] bool constant_pinned(const std::vector<Token>& toks,
                                   const WireContract& c) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i], c.constant)) continue;
    // Statement extent around the mention.
    std::size_t begin = i;
    while (begin > 0 && !is_punct(toks[begin - 1], ";") &&
           !is_punct(toks[begin - 1], "{") &&
           !is_punct(toks[begin - 1], "}")) {
      --begin;
    }
    std::size_t end = i;
    while (end < toks.size() && !is_punct(toks[end], ";")) ++end;
    if (c.kind == "number") {
      for (std::size_t k = begin; k < end; ++k) {
        if (toks[k].kind == TokKind::kNumber &&
            literal_value(toks[k].text) == c.number) {
          return true;
        }
      }
    } else {
      std::string chars;
      for (std::size_t k = begin; k < end; ++k) {
        if (toks[k].kind == TokKind::kString &&
            toks[k].text == c.magic) {
          return true;
        }
        if (toks[k].kind == TokKind::kChar && toks[k].text.size() == 1) {
          chars += toks[k].text;
        }
      }
      if (chars.find(c.magic) != std::string::npos) return true;
    }
  }
  return false;
}

[[nodiscard]] bool mentions_ident(const std::vector<Token>& toks,
                                  const std::string& name) {
  return std::any_of(toks.begin(), toks.end(), [&](const Token& t) {
    return t.kind == TokKind::kIdent && t.text == name;
  });
}

void check_wire_contract(const std::vector<FileCtx>& ctxs,
                         const LintConfig& config,
                         const WireManifest& manifest,
                         std::vector<Finding>* findings) {
  const auto manifest_finding = [&](const std::string& message) {
    findings->push_back(Finding{config.wire_manifest_path, 1,
                                "wire-contract", message});
  };
  for (const std::string& err : manifest.errors) manifest_finding(err);

  const auto find_ctx = [&](const std::string& file) -> const FileCtx* {
    for (const FileCtx& ctx : ctxs) {
      if (is_file(ctx.src->path, file)) return &ctx;
    }
    return nullptr;
  };

  for (const WireContract& c : manifest.contracts) {
    // (a) The declaring header is in the lint set and pins the value.
    const FileCtx* header = find_ctx(c.header);
    if (header == nullptr) {
      manifest_finding("contract '" + c.name + "': header " + c.header +
                       " is not in the linted file set");
    } else if (!mentions_ident(header->toks, c.constant)) {
      Sink{findings, header, "wire-contract"}.emit(
          1, "contract '" + c.name + "': constant " + c.constant +
                 " is not declared in " + c.header);
    } else if (!constant_pinned(header->toks, c)) {
      const std::string value =
          c.kind == "magic" ? "\"" + c.magic + "\""
                            : std::to_string(c.number);
      Sink{findings, header, "wire-contract"}.emit(
          1, "contract '" + c.name + "': " + c.constant +
                 " is not pinned to " + value + " in " + c.header +
                 " (declare it with the literal or add a static_assert; "
                 "if the format changed, bump docs/wire_contracts.json "
                 "and both sides — see docs/METHOD.md)");
    }
    // (b) Every writer and reader references the shared constant.
    for (const std::vector<std::string>* side : {&c.writers, &c.readers}) {
      const bool is_writer = side == &c.writers;
      for (const std::string& file : *side) {
        const FileCtx* ctx = find_ctx(file);
        if (ctx == nullptr) {
          manifest_finding("contract '" + c.name + "': " +
                           (is_writer ? "writer " : "reader ") + file +
                           " is not in the linted file set");
          continue;
        }
        if (!mentions_ident(ctx->toks, c.constant)) {
          Sink{findings, ctx, "wire-contract"}.emit(
              1, "contract '" + c.name + "': " +
                     (is_writer ? "writer" : "reader") +
                     " does not reference " + c.constant +
                     "; writer and reader must share the constant so a "
                     "format bump moves both sides");
        }
      }
    }
    // (c) Magic bytes are spelled literally only at declared sites.
    if (c.kind != "magic") continue;
    const auto allowed = [&](const std::string& path) {
      if (is_file(path, c.header)) return true;
      for (const std::vector<std::string>* list :
           {&c.writers, &c.readers, &c.sites}) {
        for (const std::string& f : *list) {
          if (is_file(path, f)) return true;
        }
      }
      return false;
    };
    for (const FileCtx& ctx : ctxs) {
      if (allowed(ctx.src->path)) continue;
      Sink sink{findings, &ctx, "wire-contract"};
      std::string run;
      std::size_t run_line = 0;
      const auto flush_run = [&] {
        if (!run.empty() && run.find(c.magic) != std::string::npos) {
          sink.emit(run_line,
                    "magic \"" + c.magic + "\" (contract '" + c.name +
                        "') spelled outside its declared writer/reader "
                        "sites; reference " + c.constant +
                        " or add the file to docs/wire_contracts.json");
        }
        run.clear();
        run_line = 0;
      };
      for (const Token& t : ctx.toks) {
        if (t.kind == TokKind::kString &&
            t.text.find(c.magic) != std::string::npos) {
          sink.emit(t.line,
                    "magic \"" + c.magic + "\" (contract '" + c.name +
                        "') spelled outside its declared writer/reader "
                        "sites; reference " + c.constant +
                        " or add the file to docs/wire_contracts.json");
          continue;
        }
        if (t.kind == TokKind::kChar && t.text.size() == 1) {
          if (run.empty()) run_line = t.line;
          run += t.text;
          continue;
        }
        if (t.kind == TokKind::kPunct && t.text == ",") continue;
        flush_run();
      }
      flush_run();
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {"unordered-iter",
       "iteration over an unordered container that accumulates floats or "
       "appends to ordered output must sort before anything is emitted "
       "(src/)"},
      {"wall-clock",
       "no rand/srand/time/clock/std::chrono wall clocks outside util/rng, "
       "obs/ and serve/ (src/, tests/)"},
      {"naked-thread",
       "no std::thread/std::async outside util/thread_pool (src/, tools/, "
       "bench/, tests/)"},
      {"io-in-core",
       "no printf-family or std::cout/cerr writes in src/core or src/stats "
       "(reporting goes through core/report)"},
      {"positioned-throw",
       "every throw in src/gen carries a position: line, record, offset, "
       "or path"},
      {"raw-mutex",
       "no raw std::mutex/condition_variable/lock_guard or manual "
       ".lock()/.unlock() outside src/util/mutex.h (src/, tools/, bench/, "
       "tests/)"},
      {"hot-path",
       "no allocation, locking, IO, throw or std::string construction in "
       "functions named by tools/hot_paths.txt or // vq:hot markers"},
      {"wire-contract",
       "docs/wire_contracts.json magics/versions/sizes must be pinned in "
       "their headers, referenced by every writer and reader, and spelled "
       "only at declared sites"},
  };
  return kRules;
}

std::vector<Finding> run_lint(const std::vector<SourceFile>& files) {
  return run_lint(files, LintConfig{});
}

std::vector<Finding> run_lint(const std::vector<SourceFile>& files,
                              const LintConfig& config) {
  std::vector<FileCtx> ctxs;
  ctxs.reserve(files.size());
  std::unordered_set<std::string> unordered_names;
  for (const SourceFile& f : files) {
    FileCtx ctx;
    ctx.src = &f;
    ctx.toks = tokenize(f.content);
    ctx.functions = ScopeMap{ctx.toks}.functions();
    ctx.suppressions = parse_suppressions(f.content);
    ctx.hot_markers = parse_hot_markers(f.content);
    collect_unordered_names(ctx.toks, unordered_names);
    collect_float_names(ctx.toks, ctx.float_names);
    ctxs.push_back(std::move(ctx));
  }

  const HotPaths hot = parse_hot_paths(config.hot_paths_text);

  std::vector<Finding> findings;
  for (const std::string& err : hot.errors) {
    findings.push_back(Finding{"tools/hot_paths.txt", 1, "hot-path", err});
  }

  for (const FileCtx& ctx : ctxs) {
    const std::string& path = ctx.src->path;
    if (under(path, "src")) {
      check_unordered_iter(ctx, unordered_names,
                           {&findings, &ctx, "unordered-iter"});
    }
    // util/rng owns randomness; src/obs owns timing (steady_clock behind
    // Stopwatch/VQ_SPAN); src/serve owns socket deadlines (idle/read
    // timeouts and push deadlines are wall-clock by nature and never feed
    // the analysis — the detector sees only rows).  Everywhere else in
    // src/ and tests/ a clock or rand() call breaks seed-reproducibility;
    // chaos harnesses that need real deadlines carry justified
    // suppressions.  under() is segment-anchored, so e.g.
    // "src/observability" would NOT inherit the carve-out.
    if ((under(path, "src") || under(path, "tests")) &&
        !is_file(path, "src/util/rng.h") &&
        !is_file(path, "src/util/rng.cpp") && !under(path, "src/obs") &&
        !under(path, "src/serve")) {
      check_wall_clock(ctx, {&findings, &ctx, "wall-clock"});
    }
    // serve/server.cpp owns the acceptor/IO thread: a poll loop with its
    // own lifecycle, not data-parallel work a ThreadPool could express.
    // The carve-out is that one file — serve tests and the rest of the
    // layer still go through ThreadPool (or suppress with justification).
    if ((under(path, "src") || under(path, "tools") ||
         under(path, "bench") || under(path, "tests")) &&
        !is_file(path, "src/util/thread_pool.h") &&
        !is_file(path, "src/util/thread_pool.cpp") &&
        !is_file(path, "src/serve/server.cpp")) {
      check_naked_thread(ctx, {&findings, &ctx, "naked-thread"});
    }
    if (under(path, "src/core") || under(path, "src/stats")) {
      check_io_in_core(ctx, {&findings, &ctx, "io-in-core"});
    }
    if (under(path, "src/gen")) {
      check_positioned_throw(ctx, {&findings, &ctx, "positioned-throw"});
    }
    // mutex.h is the single sanctioned std::mutex site: it wraps the raw
    // primitives in capability-annotated types everything else must use.
    if ((under(path, "src") || under(path, "tools") ||
         under(path, "bench") || under(path, "tests")) &&
        !is_file(path, "src/util/mutex.h")) {
      check_raw_mutex(ctx, {&findings, &ctx, "raw-mutex"});
    }
    check_hot_path(ctx, hot, {&findings, &ctx, "hot-path"});
  }

  if (!config.wire_manifest_json.empty()) {
    const WireManifest manifest =
        parse_wire_manifest(config.wire_manifest_json);
    check_wire_contract(ctxs, config, manifest, &findings);
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::string format_finding(const Finding& f) {
  return f.path + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message;
}

std::string format_github_annotation(const Finding& f) {
  return "::error file=" + f.path + ",line=" + std::to_string(f.line) +
         "::[" + f.rule + "] " + f.message;
}

}  // namespace vq::lint
