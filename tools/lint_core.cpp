#include "tools/lint_core.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <unordered_set>

namespace vq::lint {

namespace {

// --- source stripping --------------------------------------------------------

[[nodiscard]] bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Two comment-free views of a file, index-aligned with the original so a
/// byte position maps to the same line in all three.  `code` additionally
/// blanks string/char literals (patterns in literals must not fire);
/// `with_strings` keeps them (the positioned-throw rule inspects message
/// text).  Stripped bytes become spaces; newlines survive.
struct Stripped {
  std::string code;
  std::string with_strings;
};

Stripped strip(std::string_view src) {
  Stripped out;
  out.code.assign(src.begin(), src.end());
  out.with_strings.assign(src.begin(), src.end());

  const auto blank_code = [&](std::size_t i) {
    if (out.code[i] != '\n') out.code[i] = ' ';
  };
  const auto blank_both = [&](std::size_t i) {
    blank_code(i);
    if (out.with_strings[i] != '\n') out.with_strings[i] = ' ';
  };

  std::size_t i = 0;
  const std::size_t n = src.size();
  while (i < n) {
    const char c = src[i];
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') blank_both(i++);
    } else if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      blank_both(i++);
      blank_both(i++);
      while (i < n && !(src[i] == '*' && i + 1 < n && src[i + 1] == '/')) {
        blank_both(i++);
      }
      if (i < n) blank_both(i++);
      if (i < n) blank_both(i++);
    } else if (c == '"') {
      // Raw string? R"delim( ... )delim"
      if (i > 0 && src[i - 1] == 'R' &&
          (i < 2 || !ident_char(src[i - 2]))) {
        std::size_t j = i + 1;
        while (j < n && src[j] != '(') ++j;
        const std::string delim{src.substr(i + 1, j - i - 1)};
        const std::string close = ")" + delim + "\"";
        const std::size_t end = src.find(close, j);
        const std::size_t stop =
            end == std::string_view::npos ? n : end + close.size();
        while (i < stop) blank_code(i++);
      } else {
        blank_code(i++);
        while (i < n && src[i] != '"' && src[i] != '\n') {
          if (src[i] == '\\' && i + 1 < n) blank_code(i++);
          blank_code(i++);
        }
        if (i < n) blank_code(i++);
      }
    } else if (c == '\'') {
      // Digit separator (1'000) vs char literal.
      const bool sep = i > 0 && i + 1 < n &&
                       std::isalnum(static_cast<unsigned char>(src[i - 1])) &&
                       std::isalnum(static_cast<unsigned char>(src[i + 1]));
      if (sep) {
        ++i;
      } else {
        blank_code(i++);
        while (i < n && src[i] != '\'' && src[i] != '\n') {
          if (src[i] == '\\' && i + 1 < n) blank_code(i++);
          blank_code(i++);
        }
        if (i < n) blank_code(i++);
      }
    } else {
      ++i;
    }
  }
  return out;
}

[[nodiscard]] std::size_t line_of(std::string_view s, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(s.begin(), s.begin() + static_cast<long>(pos),
                            '\n'));
}

/// Finds the next occurrence of `token` at or after `from` that is a whole
/// identifier (boundary-checked on both sides). npos when absent.
[[nodiscard]] std::size_t find_token(std::string_view s,
                                     std::string_view token,
                                     std::size_t from) {
  for (std::size_t pos = s.find(token, from); pos != std::string_view::npos;
       pos = s.find(token, pos + 1)) {
    const bool left_ok = pos == 0 || !ident_char(s[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= s.size() || !ident_char(s[end]);
    if (left_ok && right_ok) return pos;
  }
  return std::string_view::npos;
}

[[nodiscard]] std::size_t skip_ws(std::string_view s, std::size_t i) {
  while (i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[i])) != 0) {
    ++i;
  }
  return i;
}

/// Skips a balanced <...> starting at `i` (s[i] == '<'); returns the index
/// one past the closing '>', or npos if unbalanced.
[[nodiscard]] std::size_t skip_template_args(std::string_view s,
                                             std::size_t i) {
  int depth = 0;
  for (; i < s.size(); ++i) {
    if (s[i] == '<') ++depth;
    if (s[i] == '>' && --depth == 0) return i + 1;
  }
  return std::string_view::npos;
}

// --- suppressions ------------------------------------------------------------

struct Suppressions {
  // (rule, line) pairs; line 0 = whole file.
  std::vector<std::pair<std::string, std::size_t>> allows;

  [[nodiscard]] bool covers(std::string_view rule, std::size_t line) const {
    return std::any_of(
        allows.begin(), allows.end(), [&](const auto& a) {
          return a.first == rule &&
                 (a.second == 0 || a.second == line || a.second + 1 == line);
        });
  }
};

Suppressions parse_suppressions(std::string_view raw) {
  Suppressions out;
  std::size_t line = 1;
  std::size_t start = 0;
  while (start <= raw.size()) {
    std::size_t eol = raw.find('\n', start);
    if (eol == std::string_view::npos) eol = raw.size();
    const std::string_view text = raw.substr(start, eol - start);
    const std::size_t tag = text.find("vq-lint:");
    if (tag != std::string_view::npos) {
      const std::string_view rest = text.substr(tag + 8);
      const bool file_wide =
          rest.find("allow-file(") != std::string_view::npos;
      const std::size_t open = rest.find('(');
      const std::size_t close =
          open == std::string_view::npos ? std::string_view::npos
                                         : rest.find(')', open);
      if (open != std::string_view::npos &&
          close != std::string_view::npos) {
        std::string_view list = rest.substr(open + 1, close - open - 1);
        while (!list.empty()) {
          std::size_t comma = list.find(',');
          std::string_view item = list.substr(0, comma);
          while (!item.empty() && item.front() == ' ') item.remove_prefix(1);
          while (!item.empty() && item.back() == ' ') item.remove_suffix(1);
          if (!item.empty()) {
            out.allows.emplace_back(std::string{item},
                                    file_wide ? 0 : line);
          }
          if (comma == std::string_view::npos) break;
          list.remove_prefix(comma + 1);
        }
      }
    }
    start = eol + 1;
    ++line;
  }
  return out;
}

// --- path scoping ------------------------------------------------------------

[[nodiscard]] std::string normalize(std::string_view path) {
  std::string p{path};
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

/// True when `path` has `dir` ("src/core") as a leading or embedded
/// directory-segment prefix — so both "src/core/x.cpp" and
/// "/root/repo/src/core/x.cpp" match.
[[nodiscard]] bool under(std::string_view path, std::string_view dir) {
  const std::string p = normalize(path);
  const std::string d = std::string{dir} + "/";
  if (p.rfind(d, 0) == 0) return true;
  return p.find("/" + d) != std::string::npos;
}

/// True when `path` names the file `file` ("src/util/rng.cpp") exactly,
/// allowing an absolute prefix.
[[nodiscard]] bool is_file(std::string_view path, std::string_view file) {
  const std::string p = normalize(path);
  if (p == file) return true;
  return p.size() > file.size() &&
         p.compare(p.size() - file.size(), file.size(), file) == 0 &&
         p[p.size() - file.size() - 1] == '/';
}

// --- per-file context --------------------------------------------------------

struct FileCtx {
  const SourceFile* src = nullptr;
  Stripped stripped;
  Suppressions suppressions;
};

struct Sink {
  std::vector<Finding>* findings;
  const FileCtx* ctx;
  std::string_view rule;

  void emit(std::size_t pos_in_code, std::string message) const {
    const std::size_t line = line_of(ctx->stripped.code, pos_in_code);
    if (ctx->suppressions.covers(rule, line)) return;
    findings->push_back(Finding{ctx->src->path, line, std::string{rule},
                                std::move(message)});
  }
};

// --- rule: unordered-iter ----------------------------------------------------

constexpr std::array<std::string_view, 6> kUnorderedTypes = {
    "unordered_map",      "unordered_set", "unordered_multimap",
    "unordered_multiset", "FlatMap64",     "FlatSet64"};

/// Collects identifiers declared with an unordered container type:
/// `Type<...> [*&]* name` where the name is not immediately followed by '('
/// (which would be a function declarator).
void collect_unordered_names(const std::string& code,
                             std::unordered_set<std::string>& names) {
  for (const std::string_view type : kUnorderedTypes) {
    for (std::size_t pos = find_token(code, type, 0);
         pos != std::string_view::npos;
         pos = find_token(code, type, pos + type.size())) {
      std::size_t i = skip_ws(code, pos + type.size());
      if (i < code.size() && code[i] == '<') {
        i = skip_template_args(code, i);
        if (i == std::string_view::npos) break;
      }
      i = skip_ws(code, i);
      while (i < code.size() && (code[i] == '*' || code[i] == '&')) {
        i = skip_ws(code, i + 1);
      }
      std::size_t end = i;
      while (end < code.size() && ident_char(code[end])) ++end;
      if (end == i) continue;
      const std::size_t after = skip_ws(code, end);
      if (after < code.size() && code[after] == '(') continue;  // function
      names.insert(code.substr(i, end - i));
    }
  }
}

/// A sort within this many lines after the iteration counts as the
/// "intervening sort" that restores determinism before anything is emitted.
constexpr std::size_t kSortWindowLines = 40;

[[nodiscard]] bool sort_follows(const std::string& code, std::size_t pos) {
  std::size_t newlines = 0;
  for (std::size_t i = pos; i < code.size() && newlines <= kSortWindowLines;
       ++i) {
    if (code[i] == '\n') {
      ++newlines;
      continue;
    }
    if (code.compare(i, 5, "sort(") == 0 &&
        (i == 0 || !ident_char(code[i - 1]) ||
         code.compare(i >= 7 ? i - 7 : 0, 12, "stable_sort(") == 0)) {
      return true;
    }
  }
  return false;
}

/// Last top-level identifier of an expression, with bracketed/parenthesised
/// segments ignored — `fold.leaves` -> "leaves", `registry_[mi]` ->
/// "registry_".
[[nodiscard]] std::string last_identifier(std::string_view expr) {
  std::string flat{expr};
  int depth = 0;
  for (char& c : flat) {
    if (c == '(' || c == '[' || c == '{') {
      ++depth;
      c = ' ';
    } else if (c == ')' || c == ']' || c == '}') {
      --depth;
      c = ' ';
    } else if (depth > 0) {
      c = ' ';
    }
  }
  std::size_t end = flat.size();
  while (end > 0 && !ident_char(flat[end - 1])) --end;
  std::size_t begin = end;
  while (begin > 0 && ident_char(flat[begin - 1])) --begin;
  return flat.substr(begin, end - begin);
}

void check_unordered_iter(const FileCtx& ctx,
                          const std::unordered_set<std::string>& names,
                          Sink sink) {
  const std::string& code = ctx.stripped.code;

  // Range-for over a tracked container.
  for (std::size_t pos = find_token(code, "for", 0);
       pos != std::string_view::npos;
       pos = find_token(code, "for", pos + 3)) {
    std::size_t i = skip_ws(code, pos + 3);
    if (i >= code.size() || code[i] != '(') continue;
    int depth = 0;
    std::size_t close = i;
    for (; close < code.size(); ++close) {
      if (code[close] == '(') ++depth;
      if (code[close] == ')' && --depth == 0) break;
    }
    if (close >= code.size()) continue;
    const std::string_view head{code.data() + i + 1, close - i - 1};
    // Classic for (has a top-level ';') or no range ':': skip.
    std::size_t colon = std::string_view::npos;
    int d = 0;
    bool classic = false;
    for (std::size_t k = 0; k < head.size(); ++k) {
      const char c = head[k];
      if (c == '(' || c == '[' || c == '{') ++d;
      if (c == ')' || c == ']' || c == '}') --d;
      if (d != 0) continue;
      if (c == ';') classic = true;
      if (c == ':' && (k == 0 || head[k - 1] != ':') &&
          (k + 1 >= head.size() || head[k + 1] != ':') &&
          colon == std::string_view::npos) {
        colon = k;
      }
    }
    if (classic || colon == std::string_view::npos) continue;
    const std::string name = last_identifier(head.substr(colon + 1));
    if (name.empty() || names.find(name) == names.end()) continue;
    if (sort_follows(code, pos)) continue;
    sink.emit(pos, "range-for over unordered container '" + name +
                       "' with no sort in the next " +
                       std::to_string(kSortWindowLines) +
                       " lines; hash order must not reach output "
                       "(sort, or justify with a suppression)");
  }

  // for_each on a tracked container.
  for (std::size_t pos = find_token(code, "for_each", 0);
       pos != std::string_view::npos;
       pos = find_token(code, "for_each", pos + 8)) {
    std::size_t recv_end = pos;
    if (recv_end >= 1 && code[recv_end - 1] == '.') {
      recv_end -= 1;
    } else if (recv_end >= 2 && code[recv_end - 2] == '-' &&
               code[recv_end - 1] == '>') {
      recv_end -= 2;
    } else {
      continue;
    }
    std::size_t begin = recv_end;
    while (begin > 0 && ident_char(code[begin - 1])) --begin;
    const std::string name = code.substr(begin, recv_end - begin);
    if (name.empty() || names.find(name) == names.end()) continue;
    if (sort_follows(code, pos)) continue;
    sink.emit(pos, "for_each over unordered container '" + name +
                       "' with no sort in the next " +
                       std::to_string(kSortWindowLines) +
                       " lines; hash order must not reach output "
                       "(sort, or justify with a suppression)");
  }
}

// --- rule: wall-clock --------------------------------------------------------

void check_wall_clock(const FileCtx& ctx, Sink sink) {
  const std::string& code = ctx.stripped.code;
  // Function-style: identifier must be called.
  constexpr std::array<std::string_view, 8> kCalls = {
      "rand",      "srand",        "time",   "clock",
      "localtime", "gettimeofday", "gmtime", "mktime"};
  for (const std::string_view fn : kCalls) {
    for (std::size_t pos = find_token(code, fn, 0);
         pos != std::string_view::npos;
         pos = find_token(code, fn, pos + fn.size())) {
      const std::size_t after = skip_ws(code, pos + fn.size());
      if (after >= code.size() || code[after] != '(') continue;
      sink.emit(pos, "call to '" + std::string{fn} +
                         "' in a core path; all randomness and time must "
                         "flow through util/rng's seeded streams");
    }
  }
  // Type-style: any mention is nondeterministic state.
  constexpr std::array<std::string_view, 4> kTypes = {
      "system_clock", "steady_clock", "high_resolution_clock",
      "random_device"};
  for (const std::string_view ty : kTypes) {
    for (std::size_t pos = find_token(code, ty, 0);
         pos != std::string_view::npos;
         pos = find_token(code, ty, pos + ty.size())) {
      sink.emit(pos, "'" + std::string{ty} +
                         "' in a core path; results must be reproducible "
                         "from a seed (use util/rng; timing belongs in "
                         "src/obs or bench/)");
    }
  }
}

// --- rule: naked-thread ------------------------------------------------------

void check_naked_thread(const FileCtx& ctx, Sink sink) {
  const std::string& code = ctx.stripped.code;
  for (std::size_t pos = code.find("std::thread");
       pos != std::string::npos; pos = code.find("std::thread", pos + 1)) {
    const std::size_t end = pos + 11;
    if (end < code.size() && (ident_char(code[end]) || code[end] == ':')) {
      continue;  // std::thread_xxx or std::thread::hardware_concurrency
    }
    sink.emit(pos, "raw std::thread outside util/thread_pool; parallelise "
                   "through ThreadPool::parallel_for so exceptions and "
                   "determinism stay handled in one place");
  }
  constexpr std::array<std::string_view, 3> kOthers = {
      "jthread", "async", "pthread_create"};
  for (const std::string_view tok : kOthers) {
    for (std::size_t pos = find_token(code, tok, 0);
         pos != std::string_view::npos;
         pos = find_token(code, tok, pos + tok.size())) {
      if (tok == "async") {
        // only std::async is thread creation
        if (pos < 5 || code.compare(pos - 5, 5, "std::") != 0) continue;
      }
      sink.emit(pos, "'" + std::string{tok} +
                         "' outside util/thread_pool; parallelise through "
                         "ThreadPool::parallel_for");
    }
  }
}

// --- rule: io-in-core --------------------------------------------------------

void check_io_in_core(const FileCtx& ctx, Sink sink) {
  const std::string& code = ctx.stripped.code;
  constexpr std::array<std::string_view, 7> kPrintf = {
      "printf", "fprintf", "vprintf", "vfprintf", "puts", "fputs", "putchar"};
  for (const std::string_view fn : kPrintf) {
    for (std::size_t pos = find_token(code, fn, 0);
         pos != std::string_view::npos;
         pos = find_token(code, fn, pos + fn.size())) {
      const std::size_t after = skip_ws(code, pos + fn.size());
      if (after >= code.size() || code[after] != '(') continue;
      sink.emit(pos, "'" + std::string{fn} +
                         "' in the analysis layer; human-facing output goes "
                         "through core/report");
    }
  }
  constexpr std::array<std::string_view, 3> kStreams = {
      "std::cout", "std::cerr", "std::clog"};
  for (const std::string_view st : kStreams) {
    for (std::size_t pos = code.find(st); pos != std::string::npos;
         pos = code.find(st, pos + 1)) {
      const std::size_t end = pos + st.size();
      if (end < code.size() && ident_char(code[end])) continue;
      sink.emit(pos, "'" + std::string{st} +
                         "' in the analysis layer; human-facing output goes "
                         "through core/report");
    }
  }
}

// --- rule: positioned-throw --------------------------------------------------

constexpr std::array<std::string_view, 5> kPositionWords = {
    "line", "offset", "record", "position", "path"};

void check_positioned_throw(const FileCtx& ctx, Sink sink) {
  const std::string& code = ctx.stripped.code;
  const std::string& text = ctx.stripped.with_strings;
  for (std::size_t pos = find_token(code, "throw", 0);
       pos != std::string_view::npos;
       pos = find_token(code, "throw", pos + 5)) {
    // Statement extent from the literal-blanked view (';' in a message
    // cannot end it), message inspection on the literal-preserving view.
    const std::size_t semi = code.find(';', pos);
    const std::size_t end = semi == std::string::npos ? code.size() : semi;
    const std::string_view stmt{text.data() + pos, end - pos};
    const bool positioned = std::any_of(
        kPositionWords.begin(), kPositionWords.end(),
        [&](std::string_view w) {
          return stmt.find(w) != std::string_view::npos;
        });
    if (positioned) continue;
    sink.emit(pos,
              "throw without a position (line/record/offset/path) in the "
              "ingest layer; fault-tolerant readers live on positioned "
              "errors (see robust_io)");
  }
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {"unordered-iter",
       "iteration over an unordered container must sort before anything is "
       "emitted (src/)"},
      {"wall-clock",
       "no rand/srand/time/clock/std::chrono wall clocks outside util/rng "
       "and obs/ (src/)"},
      {"naked-thread",
       "no std::thread/std::async outside util/thread_pool (src/, tools/, "
       "bench/)"},
      {"io-in-core",
       "no printf-family or std::cout/cerr writes in src/core or src/stats "
       "(reporting goes through core/report)"},
      {"positioned-throw",
       "every throw in src/gen carries a position: line, record, offset, or "
       "path"},
  };
  return kRules;
}

std::vector<Finding> run_lint(const std::vector<SourceFile>& files) {
  std::vector<FileCtx> ctxs;
  ctxs.reserve(files.size());
  std::unordered_set<std::string> unordered_names;
  for (const SourceFile& f : files) {
    FileCtx ctx;
    ctx.src = &f;
    ctx.stripped = strip(f.content);
    ctx.suppressions = parse_suppressions(f.content);
    collect_unordered_names(ctx.stripped.code, unordered_names);
    ctxs.push_back(std::move(ctx));
  }

  std::vector<Finding> findings;
  for (const FileCtx& ctx : ctxs) {
    const std::string& path = ctx.src->path;
    if (under(path, "src")) {
      check_unordered_iter(ctx, unordered_names,
                           {&findings, &ctx, "unordered-iter"});
      // util/rng owns randomness; src/obs owns timing (steady_clock behind
      // Stopwatch/VQ_SPAN); src/serve owns socket deadlines (idle/read
      // timeouts and push deadlines are wall-clock by nature and never feed
      // the analysis — the detector sees only rows). Everywhere else a
      // clock or rand() call breaks seed-reproducibility. under() is
      // segment-anchored, so e.g. "src/observability" would NOT inherit
      // the carve-out.
      if (!is_file(path, "src/util/rng.h") &&
          !is_file(path, "src/util/rng.cpp") && !under(path, "src/obs") &&
          !under(path, "src/serve")) {
        check_wall_clock(ctx, {&findings, &ctx, "wall-clock"});
      }
    }
    // serve/server.cpp owns the acceptor/IO thread: a poll loop with its
    // own lifecycle, not data-parallel work a ThreadPool could express.
    // The carve-out is that one file — serve tests and the rest of the
    // layer still go through ThreadPool.
    if ((under(path, "src") || under(path, "tools") ||
         under(path, "bench")) &&
        !is_file(path, "src/util/thread_pool.h") &&
        !is_file(path, "src/util/thread_pool.cpp") &&
        !is_file(path, "src/serve/server.cpp")) {
      check_naked_thread(ctx, {&findings, &ctx, "naked-thread"});
    }
    if (under(path, "src/core") || under(path, "src/stats")) {
      check_io_in_core(ctx, {&findings, &ctx, "io-in-core"});
    }
    if (under(path, "src/gen")) {
      check_positioned_throw(ctx, {&findings, &ctx, "positioned-throw"});
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::string format_finding(const Finding& f) {
  return f.path + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message;
}

}  // namespace vq::lint
