// vidqual_lint v2 scope tracker (DESIGN.md §4.12).
//
// Walks a token stream (lint_tokens.h) with a brace/scope stack and
// attributes every token to its enclosing namespace + function, so rules
// can be flow-aware ("a `throw` inside `Server::io_loop`") instead of
// line-local.  Function bodies are detected by a declarator state machine:
// an identifier (possibly qualified, possibly `operator@`) followed by a
// balanced parameter list, then qualifiers (`const`, `noexcept`,
// `override`, `final`, `&`/`&&`, a trailing return type) or a
// constructor-initialiser list, then `{`.  Anything that does not match —
// brace initialisers, arrays of aggregates, lambdas assigned at namespace
// scope — opens a plain block and inherits the surrounding attribution.
//
// Qualified names join enclosing namespaces, enclosing class/struct names
// and the declarator itself with "::", skipping anonymous namespaces:
// `namespace vq { namespace { void f() {} } }` yields `vq::f`.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "tools/lint_tokens.h"

namespace vq::lint {

struct FunctionSpan {
  std::string qualified;     // e.g. "vq::serve::Server::io_loop"
  std::size_t name_line = 0;  // line of the declarator's name token
  std::size_t body_open = 0;  // token index of the body '{'
  std::size_t body_close = 0;  // token index of the matching '}' (or end)
};

class ScopeMap {
 public:
  explicit ScopeMap(const std::vector<Token>& toks);

  /// Qualified name of the function enclosing token `i`, "" at file /
  /// namespace / class scope.  Tokens inside local lambdas and blocks
  /// attribute to the containing function.
  [[nodiscard]] const std::string& function_at(std::size_t i) const;

  /// Every detected function definition, in source order.
  [[nodiscard]] const std::vector<FunctionSpan>& functions() const {
    return functions_;
  }

 private:
  std::vector<std::string> func_of_;  // per-token
  std::vector<FunctionSpan> functions_;
};

}  // namespace vq::lint
