#include "tools/lint_tokens.h"

#include <array>
#include <cctype>

namespace vq::lint {

namespace {

[[nodiscard]] bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool digit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

// Multi-char punctuation, longest first so maximal munch is a linear scan.
constexpr std::array<std::string_view, 25> kPuncts3 = {
    "<<=", ">>=", "->*", "...", "::", "->", "<<", ">>", "<=",
    ">=",  "==",  "!=",  "&&",  "||", "+=", "-=", "*=", "/=",
    "%=",  "&=",  "|=",  "^=",  "++", "--", "##"};

}  // namespace

std::vector<Token> tokenize(std::string_view src) {
  std::vector<Token> out;
  out.reserve(src.size() / 6 + 16);

  std::size_t i = 0;
  std::size_t line = 1;
  const std::size_t n = src.size();
  bool preproc = false;       // inside a preprocessor logical line
  bool line_has_token = false;  // anything but whitespace seen on this line

  const auto push = [&](TokKind kind, std::size_t start, std::string text) {
    Token t;
    t.kind = kind;
    t.line = line;
    t.offset = start;
    t.text = std::move(text);
    t.preproc = preproc;
    out.push_back(std::move(t));
  };

  while (i < n) {
    const char c = src[i];

    if (c == '\n') {
      // A preprocessor line ends at an unescaped newline.
      if (preproc) {
        std::size_t back = i;
        bool continued = false;
        while (back > 0) {
          const char p = src[back - 1];
          if (p == '\\') {
            continued = true;
            break;
          }
          if (p == ' ' || p == '\t' || p == '\r') {
            --back;
            continue;
          }
          break;
        }
        if (!continued) preproc = false;
      }
      ++line;
      line_has_token = false;
      ++i;
      continue;
    }

    if (c == ' ' || c == '\t' || c == '\r' || c == '\\' || c == '\f' ||
        c == '\v') {
      ++i;
      continue;
    }

    if (c == '#' && !line_has_token) {
      preproc = true;
      line_has_token = true;
      push(TokKind::kPunct, i, "#");
      ++i;
      continue;
    }
    line_has_token = true;

    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i < n && !(src[i] == '*' && i + 1 < n && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i < n) i += 2;
      continue;
    }

    // Identifiers / keywords — including string-literal prefixes, which are
    // only treated as prefixes when a quote follows immediately.
    if (ident_start(c)) {
      std::size_t end = i;
      while (end < n && ident_char(src[end])) ++end;
      const std::string_view word = src.substr(i, end - i);
      const bool raw_prefix =
          end < n && src[end] == '"' &&
          (word == "R" || word == "u8R" || word == "uR" || word == "UR" ||
           word == "LR");
      const bool str_prefix =
          end < n && (src[end] == '"' || src[end] == '\'') &&
          (word == "u8" || word == "u" || word == "U" || word == "L");
      if (raw_prefix) {
        // R"delim( ... )delim"
        std::size_t j = end + 1;
        while (j < n && src[j] != '(' && src[j] != '\n') ++j;
        const std::string delim{src.substr(end + 1, j - end - 1)};
        const std::string close = ")" + delim + "\"";
        const std::size_t body = j + 1;
        std::size_t stop = src.find(close, body);
        if (stop == std::string_view::npos) stop = n;
        push(TokKind::kString, i,
             std::string{src.substr(body, stop - body)});
        for (std::size_t k = i; k < stop && k < n; ++k) {
          if (src[k] == '\n') ++line;
        }
        i = stop == n ? n : stop + close.size();
        continue;
      }
      if (!str_prefix) {
        push(TokKind::kIdent, i, std::string{word});
        i = end;
        continue;
      }
      i = end;  // fall through to the quote with the prefix consumed
      continue;
    }

    // String literal.
    if (c == '"') {
      std::size_t j = i + 1;
      std::string content;
      while (j < n && src[j] != '"' && src[j] != '\n') {
        if (src[j] == '\\' && j + 1 < n) {
          content.push_back(src[j]);
          content.push_back(src[j + 1]);
          j += 2;
          continue;
        }
        content.push_back(src[j]);
        ++j;
      }
      push(TokKind::kString, i, std::move(content));
      i = j < n && src[j] == '"' ? j + 1 : j;
      continue;
    }

    // Char literal vs digit separator.  Separators are consumed while
    // lexing numbers below, so a bare quote here is a char literal.
    if (c == '\'') {
      std::size_t j = i + 1;
      std::string content;
      while (j < n && src[j] != '\'' && src[j] != '\n') {
        if (src[j] == '\\' && j + 1 < n) {
          content.push_back(src[j]);
          content.push_back(src[j + 1]);
          j += 2;
          continue;
        }
        content.push_back(src[j]);
        ++j;
      }
      push(TokKind::kChar, i, std::move(content));
      i = j < n && src[j] == '\'' ? j + 1 : j;
      continue;
    }

    // Number: digits, hex/bin prefixes, digit separators, exponents,
    // suffixes.  `.5` starts with '.' followed by a digit.
    if (digit(c) || (c == '.' && i + 1 < n && digit(src[i + 1]))) {
      std::size_t end = i;
      while (end < n) {
        const char d = src[end];
        if (ident_char(d) || d == '.') {
          ++end;
          continue;
        }
        if (d == '\'' && end + 1 < n && ident_char(src[end + 1])) {
          ++end;  // digit separator
          continue;
        }
        if ((d == '+' || d == '-') && end > i &&
            (src[end - 1] == 'e' || src[end - 1] == 'E' ||
             src[end - 1] == 'p' || src[end - 1] == 'P')) {
          ++end;  // exponent sign
          continue;
        }
        break;
      }
      push(TokKind::kNumber, i, std::string{src.substr(i, end - i)});
      i = end;
      continue;
    }

    // Punctuation, maximal munch.
    {
      std::string_view matched;
      for (const std::string_view p : kPuncts3) {
        if (src.compare(i, p.size(), p) == 0) {
          matched = p;
          break;
        }
      }
      if (!matched.empty()) {
        push(TokKind::kPunct, i, std::string{matched});
        i += matched.size();
      } else {
        push(TokKind::kPunct, i, std::string(1, c));
        ++i;
      }
    }
  }
  return out;
}

}  // namespace vq::lint
