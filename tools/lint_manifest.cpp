#include "tools/lint_manifest.h"

#include <cctype>

namespace vq::lint {

namespace {

// --- minimal JSON ------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  long long number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* get(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  JsonParser(std::string_view src, std::vector<std::string>& errors)
      : src_(src), errors_(errors) {}

  [[nodiscard]] JsonValue parse() {
    JsonValue v = value();
    ws();
    if (ok() && i_ != src_.size()) fail("trailing content after document");
    return v;
  }

 private:
  std::string_view src_;
  std::vector<std::string>& errors_;
  std::size_t i_ = 0;
  bool failed_ = false;

  [[nodiscard]] bool ok() const { return !failed_; }

  void fail(const std::string& what) {
    if (failed_) return;
    failed_ = true;
    std::size_t line = 1;
    for (std::size_t k = 0; k < i_ && k < src_.size(); ++k) {
      if (src_[k] == '\n') ++line;
    }
    errors_.push_back("json line " + std::to_string(line) + ": " + what);
  }

  void ws() {
    while (i_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[i_])) != 0) {
      ++i_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    ws();
    if (i_ < src_.size() && src_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  JsonValue value() {
    ws();
    if (i_ >= src_.size()) {
      fail("unexpected end of input");
      return {};
    }
    const char c = src_[i_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)) != 0) {
      return number();
    }
    if (src_.compare(i_, 4, "true") == 0) {
      i_ += 4;
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (src_.compare(i_, 5, "false") == 0) {
      i_ += 5;
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      return v;
    }
    if (src_.compare(i_, 4, "null") == 0) {
      i_ += 4;
      return {};
    }
    fail(std::string{"unexpected character '"} + c + "'");
    return {};
  }

  JsonValue object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    ++i_;  // '{'
    if (eat('}')) return v;
    while (ok()) {
      ws();
      if (i_ >= src_.size() || src_[i_] != '"') {
        fail("expected object key string");
        return v;
      }
      JsonValue key = string_value();
      if (!eat(':')) {
        fail("expected ':' after object key");
        return v;
      }
      v.object.emplace_back(std::move(key.string), value());
      if (eat(',')) continue;
      if (eat('}')) return v;
      fail("expected ',' or '}' in object");
      return v;
    }
    return v;
  }

  JsonValue array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    ++i_;  // '['
    if (eat(']')) return v;
    while (ok()) {
      v.array.push_back(value());
      if (eat(',')) continue;
      if (eat(']')) return v;
      fail("expected ',' or ']' in array");
      return v;
    }
    return v;
  }

  JsonValue string_value() {
    JsonValue v;
    v.type = JsonValue::Type::kString;
    ++i_;  // '"'
    while (i_ < src_.size() && src_[i_] != '"') {
      char c = src_[i_];
      if (c == '\\' && i_ + 1 < src_.size()) {
        const char e = src_[i_ + 1];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          default: c = e; break;  // \uXXXX not needed by the manifest
        }
        i_ += 2;
        v.string.push_back(c);
        continue;
      }
      v.string.push_back(c);
      ++i_;
    }
    if (i_ >= src_.size()) {
      fail("unterminated string");
    } else {
      ++i_;  // closing '"'
    }
    return v;
  }

  JsonValue number() {
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    const bool neg = src_[i_] == '-';
    if (neg) ++i_;
    long long acc = 0;
    bool any = false;
    while (i_ < src_.size() &&
           std::isdigit(static_cast<unsigned char>(src_[i_])) != 0) {
      acc = acc * 10 + (src_[i_] - '0');
      any = true;
      ++i_;
    }
    if (!any) fail("malformed number");
    v.number = neg ? -acc : acc;
    return v;
  }
};

void read_string_list(const JsonValue* v, std::vector<std::string>& out,
                      const std::string& where,
                      std::vector<std::string>& errors) {
  if (v == nullptr) return;
  if (v->type != JsonValue::Type::kArray) {
    errors.push_back(where + " must be an array of strings");
    return;
  }
  for (const JsonValue& e : v->array) {
    if (e.type != JsonValue::Type::kString) {
      errors.push_back(where + " must contain only strings");
      return;
    }
    out.push_back(e.string);
  }
}

}  // namespace

WireManifest parse_wire_manifest(std::string_view json) {
  WireManifest out;
  JsonParser parser{json, out.errors};
  const JsonValue doc = parser.parse();
  if (!out.errors.empty()) return out;
  const JsonValue* contracts = doc.get("contracts");
  if (contracts == nullptr ||
      contracts->type != JsonValue::Type::kArray) {
    out.errors.push_back("manifest must have a top-level contracts array");
    return out;
  }
  for (const JsonValue& e : contracts->array) {
    WireContract c;
    const std::string at = "contract #" +
                           std::to_string(out.contracts.size() + 1);
    if (e.type != JsonValue::Type::kObject) {
      out.errors.push_back(at + " is not an object");
      continue;
    }
    const auto str = [&](std::string_view key, std::string& dst,
                         bool required) {
      const JsonValue* v = e.get(key);
      if (v == nullptr) {
        if (required) {
          out.errors.push_back(at + " is missing \"" + std::string{key} +
                               "\"");
        }
        return;
      }
      if (v->type != JsonValue::Type::kString) {
        out.errors.push_back(at + " \"" + std::string{key} +
                             "\" must be a string");
        return;
      }
      dst = v->string;
    };
    str("name", c.name, true);
    str("kind", c.kind, true);
    str("constant", c.constant, true);
    str("header", c.header, true);
    if (c.kind == "magic") {
      str("value", c.magic, true);
      if (c.magic.empty()) {
        out.errors.push_back(at + " magic value must be non-empty");
      }
    } else if (c.kind == "number") {
      const JsonValue* v = e.get("value");
      if (v == nullptr || v->type != JsonValue::Type::kNumber) {
        out.errors.push_back(at + " number value must be an integer");
      } else {
        c.number = v->number;
      }
    } else if (!c.kind.empty()) {
      out.errors.push_back(at + " kind must be \"magic\" or \"number\"");
    }
    read_string_list(e.get("writers"), c.writers, at + " writers",
                     out.errors);
    read_string_list(e.get("readers"), c.readers, at + " readers",
                     out.errors);
    read_string_list(e.get("sites"), c.sites, at + " sites", out.errors);
    out.contracts.push_back(std::move(c));
  }
  return out;
}

HotPaths parse_hot_paths(std::string_view text) {
  HotPaths out;
  std::size_t lineno = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    ++lineno;
    std::size_t eol = text.find('\n', start);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(start, eol - start);
    start = eol + 1;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    while (!line.empty() &&
           (line.back() == ' ' || line.back() == '\t' ||
            line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (line.empty()) continue;
    const std::size_t sp = line.find(' ');
    const std::string_view kw = line.substr(0, sp);
    std::string_view arg =
        sp == std::string_view::npos ? std::string_view{} : line.substr(sp);
    while (!arg.empty() && arg.front() == ' ') arg.remove_prefix(1);
    if (arg.empty()) {
      out.errors.push_back("hot_paths line " + std::to_string(lineno) +
                           ": expected '<function|namespace> <name>'");
      continue;
    }
    if (kw == "function") {
      out.functions.emplace_back(arg);
    } else if (kw == "namespace") {
      out.namespaces.emplace_back(arg);
    } else {
      out.errors.push_back("hot_paths line " + std::to_string(lineno) +
                           ": unknown entry kind '" + std::string{kw} +
                           "'");
    }
  }
  return out;
}

bool hot_matches(const HotPaths& hot, const std::string& qualified) {
  for (const std::string& fn : hot.functions) {
    if (qualified == fn) return true;
    if (qualified.size() > fn.size() + 2 &&
        qualified.compare(qualified.size() - fn.size(), fn.size(), fn) ==
            0 &&
        qualified.compare(qualified.size() - fn.size() - 2, 2, "::") == 0) {
      return true;
    }
  }
  for (const std::string& ns : hot.namespaces) {
    if (qualified.size() > ns.size() + 2 &&
        qualified.compare(0, ns.size(), ns) == 0 &&
        qualified.compare(ns.size(), 2, "::") == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace vq::lint
