// vidqual_lint v2 tokenizer (DESIGN.md §4.12).
//
// A real (if deliberately small) C++ lexer: the v1 engine matched patterns
// against comment-stripped text, which cannot tell a `throw` in code from a
// `throw` in a raw string, or attribute a token to the function that
// contains it.  This tokenizer produces a flat token stream — identifiers,
// numbers, string/char literals, punctuation — with line numbers and a
// preprocessor flag, handling:
//
//   * line and block comments (dropped),
//   * string literals incl. raw strings R"delim(...)delim" and escapes,
//   * char literals vs digit separators (1'000'000),
//   * preprocessor lines incl. backslash continuations (tokens kept but
//     flagged, so rules can ignore `#include <thread>`),
//   * maximal-munch multi-char punctuation (::, ->, <<=, ...).
//
// String/char tokens carry the literal *content* (no quotes), so the
// wire-contract rule can compare magic bytes directly and the
// positioned-throw rule can inspect message text.

#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace vq::lint {

enum class TokKind {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literal (separators kept in text)
  kString,  // string literal content, quotes/prefix/raw-delimiters removed
  kChar,    // char literal content, quotes removed ('\n' -> "\\n")
  kPunct,   // operator / punctuation, maximal munch
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::size_t line = 0;    // 1-based
  std::size_t offset = 0;  // byte offset of the token start in the source
  std::string text;
  bool preproc = false;    // token sits on a preprocessor line
};

/// Lexes `src` into a token stream.  Never throws; malformed input
/// degrades to best-effort tokens (an unterminated literal runs to the
/// line end, an unterminated raw string to EOF).
[[nodiscard]] std::vector<Token> tokenize(std::string_view src);

}  // namespace vq::lint
