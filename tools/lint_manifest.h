// vidqual_lint v2 manifests (DESIGN.md §4.12).
//
// Two small inputs steer the v2 rule families:
//
//   docs/wire_contracts.json — the wire-contract manifest.  One entry per
//   magic / version / record-size / cap of the VQTR, VQTC, VQCK and
//   VQHS/VQDR formats, naming the constant, the header that declares it,
//   and every writer/reader (plus extra sanctioned literal sites, e.g.
//   chaos tests that forge corrupt files).  The wire-contract rule
//   cross-checks the manifest against the token streams, so a format bump
//   that touches one side but not the other (or not the manifest) fails
//   lint.  docs/METHOD.md §14 documents the bump procedure.
//
//   tools/hot_paths.txt — hot-path manifest: `function <qualified-name>`
//   and `namespace <prefix>` lines naming kernel code in which
//   allocation, locking, IO, throw and std::string construction are
//   findings.  In-source `// vq:hot` markers extend the same set without
//   editing the manifest.
//
// The JSON subset parsed here is exactly what the manifest needs:
// objects, arrays, strings (with escapes), integers, bools, null.
// Parsing never throws; problems land in `errors` and the engine turns
// them into findings against the manifest file itself.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace vq::lint {

struct WireContract {
  std::string name;      // stable id, e.g. "vqtc-chunk-magic"
  std::string kind;      // "magic" | "number"
  std::string magic;     // kind == "magic": the literal bytes, e.g. "VQCH"
  long long number = 0;  // kind == "number": the pinned value, e.g. 27
  std::string constant;  // the C++ constant, e.g. "kColumnarChunkMagic"
  std::string header;    // file declaring the constant (repo-relative)
  std::vector<std::string> writers;  // files that must reference constant
  std::vector<std::string> readers;  // files that must reference constant
  std::vector<std::string> sites;    // extra files allowed to spell magic
};

struct WireManifest {
  std::vector<WireContract> contracts;
  std::vector<std::string> errors;  // human-readable parse/shape problems
};

/// Parses docs/wire_contracts.json content.  Never throws.
[[nodiscard]] WireManifest parse_wire_manifest(std::string_view json);

struct HotPaths {
  std::vector<std::string> functions;   // fully qualified or suffix names
  std::vector<std::string> namespaces;  // qualified prefixes
  std::vector<std::string> errors;
};

/// Parses tools/hot_paths.txt content ('#' comments, blank lines ok).
[[nodiscard]] HotPaths parse_hot_paths(std::string_view text);

/// True when `qualified` (e.g. "vq::serve::Server::io_loop") is named by
/// the manifest: equal to / suffix of a `function` entry, or inside a
/// `namespace` prefix.
[[nodiscard]] bool hot_matches(const HotPaths& hot,
                               const std::string& qualified);

}  // namespace vq::lint
