// bench_check — the CI perf-regression gate.
//
//   usage: bench_check <current.json> <baseline.json>
//                      [--max-regress F=0.30] [--track KEY]...
//                      [--allow-missing-baseline] [--summary-md FILE]
//
// Compares a perf harness run (typically `perf_critical --smoke` or
// `perf_fold --smoke` in CI) against the checked-in baseline
// (bench/baselines/*.json) and exits nonzero when any tracked throughput
// metric regressed by more than the threshold:
// current < baseline * (1 - F).  Improvements and small fluctuations pass;
// the default 30 % floor absorbs runner-to-runner noise while still
// catching a genuine 2x slowdown (a 50 % regression).
//
// With no --track flags the perf_critical keys are checked (the original
// behaviour); each --track KEY replaces that default with an explicit
// higher-is-better key list, so one binary gates every harness.
//
// --allow-missing-baseline makes an absent/unreadable baseline file a
// clean pass (exit 0) instead of a usage error — the bootstrap case when a
// new harness lands before its baseline has been recorded on the CI
// runner class.  --summary-md FILE appends a markdown throughput table to
// FILE (CI points it at $GITHUB_STEP_SUMMARY), one row per tracked key.
//
// Only the flat numeric keys it tracks are read — the JSON "parser" is a
// deliberate 30-line key scanner, same dependency budget as the rest of
// tools/ (none).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

std::optional<std::string> slurp(const char* path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Value of `"key": <number>` in a flat JSON object; nullopt when absent.
std::optional<double> number_field(const std::string& json,
                                   const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  pos = json.find(':', pos + needle.size());
  if (pos == std::string::npos) return std::nullopt;
  const char* start = json.c_str() + pos + 1;
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return std::nullopt;
  return v;
}

/// Default tracked metrics — perf_critical's keys (higher is better).
constexpr const char* kDefaultTracked[] = {
    "indexed_epochs_per_sec",
    "indexed_sharded_epochs_per_sec",
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: bench_check <current.json> <baseline.json> "
                 "[--max-regress F=0.30] [--track KEY]... "
                 "[--allow-missing-baseline] [--summary-md FILE]\n");
    return 2;
  }
  double max_regress = 0.30;
  bool allow_missing_baseline = false;
  std::string summary_md;
  std::vector<std::string> tracked;
  for (int i = 3; i < argc; ++i) {
    const std::string arg{argv[i]};
    if (arg == "--max-regress" && i + 1 < argc) {
      max_regress = std::atof(argv[++i]);
    } else if (arg == "--track" && i + 1 < argc) {
      tracked.emplace_back(argv[++i]);
    } else if (arg == "--allow-missing-baseline") {
      allow_missing_baseline = true;
    } else if (arg == "--summary-md" && i + 1 < argc) {
      summary_md = argv[++i];
    } else {
      std::fprintf(stderr, "bench_check: unknown argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }
  if (tracked.empty()) {
    for (const char* key : kDefaultTracked) tracked.emplace_back(key);
  }

  const auto current = slurp(argv[1]);
  const auto baseline = slurp(argv[2]);
  if (!current.has_value()) {
    std::fprintf(stderr, "bench_check: cannot read %s\n", argv[1]);
    return 2;
  }
  if (!baseline.has_value()) {
    if (allow_missing_baseline) {
      std::fprintf(stderr,
                   "bench_check: baseline %s missing — passing "
                   "(--allow-missing-baseline); record one to arm the "
                   "gate\n",
                   argv[2]);
      return 0;
    }
    std::fprintf(stderr, "bench_check: cannot read %s\n", argv[2]);
    return 2;
  }

  int failures = 0;
  int checked = 0;
  std::vector<std::string> summary_rows;
  for (const std::string& key : tracked) {
    const auto cur = number_field(*current, key);
    const auto base = number_field(*baseline, key);
    if (!base.has_value()) {
      std::fprintf(stderr, "bench_check: baseline lacks '%s' — skipping\n",
                   key.c_str());
      continue;
    }
    if (!cur.has_value()) {
      std::fprintf(stderr, "bench_check: FAIL %s missing from current run\n",
                   key.c_str());
      summary_rows.push_back("| `" + key + "` | missing | — | — | FAIL |");
      ++failures;
      continue;
    }
    ++checked;
    const double floor = *base * (1.0 - max_regress);
    const double delta = *base > 0.0 ? (*cur - *base) / *base * 100.0 : 0.0;
    const bool regressed = *cur < floor;
    if (regressed) {
      std::fprintf(stderr,
                   "bench_check: FAIL %s = %.4g vs baseline %.4g "
                   "(%+.1f%%, floor %.4g at -%.0f%%)\n",
                   key.c_str(), *cur, *base, delta, floor,
                   max_regress * 100.0);
      ++failures;
    } else {
      std::fprintf(stderr, "bench_check: ok   %s = %.4g vs baseline %.4g "
                   "(%+.1f%%)\n",
                   key.c_str(), *cur, *base, delta);
    }
    char row[256];
    std::snprintf(row, sizeof(row),
                  "| `%s` | %.4g | %.4g | %+.1f%% | %s |", key.c_str(), *cur,
                  *base, delta, regressed ? "FAIL" : "ok");
    summary_rows.emplace_back(row);
  }
  if (!summary_md.empty()) {
    std::ofstream out{summary_md, std::ios::app};
    if (out) {
      out << "### bench_check: " << argv[1] << "\n\n"
          << "| metric | current | baseline | delta | status |\n"
          << "| --- | ---: | ---: | ---: | --- |\n";
      for (const std::string& row : summary_rows) out << row << "\n";
      out << "\n";
    } else {
      std::fprintf(stderr, "bench_check: cannot append to %s\n",
                   summary_md.c_str());
    }
  }
  if (checked == 0 && failures == 0) {
    std::fprintf(stderr,
                 "bench_check: no tracked metrics found in baseline\n");
    return 2;
  }
  if (failures > 0) {
    std::fprintf(stderr,
                 "bench_check: %d metric(s) regressed beyond %.0f%%\n",
                 failures, max_regress * 100.0);
    return 1;
  }
  std::fprintf(stderr, "bench_check: all %d tracked metric(s) within "
               "threshold\n", checked);
  return 0;
}
