#include "src/baseline/hhh.h"

#include <algorithm>
#include <bit>

#include "src/util/flat_hash_map.h"

namespace vq {

std::vector<HhhCluster> find_hhh(std::span<const Session> sessions,
                                 const ProblemThresholds& thresholds,
                                 const HhhParams& params, Metric metric) {
  // Residual problem mass per distinct leaf.
  FlatMap64<double> residual;
  double total_problem = 0.0;
  for (const Session& s : sessions) {
    if (!thresholds.is_problem(metric, s.quality)) continue;
    residual[ClusterKey::pack(kFullMask, s.attrs).raw()] += 1.0;
    total_problem += 1.0;
  }
  std::vector<HhhCluster> result;
  if (total_problem <= 0.0) return result;
  const double threshold = params.phi * total_problem;

  // Masks grouped by arity, processed bottom-up (most specific first).
  for (int arity = kNumDims; arity >= 1; --arity) {
    std::vector<std::uint8_t> level_masks;
    for (unsigned mask = 1; mask <= kFullMask; ++mask) {
      if (std::popcount(mask) == arity) {
        level_masks.push_back(static_cast<std::uint8_t>(mask));
      }
    }

    // Aggregate residual leaf mass into this level's clusters.
    FlatMap64<double> level_mass;
    residual.for_each([&](std::uint64_t raw_leaf, double mass) {
      if (mass <= 0.0) return;
      const ClusterKey leaf = ClusterKey::from_raw(raw_leaf);
      for (const std::uint8_t mask : level_masks) {
        level_mass[leaf.project(mask).raw()] += mass;
      }
    });

    // Mark heavy clusters.
    FlatSet64 marked;
    level_mass.for_each([&](std::uint64_t raw, double mass) {
      if (mass >= threshold) {
        marked.insert(raw);
        result.push_back({ClusterKey::from_raw(raw), mass});
      }
    });
    if (marked.empty()) continue;

    // Claim the residual of every leaf under a marked cluster.
    residual.for_each([&](std::uint64_t raw_leaf, double& mass) {
      if (mass <= 0.0) return;
      const ClusterKey leaf = ClusterKey::from_raw(raw_leaf);
      for (const std::uint8_t mask : level_masks) {
        if (marked.contains(leaf.project(mask).raw())) {
          mass = 0.0;
          return;
        }
      }
    });
  }

  std::sort(result.begin(), result.end(),
            [](const HhhCluster& a, const HhhCluster& b) {
              if (a.residual_mass != b.residual_mass) {
                return a.residual_mass > b.residual_mass;
              }
              return a.key.raw() < b.key.raw();
            });
  return result;
}

}  // namespace vq
