#include "src/baseline/hhh.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "src/obs/metrics.h"
#include "src/util/flat_hash_map.h"

namespace vq {

std::vector<HhhCluster> find_hhh(std::span<const Session> sessions,
                                 const ProblemThresholds& thresholds,
                                 const HhhParams& params, Metric metric) {
  // Residual problem mass per distinct leaf.
  FlatMap64<double> residual;
  double total_problem = 0.0;
  for (const Session& s : sessions) {
    if (!thresholds.is_problem(metric, s.quality)) continue;
    residual[ClusterKey::pack(kFullMask, s.attrs).raw()] += 1.0;
    total_problem += 1.0;
  }
  std::vector<HhhCluster> result;
  if (total_problem <= 0.0) return result;
  const double threshold = params.phi * total_problem;

  // Masks grouped by arity, processed bottom-up (most specific first).
  for (int arity = kNumDims; arity >= 1; --arity) {
    std::vector<std::uint8_t> level_masks;
    for (unsigned mask = 1; mask <= kFullMask; ++mask) {
      if (std::popcount(mask) == arity) {
        level_masks.push_back(static_cast<std::uint8_t>(mask));
      }
    }

    // Aggregate residual leaf mass into this level's clusters.
    FlatMap64<double> level_mass;
    residual.for_each([&](std::uint64_t raw_leaf, double mass) {
      if (mass <= 0.0) return;
      const ClusterKey leaf = ClusterKey::from_raw(raw_leaf);
      for (const std::uint8_t mask : level_masks) {
        level_mass[leaf.project(mask).raw()] += mass;
      }
    });

    // Mark heavy clusters.
    FlatSet64 marked;
    level_mass.for_each([&](std::uint64_t raw, double mass) {
      if (mass >= threshold) {
        marked.insert(raw);
        result.push_back({ClusterKey::from_raw(raw), mass});
      }
    });
    if (marked.empty()) continue;

    // Claim the residual of every leaf under a marked cluster.
    residual.for_each([&](std::uint64_t raw_leaf, double& mass) {
      if (mass <= 0.0) return;
      const ClusterKey leaf = ClusterKey::from_raw(raw_leaf);
      for (const std::uint8_t mask : level_masks) {
        if (marked.contains(leaf.project(mask).raw())) {
          mass = 0.0;
          return;
        }
      }
    });
  }

  std::sort(result.begin(), result.end(),
            [](const HhhCluster& a, const HhhCluster& b) {
              if (a.residual_mass != b.residual_mass) {
                return a.residual_mass > b.residual_mass;
              }
              return a.key.raw() < b.key.raw();
            });
  return result;
}

// --- count-min ---------------------------------------------------------------

namespace {

/// splitmix64 finisher with a per-row salt: depth independent-enough hash
/// rows from one 64-bit key, no RNG state.
[[nodiscard]] std::uint64_t mix_row(std::uint64_t key,
                                    std::uint32_t row) noexcept {
  std::uint64_t x = key + (row + 1) * 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct SketchMetrics {
  obs::Counter& epochs;
  obs::Counter& sessions_seen;
  obs::Counter& sessions_admitted;
  obs::Counter& leaves_admitted;
  obs::Counter& evictions;

  static SketchMetrics& get() {
    obs::Registry& reg = obs::Registry::global();
    static SketchMetrics m{reg.counter("sketch.epochs"),
                           reg.counter("sketch.sessions_seen"),
                           reg.counter("sketch.sessions_admitted"),
                           reg.counter("sketch.leaves_admitted"),
                           reg.counter("sketch.evictions")};
    return m;
  }
};

}  // namespace

CountMinSketch::CountMinSketch(std::uint32_t width, std::uint32_t depth)
    : width_{width}, depth_{depth} {
  if (width == 0 || depth == 0) {
    throw std::invalid_argument{"CountMinSketch: width and depth must be > 0"};
  }
  rows_.assign(static_cast<std::size_t>(width_) * depth_, 0);
}

void CountMinSketch::add(std::uint64_t key, std::uint64_t weight) noexcept {
  for (std::uint32_t r = 0; r < depth_; ++r) {
    rows_[static_cast<std::size_t>(r) * width_ + mix_row(key, r) % width_] +=
        weight;
  }
}

std::uint64_t CountMinSketch::estimate(std::uint64_t key) const noexcept {
  std::uint64_t best = ~std::uint64_t{0};
  for (std::uint32_t r = 0; r < depth_; ++r) {
    best = std::min(
        best,
        rows_[static_cast<std::size_t>(r) * width_ + mix_row(key, r) % width_]);
  }
  return best;
}

void CountMinSketch::clear() noexcept {
  std::fill(rows_.begin(), rows_.end(), 0);
}

// --- space-saving ------------------------------------------------------------

SpaceSaving::SpaceSaving(std::size_t capacity) : capacity_{capacity} {
  if (capacity == 0) {
    throw std::invalid_argument{"SpaceSaving: capacity must be > 0"};
  }
  slots_.reserve(capacity);
  heap_.reserve(capacity);
  pos_.reserve(capacity);
  index_.reserve(capacity * 2);
}

void SpaceSaving::sift_up(std::size_t heap_pos) noexcept {
  while (heap_pos > 0) {
    const std::size_t parent = (heap_pos - 1) / 2;
    if (slots_[heap_[parent]].count <= slots_[heap_[heap_pos]].count) break;
    std::swap(heap_[parent], heap_[heap_pos]);
    pos_[heap_[parent]] = static_cast<std::uint32_t>(parent);
    pos_[heap_[heap_pos]] = static_cast<std::uint32_t>(heap_pos);
    heap_pos = parent;
  }
}

void SpaceSaving::sift_down(std::size_t heap_pos) noexcept {
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t smallest = heap_pos;
    const std::size_t left = 2 * heap_pos + 1;
    const std::size_t right = left + 1;
    if (left < n && slots_[heap_[left]].count < slots_[heap_[smallest]].count) {
      smallest = left;
    }
    if (right < n &&
        slots_[heap_[right]].count < slots_[heap_[smallest]].count) {
      smallest = right;
    }
    if (smallest == heap_pos) break;
    std::swap(heap_[smallest], heap_[heap_pos]);
    pos_[heap_[smallest]] = static_cast<std::uint32_t>(smallest);
    pos_[heap_[heap_pos]] = static_cast<std::uint32_t>(heap_pos);
    heap_pos = smallest;
  }
}

void SpaceSaving::offer(std::uint64_t key, std::uint64_t weight) {
  if (const auto it = index_.find(key); it != index_.end()) {
    slots_[it->second].count += weight;
    sift_down(pos_[it->second]);  // count grew: moves away from the min root
    return;
  }
  if (slots_.size() < capacity_) {
    const auto slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back({key, weight, 0});
    heap_.push_back(slot);
    pos_.push_back(static_cast<std::uint32_t>(heap_.size() - 1));
    index_.emplace(key, slot);
    sift_up(heap_.size() - 1);
    return;
  }
  // Evict the minimum-count entry: the newcomer inherits its count as the
  // overcount bound (the space-saving invariant).
  const std::uint32_t slot = heap_[0];
  SpaceSavingEntry& entry = slots_[slot];
  index_.erase(entry.key);
  entry.error = entry.count;
  entry.count += weight;
  entry.key = key;
  index_.emplace(key, slot);
  sift_down(0);
  ++evictions_;
}

std::vector<SpaceSavingEntry> SpaceSaving::entries() const {
  std::vector<SpaceSavingEntry> out = slots_;
  std::sort(out.begin(), out.end(),
            [](const SpaceSavingEntry& a, const SpaceSavingEntry& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.key < b.key;
            });
  return out;
}

void SpaceSaving::clear() noexcept {
  slots_.clear();
  heap_.clear();
  pos_.clear();
  index_.clear();
}

// --- sketch-bounded admission ------------------------------------------------

SketchAdmission::SketchAdmission(const SketchAdmissionParams& params)
    : params_{params},
      heavy_{params.max_cells == 0
                 ? 1
                 : std::max<std::size_t>(1, params.max_cells / kFullMask)},
      counts_{params.cm_width, params.cm_depth} {}

LeafFold SketchAdmission::fold(const SessionColumns& columns,
                               const ProblemThresholds& thresholds,
                               std::uint32_t epoch) {
  if (params_.max_cells == 0) {
    return fold_sessions_columns(columns, thresholds, epoch);
  }
  SketchMetrics& metrics = SketchMetrics::get();
  const std::size_t n = columns.size();
  keys_.resize(n);
  bits_.resize(n);
  pack_leaf_keys_columns(columns, keys_);
  problem_bits_columns(columns, thresholds, bits_);

  // Pass 1: exact root over every session; heavy-leaf identities into the
  // summary.  Admission is per epoch — the summary restarts so a leaf that
  // went quiet cannot squat on a slot.
  heavy_.clear();
  counts_.clear();
  LeafFold fold;
  fold.epoch = epoch;
  const std::uint64_t evictions_before = heavy_.evictions();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t b = bits_[i];
    fold.root.sessions += 1;
    for (int m = 0; m < kNumMetrics; ++m) {
      fold.root.problems[m] += (b >> m) & 1u;
    }
    heavy_.offer(keys_[i]);
    counts_.add(keys_[i]);
  }

  // Pass 2: fold only the admitted leaves, in stream order, so each
  // admitted leaf's stats are exactly what the unbounded fold would hold.
  FlatSet64 admitted{heavy_.size() * 2};
  for (const SpaceSavingEntry& entry : heavy_.entries()) {
    admitted.insert(entry.key);
  }
  fold.leaves.reserve(admitted.size() * 2);
  std::uint64_t admitted_sessions = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!admitted.contains(keys_[i])) continue;
    ClusterStats& leaf = fold.leaves[keys_[i]];
    const std::uint8_t b = bits_[i];
    leaf.sessions += 1;
    for (int m = 0; m < kNumMetrics; ++m) {
      leaf.problems[m] += (b >> m) & 1u;
    }
    ++admitted_sessions;
  }

  const std::uint64_t evicted = heavy_.evictions() - evictions_before;
  report_.epochs += 1;
  report_.sessions_seen += n;
  report_.sessions_admitted += admitted_sessions;
  report_.leaves_admitted += fold.leaves.size();
  report_.evictions += evicted;
  metrics.epochs.add(1);
  metrics.sessions_seen.add(n);
  metrics.sessions_admitted.add(admitted_sessions);
  metrics.leaves_admitted.add(fold.leaves.size());
  metrics.evictions.add(evicted);
  return fold;
}

}  // namespace vq
