// Hierarchical Heavy Hitters (HHH) baseline (Zhang et al., IMC'04 style,
// adapted to the session-attribute lattice).
//
// The paper's related work (§7) argues HHH is *not* directly applicable to
// root-causing quality problems because it counts volume rather than
// attributing problems to one specific parent.  We implement it as the
// baseline so that claim can be evaluated: `bench/abl1_hhh_vs_critical`
// compares both detectors against the planted ground-truth events.
//
// Algorithm: process lattice levels bottom-up (arity 7 -> 1).  Each leaf
// carries its problem-session count as residual mass.  At every level, a
// cluster whose residual mass (sum over leaves beneath it not yet claimed
// by a marked descendant) reaches phi * total problem sessions is marked an
// HHH, and the leaves beneath it are claimed.

// The same sketch machinery also powers the bounded-memory admission tier
// (SketchAdmission below): at paper scale the exact lattice is bounded by
// distinct leaves x 127 cells, and a hostile or very sparse trace can push
// that past any budget.  --max-cells caps it by admitting only the heavy
// leaves of each epoch into the exact fold — identities tracked by a
// space-saving summary (Metwally et al., every leaf with true count >
// sessions/capacity is guaranteed present), counts cross-checked by a
// count-min sketch (never underestimates).  The lattice over admitted
// leaves is exact, so planted events heavy enough to matter survive; the
// recall/precision cost of the cut is quantified against the exact fold in
// tests/test_sketch.cpp and recorded in EXPERIMENTS.md.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/core/cluster_engine.h"
#include "src/core/columns.h"
#include "src/core/session.h"

namespace vq {

struct HhhParams {
  /// Mass threshold as a fraction of the epoch's problem sessions.
  double phi = 0.02;
};

struct HhhCluster {
  ClusterKey key;
  double residual_mass = 0.0;  // problem sessions claimed by this HHH
};

/// Finds the HHH set of one epoch for one metric. `sessions` must be the
/// epoch's session span. Results are sorted by residual mass, descending.
[[nodiscard]] std::vector<HhhCluster> find_hhh(
    std::span<const Session> sessions, const ProblemThresholds& thresholds,
    const HhhParams& params, Metric metric);

/// Count-min sketch over 64-bit keys.  estimate() never underestimates the
/// true added weight; the expected overcount is bounded by
/// (2 / width) * total_weight per row, taken as the min over `depth`
/// independent rows.  Deterministic: fixed mixing constants, no RNG.
class CountMinSketch {
 public:
  CountMinSketch(std::uint32_t width, std::uint32_t depth);

  void add(std::uint64_t key, std::uint64_t weight = 1) noexcept;
  [[nodiscard]] std::uint64_t estimate(std::uint64_t key) const noexcept;
  /// Zeroes every cell; capacity is retained for per-epoch reuse.
  void clear() noexcept;

  [[nodiscard]] std::uint32_t width() const noexcept { return width_; }
  [[nodiscard]] std::uint32_t depth() const noexcept { return depth_; }

 private:
  std::uint32_t width_;
  std::uint32_t depth_;
  std::vector<std::uint64_t> rows_;  // depth_ x width_, row-major
};

struct SpaceSavingEntry {
  std::uint64_t key = 0;
  std::uint64_t count = 0;  // upper bound on the key's true weight
  std::uint64_t error = 0;  // overcount inherited from the evicted entry
};

/// Space-saving heavy-hitter summary (Metwally et al., ICDT'05) over 64-bit
/// keys with O(capacity) memory.  Guarantees: count is always an upper
/// bound on the key's true weight, count - error a lower bound, and any key
/// whose true weight exceeds total_weight / capacity is present.
class SpaceSaving {
 public:
  explicit SpaceSaving(std::size_t capacity);

  void offer(std::uint64_t key, std::uint64_t weight = 1);
  /// Entries sorted by count descending (key ascending on ties).
  [[nodiscard]] std::vector<SpaceSavingEntry> entries() const;
  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }
  /// Forgets every entry; capacity is retained for per-epoch reuse.
  void clear() noexcept;

 private:
  void sift_up(std::size_t heap_pos) noexcept;
  void sift_down(std::size_t heap_pos) noexcept;

  std::size_t capacity_;
  std::vector<SpaceSavingEntry> slots_;
  std::vector<std::uint32_t> heap_;  // slot indices, min-heap by count
  std::vector<std::uint32_t> pos_;   // slot index -> heap position
  std::unordered_map<std::uint64_t, std::uint32_t> index_;  // key -> slot
  std::uint64_t evictions_ = 0;
};

struct SketchAdmissionParams {
  /// Lattice cell budget; each admitted leaf expands into at most 127
  /// cells, so the admitted-leaf capacity is max(1, max_cells / 127).
  /// 0 = unlimited: fold() degrades to the exact fold_sessions_columns.
  std::size_t max_cells = 0;
  std::uint32_t cm_width = 8192;
  std::uint32_t cm_depth = 4;
};

struct SketchAdmissionReport {
  std::uint64_t epochs = 0;
  std::uint64_t sessions_seen = 0;
  std::uint64_t sessions_admitted = 0;
  std::uint64_t leaves_admitted = 0;
  std::uint64_t evictions = 0;
};

/// Bounded-memory admission front end for the streaming pipeline: a
/// PipelineConfig::fold_provider that folds only each epoch's heavy leaves.
/// Per epoch: pass 1 streams every session's leaf key through the
/// space-saving summary (and the count-min cross-check) and accumulates the
/// exact root; pass 2 folds only sessions whose leaf survived into the
/// LeafFold, in stream order, so admitted leaves carry their exact stats
/// and downstream analyses (incremental or from-scratch) see an exact
/// sub-lattice.  The root is always exact — global problem ratios, and
/// therefore the flagging thresholds, are unaffected by the cut.
/// Deterministic for a given input; not thread-safe (streaming epochs are
/// sequential).  Reusable across epochs; scratch capacity is retained.
class SketchAdmission {
 public:
  explicit SketchAdmission(const SketchAdmissionParams& params);

  [[nodiscard]] LeafFold fold(const SessionColumns& columns,
                              const ProblemThresholds& thresholds,
                              std::uint32_t epoch);

  [[nodiscard]] const SketchAdmissionReport& report() const noexcept {
    return report_;
  }
  [[nodiscard]] std::size_t leaf_capacity() const noexcept {
    return heavy_.capacity();
  }

 private:
  SketchAdmissionParams params_;
  SpaceSaving heavy_;
  CountMinSketch counts_;
  SketchAdmissionReport report_;
  std::vector<std::uint64_t> keys_;  // per-epoch scratch
  std::vector<std::uint8_t> bits_;   // per-epoch scratch
};

}  // namespace vq
