// Hierarchical Heavy Hitters (HHH) baseline (Zhang et al., IMC'04 style,
// adapted to the session-attribute lattice).
//
// The paper's related work (§7) argues HHH is *not* directly applicable to
// root-causing quality problems because it counts volume rather than
// attributing problems to one specific parent.  We implement it as the
// baseline so that claim can be evaluated: `bench/abl1_hhh_vs_critical`
// compares both detectors against the planted ground-truth events.
//
// Algorithm: process lattice levels bottom-up (arity 7 -> 1).  Each leaf
// carries its problem-session count as residual mass.  At every level, a
// cluster whose residual mass (sum over leaves beneath it not yet claimed
// by a marked descendant) reaches phi * total problem sessions is marked an
// HHH, and the leaves beneath it are claimed.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/cluster_engine.h"
#include "src/core/session.h"

namespace vq {

struct HhhParams {
  /// Mass threshold as a fraction of the epoch's problem sessions.
  double phi = 0.02;
};

struct HhhCluster {
  ClusterKey key;
  double residual_mass = 0.0;  // problem sessions claimed by this HHH
};

/// Finds the HHH set of one epoch for one metric. `sessions` must be the
/// epoch's session span. Results are sorted by residual mass, descending.
[[nodiscard]] std::vector<HhhCluster> find_hhh(
    std::span<const Session> sessions, const ProblemThresholds& thresholds,
    const HhhParams& params, Metric metric);

}  // namespace vq
