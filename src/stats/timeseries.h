// Fixed-length per-epoch time series plus the streak decomposition used by
// the persistence analysis (paper §4.1): consecutive flagged epochs coalesce
// into one logical problem event.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace vq {

/// Decomposes a boolean per-epoch activity series into maximal runs of
/// consecutive `true` epochs and reports their lengths (in epochs).
[[nodiscard]] std::vector<std::uint32_t> streak_lengths(
    std::span<const bool> active);

/// Streak lengths from a sorted list of active epoch indices (ascending,
/// unique). Equivalent to streak_lengths over the implied boolean series.
[[nodiscard]] std::vector<std::uint32_t> streak_lengths_from_epochs(
    std::span<const std::uint32_t> active_epochs);

/// Median of an unsorted list of streak lengths (lower median); 0 if empty.
[[nodiscard]] std::uint32_t median_streak(std::vector<std::uint32_t> lengths);

/// Maximum streak length; 0 if empty.
[[nodiscard]] std::uint32_t max_streak(
    std::span<const std::uint32_t> lengths) noexcept;

/// A streak with its position: [start, start + length) epochs.
struct Streak {
  std::uint32_t start;
  std::uint32_t length;
};

/// Positioned streaks from sorted unique active epoch indices.
[[nodiscard]] std::vector<Streak> streaks_from_epochs(
    std::span<const std::uint32_t> active_epochs);

}  // namespace vq
