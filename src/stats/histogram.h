// Fixed-bin and logarithmic histograms with text rendering — used by the
// report generator to show metric distributions without external plotting.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vq {

class Histogram {
 public:
  /// Linear bins over [lo, hi); values outside clamp into the end bins.
  static Histogram linear(double lo, double hi, std::size_t bins);

  /// Logarithmic bins over [lo, hi), lo > 0; non-positive samples clamp
  /// into the first bin.
  static Histogram logarithmic(double lo, double hi, std::size_t bins);

  void add(double value) noexcept;

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t bin_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const;
  /// [lower, upper) bounds of a bin.
  [[nodiscard]] std::pair<double, double> bounds(std::size_t bin) const;

  /// Fraction of samples at or below `value` (by bin resolution).
  [[nodiscard]] double cumulative_fraction(double value) const noexcept;

  /// Multi-line ASCII rendering: one row per bin with a proportional bar.
  [[nodiscard]] std::string render(std::size_t bar_width = 40) const;

 private:
  Histogram(std::vector<double> edges);

  [[nodiscard]] std::size_t bin_of(double value) const noexcept;

  std::vector<double> edges_;  // bin_count()+1 ascending edges
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace vq
