#include "src/stats/summary.h"

#include <algorithm>
#include <cmath>

namespace vq {

void StreamingSummary::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double StreamingSummary::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double StreamingSummary::stddev() const noexcept {
  return std::sqrt(variance());
}

void StreamingSummary::merge(const StreamingSummary& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double combined = na + nb;
  mean_ += delta * nb / combined;
  m2_ += other.m2_ + delta * delta * na * nb / combined;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

}  // namespace vq
