#include "src/stats/timeseries.h"

#include <algorithm>

namespace vq {

std::vector<std::uint32_t> streak_lengths(std::span<const bool> active) {
  std::vector<std::uint32_t> lengths;
  std::uint32_t run = 0;
  for (const bool flag : active) {
    if (flag) {
      ++run;
    } else if (run > 0) {
      lengths.push_back(run);
      run = 0;
    }
  }
  if (run > 0) lengths.push_back(run);
  return lengths;
}

std::vector<std::uint32_t> streak_lengths_from_epochs(
    std::span<const std::uint32_t> active_epochs) {
  std::vector<std::uint32_t> lengths;
  for (const auto& streak : streaks_from_epochs(active_epochs)) {
    lengths.push_back(streak.length);
  }
  return lengths;
}

std::vector<Streak> streaks_from_epochs(
    std::span<const std::uint32_t> active_epochs) {
  std::vector<Streak> out;
  if (active_epochs.empty()) return out;
  std::uint32_t start = active_epochs.front();
  std::uint32_t prev = start;
  for (std::size_t i = 1; i < active_epochs.size(); ++i) {
    const std::uint32_t e = active_epochs[i];
    if (e == prev + 1) {
      prev = e;
      continue;
    }
    out.push_back({start, prev - start + 1});
    start = prev = e;
  }
  out.push_back({start, prev - start + 1});
  return out;
}

std::uint32_t median_streak(std::vector<std::uint32_t> lengths) {
  if (lengths.empty()) return 0;
  const std::size_t mid = (lengths.size() - 1) / 2;  // lower median
  std::nth_element(lengths.begin(), lengths.begin() + mid, lengths.end());
  return lengths[mid];
}

std::uint32_t max_streak(std::span<const std::uint32_t> lengths) noexcept {
  std::uint32_t best = 0;
  for (const auto len : lengths) best = std::max(best, len);
  return best;
}

}  // namespace vq
