// Jaccard similarity between sets of 64-bit keys (paper Table 2: overlap of
// top-100 critical clusters across quality metrics).

#pragma once

#include <cstdint>
#include <span>

namespace vq {

/// |A ∩ B| / |A ∪ B| for two key sets given as unsorted spans with unique
/// elements. Returns 0 when both sets are empty.
[[nodiscard]] double jaccard_index(std::span<const std::uint64_t> a,
                                   std::span<const std::uint64_t> b);

}  // namespace vq
