#include "src/stats/cdf.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace vq {

EmpiricalCdf::EmpiricalCdf(std::span<const double> samples)
    : sorted_(samples.begin(), samples.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  if (sorted_.empty()) {
    throw std::invalid_argument{"EmpiricalCdf::quantile: empty CDF"};
  }
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument{"EmpiricalCdf::quantile: q outside [0,1]"};
  }
  if (q == 0.0) return sorted_.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  return sorted_[std::min(rank == 0 ? 0 : rank - 1, sorted_.size() - 1)];
}

double EmpiricalCdf::min() const {
  if (sorted_.empty()) throw std::invalid_argument{"EmpiricalCdf: empty"};
  return sorted_.front();
}

double EmpiricalCdf::max() const {
  if (sorted_.empty()) throw std::invalid_argument{"EmpiricalCdf: empty"};
  return sorted_.back();
}

std::vector<EmpiricalCdf::Point> EmpiricalCdf::curve(
    std::size_t points) const {
  std::vector<Point> out;
  if (sorted_.empty() || points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = (points == 1)
                         ? 1.0
                         : static_cast<double>(i) /
                               static_cast<double>(points - 1);
    out.push_back({quantile(q), q});
  }
  return out;
}

std::string EmpiricalCdf::table(std::size_t points,
                                std::string_view value_label) const {
  std::string out;
  char line[128];
  std::snprintf(line, sizeof line, "%20.*s  %10s\n",
                static_cast<int>(value_label.size()), value_label.data(),
                "P(X<=v)");
  out += line;
  for (const auto& [value, probability] : curve(points)) {
    std::snprintf(line, sizeof line, "%20.6g  %10.4f\n", value, probability);
    out += line;
  }
  return out;
}

}  // namespace vq
