// Streaming summary statistics (Welford) — O(1) memory per tracked series.

#pragma once

#include <cstdint>
#include <limits>

namespace vq {

class StreamingSummary {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Pools two summaries (parallel reduction).
  void merge(const StreamingSummary& other) noexcept;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace vq
