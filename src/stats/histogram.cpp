#include "src/stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace vq {

Histogram::Histogram(std::vector<double> edges)
    : edges_(std::move(edges)), counts_(edges_.size() - 1, 0) {}

Histogram Histogram::linear(double lo, double hi, std::size_t bins) {
  if (!(lo < hi) || bins == 0) {
    throw std::invalid_argument{"Histogram::linear: need lo < hi, bins > 0"};
  }
  std::vector<double> edges(bins + 1);
  for (std::size_t i = 0; i <= bins; ++i) {
    edges[i] = lo + (hi - lo) * static_cast<double>(i) /
                        static_cast<double>(bins);
  }
  return Histogram{std::move(edges)};
}

Histogram Histogram::logarithmic(double lo, double hi, std::size_t bins) {
  if (!(0.0 < lo && lo < hi) || bins == 0) {
    throw std::invalid_argument{
        "Histogram::logarithmic: need 0 < lo < hi, bins > 0"};
  }
  std::vector<double> edges(bins + 1);
  const double log_lo = std::log(lo);
  const double log_hi = std::log(hi);
  for (std::size_t i = 0; i <= bins; ++i) {
    edges[i] = std::exp(log_lo + (log_hi - log_lo) * static_cast<double>(i) /
                                     static_cast<double>(bins));
  }
  return Histogram{std::move(edges)};
}

std::size_t Histogram::bin_of(double value) const noexcept {
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
  if (it == edges_.begin()) return 0;
  const auto idx = static_cast<std::size_t>(it - edges_.begin()) - 1;
  return std::min(idx, counts_.size() - 1);
}

void Histogram::add(double value) noexcept {
  ++counts_[bin_of(value)];
  ++total_;
}

std::uint64_t Histogram::count(std::size_t bin) const {
  return counts_.at(bin);
}

std::pair<double, double> Histogram::bounds(std::size_t bin) const {
  if (bin >= counts_.size()) {
    throw std::out_of_range{"Histogram::bounds: bin out of range"};
  }
  return {edges_[bin], edges_[bin + 1]};
}

double Histogram::cumulative_fraction(double value) const noexcept {
  if (total_ == 0) return 0.0;
  std::uint64_t below = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (edges_[b + 1] <= value) {
      below += counts_[b];
    } else {
      break;
    }
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t bar_width) const {
  std::string out;
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  char line[160];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto width = static_cast<std::size_t>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) *
        static_cast<double>(bar_width));
    std::snprintf(line, sizeof line, "[%10.4g, %10.4g) %8llu |", edges_[b],
                  edges_[b + 1],
                  static_cast<unsigned long long>(counts_[b]));
    out += line;
    out.append(width, '#');
    out += '\n';
  }
  return out;
}

}  // namespace vq
