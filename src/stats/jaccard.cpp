#include "src/stats/jaccard.h"

#include <algorithm>
#include <vector>

namespace vq {

double jaccard_index(std::span<const std::uint64_t> a,
                     std::span<const std::uint64_t> b) {
  if (a.empty() && b.empty()) return 0.0;
  std::vector<std::uint64_t> sa(a.begin(), a.end());
  std::vector<std::uint64_t> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  std::size_t inter = 0;
  auto ia = sa.begin();
  auto ib = sb.begin();
  while (ia != sa.end() && ib != sb.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++inter;
      ++ia;
      ++ib;
    }
  }
  const std::size_t uni = sa.size() + sb.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace vq
