// Empirical CDF over a sample vector; the building block for every
// distribution figure in the paper (Fig. 1, 7, 8).

#pragma once

#include <span>
#include <string>
#include <vector>

namespace vq {

class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;

  /// Copies and sorts the samples.
  explicit EmpiricalCdf(std::span<const double> samples);

  /// Takes ownership; sorts in place.
  explicit EmpiricalCdf(std::vector<double> samples);

  [[nodiscard]] bool empty() const noexcept { return sorted_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }

  /// P(X <= x). 0 for empty CDFs.
  [[nodiscard]] double at(double x) const noexcept;

  /// Smallest sample value v with P(X <= v) >= q, q in [0, 1].
  /// Throws std::invalid_argument on empty CDFs or q outside [0, 1].
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Evenly spaced (in quantile space) curve points for plotting/printing:
  /// `points` pairs of (value, cumulative probability).
  struct Point {
    double value;
    double probability;
  };
  [[nodiscard]] std::vector<Point> curve(std::size_t points) const;

  /// Renders an aligned two-column table ("value  P(X<=value)") with a
  /// header line; used by the bench harnesses to print figure data.
  [[nodiscard]] std::string table(std::size_t points,
                                  std::string_view value_label) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace vq
