#include "src/serve/framing.h"

#include <cstring>
#include <sstream>

#include "src/gen/trace_format.h"

namespace vq::serve {

namespace {

using detail::fnv1a;
using detail::load_pod;

/// True when the four bytes at `p` spell either frame magic.
[[nodiscard]] bool is_magic(const char* p) noexcept {
  return std::memcmp(p, kHelloMagic, 4) == 0 ||
         std::memcmp(p, kDataMagic, 4) == 0;
}

template <typename T>
void append_pod(std::string& out, T value) {
  char bytes[sizeof value];
  std::memcpy(bytes, &value, sizeof value);
  out.append(bytes, sizeof value);
}

}  // namespace

std::string_view frame_error_name(FrameError e) noexcept {
  switch (e) {
    case FrameError::kBadMagic:
      return "bad-magic";
    case FrameError::kOversize:
      return "oversize";
    case FrameError::kBadLength:
      return "bad-length";
    case FrameError::kBadChecksum:
      return "bad-checksum";
  }
  return "?";
}

void FrameDecoder::feed(const char* data, std::size_t n) {
  buf_.append(data, n);
}

void FrameDecoder::record_error(FrameError e) {
  stats_.error_counts[static_cast<std::size_t>(e)] += 1;
  pending_errors_.push_back(e);
}

void FrameDecoder::enter_resync(FrameError e) {
  if (in_resync_) return;
  in_resync_ = true;
  stats_.resyncs += 1;
  record_error(e);
}

bool FrameDecoder::mid_frame() const noexcept {
  // Pending bytes that are (or could still become) an incomplete frame.
  if (buf_.size() < kFrameHeaderBytes) return !buf_.empty();
  if (!is_magic(buf_.data())) return false;  // garbage awaiting resync
  const auto len = load_pod<std::uint32_t>(buf_.data() + 4);
  return buf_.size() <
         kFrameHeaderBytes + static_cast<std::size_t>(len) +
             kFrameTrailerBytes;
}

std::vector<FrameError> FrameDecoder::take_errors() {
  std::vector<FrameError> out;
  out.swap(pending_errors_);
  return out;
}

bool FrameDecoder::next(Frame& out) {
  for (;;) {
    if (buf_.size() < 4) return false;
    if (!is_magic(buf_.data())) {
      // Garbage at the head: scan for the next magic.  The last 3 bytes are
      // kept — a magic may be split across feeds.
      enter_resync(FrameError::kBadMagic);
      const std::size_t checkable = buf_.size() - 3;
      std::size_t i = 1;
      while (i < checkable && !is_magic(buf_.data() + i)) ++i;
      if (i < checkable) {
        stats_.bytes_skipped += i;
        buf_.erase(0, i);
        in_resync_ = false;
      } else {
        stats_.bytes_skipped += checkable;
        buf_.erase(0, checkable);
        return false;
      }
    }
    if (buf_.size() < kFrameHeaderBytes) return false;

    const bool hello = std::memcmp(buf_.data(), kHelloMagic, 4) == 0;
    const auto len =
        static_cast<std::size_t>(load_pod<std::uint32_t>(buf_.data() + 4));
    if (len > max_frame_bytes_) {
      // A corrupted length field must not demand the allocation it claims:
      // drop the magic and rescan inside what follows.
      record_error(FrameError::kOversize);
      stats_.resyncs += 1;
      stats_.bytes_skipped += 4;
      buf_.erase(0, 4);
      in_resync_ = true;
      continue;
    }
    if (!hello && (len == 0 || len % kRecordBytes != 0)) {
      record_error(FrameError::kBadLength);
      stats_.resyncs += 1;
      stats_.bytes_skipped += 4;
      buf_.erase(0, 4);
      in_resync_ = true;
      continue;
    }
    const std::size_t total = kFrameHeaderBytes + len + kFrameTrailerBytes;
    if (buf_.size() < total) return false;

    const char* payload = buf_.data() + kFrameHeaderBytes;
    const auto stored = load_pod<std::uint64_t>(payload + len);
    if (stored != fnv1a(payload, len)) {
      // The envelope was intact but the bytes rotted in flight: the whole
      // frame is quarantined with an exact row count.
      record_error(FrameError::kBadChecksum);
      if (!hello) stats_.rows_discarded += len / kRecordBytes;
      buf_.erase(0, total);
      continue;
    }

    out.type = hello ? FrameType::kHello : FrameType::kData;
    out.payload.assign(payload, len);
    buf_.erase(0, total);
    stats_.frames_decoded += 1;
    if (hello) {
      stats_.hello_frames += 1;
    } else {
      stats_.data_frames += 1;
      stats_.rows_decoded += len / kRecordBytes;
    }
    return true;
  }
}

void append_record(std::string& out, const Session& s) {
  for (int d = 0; d < kNumDims; ++d) append_pod(out, s.attrs.v[d]);
  append_pod(out, s.epoch);
  append_pod(out, s.quality.buffering_ratio);
  append_pod(out, s.quality.bitrate_kbps);
  append_pod(out, s.quality.join_time_ms);
  append_pod(out, static_cast<std::uint8_t>(s.quality.join_failed ? 1 : 0));
}

// The frame record layout is the VQTR container's record layout verbatim;
// a bump on either side must move both (docs/wire_contracts.json).
static_assert(kRecordBytes == detail::kBinaryRecordSize);

Session parse_record(const char* record) noexcept {
  Session s;
  for (int d = 0; d < kNumDims; ++d) {
    s.attrs.v[d] = load_pod<std::uint16_t>(record + 2 * d);
  }
  s.epoch = load_pod<std::uint32_t>(record + kRecordEpochOffset);
  s.quality.buffering_ratio = load_pod<float>(record + kRecordBufferingOffset);
  s.quality.bitrate_kbps = load_pod<float>(record + kRecordBitrateOffset);
  s.quality.join_time_ms = load_pod<float>(record + kRecordJoinTimeOffset);
  s.quality.join_failed =
      load_pod<std::uint8_t>(record + kRecordJoinFailedOffset) != 0;
  return s;
}

std::string encode_frame(const char magic[4], std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size() + kFrameTrailerBytes);
  out.append(magic, 4);
  append_pod(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  append_pod(out, fnv1a(payload.data(), payload.size()));
  return out;
}

std::string encode_hello(const AttributeSchema& schema) {
  std::ostringstream payload;
  detail::write_schema_section(payload, schema, "encode_hello");
  return encode_frame(kHelloMagic, payload.str());
}

std::string encode_data(std::span<const Session> rows) {
  std::string payload;
  payload.reserve(rows.size() * kRecordBytes);
  for (const Session& s : rows) append_record(payload, s);
  return encode_frame(kDataMagic, payload);
}

}  // namespace vq::serve
