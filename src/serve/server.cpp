#include "src/serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>  // acceptor thread; see lint carve-out for src/serve
#include <utility>

#include "src/gen/trace_format.h"
#include "src/obs/metrics.h"

namespace vq::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Why a connection was closed (drives the ServeStats close buckets).
enum class CloseKind : std::uint8_t {
  kClean = 0,     // peer closed after complete frames
  kIdle = 1,      // idle deadline fired
  kReadTimeout = 2,  // stalled mid-frame past the read deadline
  kProtocol = 3,  // hello/framing/strict-policy violation
  kError = 4,     // socket error
  kDrain = 5,     // server draining
};

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

/// Per-connection IO state; owned by the IO thread exclusively.
struct Server::Connection {
  int fd = -1;
  std::uint64_t id = 0;
  FrameDecoder decoder;
  bool hello_done = false;
  /// Producer attribute id -> master schema id, per dimension (built from
  /// the hello frame).
  std::array<std::vector<std::uint16_t>, kNumDims> remap;
  /// Newest epoch seen in any valid-epoch row (watermark contribution);
  /// -1 until the first data row.
  std::int64_t max_epoch_seen = -1;
  Clock::time_point last_activity;
  /// Cursors into the decoder's cumulative stats, so each process_frames
  /// pass accounts exactly the delta.
  std::uint64_t seen_rows_discarded = 0;
  std::uint64_t seen_bytes_skipped = 0;
  std::uint64_t seen_frames_decoded = 0;
  bool close_requested = false;
  CloseKind close_kind = CloseKind::kClean;
  std::string close_reason;
};

struct Server::Impl {
  explicit Impl(const ServeConfig& config)
      : queue(config.queue_capacity_rows, config.overload) {}

  using Queue = BoundedRowQueue<Session>;
  using Batch = Queue::Batch;

  int listen_fd = -1;
  bool is_unix = false;
  std::string unix_path;

  // IO thread only.
  std::map<int, Connection> conns;
  std::uint64_t next_conn_id = 1;

  Queue queue;

  // Cross-thread signals (single writer each; relaxed-order safe).
  std::atomic<std::int64_t> watermark{-1};
  std::atomic<std::int64_t> max_epoch_seen_all{-1};
  std::atomic<std::uint32_t> next_seal_published{0};
  std::atomic<bool> draining{false};
  std::atomic<bool> io_done{false};
  std::atomic<bool> seen_connection{false};

  std::thread io_thread;

  mutable Mutex stats_mutex;
  ServeStats stats VQ_GUARDED_BY(stats_mutex);
  std::map<std::uint32_t, std::uint64_t> epoch_quarantine
      VQ_GUARDED_BY(stats_mutex);

  mutable Mutex schema_mutex;

  // Detector thread only.
  std::map<std::uint32_t, std::vector<Session>> pending;
  std::uint32_t next_seal = 0;

  /// Stats row for a connection id (ids are dense from 1, in accept order).
  ConnectionStats& conn_stats(std::uint64_t id) VQ_REQUIRES(stats_mutex) {
    return stats.connections[id - 1];
  }
};

Server::Server(ServeConfig config, StreamingDetector& detector,
               AttributeSchema& schema)
    : config_(std::move(config)),
      detector_(detector),
      schema_(schema),
      impl_(std::make_unique<Impl>(config_)) {
  const std::string& addr = config_.address;
  if (addr.rfind("unix:", 0) == 0) {
    impl_->is_unix = true;
    impl_->unix_path = addr.substr(5);
    if (impl_->unix_path.empty() ||
        impl_->unix_path.size() >= sizeof(sockaddr_un::sun_path)) {
      throw std::runtime_error{"serve: bad unix socket path: " + addr};
    }
    impl_->listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (impl_->listen_fd < 0) {
      throw std::runtime_error{"serve: socket(): " +
                               std::string{std::strerror(errno)}};
    }
    ::unlink(impl_->unix_path.c_str());  // the server owns this path
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, impl_->unix_path.c_str(),
                 sizeof(sa.sun_path) - 1);
    if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&sa),
               sizeof sa) != 0) {
      throw std::runtime_error{"serve: bind(" + impl_->unix_path +
                               "): " + std::strerror(errno)};
    }
  } else {
    const std::size_t colon = addr.rfind(':');
    if (colon == std::string::npos) {
      throw std::runtime_error{
          "serve: address must be unix:<path> or <host>:<port>, got " + addr};
    }
    std::string host = addr.substr(0, colon);
    if (host.empty() || host == "localhost") host = "127.0.0.1";
    const std::string port_str = addr.substr(colon + 1);
    int port = -1;
    try {
      port = std::stoi(port_str);
    } catch (const std::exception&) {
      port = -1;
    }
    if (port < 0 || port > 65535) {
      throw std::runtime_error{"serve: bad port in address: " + addr};
    }
    impl_->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (impl_->listen_fd < 0) {
      throw std::runtime_error{"serve: socket(): " +
                               std::string{std::strerror(errno)}};
    }
    const int one = 1;
    ::setsockopt(impl_->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof one);
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
      throw std::runtime_error{"serve: bad IPv4 host in address: " + addr};
    }
    if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&sa),
               sizeof sa) != 0) {
      throw std::runtime_error{"serve: bind(" + addr +
                               "): " + std::strerror(errno)};
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(impl_->listen_fd, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      port_ = ntohs(bound.sin_port);
    }
  }
  if (::listen(impl_->listen_fd, 64) != 0) {
    throw std::runtime_error{"serve: listen(): " +
                             std::string{std::strerror(errno)}};
  }
  set_nonblocking(impl_->listen_fd);
}

Server::~Server() {
  if (impl_->io_thread.joinable()) impl_->io_thread.join();
  for (auto& [fd, conn] : impl_->conns) ::close(fd);
  if (impl_->listen_fd >= 0) ::close(impl_->listen_fd);
  if (impl_->is_unix) ::unlink(impl_->unix_path.c_str());
}

void Server::request_drain() { impl_->draining.store(true); }

std::string Server::describe(const ClusterKey& key) const {
  const MutexLock lock{impl_->schema_mutex};
  return schema_.describe(key);
}

ServeStats Server::stats() const {
  ServeStats out;
  {
    const MutexLock lock{impl_->stats_mutex};
    out = impl_->stats;
  }
  out.watermark = impl_->watermark.load();
  out.queue_highwater =
      std::max<std::uint64_t>(out.queue_highwater,
                              impl_->queue.highwater_rows());
  return out;
}

// --- IO thread ---------------------------------------------------------------

void Server::accept_pending() {
  for (;;) {
    const int fd = ::accept(impl_->listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient error: next poll round retries
    }
    if (impl_->conns.size() >= config_.max_connections) {
      ::close(fd);
      const MutexLock lock{impl_->stats_mutex};
      impl_->stats.connections_refused += 1;
      continue;
    }
    set_nonblocking(fd);
    Connection c;
    c.fd = fd;
    c.id = impl_->next_conn_id++;
    c.decoder = FrameDecoder{config_.max_frame_bytes};
    c.last_activity = Clock::now();
    impl_->seen_connection.store(true);
    {
      const MutexLock lock{impl_->stats_mutex};
      impl_->stats.connections_accepted += 1;
      ConnectionStats cs;
      cs.id = c.id;
      impl_->stats.connections.push_back(cs);
    }
    impl_->conns.emplace(fd, std::move(c));
  }
}

void Server::handle_hello(Connection& c, const std::string& payload) {
  if (c.hello_done) {
    c.close_requested = true;
    c.close_kind = CloseKind::kProtocol;
    c.close_reason = "duplicate hello";
    return;
  }
  AttributeSchema producer;
  try {
    std::istringstream in{payload};
    std::uint64_t offset = 0;
    detail::read_schema_section(in, producer, offset, "serve hello");
  } catch (const std::exception& e) {
    c.close_requested = true;
    c.close_kind = CloseKind::kProtocol;
    c.close_reason = std::string{"bad hello: "} + e.what();
    return;
  }
  try {
    const MutexLock lock{impl_->schema_mutex};
    for (int d = 0; d < kNumDims; ++d) {
      const auto dim = static_cast<AttrDim>(d);
      const auto count = producer.cardinality(dim);
      c.remap[d].resize(count);
      for (std::size_t id = 0; id < count; ++id) {
        c.remap[d][id] = schema_.intern(
            dim, producer.name(dim, static_cast<std::uint16_t>(id)));
      }
    }
  } catch (const std::exception& e) {
    // Master id space exhausted: the producer's vocabulary cannot be
    // admitted, so the connection (not the server) pays.
    c.close_requested = true;
    c.close_kind = CloseKind::kProtocol;
    c.close_reason = std::string{"hello rejected: "} + e.what();
    return;
  }
  c.hello_done = true;
}

void Server::handle_data(Connection& c, const std::string& payload) {
  const std::size_t n = payload.size() / kRecordBytes;
  const bool strict = config_.row_policy == ErrorPolicy::kStrict;
  const bool best_effort = config_.row_policy == ErrorPolicy::kBestEffort;
  const auto seal_floor =
      static_cast<std::int64_t>(impl_->next_seal_published.load());

  std::uint64_t received = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t stale = 0;
  std::uint64_t clamped = 0;
  std::array<std::uint64_t, kNumRowErrorKinds> reasons{};
  std::map<std::uint32_t, std::uint64_t> epoch_quar;
  std::vector<Session> admitted;
  admitted.reserve(n);
  bool strict_trip = false;

  if (!c.hello_done) {
    // Data before hello: the rows are decodable but have no schema to live
    // in.  Count them and close — a protocol violation, not a crash.
    const MutexLock lock{impl_->stats_mutex};
    impl_->stats.rows_received += n;
    impl_->stats.rows_quarantined += n;
    impl_->stats.row_reasons[static_cast<std::size_t>(
        RowErrorKind::kSchemaViolation)] += n;
    ConnectionStats& cs = impl_->conn_stats(c.id);
    cs.rows_received += n;
    cs.rows_quarantined += n;
    cs.row_reasons[static_cast<std::size_t>(
        RowErrorKind::kSchemaViolation)] += n;
    c.close_requested = true;
    c.close_kind = CloseKind::kProtocol;
    c.close_reason = "data frame before hello";
    return;
  }

  for (std::size_t i = 0; i < n && !strict_trip; ++i) {
    const char* rec = payload.data() + i * kRecordBytes;
    received += 1;
    Session s = parse_record(rec);
    const auto join_byte =
        detail::load_pod<std::uint8_t>(rec + kRecordJoinFailedOffset);

    const auto reject = [&](RowErrorKind kind, bool epoch_valid) {
      quarantined += 1;
      reasons[static_cast<std::size_t>(kind)] += 1;
      if (epoch_valid) epoch_quar[s.epoch] += 1;
      if (strict) strict_trip = true;
    };

    // Validation order mirrors read_trace_binary_robust: epoch cap first
    // (nothing may tally by a poisoned epoch), then schema, then metrics,
    // then the flag byte.
    if (s.epoch > config_.max_epoch) {
      reject(RowErrorKind::kBadNumber, /*epoch_valid=*/false);
      continue;
    }
    c.max_epoch_seen =
        std::max(c.max_epoch_seen, static_cast<std::int64_t>(s.epoch));

    bool rejected = false;
    for (int d = 0; d < kNumDims && !rejected; ++d) {
      const std::uint16_t pid = s.attrs.v[d];
      if (pid >= c.remap[d].size()) {
        reject(RowErrorKind::kSchemaViolation, /*epoch_valid=*/true);
        rejected = true;
      } else {
        s.attrs.v[d] = c.remap[d][pid];
      }
    }
    if (rejected) continue;

    const auto check_metric = [&](float& value) {
      if (std::isfinite(value)) return;
      if (best_effort) {
        clamped += 1;
        value = 0.0F;
        return;
      }
      reject(RowErrorKind::kNonFinite, /*epoch_valid=*/true);
      rejected = true;
    };
    check_metric(s.quality.buffering_ratio);
    if (!rejected) check_metric(s.quality.bitrate_kbps);
    if (!rejected) check_metric(s.quality.join_time_ms);
    if (rejected) continue;

    if (join_byte > 1) {
      if (best_effort) {
        clamped += 1;
      } else {
        reject(RowErrorKind::kBadFlag, /*epoch_valid=*/true);
        continue;
      }
    }
    s.quality.join_failed = join_byte != 0;

    if (static_cast<std::int64_t>(s.epoch) < seal_floor) {
      // The epoch is already sealed: the row is late, not malformed.
      stale += 1;
      continue;
    }
    admitted.push_back(s);
  }

  // Monotonic global max (single writer: the IO thread).
  if (c.max_epoch_seen > impl_->max_epoch_seen_all.load()) {
    impl_->max_epoch_seen_all.store(c.max_epoch_seen);
  }

  std::uint64_t admitted_rows = 0;
  std::uint64_t shed_rows = 0;
  std::vector<Impl::Batch> evicted;
  if (!admitted.empty()) {
    const std::uint64_t batch_rows = admitted.size();
    auto result = impl_->queue.push(
        Impl::Batch{c.id, std::move(admitted)}, config_.push_deadline);
    if (result.admitted) {
      admitted_rows = batch_rows;
    } else {
      shed_rows = result.refused;
    }
    evicted = std::move(result.evicted);
  }

  const MutexLock lock{impl_->stats_mutex};
  ServeStats& g = impl_->stats;
  g.rows_received += received;
  g.rows_quarantined += quarantined;
  g.rows_stale += stale;
  g.rows_admitted += admitted_rows;
  g.rows_shed += shed_rows;
  g.fields_clamped += clamped;
  for (int k = 0; k < kNumRowErrorKinds; ++k) g.row_reasons[k] += reasons[k];
  for (const auto& [epoch, count] : epoch_quar) {
    impl_->epoch_quarantine[epoch] += count;
  }
  ConnectionStats& cs = impl_->conn_stats(c.id);
  cs.rows_received += received;
  cs.rows_quarantined += quarantined;
  cs.rows_stale += stale;
  cs.rows_admitted += admitted_rows;
  cs.rows_shed += shed_rows;
  for (int k = 0; k < kNumRowErrorKinds; ++k) cs.row_reasons[k] += reasons[k];
  // Rows evicted under kShedOldest were counted admitted when they entered
  // the queue; move them (exactly) from admitted to shed, attributed to the
  // connection that sent them.
  for (const Impl::Batch& b : evicted) {
    const std::uint64_t sz = b.rows.size();
    g.rows_admitted -= sz;
    g.rows_shed += sz;
    ConnectionStats& victim = impl_->conn_stats(b.connection_id);
    victim.rows_admitted -= sz;
    victim.rows_shed += sz;
  }
  if (strict_trip) {
    c.close_requested = true;
    c.close_kind = CloseKind::kProtocol;
    c.close_reason = "strict policy: quarantined row";
  }
}

void Server::process_frames(Connection& c) {
  Frame frame;
  while (!c.close_requested && c.decoder.next(frame)) {
    if (frame.type == FrameType::kHello) {
      handle_hello(c, frame.payload);
    } else {
      handle_data(c, frame.payload);
    }
  }
  // Account the framing-damage delta since the last pass.
  const FrameDecoderStats& ds = c.decoder.stats();
  const std::uint64_t discarded = ds.rows_discarded - c.seen_rows_discarded;
  const std::uint64_t skipped = ds.bytes_skipped - c.seen_bytes_skipped;
  c.seen_rows_discarded = ds.rows_discarded;
  c.seen_bytes_skipped = ds.bytes_skipped;
  c.seen_frames_decoded = ds.frames_decoded;
  const std::vector<FrameError> errors = c.decoder.take_errors();
  if (discarded == 0 && skipped == 0 && errors.empty()) return;

  const MutexLock lock{impl_->stats_mutex};
  ServeStats& g = impl_->stats;
  ConnectionStats& cs = impl_->conn_stats(c.id);
  // Checksum-failed data frames carry an exact row count: those rows were
  // received and are quarantined wholesale.
  g.rows_received += discarded;
  g.rows_quarantined += discarded;
  g.row_reasons[static_cast<std::size_t>(RowErrorKind::kBadChecksum)] +=
      discarded;
  cs.rows_received += discarded;
  cs.rows_quarantined += discarded;
  cs.row_reasons[static_cast<std::size_t>(RowErrorKind::kBadChecksum)] +=
      discarded;
  cs.bytes_skipped += skipped;
  cs.frames_decoded = ds.frames_decoded;
  for (const FrameError e : errors) {
    g.frame_errors[static_cast<std::size_t>(e)] += 1;
    cs.frame_errors[static_cast<std::size_t>(e)] += 1;
  }
  if (!errors.empty() && config_.row_policy == ErrorPolicy::kStrict &&
      !c.close_requested) {
    c.close_requested = true;
    c.close_kind = CloseKind::kProtocol;
    c.close_reason = "strict policy: framing error";
  }
}

void Server::close_connection(Connection& c, const std::string& reason,
                              bool mid_frame_check) {
  ::close(c.fd);
  const MutexLock lock{impl_->stats_mutex};
  ServeStats& g = impl_->stats;
  g.connections_closed += 1;
  switch (c.close_kind) {
    case CloseKind::kIdle:
      g.idle_closed += 1;
      break;
    case CloseKind::kReadTimeout:
      g.read_timeout_closed += 1;
      break;
    case CloseKind::kProtocol:
      g.protocol_closed += 1;
      break;
    default:
      break;
  }
  ConnectionStats& cs = impl_->conn_stats(c.id);
  cs.open = false;
  cs.close_reason = reason;
  cs.frames_decoded = c.decoder.stats().frames_decoded;
  if (mid_frame_check && c.decoder.mid_frame()) cs.closed_mid_frame = true;
}

bool Server::service_connection(Connection& c) {
  char buf[16384];
  bool budget_exhausted = true;
  for (int round = 0; round < 4; ++round) {
    const ssize_t n = ::recv(c.fd, buf, sizeof buf, 0);
    if (n > 0) {
      c.decoder.feed(buf, static_cast<std::size_t>(n));
      c.last_activity = Clock::now();
      if (static_cast<std::size_t>(n) < sizeof buf) {
        budget_exhausted = false;
        break;
      }
      continue;
    }
    if (n == 0) {
      // Peer closed: drain completed frames first, then record whether it
      // vanished mid-frame.
      process_frames(c);
      if (!c.close_requested) {
        c.close_kind = CloseKind::kClean;
        c.close_reason = "peer closed";
      }
      c.close_requested = true;
      return false;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      budget_exhausted = false;
      break;
    }
    process_frames(c);
    if (!c.close_requested) {
      c.close_kind = CloseKind::kError;
      c.close_reason = std::string{"recv: "} + std::strerror(errno);
    }
    c.close_requested = true;
    return false;
  }
  process_frames(c);
  return budget_exhausted;
}

void Server::publish_watermark() {
  std::int64_t w = std::numeric_limits<std::int64_t>::max();
  bool constrained = false;
  for (const auto& [fd, c] : impl_->conns) {
    if (!c.hello_done) continue;
    constrained = true;
    w = std::min(w, c.max_epoch_seen);
  }
  if (!constrained) {
    // No producer holds the watermark down: everything seen so far is
    // sealable (freshness wins on a live feed).
    if (!impl_->seen_connection.load()) return;
    w = impl_->max_epoch_seen_all.load() + 1;
  }
  if (w > impl_->watermark.load()) impl_->watermark.store(w);
}

void Server::io_loop() {
  std::vector<pollfd> pfds;
  for (;;) {
    if (config_.drain_signal != nullptr && *config_.drain_signal != 0) {
      impl_->draining.store(true);
    }
    if (impl_->draining.load()) {
      // Graceful drain: read dry everything the kernel has already
      // accepted on our behalf — the accept backlog and every socket
      // buffer — before the epilogue seals.  Without this sweep a drain
      // requested between a producer's last write and the next poll round
      // would silently discard delivered rows.
      accept_pending();
      for (auto& [fd, c] : impl_->conns) {
        while (!c.close_requested && service_connection(c)) {
        }
      }
      break;
    }

    pfds.clear();
    pfds.push_back(pollfd{impl_->listen_fd, POLLIN, 0});
    for (const auto& [fd, c] : impl_->conns) {
      pfds.push_back(pollfd{fd, POLLIN, 0});
    }
    ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 50);

    if ((pfds[0].revents & POLLIN) != 0) accept_pending();
    for (std::size_t i = 1; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const auto it = impl_->conns.find(pfds[i].fd);
      if (it != impl_->conns.end()) service_connection(it->second);
    }

    // Deadline sweep: stalled-mid-frame connections get the (shorter) read
    // deadline, silent ones the idle deadline.
    const auto now = Clock::now();
    for (auto& [fd, c] : impl_->conns) {
      if (c.close_requested) continue;
      const auto budget =
          c.decoder.mid_frame() ? config_.read_timeout : config_.idle_timeout;
      if (now - c.last_activity > budget) {
        c.close_requested = true;
        c.close_kind = c.decoder.mid_frame() ? CloseKind::kReadTimeout
                                             : CloseKind::kIdle;
        c.close_reason = c.decoder.mid_frame() ? "read deadline (mid-frame)"
                                               : "idle deadline";
      }
    }

    for (auto it = impl_->conns.begin(); it != impl_->conns.end();) {
      if (it->second.close_requested) {
        close_connection(it->second, it->second.close_reason,
                         /*mid_frame_check=*/true);
        it = impl_->conns.erase(it);
      } else {
        ++it;
      }
    }

    publish_watermark();

    if (config_.drain_on_idle && impl_->seen_connection.load() &&
        impl_->conns.empty()) {
      impl_->draining.store(true);
    }
  }

  // Drain: flush whatever is already buffered, close everything, hand the
  // queue over to the detector.
  for (auto& [fd, c] : impl_->conns) {
    process_frames(c);
    if (!c.close_requested) {
      c.close_kind = CloseKind::kDrain;
      c.close_reason = "server draining";
    }
    close_connection(c, c.close_reason, /*mid_frame_check=*/true);
  }
  impl_->conns.clear();
  ::close(impl_->listen_fd);
  impl_->listen_fd = -1;
  impl_->queue.close();
  impl_->io_done.store(true);
}

// --- detector thread ---------------------------------------------------------

namespace {
constexpr std::chrono::milliseconds kDetectorPollInterval{50};
}  // namespace

void Server::detector_loop() {
  const auto seal_epoch = [&](std::uint32_t e) {
    std::vector<Session> rows;
    if (const auto it = impl_->pending.find(e); it != impl_->pending.end()) {
      rows = std::move(it->second);
      impl_->pending.erase(it);
    }
    EpochDataQuality quality;
    {
      const MutexLock lock{impl_->stats_mutex};
      const auto it = impl_->epoch_quarantine.find(e);
      quality.degraded = it != impl_->epoch_quarantine.end() && it->second > 0;
    }
    const std::vector<IncidentEvent> events =
        detector_.ingest(rows, e, quality);
    if (callback_) {
      const MutexLock lock{impl_->schema_mutex};
      for (const IncidentEvent& ev : events) {
        callback_(ev, schema_.describe(ev.incident.key));
      }
    }
    impl_->next_seal = e + 1;
    impl_->next_seal_published.store(impl_->next_seal);
    bool wrote_checkpoint = false;
    if (!config_.checkpoint_path.empty() &&
        (e + 1) % std::max<std::uint32_t>(config_.checkpoint_every, 1) == 0) {
      detector_.save_checkpoint(config_.checkpoint_path);
      wrote_checkpoint = true;
    }
    const MutexLock lock{impl_->stats_mutex};
    impl_->stats.epochs_sealed += 1;
    if (wrote_checkpoint) impl_->stats.checkpoints_written += 1;
  };

  const auto absorb = [&](std::vector<Impl::Batch> batches) {
    for (Impl::Batch& batch : batches) {
      std::uint64_t stale = 0;
      for (Session& s : batch.rows) {
        if (s.epoch < impl_->next_seal) {
          // Sealed while queued: the row was admitted by the IO thread but
          // arrives late here; move it (exactly) admitted -> stale.
          stale += 1;
          continue;
        }
        impl_->pending[s.epoch].push_back(std::move(s));
      }
      if (stale > 0) {
        const MutexLock lock{impl_->stats_mutex};
        impl_->stats.rows_admitted -= stale;
        impl_->stats.rows_stale += stale;
        ConnectionStats& cs = impl_->conn_stats(batch.connection_id);
        cs.rows_admitted -= stale;
        cs.rows_stale += stale;
      }
    }
  };

  for (;;) {
    // Read the watermark BEFORE draining the queue.  Every row of an epoch
    // below w was pushed before w was published (the IO thread publishes
    // only after its pushes complete), so it is already in the queue when
    // this pop starts and lands in pending before the seal pass below.
    // The reverse order would let a push slip in between absorb and seal
    // and wrongly reclassify fresh rows as stale.
    const std::int64_t w = impl_->watermark.load();
    absorb(impl_->queue.pop_all(kDetectorPollInterval));

    while (static_cast<std::int64_t>(impl_->next_seal) < w) {
      seal_epoch(impl_->next_seal);
    }

    if (impl_->io_done.load()) {
      // IO is finished and the queue is closed: drain it dry, then seal
      // every pending epoch — nothing more can arrive.
      for (;;) {
        auto batches = impl_->queue.pop_all(std::chrono::milliseconds{0});
        if (batches.empty()) break;
        absorb(std::move(batches));
      }
      while (!impl_->pending.empty()) {
        // Ascending, gap epochs included — identical to the file path's
        // dense epoch loop.
        seal_epoch(impl_->next_seal);
      }
      if (!config_.checkpoint_path.empty()) {
        detector_.save_checkpoint(config_.checkpoint_path);
        const MutexLock lock{impl_->stats_mutex};
        impl_->stats.checkpoints_written += 1;
      }
      return;
    }
  }
}

int Server::run() {
  impl_->next_seal =
      detector_.has_ingested() ? detector_.last_epoch() + 1 : 0;
  impl_->next_seal_published.store(impl_->next_seal);
  // The one naked thread in the tree outside thread_pool: the acceptor is
  // an IO event loop, not a work-sharing pool member.
  impl_->io_thread = std::thread{[this] { io_loop(); }};
  detector_loop();
  impl_->io_thread.join();
  publish_serve_metrics(stats());
  return 0;
}

void publish_serve_metrics(const ServeStats& stats) {
  auto& reg = obs::Registry::global();
  const auto det = obs::Determinism::kRuntime;
  reg.counter("serve.rows_received", det).add(stats.rows_received);
  reg.counter("serve.rows_admitted", det).add(stats.rows_admitted);
  reg.counter("serve.rows_quarantined", det).add(stats.rows_quarantined);
  reg.counter("serve.dropped_rows", det).add(stats.rows_shed);
  reg.counter("serve.rows_stale", det).add(stats.rows_stale);
  reg.counter("serve.connections", det).add(stats.connections_accepted);
  reg.counter("serve.connections_refused", det)
      .add(stats.connections_refused);
  reg.counter("serve.epochs_sealed", det).add(stats.epochs_sealed);
  reg.counter("serve.checkpoints", det).add(stats.checkpoints_written);
  reg.gauge("serve.queue_highwater", det)
      .update_max(static_cast<std::int64_t>(stats.queue_highwater));
  reg.gauge("serve.watermark", det).update_max(stats.watermark);
}

}  // namespace vq::serve
