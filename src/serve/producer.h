// Blocking socket producer for the live ingest server.
//
// The counterpart of src/serve/server.h: connects to "unix:<path>" or
// "<host>:<port>", sends the mandatory hello (schema name tables), then
// streams data frames.  Used by the `vidqual feed` CLI command, by the
// serve tests, and by the chaos harness (send_raw lets a test deliver
// arbitrary byte sequences — truncated frames, flipped bytes, garbage —
// through a real socket).
//
// Producers must send rows in non-decreasing epoch order: the server's
// watermark treats a producer's newest epoch as a promise that older
// epochs are complete (server.h).

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "src/core/attributes.h"
#include "src/core/session.h"

namespace vq::serve {

class Producer {
 public:
  /// Connects (blocking); throws std::runtime_error on failure.
  explicit Producer(const std::string& address);
  ~Producer();

  Producer(const Producer&) = delete;
  Producer& operator=(const Producer&) = delete;
  Producer(Producer&& other) noexcept;
  Producer& operator=(Producer&& other) noexcept;

  /// Sends the hello frame declaring `schema`'s name tables.  Must precede
  /// any data frame.
  void send_hello(const AttributeSchema& schema);

  /// Streams `rows` as data frames of at most `rows_per_frame` rows each
  /// (sized so frames stay well under the server's max-frame cap).
  void send_rows(std::span<const Session> rows,
                 std::size_t rows_per_frame = 4096);

  /// Sends arbitrary bytes verbatim (chaos harness hook).
  void send_raw(std::string_view bytes);

  /// Closes the socket (idempotent; also done by the destructor).
  void close() noexcept;

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

}  // namespace vq::serve
