// Bounded row queue between the socket acceptor and the detector thread.
//
// The live server's contract (DESIGN.md §4.11) is that a slow consumer or a
// flooding producer degrades *gracefully and accountably*: the queue has a
// fixed capacity, and what happens at the brim is an explicit policy —
//
//   kBlockWithDeadline — the producer side waits for space up to a
//     caller-supplied deadline; a timed-out push fails and the caller sheds
//     the batch (counting every row).  The acceptor never parks forever on
//     a wedged consumer.
//   kShedOldest — the queue evicts its oldest batches to admit the new one
//     (freshest-data-wins, the right bias for a live dashboard); evicted
//     rows are returned to the caller so shedding is *counted*, never
//     silent.
//
// Elements are pushed in batches (one decoded data frame = one batch) so
// queue pressure is measured in rows, matching the serve.* accounting.
// The queue is small and mutex-based on purpose: the hot cost of ingest is
// parsing and folding, not hand-off, and vq::Mutex carries the Clang
// thread-safety annotations the lock-free alternatives would forfeit.

#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace vq::serve {

/// What a full queue does to an arriving batch.
enum class OverloadPolicy : std::uint8_t {
  kBlockWithDeadline = 0,
  kShedOldest = 1,
};

/// Result of one push attempt.  Evicted batches are handed back whole so
/// the caller can attribute every shed row to the connection that sent it.
template <typename Batch>
struct PushResult {
  bool admitted = false;        // the new batch is in the queue
  std::uint64_t refused = 0;    // rows of the new batch that were refused
  std::vector<Batch> evicted;   // older batches evicted to admit the new one
};

/// Bounded multi-batch queue of row batches with explicit overload policy.
///
/// Capacity is counted in rows, not batches: a single huge frame and many
/// tiny ones exert the same pressure.  One producer (the acceptor thread)
/// and one consumer (the detector thread) in the server; the lock makes it
/// safe for tests to hammer it from many threads anyway.
template <typename Row>
class BoundedRowQueue {
 public:
  struct Batch {
    std::uint64_t connection_id = 0;
    std::vector<Row> rows;
  };

  explicit BoundedRowQueue(std::size_t capacity_rows,
                           OverloadPolicy policy)
      : capacity_rows_(capacity_rows == 0 ? 1 : capacity_rows),
        policy_(policy) {}

  /// Pushes one batch.  Batches larger than the whole capacity are refused
  /// outright — no deadline can ever admit them.
  ///
  /// kBlockWithDeadline: waits up to `deadline` for space; on timeout the
  /// batch is refused (rows counted in `refused`).
  /// kShedOldest: evicts oldest batches until the new one fits (the
  /// deadline is ignored); evicted batches come back in `evicted`.
  PushResult<Batch> push(Batch batch, std::chrono::milliseconds deadline)
      VQ_EXCLUDES(mutex_) {
    const std::uint64_t n = batch.rows.size();
    PushResult<Batch> result;
    if (n > capacity_rows_) {
      result.refused = n;
      return result;
    }
    MutexLock lock{mutex_};
    if (policy_ == OverloadPolicy::kBlockWithDeadline) {
      // One bounded wait per push: a re-check loop against remaining time
      // would need a clock read, and the caller retries pushes anyway.
      if (size_rows_ + n > capacity_rows_ && !closed_) {
        space_.wait_for(mutex_, deadline);
      }
      if (closed_ || size_rows_ + n > capacity_rows_) {
        result.refused = n;
        return result;
      }
    } else {
      while (size_rows_ + n > capacity_rows_ && !queue_.empty()) {
        size_rows_ -= queue_.front().rows.size();
        result.evicted.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      if (closed_ || size_rows_ + n > capacity_rows_) {
        result.refused = n;
        return result;
      }
    }
    size_rows_ += n;
    if (size_rows_ > highwater_rows_) highwater_rows_ = size_rows_;
    queue_.push_back(std::move(batch));
    result.admitted = true;
    data_.notify_one();
    return result;
  }

  /// Non-blocking probe: true when a push of `n` rows would currently fit.
  [[nodiscard]] bool has_space(std::size_t n) const VQ_EXCLUDES(mutex_) {
    const MutexLock lock{mutex_};
    return size_rows_ + n <= capacity_rows_;
  }

  /// Pops every queued batch, blocking up to `deadline` when empty.  An
  /// empty result means timeout (or a closed, drained queue).
  [[nodiscard]] std::vector<Batch> pop_all(std::chrono::milliseconds deadline)
      VQ_EXCLUDES(mutex_) {
    MutexLock lock{mutex_};
    if (queue_.empty() && !closed_) {
      data_.wait_for(mutex_, deadline);
    }
    std::vector<Batch> out;
    out.reserve(queue_.size());
    while (!queue_.empty()) {
      out.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    size_rows_ = 0;
    space_.notify_all();
    return out;
  }

  /// Closes the queue: pending batches remain poppable, further pushes are
  /// refused, and blocked waiters wake immediately.
  void close() VQ_EXCLUDES(mutex_) {
    MutexLock lock{mutex_};
    closed_ = true;
    data_.notify_all();
    space_.notify_all();
  }

  [[nodiscard]] bool closed() const VQ_EXCLUDES(mutex_) {
    const MutexLock lock{mutex_};
    return closed_;
  }

  [[nodiscard]] std::size_t size_rows() const VQ_EXCLUDES(mutex_) {
    const MutexLock lock{mutex_};
    return size_rows_;
  }

  /// Peak queued rows ever observed (the serve.queue_highwater metric).
  [[nodiscard]] std::size_t highwater_rows() const VQ_EXCLUDES(mutex_) {
    const MutexLock lock{mutex_};
    return highwater_rows_;
  }

  [[nodiscard]] std::size_t capacity_rows() const noexcept {
    return capacity_rows_;
  }
  [[nodiscard]] OverloadPolicy policy() const noexcept { return policy_; }

 private:
  const std::size_t capacity_rows_;
  const OverloadPolicy policy_;

  mutable Mutex mutex_;
  CondVar data_;   // signalled on push
  CondVar space_;  // signalled on pop
  std::deque<Batch> queue_ VQ_GUARDED_BY(mutex_);
  std::size_t size_rows_ VQ_GUARDED_BY(mutex_) = 0;
  std::size_t highwater_rows_ VQ_GUARDED_BY(mutex_) = 0;
  bool closed_ VQ_GUARDED_BY(mutex_) = false;
};

}  // namespace vq::serve
