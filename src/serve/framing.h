// Wire framing for the live ingest server (DESIGN.md §4.11).
//
// Producers stream length-prefixed frames over a TCP or Unix-domain socket.
// Two frame types share one envelope:
//
//   envelope: magic[4]  u32 payload_len  payload  u64 fnv1a(payload)
//
//   "VQHS" (hello) — must be the first frame on every connection.  The
//     payload is the same per-dimension name-table section the VQTR/VQTC
//     containers carry (trace_format.h write_schema_section), so a producer
//     declares the attribute vocabulary its row ids index.  The server
//     interns the names into its master schema and remaps ids per
//     connection; producers with different vocabularies coexist.
//   "VQDR" (data) — the payload is N fixed-size session records in the VQTR
//     record layout (7 x u16 attrs, u32 epoch, 3 x f32 metrics,
//     u8 join_failed; 31 bytes).  payload_len must be a non-zero multiple
//     of the record size and at most the server's max-frame cap.
//
// The trailing checksum turns any in-flight byte flip into a whole-frame
// quarantine with an exact row count (payload_len / 31 rows lost), and the
// magic makes frames self-delimiting: after garbage, a decoder resyncs by
// scanning for the next magic instead of abandoning the connection.
//
// FrameDecoder is a pure incremental byte machine — no sockets, no
// blocking — so the same code path is driven by the poll loop in
// server.cpp, by istream adapters in tests, and by the chaos harness
// (tests/socket_fault.h) at every truncation offset and flip position.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/attributes.h"
#include "src/core/session.h"

namespace vq::serve {

inline constexpr char kHelloMagic[4] = {'V', 'Q', 'H', 'S'};
inline constexpr char kDataMagic[4] = {'V', 'Q', 'D', 'R'};

/// Envelope overhead: magic + u32 payload length (before) + u64 checksum
/// (after).
inline constexpr std::size_t kFrameHeaderBytes = 4 + 4;
inline constexpr std::size_t kFrameTrailerBytes = 8;

/// Bytes per session record in a data frame (the VQTR record layout).
inline constexpr std::size_t kRecordBytes = 31;

/// Field offsets inside one record: 7 x u16 attrs, then epoch, the three
/// quality metrics, and the join_failed byte.  Kept next to kRecordBytes
/// so a layout change moves the size and every accessor together
/// (framing.cpp asserts the layout against the VQTR container's record
/// size; docs/wire_contracts.json pins both).
inline constexpr std::size_t kRecordEpochOffset = kNumDims * sizeof(std::uint16_t);
inline constexpr std::size_t kRecordBufferingOffset = kRecordEpochOffset + sizeof(std::uint32_t);
inline constexpr std::size_t kRecordBitrateOffset = kRecordBufferingOffset + sizeof(float);
inline constexpr std::size_t kRecordJoinTimeOffset = kRecordBitrateOffset + sizeof(float);
inline constexpr std::size_t kRecordJoinFailedOffset = kRecordJoinTimeOffset + sizeof(float);
static_assert(kRecordJoinFailedOffset + sizeof(std::uint8_t) == kRecordBytes);

/// Default cap on one frame's payload.  Frames beyond the cap are framing
/// errors (a corrupted length field must not demand a huge allocation);
/// honest producers split large epochs across frames.
inline constexpr std::size_t kDefaultMaxFrameBytes = 1u << 20;

enum class FrameType : std::uint8_t { kHello = 0, kData = 1 };

/// One decoded frame: the type plus the raw payload bytes (checksum already
/// verified by the decoder; checksum failures surface as FrameError).
struct Frame {
  FrameType type = FrameType::kData;
  std::string payload;
};

/// Why the decoder discarded bytes.
enum class FrameError : std::uint8_t {
  kBadMagic = 0,      // garbage where a magic was expected; resync started
  kOversize = 1,      // payload_len beyond the cap
  kBadLength = 2,     // data payload_len zero or not a record multiple
  kBadChecksum = 3,   // payload checksum mismatch
};

inline constexpr int kNumFrameErrors = 4;

[[nodiscard]] std::string_view frame_error_name(FrameError e) noexcept;

/// Decoder statistics, exact by construction (every byte fed is either
/// consumed into a frame, pending in the buffer, or counted skipped).
struct FrameDecoderStats {
  std::uint64_t frames_decoded = 0;
  std::uint64_t hello_frames = 0;
  std::uint64_t data_frames = 0;
  std::uint64_t rows_decoded = 0;     // sum of data-frame row counts
  std::uint64_t rows_discarded = 0;   // rows lost to checksum-failed frames
  std::uint64_t resyncs = 0;          // error -> scan-for-magic transitions
  std::uint64_t bytes_skipped = 0;    // bytes discarded while resyncing
  std::array<std::uint64_t, kNumFrameErrors> error_counts{};
};

/// Incremental frame decoder with resync-after-garbage.
///
/// Feed bytes as they arrive; poll next() for completed frames.  On a
/// framing error the decoder records it, skips forward to the next
/// plausible magic, and keeps going — a byte flip costs one frame, not the
/// connection.  Errors raised since the last poll are exposed through
/// take_errors() so the caller can map them onto its quarantine accounting.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends raw bytes from the wire.  Never throws on bad input: framing
  /// damage is a counted event, not an exception.
  void feed(const char* data, std::size_t n);
  void feed(std::string_view bytes) { feed(bytes.data(), bytes.size()); }

  /// Pops the next completed frame into `out`; false when more bytes are
  /// needed.  Checksum-failed data frames are consumed internally (counted
  /// in rows_discarded / error_counts) and never surface here.
  [[nodiscard]] bool next(Frame& out);

  /// Framing errors recorded since the last call (in occurrence order).
  [[nodiscard]] std::vector<FrameError> take_errors();

  /// True when a frame is partially buffered (header seen, payload
  /// incomplete) — the "mid-frame" state a read deadline cares about.
  [[nodiscard]] bool mid_frame() const noexcept;

  [[nodiscard]] const FrameDecoderStats& stats() const noexcept {
    return stats_;
  }

 private:
  void record_error(FrameError e);
  /// Starts (or continues) a resync episode; records `e` and bumps the
  /// resync count only on entry, so one garbage blob is one counted event
  /// however many next() calls it spans.
  void enter_resync(FrameError e);

  std::size_t max_frame_bytes_;
  std::string buf_;
  bool in_resync_ = false;
  FrameDecoderStats stats_;
  std::vector<FrameError> pending_errors_;
};

// --- encoding (producers, tests) ---------------------------------------------

/// Serialises one session into the 31-byte record layout, appended to `out`.
void append_record(std::string& out, const Session& s);

/// Parses one 31-byte record (no validation beyond the fixed layout).
[[nodiscard]] Session parse_record(const char* record) noexcept;

/// Builds a hello frame declaring `schema`'s name tables.
[[nodiscard]] std::string encode_hello(const AttributeSchema& schema);

/// Builds a data frame carrying `rows` (callers cap rows so the payload
/// stays within the receiver's max-frame budget).
[[nodiscard]] std::string encode_data(std::span<const Session> rows);

/// Wraps arbitrary payload bytes in a frame envelope with a valid checksum
/// (tests use this to build hostile-but-well-formed frames).
[[nodiscard]] std::string encode_frame(const char magic[4],
                                       std::string_view payload);

}  // namespace vq::serve
