// Live ingest server: the long-running form of `monitor` (DESIGN.md §4.11).
//
// Topology: one poll-driven acceptor/IO thread owns every socket — it
// accepts producers, reads bytes, runs the frame decoder, validates rows
// through the robust_io ErrorPolicy matrix, and pushes admitted rows into a
// bounded queue (bounded_queue.h).  The detector loop runs on the caller's
// thread (Server::run()): it drains the queue, buffers rows per epoch,
// seals epochs behind the producer watermark, and feeds each sealed epoch
// to the StreamingDetector exactly as the file-driven CLI does — so the
// incident stream is a pure function of the admitted rows per epoch, and a
// differential test can diff file-path and socket-path reports
// byte-for-byte.
//
// Watermark: producers stream rows in non-decreasing epoch order (the
// natural shape of live telemetry).  A connection that has contributed at
// least one row "promises" every epoch below its newest; the watermark is
// the minimum such promise over open contributing connections, and every
// epoch strictly below it is sealed (empty epochs included, matching the
// file path's dense 0..max loop).  Rows arriving for an already-sealed
// epoch are *stale*: counted per connection and dropped (the row-level
// image of EpochOrderPolicy::kSkipStale — a live service cannot take the
// kThrow arm, so serve mode forces kSkipStale).
//
// Accounting invariant, checked by the chaos suite:
//
//   rows_received == rows_admitted + rows_quarantined + rows_shed
//                    + rows_stale
//
// where received counts every row in a structurally decodable data frame
// (checksum-failed frames count their exact len/record_size rows as
// received and quarantined), admitted counts rows the detector folded,
// quarantined counts validation failures, shed counts overload-policy
// victims, and stale counts late arrivals.  Bytes skipped during resync
// carry no row count (garbage has no row boundary) and are tracked
// separately.
//
// Shutdown: request_drain() — or a SIGTERM/SIGINT flag wired through
// ServeConfig::drain_signal — stops accepting, closes connections, seals
// every pending epoch (watermark waived: nothing more can arrive), writes
// a final checkpoint, and run() returns 0.  A kill -9 instead recovers
// through the periodic checkpoint on restart (--checkpoint), replaying
// producers against the watermark: rows at or below the checkpointed epoch
// are stale-dropped and the incident stream continues where it stopped.

#pragma once

#include <chrono>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/monitor.h"
#include "src/gen/robust_io.h"
#include "src/serve/bounded_queue.h"
#include "src/serve/framing.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace vq::serve {

/// Per-connection accounting snapshot (exact; part of ServeStats).
struct ConnectionStats {
  std::uint64_t id = 0;
  std::uint64_t rows_received = 0;
  std::uint64_t rows_admitted = 0;
  std::uint64_t rows_quarantined = 0;
  std::uint64_t rows_shed = 0;
  std::uint64_t rows_stale = 0;
  std::array<std::uint64_t, kNumRowErrorKinds> row_reasons{};
  std::array<std::uint64_t, kNumFrameErrors> frame_errors{};
  std::uint64_t frames_decoded = 0;
  std::uint64_t bytes_skipped = 0;
  bool open = true;
  bool closed_mid_frame = false;  // peer vanished with a partial frame
  std::string close_reason;       // empty while open
};

/// Aggregate accounting snapshot; every counter exact by construction.
struct ServeStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_refused = 0;  // max-connection cap
  std::uint64_t connections_closed = 0;
  std::uint64_t idle_closed = 0;          // idle deadline fired
  std::uint64_t read_timeout_closed = 0;  // mid-frame read deadline fired
  std::uint64_t protocol_closed = 0;      // hello/protocol violation

  std::uint64_t rows_received = 0;
  std::uint64_t rows_admitted = 0;
  std::uint64_t rows_quarantined = 0;
  std::uint64_t rows_shed = 0;
  std::uint64_t rows_stale = 0;
  std::uint64_t fields_clamped = 0;  // best-effort repairs
  std::array<std::uint64_t, kNumRowErrorKinds> row_reasons{};
  std::array<std::uint64_t, kNumFrameErrors> frame_errors{};

  std::uint64_t epochs_sealed = 0;
  std::int64_t watermark = -1;  // highest published watermark
  std::uint64_t checkpoints_written = 0;
  std::uint64_t queue_highwater = 0;  // peak queued rows

  std::vector<ConnectionStats> connections;  // by accept order

  /// The invariant the chaos suite pins.
  [[nodiscard]] bool accounting_exact() const noexcept {
    return rows_received ==
           rows_admitted + rows_quarantined + rows_shed + rows_stale;
  }
};

struct ServeConfig {
  /// "unix:<path>" for a Unix-domain socket, "<ipv4>:<port>" for TCP
  /// ("localhost" accepted; port 0 binds an ephemeral port, see port()).
  std::string address;

  /// Row validation policy.  kQuarantine / kBestEffort behave exactly like
  /// the robust_io readers (count + drop, or clamp repairable fields).
  /// kStrict cannot throw in a server that must never crash; instead the
  /// first quarantined row closes the offending connection (the error stays
  /// on the producer that sent it).
  ErrorPolicy row_policy = ErrorPolicy::kQuarantine;
  std::uint32_t max_epoch = kDefaultMaxEpoch;

  std::size_t queue_capacity_rows = 1u << 16;
  OverloadPolicy overload = OverloadPolicy::kBlockWithDeadline;
  /// Bound on one queue push under kBlockWithDeadline; on expiry the batch
  /// is shed.  The detector thread is never the one waiting.
  std::chrono::milliseconds push_deadline{200};

  std::chrono::milliseconds idle_timeout{30'000};  // no bytes at all
  std::chrono::milliseconds read_timeout{10'000};  // stalled mid-frame
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  std::size_t max_connections = 64;

  /// Empty = no checkpointing.  Saved after every checkpoint_every sealed
  /// epochs and once at drain.
  std::filesystem::path checkpoint_path;
  std::uint32_t checkpoint_every = 1;

  /// CI hook: once at least one producer has connected and all connections
  /// have closed, drain automatically (so scripted runs exit by
  /// themselves).
  bool drain_on_idle = false;

  /// Optional signal-flag hook: when non-null and *drain_signal becomes
  /// non-zero (a SIGTERM/SIGINT handler wrote it), the server drains.
  const volatile std::sig_atomic_t* drain_signal = nullptr;
};

/// One incident event plus its already-rendered cluster description (the
/// schema is locked while rendering, so callbacks never race a hello).
using ServeEventCallback =
    std::function<void(const IncidentEvent&, const std::string& description)>;

class Server {
 public:
  /// Binds and listens immediately (throws std::runtime_error on address
  /// parse/bind failure).  The detector and schema outlive the server;
  /// a checkpoint-restored detector resumes sealing at last_epoch()+1.
  Server(ServeConfig config, StreamingDetector& detector,
         AttributeSchema& schema);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Ephemeral TCP port actually bound (== configured port otherwise).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  void set_event_callback(ServeEventCallback cb) { callback_ = std::move(cb); }

  /// Runs the full service: spawns the IO thread, runs the detector loop on
  /// the calling thread until drained, and returns 0 on a clean drain.
  int run();

  /// Asks the server to drain (idempotent, any thread / signal-safe flag
  /// path preferred from handlers).
  void request_drain();

  [[nodiscard]] ServeStats stats() const;

  /// Renders a cluster against the live schema (locked: safe concurrent
  /// with producer hellos).
  [[nodiscard]] std::string describe(const ClusterKey& key) const;

 private:
  struct Connection;
  struct Impl;

  void io_loop();
  void detector_loop();

  // IO-thread helpers (definitions in server.cpp).
  void accept_pending();
  /// Reads the socket into the frame decoder.  Returns true when the
  /// per-call read budget ran out with the kernel buffer still full —
  /// i.e. "call me again"; the drain sweep loops on it to read dry.
  bool service_connection(Connection& c);
  void process_frames(Connection& c);
  void handle_hello(Connection& c, const std::string& payload);
  void handle_data(Connection& c, const std::string& payload);
  void close_connection(Connection& c, const std::string& reason,
                        bool mid_frame_check);
  void publish_watermark();

  const ServeConfig config_;
  StreamingDetector& detector_;
  AttributeSchema& schema_;
  ServeEventCallback callback_;
  std::uint16_t port_ = 0;

  std::unique_ptr<Impl> impl_;
};

/// Publishes a final ServeStats snapshot into the observability registry
/// (serve.* metrics; all Determinism::kRuntime — counts depend on socket
/// timing, never on the analysis).
void publish_serve_metrics(const ServeStats& stats);

}  // namespace vq::serve
