#include "src/serve/producer.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "src/serve/framing.h"

namespace vq::serve {

namespace {

int connect_to(const std::string& address) {
  int fd = -1;
  if (address.rfind("unix:", 0) == 0) {
    const std::string path = address.substr(5);
    if (path.empty() || path.size() >= sizeof(sockaddr_un::sun_path)) {
      throw std::runtime_error{"feed: bad unix socket path: " + address};
    }
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      throw std::runtime_error{"feed: socket(): " +
                               std::string{std::strerror(errno)}};
    }
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, path.c_str(), sizeof(sa.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
      const int saved = errno;
      ::close(fd);
      throw std::runtime_error{"feed: connect(" + path +
                               "): " + std::strerror(saved)};
    }
    return fd;
  }
  const std::size_t colon = address.rfind(':');
  if (colon == std::string::npos) {
    throw std::runtime_error{
        "feed: address must be unix:<path> or <host>:<port>, got " + address};
  }
  std::string host = address.substr(0, colon);
  if (host.empty() || host == "localhost") host = "127.0.0.1";
  int port = -1;
  try {
    port = std::stoi(address.substr(colon + 1));
  } catch (const std::exception&) {
    port = -1;
  }
  if (port < 0 || port > 65535) {
    throw std::runtime_error{"feed: bad port in address: " + address};
  }
  fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error{"feed: socket(): " +
                             std::string{std::strerror(errno)}};
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error{"feed: bad IPv4 host in address: " + address};
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
    const int saved = errno;
    ::close(fd);
    throw std::runtime_error{"feed: connect(" + address +
                             "): " + std::strerror(saved)};
  }
  return fd;
}

}  // namespace

Producer::Producer(const std::string& address) : fd_(connect_to(address)) {}

Producer::~Producer() { close(); }

Producer::Producer(Producer&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

Producer& Producer::operator=(Producer&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Producer::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Producer::send_raw(std::string_view bytes) {
  if (fd_ < 0) throw std::runtime_error{"feed: producer not connected"};
  const char* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    // MSG_NOSIGNAL: a server that closed us yields EPIPE, not process death.
    const ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      close();
      throw std::runtime_error{"feed: send(): " +
                               std::string{std::strerror(saved)}};
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

void Producer::send_hello(const AttributeSchema& schema) {
  send_raw(encode_hello(schema));
}

void Producer::send_rows(std::span<const Session> rows,
                         std::size_t rows_per_frame) {
  if (rows_per_frame == 0) rows_per_frame = 1;
  for (std::size_t i = 0; i < rows.size(); i += rows_per_frame) {
    const std::size_t n = std::min(rows_per_frame, rows.size() - i);
    send_raw(encode_data(rows.subspan(i, n)));
  }
}

}  // namespace vq::serve
