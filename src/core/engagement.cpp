#include "src/core/engagement.h"

#include <algorithm>
#include <cmath>

#include "src/core/critical_cluster.h"
#include "src/util/flat_hash_map.h"

namespace vq {

double EngagementModel::lost_minutes(const QualityMetrics& q) const
    noexcept {
  if (q.join_failed) return expected_session_minutes;

  double lost = 0.0;
  // Buffering: ~minutes_lost_per_buffering_pct per point when small,
  // saturating smoothly toward max_buffering_loss_minutes (viewers who
  // endure 5% and 45% buffering are both mostly gone, but not equally).
  const double pct = 100.0 * static_cast<double>(q.buffering_ratio);
  lost += max_buffering_loss_minutes *
          (1.0 - std::exp(-pct * minutes_lost_per_buffering_pct /
                          max_buffering_loss_minutes));
  // Join time: abandonment probability grows past the patience threshold.
  const double over_ms =
      std::max(0.0, static_cast<double>(q.join_time_ms) -
                        join_abandon_threshold_ms);
  const double abandon_prob =
      std::min(1.0, abandon_prob_per_second * over_ms / 1'000.0);
  lost += abandon_prob * expected_session_minutes;
  // Bitrate: mild linear depression below the reference rate.
  const double deficit_mbps =
      std::max(0.0, bitrate_reference_kbps -
                        static_cast<double>(q.bitrate_kbps)) /
      1'000.0;
  lost += deficit_mbps * bitrate_loss_minutes_per_mbps;
  return std::min(lost, expected_session_minutes);
}

EngagementReport engagement_report(const SessionTable& table,
                                   const EngagementModel& model) {
  EngagementReport report;
  const ProblemThresholds thresholds;  // cause decomposition only
  for (const Session& s : table.sessions()) {
    const double lost = model.lost_minutes(s.quality);
    report.total_lost_minutes += lost;
    // Attribute to the worst offending metric for the decomposition.
    if (s.quality.join_failed) {
      report.lost_by_cause[static_cast<int>(Metric::kJoinFailure)] += lost;
    } else if (thresholds.is_problem(Metric::kBufRatio, s.quality)) {
      report.lost_by_cause[static_cast<int>(Metric::kBufRatio)] += lost;
    } else if (thresholds.is_problem(Metric::kJoinTime, s.quality)) {
      report.lost_by_cause[static_cast<int>(Metric::kJoinTime)] += lost;
    } else if (thresholds.is_problem(Metric::kBitrate, s.quality)) {
      report.lost_by_cause[static_cast<int>(Metric::kBitrate)] += lost;
    }
  }
  if (!table.empty()) {
    report.mean_lost_minutes_per_session =
        report.total_lost_minutes / static_cast<double>(table.size());
  }
  return report;
}

EngagementWhatIf::EngagementWhatIf(const SessionTable& table,
                                   const PipelineResult& result,
                                   const EngagementModel& model) {
  const PipelineConfig& config = result.config;
  for (std::uint32_t epoch = 0; epoch < result.num_epochs; ++epoch) {
    const std::span<const Session> sessions = table.epoch(epoch);
    const EpochClusterTable lattice = aggregate_epoch(
        sessions, config.thresholds, config.engine, epoch);

    for (const Metric metric : kAllMetrics) {
      const auto mi = static_cast<std::uint8_t>(metric);
      const double global = lattice.global_ratio(metric);
      // Memoised per-leaf candidate sets, as in the pipeline.
      FlatMap64<std::vector<std::uint8_t>> leaf_memo;
      for (const Session& s : sessions) {
        if (!config.thresholds.is_problem(metric, s.quality)) continue;
        const double lost = model.lost_minutes(s.quality);
        total_lost_[mi] += lost;
        const ClusterKey leaf = ClusterKey::pack(kFullMask, s.attrs);
        auto* candidates = leaf_memo.find(leaf.raw());
        if (candidates == nullptr) {
          candidates = &(leaf_memo[leaf.raw()] = critical_candidate_masks(
                             leaf, lattice, config.cluster_params, metric));
        }
        if (candidates->empty()) continue;
        const double share =
            1.0 / static_cast<double>(candidates->size());
        for (const std::uint8_t mask : *candidates) {
          const ClusterKey key = leaf.project(mask);
          const double r = lattice.stats(key).problem_ratio(metric);
          const double factor = r > 0.0 ? std::max(0.0, 1.0 - global / r)
                                        : 0.0;
          KeyImpact& impact = impact_[mi][key.raw()];
          impact.minutes += share * factor * lost;
          impact.sessions += share * factor;
        }
      }
    }
  }
}

std::vector<EngagementWhatIf::RankedCluster> EngagementWhatIf::ranking(
    Metric metric) const {
  const auto mi = static_cast<std::uint8_t>(metric);
  std::vector<RankedCluster> out;
  out.reserve(impact_[mi].size());
  for (const auto& [raw, impact] : impact_[mi]) {
    out.push_back(
        {ClusterKey::from_raw(raw), impact.minutes, impact.sessions});
  }
  std::sort(out.begin(), out.end(),
            [](const RankedCluster& a, const RankedCluster& b) {
              if (a.minutes_recovered != b.minutes_recovered) {
                return a.minutes_recovered > b.minutes_recovered;
              }
              return a.key.raw() < b.key.raw();
            });
  return out;
}

EngagementWhatIf::Comparison EngagementWhatIf::compare_rankings(
    Metric metric, double top_fraction) const {
  std::vector<RankedCluster> by_minutes = ranking(metric);
  std::vector<RankedCluster> by_sessions = by_minutes;
  std::sort(by_sessions.begin(), by_sessions.end(),
            [](const RankedCluster& a, const RankedCluster& b) {
              if (a.sessions_alleviated != b.sessions_alleviated) {
                return a.sessions_alleviated > b.sessions_alleviated;
              }
              return a.key.raw() < b.key.raw();
            });
  const auto k = static_cast<std::size_t>(std::ceil(
      top_fraction * static_cast<double>(by_minutes.size())));
  Comparison comparison;
  for (std::size_t i = 0; i < std::min(k, by_minutes.size()); ++i) {
    comparison.minutes_engagement_ranked += by_minutes[i].minutes_recovered;
    comparison.minutes_session_ranked += by_sessions[i].minutes_recovered;
  }
  return comparison;
}

}  // namespace vq
