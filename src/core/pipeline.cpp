#include "src/core/pipeline.h"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

#include "src/core/incremental.h"

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/thread_pool.h"

namespace vq {

std::uint64_t PipelineResult::total_problem_sessions(Metric m,
                                                     std::uint32_t begin,
                                                     std::uint32_t end) const {
  const auto& summaries = per_metric[static_cast<std::uint8_t>(m)];
  std::uint64_t total = 0;
  for (std::uint32_t e = begin; e < end && e < summaries.size(); ++e) {
    total += summaries[e].analysis.problem_sessions;
  }
  return total;
}

PipelineResult::MetricAggregates PipelineResult::aggregates(Metric m) const {
  MetricAggregates agg;
  const auto& summaries = per_metric[static_cast<std::uint8_t>(m)];
  if (summaries.empty()) return agg;
  for (const auto& s : summaries) {
    agg.mean_problem_clusters += s.analysis.num_problem_clusters;
    agg.mean_critical_clusters +=
        static_cast<double>(s.analysis.criticals.size());
    agg.mean_problem_coverage += s.analysis.problem_cluster_coverage();
    agg.mean_critical_coverage += s.analysis.critical_cluster_coverage();
  }
  const auto n = static_cast<double>(summaries.size());
  agg.mean_problem_clusters /= n;
  agg.mean_critical_clusters /= n;
  agg.mean_problem_coverage /= n;
  agg.mean_critical_coverage /= n;
  return agg;
}

namespace {

std::size_t resolve_shards(const PipelineConfig& config, std::size_t workers,
                           std::size_t num_epochs) {
  if (config.shards != 0) return config.shards;
  if (workers <= 1 || num_epochs == 0) return 1;
  // With epochs >= workers the epoch level saturates the pool by itself;
  // below that, shard each epoch's expansion so every worker has a slice.
  if (num_epochs >= workers) return 1;
  return (workers + num_epochs - 1) / num_epochs;
}

}  // namespace

PipelineResult run_pipeline(const SessionTable& table,
                            const PipelineConfig& config,
                            std::span<const std::uint32_t> degraded) {
  PipelineResult result = run_pipeline(table, config);
  result.degraded_epochs.assign(degraded.begin(), degraded.end());
  if (!std::is_sorted(result.degraded_epochs.begin(),
                      result.degraded_epochs.end())) {
    throw std::invalid_argument{
        "run_pipeline: degraded epochs must be sorted ascending"};
  }
  return result;
}

PipelineResult run_pipeline(const SessionTable& table,
                            const PipelineConfig& config) {
  PipelineResult result;
  result.config = config;
  result.num_epochs = table.num_epochs();
  for (auto& v : result.per_metric) v.resize(result.num_epochs);

  const std::size_t workers =
      config.workers == 0
          ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
          : config.workers;
  std::optional<ThreadPool> pool;
  if (workers > 1 && result.num_epochs > 0) pool.emplace(workers);
  ThreadPool* pool_ptr = pool ? &*pool : nullptr;
  const std::size_t shards = resolve_shards(config, workers,
                                            result.num_epochs);

  // Event counts here are properties of the analysis, not the schedule, so
  // they are kStable: totals match for any workers/shards setting.
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& epochs_done = reg.counter("pipeline.epochs");
  obs::Counter& sessions_seen = reg.counter("pipeline.sessions");
  obs::Counter& problem_clusters = reg.counter("pipeline.problem_clusters");
  obs::Counter& critical_clusters = reg.counter("pipeline.critical_clusters");

  const auto process_epoch = [&](std::size_t e) {
    const auto epoch = static_cast<std::uint32_t>(e);
    VQ_SPAN_EPOCH("pipeline.epoch", epoch);
    const std::span<const Session> sessions = table.epoch(epoch);
    // One leaf fold per epoch feeds both the lattice expansion and all four
    // per-metric critical analyses.
    const LeafFold fold = [&] {
      VQ_SPAN_EPOCH("pipeline.fold_sessions", epoch);
      return fold_sessions(sessions, config.thresholds, epoch);
    }();
    const EpochClusterTable lattice = [&] {
      VQ_SPAN_EPOCH("pipeline.expand_lattice", epoch);
      return config.engine.fold_leaves
                 ? expand_fold(fold, config.engine, pool_ptr, shards)
                 : aggregate_epoch_unfolded(sessions, config.thresholds,
                                            config.engine, epoch);
    }();
    for (const Metric m : kAllMetrics) {
      EpochMetricSummary& summary =
          result.per_metric[static_cast<std::uint8_t>(m)][epoch];
      // Publishes analysis.problem_cluster_keys as a byproduct, so no
      // separate find_problem_clusters pass is needed per metric.
      summary.analysis = find_critical_clusters(
          fold, lattice, config.cluster_params, m, pool_ptr, shards);
      problem_clusters.add(summary.analysis.num_problem_clusters);
      critical_clusters.add(summary.analysis.criticals.size());
    }
    epochs_done.add(1);
    sessions_seen.add(sessions.size());
  };

  if (pool_ptr == nullptr) {
    for (std::uint32_t e = 0; e < result.num_epochs; ++e) process_epoch(e);
  } else {
    // parallel_for is re-entrant, so the per-epoch workers can themselves
    // fan the lattice expansion out across the same pool; a throwing epoch
    // (e.g. an epoch-mismatch in fold_sessions) surfaces here rather than
    // terminating the process.
    pool_ptr->parallel_for(0, result.num_epochs, process_epoch);
  }
  return result;
}

PipelineResult run_pipeline_streaming(EpochColumnsSource& source,
                                      const PipelineConfig& config) {
  PipelineResult result;
  result.config = config;
  result.num_epochs = source.num_epochs();
  for (auto& v : result.per_metric) v.resize(result.num_epochs);

  const std::size_t workers =
      config.workers == 0
          ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
          : config.workers;
  std::optional<ThreadPool> pool;
  if (workers > 1 && result.num_epochs > 0) pool.emplace(workers);
  ThreadPool* pool_ptr = pool ? &*pool : nullptr;
  // Epochs stream sequentially (that is the memory bound), so all
  // parallelism lives inside the epoch: default shards to the pool width.
  const std::size_t shards =
      config.shards != 0 ? config.shards : std::max<std::size_t>(1, workers);

  obs::Registry& reg = obs::Registry::global();
  obs::Counter& epochs_done = reg.counter("pipeline.epochs");
  obs::Counter& sessions_seen = reg.counter("pipeline.sessions");
  obs::Counter& problem_clusters = reg.counter("pipeline.problem_clusters");
  obs::Counter& critical_clusters = reg.counter("pipeline.critical_clusters");
  // Largest batch ever held: the structural O(one epoch) memory witness.
  obs::Gauge& held_max = reg.gauge("pipeline.stream_epoch_sessions_max");

  if (config.incremental && !config.engine.fold_leaves) {
    throw std::invalid_argument{
        "run_pipeline_streaming: incremental mode requires "
        "engine.fold_leaves (deltas are per-leaf)"};
  }
  std::optional<IncrementalLattice> incremental;
  if (config.incremental) {
    incremental.emplace(config.cluster_params, config.engine.max_arity);
  }

  SessionColumns columns;  // reused across epochs; capacity is retained
  std::vector<Session> rows;  // only for the unfolded (diagnostic) engine
  for (std::uint32_t epoch = 0; epoch < result.num_epochs; ++epoch) {
    VQ_SPAN_EPOCH("pipeline.epoch", epoch);
    const bool degraded = [&] {
      VQ_SPAN_EPOCH("pipeline.read_epoch", epoch);
      return source.read_epoch(epoch, columns);
    }();
    if (degraded) result.degraded_epochs.push_back(epoch);
    held_max.update_max(static_cast<std::int64_t>(columns.size()));

    const LeafFold fold = [&] {
      VQ_SPAN_EPOCH("pipeline.fold_sessions", epoch);
      return config.fold_provider
                 ? config.fold_provider(columns, config.thresholds, epoch)
                 : fold_sessions_columns(columns, config.thresholds, epoch);
    }();

    if (incremental) {
      std::array<CriticalAnalysis, kNumMetrics> analyses =
          incremental->advance(fold, pool_ptr, shards);
      for (const Metric m : kAllMetrics) {
        const auto mi = static_cast<std::uint8_t>(m);
        EpochMetricSummary& summary = result.per_metric[mi][epoch];
        summary.analysis = std::move(analyses[mi]);
        problem_clusters.add(summary.analysis.num_problem_clusters);
        critical_clusters.add(summary.analysis.criticals.size());
      }
      epochs_done.add(1);
      sessions_seen.add(columns.size());
      continue;
    }

    const EpochClusterTable lattice = [&] {
      VQ_SPAN_EPOCH("pipeline.expand_lattice", epoch);
      if (config.engine.fold_leaves) {
        return expand_fold(fold, config.engine, pool_ptr, shards);
      }
      rows.clear();
      columns.append_rows(epoch, rows);
      return aggregate_epoch_unfolded(rows, config.thresholds, config.engine,
                                      epoch);
    }();
    for (const Metric m : kAllMetrics) {
      EpochMetricSummary& summary =
          result.per_metric[static_cast<std::uint8_t>(m)][epoch];
      summary.analysis = find_critical_clusters(
          fold, lattice, config.cluster_params, m, pool_ptr, shards);
      problem_clusters.add(summary.analysis.num_problem_clusters);
      critical_clusters.add(summary.analysis.criticals.size());
    }
    epochs_done.add(1);
    sessions_seen.add(columns.size());
  }
  return result;
}

}  // namespace vq
