#include "src/core/columns.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "src/core/cluster_engine.h"

#if defined(__AVX2__)
#include <immintrin.h>
#elif defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace vq {

void SessionColumns::clear() noexcept {
  for (auto& column : attrs) column.clear();
  buffering_ratio.clear();
  bitrate_kbps.clear();
  join_time_ms.clear();
  join_failed.clear();
}

void SessionColumns::reserve(std::size_t n) {
  for (auto& column : attrs) column.reserve(n);
  buffering_ratio.reserve(n);
  bitrate_kbps.reserve(n);
  join_time_ms.reserve(n);
  join_failed.reserve(n);
}

void SessionColumns::push_back(const Session& s) {
  for (int d = 0; d < kNumDims; ++d) {
    attrs[static_cast<std::size_t>(d)].push_back(s.attrs.v[d]);
  }
  buffering_ratio.push_back(s.quality.buffering_ratio);
  bitrate_kbps.push_back(s.quality.bitrate_kbps);
  join_time_ms.push_back(s.quality.join_time_ms);
  join_failed.push_back(s.quality.join_failed ? 1 : 0);
}

Session SessionColumns::row(std::size_t i, std::uint32_t epoch) const {
  Session s;
  for (int d = 0; d < kNumDims; ++d) {
    s.attrs.v[d] = attrs[static_cast<std::size_t>(d)][i];
  }
  s.epoch = epoch;
  s.quality.buffering_ratio = buffering_ratio[i];
  s.quality.bitrate_kbps = bitrate_kbps[i];
  s.quality.join_time_ms = join_time_ms[i];
  s.quality.join_failed = join_failed[i] != 0;
  return s;
}

void SessionColumns::append_rows(std::uint32_t epoch,
                                 std::vector<Session>& out) const {
  out.reserve(out.size() + size());
  for (std::size_t i = 0; i < size(); ++i) out.push_back(row(i, epoch));
}

SessionColumns SessionColumns::from_sessions(std::span<const Session> sessions,
                                             std::uint32_t epoch) {
  SessionColumns columns;
  columns.reserve(sessions.size());
  for (const Session& s : sessions) {
    if (s.epoch != epoch) {
      throw std::invalid_argument{
          "SessionColumns::from_sessions: session epoch mismatch"};
    }
    columns.push_back(s);
  }
  return columns;
}

namespace {

/// Threshold compares over one block.  The scalar body calls the exact
/// per-session predicate; the SIMD bodies reproduce it with float compares
/// (ordered, quiet — `>`/`<` semantics including the NaN-is-false case), so
/// all paths are bit-identical for any input.
// vq:hot
void threshold_block_scalar(const SessionColumns& c, std::size_t base,
                            std::size_t len, const ProblemThresholds& t,
                            std::uint8_t* out) {
  for (std::size_t i = 0; i < len; ++i) {
    QualityMetrics q;
    q.buffering_ratio = c.buffering_ratio[base + i];
    q.bitrate_kbps = c.bitrate_kbps[base + i];
    q.join_time_ms = c.join_time_ms[base + i];
    q.join_failed = c.join_failed[base + i] != 0;
    out[i] = t.problem_bits(q);
  }
}

#if defined(__AVX2__) || defined(__SSE2__)

/// Assembles the per-lane bitmask from the three compare movemasks.  A
/// failed join voids the quality metrics (session.cpp): its only bit is
/// kJoinFailure.
inline std::uint8_t lane_bits(int m0, int m1, int m2, int lane,
                              std::uint8_t jf) {
  if (jf != 0) return 1u << static_cast<int>(Metric::kJoinFailure);
  return static_cast<std::uint8_t>(((m0 >> lane) & 1) |
                                   (((m1 >> lane) & 1) << 1) |
                                   (((m2 >> lane) & 1) << 2));
}

#endif

// vq:hot
void threshold_block_simd(const SessionColumns& c, std::size_t base,
                          std::size_t len, const ProblemThresholds& t,
                          std::uint8_t* out) {
#if defined(__AVX2__)
  const __m256 thr_br = _mm256_set1_ps(static_cast<float>(
      t.max_buffering_ratio));
  const __m256 thr_bit = _mm256_set1_ps(static_cast<float>(
      t.min_bitrate_kbps));
  const __m256 thr_jt = _mm256_set1_ps(static_cast<float>(t.max_join_time_ms));
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    const int m0 = _mm256_movemask_ps(_mm256_cmp_ps(
        _mm256_loadu_ps(c.buffering_ratio.data() + base + i), thr_br,
        _CMP_GT_OQ));
    const int m1 = _mm256_movemask_ps(_mm256_cmp_ps(
        _mm256_loadu_ps(c.bitrate_kbps.data() + base + i), thr_bit,
        _CMP_LT_OQ));
    const int m2 = _mm256_movemask_ps(_mm256_cmp_ps(
        _mm256_loadu_ps(c.join_time_ms.data() + base + i), thr_jt,
        _CMP_GT_OQ));
    for (int lane = 0; lane < 8; ++lane) {
      out[i + static_cast<std::size_t>(lane)] =
          lane_bits(m0, m1, m2, lane, c.join_failed[base + i + lane]);
    }
  }
  threshold_block_scalar(c, base + i, len - i, t, out + i);
#elif defined(__SSE2__)
  const __m128 thr_br = _mm_set1_ps(static_cast<float>(t.max_buffering_ratio));
  const __m128 thr_bit = _mm_set1_ps(static_cast<float>(t.min_bitrate_kbps));
  const __m128 thr_jt = _mm_set1_ps(static_cast<float>(t.max_join_time_ms));
  std::size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const int m0 = _mm_movemask_ps(_mm_cmpgt_ps(
        _mm_loadu_ps(c.buffering_ratio.data() + base + i), thr_br));
    const int m1 = _mm_movemask_ps(_mm_cmplt_ps(
        _mm_loadu_ps(c.bitrate_kbps.data() + base + i), thr_bit));
    const int m2 = _mm_movemask_ps(_mm_cmpgt_ps(
        _mm_loadu_ps(c.join_time_ms.data() + base + i), thr_jt));
    for (int lane = 0; lane < 4; ++lane) {
      out[i + static_cast<std::size_t>(lane)] =
          lane_bits(m0, m1, m2, lane, c.join_failed[base + i + lane]);
    }
  }
  threshold_block_scalar(c, base + i, len - i, t, out + i);
#else
  threshold_block_scalar(c, base, len, t, out);
#endif
}

/// One range check per column (the row-wise path branches per session per
/// dimension inside ClusterKey::pack).  Throws the same message pack does.
void validate_attr_columns(const SessionColumns& c) {
  for (int d = 0; d < kNumDims; ++d) {
    const auto dim = static_cast<AttrDim>(d);
    const std::uint16_t cap = dim_capacity(dim);
    const auto& column = c.attrs[static_cast<std::size_t>(d)];
    std::uint16_t max_value = 0;
    for (const std::uint16_t v : column) max_value = std::max(max_value, v);
    if (max_value > cap) {
      throw std::out_of_range{"ClusterKey: value does not fit field for " +
                              std::string{dim_name(dim)}};
    }
  }
}

/// Branch-free full-arity packing: one widen-shift-OR sweep per dimension
/// over the block.  Equivalent to ClusterKey::pack(kFullMask, attrs).raw()
/// element-wise (columns pre-validated by validate_attr_columns).
// vq:hot
void pack_block_scalar(const SessionColumns& c, std::size_t base,
                       std::size_t len, std::uint64_t* out) {
  std::fill(out, out + len, static_cast<std::uint64_t>(kFullMask));
  for (int d = 0; d < kNumDims; ++d) {
    const int offset = dim_field(static_cast<AttrDim>(d)).offset;
    const std::uint16_t* column =
        c.attrs[static_cast<std::size_t>(d)].data() + base;
    for (std::size_t i = 0; i < len; ++i) {
      out[i] |= static_cast<std::uint64_t>(column[i]) << offset;
    }
  }
}

// vq:hot
void pack_block_simd(const SessionColumns& c, std::size_t base,
                     std::size_t len, std::uint64_t* out) {
#if defined(__AVX2__)
  std::fill(out, out + len, static_cast<std::uint64_t>(kFullMask));
  for (int d = 0; d < kNumDims; ++d) {
    const int offset = dim_field(static_cast<AttrDim>(d)).offset;
    const std::uint16_t* column =
        c.attrs[static_cast<std::size_t>(d)].data() + base;
    std::size_t i = 0;
    for (; i + 4 <= len; i += 4) {
      // 4 x u16 -> 4 x u64 lanes, shifted into this dimension's field.
      const __m256i lanes = _mm256_cvtepu16_epi64(_mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(column + i)));
      __m256i acc =
          _mm256_loadu_si256(reinterpret_cast<__m256i*>(out + i));
      acc = _mm256_or_si256(acc,
                            _mm256_slli_epi64(lanes, offset));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), acc);
    }
    for (; i < len; ++i) {
      out[i] |= static_cast<std::uint64_t>(column[i]) << offset;
    }
  }
#else
  // SSE2 u16 -> u64 widening needs a long unpack chain that measures no
  // faster than the shift/OR sweep, which auto-vectorizes well; use it.
  pack_block_scalar(c, base, len, out);
#endif
}

/// Block size for the fold's scratch (keys + bits): 2048 keeps ~18 KB of
/// scratch L1/L2-resident for any epoch size.
constexpr std::size_t kFoldBlock = 2048;

}  // namespace

void problem_bits_columns(const SessionColumns& columns,
                          const ProblemThresholds& thresholds,
                          std::span<std::uint8_t> out, BatchKernel kernel) {
  if (out.size() != columns.size()) {
    throw std::invalid_argument{
        "problem_bits_columns: output size mismatch"};
  }
  if (kernel == BatchKernel::kScalar) {
    threshold_block_scalar(columns, 0, columns.size(), thresholds,
                           out.data());
  } else {
    threshold_block_simd(columns, 0, columns.size(), thresholds, out.data());
  }
}

void pack_leaf_keys_columns(const SessionColumns& columns,
                            std::span<std::uint64_t> out,
                            BatchKernel kernel) {
  if (out.size() != columns.size()) {
    throw std::invalid_argument{
        "pack_leaf_keys_columns: output size mismatch"};
  }
  validate_attr_columns(columns);
  if (kernel == BatchKernel::kScalar) {
    pack_block_scalar(columns, 0, columns.size(), out.data());
  } else {
    pack_block_simd(columns, 0, columns.size(), out.data());
  }
}

LeafFold fold_sessions_columns(const SessionColumns& columns,
                               const ProblemThresholds& thresholds,
                               std::uint32_t epoch, BatchKernel kernel) {
  LeafFold fold;
  fold.epoch = epoch;
  fold.leaves.reserve(columns.size() / 4 + 16);
  validate_attr_columns(columns);

  const bool scalar = kernel == BatchKernel::kScalar;
  std::array<std::uint64_t, kFoldBlock> keys;
  std::array<std::uint8_t, kFoldBlock> bits;
  const std::size_t n = columns.size();
  for (std::size_t base = 0; base < n; base += kFoldBlock) {
    const std::size_t len = std::min(kFoldBlock, n - base);
    if (scalar) {
      threshold_block_scalar(columns, base, len, thresholds, bits.data());
      pack_block_scalar(columns, base, len, keys.data());
    } else {
      threshold_block_simd(columns, base, len, thresholds, bits.data());
      pack_block_simd(columns, base, len, keys.data());
    }
    // The fold itself is the row-wise loop's arithmetic verbatim: same
    // insertion order, same uint32 adds, so the resulting LeafFold is
    // identical to fold_sessions over the same rows.
    for (std::size_t i = 0; i < len; ++i) {
      ClusterStats& leaf = fold.leaves[keys[i]];
      const std::uint8_t b = bits[i];
      fold.root.sessions += 1;
      leaf.sessions += 1;
      for (int m = 0; m < kNumMetrics; ++m) {
        const std::uint32_t bit = (b >> m) & 1u;
        fold.root.problems[m] += bit;
        leaf.problems[m] += bit;
      }
    }
  }
  return fold;
}

std::string_view batch_kernel_name() noexcept {
#if defined(__AVX2__)
  return "avx2";
#elif defined(__SSE2__)
  return "sse2";
#else
  return "scalar";
#endif
}

}  // namespace vq
