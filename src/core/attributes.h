// Attribute schema for video sessions and the packed 64-bit cluster key.
//
// The paper (§2) annotates every session with seven attributes: ASN, CDN,
// content provider ("Site"), VoD-or-Live, player type, browser, and
// connection type.  A *cluster* is any non-empty subset of the attribute
// dimensions with fixed values (§3.1); the set of clusters forms a subset
// lattice ordered by attribute-set inclusion (Fig. 4).
//
// We pack one cluster into a single uint64_t: a 7-bit presence mask plus a
// fixed-width value field per dimension.  Packing makes lattice aggregation
// (127 cells per session) a stream of integer ops + one hash-map bump, and
// makes parent/child lattice walks plain bit arithmetic.

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/intern.h"

namespace vq {

/// The seven session attribute dimensions (paper §2, "Dataset").
enum class AttrDim : std::uint8_t {
  kSite = 0,      // content provider
  kCdn = 1,       // content delivery network
  kAsn = 2,       // client autonomous system
  kConnType = 3,  // access network type (DSL, fiber, mobile wireless, ...)
  kPlayer = 4,    // player technology (Flash, Silverlight, HTML5, ...)
  kBrowser = 5,   // client browser
  kVodLive = 6,   // VoD vs Live flag
};

inline constexpr int kNumDims = 7;
inline constexpr std::uint8_t kFullMask = (1u << kNumDims) - 1;  // 0b1111111

[[nodiscard]] constexpr std::uint8_t dim_bit(AttrDim d) noexcept {
  return static_cast<std::uint8_t>(1u << static_cast<std::uint8_t>(d));
}

[[nodiscard]] std::string_view dim_name(AttrDim d) noexcept;

/// Value-id widths, in bits, per dimension. Generous for the paper's world:
/// 4095 sites (379 in the paper), 63 CDNs (19), 65535 ASNs (~15K), 15
/// connection types / players / browsers, 3 VoD/Live values.
inline constexpr std::array<int, kNumDims> kDimBits = {12, 6, 16, 4, 4, 4, 2};

/// Maximum representable value id per dimension.
[[nodiscard]] constexpr std::uint16_t dim_capacity(AttrDim d) noexcept {
  return static_cast<std::uint16_t>(
      (1u << kDimBits[static_cast<std::uint8_t>(d)]) - 1);
}

/// A full 7-dimensional attribute assignment (one per session).
struct AttrVec {
  std::array<std::uint16_t, kNumDims> v{};

  [[nodiscard]] std::uint16_t operator[](AttrDim d) const noexcept {
    return v[static_cast<std::uint8_t>(d)];
  }
  std::uint16_t& operator[](AttrDim d) noexcept {
    return v[static_cast<std::uint8_t>(d)];
  }

  friend bool operator==(const AttrVec&, const AttrVec&) = default;
};

/// A cluster identity: presence mask + packed value fields.
///
/// Layout (LSB first): [mask:7][site:12][cdn:6][asn:16][conn:4][player:4]
/// [browser:4][vod:2] = 55 bits. Bit 63 is never set, so the FlatMap64
/// sentinel (all ones) can never collide with a valid key.
class ClusterKey {
 public:
  ClusterKey() = default;

  /// Packs the dims selected by `mask` (other dims ignored). Value ids must
  /// fit their field widths; throws std::out_of_range otherwise.
  static ClusterKey pack(std::uint8_t mask, const AttrVec& attrs);

  /// Root of the lattice: no attributes fixed (the global population).
  [[nodiscard]] static ClusterKey root() noexcept { return ClusterKey{}; }

  [[nodiscard]] std::uint64_t raw() const noexcept { return raw_; }
  [[nodiscard]] static ClusterKey from_raw(std::uint64_t raw) noexcept {
    ClusterKey k;
    k.raw_ = raw;
    return k;
  }

  [[nodiscard]] std::uint8_t mask() const noexcept {
    return static_cast<std::uint8_t>(raw_ & kFullMask);
  }

  /// Number of fixed attribute dimensions.
  [[nodiscard]] int arity() const noexcept;

  [[nodiscard]] bool has(AttrDim d) const noexcept {
    return (mask() & dim_bit(d)) != 0;
  }

  /// Value id of dimension d; only meaningful when has(d).
  [[nodiscard]] std::uint16_t value(AttrDim d) const noexcept;

  /// True when this cluster's attribute set is a (non-strict) subset of
  /// `other`'s and all shared values agree — i.e. `other` is this cluster or
  /// one of its lattice descendants.
  [[nodiscard]] bool generalizes(const ClusterKey& other) const noexcept;

  /// The key for a sub-mask of this key's mask (values inherited).
  /// `sub` must satisfy (sub & mask()) == sub.
  [[nodiscard]] ClusterKey project(std::uint8_t sub) const noexcept;

  friend bool operator==(const ClusterKey&, const ClusterKey&) = default;
  friend auto operator<=>(const ClusterKey&, const ClusterKey&) = default;

 private:
  std::uint64_t raw_ = 0;
};

/// Field offset/width table used by pack/value/project.
struct DimField {
  int offset;
  int bits;
};
[[nodiscard]] DimField dim_field(AttrDim d) noexcept;

/// Name tables for every dimension; gives ids human-readable labels.
class AttributeSchema {
 public:
  /// Interns `name` in dimension `d`, returning its dense id. Throws
  /// std::length_error when the dimension's id space is exhausted.
  std::uint16_t intern(AttrDim d, std::string_view name);

  [[nodiscard]] std::string_view name(AttrDim d, std::uint16_t id) const;

  [[nodiscard]] std::size_t cardinality(AttrDim d) const noexcept;

  /// Human-readable rendering of a cluster, e.g.
  /// "[Cdn=cdn-3, Asn=AS7018]"; the root renders as "[*]".
  [[nodiscard]] std::string describe(const ClusterKey& key) const;

 private:
  std::array<StringInterner, kNumDims> interners_;
};

}  // namespace vq
