#include "src/core/anomaly.h"

#include <algorithm>
#include <cmath>

namespace vq {

std::vector<SeriesAnomaly> detect_series_anomalies(
    std::span<const double> series, const AnomalyParams& params) {
  std::vector<SeriesAnomaly> anomalies;
  if (series.empty()) return anomalies;

  double mean = series.front();
  double var = 0.0;
  for (std::uint32_t i = 1; i < series.size(); ++i) {
    const double x = series[i];
    const double sigma = std::max(std::sqrt(var), params.min_sigma);
    const double z = (x - mean) / sigma;
    if (i >= params.warmup_epochs && std::abs(z) >= params.z_threshold) {
      anomalies.push_back({i, x, mean, z});
      // Do not absorb the outlier into the baseline: a one-epoch spike
      // should not raise the bar for the next one.
      continue;
    }
    const double delta = x - mean;
    mean += params.ewma_alpha * delta;
    var = (1.0 - params.ewma_alpha) * (var + params.ewma_alpha * delta * delta);
  }
  return anomalies;
}

std::vector<RatioAnomaly> detect_ratio_anomalies(const PipelineResult& result,
                                                 const AnomalyParams& params,
                                                 std::size_t max_suspects) {
  std::vector<RatioAnomaly> out;
  for (const Metric metric : kAllMetrics) {
    std::vector<double> series;
    series.reserve(result.num_epochs);
    for (std::uint32_t e = 0; e < result.num_epochs; ++e) {
      const auto& a = result.at(metric, e).analysis;
      series.push_back(a.sessions == 0
                           ? 0.0
                           : static_cast<double>(a.problem_sessions) /
                                 static_cast<double>(a.sessions));
    }
    for (const SeriesAnomaly& anomaly :
         detect_series_anomalies(series, params)) {
      RatioAnomaly flagged;
      flagged.metric = metric;
      flagged.anomaly = anomaly;
      const auto& criticals =
          result.at(metric, anomaly.index).analysis.criticals;
      for (std::size_t i = 0;
           i < std::min(max_suspects, criticals.size()); ++i) {
        flagged.suspects.push_back(criticals[i].key);
      }
      out.push_back(std::move(flagged));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RatioAnomaly& a, const RatioAnomaly& b) {
              if (a.anomaly.index != b.anomaly.index) {
                return a.anomaly.index < b.anomaly.index;
              }
              return a.metric < b.metric;
            });
  return out;
}

}  // namespace vq
