// Engagement impact model — connecting quality problems back to the
// paper's motivation (§1): quality determines engagement and thus revenue.
//
// The model encodes the findings the paper builds on (Dobrian et al.,
// SIGCOMM'11; Krishnan & Sitaraman, IMC'12):
//   - buffering ratio is the dominant factor: ~3 minutes of lost viewing
//     per additional 1% of buffering (saturating at high ratios);
//   - join time does not cut the current session short but reduces the
//     probability of return visits; beyond a tolerance threshold viewers
//     abandon;
//   - join failures forfeit the entire expected session;
//   - low bitrate mildly depresses viewing time.
//
// The model converts a session's QualityMetrics into expected lost viewing
// minutes, which the what-if layer can use to rank remediations by
// *engagement* saved rather than problem-session counts.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/core/pipeline.h"
#include "src/core/session.h"

namespace vq {

struct EngagementModel {
  double expected_session_minutes = 18.0;  // mean intended viewing time
  double minutes_lost_per_buffering_pct = 3.0;   // Dobrian et al.
  double max_buffering_loss_minutes = 15.0;      // saturation
  double join_abandon_threshold_ms = 2'000.0;    // patience begins here
  double abandon_prob_per_second = 0.06;         // per second past threshold
  double bitrate_loss_minutes_per_mbps = 1.0;    // below 2 Mbps reference
  double bitrate_reference_kbps = 2'000.0;

  /// Expected viewing minutes lost for one session (0 for a perfect one).
  [[nodiscard]] double lost_minutes(const QualityMetrics& q) const noexcept;
};

/// Aggregate engagement loss over a trace.
struct EngagementReport {
  double total_lost_minutes = 0.0;
  double mean_lost_minutes_per_session = 0.0;
  /// Decomposition by proximate cause (same order as Metric).
  std::array<double, kNumMetrics> lost_by_cause{};
};

[[nodiscard]] EngagementReport engagement_report(
    const SessionTable& table, const EngagementModel& model);

/// Engagement-weighted cluster ranking: expected viewing minutes recovered
/// by fixing each critical cluster (reducing its problem ratio to the
/// epoch's global average, as in the §5 what-if machinery, but weighting
/// each attributed problem session by its expected engagement loss).
class EngagementWhatIf {
 public:
  /// `table` must be the trace `result` was computed from.
  EngagementWhatIf(const SessionTable& table, const PipelineResult& result,
                   const EngagementModel& model);

  struct RankedCluster {
    ClusterKey key;
    double minutes_recovered = 0.0;
    double sessions_alleviated = 0.0;
  };

  /// Clusters ranked by recoverable engagement minutes, descending.
  [[nodiscard]] std::vector<RankedCluster> ranking(Metric metric) const;

  /// Minutes recovered by fixing the top fraction of distinct critical
  /// clusters under engagement ranking vs session-count ranking.
  struct Comparison {
    double minutes_engagement_ranked = 0.0;
    double minutes_session_ranked = 0.0;
  };
  [[nodiscard]] Comparison compare_rankings(Metric metric,
                                            double top_fraction) const;

  [[nodiscard]] double total_lost_minutes(Metric metric) const noexcept {
    return total_lost_[static_cast<std::uint8_t>(metric)];
  }

 private:
  struct KeyImpact {
    double minutes = 0.0;
    double sessions = 0.0;
  };
  std::array<std::unordered_map<std::uint64_t, KeyImpact>, kNumMetrics>
      impact_;
  std::array<double, kNumMetrics> total_lost_{};
};

}  // namespace vq
