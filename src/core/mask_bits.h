// 128-bit bitsets over the 7-dimension subset lattice, shared by the
// indexed critical extraction (critical_cluster.cpp) and the incremental
// delta engine (incremental.cpp).  Bit index is the attribute mask value
// (0..127).  Both strategies must apply conditions (a)/(b)/(c) with exactly
// the same bit tricks for their analyses to stay bit-identical, so the
// tricks live here once.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace vq::detail {

/// 128-bit bitset over the subset lattice; bit index is the mask value.
struct MaskBits {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  void set(unsigned m) noexcept {
    (m < 64 ? lo : hi) |= std::uint64_t{1} << (m & 63);
  }
  [[nodiscard]] bool test(unsigned m) const noexcept {
    return ((m < 64 ? lo : hi) >> (m & 63)) & 1u;
  }
  [[nodiscard]] bool any() const noexcept { return (lo | hi) != 0; }

  friend bool operator==(const MaskBits&, const MaskBits&) = default;
};

/// kDimAbsent[d] selects, within one 64-bit word, the mask values whose
/// dimension-d bit is clear. Dimension 6 needs no pattern: its bit weight is
/// 64, so "bit 6 clear" is exactly the lo word.
inline constexpr std::array<std::uint64_t, 6> kDimAbsent = {
    0x5555555555555555ULL, 0x3333333333333333ULL, 0x0F0F0F0F0F0F0F0FULL,
    0x00FF00FF00FF00FFULL, 0x0000FFFF0000FFFFULL, 0x00000000FFFFFFFFULL};

/// strict[m] = OR over every strict superset s of m of b[s], for all 128
/// masks at once. Two sweeps of seven shifted-OR steps each: the first
/// closes b upward (h[m] = OR over s >= m), the second ORs h over the seven
/// single-dimension extensions of m — every strict superset contains at
/// least one added dimension, so that union is exactly the strict cone.
[[nodiscard]] inline MaskBits strict_superset_or(const MaskBits& b) noexcept {
  MaskBits h = b;
  for (int d = 0; d < 6; ++d) {
    const int k = 1 << d;
    h.lo |= (h.lo >> k) & kDimAbsent[d];
    h.hi |= (h.hi >> k) & kDimAbsent[d];
  }
  h.lo |= h.hi;

  MaskBits strict;
  for (int d = 0; d < 6; ++d) {
    const int k = 1 << d;
    strict.lo |= (h.lo >> k) & kDimAbsent[d];
    strict.hi |= (h.hi >> k) & kDimAbsent[d];
  }
  strict.lo |= h.hi;
  return strict;
}

/// Keeps only masks minimal by inclusion ("closest to the root").
inline void filter_minimal(const std::vector<std::uint8_t>& candidates,
                           std::vector<std::uint8_t>& out) {
  out.clear();
  for (const std::uint8_t m : candidates) {
    bool dominated = false;
    for (const std::uint8_t other : candidates) {
      if (other != m && (other & m) == other) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(m);
  }
}

}  // namespace vq::detail
