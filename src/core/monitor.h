// StreamingDetector: the online counterpart of the batch pipeline.
//
// The paper's reactive strategy (§5.3) presumes a system that watches each
// epoch as it closes, notices when a critical cluster emerges, and
// escalates once it has persisted past a detection delay.  This class is
// that loop as a library: feed it one epoch of sessions at a time and it
// returns incident lifecycle events (new / escalated / cleared) while
// maintaining the active-incident registry.
//
// Fault tolerance (DESIGN.md §4.3): the detector survives the realities of
// production telemetry.
//  * Checkpoint/restore — save_checkpoint/load_checkpoint serialise the
//    full detector state (incident registry, counters, last epoch) in a
//    versioned, checksummed container with a config fingerprint, so a
//    monitor killed mid-stream resumes producing the *identical* incident
//    event sequence.  The path overload writes atomically
//    (temp-then-rename), so a crash mid-save never corrupts the previous
//    checkpoint.
//  * Epoch ordering policy — out-of-order or duplicate epochs either throw
//    (kThrow, default) or are counted and dropped (kSkipStale).
//  * Degraded epochs — when the ingest report flags an epoch as
//    data-starved (robust_io.h), pass EpochDataQuality{.degraded = true}:
//    incidents that fail to recur on such an epoch are retained instead of
//    cleared (absence of evidence on a gappy feed is not evidence of
//    absence), which stops incident flapping across collector hiccups.
//
// Thread safety (DESIGN.md §4.7): the detector state (incident registry,
// counters, epoch cursor) is guarded by an internal mutex with Clang
// thread-safety annotations, so one thread may ingest epochs while another
// saves periodic checkpoints or inspects active incidents.  Epoch ordering
// is still the caller's job: concurrent ingest() calls serialise in an
// unspecified order, and whichever runs second sees the other's epoch as
// already ingested.

#pragma once

#include <array>
#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <optional>
#include <span>
#include <stdexcept>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/core/cluster_engine.h"
#include "src/core/critical_cluster.h"
#include "src/core/incremental.h"
#include "src/core/problem_cluster.h"
#include "src/core/session.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"
#include "src/util/thread_pool.h"

namespace vq {

/// What to do when ingest() sees an epoch <= the last ingested epoch
/// (duplicate delivery, late replay, a collector restarting behind).
enum class EpochOrderPolicy : std::uint8_t {
  kThrow = 0,      // std::invalid_argument (default)
  kSkipStale = 1,  // drop the epoch, count it in stale_epochs_dropped()
};

struct MonitorConfig {
  ProblemThresholds thresholds;
  ProblemClusterParams cluster_params{.ratio_multiplier = 1.5,
                                      .min_sessions = 1000};
  ClusterEngineConfig engine;
  /// Consecutive epochs a critical cluster must persist before it
  /// escalates (the paper's reactive strategy uses 1).
  std::uint32_t escalate_after = 1;
  EpochOrderPolicy order_policy = EpochOrderPolicy::kThrow;
  /// Detector-side parallelism for the per-epoch lattice expansion and
  /// critical-cluster extraction (the pool/shards arguments of expand_fold
  /// and find_critical_clusters).  workers <= 1 runs serial.  Excluded from
  /// the checkpoint fingerprint like the engine knobs: the parallel kernels
  /// are bit-identical to the serial ones by construction, so any
  /// workers x shards setting yields the same incident stream
  /// (differential-tested at {1,4} x {1,4}).
  std::uint32_t workers = 1;
  std::uint32_t shards = 1;
  /// Maintain the lattice across epochs with the incremental delta engine
  /// (src/core/incremental.h) instead of re-expanding every epoch.  The
  /// incident event stream is bit-identical either way (the engine's
  /// differential contract), so — like the engine/worker knobs — this is
  /// excluded from the checkpoint fingerprint and may change across a
  /// save/restore.  Requires engine.fold_leaves.
  bool incremental = false;
};

/// One tracked incident: a critical cluster with a live streak.
struct Incident {
  ClusterKey key;
  Metric metric = Metric::kBufRatio;
  std::uint32_t first_epoch = 0;
  std::uint32_t streak = 0;       // consecutive epochs active, inclusive
  bool escalated = false;
  double attributed = 0.0;        // problem-session mass, latest epoch
  ClusterStats stats;             // cluster counters, latest epoch
};

enum class IncidentUpdate : std::uint8_t {
  kNew = 0,        // first epoch a critical cluster appears
  kEscalated = 1,  // streak crossed escalate_after
  kCleared = 2,    // no longer a critical cluster this epoch
};

[[nodiscard]] std::string_view incident_update_name(
    IncidentUpdate u) noexcept;

struct IncidentEvent {
  IncidentUpdate update = IncidentUpdate::kNew;
  std::uint32_t epoch = 0;
  Incident incident;
};

/// Ingest-time data-quality annotation for one epoch (typically derived
/// from IngestReport::degraded_epochs, see gen/robust_io.h).
struct EpochDataQuality {
  bool degraded = false;
};

/// Rolling prevalence/persistence state for one problem cluster (paper
/// §4.1/§4.2), maintained online instead of rebuilt from the full per-epoch
/// key history: on each ingested epoch the streak either extends (the key
/// recurred on the next consecutive epoch) or restarts at 1.  Keys are never
/// forgotten — prevalence is a whole-stream fraction.  Equivalence with the
/// batch build_prevalence (src/core/prevalence.h) over a contiguous epoch
/// stream is enforced by tests/test_incremental.cpp.
struct ProblemStreak {
  ClusterKey key;
  std::uint32_t first_epoch = 0;  // first epoch the key was a problem cluster
  std::uint32_t last_epoch = 0;   // most recent such epoch
  std::uint32_t epochs_seen = 0;  // total epochs the key was a problem cluster
  std::uint32_t streak = 0;       // current consecutive-epoch run
  std::uint32_t max_streak = 0;   // longest run ever (max persistence)
  /// epochs_seen / epochs observed by the detector; filled by
  /// problem_streaks(), not serialised (derived).
  double prevalence = 0.0;
};

class StreamingDetector {
 public:
  explicit StreamingDetector(const MonitorConfig& config) : config_(config) {
    if (config_.incremental && !config_.engine.fold_leaves) {
      throw std::invalid_argument{
          "StreamingDetector: incremental mode requires engine.fold_leaves "
          "(deltas are per-leaf)"};
    }
    if (config_.workers > 1) pool_.emplace(config_.workers);
    if (config_.incremental) {
      lattice_.emplace(config_.cluster_params, config_.engine.max_arity);
    }
  }

  /// Processes one closed epoch. Epochs must be fed in increasing order
  /// (gaps allowed: a gap resets streaks); a non-increasing epoch follows
  /// config().order_policy. On a degraded epoch, kCleared transitions are
  /// suppressed: open incidents that fail to recur stay open with their
  /// streak frozen. Returns the lifecycle events raised by this epoch, in
  /// (metric, key) order.
  std::vector<IncidentEvent> ingest(std::span<const Session> sessions,
                                    std::uint32_t epoch,
                                    EpochDataQuality quality = {})
      VQ_EXCLUDES(mutex_);

  /// Currently open incidents for a metric, sorted by key.
  [[nodiscard]] std::vector<Incident> active(Metric metric) const
      VQ_EXCLUDES(mutex_);

  /// Total incidents ever opened for a metric.
  [[nodiscard]] std::uint64_t total_opened(Metric metric) const
      VQ_EXCLUDES(mutex_) {
    const MutexLock lock{mutex_};
    return opened_[static_cast<std::uint8_t>(metric)];
  }

  /// Stale (non-increasing) epochs dropped under kSkipStale.
  [[nodiscard]] std::uint64_t stale_epochs_dropped() const
      VQ_EXCLUDES(mutex_) {
    const MutexLock lock{mutex_};
    return stale_epochs_dropped_;
  }

  /// kCleared transitions suppressed on degraded epochs.
  [[nodiscard]] std::uint64_t suppressed_clears() const VQ_EXCLUDES(mutex_) {
    const MutexLock lock{mutex_};
    return suppressed_clears_;
  }

  [[nodiscard]] bool has_ingested() const VQ_EXCLUDES(mutex_) {
    const MutexLock lock{mutex_};
    return has_ingested_;
  }

  /// Epochs the detector has accepted (stale-dropped epochs excluded,
  /// degraded epochs included) — the denominator of streak prevalence.
  [[nodiscard]] std::uint64_t epochs_observed() const VQ_EXCLUDES(mutex_) {
    const MutexLock lock{mutex_};
    return epochs_observed_;
  }

  /// Rolling prevalence/persistence for every problem cluster ever seen on
  /// this metric, sorted by key, with prevalence filled against
  /// epochs_observed().
  [[nodiscard]] std::vector<ProblemStreak> problem_streaks(Metric metric) const
      VQ_EXCLUDES(mutex_);

  /// Last ingested epoch; meaningful only when has_ingested().
  [[nodiscard]] std::uint32_t last_epoch() const VQ_EXCLUDES(mutex_) {
    const MutexLock lock{mutex_};
    return last_epoch_;
  }

  [[nodiscard]] const MonitorConfig& config() const noexcept {
    return config_;
  }

  // --- checkpoint/restore ----------------------------------------------
  // Container: magic "VQCK", u32 version, u64 config fingerprint, the
  // detector state (counters, last epoch, incident registry sorted by key,
  // and — since version 2 — the epochs-observed count and the per-metric
  // problem-streak registry sorted by key), and a trailing FNV-1a checksum
  // over the payload.  load_checkpoint throws std::runtime_error on bad
  // magic, unsupported version, checksum mismatch, truncation, or a
  // fingerprint from a different configuration.  The incremental lattice is
  // deliberately NOT serialised: advance() lands on the current fold's
  // exact cell content from any prior state, so the first epoch after a
  // restore is simply a full delta build with identical output.

  void save_checkpoint(std::ostream& out) const VQ_EXCLUDES(mutex_);
  /// Atomic file save: writes `path`.tmp, then renames over `path`, so an
  /// interrupted save leaves the previous checkpoint intact.
  void save_checkpoint(const std::filesystem::path& path) const
      VQ_EXCLUDES(mutex_);

  void load_checkpoint(std::istream& in) VQ_EXCLUDES(mutex_);
  void load_checkpoint(const std::filesystem::path& path)
      VQ_EXCLUDES(mutex_);

  /// Fingerprint of the result-affecting config fields (thresholds, cluster
  /// params, escalate_after, order policy). Engine knobs are excluded: the
  /// folded/unfolded and indexed/hashed strategies are bit-identical by
  /// construction (differential-tested), so they may differ across a
  /// save/restore without changing the event stream.
  [[nodiscard]] static std::uint64_t config_fingerprint(
      const MonitorConfig& config) noexcept;

 private:
  const MonitorConfig config_;  // immutable after construction: unguarded
  /// Worker pool for the parallel expand/extract kernels; engaged only when
  /// config_.workers > 1.  Used exclusively from inside ingest() (under
  /// mutex_), so it needs no guarding of its own.
  std::optional<ThreadPool> pool_;
  /// Cross-epoch lattice state; engaged only when config_.incremental.
  /// Used exclusively from inside ingest() (under mutex_).
  std::optional<IncrementalLattice> lattice_;

  mutable Mutex mutex_;
  std::array<std::unordered_map<std::uint64_t, Incident>, kNumMetrics>
      registry_ VQ_GUARDED_BY(mutex_);
  std::array<std::unordered_map<std::uint64_t, ProblemStreak>, kNumMetrics>
      streaks_ VQ_GUARDED_BY(mutex_);
  std::array<std::uint64_t, kNumMetrics> opened_ VQ_GUARDED_BY(mutex_){};
  std::uint64_t stale_epochs_dropped_ VQ_GUARDED_BY(mutex_) = 0;
  std::uint64_t suppressed_clears_ VQ_GUARDED_BY(mutex_) = 0;
  std::uint64_t epochs_observed_ VQ_GUARDED_BY(mutex_) = 0;
  std::uint32_t last_epoch_ VQ_GUARDED_BY(mutex_) = 0;
  bool has_ingested_ VQ_GUARDED_BY(mutex_) = false;
};

}  // namespace vq
