// StreamingDetector: the online counterpart of the batch pipeline.
//
// The paper's reactive strategy (§5.3) presumes a system that watches each
// epoch as it closes, notices when a critical cluster emerges, and
// escalates once it has persisted past a detection delay.  This class is
// that loop as a library: feed it one epoch of sessions at a time and it
// returns incident lifecycle events (new / escalated / cleared) while
// maintaining the active-incident registry.

#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/core/cluster_engine.h"
#include "src/core/critical_cluster.h"
#include "src/core/problem_cluster.h"
#include "src/core/session.h"

namespace vq {

struct MonitorConfig {
  ProblemThresholds thresholds;
  ProblemClusterParams cluster_params{.ratio_multiplier = 1.5,
                                      .min_sessions = 1000};
  ClusterEngineConfig engine;
  /// Consecutive epochs a critical cluster must persist before it
  /// escalates (the paper's reactive strategy uses 1).
  std::uint32_t escalate_after = 1;
};

/// One tracked incident: a critical cluster with a live streak.
struct Incident {
  ClusterKey key;
  Metric metric = Metric::kBufRatio;
  std::uint32_t first_epoch = 0;
  std::uint32_t streak = 0;       // consecutive epochs active, inclusive
  bool escalated = false;
  double attributed = 0.0;        // problem-session mass, latest epoch
  ClusterStats stats;             // cluster counters, latest epoch
};

enum class IncidentUpdate : std::uint8_t {
  kNew = 0,        // first epoch a critical cluster appears
  kEscalated = 1,  // streak crossed escalate_after
  kCleared = 2,    // no longer a critical cluster this epoch
};

[[nodiscard]] std::string_view incident_update_name(
    IncidentUpdate u) noexcept;

struct IncidentEvent {
  IncidentUpdate update = IncidentUpdate::kNew;
  std::uint32_t epoch = 0;
  Incident incident;
};

class StreamingDetector {
 public:
  explicit StreamingDetector(const MonitorConfig& config)
      : config_(config) {}

  /// Processes one closed epoch. Epochs must be fed in strictly increasing
  /// order (gaps allowed: a gap clears all incidents). Returns the
  /// lifecycle events raised by this epoch, in (metric, key) order.
  std::vector<IncidentEvent> ingest(std::span<const Session> sessions,
                                    std::uint32_t epoch);

  /// Currently open incidents for a metric (unspecified order).
  [[nodiscard]] std::vector<Incident> active(Metric metric) const;

  /// Total incidents ever opened for a metric.
  [[nodiscard]] std::uint64_t total_opened(Metric metric) const noexcept {
    return opened_[static_cast<std::uint8_t>(metric)];
  }

  [[nodiscard]] const MonitorConfig& config() const noexcept {
    return config_;
  }

 private:
  MonitorConfig config_;
  std::array<std::unordered_map<std::uint64_t, Incident>, kNumMetrics>
      registry_;
  std::array<std::uint64_t, kNumMetrics> opened_{};
  std::uint32_t last_epoch_ = 0;
  bool has_ingested_ = false;
};

}  // namespace vq
