#include "src/core/whatif.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/stats/timeseries.h"

namespace vq {

std::string_view rank_by_name(RankBy r) noexcept {
  switch (r) {
    case RankBy::kCoverage:
      return "coverage";
    case RankBy::kPrevalence:
      return "prevalence";
    case RankBy::kPersistence:
      return "persistence";
  }
  return "?";
}

WhatIfAnalyzer::WhatIfAnalyzer(const PipelineResult& result)
    : num_epochs_(result.num_epochs) {
  for (const Metric metric : kAllMetrics) {
    const auto mi = static_cast<std::uint8_t>(metric);
    auto& index = index_[mi];
    auto& problem_series = problem_per_epoch_[mi];
    auto& attributed_series = attributed_per_epoch_[mi];
    problem_series.assign(num_epochs_, 0.0);
    attributed_series.assign(num_epochs_, 0.0);

    for (std::uint32_t e = 0; e < num_epochs_; ++e) {
      const CriticalAnalysis& a = result.per_metric[mi][e].analysis;
      problem_series[e] = static_cast<double>(a.problem_sessions);
      total_problem_sessions_[mi] += problem_series[e];
      attributed_series[e] = a.attributed_mass;
      const double g = a.global_ratio;
      for (const CriticalRecord& c : a.criticals) {
        const double r = c.stats.problem_ratio(metric);
        const double factor = r > 0.0 ? std::max(0.0, 1.0 - g / r) : 0.0;
        KeyInfo& info = index[c.key.raw()];
        info.entries.push_back({e, c.attributed, c.attributed * factor});
        info.total_mass += c.attributed;
        info.total_alleviated += c.attributed * factor;
      }
    }

    for (auto& [raw, info] : index) {
      std::sort(info.entries.begin(), info.entries.end(),
                [](const EpochEntry& a, const EpochEntry& b) {
                  return a.epoch < b.epoch;
                });
      std::vector<std::uint32_t> epochs;
      epochs.reserve(info.entries.size());
      for (const auto& entry : info.entries) epochs.push_back(entry.epoch);
      info.prevalence = num_epochs_ == 0
                            ? 0.0
                            : static_cast<double>(epochs.size()) /
                                  static_cast<double>(num_epochs_);
      info.max_persistence = max_streak(streak_lengths_from_epochs(epochs));
    }
  }
}

double WhatIfAnalyzer::rank_value(const KeyInfo& info,
                                  RankBy rank_by) const noexcept {
  switch (rank_by) {
    case RankBy::kCoverage:
      return info.total_mass;
    case RankBy::kPrevalence:
      return info.prevalence;
    case RankBy::kPersistence:
      return static_cast<double>(info.max_persistence);
  }
  return 0.0;
}

std::size_t WhatIfAnalyzer::distinct_critical_count(Metric metric) const {
  return index_[static_cast<std::uint8_t>(metric)].size();
}

std::vector<WhatIfAnalyzer::SweepPoint> WhatIfAnalyzer::topk_sweep(
    Metric metric, RankBy rank_by, std::span<const double> fractions) const {
  return sweep_impl(metric, rank_by, fractions, {});
}

std::vector<WhatIfAnalyzer::SweepPoint> WhatIfAnalyzer::topk_sweep_masks(
    Metric metric, RankBy rank_by, std::span<const double> fractions,
    std::span<const std::uint8_t> allowed_masks) const {
  return sweep_impl(metric, rank_by, fractions, allowed_masks);
}

std::vector<WhatIfAnalyzer::SweepPoint> WhatIfAnalyzer::sweep_impl(
    Metric metric, RankBy rank_by, std::span<const double> fractions,
    std::span<const std::uint8_t> allowed_masks) const {
  VQ_SPAN("whatif.sweep");
  obs::Registry::global().counter("whatif.sweeps").add(1);
  const auto mi = static_cast<std::uint8_t>(metric);
  const KeyIndex& index = index_[mi];
  const double total_problem = total_problem_sessions_[mi];
  const std::size_t total_keys = index.size();

  // O(1) mask admission instead of a linear std::find per key: only 128
  // mask values exist, so the allow-list collapses into a lookup table.
  std::array<bool, kFullMask + 1> mask_allowed{};
  if (allowed_masks.empty()) {
    mask_allowed.fill(true);
  } else {
    for (const std::uint8_t mask : allowed_masks) mask_allowed[mask] = true;
  }

  // (rank value, alleviated, raw key): the rank value is computed once per
  // key up front, so the comparator does no repeated rank_value calls.
  struct RankedEntry {
    double rank;
    double alleviated;
    std::uint64_t raw;
  };
  std::vector<RankedEntry> ranked;
  ranked.reserve(index.size());
  for (const auto& [raw, info] : index) {
    if (!mask_allowed[ClusterKey::from_raw(raw).mask()]) continue;
    ranked.push_back({rank_value(info, rank_by), info.total_alleviated, raw});
  }
  // Stable deterministic order: rank value desc, then raw key.
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedEntry& a, const RankedEntry& b) {
              if (a.rank != b.rank) return a.rank > b.rank;
              return a.raw < b.raw;
            });

  std::vector<double> cumulative(ranked.size() + 1, 0.0);
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    cumulative[i + 1] = cumulative[i] + ranked[i].alleviated;
  }

  std::vector<SweepPoint> out;
  out.reserve(fractions.size());
  for (const double f : fractions) {
    // Fractions are normalised by ALL distinct critical clusters (Fig. 12's
    // x-axis), even when a mask restriction shrinks the eligible pool.
    const auto k = std::min(
        ranked.size(),
        static_cast<std::size_t>(std::ceil(
            f * static_cast<double>(std::max<std::size_t>(total_keys, 1)))));
    const double alleviated = cumulative[k];
    out.push_back(
        {f, total_problem > 0.0 ? alleviated / total_problem : 0.0});
  }
  return out;
}

WhatIfAnalyzer::ProactiveOutcome WhatIfAnalyzer::proactive(
    Metric metric, double top_fraction, std::uint32_t train_begin,
    std::uint32_t train_end, std::uint32_t test_begin,
    std::uint32_t test_end) const {
  const auto mi = static_cast<std::uint8_t>(metric);
  const KeyIndex& index = index_[mi];

  const auto window_mass = [](const KeyInfo& info, std::uint32_t begin,
                              std::uint32_t end) {
    double mass = 0.0;
    for (const auto& e : info.entries) {
      if (e.epoch >= begin && e.epoch < end) mass += e.mass;
    }
    return mass;
  };
  const auto window_alleviated = [](const KeyInfo& info, std::uint32_t begin,
                                    std::uint32_t end) {
    double mass = 0.0;
    for (const auto& e : info.entries) {
      if (e.epoch >= begin && e.epoch < end) mass += e.alleviated;
    }
    return mass;
  };

  double test_problem = 0.0;
  for (std::uint32_t e = test_begin;
       e < test_end && e < problem_per_epoch_[mi].size(); ++e) {
    test_problem += problem_per_epoch_[mi][e];
  }
  if (test_problem <= 0.0) return {};

  // Rank clusters by coverage within a window, keep the top fraction of the
  // window's distinct clusters, return alleviated mass on the test window.
  const auto select_and_score = [&](std::uint32_t rank_begin,
                                    std::uint32_t rank_end) {
    std::vector<std::pair<std::uint64_t, double>> ranked;
    for (const auto& [raw, info] : index) {
      const double mass = window_mass(info, rank_begin, rank_end);
      if (mass > 0.0) ranked.emplace_back(raw, mass);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    const auto k = static_cast<std::size_t>(std::ceil(
        top_fraction * static_cast<double>(ranked.size())));
    double alleviated = 0.0;
    for (std::size_t i = 0; i < std::min(k, ranked.size()); ++i) {
      alleviated += window_alleviated(index.at(ranked[i].first), test_begin,
                                      test_end);
    }
    return alleviated / test_problem;
  };

  ProactiveOutcome outcome;
  outcome.alleviated_fraction = select_and_score(train_begin, train_end);
  outcome.potential_fraction = select_and_score(test_begin, test_end);
  return outcome;
}

WhatIfAnalyzer::ReactiveOutcome WhatIfAnalyzer::reactive(
    Metric metric, std::uint32_t delay_epochs) const {
  const auto mi = static_cast<std::uint8_t>(metric);
  ReactiveOutcome outcome;
  outcome.original = problem_per_epoch_[mi];
  outcome.after_reactive = problem_per_epoch_[mi];
  outcome.outside_critical.resize(num_epochs_);
  for (std::uint32_t e = 0; e < num_epochs_; ++e) {
    outcome.outside_critical[e] =
        problem_per_epoch_[mi][e] - attributed_per_epoch_[mi][e];
  }

  double alleviated_total = 0.0;
  double potential_total = 0.0;
  // Accumulate in sorted-key order, not hash order: the totals are float
  // sums, and float addition does not commute, so hash-order iteration
  // would make the reported fractions depend on the map's bucket layout.
  std::vector<std::pair<std::uint64_t, const KeyInfo*>> sorted_keys;
  sorted_keys.reserve(index_[mi].size());
  for (const auto& [raw, key_info] : index_[mi]) {
    sorted_keys.emplace_back(raw, &key_info);
  }
  std::sort(sorted_keys.begin(), sorted_keys.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [raw, info_ptr] : sorted_keys) {
    const KeyInfo& info = *info_ptr;
    // Walk the entries streak by streak; fix from `delay_epochs` into each.
    std::size_t i = 0;
    while (i < info.entries.size()) {
      std::size_t j = i;
      while (j + 1 < info.entries.size() &&
             info.entries[j + 1].epoch == info.entries[j].epoch + 1) {
        ++j;
      }
      for (std::size_t p = i; p <= j; ++p) {
        potential_total += info.entries[p].alleviated;
        if (p - i >= delay_epochs) {
          alleviated_total += info.entries[p].alleviated;
          outcome.after_reactive[info.entries[p].epoch] -=
              info.entries[p].alleviated;
        }
      }
      i = j + 1;
    }
  }

  const double total_problem = total_problem_sessions_[mi];
  if (total_problem > 0.0) {
    outcome.alleviated_fraction = alleviated_total / total_problem;
    outcome.potential_fraction = potential_total / total_problem;
  }
  return outcome;
}

}  // namespace vq
