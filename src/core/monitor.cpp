#include "src/core/monitor.h"

#include <algorithm>
#include <stdexcept>

namespace vq {

std::string_view incident_update_name(IncidentUpdate u) noexcept {
  switch (u) {
    case IncidentUpdate::kNew:
      return "new";
    case IncidentUpdate::kEscalated:
      return "escalated";
    case IncidentUpdate::kCleared:
      return "cleared";
  }
  return "?";
}

std::vector<IncidentEvent> StreamingDetector::ingest(
    std::span<const Session> sessions, std::uint32_t epoch) {
  if (has_ingested_ && epoch <= last_epoch_) {
    throw std::invalid_argument{
        "StreamingDetector::ingest: epochs must be strictly increasing"};
  }
  const bool contiguous = !has_ingested_ || epoch == last_epoch_ + 1;
  last_epoch_ = epoch;
  has_ingested_ = true;

  // One fold per ingested epoch, shared by the expansion and all metrics.
  const LeafFold fold =
      fold_sessions(sessions, config_.thresholds, epoch);
  const EpochClusterTable lattice =
      config_.engine.fold_leaves
          ? expand_fold(fold, config_.engine)
          : aggregate_epoch_unfolded(sessions, config_.thresholds,
                                     config_.engine, epoch);

  std::vector<IncidentEvent> events;
  for (const Metric metric : kAllMetrics) {
    const auto mi = static_cast<std::uint8_t>(metric);
    auto& incidents = registry_[mi];

    // Dispatches to the indexed extraction when the expansion built a leaf
    // index (the fold_leaves default); falls back to the hashed baseline
    // for unfolded configs.
    const CriticalAnalysis analysis =
        find_critical_clusters(fold, lattice, config_.cluster_params, metric);

    // Mark every open incident as unseen; re-arm those still present.
    for (auto& [raw, incident] : incidents) incident.attributed = -1.0;

    for (const CriticalRecord& c : analysis.criticals) {
      auto [it, inserted] = incidents.try_emplace(c.key.raw());
      Incident& incident = it->second;
      if (inserted || !contiguous) {
        incident.key = c.key;
        incident.metric = metric;
        incident.first_epoch = epoch;
        incident.streak = 0;
        incident.escalated = false;
        if (inserted) ++opened_[mi];
      }
      incident.streak += 1;
      incident.attributed = c.attributed;
      incident.stats = c.stats;
      if (inserted) {
        events.push_back({IncidentUpdate::kNew, epoch, incident});
      }
      if (!incident.escalated && incident.streak > config_.escalate_after) {
        incident.escalated = true;
        events.push_back({IncidentUpdate::kEscalated, epoch, incident});
      }
    }

    // Close incidents that did not recur (or everything after a gap that
    // also failed to recur — their streak is stale either way).
    for (auto it = incidents.begin(); it != incidents.end();) {
      if (it->second.attributed < 0.0) {
        it->second.attributed = 0.0;
        events.push_back({IncidentUpdate::kCleared, epoch, it->second});
        it = incidents.erase(it);
      } else {
        ++it;
      }
    }
  }

  std::sort(events.begin(), events.end(),
            [](const IncidentEvent& a, const IncidentEvent& b) {
              if (a.incident.metric != b.incident.metric) {
                return a.incident.metric < b.incident.metric;
              }
              if (a.incident.key.raw() != b.incident.key.raw()) {
                return a.incident.key.raw() < b.incident.key.raw();
              }
              return a.update < b.update;
            });
  return events;
}

std::vector<Incident> StreamingDetector::active(Metric metric) const {
  std::vector<Incident> out;
  const auto& incidents = registry_[static_cast<std::uint8_t>(metric)];
  out.reserve(incidents.size());
  for (const auto& [raw, incident] : incidents) out.push_back(incident);
  std::sort(out.begin(), out.end(), [](const Incident& a, const Incident& b) {
    return a.key.raw() < b.key.raw();
  });
  return out;
}

}  // namespace vq
