#include "src/core/monitor.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/fsync.h"

namespace vq {

namespace {

// Incident life-cycle counters are kStable: they mirror the detector's own
// deterministic per-epoch state machine, independent of scheduling.
struct MonitorMetrics {
  obs::Counter& epochs;
  obs::Counter& incidents_opened;
  obs::Counter& incidents_escalated;
  obs::Counter& incidents_cleared;
  obs::Counter& clears_suppressed;
  obs::Counter& stale_epochs_dropped;
  obs::Counter& checkpoint_saves;
  obs::Counter& checkpoint_loads;

  static MonitorMetrics& get() {
    obs::Registry& reg = obs::Registry::global();
    static MonitorMetrics m{reg.counter("monitor.epochs"),
                            reg.counter("monitor.incidents_opened"),
                            reg.counter("monitor.incidents_escalated"),
                            reg.counter("monitor.incidents_cleared"),
                            reg.counter("monitor.clears_suppressed"),
                            reg.counter("monitor.stale_epochs_dropped"),
                            reg.counter("monitor.checkpoint_saves"),
                            reg.counter("monitor.checkpoint_loads")};
    return m;
  }
};

}  // namespace

std::string_view incident_update_name(IncidentUpdate u) noexcept {
  switch (u) {
    case IncidentUpdate::kNew:
      return "new";
    case IncidentUpdate::kEscalated:
      return "escalated";
    case IncidentUpdate::kCleared:
      return "cleared";
  }
  return "?";
}

std::vector<IncidentEvent> StreamingDetector::ingest(
    std::span<const Session> sessions, std::uint32_t epoch,
    EpochDataQuality quality) {
  VQ_SPAN_EPOCH("monitor.ingest", epoch);
  MonitorMetrics& metrics = MonitorMetrics::get();
  // One lock over the whole epoch: the registry must not be observed (or
  // checkpointed) while an epoch's transitions are half-applied, and the
  // epoch-ordering check below must be atomic with the state update.
  const MutexLock lock{mutex_};
  if (has_ingested_ && epoch <= last_epoch_) {
    if (config_.order_policy == EpochOrderPolicy::kSkipStale) {
      stale_epochs_dropped_ += 1;
      metrics.stale_epochs_dropped.add(1);
      return {};
    }
    throw std::invalid_argument{
        "StreamingDetector::ingest: epoch " + std::to_string(epoch) +
        " is not after the last ingested epoch " +
        std::to_string(last_epoch_) +
        " (epochs must be strictly increasing; use "
        "EpochOrderPolicy::kSkipStale to drop duplicates instead)"};
  }
  const bool contiguous = !has_ingested_ || epoch == last_epoch_ + 1;
  last_epoch_ = epoch;
  has_ingested_ = true;
  epochs_observed_ += 1;

  // One fold per ingested epoch, shared by the expansion (or the delta
  // engine) and all metrics.
  ThreadPool* pool_ptr = pool_ ? &*pool_ : nullptr;
  const std::size_t shards = std::max<std::uint32_t>(1, config_.shards);
  const LeafFold fold =
      fold_sessions(sessions, config_.thresholds, epoch);

  // Incremental mode applies the fold as a per-leaf delta against the
  // retained lattice; otherwise re-expand from scratch.  Both paths yield
  // bit-identical analyses (tests/test_incremental.cpp), so the incident
  // stream cannot depend on the mode.
  std::array<CriticalAnalysis, kNumMetrics> analyses;
  if (lattice_) {
    analyses = lattice_->advance(fold, pool_ptr, shards);
  } else {
    const EpochClusterTable lattice =
        config_.engine.fold_leaves
            ? expand_fold(fold, config_.engine, pool_ptr, shards)
            : aggregate_epoch_unfolded(sessions, config_.thresholds,
                                       config_.engine, epoch);
    for (const Metric metric : kAllMetrics) {
      // Dispatches to the indexed extraction when the expansion built a
      // leaf index (the fold_leaves default); falls back to the hashed
      // baseline for unfolded configs.
      analyses[static_cast<std::uint8_t>(metric)] = find_critical_clusters(
          fold, lattice, config_.cluster_params, metric, pool_ptr, shards);
    }
  }

  std::vector<IncidentEvent> events;
  for (const Metric metric : kAllMetrics) {
    const auto mi = static_cast<std::uint8_t>(metric);
    auto& incidents = registry_[mi];
    const CriticalAnalysis& analysis = analyses[mi];

    // Roll the prevalence/persistence streaks forward from the epoch's
    // problem-cluster keys (published by the critical extraction, so no
    // extra per-cell sweep happens here).
    for (const std::uint64_t raw : analysis.problem_cluster_keys) {
      auto [it, inserted] = streaks_[mi].try_emplace(raw);
      ProblemStreak& streak = it->second;
      if (inserted) {
        streak.key = ClusterKey::from_raw(raw);
        streak.first_epoch = epoch;
      }
      streak.streak =
          (!inserted && streak.last_epoch + 1 == epoch) ? streak.streak + 1
                                                        : 1;
      streak.max_streak = std::max(streak.max_streak, streak.streak);
      streak.last_epoch = epoch;
      streak.epochs_seen += 1;
    }

    // Mark every open incident as unseen; re-arm those still present.
    for (auto& [raw, incident] : incidents) incident.attributed = -1.0;

    for (const CriticalRecord& c : analysis.criticals) {
      auto [it, inserted] = incidents.try_emplace(c.key.raw());
      Incident& incident = it->second;
      if (inserted || !contiguous) {
        incident.key = c.key;
        incident.metric = metric;
        incident.first_epoch = epoch;
        incident.streak = 0;
        incident.escalated = false;
        if (inserted) ++opened_[mi];
      }
      incident.streak += 1;
      incident.attributed = c.attributed;
      incident.stats = c.stats;
      if (inserted) {
        metrics.incidents_opened.add(1);
        events.push_back({IncidentUpdate::kNew, epoch, incident});
      }
      if (!incident.escalated && incident.streak > config_.escalate_after) {
        incident.escalated = true;
        metrics.incidents_escalated.add(1);
        events.push_back({IncidentUpdate::kEscalated, epoch, incident});
      }
    }

    // Close incidents that did not recur (or everything after a gap that
    // also failed to recur — their streak is stale either way).  On a
    // degraded epoch, absence is assumed to be missing data, not recovery:
    // the incident stays open with its streak frozen and no kCleared fires.
    for (auto it = incidents.begin(); it != incidents.end();) {
      if (it->second.attributed < 0.0) {
        it->second.attributed = 0.0;
        if (quality.degraded) {
          suppressed_clears_ += 1;
          metrics.clears_suppressed.add(1);
          ++it;
          continue;
        }
        metrics.incidents_cleared.add(1);
        events.push_back({IncidentUpdate::kCleared, epoch, it->second});
        it = incidents.erase(it);
      } else {
        ++it;
      }
    }
  }

  std::sort(events.begin(), events.end(),
            [](const IncidentEvent& a, const IncidentEvent& b) {
              if (a.incident.metric != b.incident.metric) {
                return a.incident.metric < b.incident.metric;
              }
              if (a.incident.key.raw() != b.incident.key.raw()) {
                return a.incident.key.raw() < b.incident.key.raw();
              }
              return a.update < b.update;
            });
  metrics.epochs.add(1);
  return events;
}

std::vector<Incident> StreamingDetector::active(Metric metric) const {
  const MutexLock lock{mutex_};
  std::vector<Incident> out;
  const auto& incidents = registry_[static_cast<std::uint8_t>(metric)];
  out.reserve(incidents.size());
  for (const auto& [raw, incident] : incidents) out.push_back(incident);
  std::sort(out.begin(), out.end(), [](const Incident& a, const Incident& b) {
    return a.key.raw() < b.key.raw();
  });
  return out;
}

std::vector<ProblemStreak> StreamingDetector::problem_streaks(
    Metric metric) const {
  const MutexLock lock{mutex_};
  std::vector<ProblemStreak> out;
  const auto& streaks = streaks_[static_cast<std::uint8_t>(metric)];
  out.reserve(streaks.size());
  for (const auto& [raw, streak] : streaks) out.push_back(streak);
  std::sort(out.begin(), out.end(),
            [](const ProblemStreak& a, const ProblemStreak& b) {
              return a.key.raw() < b.key.raw();
            });
  for (ProblemStreak& s : out) {
    s.prevalence = epochs_observed_ == 0
                       ? 0.0
                       : static_cast<double>(s.epochs_seen) /
                             static_cast<double>(epochs_observed_);
  }
  return out;
}

// --- checkpoint/restore ------------------------------------------------------

namespace {

constexpr char kCheckpointMagic[4] = {'V', 'Q', 'C', 'K'};
/// Version 2 appended the epochs-observed count and the per-metric
/// problem-streak registry to the payload (one-sided bump: version-1
/// checkpoints are rejected, per the docs/wire_contracts.json recipe).
constexpr std::uint32_t kCheckpointVersion = 2;

[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

void fnv_mix(std::uint64_t& h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 1099511628211ULL;
  }
}

template <typename T>
void put(std::string& buf, T value) {
  char bytes[sizeof value];
  std::memcpy(bytes, &value, sizeof value);
  buf.append(bytes, sizeof value);
}

/// Bounds-checked little cursor over the checkpoint payload.
struct Cursor {
  const char* p;
  const char* end;

  template <typename T>
  T get() {
    if (static_cast<std::size_t>(end - p) < sizeof(T)) {
      throw std::runtime_error{
          "load_checkpoint: truncated checkpoint payload"};
    }
    T value{};
    std::memcpy(&value, p, sizeof value);
    p += sizeof value;
    return value;
  }

  [[nodiscard]] bool done() const noexcept { return p == end; }
};

template <typename T>
T read_header_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) {
    throw std::runtime_error{"load_checkpoint: truncated checkpoint header"};
  }
  return value;
}

}  // namespace

std::uint64_t StreamingDetector::config_fingerprint(
    const MonitorConfig& config) noexcept {
  std::uint64_t h = 14695981039346656037ULL;
  fnv_mix(h, std::bit_cast<std::uint64_t>(
                 config.thresholds.max_buffering_ratio));
  fnv_mix(h, std::bit_cast<std::uint64_t>(config.thresholds.min_bitrate_kbps));
  fnv_mix(h, std::bit_cast<std::uint64_t>(config.thresholds.max_join_time_ms));
  fnv_mix(h, std::bit_cast<std::uint64_t>(
                 config.cluster_params.ratio_multiplier));
  fnv_mix(h, config.cluster_params.min_sessions);
  fnv_mix(h, config.escalate_after);
  fnv_mix(h, static_cast<std::uint64_t>(config.order_policy));
  return h;
}

void StreamingDetector::save_checkpoint(std::ostream& out) const {
  VQ_SPAN("monitor.save_checkpoint");
  MonitorMetrics::get().checkpoint_saves.add(1);
  const MutexLock lock{mutex_};
  std::string payload;
  put(payload, static_cast<std::uint8_t>(has_ingested_ ? 1 : 0));
  put(payload, last_epoch_);
  for (int m = 0; m < kNumMetrics; ++m) put(payload, opened_[m]);
  put(payload, stale_epochs_dropped_);
  put(payload, suppressed_clears_);
  for (int m = 0; m < kNumMetrics; ++m) {
    const auto& incidents = registry_[m];
    // Sorted by key so identical state always serialises identically,
    // independent of hash-map iteration order.
    std::vector<const Incident*> sorted;
    sorted.reserve(incidents.size());
    for (const auto& [raw, incident] : incidents) sorted.push_back(&incident);
    std::sort(sorted.begin(), sorted.end(),
              [](const Incident* a, const Incident* b) {
                return a->key.raw() < b->key.raw();
              });
    put(payload, static_cast<std::uint32_t>(sorted.size()));
    for (const Incident* incident : sorted) {
      put(payload, incident->key.raw());
      put(payload, static_cast<std::uint8_t>(incident->metric));
      put(payload, incident->first_epoch);
      put(payload, incident->streak);
      put(payload, static_cast<std::uint8_t>(incident->escalated ? 1 : 0));
      put(payload, incident->attributed);
      put(payload, incident->stats.sessions);
      for (int k = 0; k < kNumMetrics; ++k) {
        put(payload, incident->stats.problems[k]);
      }
    }
  }
  // Version-2 tail: the rolling prevalence/persistence state.
  put(payload, epochs_observed_);
  for (int m = 0; m < kNumMetrics; ++m) {
    const auto& streaks = streaks_[m];
    std::vector<const ProblemStreak*> sorted;
    sorted.reserve(streaks.size());
    for (const auto& [raw, streak] : streaks) sorted.push_back(&streak);
    std::sort(sorted.begin(), sorted.end(),
              [](const ProblemStreak* a, const ProblemStreak* b) {
                return a->key.raw() < b->key.raw();
              });
    put(payload, static_cast<std::uint32_t>(sorted.size()));
    for (const ProblemStreak* streak : sorted) {
      put(payload, streak->key.raw());
      put(payload, streak->first_epoch);
      put(payload, streak->last_epoch);
      put(payload, streak->epochs_seen);
      put(payload, streak->streak);
      put(payload, streak->max_streak);
    }
  }

  out.write(kCheckpointMagic, sizeof kCheckpointMagic);
  const std::uint32_t version = kCheckpointVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof version);
  const std::uint64_t fingerprint = config_fingerprint(config_);
  out.write(reinterpret_cast<const char*>(&fingerprint), sizeof fingerprint);
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  const std::uint64_t checksum = fnv1a(payload);
  out.write(reinterpret_cast<const char*>(&checksum), sizeof checksum);
  if (!out) throw std::runtime_error{"save_checkpoint: write failed"};
}

void StreamingDetector::save_checkpoint(
    const std::filesystem::path& path) const {
  std::filesystem::path tmp = path;
  tmp += ".tmp";
  {
    std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
    if (!out) {
      throw std::runtime_error{"save_checkpoint: cannot open " +
                               tmp.string()};
    }
    save_checkpoint(out);
    out.flush();
    if (!out) {
      throw std::runtime_error{"save_checkpoint: write failed for " +
                               tmp.string()};
    }
  }
  // Durability before atomicity: the rename commits whatever bytes the
  // filesystem has — without the fsync a power cut can promote a
  // zero-length temp file into the "committed" checkpoint.  The directory
  // fsync afterwards persists the rename itself.
  detail::fsync_path(tmp, /*directory=*/false, "save_checkpoint");
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error{"save_checkpoint: rename to " + path.string() +
                             " failed"};
  }
  const std::filesystem::path dir = path.parent_path();
  detail::fsync_path(dir.empty() ? "." : dir, /*directory=*/true,
                     "save_checkpoint");
}

void StreamingDetector::load_checkpoint(std::istream& in) {
  VQ_SPAN("monitor.load_checkpoint");
  MonitorMetrics::get().checkpoint_loads.add(1);
  char magic[4];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kCheckpointMagic, sizeof magic) != 0) {
    throw std::runtime_error{"load_checkpoint: bad magic"};
  }
  const auto version = read_header_pod<std::uint32_t>(in);
  if (version != kCheckpointVersion) {
    throw std::runtime_error{"load_checkpoint: unsupported version " +
                             std::to_string(version)};
  }
  const auto fingerprint = read_header_pod<std::uint64_t>(in);
  if (fingerprint != config_fingerprint(config_)) {
    throw std::runtime_error{
        "load_checkpoint: checkpoint was written with a different monitor "
        "configuration (fingerprint mismatch)"};
  }

  // Slurp the rest; the trailing 8 bytes are the payload checksum, so a
  // truncated or bit-flipped checkpoint is rejected before any state is
  // parsed, let alone committed.
  std::string rest{std::istreambuf_iterator<char>{in},
                   std::istreambuf_iterator<char>{}};
  if (in.bad()) {
    throw std::runtime_error{"load_checkpoint: stream failure"};
  }
  if (rest.size() < sizeof(std::uint64_t)) {
    throw std::runtime_error{"load_checkpoint: truncated checkpoint"};
  }
  const std::string_view payload{rest.data(),
                                 rest.size() - sizeof(std::uint64_t)};
  std::uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, rest.data() + payload.size(),
              sizeof stored_checksum);
  if (stored_checksum != fnv1a(payload)) {
    throw std::runtime_error{"load_checkpoint: checksum mismatch"};
  }

  // Parse into temporaries and commit only on full success, so a throwing
  // load leaves the detector unchanged.
  Cursor cursor{payload.data(), payload.data() + payload.size()};
  const bool has_ingested = cursor.get<std::uint8_t>() != 0;
  const auto last_epoch = cursor.get<std::uint32_t>();
  std::array<std::uint64_t, kNumMetrics> opened{};
  for (int m = 0; m < kNumMetrics; ++m) opened[m] = cursor.get<std::uint64_t>();
  const auto stale_dropped = cursor.get<std::uint64_t>();
  const auto suppressed = cursor.get<std::uint64_t>();
  std::array<std::unordered_map<std::uint64_t, Incident>, kNumMetrics>
      registry;
  for (int m = 0; m < kNumMetrics; ++m) {
    const auto count = cursor.get<std::uint32_t>();
    registry[m].reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      Incident incident;
      const auto raw = cursor.get<std::uint64_t>();
      incident.key = ClusterKey::from_raw(raw);
      const auto metric = cursor.get<std::uint8_t>();
      if (metric != m) {
        throw std::runtime_error{
            "load_checkpoint: incident metric does not match its registry "
            "section"};
      }
      incident.metric = static_cast<Metric>(metric);
      incident.first_epoch = cursor.get<std::uint32_t>();
      incident.streak = cursor.get<std::uint32_t>();
      incident.escalated = cursor.get<std::uint8_t>() != 0;
      incident.attributed = cursor.get<double>();
      incident.stats.sessions = cursor.get<std::uint32_t>();
      for (int k = 0; k < kNumMetrics; ++k) {
        incident.stats.problems[k] = cursor.get<std::uint32_t>();
      }
      if (!registry[m].emplace(raw, incident).second) {
        throw std::runtime_error{
            "load_checkpoint: duplicate incident key in registry section"};
      }
    }
  }
  const auto epochs_observed = cursor.get<std::uint64_t>();
  std::array<std::unordered_map<std::uint64_t, ProblemStreak>, kNumMetrics>
      streaks;
  for (int m = 0; m < kNumMetrics; ++m) {
    const auto count = cursor.get<std::uint32_t>();
    streaks[m].reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      ProblemStreak streak;
      const auto raw = cursor.get<std::uint64_t>();
      streak.key = ClusterKey::from_raw(raw);
      streak.first_epoch = cursor.get<std::uint32_t>();
      streak.last_epoch = cursor.get<std::uint32_t>();
      streak.epochs_seen = cursor.get<std::uint32_t>();
      streak.streak = cursor.get<std::uint32_t>();
      streak.max_streak = cursor.get<std::uint32_t>();
      if (!streaks[m].emplace(raw, streak).second) {
        throw std::runtime_error{
            "load_checkpoint: duplicate key in streak section"};
      }
    }
  }
  if (!cursor.done()) {
    throw std::runtime_error{
        "load_checkpoint: trailing bytes after streak section"};
  }

  // Parse happened into locals; only the commit needs the state lock.
  const MutexLock lock{mutex_};
  registry_ = std::move(registry);
  streaks_ = std::move(streaks);
  opened_ = opened;
  stale_epochs_dropped_ = stale_dropped;
  suppressed_clears_ = suppressed;
  epochs_observed_ = epochs_observed;
  last_epoch_ = last_epoch;
  has_ingested_ = has_ingested;
}

void StreamingDetector::load_checkpoint(const std::filesystem::path& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    throw std::runtime_error{"load_checkpoint: cannot open " + path.string()};
  }
  load_checkpoint(in);
}

}  // namespace vq
