#include "src/core/problem_cluster.h"

#include "src/obs/trace.h"

namespace vq {

bool is_problem_cluster(const ClusterStats& stats, double global_ratio,
                        const ProblemClusterParams& params,
                        Metric metric) noexcept {
  if (!is_significant(stats, params)) return false;
  const double threshold = params.ratio_multiplier * global_ratio;
  // With a zero global ratio any problem at all is "elevated"; require at
  // least one problem session so all-clean clusters are never flagged.
  if (threshold <= 0.0) {
    return stats.problems[static_cast<std::uint8_t>(metric)] > 0;
  }
  return stats.problem_ratio(metric) >= threshold;
}

std::vector<ProblemCluster> find_problem_clusters(
    const EpochClusterTable& table, const ProblemClusterParams& params,
    Metric metric) {
  std::vector<ProblemCluster> out;
  const double global = table.global_ratio(metric);
  table.clusters.for_each(
      [&](std::uint64_t raw, const ClusterStats& stats) {
        if (is_problem_cluster(stats, global, params, metric)) {
          out.push_back({ClusterKey::from_raw(raw), stats});
        }
      });
  return out;
}

CellFlags compute_cell_flags(const EpochClusterTable& table,
                             const ProblemClusterParams& params,
                             Metric metric) {
  VQ_SPAN_EPOCH("core.compute_cell_flags", table.epoch);
  const double global = table.global_ratio(metric);
  const std::span<const ClusterStats> cells = table.clusters.cells();
  CellFlags flags;
  flags.flagged.assign((cells.size() + 63) / 64, 0);
  flags.significant.assign((cells.size() + 63) / 64, 0);
  for (std::size_t id = 0; id < cells.size(); ++id) {
    const std::uint64_t bit = std::uint64_t{1} << (id & 63);
    if (is_significant(cells[id], params)) {
      flags.significant[id >> 6] |= bit;
      // Significance is a precondition of the full test; only significant
      // cells can be flagged.
      if (is_problem_cluster(cells[id], global, params, metric)) {
        flags.flagged[id >> 6] |= bit;
        ++flags.num_flagged;
      }
    }
  }
  return flags;
}

std::uint64_t problem_sessions_covered(std::span<const Session> sessions,
                                       const EpochClusterTable& table,
                                       const ProblemThresholds& thresholds,
                                       const ProblemClusterParams& params,
                                       Metric metric) {
  const double global = table.global_ratio(metric);
  // Memoise the covered/not decision per distinct leaf: all sessions with
  // identical attributes share the same lattice cells.
  FlatMap64<std::uint8_t> leaf_covered;  // 0 = unknown, 1 = no, 2 = yes
  std::uint64_t covered = 0;
  for (const Session& s : sessions) {
    if (!thresholds.is_problem(metric, s.quality)) continue;
    const ClusterKey leaf = ClusterKey::pack(kFullMask, s.attrs);
    std::uint8_t& memo = leaf_covered[leaf.raw()];
    if (memo == 0) {
      memo = 1;
      for (unsigned mask = 1; mask <= kFullMask; ++mask) {
        const ClusterStats stats =
            table.stats(leaf.project(static_cast<std::uint8_t>(mask)));
        if (is_problem_cluster(stats, global, params, metric)) {
          memo = 2;
          break;
        }
      }
    }
    if (memo == 2) ++covered;
  }
  return covered;
}

}  // namespace vq
