#include "src/core/costbenefit.h"

#include <algorithm>
#include <cmath>

namespace vq {

double RemediationCostModel::cluster_cost(const ClusterKey& key,
                                          double mean_sessions) const
    noexcept {
  double cost = 0.0;
  for (int d = 0; d < kNumDims; ++d) {
    if (key.has(static_cast<AttrDim>(d))) cost += dim_fixed_cost[d];
  }
  return cost + per_session_cost * mean_sessions;
}

CostBenefitPlanner::CostBenefitPlanner(const PipelineResult& result) {
  for (const Metric metric : kAllMetrics) {
    const auto mi = static_cast<std::uint8_t>(metric);
    std::unordered_map<std::uint64_t, std::uint32_t> active_epochs;
    for (std::uint32_t e = 0; e < result.num_epochs; ++e) {
      const CriticalAnalysis& a = result.at(metric, e).analysis;
      total_problem_sessions_[mi] +=
          static_cast<double>(a.problem_sessions);
      const double g = a.global_ratio;
      for (const CriticalRecord& c : a.criticals) {
        const double r = c.stats.problem_ratio(metric);
        const double factor = r > 0.0 ? std::max(0.0, 1.0 - g / r) : 0.0;
        KeyAggregate& agg = aggregates_[mi][c.key.raw()];
        agg.alleviated += c.attributed * factor;
        agg.mean_sessions += static_cast<double>(c.stats.sessions);
        ++active_epochs[c.key.raw()];
      }
    }
    for (auto& [raw, agg] : aggregates_[mi]) {
      const auto epochs = active_epochs[raw];
      if (epochs > 0) agg.mean_sessions /= static_cast<double>(epochs);
    }
  }
}

std::vector<PlanItem> CostBenefitPlanner::ranked_items(
    Metric metric, const RemediationCostModel& costs) const {
  const auto mi = static_cast<std::uint8_t>(metric);
  std::vector<PlanItem> items;
  items.reserve(aggregates_[mi].size());
  for (const auto& [raw, agg] : aggregates_[mi]) {
    PlanItem item;
    item.key = ClusterKey::from_raw(raw);
    item.alleviated = agg.alleviated;
    item.cost = costs.cluster_cost(item.key, agg.mean_sessions);
    item.benefit_per_cost =
        item.cost > 0.0 ? item.alleviated / item.cost : 0.0;
    items.push_back(item);
  }
  std::sort(items.begin(), items.end(),
            [](const PlanItem& a, const PlanItem& b) {
              if (a.benefit_per_cost != b.benefit_per_cost) {
                return a.benefit_per_cost > b.benefit_per_cost;
              }
              return a.key.raw() < b.key.raw();
            });
  return items;
}

RemediationPlan CostBenefitPlanner::plan(Metric metric,
                                         const RemediationCostModel& costs,
                                         double budget) const {
  const auto mi = static_cast<std::uint8_t>(metric);
  RemediationPlan plan;
  for (PlanItem& item : ranked_items(metric, costs)) {
    if (plan.total_cost + item.cost > budget) continue;  // greedy skip
    plan.total_cost += item.cost;
    plan.total_alleviated += item.alleviated;
    plan.items.push_back(std::move(item));
  }
  if (total_problem_sessions_[mi] > 0.0) {
    plan.alleviated_fraction =
        plan.total_alleviated / total_problem_sessions_[mi];
  }
  return plan;
}

std::vector<CostBenefitPlanner::FrontierPoint> CostBenefitPlanner::frontier(
    Metric metric, const RemediationCostModel& costs) const {
  const auto mi = static_cast<std::uint8_t>(metric);
  std::vector<FrontierPoint> points;
  double cost = 0.0;
  double alleviated = 0.0;
  const double total = total_problem_sessions_[mi];
  points.push_back({0.0, 0.0});
  for (const PlanItem& item : ranked_items(metric, costs)) {
    cost += item.cost;
    alleviated += item.alleviated;
    points.push_back({cost, total > 0.0 ? alleviated / total : 0.0});
  }
  return points;
}

}  // namespace vq
