#include "src/core/cluster_engine.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "src/core/expand_kernels.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace vq {

void CellStore::throw_sorted_mutation() {
  throw std::logic_error{
      "CellStore: mutation of a sorted (mask-major) store"};
}

std::uint32_t CellStore::sorted_id_of(std::uint64_t raw) const noexcept {
  const std::size_t mask = raw & kFullMask;
  const auto begin = keys_.begin() + mask_offsets_[mask];
  const auto end = keys_.begin() + mask_offsets_[mask + 1];
  const auto it = std::lower_bound(begin, end, raw);
  if (it == end || *it != raw) return kNoCell;
  return static_cast<std::uint32_t>(it - keys_.begin());
}

CellStore CellStore::from_mask_major(
    std::vector<std::uint64_t> keys, std::vector<ClusterStats> stats,
    const std::array<std::uint32_t, kFullMask + 2>& mask_offsets) {
  if (keys.size() != stats.size()) {
    throw std::invalid_argument{
        "CellStore::from_mask_major: keys/stats size mismatch"};
  }
  if (mask_offsets.front() != 0 || mask_offsets.back() != keys.size()) {
    throw std::invalid_argument{
        "CellStore::from_mask_major: offsets do not span the key array"};
  }
  for (std::size_t m = 0; m + 1 < mask_offsets.size(); ++m) {
    if (mask_offsets[m] > mask_offsets[m + 1]) {
      throw std::invalid_argument{
          "CellStore::from_mask_major: offsets not monotone"};
    }
  }
  CellStore out;
  out.sorted_ = true;
  out.keys_ = std::move(keys);
  out.stats_ = std::move(stats);
  out.mask_offsets_ = mask_offsets;
  return out;
}

ClusterStats ClusterStats::minus(const ClusterStats& o) const noexcept {
  ClusterStats out;
  out.sessions = sessions >= o.sessions ? sessions - o.sessions : 0;
  for (int m = 0; m < kNumMetrics; ++m) {
    out.problems[m] =
        problems[m] >= o.problems[m] ? problems[m] - o.problems[m] : 0;
  }
  return out;
}

ClusterStats EpochClusterTable::stats(const ClusterKey& key) const noexcept {
  if (key.mask() == 0) return root;
  if (const ClusterStats* found = clusters.find(key.raw())) return *found;
  return ClusterStats{};
}

std::vector<std::uint8_t> lattice_masks(int max_arity) {
  if (max_arity < 1 || max_arity > kNumDims) {
    throw std::invalid_argument{"lattice_masks: max_arity out of range"};
  }
  std::vector<std::uint8_t> masks;
  for (unsigned mask = 1; mask <= kFullMask; ++mask) {
    if (std::popcount(mask) <= max_arity) {
      masks.push_back(static_cast<std::uint8_t>(mask));
    }
  }
  return masks;
}

LeafFold fold_sessions(std::span<const Session> sessions,
                       const ProblemThresholds& thresholds,
                       std::uint32_t epoch) {
  LeafFold fold;
  fold.epoch = epoch;
  fold.leaves.reserve(sessions.size() / 4 + 16);
  for (const Session& s : sessions) {
    if (s.epoch != epoch) {
      throw std::invalid_argument{
          "aggregate_epoch: session epoch mismatch"};
    }
    const std::uint8_t bits = thresholds.problem_bits(s.quality);
    ClusterStats& leaf =
        fold.leaves[ClusterKey::pack(kFullMask, s.attrs).raw()];
    fold.root.sessions += 1;
    leaf.sessions += 1;
    for (int m = 0; m < kNumMetrics; ++m) {
      const std::uint32_t bit = (bits >> m) & 1u;
      fold.root.problems[m] += bit;
      leaf.problems[m] += bit;
    }
  }
  return fold;
}

namespace {

// Sharding only pays off when each shard gets a meaningful slice.
constexpr std::size_t kMinLeavesPerShard = 256;

// Inputs below this use a comparison sort instead of the LSD radix: the
// radix's per-pass fixed costs only amortize past ~1k keys.
constexpr std::size_t kRadixMinKeys = 1024;

struct ExpandMetrics {
  obs::Counter& leaves;
  obs::Counter& cells;
  obs::Counter& radix_bytes;
  obs::Gauge& reserve_fill_pct;
};

/// One registration for both engines, so every snapshot that saw an
/// expansion carries all expand.* metrics whichever strategy ran.
/// expand.radix_bytes is kStable: radix traffic is a pure function of the
/// per-mask source sizes (cell counts) and radix plans, and the source
/// choice is itself a deterministic function of those counts — independent
/// of shard count and SIMD kernel.
/// expand.reserve_fill_pct depends on the hashed engine's shard split, so
/// it is kRuntime (excluded from determinism-checked snapshots).
ExpandMetrics& expand_metrics() {
  static ExpandMetrics metrics{
      obs::Registry::global().counter("expand.leaves"),
      obs::Registry::global().counter("expand.cells"),
      obs::Registry::global().counter("expand.radix_bytes"),
      obs::Registry::global().gauge("expand.reserve_fill_pct",
                                    obs::Determinism::kRuntime),
  };
  return metrics;
}

/// Hashed reserve heuristic: |masks| bounds the per-leaf cell count exactly
/// for low-arity caps, and 8x leaves caps the overcommit for the full
/// 127-mask lattice where sharing is heavy.  The realised fill ratio is
/// exported via expand.reserve_fill_pct so the heuristic stays measurable.
[[nodiscard]] std::size_t hashed_reserve(std::size_t num_leaves,
                                         std::size_t num_masks) noexcept {
  return num_leaves * std::min<std::size_t>(num_masks, 8) + 64;
}

/// Hashed engine inner loop: expands leaves [lo, hi) across `masks` into
/// `out`, one hash bump per (leaf, mask).  When `rows` is non-null it
/// receives the dense cell ids of every projection, row-major starting at
/// leaf `lo` — the LeafCellIndex falls out of the same id_or_insert that
/// bumps the counters, so indexing costs no extra hashing.
void expand_leaf_range(std::span<const std::uint64_t> leaf_keys,
                       std::span<const ClusterStats> leaf_stats,
                       std::size_t lo, std::size_t hi,
                       const std::vector<std::uint8_t>& masks, CellStore& out,
                       std::uint32_t* rows) {
  out.reserve(hashed_reserve(hi - lo, masks.size()));
  for (std::size_t i = lo; i < hi; ++i) {
    const ClusterKey leaf = ClusterKey::from_raw(leaf_keys[i]);
    for (std::size_t j = 0; j < masks.size(); ++j) {
      const std::uint32_t id =
          out.bump(leaf.project(masks[j]).raw(), leaf_stats[i]);
      if (rows != nullptr) rows[(i - lo) * masks.size() + j] = id;
    }
  }
}

/// The retained hashed engine (ExpandStrategy::kHashed): the original
/// contiguous-leaf-range sharding + in-order merge.
void expand_fold_hashed(std::span<const std::uint64_t> leaf_keys,
                        std::span<const ClusterStats> leaf_stats,
                        const std::vector<std::uint8_t>& masks,
                        EpochClusterTable& table, std::uint32_t* rows,
                        ThreadPool* pool, std::size_t shards) {
  const std::size_t num_leaves = leaf_keys.size();
  std::size_t reserved = hashed_reserve(num_leaves, masks.size());
  if (pool == nullptr || shards <= 1 ||
      num_leaves < 2 * kMinLeavesPerShard) {
    expand_leaf_range(leaf_keys, leaf_stats, 0, num_leaves, masks,
                      table.clusters, rows);
  } else {
    shards = std::min(shards, num_leaves / kMinLeavesPerShard);
    // Cut the sorted leaf array into contiguous ranges: every leaf lands in
    // exactly one shard, so the shard stores are disjoint sums whose merge
    // (uint32 addition, commutative + associative) matches the serial
    // expansion bit for bit.  Because the merge walks shards in range order
    // and each shard discovers cells in its range's first-touch order, the
    // remapped dense ids come out identical to the serial assignment too.
    std::vector<CellStore> shard_stores(shards);
    std::vector<std::size_t> bounds(shards + 1);
    for (std::size_t s = 0; s <= shards; ++s) {
      bounds[s] = num_leaves * s / shards;
    }
    pool->parallel_for(0, shards, [&](std::size_t shard) {
      std::uint32_t* shard_rows =
          rows == nullptr ? nullptr : rows + bounds[shard] * masks.size();
      expand_leaf_range(leaf_keys, leaf_stats, bounds[shard],
                        bounds[shard + 1], masks, shard_stores[shard],
                        shard_rows);
    });

    VQ_SPAN("expand.merge");
    reserved = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      reserved += hashed_reserve(bounds[s + 1] - bounds[s], masks.size());
    }
    table.clusters = std::move(shard_stores[0]);
    for (std::size_t shard = 1; shard < shards; ++shard) {
      const CellStore& local = shard_stores[shard];
      // Merge counters and build the local-id -> global-id remap in local
      // id order, then rewrite the shard's row slots in place.
      std::vector<std::uint32_t> remap(local.size());
      for (std::uint32_t lid = 0; lid < local.size(); ++lid) {
        remap[lid] = table.clusters.bump(local.key(lid), local.cell(lid));
      }
      if (rows != nullptr) {
        const std::size_t begin = bounds[shard] * masks.size();
        const std::size_t end = bounds[shard + 1] * masks.size();
        for (std::size_t slot = begin; slot < end; ++slot) {
          rows[slot] = remap[rows[slot]];
        }
      }
    }
  }
  expand_metrics().reserve_fill_pct.set(static_cast<std::int64_t>(
      100 * table.clusters.size() / reserved));
}

/// Marker for "this mask folds straight from the leaf arrays" (either the
/// full mask itself or a mask whose cheapest source is the leaves).
constexpr std::uint32_t kLeafSource = 0xFFFFFFFFu;

/// One mask's aggregation output: distinct projected keys (ascending),
/// folded stats, and — when the LeafCellIndex is being built — the rank map
/// from the source's cell index to this mask's local rank.  `source` is the
/// index (into `masks`) of the already-aggregated parent this mask folded
/// from, or kLeafSource.
struct MaskCells {
  std::vector<std::uint64_t> keys;
  std::vector<ClusterStats> stats;
  std::vector<std::uint32_t> src_map;
  std::uint32_t source = kLeafSource;
};

/// True when projecting `source_mask`-sorted keys by `mask` yields a
/// non-decreasing sequence: every dim the source keeps beyond `mask` sits
/// strictly below mask's lowest dim, so dropping those fields (which occupy
/// the least-significant attribute bits) preserves the sort order and equal
/// projections form contiguous runs.  `mask` is never 0 (lattice_masks).
[[nodiscard]] bool prefix_aligned(std::uint8_t mask,
                                  std::uint8_t source_mask) noexcept {
  const unsigned extra = source_mask & ~static_cast<unsigned>(mask);
  return (extra >> std::countr_zero(static_cast<unsigned>(mask))) == 0;
}

/// Deterministic cost estimate for folding `mask` from a source of
/// `source_cells` cells: one scan when prefix-aligned, scan + radix passes
/// otherwise.  Pure function of cell counts, so the source choice — and
/// with it expand.radix_bytes — is shard- and kernel-invariant.
[[nodiscard]] std::uint64_t fold_cost(std::uint8_t mask,
                                      std::uint8_t source_mask,
                                      std::size_t source_cells) noexcept {
  const std::uint64_t passes =
      prefix_aligned(mask, source_mask)
          ? 0
          : static_cast<std::uint64_t>(radix_plan(mask).passes);
  return static_cast<std::uint64_t>(source_cells) * (1 + passes);
}

/// Mask-major engine unit of work: folds one mask's cells from its chosen
/// source (smallest already-aggregated strict superset, or the leaves).
/// Prefix-aligned sources fold in one linear run scan; otherwise the
/// (projected key, source row) pairs are radix-sorted first.  Because
/// ClusterStats addition is associative and commutative, folding source
/// cells gives bit-identical sums to folding the underlying leaves.
/// Returns the radix scatter traffic in bytes.
std::uint64_t expand_mask(std::size_t j,
                          const std::vector<std::uint8_t>& masks,
                          std::span<const std::uint64_t> leaf_keys,
                          std::span<const ClusterStats> leaf_stats,
                          BatchKernel kernel, bool want_map,
                          std::vector<MaskCells>& cells,
                          ExpandScratch& scratch) {
  const std::uint8_t mask = masks[j];
  MaskCells& out = cells[j];
  if (mask == kFullMask) {
    // Identity: the full-mask cells are the leaves themselves, already in
    // canonical ascending order; leaf i's local rank is i (no map needed).
    out.keys.assign(leaf_keys.begin(), leaf_keys.end());
    out.stats.assign(leaf_stats.begin(), leaf_stats.end());
    return 0;
  }
  const bool leaf_src = out.source == kLeafSource;
  const std::uint64_t* src_keys =
      leaf_src ? leaf_keys.data() : cells[out.source].keys.data();
  const ClusterStats* src_stats =
      leaf_src ? leaf_stats.data() : cells[out.source].stats.data();
  const std::size_t sn =
      leaf_src ? leaf_keys.size() : cells[out.source].keys.size();
  const std::uint8_t src_mask = leaf_src ? kFullMask : masks[out.source];

  {
    VQ_SPAN("expand.project");
    scratch.proj.resize(sn);
    project_keys(src_keys, sn, mask, scratch.proj.data(), kernel);
  }
  std::uint64_t radix_bytes = 0;
  const std::uint32_t* order = nullptr;  // identity permutation
  if (!prefix_aligned(mask, src_mask)) {
    VQ_SPAN("expand.sort");
    scratch.rows.resize(sn);
    for (std::size_t i = 0; i < sn; ++i) {
      scratch.rows[i] = static_cast<std::uint32_t>(i);
    }
    if (sn < kRadixMinKeys) {
      // Below the radix break-even the per-pass fixed costs (histogram
      // clears + 256-bucket prefix sums) dominate; an introsort on
      // (projected key, source row) produces the same stable order — row
      // ties broken ascending — at O(n log n) on a tiny n.  The threshold
      // depends only on the source's cell count, so the engine's
      // expand.radix_bytes stays shard- and kernel-invariant.
      std::sort(scratch.rows.begin(), scratch.rows.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  return scratch.proj[a] != scratch.proj[b]
                             ? scratch.proj[a] < scratch.proj[b]
                             : a < b;
                });
      scratch.key_scratch.resize(sn);
      for (std::size_t i = 0; i < sn; ++i) {
        scratch.key_scratch[i] = scratch.proj[scratch.rows[i]];
      }
      scratch.proj.swap(scratch.key_scratch);
    } else {
      radix_bytes =
          radix_sort_pairs(scratch.proj, scratch.rows, radix_plan(mask),
                           scratch.key_scratch, scratch.row_scratch);
    }
    order = scratch.rows.data();
  }

  VQ_SPAN("expand.accumulate");
  out.keys.reserve(sn);
  out.stats.reserve(sn);
  if (want_map) out.src_map.resize(sn);
  // Run-local accumulator: stats fold in registers and flush once per run,
  // instead of a read-modify-write into the stats vector per source cell.
  std::uint64_t prev = ~std::uint64_t{0};  // bit 63 of a packed key is 0
  ClusterStats run;
  for (std::size_t i = 0; i < sn; ++i) {
    const std::uint64_t v = scratch.proj[i];
    const std::uint32_t si =
        order == nullptr ? static_cast<std::uint32_t>(i) : order[i];
    if (v != prev) {
      if (prev != ~std::uint64_t{0}) {
        out.keys.push_back(prev);
        out.stats.push_back(run);
      }
      prev = v;
      run = src_stats[si];
    } else {
      run += src_stats[si];
    }
    if (want_map) {
      // The open run's rank is the number of already-flushed runs.
      out.src_map[si] = static_cast<std::uint32_t>(out.keys.size());
    }
  }
  if (prev != ~std::uint64_t{0}) {
    out.keys.push_back(prev);
    out.stats.push_back(run);
  }
  return radix_bytes;
}

/// Concatenates the per-mask cell arrays into the canonical sorted-mode
/// CellStore (mask-major, key-ascending) and returns each mask's dense-id
/// base for the LeafCellIndex rank-composition pass.
std::vector<std::uint32_t> assemble_mask_major(
    const std::vector<std::uint8_t>& masks, std::vector<MaskCells>& cells,
    EpochClusterTable& table) {
  VQ_SPAN("expand.merge");
  const std::size_t nm = masks.size();
  std::size_t total = 0;
  for (const MaskCells& c : cells) total += c.keys.size();
  assert(total < CellStore::kNoCell);

  std::vector<std::uint64_t> keys;
  std::vector<ClusterStats> stats;
  keys.reserve(total);
  stats.reserve(total);
  std::array<std::uint32_t, kFullMask + 2> offsets{};
  std::vector<std::uint32_t> base(nm, 0);
  std::size_t j = 0;
  std::uint32_t running = 0;
  for (unsigned mask = 0; mask <= kFullMask; ++mask) {
    offsets[mask] = running;
    if (j < nm && masks[j] == mask) {
      base[j] = running;
      keys.insert(keys.end(), cells[j].keys.begin(), cells[j].keys.end());
      stats.insert(stats.end(), cells[j].stats.begin(), cells[j].stats.end());
      running += static_cast<std::uint32_t>(cells[j].keys.size());
      ++j;
    }
  }
  offsets[kFullMask + 1] = running;
  table.clusters =
      CellStore::from_mask_major(std::move(keys), std::move(stats), offsets);
  return base;
}

/// The mask-major hash-free engine (ExpandStrategy::kMaskMajor), organised
/// as a smallest-parent aggregation DAG: masks are processed tier by tier in
/// decreasing arity, and each mask folds from the cheapest already-computed
/// strict superset (one extra dim) instead of rescanning all leaves — the
/// data-cube trick.  Top-tier masks (and masks whose supersets are all
/// larger than the leaf array) fold straight from the leaves.  Sharding is
/// within a tier: every mask is folded whole by exactly one shard, so there
/// is no cross-shard merge or id remap and the output is independent of the
/// deterministic greedy LPT assignment.  LeafCellIndex rows come out of a
/// final rank-composition sweep: leaf -> full-mask rank is the leaf's own
/// index, and each mask's rank is a single src_map gather from its source's
/// rank, walked in topological (decreasing-arity) order per leaf.
void expand_fold_mask_major(std::span<const std::uint64_t> leaf_keys,
                            std::span<const ClusterStats> leaf_stats,
                            const std::vector<std::uint8_t>& masks,
                            BatchKernel kernel, EpochClusterTable& table,
                            std::uint32_t* rows, ThreadPool* pool,
                            std::size_t shards) {
  const std::size_t num_leaves = leaf_keys.size();
  const std::size_t nm = masks.size();
  const bool want_map = rows != nullptr;

  std::array<std::uint32_t, kFullMask + 1> index_of{};
  index_of.fill(kLeafSource);
  int max_arity = 0;
  for (std::uint32_t j = 0; j < nm; ++j) {
    index_of[masks[j]] = j;
    max_arity = std::max(max_arity, std::popcount(unsigned{masks[j]}));
  }

  std::vector<MaskCells> cells(nm);
  std::vector<std::uint64_t> cost(nm, 0);
  std::vector<std::uint32_t> topo;  // decreasing arity, ascending mask
  topo.reserve(nm);
  std::uint64_t radix_bytes = 0;
  const bool serial = pool == nullptr || shards <= 1 ||
                      num_leaves < 2 * kMinLeavesPerShard;
  ExpandScratch serial_scratch;

  for (int arity = max_arity; arity >= 1; --arity) {
    std::vector<std::uint32_t> tier;
    for (std::uint32_t j = 0; j < nm; ++j) {
      if (std::popcount(unsigned{masks[j]}) == arity) tier.push_back(j);
    }
    topo.insert(topo.end(), tier.begin(), tier.end());

    // Source selection: cheapest of the leaves and every one-dim-larger
    // superset aggregated in the previous tier.  Cell counts are data, not
    // schedule, so the choice is deterministic at any shard/kernel count.
    for (const std::uint32_t j : tier) {
      const std::uint8_t mask = masks[j];
      if (mask == kFullMask) continue;
      cells[j].source = kLeafSource;
      cost[j] = fold_cost(mask, kFullMask, num_leaves);
      for (int d = 0; d < kNumDims; ++d) {
        if ((mask >> d) & 1) continue;
        const std::uint32_t js =
            index_of[mask | static_cast<std::uint8_t>(1u << d)];
        if (js == kLeafSource) continue;
        const std::uint64_t c =
            fold_cost(mask, masks[js], cells[js].keys.size());
        if (c < cost[j]) {
          cost[j] = c;
          cells[j].source = js;
        }
      }
    }

    if (serial || tier.size() <= 1) {
      for (const std::uint32_t j : tier) {
        radix_bytes += expand_mask(j, masks, leaf_keys, leaf_stats, kernel,
                                   want_map, cells, serial_scratch);
      }
      continue;
    }
    // Greedy LPT over the fold-cost estimates (sort descending cost,
    // ascending index; assign to the least-loaded shard).
    const std::size_t num_shards = std::min(shards, tier.size());
    std::vector<std::uint32_t> order = tier;
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return cost[a] != cost[b] ? cost[a] > cost[b] : a < b;
              });
    std::vector<std::vector<std::uint32_t>> bucket(num_shards);
    std::vector<std::uint64_t> load(num_shards, 0);
    for (const std::uint32_t j : order) {
      std::size_t best = 0;
      for (std::size_t s = 1; s < num_shards; ++s) {
        if (load[s] < load[best]) best = s;
      }
      bucket[best].push_back(j);
      load[best] += cost[j];
    }
    // Tier masks only read cells[] written by earlier tiers and write
    // disjoint cells[j] slots, so the parallel_for join is the only
    // synchronisation needed.
    std::vector<std::uint64_t> shard_bytes(num_shards, 0);
    pool->parallel_for(0, num_shards, [&](std::size_t shard) {
      ExpandScratch scratch;
      for (const std::uint32_t j : bucket[shard]) {
        shard_bytes[shard] += expand_mask(j, masks, leaf_keys, leaf_stats,
                                          kernel, want_map, cells, scratch);
      }
    });
    for (const std::uint64_t b : shard_bytes) radix_bytes += b;
  }

  const std::vector<std::uint32_t> base =
      assemble_mask_major(masks, cells, table);

  if (rows != nullptr) {
    // Rank composition: one pass over the leaves, each mask's id gathered
    // from its source's local rank through src_map, then the whole segment
    // shifted to global dense ids.  The topo walk is split into three
    // branch-free lists (full-mask / leaf-sourced / cell-sourced); list
    // order preserves the topo guarantee that a source's slot is written
    // before any mask that folds from it, because the full mask and every
    // leaf-sourced mask depend only on `i`, and `children` keeps topo
    // (decreasing-arity) order.
    VQ_SPAN("expand.merge");
    std::uint32_t full_j = kLeafSource;
    std::vector<std::pair<std::uint32_t, const std::uint32_t*>> leaf_fed;
    std::vector<std::tuple<std::uint32_t, std::uint32_t, const std::uint32_t*>>
        children;
    for (const std::uint32_t jj : topo) {
      const MaskCells& c = cells[jj];
      if (masks[jj] == kFullMask) {
        full_j = jj;
      } else if (c.source == kLeafSource) {
        leaf_fed.emplace_back(jj, c.src_map.data());
      } else {
        children.emplace_back(jj, c.source, c.src_map.data());
      }
    }
    const auto fill = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        std::uint32_t* seg = rows + i * nm;
        if (full_j != kLeafSource) {
          seg[full_j] = static_cast<std::uint32_t>(i);
        }
        for (const auto& [jj, map] : leaf_fed) seg[jj] = map[i];
        for (const auto& [jj, src, map] : children) seg[jj] = map[seg[src]];
        for (std::size_t t = 0; t < nm; ++t) seg[t] += base[t];
      }
    };
    if (serial) {
      fill(0, num_leaves);
    } else {
      pool->parallel_for(0, shards, [&](std::size_t shard) {
        fill(num_leaves * shard / shards,
             num_leaves * (shard + 1) / shards);
      });
    }
  }
  expand_metrics().radix_bytes.add(radix_bytes);
}

}  // namespace

EpochClusterTable expand_fold(const LeafFold& fold,
                              const ClusterEngineConfig& config,
                              ThreadPool* pool, std::size_t shards) {
  const std::vector<std::uint8_t> masks = lattice_masks(config.max_arity);

  EpochClusterTable table;
  table.epoch = fold.epoch;
  table.root = fold.root;

  // Canonical leaf order: ascending raw key.  This fixes the dense-id
  // assignment and the iteration order of every downstream per-leaf sweep,
  // independent of hash-table layout and shard count.
  std::vector<std::pair<std::uint64_t, const ClusterStats*>> sorted_leaves;
  sorted_leaves.reserve(fold.leaves.size());
  fold.leaves.for_each([&](std::uint64_t raw, const ClusterStats& s) {
    sorted_leaves.emplace_back(raw, &s);
  });
  std::sort(sorted_leaves.begin(), sorted_leaves.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // SoA copies: both engines consume contiguous key/stat arrays (the
  // mask-major kernels batch over the keys), and with index_cells they are
  // stored on the table as the LeafCellIndex anyway.
  std::vector<std::uint64_t> local_keys;
  std::vector<ClusterStats> local_stats;
  std::vector<std::uint64_t>& leaf_keys =
      config.index_cells ? table.leaf_index.leaf_keys : local_keys;
  std::vector<ClusterStats>& leaf_stats =
      config.index_cells ? table.leaf_index.leaf_stats : local_stats;
  leaf_keys.reserve(sorted_leaves.size());
  leaf_stats.reserve(sorted_leaves.size());
  for (const auto& [raw, stats] : sorted_leaves) {
    leaf_keys.push_back(raw);
    leaf_stats.push_back(*stats);
  }

  std::uint32_t* rows = nullptr;
  if (config.index_cells) {
    table.leaf_index.masks = masks;
    table.leaf_index.cell_rows.resize(leaf_keys.size() * masks.size());
    rows = table.leaf_index.cell_rows.data();
  }

  if (config.expand == ExpandStrategy::kHashed) {
    expand_fold_hashed(leaf_keys, leaf_stats, masks, table, rows, pool,
                       shards);
  } else {
    expand_fold_mask_major(leaf_keys, leaf_stats, masks, config.expand_kernel,
                           table, rows, pool, shards);
  }

  ExpandMetrics& metrics = expand_metrics();
  metrics.leaves.add(static_cast<std::uint64_t>(leaf_keys.size()));
  metrics.cells.add(static_cast<std::uint64_t>(table.clusters.size()));
  return table;
}

EpochClusterTable aggregate_epoch_unfolded(std::span<const Session> sessions,
                                           const ProblemThresholds& thresholds,
                                           const ClusterEngineConfig& config,
                                           std::uint32_t epoch) {
  const std::vector<std::uint8_t> masks = lattice_masks(config.max_arity);

  EpochClusterTable table;
  table.epoch = epoch;
  // Rough sizing: small epochs have ~|masks| distinct cells per session with
  // heavy sharing; reserving 4x sessions avoids most rehashes in practice.
  table.clusters.reserve(sessions.size() * 4 + 64);

  for (const Session& s : sessions) {
    if (s.epoch != epoch) {
      throw std::invalid_argument{
          "aggregate_epoch: session epoch mismatch"};
    }
    const std::uint8_t bits = thresholds.problem_bits(s.quality);

    table.root.sessions += 1;
    for (int m = 0; m < kNumMetrics; ++m) {
      table.root.problems[m] += (bits >> m) & 1u;
    }

    // Pack the full leaf once; every lattice cell is a projection of it.
    const ClusterKey leaf = ClusterKey::pack(kFullMask, s.attrs);
    for (const std::uint8_t mask : masks) {
      ClusterStats& stats = table.clusters[leaf.project(mask).raw()];
      stats.sessions += 1;
      for (int m = 0; m < kNumMetrics; ++m) {
        stats.problems[m] += (bits >> m) & 1u;
      }
    }
  }
  return table;
}

EpochClusterTable aggregate_epoch(std::span<const Session> sessions,
                                  const ProblemThresholds& thresholds,
                                  const ClusterEngineConfig& config,
                                  std::uint32_t epoch) {
  if (!config.fold_leaves) {
    return aggregate_epoch_unfolded(sessions, thresholds, config, epoch);
  }
  // Validate the arity cap before folding so both strategies reject bad
  // configs at the same point.
  (void)lattice_masks(config.max_arity);
  return expand_fold(fold_sessions(sessions, thresholds, epoch), config);
}

}  // namespace vq
