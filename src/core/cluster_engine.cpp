#include "src/core/cluster_engine.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace vq {

ClusterStats ClusterStats::minus(const ClusterStats& o) const noexcept {
  ClusterStats out;
  out.sessions = sessions >= o.sessions ? sessions - o.sessions : 0;
  for (int m = 0; m < kNumMetrics; ++m) {
    out.problems[m] =
        problems[m] >= o.problems[m] ? problems[m] - o.problems[m] : 0;
  }
  return out;
}

ClusterStats EpochClusterTable::stats(const ClusterKey& key) const noexcept {
  if (key.mask() == 0) return root;
  if (const ClusterStats* found = clusters.find(key.raw())) return *found;
  return ClusterStats{};
}

std::vector<std::uint8_t> lattice_masks(int max_arity) {
  if (max_arity < 1 || max_arity > kNumDims) {
    throw std::invalid_argument{"lattice_masks: max_arity out of range"};
  }
  std::vector<std::uint8_t> masks;
  for (unsigned mask = 1; mask <= kFullMask; ++mask) {
    if (std::popcount(mask) <= max_arity) {
      masks.push_back(static_cast<std::uint8_t>(mask));
    }
  }
  return masks;
}

LeafFold fold_sessions(std::span<const Session> sessions,
                       const ProblemThresholds& thresholds,
                       std::uint32_t epoch) {
  LeafFold fold;
  fold.epoch = epoch;
  fold.leaves.reserve(sessions.size() / 4 + 16);
  for (const Session& s : sessions) {
    if (s.epoch != epoch) {
      throw std::invalid_argument{
          "aggregate_epoch: session epoch mismatch"};
    }
    const std::uint8_t bits = thresholds.problem_bits(s.quality);
    ClusterStats& leaf =
        fold.leaves[ClusterKey::pack(kFullMask, s.attrs).raw()];
    fold.root.sessions += 1;
    leaf.sessions += 1;
    for (int m = 0; m < kNumMetrics; ++m) {
      const std::uint32_t bit = (bits >> m) & 1u;
      fold.root.problems[m] += bit;
      leaf.problems[m] += bit;
    }
  }
  return fold;
}

namespace {

/// Expands leaves [lo, hi) across `masks` into `out`.  When `rows` is
/// non-null it receives the dense cell ids of every projection, row-major
/// starting at leaf `lo` — the LeafCellIndex falls out of the same
/// id_or_insert that bumps the counters, so indexing costs no extra hashing.
void expand_leaf_range(
    const std::vector<std::pair<std::uint64_t, const ClusterStats*>>& leaves,
    std::size_t lo, std::size_t hi, const std::vector<std::uint8_t>& masks,
    CellStore& out, std::uint32_t* rows) {
  // Distinct cells are bounded by |leaves| x |masks| but heavily shared in
  // practice; 8x leaves avoids most rehashes without overcommitting.
  out.reserve((hi - lo) * 8 + 64);
  for (std::size_t i = lo; i < hi; ++i) {
    const auto& [raw, stats] = leaves[i];
    const ClusterKey leaf = ClusterKey::from_raw(raw);
    for (std::size_t j = 0; j < masks.size(); ++j) {
      const std::uint32_t id = out.bump(leaf.project(masks[j]).raw(), *stats);
      if (rows != nullptr) rows[(i - lo) * masks.size() + j] = id;
    }
  }
}

}  // namespace

EpochClusterTable expand_fold(const LeafFold& fold,
                              const ClusterEngineConfig& config,
                              ThreadPool* pool, std::size_t shards) {
  const std::vector<std::uint8_t> masks = lattice_masks(config.max_arity);

  EpochClusterTable table;
  table.epoch = fold.epoch;
  table.root = fold.root;

  // Canonical leaf order: ascending raw key.  This fixes the dense-id
  // assignment and the iteration order of every downstream per-leaf sweep,
  // independent of hash-table layout and shard count.
  std::vector<std::pair<std::uint64_t, const ClusterStats*>> sorted_leaves;
  sorted_leaves.reserve(fold.leaves.size());
  fold.leaves.for_each([&](std::uint64_t raw, const ClusterStats& s) {
    sorted_leaves.emplace_back(raw, &s);
  });
  std::sort(sorted_leaves.begin(), sorted_leaves.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::uint32_t* rows = nullptr;
  if (config.index_cells) {
    LeafCellIndex& index = table.leaf_index;
    index.masks = masks;
    index.leaf_keys.reserve(sorted_leaves.size());
    index.leaf_stats.reserve(sorted_leaves.size());
    for (const auto& [raw, stats] : sorted_leaves) {
      index.leaf_keys.push_back(raw);
      index.leaf_stats.push_back(*stats);
    }
    index.cell_rows.resize(sorted_leaves.size() * masks.size());
    rows = index.cell_rows.data();
  }

  // Sharding only pays off when each shard gets a meaningful slice.
  constexpr std::size_t kMinLeavesPerShard = 256;
  if (pool == nullptr || shards <= 1 ||
      sorted_leaves.size() < 2 * kMinLeavesPerShard) {
    expand_leaf_range(sorted_leaves, 0, sorted_leaves.size(), masks,
                      table.clusters, rows);
    return table;
  }

  shards = std::min(shards, sorted_leaves.size() / kMinLeavesPerShard);
  // Cut the sorted leaf array into contiguous ranges: every leaf lands in
  // exactly one shard, so the shard stores are disjoint sums whose merge
  // (uint32 addition, commutative + associative) matches the serial
  // expansion bit for bit.  Because the merge walks shards in range order
  // and each shard discovers cells in its range's first-touch order, the
  // remapped dense ids come out identical to the serial assignment too.
  std::vector<CellStore> shard_stores(shards);
  std::vector<std::size_t> bounds(shards + 1);
  for (std::size_t s = 0; s <= shards; ++s) {
    bounds[s] = sorted_leaves.size() * s / shards;
  }
  pool->parallel_for(0, shards, [&](std::size_t shard) {
    std::uint32_t* shard_rows =
        rows == nullptr ? nullptr : rows + bounds[shard] * masks.size();
    expand_leaf_range(sorted_leaves, bounds[shard], bounds[shard + 1], masks,
                      shard_stores[shard], shard_rows);
  });

  table.clusters = std::move(shard_stores[0]);
  for (std::size_t shard = 1; shard < shards; ++shard) {
    const CellStore& local = shard_stores[shard];
    // Merge counters and build the local-id -> global-id remap in local id
    // order, then rewrite the shard's row slots in place.
    std::vector<std::uint32_t> remap(local.size());
    for (std::uint32_t lid = 0; lid < local.size(); ++lid) {
      remap[lid] = table.clusters.bump(local.key(lid), local.cell(lid));
    }
    if (rows != nullptr) {
      const std::size_t begin = bounds[shard] * masks.size();
      const std::size_t end = bounds[shard + 1] * masks.size();
      for (std::size_t slot = begin; slot < end; ++slot) {
        rows[slot] = remap[rows[slot]];
      }
    }
  }
  return table;
}

EpochClusterTable aggregate_epoch_unfolded(std::span<const Session> sessions,
                                           const ProblemThresholds& thresholds,
                                           const ClusterEngineConfig& config,
                                           std::uint32_t epoch) {
  const std::vector<std::uint8_t> masks = lattice_masks(config.max_arity);

  EpochClusterTable table;
  table.epoch = epoch;
  // Rough sizing: small epochs have ~|masks| distinct cells per session with
  // heavy sharing; reserving 4x sessions avoids most rehashes in practice.
  table.clusters.reserve(sessions.size() * 4 + 64);

  for (const Session& s : sessions) {
    if (s.epoch != epoch) {
      throw std::invalid_argument{
          "aggregate_epoch: session epoch mismatch"};
    }
    const std::uint8_t bits = thresholds.problem_bits(s.quality);

    table.root.sessions += 1;
    for (int m = 0; m < kNumMetrics; ++m) {
      table.root.problems[m] += (bits >> m) & 1u;
    }

    // Pack the full leaf once; every lattice cell is a projection of it.
    const ClusterKey leaf = ClusterKey::pack(kFullMask, s.attrs);
    for (const std::uint8_t mask : masks) {
      ClusterStats& stats = table.clusters[leaf.project(mask).raw()];
      stats.sessions += 1;
      for (int m = 0; m < kNumMetrics; ++m) {
        stats.problems[m] += (bits >> m) & 1u;
      }
    }
  }
  return table;
}

EpochClusterTable aggregate_epoch(std::span<const Session> sessions,
                                  const ProblemThresholds& thresholds,
                                  const ClusterEngineConfig& config,
                                  std::uint32_t epoch) {
  if (!config.fold_leaves) {
    return aggregate_epoch_unfolded(sessions, thresholds, config, epoch);
  }
  // Validate the arity cap before folding so both strategies reject bad
  // configs at the same point.
  (void)lattice_masks(config.max_arity);
  return expand_fold(fold_sessions(sessions, thresholds, epoch), config);
}

}  // namespace vq
