#include "src/core/cluster_engine.h"

#include <bit>
#include <stdexcept>

namespace vq {

ClusterStats ClusterStats::minus(const ClusterStats& o) const noexcept {
  ClusterStats out;
  out.sessions = sessions >= o.sessions ? sessions - o.sessions : 0;
  for (int m = 0; m < kNumMetrics; ++m) {
    out.problems[m] =
        problems[m] >= o.problems[m] ? problems[m] - o.problems[m] : 0;
  }
  return out;
}

ClusterStats EpochClusterTable::stats(const ClusterKey& key) const noexcept {
  if (key.mask() == 0) return root;
  if (const ClusterStats* found = clusters.find(key.raw())) return *found;
  return ClusterStats{};
}

std::vector<std::uint8_t> lattice_masks(int max_arity) {
  if (max_arity < 1 || max_arity > kNumDims) {
    throw std::invalid_argument{"lattice_masks: max_arity out of range"};
  }
  std::vector<std::uint8_t> masks;
  for (unsigned mask = 1; mask <= kFullMask; ++mask) {
    if (std::popcount(mask) <= max_arity) {
      masks.push_back(static_cast<std::uint8_t>(mask));
    }
  }
  return masks;
}

EpochClusterTable aggregate_epoch(std::span<const Session> sessions,
                                  const ProblemThresholds& thresholds,
                                  const ClusterEngineConfig& config,
                                  std::uint32_t epoch) {
  const std::vector<std::uint8_t> masks = lattice_masks(config.max_arity);

  EpochClusterTable table;
  table.epoch = epoch;
  // Rough sizing: small epochs have ~|masks| distinct cells per session with
  // heavy sharing; reserving 4x sessions avoids most rehashes in practice.
  table.clusters.reserve(sessions.size() * 4 + 64);

  for (const Session& s : sessions) {
    if (s.epoch != epoch) {
      throw std::invalid_argument{
          "aggregate_epoch: session epoch mismatch"};
    }
    const std::uint8_t bits = thresholds.problem_bits(s.quality);

    table.root.sessions += 1;
    for (int m = 0; m < kNumMetrics; ++m) {
      table.root.problems[m] += (bits >> m) & 1u;
    }

    // Pack the full leaf once; every lattice cell is a projection of it.
    const ClusterKey leaf = ClusterKey::pack(kFullMask, s.attrs);
    for (const std::uint8_t mask : masks) {
      ClusterStats& stats = table.clusters[leaf.project(mask).raw()];
      stats.sessions += 1;
      for (int m = 0; m < kNumMetrics; ++m) {
        stats.problems[m] += (bits >> m) & 1u;
      }
    }
  }
  return table;
}

}  // namespace vq
