#include "src/core/cluster_engine.h"

#include <bit>
#include <stdexcept>

#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace vq {

ClusterStats ClusterStats::minus(const ClusterStats& o) const noexcept {
  ClusterStats out;
  out.sessions = sessions >= o.sessions ? sessions - o.sessions : 0;
  for (int m = 0; m < kNumMetrics; ++m) {
    out.problems[m] =
        problems[m] >= o.problems[m] ? problems[m] - o.problems[m] : 0;
  }
  return out;
}

ClusterStats EpochClusterTable::stats(const ClusterKey& key) const noexcept {
  if (key.mask() == 0) return root;
  if (const ClusterStats* found = clusters.find(key.raw())) return *found;
  return ClusterStats{};
}

std::vector<std::uint8_t> lattice_masks(int max_arity) {
  if (max_arity < 1 || max_arity > kNumDims) {
    throw std::invalid_argument{"lattice_masks: max_arity out of range"};
  }
  std::vector<std::uint8_t> masks;
  for (unsigned mask = 1; mask <= kFullMask; ++mask) {
    if (std::popcount(mask) <= max_arity) {
      masks.push_back(static_cast<std::uint8_t>(mask));
    }
  }
  return masks;
}

LeafFold fold_sessions(std::span<const Session> sessions,
                       const ProblemThresholds& thresholds,
                       std::uint32_t epoch) {
  LeafFold fold;
  fold.epoch = epoch;
  fold.leaves.reserve(sessions.size() / 4 + 16);
  for (const Session& s : sessions) {
    if (s.epoch != epoch) {
      throw std::invalid_argument{
          "aggregate_epoch: session epoch mismatch"};
    }
    const std::uint8_t bits = thresholds.problem_bits(s.quality);
    ClusterStats& leaf =
        fold.leaves[ClusterKey::pack(kFullMask, s.attrs).raw()];
    fold.root.sessions += 1;
    leaf.sessions += 1;
    for (int m = 0; m < kNumMetrics; ++m) {
      const std::uint32_t bit = (bits >> m) & 1u;
      fold.root.problems[m] += bit;
      leaf.problems[m] += bit;
    }
  }
  return fold;
}

namespace {

/// Expands every (leaf, stats) pair in `leaves` across `masks` into `out`.
void expand_leaves(
    const std::vector<std::pair<std::uint64_t, const ClusterStats*>>& leaves,
    const std::vector<std::uint8_t>& masks, FlatMap64<ClusterStats>& out) {
  // Distinct cells are bounded by |leaves| x |masks| but heavily shared in
  // practice; 8x leaves avoids most rehashes without overcommitting.
  out.reserve(leaves.size() * 8 + 64);
  for (const auto& [raw, stats] : leaves) {
    const ClusterKey leaf = ClusterKey::from_raw(raw);
    for (const std::uint8_t mask : masks) {
      out[leaf.project(mask).raw()] += *stats;
    }
  }
}

}  // namespace

EpochClusterTable expand_fold(const LeafFold& fold,
                              const ClusterEngineConfig& config,
                              ThreadPool* pool, std::size_t shards) {
  const std::vector<std::uint8_t> masks = lattice_masks(config.max_arity);

  EpochClusterTable table;
  table.epoch = fold.epoch;
  table.root = fold.root;

  // Sharding only pays off when each shard gets a meaningful slice.
  constexpr std::size_t kMinLeavesPerShard = 256;
  if (pool == nullptr || shards <= 1 ||
      fold.leaves.size() < 2 * kMinLeavesPerShard) {
    std::vector<std::pair<std::uint64_t, const ClusterStats*>> leaves;
    leaves.reserve(fold.leaves.size());
    fold.leaves.for_each(
        [&](std::uint64_t raw, const ClusterStats& s) {
          leaves.emplace_back(raw, &s);
        });
    expand_leaves(leaves, masks, table.clusters);
    return table;
  }

  shards = std::min(shards, fold.leaves.size() / kMinLeavesPerShard);
  // Partition leaves by key hash: each leaf lands in exactly one shard, so
  // the shard tables are disjoint sums whose merge (uint32 addition,
  // commutative + associative) matches the serial expansion bit for bit.
  std::vector<std::vector<std::pair<std::uint64_t, const ClusterStats*>>>
      shard_leaves(shards);
  for (auto& v : shard_leaves) {
    v.reserve(fold.leaves.size() / shards + 16);
  }
  fold.leaves.for_each([&](std::uint64_t raw, const ClusterStats& s) {
    shard_leaves[splitmix64(raw) % shards].emplace_back(raw, &s);
  });

  std::vector<FlatMap64<ClusterStats>> shard_tables(shards);
  pool->parallel_for(0, shards, [&](std::size_t shard) {
    expand_leaves(shard_leaves[shard], masks, shard_tables[shard]);
  });

  table.clusters = std::move(shard_tables[0]);
  for (std::size_t shard = 1; shard < shards; ++shard) {
    table.clusters.merge_add(shard_tables[shard]);
  }
  return table;
}

EpochClusterTable aggregate_epoch_unfolded(std::span<const Session> sessions,
                                           const ProblemThresholds& thresholds,
                                           const ClusterEngineConfig& config,
                                           std::uint32_t epoch) {
  const std::vector<std::uint8_t> masks = lattice_masks(config.max_arity);

  EpochClusterTable table;
  table.epoch = epoch;
  // Rough sizing: small epochs have ~|masks| distinct cells per session with
  // heavy sharing; reserving 4x sessions avoids most rehashes in practice.
  table.clusters.reserve(sessions.size() * 4 + 64);

  for (const Session& s : sessions) {
    if (s.epoch != epoch) {
      throw std::invalid_argument{
          "aggregate_epoch: session epoch mismatch"};
    }
    const std::uint8_t bits = thresholds.problem_bits(s.quality);

    table.root.sessions += 1;
    for (int m = 0; m < kNumMetrics; ++m) {
      table.root.problems[m] += (bits >> m) & 1u;
    }

    // Pack the full leaf once; every lattice cell is a projection of it.
    const ClusterKey leaf = ClusterKey::pack(kFullMask, s.attrs);
    for (const std::uint8_t mask : masks) {
      ClusterStats& stats = table.clusters[leaf.project(mask).raw()];
      stats.sessions += 1;
      for (int m = 0; m < kNumMetrics; ++m) {
        stats.problems[m] += (bits >> m) & 1u;
      }
    }
  }
  return table;
}

EpochClusterTable aggregate_epoch(std::span<const Session> sessions,
                                  const ProblemThresholds& thresholds,
                                  const ClusterEngineConfig& config,
                                  std::uint32_t epoch) {
  if (!config.fold_leaves) {
    return aggregate_epoch_unfolded(sessions, thresholds, config, epoch);
  }
  // Validate the arity cap before folding so both strategies reject bad
  // configs at the same point.
  (void)lattice_masks(config.max_arity);
  return expand_fold(fold_sessions(sessions, thresholds, epoch), config);
}

}  // namespace vq
