// Global problem-ratio anomaly detection.
//
// Figure 2 of the paper shows per-metric hourly problem ratios that are
// "consistently high" with "a small number of uncorrelated peaks".  This
// module finds those peaks: an exponentially weighted mean/variance tracks
// each metric's hourly ratio, and epochs whose ratio deviates beyond a
// z-score threshold are flagged.  Combined with the per-epoch critical
// clusters, a flagged peak comes with its likely culprits attached.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/pipeline.h"

namespace vq {

struct AnomalyParams {
  double z_threshold = 3.0;        // flag |z| above this
  double ewma_alpha = 0.1;         // weight of the newest sample
  std::uint32_t warmup_epochs = 8;  // no flags until the baseline settles
  double min_sigma = 1e-4;         // variance floor (quiet series)
};

struct SeriesAnomaly {
  std::uint32_t index = 0;   // epoch
  double value = 0.0;        // observed ratio
  double expected = 0.0;     // EWMA baseline at that point
  double zscore = 0.0;
};

/// Flags anomalous points in any series (EWMA mean/variance, causal: each
/// point is judged against the baseline of strictly earlier points).
[[nodiscard]] std::vector<SeriesAnomaly> detect_series_anomalies(
    std::span<const double> series, const AnomalyParams& params);

struct RatioAnomaly {
  Metric metric = Metric::kBufRatio;
  SeriesAnomaly anomaly;
  /// The epoch's top critical clusters (by attributed mass) — the starting
  /// points for diagnosing the peak.
  std::vector<ClusterKey> suspects;
};

/// Runs the detector over each metric's hourly problem-ratio series and
/// attaches up to `max_suspects` critical clusters per flagged epoch.
[[nodiscard]] std::vector<RatioAnomaly> detect_ratio_anomalies(
    const PipelineResult& result, const AnomalyParams& params,
    std::size_t max_suspects = 3);

}  // namespace vq
