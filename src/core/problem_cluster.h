// Problem-cluster identification (paper §3.1).
//
// A cluster is a *problem cluster* for a metric within an epoch when
//   (1) it is statistically significant:   sessions >= min_sessions, and
//   (2) its problem ratio is significantly elevated:
//       problem_ratio >= ratio_multiplier * global problem ratio.
// The paper uses min_sessions = 1000 (at 300M total sessions) and
// ratio_multiplier = 1.5 (~two standard deviations of the per-cluster
// ratio distribution).

#pragma once

#include <cstdint>
#include <vector>

#include "src/core/cluster_engine.h"
#include "src/core/session.h"

namespace vq {

struct ProblemClusterParams {
  double ratio_multiplier = 1.5;
  std::uint32_t min_sessions = 1000;
};

/// Significance test (condition 1) alone.
[[nodiscard]] constexpr bool is_significant(
    const ClusterStats& stats, const ProblemClusterParams& params) noexcept {
  return stats.sessions >= params.min_sessions;
}

/// Full problem-cluster test: significance + elevated ratio.
[[nodiscard]] bool is_problem_cluster(const ClusterStats& stats,
                                      double global_ratio,
                                      const ProblemClusterParams& params,
                                      Metric metric) noexcept;

/// One identified problem cluster within an epoch.
struct ProblemCluster {
  ClusterKey key;
  ClusterStats stats;
};

/// Extracts every problem cluster of one epoch for the given metric
/// (dense-id order).
[[nodiscard]] std::vector<ProblemCluster> find_problem_clusters(
    const EpochClusterTable& table, const ProblemClusterParams& params,
    Metric metric);

/// Per-(epoch, metric) precomputed cell flags: one bit per dense cell id of
/// the table's CellStore.  Evaluating both predicates once per cell here is
/// what lets the indexed critical path (critical_cluster.h) run its inner
/// loop with zero hash lookups and zero repeated threshold evaluations —
/// per leaf it only gathers the bits of its projection ids.
struct CellFlags {
  std::vector<std::uint64_t> flagged;      // is_problem_cluster per cell
  std::vector<std::uint64_t> significant;  // is_significant per cell
  std::uint32_t num_flagged = 0;

  [[nodiscard]] bool test_flagged(std::uint32_t id) const noexcept {
    return (flagged[id >> 6] >> (id & 63)) & 1u;
  }
  [[nodiscard]] bool test_significant(std::uint32_t id) const noexcept {
    return (significant[id >> 6] >> (id & 63)) & 1u;
  }
};

/// One pass over the table's contiguous cell vector evaluating both
/// problem-cluster predicates per cell.
[[nodiscard]] CellFlags compute_cell_flags(const EpochClusterTable& table,
                                           const ProblemClusterParams& params,
                                           Metric metric);

/// Number of this epoch's problem sessions that belong to at least one
/// problem cluster (the "problem cluster coverage" numerator of Table 1).
/// `sessions` must be the same span the table was aggregated from.
[[nodiscard]] std::uint64_t problem_sessions_covered(
    std::span<const Session> sessions, const EpochClusterTable& table,
    const ProblemThresholds& thresholds, const ProblemClusterParams& params,
    Metric metric);

}  // namespace vq
