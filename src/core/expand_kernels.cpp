#include "src/core/expand_kernels.h"

#include <cassert>

#if defined(__AVX2__)
#include <immintrin.h>
#elif defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace vq {

namespace {

/// Per-dimension value-field bit ranges, derived from the same kDimBits
/// layout ClusterKey packs with (fields start right above the 7 mask bits).
/// project_keys is differential-tested against ClusterKey::project, which
/// pins this table to the authoritative layout in attributes.cpp.
constexpr std::array<std::uint64_t, kNumDims> kDimFieldBits = [] {
  std::array<std::uint64_t, kNumDims> out{};
  int offset = kNumDims;
  for (int d = 0; d < kNumDims; ++d) {
    out[static_cast<std::size_t>(d)] =
        ((std::uint64_t{1} << kDimBits[static_cast<std::size_t>(d)]) - 1)
        << offset;
    offset += kDimBits[static_cast<std::size_t>(d)];
  }
  return out;
}();

constexpr std::array<std::uint64_t, kFullMask + 1> kFieldMaskTable = [] {
  std::array<std::uint64_t, kFullMask + 1> out{};
  for (unsigned mask = 0; mask <= kFullMask; ++mask) {
    std::uint64_t bits = 0;
    for (int d = 0; d < kNumDims; ++d) {
      if ((mask >> d) & 1u) bits |= kDimFieldBits[static_cast<std::size_t>(d)];
    }
    out[mask] = bits;
  }
  return out;
}();

// vq:hot
void project_block_scalar(const std::uint64_t* keys, std::size_t n,
                          std::uint64_t field_bits, std::uint64_t mask_bits,
                          std::uint64_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = mask_bits | (keys[i] & field_bits);
  }
}

#if defined(__AVX2__)

// vq:hot
void project_block_simd(const std::uint64_t* keys, std::size_t n,
                        std::uint64_t field_bits, std::uint64_t mask_bits,
                        std::uint64_t* out) {
  const __m256i field = _mm256_set1_epi64x(static_cast<long long>(field_bits));
  const __m256i mask = _mm256_set1_epi64x(static_cast<long long>(mask_bits));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_or_si256(mask, _mm256_and_si256(k, field)));
  }
  project_block_scalar(keys + i, n - i, field_bits, mask_bits, out + i);
}

#elif defined(__SSE2__)

// vq:hot
void project_block_simd(const std::uint64_t* keys, std::size_t n,
                        std::uint64_t field_bits, std::uint64_t mask_bits,
                        std::uint64_t* out) {
  const __m128i field =
      _mm_set1_epi64x(static_cast<long long>(field_bits));
  const __m128i mask = _mm_set1_epi64x(static_cast<long long>(mask_bits));
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i k =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_or_si128(mask, _mm_and_si128(k, field)));
  }
  project_block_scalar(keys + i, n - i, field_bits, mask_bits, out + i);
}

#endif

}  // namespace

std::uint64_t lattice_field_mask(std::uint8_t mask) noexcept {
  return kFieldMaskTable[mask & kFullMask];
}

void project_keys(const std::uint64_t* keys, std::size_t n, std::uint8_t mask,
                  std::uint64_t* out, BatchKernel kernel) {
  const std::uint64_t field_bits = lattice_field_mask(mask);
  const std::uint64_t mask_bits = mask & kFullMask;
#if defined(__AVX2__) || defined(__SSE2__)
  if (kernel == BatchKernel::kAuto) {
    project_block_simd(keys, n, field_bits, mask_bits, out);
    return;
  }
#else
  (void)kernel;
#endif
  project_block_scalar(keys, n, field_bits, mask_bits, out);
}

RadixPlan radix_plan(std::uint8_t head_mask) noexcept {
  // The low 7 mask bits are constant within a head, so only the head's
  // value-field bits can differ between projected keys; every byte-aligned
  // 8-bit window without such a bit is a constant digit and needs no pass.
  const std::uint64_t varying = lattice_field_mask(head_mask);
  RadixPlan plan;
  for (int byte = 0; byte < 8; ++byte) {
    if ((varying >> (8 * byte)) & 0xFFu) {
      plan.shifts[static_cast<std::size_t>(plan.passes++)] =
          static_cast<std::uint8_t>(8 * byte);
    }
  }
  return plan;
}

// vq:hot
std::uint64_t radix_sort_pairs(std::vector<std::uint64_t>& keys,
                               std::vector<std::uint32_t>& rows,
                               const RadixPlan& plan,
                               std::vector<std::uint64_t>& key_scratch,
                               std::vector<std::uint32_t>& row_scratch) {
  const std::size_t n = keys.size();
  assert(rows.size() == n);
  if (n < 2 || plan.passes == 0) return 0;
  // Exact-size scratch: the buffers are swapped into keys/rows below, so
  // their length must equal n even when a previous (larger) head left more
  // capacity behind.
  key_scratch.resize(n);
  row_scratch.resize(n);

  // One read pass gathers every pass's digit histogram.  Only the rows the
  // plan actually uses are zeroed: the 8 KiB full-array clear would be the
  // dominant cost for the engine's many small per-tier sorts.
  std::array<std::array<std::uint32_t, 256>, 8> hist;
  for (int p = 0; p < plan.passes; ++p) {
    hist[static_cast<std::size_t>(p)].fill(0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = keys[i];
    for (int p = 0; p < plan.passes; ++p) {
      ++hist[static_cast<std::size_t>(p)][(k >> plan.shifts[static_cast<std::size_t>(p)]) & 0xFFu];
    }
  }

  std::uint64_t executed = 0;
  for (int p = 0; p < plan.passes; ++p) {
    auto& h = hist[static_cast<std::size_t>(p)];
    const int shift = plan.shifts[static_cast<std::size_t>(p)];
    // The plan marks digits whose *field* can vary; the actual keys often
    // keep a digit constant anyway (small attribute cardinalities).  Such a
    // pass is a stable identity scatter — skip it.  The check reads the
    // histogram already in hand, and whether it fires depends only on the
    // key multiset, so the returned byte count stays shard/kernel-invariant.
    if (h[(keys[0] >> shift) & 0xFFu] == n) continue;
    ++executed;
    std::uint32_t sum = 0;
    for (std::uint32_t& bucket : h) {
      const std::uint32_t count = bucket;
      bucket = sum;
      sum += count;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t k = keys[i];
      const std::uint32_t pos = h[(k >> shift) & 0xFFu]++;
      key_scratch[pos] = k;
      row_scratch[pos] = rows[i];
    }
    keys.swap(key_scratch);
    rows.swap(row_scratch);
  }
  return static_cast<std::uint64_t>(n) * executed *
         (sizeof(std::uint64_t) + sizeof(std::uint32_t));
}

}  // namespace vq
