#include "src/core/overlap.h"

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>

#include "src/stats/jaccard.h"

namespace vq {

std::vector<std::uint64_t> top_critical_keys(const PipelineResult& result,
                                             Metric metric, std::size_t k) {
  std::unordered_map<std::uint64_t, double> mass;
  for (const auto& summary :
       result.per_metric[static_cast<std::uint8_t>(metric)]) {
    for (const auto& c : summary.analysis.criticals) {
      mass[c.key.raw()] += c.attributed;
    }
  }
  std::vector<std::pair<std::uint64_t, double>> ranked(mass.begin(),
                                                       mass.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (ranked.size() > k) ranked.resize(k);
  std::vector<std::uint64_t> keys;
  keys.reserve(ranked.size());
  for (const auto& [key, m] : ranked) keys.push_back(key);
  return keys;
}

std::array<std::array<double, kNumMetrics>, kNumMetrics>
critical_overlap_matrix(const PipelineResult& result, std::size_t k) {
  std::array<std::vector<std::uint64_t>, kNumMetrics> tops;
  for (const Metric m : kAllMetrics) {
    tops[static_cast<std::uint8_t>(m)] = top_critical_keys(result, m, k);
  }
  std::array<std::array<double, kNumMetrics>, kNumMetrics> matrix{};
  for (int a = 0; a < kNumMetrics; ++a) {
    for (int b = 0; b < kNumMetrics; ++b) {
      matrix[a][b] = jaccard_index(tops[a], tops[b]);
    }
  }
  return matrix;
}

TypeBreakdown critical_type_breakdown(const PipelineResult& result,
                                      Metric metric) {
  TypeBreakdown breakdown;
  double total_problem = 0.0;
  double total_in_pc = 0.0;
  double total_attributed = 0.0;
  // Ordered map: iterated below to fill breakdown.by_mask, and key order is
  // what makes that walk (and any future emission from it) deterministic.
  std::map<std::uint8_t, double> by_mask;

  for (const auto& summary :
       result.per_metric[static_cast<std::uint8_t>(metric)]) {
    const CriticalAnalysis& a = summary.analysis;
    total_problem += static_cast<double>(a.problem_sessions);
    total_in_pc += static_cast<double>(a.problem_sessions_in_pc);
    total_attributed += a.attributed_mass;
    for (const auto& c : a.criticals) {
      by_mask[c.key.mask()] += c.attributed;
    }
  }
  if (total_problem <= 0.0) return breakdown;
  for (const auto& [mask, mass] : by_mask) {
    breakdown.by_mask[mask] = mass / total_problem;
  }
  breakdown.not_in_any_cluster =
      (total_problem - total_in_pc) / total_problem;
  breakdown.not_attributed = (total_in_pc - total_attributed) / total_problem;
  return breakdown;
}

std::string mask_label(std::uint8_t mask) {
  std::string out = "[";
  for (int d = 0; d < kNumDims; ++d) {
    if (d > 0) out += ", ";
    if ((mask & (1u << d)) != 0) {
      out += dim_name(static_cast<AttrDim>(d));
    } else {
      out += '*';
    }
  }
  out += ']';
  return out;
}

}  // namespace vq
