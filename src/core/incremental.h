// Incremental epoch-table maintenance (DESIGN.md §4.13).
//
// run_pipeline_streaming and the StreamingDetector re-aggregate every epoch
// from scratch: pass 2 re-expands every distinct leaf across its 127
// projections even when the epoch barely changed.  A monitoring service's
// workload is the opposite shape — most leaves persist epoch over epoch and
// only a small frontier churns — so this engine keeps the lattice alive
// across epochs and makes the per-epoch cost proportional to *change*:
//
//   * Delta application.  The per-epoch leaf fold (pass 1, unavoidable
//     O(sessions)) is diffed against the retained per-leaf stats.  Each
//     added/updated/retired leaf applies one wrapped-difference delta
//     (new - old over uint32, exact under wraparound) to its precomputed
//     projection row — 127 CellStore::add_to calls, no hashing, no
//     re-expansion of unchanged leaves.  A leaf absent from the fold
//     retires with a negative delta; its slot and row are retained and
//     reused if the leaf reappears.  Invalidation is value-based: a cell
//     whose deltas net to zero across the epoch (balanced churn — sessions
//     migrating between sibling leaves sharing the projection) is compared
//     equal to its pre-advance snapshot and treated as untouched, so broad
//     low-arity aggregates do not invalidate the whole lattice whenever a
//     narrow frontier churns underneath them.
//   * Flag maintenance.  The per-cell significant bit depends only on the
//     cell's own sessions, so it is recomputed for touched cells only.  The
//     per-metric flagged bit also depends on the epoch's global ratio:
//     when the global is unchanged the update is touched-cells-only,
//     otherwise one flat pass over the contiguous cell vector (still far
//     cheaper than re-expansion).
//   * Candidate caching.  The critical-cluster candidate masks of a leaf
//     are a pure function of (its row's cell stats, the global ratio, the
//     params).  Each (leaf, metric) caches its last evaluation; because
//     every active problems>0 leaf is swept each advance (and a hit
//     re-stamps), validity is a single-advance question: the cache holds
//     iff the leaf was swept on the previous advance, the global is
//     bit-equal, and no row cell's value changed this advance — probed
//     against a per-epoch changed-cell bitmap, so the hot path never walks
//     a per-cell sequence array.  Attribution shares are still *replayed* for every active
//     leaf in ascending-key order — that replay is what reproduces the
//     from-scratch floating-point accumulation sequence exactly.
//
// Bit-identity contract: advance() returns, for every metric, a
// CriticalAnalysis bit-identical to find_critical_clusters over
// expand_fold(fold) — same problem keys, same criticals, same attribution
// doubles — at every epoch boundary, for any workers x shards setting.
// tests/test_incremental.cpp enforces this differentially.  Why it holds:
//   * Cell content equals the from-scratch table's: deltas are exact over
//     uint32, and a cell decays to zero sessions exactly when no active
//     leaf projects onto it (i.e. when the from-scratch table would not
//     materialise it at all).  Zero-session cells can never be flagged —
//     problem_ratio is 0 and the threshold<=0 arm needs problems > 0 —
//     so retained-but-dead cells are invisible to every output.
//   * Dense ids differ (first-touch vs canonical) but no output depends on
//     them: problem keys are sorted ascending, criticals are finalized with
//     the shared (mass desc, key asc) sort, and the attribution doubles
//     come from the same per-leaf accumulation order.
//
// Not serialized: a resumed detector's first epoch is a full build (every
// leaf is "added"), which lands on the identical state — so checkpoints
// carry no lattice bytes (see monitor.h).

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/cluster_engine.h"
#include "src/core/critical_cluster.h"
#include "src/core/mask_bits.h"
#include "src/core/problem_cluster.h"
#include "src/util/flat_hash_map.h"

namespace vq {

class ThreadPool;

/// Per-advance introspection: what the delta engine actually did.  Stable
/// given the input stream (independent of workers/shards), so tests and the
/// perf bench can assert on churn accounting.
struct IncrementalDeltaStats {
  std::uint32_t epoch = 0;
  std::size_t leaves_added = 0;    // newly active (incl. re-added)
  std::size_t leaves_updated = 0;  // active before and after, stats changed
  std::size_t leaves_retired = 0;  // active before, absent from this fold
  /// Distinct cells whose stats changed this epoch.  Cells whose deltas
  /// net to zero (balanced churn) do not count and do not invalidate.
  std::size_t cells_touched = 0;
  std::size_t active_leaves = 0;   // after this advance
  std::size_t cells = 0;           // retained cells (incl. decayed-to-zero)
  std::uint64_t cache_hits = 0;    // (leaf, metric) candidate-cache hits
  std::uint64_t cache_misses = 0;
  /// Per metric: whether the flagged bitset needed a full O(cells) pass
  /// (global ratio changed) instead of a touched-cells-only update.
  std::array<bool, kNumMetrics> full_flag_pass{};
};

/// The incremental lattice.  Feed it one LeafFold per epoch (in stream
/// order); it returns the epoch's four critical analyses, bit-identical to
/// the from-scratch expand + extract path.
class IncrementalLattice {
 public:
  explicit IncrementalLattice(const ProblemClusterParams& params,
                              int max_arity = kNumDims);

  /// Applies the epoch's fold as a delta against the retained state and
  /// extracts all four per-metric critical analyses.  With `pool` non-null
  /// and `shards > 1` the per-leaf sweep shards exactly like
  /// find_critical_clusters_indexed (contiguous ranges of the ascending
  /// active-leaf array, replayed in shard order) — output is bit-identical
  /// for any shard count.
  std::array<CriticalAnalysis, kNumMetrics> advance(const LeafFold& fold,
                                                    ThreadPool* pool = nullptr,
                                                    std::size_t shards = 1);

  [[nodiscard]] const IncrementalDeltaStats& last_delta() const noexcept {
    return delta_;
  }
  [[nodiscard]] std::uint32_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] const ClusterStats& root() const noexcept { return root_; }
  /// Retained cell store (includes decayed-to-zero cells of retired
  /// leaves; dense ids are first-touch order).  Exposed for differential
  /// tests comparing content against a from-scratch table.
  [[nodiscard]] const CellStore& cells() const noexcept { return cells_; }
  [[nodiscard]] std::size_t num_active_leaves() const noexcept {
    return active_slots_.size();
  }

 private:
  struct SweepScratch;

  void apply_deltas(const LeafFold& fold);
  void apply_leaf_delta(std::uint32_t slot, const ClusterStats& next);
  std::uint32_t slot_for(std::uint64_t leaf_key);
  void update_flags();
  CriticalAnalysis extract(Metric metric, ThreadPool* pool,
                           std::size_t shards);
  /// Evaluates one leaf's candidate masks + problem-cluster membership
  /// against the retained flags (the indexed_leaf_candidates math, applied
  /// to the incremental store).  Returns in_problem_cluster; minimal
  /// candidate masks land in scratch (ascending).
  bool eval_leaf(std::uint32_t slot, Metric metric, double global,
                 SweepScratch& scratch) const;

  [[nodiscard]] std::span<const std::uint32_t> row(
      std::uint32_t slot) const noexcept {
    return std::span{rows_}.subspan(
        static_cast<std::size_t>(slot) * masks_.size(), masks_.size());
  }

  ProblemClusterParams params_;
  std::vector<std::uint8_t> masks_;  // materialised masks, ascending
  std::array<std::uint16_t, kFullMask + 1> mask_col_{};  // mask -> row column

  std::uint64_t seq_ = 0;  // advance sequence number (1 = first epoch)
  std::uint32_t epoch_ = 0;
  bool primed_ = false;  // at least one advance happened
  ClusterStats root_;
  CellStore cells_;

  // Per-cell state, parallel to cells_ dense ids.
  std::vector<std::uint64_t> cell_visit_seq_;  // seq of last delta (dedup)
  std::vector<std::uint64_t> changed_bitmap_;  // value changed this advance
  std::vector<std::uint64_t> significant_;     // 1 bit per cell
  std::array<std::vector<std::uint64_t>, kNumMetrics> flagged_;
  std::array<std::uint32_t, kNumMetrics> num_flagged_{};
  std::array<double, kNumMetrics> prev_global_{};

  // Per-leaf state, parallel to slot ids.  Slots are never reclaimed; a
  // retired leaf keeps its slot (stats zeroed) and reuses it on return.
  FlatMap64<std::uint32_t> leaf_slot_;      // leaf key -> slot + 1
  std::vector<std::uint64_t> leaf_keys_;
  std::vector<ClusterStats> leaf_stats_;
  std::vector<std::uint32_t> rows_;         // slot x masks_.size() cell ids
  std::vector<std::uint64_t> present_seq_;  // seq of last fold appearance
  std::vector<std::uint64_t> row_dirty_seq_;  // memo: dirty probed at seq
  std::vector<std::uint8_t> row_dirty_;       // memoised row-dirty bit

  // Candidate cache, per (metric, slot).
  struct MetricCache {
    std::vector<std::uint64_t> eval_seq;  // 0 = never evaluated
    std::vector<double> eval_global;
    std::vector<detail::MaskBits> candidates;
    std::vector<std::uint8_t> in_pc;
  };
  std::array<MetricCache, kNumMetrics> cache_;

  std::vector<std::uint32_t> active_slots_;  // ascending leaf key

  // Per-advance scratch (retained to avoid reallocation).
  std::vector<std::pair<std::uint64_t, ClusterStats>> changed_;
  std::vector<std::uint32_t> touched_cells_;
  std::vector<ClusterStats> saved_cell_stats_;  // pre-advance, per touched
  std::vector<std::uint32_t> added_active_;
  std::vector<double> attribution_;
  std::vector<std::uint32_t> touched_attr_;

  IncrementalDeltaStats delta_;
};

}  // namespace vq
