#include "src/core/prevalence.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "src/stats/timeseries.h"

namespace vq {

std::vector<double> PrevalenceReport::prevalences() const {
  std::vector<double> out;
  out.reserve(timelines.size());
  for (const auto& t : timelines) out.push_back(t.prevalence);
  return out;
}

std::vector<double> PrevalenceReport::median_persistences() const {
  std::vector<double> out;
  out.reserve(timelines.size());
  for (const auto& t : timelines) {
    out.push_back(static_cast<double>(t.median_persistence));
  }
  return out;
}

std::vector<double> PrevalenceReport::max_persistences() const {
  std::vector<double> out;
  out.reserve(timelines.size());
  for (const auto& t : timelines) {
    out.push_back(static_cast<double>(t.max_persistence));
  }
  return out;
}

PrevalenceReport build_prevalence(
    std::span<const std::vector<std::uint64_t>> keys_by_epoch,
    std::uint32_t num_epochs) {
  // A key list per epoch is the contract; a mismatch would silently skew
  // every prevalence denominator (and out-of-range epochs could inflate
  // ratios past 1), so fail loudly instead.
  if (keys_by_epoch.size() != num_epochs) {
    throw std::invalid_argument{
        "build_prevalence: keys_by_epoch has " +
        std::to_string(keys_by_epoch.size()) + " epochs, expected " +
        std::to_string(num_epochs)};
  }
  PrevalenceReport report;
  report.num_epochs = num_epochs;
  if (num_epochs == 0) return report;

  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_key;
  for (std::uint32_t e = 0; e < keys_by_epoch.size(); ++e) {
    for (const std::uint64_t key : keys_by_epoch[e]) {
      by_key[key].push_back(e);
    }
  }

  report.timelines.reserve(by_key.size());
  for (auto& [raw, epochs] : by_key) {
    std::sort(epochs.begin(), epochs.end());
    epochs.erase(std::unique(epochs.begin(), epochs.end()), epochs.end());
    ClusterTimeline timeline;
    timeline.key = ClusterKey::from_raw(raw);
    timeline.prevalence = static_cast<double>(epochs.size()) /
                          static_cast<double>(num_epochs);
    const auto lengths = streak_lengths_from_epochs(epochs);
    timeline.median_persistence = median_streak(lengths);
    timeline.max_persistence = max_streak(lengths);
    timeline.epochs = std::move(epochs);
    report.timelines.push_back(std::move(timeline));
  }
  // Deterministic order regardless of hash-map iteration.
  std::sort(report.timelines.begin(), report.timelines.end(),
            [](const ClusterTimeline& a, const ClusterTimeline& b) {
              return a.key.raw() < b.key.raw();
            });
  return report;
}

std::vector<std::vector<std::uint64_t>> problem_cluster_keys(
    const PipelineResult& result, Metric metric) {
  std::vector<std::vector<std::uint64_t>> out;
  out.reserve(result.num_epochs);
  for (const auto& summary :
       result.per_metric[static_cast<std::uint8_t>(metric)]) {
    out.push_back(summary.analysis.problem_cluster_keys);
  }
  return out;
}

std::vector<std::vector<std::uint64_t>> critical_cluster_keys(
    const PipelineResult& result, Metric metric) {
  std::vector<std::vector<std::uint64_t>> out;
  out.reserve(result.num_epochs);
  for (const auto& summary :
       result.per_metric[static_cast<std::uint8_t>(metric)]) {
    std::vector<std::uint64_t> keys;
    keys.reserve(summary.analysis.criticals.size());
    for (const auto& c : summary.analysis.criticals) {
      keys.push_back(c.key.raw());
    }
    out.push_back(std::move(keys));
  }
  return out;
}

}  // namespace vq
