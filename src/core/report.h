// Weekly quality report: a single text artifact summarising everything an
// operations review needs — headline ratios, distributions, top recurrent
// critical clusters with optional diagnoses, persistence structure, and
// what-if recommendations.  Used by the CLI's `report` subcommand and the
// remedy A/B example.

#pragma once

#include <functional>
#include <string>

#include "src/core/pipeline.h"
#include "src/core/session.h"

namespace vq {

struct ReportOptions {
  std::size_t top_clusters = 5;        // per metric
  double whatif_top_fraction = 0.05;   // what-if recommendation budget
  /// Optional annotator: given a cluster, return a one-line cause/remedy
  /// hint (e.g. gen/diagnose); empty return -> omitted.
  std::function<std::string(const ClusterKey&)> annotate;
};

/// Renders the full report. `table` must be the trace `result` came from.
[[nodiscard]] std::string render_report(const SessionTable& table,
                                        const PipelineResult& result,
                                        const AttributeSchema& schema,
                                        const ReportOptions& options = {});

}  // namespace vq
