// Cost-benefit remediation planning — the extension the paper's §6 calls
// for: "a natural cost-benefit analysis that considers the complexity of
// upgrading or taking remedial actions for each critical cluster."
//
// A RemediationCostModel prices fixing one critical cluster: a fixed cost
// per attribute dimension involved (renegotiating a CDN contract is not the
// same effort as changing a site's bitrate ladder) plus a variable cost per
// affected session (user disruption / migration traffic).  The planner then
// either (a) greedily packs the best benefit-per-cost clusters into a
// budget, or (b) traces the full cost-vs-alleviation frontier.

#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/core/pipeline.h"

namespace vq {

struct RemediationCostModel {
  /// Fixed engineering/contract cost for touching each attribute dimension
  /// (summed over the dimensions a cluster fixes; abstract units).
  std::array<double, kNumDims> dim_fixed_cost = {
      2.0,   // Site: config/encoding change
      8.0,   // Cdn: contract or capacity work
      6.0,   // Asn: peering/transit engagement
      4.0,   // ConnType: access-technology programme
      1.5,   // Player: client update
      1.5,   // Browser: client workaround
      1.0,   // VodLive: packaging change
  };
  /// Cost per mean affected session per epoch (disruption during rollout).
  double per_session_cost = 0.001;

  /// Cost of remediating one cluster with the given mean epoch traffic.
  [[nodiscard]] double cluster_cost(const ClusterKey& key,
                                    double mean_sessions) const noexcept;
};

struct PlanItem {
  ClusterKey key;
  double alleviated = 0.0;  // problem sessions removed across the trace
  double cost = 0.0;
  double benefit_per_cost = 0.0;
};

struct RemediationPlan {
  std::vector<PlanItem> items;  // in greedy pick order
  double total_alleviated = 0.0;
  double total_cost = 0.0;
  /// Fraction of the metric's problem sessions alleviated.
  double alleviated_fraction = 0.0;
};

class CostBenefitPlanner {
 public:
  explicit CostBenefitPlanner(const PipelineResult& result);

  /// Greedy best-benefit-per-cost plan under a budget.
  [[nodiscard]] RemediationPlan plan(Metric metric,
                                     const RemediationCostModel& costs,
                                     double budget) const;

  /// The (cumulative cost, cumulative alleviated fraction) frontier when
  /// clusters are fixed in benefit-per-cost order.
  struct FrontierPoint {
    double cost = 0.0;
    double alleviated_fraction = 0.0;
  };
  [[nodiscard]] std::vector<FrontierPoint> frontier(
      Metric metric, const RemediationCostModel& costs) const;

 private:
  struct KeyAggregate {
    double alleviated = 0.0;
    double mean_sessions = 0.0;  // mean cluster size over active epochs
  };

  [[nodiscard]] std::vector<PlanItem> ranked_items(
      Metric metric, const RemediationCostModel& costs) const;

  std::array<std::unordered_map<std::uint64_t, KeyAggregate>, kNumMetrics>
      aggregates_;
  std::array<double, kNumMetrics> total_problem_sessions_{};
};

}  // namespace vq
