// What-if improvement analysis (paper §5).
//
// "Fixing" a critical cluster in an epoch means reducing the problem ratio
// of the sessions attributed to it down to that epoch's global average (the
// unavoidable background level).  With attributed mass a, cluster problem
// ratio r, and global ratio g, the alleviated problem-session mass is
// a * max(0, 1 - g/r): the attributed problem mass shrinks proportionally
// as the cluster's ratio drops from r to g.  Because attribution splits each
// problem session's unit mass disjointly across critical clusters, summing
// alleviated masses over any key selection never double-counts.
//
// Three strategies are modelled:
//   - oracle top-k  (Fig. 11/12): pick the top fraction of distinct critical
//     clusters over the whole trace, ranked by coverage, prevalence, or
//     persistence, optionally restricted to attribute types;
//   - proactive     (Table 4): rank on a training window, fix those clusters
//     wherever they appear in a later test window;
//   - reactive      (Table 5, Fig. 13): detect a critical cluster once it has
//     been active for `delay` consecutive epochs, fix it for the remainder
//     of that streak.

#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/core/pipeline.h"

namespace vq {

enum class RankBy : std::uint8_t {
  kCoverage = 0,     // total attributed problem-session mass
  kPrevalence = 1,   // fraction of epochs active as a critical cluster
  kPersistence = 2,  // longest consecutive-epoch streak
};

[[nodiscard]] std::string_view rank_by_name(RankBy r) noexcept;

class WhatIfAnalyzer {
 public:
  explicit WhatIfAnalyzer(const PipelineResult& result);

  struct SweepPoint {
    double top_fraction = 0.0;         // of distinct critical clusters
    double alleviated_fraction = 0.0;  // of all problem sessions
  };

  /// Oracle fixing of the top fraction(s) of distinct critical clusters.
  [[nodiscard]] std::vector<SweepPoint> topk_sweep(
      Metric metric, RankBy rank_by,
      std::span<const double> fractions) const;

  /// Same, restricted to critical clusters whose attribute mask is in
  /// `allowed_masks` (empty = no restriction). Fractions remain normalised
  /// by the total number of distinct critical clusters, as in Fig. 12.
  [[nodiscard]] std::vector<SweepPoint> topk_sweep_masks(
      Metric metric, RankBy rank_by, std::span<const double> fractions,
      std::span<const std::uint8_t> allowed_masks) const;

  struct ProactiveOutcome {
    double alleviated_fraction = 0.0;  // history-selected clusters, test window
    double potential_fraction = 0.0;   // test-window-selected clusters
  };

  /// Ranks by coverage on [train_begin, train_end), fixes the top
  /// `top_fraction` of that window's distinct critical clusters wherever
  /// they re-appear in [test_begin, test_end).
  [[nodiscard]] ProactiveOutcome proactive(Metric metric, double top_fraction,
                                           std::uint32_t train_begin,
                                           std::uint32_t train_end,
                                           std::uint32_t test_begin,
                                           std::uint32_t test_end) const;

  struct ReactiveOutcome {
    double alleviated_fraction = 0.0;  // with the detection delay
    double potential_fraction = 0.0;   // delay = 0 upper bound
    /// Per-epoch problem sessions: original, after the reactive fix, and the
    /// share not attributed to any critical cluster (Fig. 13's three lines).
    std::vector<double> original;
    std::vector<double> after_reactive;
    std::vector<double> outside_critical;
  };

  /// Reactive repair of every critical cluster after `delay_epochs` of
  /// consecutive activity (paper uses 1 hour).
  [[nodiscard]] ReactiveOutcome reactive(Metric metric,
                                         std::uint32_t delay_epochs) const;

  /// Number of distinct critical clusters seen for a metric over the trace.
  [[nodiscard]] std::size_t distinct_critical_count(Metric metric) const;

 private:
  struct EpochEntry {
    std::uint32_t epoch = 0;
    double mass = 0.0;        // attributed problem-session mass
    double alleviated = 0.0;  // mass * max(0, 1 - g/r)
  };
  struct KeyInfo {
    double total_mass = 0.0;
    double total_alleviated = 0.0;
    double prevalence = 0.0;
    std::uint32_t max_persistence = 0;
    std::vector<EpochEntry> entries;  // ascending epoch
  };

  using KeyIndex = std::unordered_map<std::uint64_t, KeyInfo>;

  [[nodiscard]] std::vector<SweepPoint> sweep_impl(
      Metric metric, RankBy rank_by, std::span<const double> fractions,
      std::span<const std::uint8_t> allowed_masks) const;

  [[nodiscard]] double rank_value(const KeyInfo& info,
                                  RankBy rank_by) const noexcept;

  std::uint32_t num_epochs_ = 0;
  std::array<KeyIndex, kNumMetrics> index_;
  std::array<double, kNumMetrics> total_problem_sessions_{};
  std::array<std::vector<double>, kNumMetrics> problem_per_epoch_;
  std::array<std::vector<double>, kNumMetrics> attributed_per_epoch_;
};

}  // namespace vq
