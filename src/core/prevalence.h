// Longitudinal prevalence / persistence analytics (paper §4.1, Figs. 6–8).
//
//   prevalence(cluster)  = fraction of epochs in which the cluster is
//                          flagged (problem or critical, caller's choice)
//   persistence(cluster) = distribution of the lengths of its maximal
//                          consecutive-epoch streaks; we report the median
//                          and the maximum, as the paper does.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/attributes.h"
#include "src/core/pipeline.h"

namespace vq {

/// One cluster's activity across the trace.
struct ClusterTimeline {
  ClusterKey key;
  std::vector<std::uint32_t> epochs;  // ascending epochs where flagged
  double prevalence = 0.0;
  std::uint32_t median_persistence = 0;  // epochs (hours)
  std::uint32_t max_persistence = 0;
};

struct PrevalenceReport {
  std::uint32_t num_epochs = 0;
  std::vector<ClusterTimeline> timelines;  // one per distinct cluster

  [[nodiscard]] std::vector<double> prevalences() const;
  [[nodiscard]] std::vector<double> median_persistences() const;
  [[nodiscard]] std::vector<double> max_persistences() const;
};

/// Builds timelines from per-epoch key lists: `keys_by_epoch[e]` holds the
/// flagged cluster keys of epoch e. Exactly one list per epoch is required;
/// a size mismatch throws std::invalid_argument (it would silently skew the
/// prevalence denominator otherwise).
[[nodiscard]] PrevalenceReport build_prevalence(
    std::span<const std::vector<std::uint64_t>> keys_by_epoch,
    std::uint32_t num_epochs);

/// Per-epoch problem-cluster keys for a metric from a pipeline result.
[[nodiscard]] std::vector<std::vector<std::uint64_t>> problem_cluster_keys(
    const PipelineResult& result, Metric metric);

/// Per-epoch critical-cluster keys for a metric from a pipeline result.
[[nodiscard]] std::vector<std::vector<std::uint64_t>> critical_cluster_keys(
    const PipelineResult& result, Metric metric);

}  // namespace vq
