#include "src/core/attributes.h"

#include <bit>
#include <stdexcept>

namespace vq {

namespace {

constexpr std::array<DimField, kNumDims> build_fields() {
  std::array<DimField, kNumDims> fields{};
  int offset = kNumDims;  // low 7 bits hold the mask
  for (int d = 0; d < kNumDims; ++d) {
    fields[d] = {offset, kDimBits[d]};
    offset += kDimBits[d];
  }
  return fields;
}

constexpr std::array<DimField, kNumDims> kFields = build_fields();

constexpr std::array<std::string_view, kNumDims> kDimNames = {
    "Site", "Cdn", "Asn", "ConnType", "Player", "Browser", "VodLive"};

static_assert(kFields.back().offset + kFields.back().bits <= 63,
              "cluster key layout must leave bit 63 clear for the hash-map "
              "sentinel");

}  // namespace

std::string_view dim_name(AttrDim d) noexcept {
  return kDimNames[static_cast<std::uint8_t>(d)];
}

DimField dim_field(AttrDim d) noexcept {
  return kFields[static_cast<std::uint8_t>(d)];
}

ClusterKey ClusterKey::pack(std::uint8_t mask, const AttrVec& attrs) {
  if (mask > kFullMask) throw std::out_of_range{"ClusterKey: bad mask"};
  std::uint64_t raw = mask;
  for (int d = 0; d < kNumDims; ++d) {
    if ((mask & (1u << d)) == 0) continue;
    const auto value = attrs.v[d];
    const auto [offset, bits] = kFields[d];
    if (value >= (1u << bits)) {
      throw std::out_of_range{"ClusterKey: value does not fit field for " +
                              std::string{kDimNames[d]}};
    }
    raw |= static_cast<std::uint64_t>(value) << offset;
  }
  return from_raw(raw);
}

int ClusterKey::arity() const noexcept { return std::popcount(mask()); }

std::uint16_t ClusterKey::value(AttrDim d) const noexcept {
  const auto [offset, bits] = dim_field(d);
  return static_cast<std::uint16_t>((raw_ >> offset) & ((1u << bits) - 1));
}

bool ClusterKey::generalizes(const ClusterKey& other) const noexcept {
  const std::uint8_t m = mask();
  if ((m & other.mask()) != m) return false;
  return other.project(m) == *this;
}

ClusterKey ClusterKey::project(std::uint8_t sub) const noexcept {
  std::uint64_t raw = sub;
  for (int d = 0; d < kNumDims; ++d) {
    if ((sub & (1u << d)) == 0) continue;
    const auto [offset, bits] = kFields[d];
    raw |= raw_ & (((std::uint64_t{1} << bits) - 1) << offset);
  }
  return from_raw(raw);
}

std::uint16_t AttributeSchema::intern(AttrDim d, std::string_view name) {
  auto& interner = interners_[static_cast<std::uint8_t>(d)];
  const std::uint32_t id = interner.intern(name);
  if (id > dim_capacity(d)) {
    throw std::length_error{"AttributeSchema: id space exhausted for " +
                            std::string{dim_name(d)}};
  }
  return static_cast<std::uint16_t>(id);
}

std::string_view AttributeSchema::name(AttrDim d, std::uint16_t id) const {
  return interners_[static_cast<std::uint8_t>(d)].name(id);
}

std::size_t AttributeSchema::cardinality(AttrDim d) const noexcept {
  return interners_[static_cast<std::uint8_t>(d)].size();
}

std::string AttributeSchema::describe(const ClusterKey& key) const {
  if (key.mask() == 0) return "[*]";
  std::string out = "[";
  bool first = true;
  for (int d = 0; d < kNumDims; ++d) {
    const auto dim = static_cast<AttrDim>(d);
    if (!key.has(dim)) continue;
    if (!first) out += ", ";
    first = false;
    out += dim_name(dim);
    out += '=';
    const std::uint16_t id = key.value(dim);
    if (id < cardinality(dim)) {
      out += name(dim, id);
    } else {
      out += '#';
      out += std::to_string(id);
    }
  }
  out += ']';
  return out;
}

}  // namespace vq
