#include "src/core/critical_cluster.h"

#include <algorithm>
#include <array>
#include <bit>

namespace vq {

namespace {

constexpr int kNumMasks = kFullMask + 1;  // 128 subsets incl. root

}  // namespace

LeafCandidates critical_leaf_candidates(const ClusterKey& leaf,
                                        const EpochClusterTable& table,
                                        const ProblemClusterParams& params,
                                        Metric metric) {
  const double global = table.global_ratio(metric);

  LeafCandidates out;
  std::array<ClusterStats, kNumMasks> stats;
  std::array<bool, kNumMasks> flagged{};
  stats[0] = table.root;
  for (int mask = 1; mask < kNumMasks; ++mask) {
    stats[mask] = table.stats(leaf.project(static_cast<std::uint8_t>(mask)));
    flagged[mask] =
        is_problem_cluster(stats[mask], global, params, metric);
    out.in_problem_cluster |= flagged[mask];
  }

  std::vector<std::uint8_t> candidates;
  for (int m = 1; m < kNumMasks; ++m) {
    if (!flagged[m]) continue;

    // (b) every significant descendant within the leaf is a problem cluster.
    // Enumerate strict supersets of m by iterating subsets of its complement.
    const unsigned complement = kFullMask & ~static_cast<unsigned>(m);
    bool up_ok = true;
    for (unsigned extra = complement; extra != 0;
         extra = (extra - 1) & complement) {
      const int s = m | static_cast<int>(extra);
      if (is_significant(stats[s], params) && !flagged[s]) {
        up_ok = false;
        break;
      }
    }
    if (!up_ok) continue;

    // (c) removing this cluster's sessions un-flags every proper ancestor.
    bool down_ok = true;
    const unsigned mu = static_cast<unsigned>(m);
    for (unsigned a = (mu - 1) & mu; a != 0; a = (a - 1) & mu) {
      const ClusterStats remaining = stats[a].minus(stats[m]);
      if (is_problem_cluster(remaining, global, params, metric)) {
        down_ok = false;
        break;
      }
    }
    if (down_ok) candidates.push_back(static_cast<std::uint8_t>(m));
  }

  // Keep only masks minimal by inclusion ("closest to the root").
  for (const std::uint8_t m : candidates) {
    const bool dominated = std::any_of(
        candidates.begin(), candidates.end(), [m](std::uint8_t other) {
          return other != m && (other & m) == other;
        });
    if (!dominated) out.masks.push_back(m);
  }
  return out;
}

std::vector<std::uint8_t> critical_candidate_masks(
    const ClusterKey& leaf, const EpochClusterTable& table,
    const ProblemClusterParams& params, Metric metric) {
  return critical_leaf_candidates(leaf, table, params, metric).masks;
}

CriticalAnalysis find_critical_clusters(const LeafFold& fold,
                                        const EpochClusterTable& table,
                                        const ProblemClusterParams& params,
                                        Metric metric) {
  CriticalAnalysis out;
  out.epoch = table.epoch;
  out.metric = metric;
  out.sessions = table.root.sessions;
  out.problem_sessions =
      table.root.problems[static_cast<std::uint8_t>(metric)];
  out.global_ratio = table.global_ratio(metric);
  out.num_problem_clusters = static_cast<std::uint32_t>(
      find_problem_clusters(table, params, metric).size());

  // Candidates and membership depend only on the leaf, so evaluate each
  // distinct leaf once and weight by its problem-session count.
  FlatMap64<double> attribution;
  fold.leaves.for_each([&](std::uint64_t raw, const ClusterStats& stats) {
    const std::uint32_t problems =
        stats.problems[static_cast<std::uint8_t>(metric)];
    if (problems == 0) return;
    const ClusterKey leaf = ClusterKey::from_raw(raw);
    const LeafCandidates info =
        critical_leaf_candidates(leaf, table, params, metric);
    if (info.in_problem_cluster) out.problem_sessions_in_pc += problems;
    if (info.masks.empty()) return;
    const double share = static_cast<double>(problems) /
                         static_cast<double>(info.masks.size());
    for (const std::uint8_t mask : info.masks) {
      attribution[leaf.project(mask).raw()] += share;
    }
  });

  out.criticals.reserve(attribution.size());
  attribution.for_each([&](std::uint64_t raw, double mass) {
    const ClusterKey key = ClusterKey::from_raw(raw);
    out.criticals.push_back({key, mass, table.stats(key)});
    out.attributed_mass += mass;
  });
  std::sort(out.criticals.begin(), out.criticals.end(),
            [](const CriticalRecord& a, const CriticalRecord& b) {
              if (a.attributed != b.attributed) {
                return a.attributed > b.attributed;
              }
              return a.key.raw() < b.key.raw();
            });
  return out;
}

CriticalAnalysis find_critical_clusters(std::span<const Session> sessions,
                                        const EpochClusterTable& table,
                                        const ProblemThresholds& thresholds,
                                        const ProblemClusterParams& params,
                                        Metric metric) {
  return find_critical_clusters(
      fold_sessions(sessions, thresholds, table.epoch), table, params,
      metric);
}

}  // namespace vq
