#include "src/core/critical_cluster.h"

#include <algorithm>
#include <array>
#include <bit>
#include <stdexcept>

#include "src/core/mask_bits.h"
#include "src/obs/trace.h"
#include "src/util/thread_pool.h"

namespace vq {

namespace detail {

void finalize_critical_analysis(CriticalAnalysis& out) {
  std::sort(out.criticals.begin(), out.criticals.end(),
            [](const CriticalRecord& a, const CriticalRecord& b) {
              if (a.attributed != b.attributed) {
                return a.attributed > b.attributed;
              }
              return a.key.raw() < b.key.raw();
            });
  out.attributed_mass = 0.0;
  for (const CriticalRecord& rec : out.criticals) {
    out.attributed_mass += rec.attributed;
  }
}

}  // namespace detail

namespace {

using detail::MaskBits;
using detail::filter_minimal;
using detail::strict_superset_or;

constexpr int kNumMasks = kFullMask + 1;  // 128 subsets incl. root

/// Shared tail of every strategy: deterministic record order (attributed
/// mass descending, raw key ascending) and the attributed-mass total summed
/// in that order, so hashed/indexed/sharded runs agree bit for bit.
void finalize_analysis(CriticalAnalysis& out) {
  detail::finalize_critical_analysis(out);
}

void fill_header(CriticalAnalysis& out, const EpochClusterTable& table,
                 Metric metric) {
  out.epoch = table.epoch;
  out.metric = metric;
  out.sessions = table.root.sessions;
  out.problem_sessions =
      table.root.problems[static_cast<std::uint8_t>(metric)];
  out.global_ratio = table.global_ratio(metric);
}

/// Both strategies publish the epoch's problem-cluster keys (ascending) so
/// downstream analytics never re-run the per-cell predicate sweep. The
/// hashed strategy sweeps the table; the indexed one derives the keys from
/// the already-computed flag bitset (see find_critical_clusters_indexed).
void problem_keys_from_table(CriticalAnalysis& out,
                             const EpochClusterTable& table,
                             const ProblemClusterParams& params,
                             Metric metric) {
  out.problem_cluster_keys.clear();
  const double global = out.global_ratio;
  table.clusters.for_each([&](std::uint64_t raw, const ClusterStats& stats) {
    if (is_problem_cluster(stats, global, params, metric)) {
      out.problem_cluster_keys.push_back(raw);
    }
  });
  std::sort(out.problem_cluster_keys.begin(), out.problem_cluster_keys.end());
  out.num_problem_clusters =
      static_cast<std::uint32_t>(out.problem_cluster_keys.size());
}

void problem_keys_from_flags(CriticalAnalysis& out, const CellStore& cells,
                             const CellFlags& flags) {
  out.problem_cluster_keys.clear();
  out.problem_cluster_keys.reserve(flags.num_flagged);
  for (std::uint32_t id = 0; id < cells.size(); ++id) {
    if (flags.test_flagged(id)) {
      out.problem_cluster_keys.push_back(cells.key(id));
    }
  }
  std::sort(out.problem_cluster_keys.begin(), out.problem_cluster_keys.end());
  out.num_problem_clusters = flags.num_flagged;
}

/// Per-shard scratch for the indexed leaf sweep. Only materialised masks
/// are written before being read, so no per-leaf clearing is needed.
struct LeafScratch {
  std::array<const ClusterStats*, kNumMasks> stats_by_mask;
  std::array<std::uint32_t, kNumMasks> id_by_mask;
  std::vector<std::uint8_t> raw_candidates;
  std::vector<std::uint8_t> masks;
};

/// Indexed equivalent of critical_leaf_candidates: gathers the leaf's
/// precomputed projection cell ids and flag bits, then applies conditions
/// (a)/(b) with 128-bit bit tricks and (c)/minimality on the gathered stats.
/// Returns whether any projection is a problem cluster; minimal candidate
/// masks land in scratch.masks (ascending).
bool indexed_leaf_candidates(const LeafCellIndex& index, std::size_t leaf,
                             const CellStore& cells, const CellFlags& flags,
                             const ProblemClusterParams& params,
                             double global, Metric metric,
                             LeafScratch& scratch) {
  const std::span<const std::uint32_t> row = index.row(leaf);
  MaskBits flagged;
  MaskBits significant;
  for (std::size_t j = 0; j < index.masks.size(); ++j) {
    const unsigned mask = index.masks[j];
    const std::uint32_t id = row[j];
    scratch.stats_by_mask[mask] = &cells.cell(id);
    scratch.id_by_mask[mask] = id;
    if (flags.test_significant(id)) {
      significant.set(mask);
      if (flags.test_flagged(id)) flagged.set(mask);
    }
  }
  scratch.masks.clear();
  if (!flagged.any()) return false;  // (a) can never hold

  // (b): a mask is vetoed when any strict superset within the leaf is
  // significant but not flagged.
  const MaskBits bad{significant.lo & ~flagged.lo,
                     significant.hi & ~flagged.hi};
  const MaskBits veto = strict_superset_or(bad);

  scratch.raw_candidates.clear();
  for (const std::uint8_t mask : index.masks) {
    if (!flagged.test(mask) || veto.test(mask)) continue;

    // (c) removing this cluster's sessions un-flags every proper ancestor.
    const ClusterStats& m_stats = *scratch.stats_by_mask[mask];
    bool down_ok = true;
    const unsigned mu = mask;
    for (unsigned a = (mu - 1) & mu; a != 0; a = (a - 1) & mu) {
      const ClusterStats remaining =
          scratch.stats_by_mask[a]->minus(m_stats);
      if (is_problem_cluster(remaining, global, params, metric)) {
        down_ok = false;
        break;
      }
    }
    if (down_ok) scratch.raw_candidates.push_back(mask);
  }
  filter_minimal(scratch.raw_candidates, scratch.masks);
  return true;
}

}  // namespace

LeafCandidates critical_leaf_candidates(const ClusterKey& leaf,
                                        const EpochClusterTable& table,
                                        const ProblemClusterParams& params,
                                        Metric metric) {
  const double global = table.global_ratio(metric);

  LeafCandidates out;
  std::array<ClusterStats, kNumMasks> stats;
  std::array<bool, kNumMasks> flagged{};
  stats[0] = table.root;
  for (int mask = 1; mask < kNumMasks; ++mask) {
    stats[mask] = table.stats(leaf.project(static_cast<std::uint8_t>(mask)));
    flagged[mask] =
        is_problem_cluster(stats[mask], global, params, metric);
    out.in_problem_cluster |= flagged[mask];
  }

  std::vector<std::uint8_t> candidates;
  for (int m = 1; m < kNumMasks; ++m) {
    if (!flagged[m]) continue;

    // (b) every significant descendant within the leaf is a problem cluster.
    // Enumerate strict supersets of m by iterating subsets of its complement.
    const unsigned complement = kFullMask & ~static_cast<unsigned>(m);
    bool up_ok = true;
    for (unsigned extra = complement; extra != 0;
         extra = (extra - 1) & complement) {
      const int s = m | static_cast<int>(extra);
      if (is_significant(stats[s], params) && !flagged[s]) {
        up_ok = false;
        break;
      }
    }
    if (!up_ok) continue;

    // (c) removing this cluster's sessions un-flags every proper ancestor.
    bool down_ok = true;
    const unsigned mu = static_cast<unsigned>(m);
    for (unsigned a = (mu - 1) & mu; a != 0; a = (a - 1) & mu) {
      const ClusterStats remaining = stats[a].minus(stats[m]);
      if (is_problem_cluster(remaining, global, params, metric)) {
        down_ok = false;
        break;
      }
    }
    if (down_ok) candidates.push_back(static_cast<std::uint8_t>(m));
  }

  filter_minimal(candidates, out.masks);
  return out;
}

std::vector<std::uint8_t> critical_candidate_masks(
    const ClusterKey& leaf, const EpochClusterTable& table,
    const ProblemClusterParams& params, Metric metric) {
  return critical_leaf_candidates(leaf, table, params, metric).masks;
}

CriticalAnalysis find_critical_clusters_hashed(
    const LeafFold& fold, const EpochClusterTable& table,
    const ProblemClusterParams& params, Metric metric) {
  CriticalAnalysis out;
  fill_header(out, table, metric);
  problem_keys_from_table(out, table, params, metric);

  // Candidates and membership depend only on the leaf, so evaluate each
  // distinct leaf once and weight by its problem-session count. Leaves are
  // walked in ascending raw-key order — the canonical accumulation order
  // every strategy shares, making the attribution doubles bit-comparable.
  std::vector<std::pair<std::uint64_t, const ClusterStats*>> sorted_leaves;
  sorted_leaves.reserve(fold.leaves.size());
  fold.leaves.for_each([&](std::uint64_t raw, const ClusterStats& stats) {
    sorted_leaves.emplace_back(raw, &stats);
  });
  std::sort(sorted_leaves.begin(), sorted_leaves.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  FlatMap64<double> attribution;
  for (const auto& [raw, stats] : sorted_leaves) {
    const std::uint32_t problems =
        stats->problems[static_cast<std::uint8_t>(metric)];
    if (problems == 0) continue;
    const ClusterKey leaf = ClusterKey::from_raw(raw);
    const LeafCandidates info =
        critical_leaf_candidates(leaf, table, params, metric);
    if (info.in_problem_cluster) out.problem_sessions_in_pc += problems;
    if (info.masks.empty()) continue;
    const double share = static_cast<double>(problems) /
                         static_cast<double>(info.masks.size());
    for (const std::uint8_t mask : info.masks) {
      attribution[leaf.project(mask).raw()] += share;
    }
  }

  out.criticals.reserve(attribution.size());
  // Accumulation only: finalize_analysis below sorts out.criticals by
  // (mass, key) before anything is emitted.
  // vq-lint: allow(unordered-iter)
  attribution.for_each([&](std::uint64_t raw, double mass) {
    const ClusterKey key = ClusterKey::from_raw(raw);
    out.criticals.push_back({key, mass, table.stats(key)});
  });
  finalize_analysis(out);
  return out;
}

CriticalAnalysis find_critical_clusters_indexed(
    const EpochClusterTable& table, const ProblemClusterParams& params,
    Metric metric, ThreadPool* pool, std::size_t shards) {
  if (table.leaf_index.empty() && !table.clusters.empty()) {
    throw std::invalid_argument{
        "find_critical_clusters_indexed: table carries no leaf index "
        "(expand_fold with ClusterEngineConfig::index_cells builds one)"};
  }

  CriticalAnalysis out;
  fill_header(out, table, metric);

  const CellFlags flags = compute_cell_flags(table, params, metric);
  const LeafCellIndex& index = table.leaf_index;
  const CellStore& cells = table.clusters;
  problem_keys_from_flags(out, cells, flags);
  const double global = out.global_ratio;
  const auto mi = static_cast<std::uint8_t>(metric);
  const std::size_t num_leaves = index.num_leaves();

  // Sharding only pays off when each shard gets a meaningful slice.
  constexpr std::size_t kMinLeavesPerShard = 256;
  std::size_t num_shards = 1;
  if (pool != nullptr && shards > 1 &&
      num_leaves >= 2 * kMinLeavesPerShard) {
    num_shards = std::min(shards, num_leaves / kMinLeavesPerShard);
  }

  struct ShardOut {
    std::vector<std::pair<std::uint32_t, double>> shares;  // (cell id, share)
    std::uint64_t in_pc_problems = 0;
  };
  std::vector<ShardOut> shard_out(num_shards);
  std::vector<std::size_t> bounds(num_shards + 1);
  for (std::size_t s = 0; s <= num_shards; ++s) {
    bounds[s] = num_leaves * s / num_shards;
  }

  const auto sweep_shard = [&](std::size_t shard) {
    LeafScratch scratch;
    ShardOut& so = shard_out[shard];
    for (std::size_t i = bounds[shard]; i < bounds[shard + 1]; ++i) {
      const std::uint32_t problems = index.leaf_stats[i].problems[mi];
      if (problems == 0) continue;
      const bool in_pc = indexed_leaf_candidates(index, i, cells, flags,
                                                 params, global, metric,
                                                 scratch);
      if (in_pc) so.in_pc_problems += problems;
      if (scratch.masks.empty()) continue;
      const double share = static_cast<double>(problems) /
                           static_cast<double>(scratch.masks.size());
      for (const std::uint8_t mask : scratch.masks) {
        so.shares.emplace_back(scratch.id_by_mask[mask], share);
      }
    }
  };
  if (num_shards == 1) {
    sweep_shard(0);
  } else {
    pool->parallel_for(0, num_shards, sweep_shard);
  }

  // Deterministic merge: shards cover contiguous ranges of the ascending
  // leaf array and appended their shares in leaf order, so replaying the
  // lists in shard order reproduces the serial floating-point accumulation
  // sequence exactly — for any shard count.
  std::vector<double> attribution(cells.size(), 0.0);
  std::vector<std::uint32_t> touched;
  for (const ShardOut& so : shard_out) {
    out.problem_sessions_in_pc += so.in_pc_problems;
    for (const auto& [id, share] : so.shares) {
      if (attribution[id] == 0.0) touched.push_back(id);
      attribution[id] += share;  // share > 0, so touched stays accurate
    }
  }

  out.criticals.reserve(touched.size());
  for (const std::uint32_t id : touched) {
    out.criticals.push_back({ClusterKey::from_raw(cells.key(id)),
                             attribution[id], cells.cell(id)});
  }
  finalize_analysis(out);
  return out;
}

CriticalAnalysis find_critical_clusters(const LeafFold& fold,
                                        const EpochClusterTable& table,
                                        const ProblemClusterParams& params,
                                        Metric metric, ThreadPool* pool,
                                        std::size_t shards) {
  VQ_SPAN_EPOCH("core.find_critical_clusters", table.epoch);
  if (!table.leaf_index.empty() || table.clusters.empty()) {
    return find_critical_clusters_indexed(table, params, metric, pool,
                                          shards);
  }
  return find_critical_clusters_hashed(fold, table, params, metric);
}

CriticalAnalysis find_critical_clusters(std::span<const Session> sessions,
                                        const EpochClusterTable& table,
                                        const ProblemThresholds& thresholds,
                                        const ProblemClusterParams& params,
                                        Metric metric) {
  return find_critical_clusters(
      fold_sessions(sessions, thresholds, table.epoch), table, params,
      metric);
}

}  // namespace vq
