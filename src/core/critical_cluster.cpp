#include "src/core/critical_cluster.h"

#include <algorithm>
#include <array>
#include <bit>

namespace vq {

namespace {

constexpr int kNumMasks = kFullMask + 1;  // 128 subsets incl. root

struct LeafInfo {
  std::vector<std::uint8_t> candidates;
  bool in_problem_cluster = false;
};

}  // namespace

std::vector<std::uint8_t> critical_candidate_masks(
    const ClusterKey& leaf, const EpochClusterTable& table,
    const ProblemClusterParams& params, Metric metric) {
  const double global = table.global_ratio(metric);

  std::array<ClusterStats, kNumMasks> stats;
  std::array<bool, kNumMasks> flagged{};
  stats[0] = table.root;
  for (int mask = 1; mask < kNumMasks; ++mask) {
    stats[mask] = table.stats(leaf.project(static_cast<std::uint8_t>(mask)));
    flagged[mask] =
        is_problem_cluster(stats[mask], global, params, metric);
  }

  std::vector<std::uint8_t> candidates;
  for (int m = 1; m < kNumMasks; ++m) {
    if (!flagged[m]) continue;

    // (b) every significant descendant within the leaf is a problem cluster.
    // Enumerate strict supersets of m by iterating subsets of its complement.
    const unsigned complement = kFullMask & ~static_cast<unsigned>(m);
    bool up_ok = true;
    for (unsigned extra = complement; extra != 0;
         extra = (extra - 1) & complement) {
      const int s = m | static_cast<int>(extra);
      if (is_significant(stats[s], params) && !flagged[s]) {
        up_ok = false;
        break;
      }
    }
    if (!up_ok) continue;

    // (c) removing this cluster's sessions un-flags every proper ancestor.
    bool down_ok = true;
    const unsigned mu = static_cast<unsigned>(m);
    for (unsigned a = (mu - 1) & mu; a != 0; a = (a - 1) & mu) {
      const ClusterStats remaining = stats[a].minus(stats[m]);
      if (is_problem_cluster(remaining, global, params, metric)) {
        down_ok = false;
        break;
      }
    }
    if (down_ok) candidates.push_back(static_cast<std::uint8_t>(m));
  }

  // Keep only masks minimal by inclusion ("closest to the root").
  std::vector<std::uint8_t> minimal;
  for (const std::uint8_t m : candidates) {
    const bool dominated = std::any_of(
        candidates.begin(), candidates.end(), [m](std::uint8_t other) {
          return other != m && (other & m) == other;
        });
    if (!dominated) minimal.push_back(m);
  }
  return minimal;
}

CriticalAnalysis find_critical_clusters(std::span<const Session> sessions,
                                        const EpochClusterTable& table,
                                        const ProblemThresholds& thresholds,
                                        const ProblemClusterParams& params,
                                        Metric metric) {
  CriticalAnalysis out;
  out.epoch = table.epoch;
  out.metric = metric;
  out.sessions = table.root.sessions;
  out.problem_sessions =
      table.root.problems[static_cast<std::uint8_t>(metric)];
  out.global_ratio = table.global_ratio(metric);
  out.num_problem_clusters = static_cast<std::uint32_t>(
      find_problem_clusters(table, params, metric).size());

  const double global = out.global_ratio;

  // Per distinct leaf, the candidate set and coverage are identical for all
  // of its sessions; memoise.
  FlatMap64<LeafInfo> leaf_memo;
  FlatMap64<double> attribution;

  for (const Session& s : sessions) {
    if (!thresholds.is_problem(metric, s.quality)) continue;
    const ClusterKey leaf = ClusterKey::pack(kFullMask, s.attrs);
    LeafInfo* info = leaf_memo.find(leaf.raw());
    if (info == nullptr) {
      LeafInfo fresh;
      fresh.candidates =
          critical_candidate_masks(leaf, table, params, metric);
      for (unsigned mask = 1; mask <= kFullMask && !fresh.in_problem_cluster;
           ++mask) {
        const ClusterStats stats =
            table.stats(leaf.project(static_cast<std::uint8_t>(mask)));
        fresh.in_problem_cluster =
            is_problem_cluster(stats, global, params, metric);
      }
      info = &(leaf_memo[leaf.raw()] = std::move(fresh));
    }

    if (info->in_problem_cluster) ++out.problem_sessions_in_pc;
    if (info->candidates.empty()) continue;
    const double share = 1.0 / static_cast<double>(info->candidates.size());
    for (const std::uint8_t mask : info->candidates) {
      attribution[leaf.project(mask).raw()] += share;
    }
  }

  out.criticals.reserve(attribution.size());
  attribution.for_each([&](std::uint64_t raw, double mass) {
    const ClusterKey key = ClusterKey::from_raw(raw);
    out.criticals.push_back({key, mass, table.stats(key)});
    out.attributed_mass += mass;
  });
  std::sort(out.criticals.begin(), out.criticals.end(),
            [](const CriticalRecord& a, const CriticalRecord& b) {
              if (a.attributed != b.attributed) {
                return a.attributed > b.attributed;
              }
              return a.key.raw() < b.key.raw();
            });
  return out;
}

}  // namespace vq
