// Structure-of-arrays session batches and the vectorized fold kernels.
//
// The row-wise hot loop (fold_sessions in cluster_engine.h) walks an array
// of Session structs: every session costs a strided 40-byte record touch, a
// branchy ClusterKey::pack call, and four scalar threshold compares.  At
// paper scale (~300M sessions) that layout is the wall: the out-of-core
// columnar trace format (gen/columnar.h) already stores each epoch as seven
// u16 attribute columns plus four metric columns, so the aggregation can
// consume them directly:
//
//   * problem_bits_columns — the per-metric threshold compares run over the
//     metric columns in SIMD batches (SSE2/AVX2 float compares; the scalar
//     fallback calls ProblemThresholds::problem_bits per element).  Both
//     paths are bit-identical: the scalar thresholds already compare in
//     float (session.cpp), which is exactly what the vector compares do.
//   * pack_leaf_keys_columns — full-arity ClusterKey packing as a
//     branch-free shift/OR sweep over the attribute columns, with the
//     per-dimension range check hoisted out of the inner loop (one column
//     max-scan per dimension instead of one branch per session per
//     dimension).
//   * fold_sessions_columns — pass 1 of the leaf-folded aggregation over a
//     SessionColumns batch.  Produces a LeafFold identical to
//     fold_sessions over the same sessions in the same order (enforced by
//     tests/test_columns_fold.cpp at every workers x shards combination).
//
// SessionColumns is also the unit of streaming: EpochColumnsSource is the
// abstract one-epoch-at-a-time feed run_pipeline_streaming (pipeline.h)
// consumes, letting `analyze` run at O(one epoch) memory over traces that
// never fit in RAM.  gen/columnar.h implements it over the on-disk format;
// tests implement it over in-memory tables.

#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/core/attributes.h"
#include "src/core/batch_kernel.h"
#include "src/core/session.h"

namespace vq {

struct LeafFold;

/// One batch of sessions in structure-of-arrays layout: column i of attrs
/// holds dimension i's value ids, metric columns are parallel to it.  All
/// columns always have equal length.  A batch carries no per-row epoch —
/// batches are built per epoch (the columnar format stores one epoch per
/// chunk), and the epoch id travels alongside.
struct SessionColumns {
  std::array<std::vector<std::uint16_t>, kNumDims> attrs;
  std::vector<float> buffering_ratio;
  std::vector<float> bitrate_kbps;
  std::vector<float> join_time_ms;
  std::vector<std::uint8_t> join_failed;  // 0 or 1

  [[nodiscard]] std::size_t size() const noexcept {
    return join_failed.size();
  }
  [[nodiscard]] bool empty() const noexcept { return join_failed.empty(); }

  /// Empties every column; capacity is retained so a streaming reader can
  /// reuse one batch across epochs without reallocating.
  void clear() noexcept;

  void reserve(std::size_t n);

  void push_back(const Session& s);

  /// Row view of element i (for tests and row-at-a-time consumers).
  [[nodiscard]] Session row(std::size_t i, std::uint32_t epoch) const;

  /// Appends the batch as Session rows carrying `epoch` (the streaming
  /// monitor's per-epoch materialisation).
  void append_rows(std::uint32_t epoch, std::vector<Session>& out) const;

  /// Builds the batch from row-wise sessions. Every session must carry
  /// `epoch`; throws std::invalid_argument otherwise (mirroring
  /// fold_sessions' epoch check).
  static SessionColumns from_sessions(std::span<const Session> sessions,
                                      std::uint32_t epoch);
};

/// Problem bitmask per element: out[i] has bit m set iff element i is a
/// problem session for metric m, exactly as ProblemThresholds::problem_bits
/// computes it.  `out.size()` must equal `columns.size()`.
void problem_bits_columns(const SessionColumns& columns,
                          const ProblemThresholds& thresholds,
                          std::span<std::uint8_t> out,
                          BatchKernel kernel = BatchKernel::kAuto);

/// Full-arity leaf key per element: out[i] ==
/// ClusterKey::pack(kFullMask, row i attrs).raw().  Value ids must fit
/// their field widths; throws std::out_of_range naming the offending
/// dimension otherwise (checked per column, so the *dimension* reported for
/// multi-error batches may differ from the row-wise path's first-session
/// order — both always throw).  `out.size()` must equal `columns.size()`.
void pack_leaf_keys_columns(const SessionColumns& columns,
                            std::span<std::uint64_t> out,
                            BatchKernel kernel = BatchKernel::kAuto);

/// Pass-1 leaf fold over a column batch; identical to
/// fold_sessions(rows, thresholds, epoch) over the same sessions in the
/// same order.  The two hot kernels above run over fixed-size blocks so
/// scratch stays cache-resident regardless of epoch size.
[[nodiscard]] LeafFold fold_sessions_columns(
    const SessionColumns& columns, const ProblemThresholds& thresholds,
    std::uint32_t epoch, BatchKernel kernel = BatchKernel::kAuto);

/// Name of the widest kernel kAuto resolves to in this build ("avx2",
/// "sse2", or "scalar") — benchmark/report labelling only.
[[nodiscard]] std::string_view batch_kernel_name() noexcept;

/// Abstract one-epoch-at-a-time session feed, the streaming counterpart of
/// SessionTable.  Implementations: gen/columnar.h's ColumnarReader (reads
/// one column chunk per call at O(one epoch) memory) and in-memory test
/// doubles.  Epochs with no sessions yield an empty batch.
class EpochColumnsSource {
 public:
  virtual ~EpochColumnsSource() = default;

  /// Epochs spanned (max epoch + 1), known up front (e.g. from the footer
  /// index) so per-epoch result vectors can be sized before streaming.
  [[nodiscard]] virtual std::uint32_t num_epochs() const = 0;

  /// Replaces `out`'s contents with epoch e's sessions, in trace order.
  /// Returns true when the epoch is degraded — rows were lost to
  /// quarantine, checksum failure, or truncation — mirroring the
  /// IngestReport::degraded_epochs annotation of the in-RAM readers.
  /// Throws on unrecoverable input errors (strict-policy readers).
  virtual bool read_epoch(std::uint32_t e, SessionColumns& out) = 0;
};

}  // namespace vq
