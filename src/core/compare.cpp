#include "src/core/compare.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace vq {

std::string_view cluster_fate_name(ClusterFate f) noexcept {
  switch (f) {
    case ClusterFate::kFixed:
      return "fixed";
    case ClusterFate::kImproved:
      return "improved";
    case ClusterFate::kPersisting:
      return "persisting";
    case ClusterFate::kRegressed:
      return "regressed";
    case ClusterFate::kNew:
      return "new";
  }
  return "?";
}

namespace {

std::unordered_map<std::uint64_t, double> attributed_mass(
    const PipelineResult& result, Metric metric, std::uint32_t epochs) {
  std::unordered_map<std::uint64_t, double> mass;
  for (std::uint32_t e = 0; e < epochs; ++e) {
    for (const auto& c : result.at(metric, e).analysis.criticals) {
      mass[c.key.raw()] += c.attributed;
    }
  }
  return mass;
}

double mean_problem_ratio(const PipelineResult& result, Metric metric,
                          std::uint32_t epochs) {
  if (epochs == 0) return 0.0;
  double total = 0.0;
  for (std::uint32_t e = 0; e < epochs; ++e) {
    const auto& a = result.at(metric, e).analysis;
    total += a.sessions == 0
                 ? 0.0
                 : static_cast<double>(a.problem_sessions) /
                       static_cast<double>(a.sessions);
  }
  return total / static_cast<double>(epochs);
}

ClusterFate classify(double before, double after) {
  if (after == 0.0) return ClusterFate::kFixed;
  if (before == 0.0) return ClusterFate::kNew;
  const double change = (after - before) / before;
  if (change <= -0.25) return ClusterFate::kImproved;
  if (change >= 0.25) return ClusterFate::kRegressed;
  return ClusterFate::kPersisting;
}

}  // namespace

TraceComparison compare_results(const PipelineResult& before,
                                const PipelineResult& after) {
  const std::uint32_t epochs = std::min(before.num_epochs, after.num_epochs);
  TraceComparison comparison;
  for (const Metric metric : kAllMetrics) {
    MetricComparison& mc =
        comparison.per_metric[static_cast<std::uint8_t>(metric)];
    mc.metric = metric;
    mc.problem_ratio_before = mean_problem_ratio(before, metric, epochs);
    mc.problem_ratio_after = mean_problem_ratio(after, metric, epochs);

    const auto mass_a = attributed_mass(before, metric, epochs);
    const auto mass_b = attributed_mass(after, metric, epochs);
    for (const auto& [raw, a] : mass_a) {
      const auto it = mass_b.find(raw);
      const double b = it == mass_b.end() ? 0.0 : it->second;
      mc.clusters.push_back(
          {ClusterKey::from_raw(raw), classify(a, b), a, b});
    }
    for (const auto& [raw, b] : mass_b) {
      if (mass_a.contains(raw)) continue;
      mc.clusters.push_back(
          {ClusterKey::from_raw(raw), ClusterFate::kNew, 0.0, b});
    }
    std::sort(mc.clusters.begin(), mc.clusters.end(),
              [](const ClusterDelta& x, const ClusterDelta& y) {
                const double dx = std::abs(x.mass_after - x.mass_before);
                const double dy = std::abs(y.mass_after - y.mass_before);
                if (dx != dy) return dx > dy;
                return x.key.raw() < y.key.raw();
              });
  }
  return comparison;
}

}  // namespace vq
