// End-to-end analysis pipeline: epochs -> cluster lattice -> problem
// clusters -> critical clusters, per metric.
//
// This is the library's primary entry point.  It processes epochs one at a
// time (optionally in parallel), discards the bulky per-epoch lattice tables
// after extracting what the longitudinal analyses need, and returns a
// PipelineResult the §4/§5 analytics (prevalence, persistence, overlap,
// what-if) consume.
//
// Parallelism has two levels sharing one thread pool: epochs are spread
// across workers, and within an epoch the lattice expansion can be sharded
// (see cluster_engine.h).  Sharding matters when there are fewer epochs
// than cores — e.g. a live monitor re-analysing the latest hour — and is
// derived automatically by default.

#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/core/cluster_engine.h"
#include "src/core/columns.h"
#include "src/core/critical_cluster.h"
#include "src/core/problem_cluster.h"
#include "src/core/session.h"

namespace vq {

struct PipelineConfig {
  ProblemThresholds thresholds;
  ProblemClusterParams cluster_params{.ratio_multiplier = 1.5,
                                      .min_sessions = 1000};
  ClusterEngineConfig engine;
  /// Worker threads for per-epoch parallelism; 0 = hardware concurrency.
  std::size_t workers = 1;
  /// Lattice-expansion shards per epoch: 1 = serial expansion, 0 = derive
  /// from the worker/epoch ratio (shard only when epochs alone cannot keep
  /// the pool busy). Any value yields identical results.
  std::size_t shards = 0;
  /// Streaming only: maintain the lattice across epochs with the
  /// incremental delta engine (src/core/incremental.h) instead of
  /// re-expanding every epoch from scratch.  Results are bit-identical
  /// (tests/test_incremental.cpp); per-epoch cost becomes proportional to
  /// leaf churn.  Requires engine.fold_leaves.  Ignored by run_pipeline
  /// (epoch-parallel batch analysis has no epoch order to exploit).
  bool incremental = false;
  /// Streaming only: optional replacement for the pass-1 fold, e.g. the
  /// sketch-bounded admission tier (src/baseline/hhh.h) that folds only
  /// heavy leaves under a --max-cells budget.  The returned fold must carry
  /// the requested epoch id; its root is taken as the epoch's global
  /// counters.  Null uses fold_sessions_columns (exact).
  std::function<LeafFold(const SessionColumns&, const ProblemThresholds&,
                         std::uint32_t)>
      fold_provider;
};

/// Everything retained per (epoch, metric).  The problem-cluster keys that
/// prevalence/persistence consume live in analysis.problem_cluster_keys —
/// the critical extraction publishes them, so the per-cell predicate sweep
/// runs exactly once per (epoch, metric).
struct EpochMetricSummary {
  CriticalAnalysis analysis;
};

struct PipelineResult {
  PipelineConfig config;
  std::uint32_t num_epochs = 0;

  /// per_metric[m][e] summarises metric m in epoch e.
  std::array<std::vector<EpochMetricSummary>, kNumMetrics> per_metric;

  /// Epochs flagged degraded by the ingest layer (IngestReport, see
  /// gen/robust_io.h): rows were quarantined or the feed was truncated, so
  /// these epochs' counts understate reality. Sorted ascending; empty when
  /// the trace loaded cleanly.  The analytics still run over them — this is
  /// the explicit data-quality annotation consumers check before trusting a
  /// per-epoch number (e.g. the monitor suppresses kCleared there).
  std::vector<std::uint32_t> degraded_epochs;

  [[nodiscard]] bool is_degraded(std::uint32_t epoch) const noexcept {
    return std::binary_search(degraded_epochs.begin(), degraded_epochs.end(),
                              epoch);
  }

  [[nodiscard]] const EpochMetricSummary& at(Metric m,
                                             std::uint32_t epoch) const {
    return per_metric[static_cast<std::uint8_t>(m)].at(epoch);
  }

  /// Total problem sessions for a metric across an epoch range [begin, end).
  [[nodiscard]] std::uint64_t total_problem_sessions(
      Metric m, std::uint32_t begin, std::uint32_t end) const;

  /// Mean per-epoch counts/coverage for Table 1.
  struct MetricAggregates {
    double mean_problem_clusters = 0.0;
    double mean_critical_clusters = 0.0;
    double mean_problem_coverage = 0.0;   // of problem sessions, in clusters
    double mean_critical_coverage = 0.0;  // of problem sessions, attributed
  };
  [[nodiscard]] MetricAggregates aggregates(Metric m) const;
};

[[nodiscard]] PipelineResult run_pipeline(const SessionTable& table,
                                          const PipelineConfig& config);

/// As above, carrying the ingest layer's degraded-epoch annotation through
/// to the result (`degraded` must be sorted ascending).
[[nodiscard]] PipelineResult run_pipeline(
    const SessionTable& table, const PipelineConfig& config,
    std::span<const std::uint32_t> degraded);

/// Out-of-core variant: pulls epochs one at a time from `source` (e.g. a
/// gen/columnar.h ColumnarReader) into one reused SessionColumns buffer, so
/// peak memory is O(largest epoch) instead of O(whole trace).  Epochs run
/// sequentially; `config.workers` parallelism is applied *within* each
/// epoch via lattice-expansion sharding (shards = workers when
/// config.shards is 0).  The result is identical to run_pipeline over the
/// same sessions — the column-batch fold is bit-identical to the row-wise
/// fold, and shard count never affects results.  Epochs whose read_epoch
/// reported damage land in PipelineResult::degraded_epochs.  The
/// pipeline.stream_epoch_sessions_max gauge records the largest batch held,
/// making the memory claim observable.
[[nodiscard]] PipelineResult run_pipeline_streaming(
    EpochColumnsSource& source, const PipelineConfig& config);

}  // namespace vq
