// Kernel-dispatch selector shared by every batch/SIMD entry point in core:
// the column fold kernels (columns.h) and the mask-major lattice expansion
// kernels (expand_kernels.h).  kAuto picks the widest instruction set the
// build supports (AVX2, else SSE2, else scalar); kScalar forces the portable
// fallback — differential tests run both and require bit-identical output,
// which is possible because every kernel is integer arithmetic or
// ordered-quiet float compares (no reassociated float accumulation).

#pragma once

#include <cstdint>

namespace vq {

enum class BatchKernel : std::uint8_t { kAuto = 0, kScalar = 1 };

}  // namespace vq
