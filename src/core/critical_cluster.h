// Critical-cluster identification via the phase-transition rule (paper §3.2)
// and per-session attribution.
//
// Intuition (paper Fig. 5): walking any root->leaf chain of a problem
// session's attribute lattice, the *critical cluster* is the point closest
// to the root where the problem "switches on": the cluster itself and all of
// its chain descendants are problem clusters, while removing the cluster's
// sessions leaves every ancestor below the problem threshold.
//
// Concretely, a mask m over a problem session's leaf attributes is a
// critical candidate when:
//   (a) cluster(m) is a problem cluster;
//   (b) every *significant* descendant within the leaf is a problem
//       cluster (insignificant descendants sit below the paper's
//       1000-session noise floor and cannot veto);
//   (c) for every proper non-empty subset a of m, cluster(a) minus
//       cluster(m)'s sessions is no longer a problem cluster ("once removing
//       it every ancestor is not a problem cluster");
// and m is minimal by inclusion among such masks ("closest to the root").
// When several minimal candidates exist (correlated attributes), the
// session's mass is divided equally among them, exactly as the paper does.
//
// The candidate set and the problem-cluster membership flag depend only on
// a session's full-arity leaf, so the whole analysis runs over the epoch's
// *distinct* leaves, each weighted by its problem-session count — not over
// raw sessions.
//
// Two extraction strategies produce bit-identical analyses (enforced by
// tests/test_critical_differential.cpp):
//
//  * hashed (the original): per leaf, up to 127 table.stats() hash lookups
//    and per-(leaf, mask) is_problem_cluster evaluations.
//  * indexed (default when the table carries a LeafCellIndex): per-metric
//    flag bitsets are precomputed once over the table's contiguous cell
//    vector (compute_cell_flags), and each leaf's sweep gathers its
//    precomputed projection cell ids — zero hash lookups and zero repeated
//    threshold evaluations in the inner loop; conditions (a)/(b) collapse
//    to 128-bit subset/superset bit tricks.  The per-leaf loop can shard
//    across a ThreadPool: shards take contiguous ranges of the canonical
//    (ascending-key) leaf array and their share lists are replayed in shard
//    order, reproducing the serial floating-point accumulation sequence
//    exactly — output is bit-identical for any shard count.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/cluster_engine.h"
#include "src/core/problem_cluster.h"
#include "src/core/session.h"
#include "src/util/flat_hash_map.h"

namespace vq {

class ThreadPool;

/// A critical cluster of one epoch with its attributed problem-session mass.
struct CriticalRecord {
  ClusterKey key;
  double attributed = 0.0;  // fractional problem-session mass
  ClusterStats stats;       // the cluster's own counters in this epoch
};

/// Full per-epoch, per-metric critical analysis output.
struct CriticalAnalysis {
  std::uint32_t epoch = 0;
  Metric metric = Metric::kBufRatio;

  std::uint64_t sessions = 0;          // epoch session count
  std::uint64_t problem_sessions = 0;  // epoch problem sessions (this metric)
  /// Problem sessions belonging to >= 1 problem cluster (Table 1 "problem
  /// cluster coverage" numerator).
  std::uint64_t problem_sessions_in_pc = 0;
  double global_ratio = 0.0;
  std::uint32_t num_problem_clusters = 0;
  /// Raw keys of this epoch's problem clusters, ascending (shared with the
  /// pipeline's prevalence/persistence analytics so the problem-cluster
  /// sweep runs once per (epoch, metric)).
  std::vector<std::uint64_t> problem_cluster_keys;

  /// Critical clusters sorted by attributed mass, descending.
  std::vector<CriticalRecord> criticals;
  /// Sum of attributed masses (Table 1 "critical cluster coverage"
  /// numerator); <= problem_sessions_in_pc <= problem_sessions.
  double attributed_mass = 0.0;

  [[nodiscard]] double problem_cluster_coverage() const noexcept {
    return problem_sessions == 0
               ? 0.0
               : static_cast<double>(problem_sessions_in_pc) /
                     static_cast<double>(problem_sessions);
  }
  [[nodiscard]] double critical_cluster_coverage() const noexcept {
    return problem_sessions == 0
               ? 0.0
               : attributed_mass / static_cast<double>(problem_sessions);
  }
};

/// Runs the phase-transition algorithm for one epoch and metric, dispatching
/// to the indexed strategy when the table carries a LeafCellIndex (i.e. it
/// was built by expand_fold with ClusterEngineConfig::index_cells) and to
/// the retained hashed baseline otherwise. `fold` must be the pass-1 fold of
/// the sessions the `table` was aggregated from (run_pipeline computes it
/// once per epoch and shares it across all four metrics). With `pool`
/// non-null and `shards > 1` the indexed per-leaf loop runs sharded.
[[nodiscard]] CriticalAnalysis find_critical_clusters(
    const LeafFold& fold, const EpochClusterTable& table,
    const ProblemClusterParams& params, Metric metric,
    ThreadPool* pool = nullptr, std::size_t shards = 1);

/// Session-span convenience wrapper: folds `sessions` (which must be the
/// span the `table` was aggregated from) and delegates to the overload
/// above.
[[nodiscard]] CriticalAnalysis find_critical_clusters(
    std::span<const Session> sessions, const EpochClusterTable& table,
    const ProblemThresholds& thresholds, const ProblemClusterParams& params,
    Metric metric);

/// The retained hash-lookup strategy (127 table.stats() probes per leaf);
/// the differential-testing and benchmarking baseline.
[[nodiscard]] CriticalAnalysis find_critical_clusters_hashed(
    const LeafFold& fold, const EpochClusterTable& table,
    const ProblemClusterParams& params, Metric metric);

/// The indexed strategy: precomputed flag bitsets + per-leaf cell-id
/// gathers, optionally sharded. Requires the table to carry a LeafCellIndex
/// (throws std::invalid_argument on a non-empty table without one).
[[nodiscard]] CriticalAnalysis find_critical_clusters_indexed(
    const EpochClusterTable& table, const ProblemClusterParams& params,
    Metric metric, ThreadPool* pool = nullptr, std::size_t shards = 1);

/// Per-leaf candidate evaluation output: the minimal candidate masks plus
/// whether any of the leaf's 127 projections is a problem cluster (both fall
/// out of the same flagged-mask sweep, so they are computed together).
struct LeafCandidates {
  std::vector<std::uint8_t> masks;  // minimal candidate masks, ascending
  bool in_problem_cluster = false;
};

/// Critical candidate masks + problem-cluster membership for a single leaf
/// (hash-lookup evaluation; the indexed strategy computes the same result
/// from the LeafCellIndex).
[[nodiscard]] LeafCandidates critical_leaf_candidates(
    const ClusterKey& leaf, const EpochClusterTable& table,
    const ProblemClusterParams& params, Metric metric);

/// Critical candidate masks for a single leaf (exposed for tests and the
/// HHH comparison bench). Returns minimal candidate masks, ascending.
[[nodiscard]] std::vector<std::uint8_t> critical_candidate_masks(
    const ClusterKey& leaf, const EpochClusterTable& table,
    const ProblemClusterParams& params, Metric metric);

namespace detail {

/// Shared tail of every extraction strategy: deterministic record order
/// (attributed mass descending, raw key ascending) and the attributed-mass
/// total summed in that order. Exported so the incremental delta engine
/// (src/core/incremental.cpp) finalizes with the exact same sort and
/// floating-point summation sequence as the from-scratch strategies.
void finalize_critical_analysis(CriticalAnalysis& out);

}  // namespace detail

}  // namespace vq
