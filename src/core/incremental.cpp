#include "src/core/incremental.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/thread_pool.h"

namespace vq {

namespace {

using detail::MaskBits;
using detail::filter_minimal;
using detail::strict_superset_or;

struct IncrementalMetrics {
  obs::Counter& epochs;
  obs::Counter& leaves_changed;
  obs::Counter& cells_touched;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Counter& full_flag_passes;

  static IncrementalMetrics& get() {
    obs::Registry& reg = obs::Registry::global();
    static IncrementalMetrics m{reg.counter("incremental.epochs"),
                                reg.counter("incremental.leaves_changed"),
                                reg.counter("incremental.cells_touched"),
                                reg.counter("incremental.cache_hits"),
                                reg.counter("incremental.cache_misses"),
                                reg.counter("incremental.full_flag_passes")};
    return m;
  }
};

/// Exact difference over uint32: applying it with += lands precisely on
/// `now` regardless of sign (unsigned wraparound), which is what makes
/// retire (now = 0) and update deltas a single code path.
[[nodiscard]] ClusterStats wrapped_delta(const ClusterStats& now,
                                         const ClusterStats& prev) noexcept {
  ClusterStats d;
  d.sessions = now.sessions - prev.sessions;
  for (int m = 0; m < kNumMetrics; ++m) {
    d.problems[m] = now.problems[m] - prev.problems[m];
  }
  return d;
}

[[nodiscard]] bool test_bit(const std::vector<std::uint64_t>& bits,
                            std::uint32_t id) noexcept {
  return (bits[id >> 6] >> (id & 63)) & 1u;
}

void assign_bit(std::vector<std::uint64_t>& bits, std::uint32_t id,
                bool value) noexcept {
  const std::uint64_t m = std::uint64_t{1} << (id & 63);
  if (value) {
    bits[id >> 6] |= m;
  } else {
    bits[id >> 6] &= ~m;
  }
}

[[nodiscard]] unsigned popcount128(const MaskBits& b) noexcept {
  return static_cast<unsigned>(std::popcount(b.lo) + std::popcount(b.hi));
}

/// Invokes fn(mask) for every set mask, ascending — the same order
/// filter_minimal emits (its input follows the ascending materialised-mask
/// walk), so replaying a cached candidate set reproduces the exact share
/// emission sequence of a fresh evaluation.
template <typename Fn>
void for_each_mask(const MaskBits& b, Fn&& fn) {
  for (std::uint64_t w = b.lo; w != 0; w &= w - 1) {
    fn(static_cast<std::uint8_t>(std::countr_zero(w)));
  }
  for (std::uint64_t w = b.hi; w != 0; w &= w - 1) {
    fn(static_cast<std::uint8_t>(64 + std::countr_zero(w)));
  }
}

}  // namespace

/// Per-shard sweep scratch; mirrors the indexed strategy's LeafScratch.
/// Only materialised masks are written before being read, so no per-leaf
/// clearing is needed.
struct IncrementalLattice::SweepScratch {
  std::array<const ClusterStats*, kFullMask + 1> stats_by_mask;
  std::array<std::uint32_t, kFullMask + 1> id_by_mask;
  std::vector<std::uint8_t> raw_candidates;
  std::vector<std::uint8_t> masks;
};

IncrementalLattice::IncrementalLattice(const ProblemClusterParams& params,
                                       int max_arity)
    : params_(params), masks_(lattice_masks(max_arity)) {
  if (masks_.empty()) {
    throw std::invalid_argument{
        "IncrementalLattice: max_arity must materialise at least one mask"};
  }
  for (std::size_t j = 0; j < masks_.size(); ++j) {
    mask_col_[masks_[j]] = static_cast<std::uint16_t>(j);
  }
}

std::uint32_t IncrementalLattice::slot_for(std::uint64_t leaf_key) {
  std::uint32_t& entry = leaf_slot_[leaf_key];  // slot + 1; 0 = absent
  if (entry != 0) return entry - 1;

  const auto slot = static_cast<std::uint32_t>(leaf_keys_.size());
  entry = slot + 1;
  leaf_keys_.push_back(leaf_key);
  leaf_stats_.emplace_back();
  present_seq_.push_back(0);
  row_dirty_seq_.push_back(0);
  row_dirty_.push_back(0);
  for (auto& mc : cache_) {
    mc.eval_seq.push_back(0);
    mc.eval_global.push_back(0.0);
    mc.candidates.emplace_back();
    mc.in_pc.push_back(0);
  }

  // Resolve the leaf's projection row once; every later epoch reuses the
  // dense ids (the delta hot path never hashes).
  const ClusterKey leaf = ClusterKey::from_raw(leaf_key);
  const std::size_t base = rows_.size();
  rows_.resize(base + masks_.size());
  for (std::size_t j = 0; j < masks_.size(); ++j) {
    rows_[base + j] = cells_.id_or_insert(leaf.project(masks_[j]).raw());
  }
  cell_visit_seq_.resize(cells_.size(), 0);
  return slot;
}

void IncrementalLattice::apply_leaf_delta(std::uint32_t slot,
                                          const ClusterStats& next) {
  const ClusterStats delta = wrapped_delta(next, leaf_stats_[slot]);
  for (const std::uint32_t id : row(slot)) {
    if (cell_visit_seq_[id] != seq_) {
      cell_visit_seq_[id] = seq_;
      touched_cells_.push_back(id);
      saved_cell_stats_.push_back(cells_.cell(id));
    }
    cells_.add_to(id, delta);
  }
  leaf_stats_[slot] = next;
}

void IncrementalLattice::apply_deltas(const LeafFold& fold) {
  changed_.clear();
  touched_cells_.clear();
  saved_cell_stats_.clear();
  added_active_.clear();

  // Split the fold into unchanged leaves (present-marked, no work) and the
  // changed frontier.  Accumulation only: the changed list is sorted by key
  // below before any state is mutated, so slot/cell creation order is
  // canonical regardless of hash layout.
  // vq-lint: allow(unordered-iter)
  fold.leaves.for_each([&](std::uint64_t key, const ClusterStats& stats) {
    const std::uint32_t* entry = leaf_slot_.find(key);
    if (entry != nullptr && *entry != 0) {
      const std::uint32_t slot = *entry - 1;
      present_seq_[slot] = seq_;
      if (leaf_stats_[slot] == stats) return;  // steady-state leaf
    } else if (stats == ClusterStats{}) {
      return;  // empty leaf record; from-scratch would not materialise it
    }
    changed_.emplace_back(key, stats);
  });
  std::sort(changed_.begin(), changed_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  for (const auto& [key, stats] : changed_) {
    const std::uint32_t slot = slot_for(key);
    present_seq_[slot] = seq_;
    const bool was_active = leaf_stats_[slot].sessions > 0;
    apply_leaf_delta(slot, stats);
    const bool now_active = stats.sessions > 0;
    if (!was_active && now_active) {
      added_active_.push_back(slot);
      ++delta_.leaves_added;
    } else if (was_active && !now_active) {
      ++delta_.leaves_retired;
    } else {
      ++delta_.leaves_updated;
    }
  }

  // Retire every previously-active leaf the fold no longer mentions.
  bool any_retired = false;
  for (const std::uint32_t slot : active_slots_) {
    if (present_seq_[slot] == seq_) continue;
    if (leaf_stats_[slot].sessions == 0) continue;  // retired via changed_
    apply_leaf_delta(slot, ClusterStats{});
    ++delta_.leaves_retired;
    any_retired = true;
  }
  if (any_retired || delta_.leaves_retired > 0) {
    std::erase_if(active_slots_, [&](std::uint32_t slot) {
      return leaf_stats_[slot].sessions == 0;
    });
  }
  if (!added_active_.empty()) {
    // changed_ was key-sorted, so added_active_ already ascends by key.
    const std::size_t mid = active_slots_.size();
    active_slots_.insert(active_slots_.end(), added_active_.begin(),
                         added_active_.end());
    std::inplace_merge(active_slots_.begin(), active_slots_.begin() + mid,
                       active_slots_.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return leaf_keys_[a] < leaf_keys_[b];
                       });
  }

  // Value-based invalidation: keep only cells whose stats actually changed.
  // A cell whose deltas net to zero this epoch (balanced churn — sessions
  // migrating between sibling leaves that share this projection) is
  // bit-identical to its pre-advance state, so its flags are unchanged and
  // every candidate cache covering it stays valid: eval_leaf is a pure
  // function of (row cell stats, global, params).  The survivors raise
  // their bit in the per-epoch changed bitmap the sweep probes — a bitmap
  // rather than a seq compare so the probe stays cache-resident.
  changed_bitmap_.assign((cells_.size() + 63) / 64, 0);
  std::size_t num_changed = 0;
  for (std::size_t i = 0; i < touched_cells_.size(); ++i) {
    const std::uint32_t id = touched_cells_[i];
    if (cells_.cell(id) == saved_cell_stats_[i]) continue;
    changed_bitmap_[id >> 6] |= std::uint64_t{1} << (id & 63);
    touched_cells_[num_changed++] = id;
  }
  touched_cells_.resize(num_changed);
}

void IncrementalLattice::update_flags() {
  const std::size_t words = (cells_.size() + 63) / 64;
  significant_.resize(words, 0);
  for (auto& f : flagged_) f.resize(words, 0);

  // Significance depends only on the cell's own sessions: touched-only.
  for (const std::uint32_t id : touched_cells_) {
    assign_bit(significant_, id, is_significant(cells_.cell(id), params_));
  }

  for (int m = 0; m < kNumMetrics; ++m) {
    const auto metric = static_cast<Metric>(m);
    const double global = root_.problem_ratio(metric);
    const bool full = !primed_ || global != prev_global_[m];
    delta_.full_flag_pass[m] = full;
    if (full) {
      std::uint32_t count = 0;
      const std::span<const ClusterStats> cells = cells_.cells();
      for (std::uint32_t id = 0; id < cells.size(); ++id) {
        const bool f = is_problem_cluster(cells[id], global, params_, metric);
        assign_bit(flagged_[m], id, f);
        count += f ? 1u : 0u;
      }
      num_flagged_[m] = count;
    } else {
      for (const std::uint32_t id : touched_cells_) {
        const bool f =
            is_problem_cluster(cells_.cell(id), global, params_, metric);
        if (f != test_bit(flagged_[m], id)) {
          assign_bit(flagged_[m], id, f);
          num_flagged_[m] += f ? 1 : -1;
        }
      }
    }
    prev_global_[m] = global;
  }
}

bool IncrementalLattice::eval_leaf(std::uint32_t slot, Metric metric,
                                   double global,
                                   SweepScratch& scratch) const {
  const auto mi = static_cast<std::uint8_t>(metric);
  const std::span<const std::uint32_t> cell_row = row(slot);
  MaskBits flagged;
  MaskBits significant;
  for (std::size_t j = 0; j < masks_.size(); ++j) {
    const unsigned mask = masks_[j];
    const std::uint32_t id = cell_row[j];
    scratch.stats_by_mask[mask] = &cells_.cell(id);
    scratch.id_by_mask[mask] = id;
    if (test_bit(significant_, id)) {
      significant.set(mask);
      if (test_bit(flagged_[mi], id)) flagged.set(mask);
    }
  }
  scratch.masks.clear();
  if (!flagged.any()) return false;  // (a) can never hold

  // (b): a mask is vetoed when any strict superset within the leaf is
  // significant but not flagged.
  const MaskBits bad{significant.lo & ~flagged.lo,
                     significant.hi & ~flagged.hi};
  const MaskBits veto = strict_superset_or(bad);

  scratch.raw_candidates.clear();
  for (const std::uint8_t mask : masks_) {
    if (!flagged.test(mask) || veto.test(mask)) continue;

    // (c) removing this cluster's sessions un-flags every proper ancestor.
    const ClusterStats& m_stats = *scratch.stats_by_mask[mask];
    bool down_ok = true;
    const unsigned mu = mask;
    for (unsigned a = (mu - 1) & mu; a != 0; a = (a - 1) & mu) {
      const ClusterStats remaining = scratch.stats_by_mask[a]->minus(m_stats);
      if (is_problem_cluster(remaining, global, params_, metric)) {
        down_ok = false;
        break;
      }
    }
    if (down_ok) scratch.raw_candidates.push_back(mask);
  }
  filter_minimal(scratch.raw_candidates, scratch.masks);
  return true;
}

CriticalAnalysis IncrementalLattice::extract(Metric metric, ThreadPool* pool,
                                             std::size_t shards) {
  const auto mi = static_cast<std::uint8_t>(metric);
  CriticalAnalysis out;
  out.epoch = epoch_;
  out.metric = metric;
  out.sessions = root_.sessions;
  out.problem_sessions = root_.problems[mi];
  out.global_ratio = root_.problem_ratio(metric);
  const double global = out.global_ratio;

  // Problem keys from the maintained flag bits.  Dead (zero-session) cells
  // are never flagged, so this enumerates exactly the from-scratch set; the
  // ascending sort erases the dense-id order difference.
  out.problem_cluster_keys.reserve(num_flagged_[mi]);
  for (std::size_t w = 0; w < flagged_[mi].size(); ++w) {
    for (std::uint64_t bits = flagged_[mi][w]; bits != 0; bits &= bits - 1) {
      const auto id =
          static_cast<std::uint32_t>(w * 64 + std::countr_zero(bits));
      out.problem_cluster_keys.push_back(cells_.key(id));
    }
  }
  std::sort(out.problem_cluster_keys.begin(), out.problem_cluster_keys.end());
  out.num_problem_clusters = num_flagged_[mi];

  const std::size_t num_active = active_slots_.size();

  // Same shard gating as find_critical_clusters_indexed.
  constexpr std::size_t kMinLeavesPerShard = 256;
  std::size_t num_shards = 1;
  if (pool != nullptr && shards > 1 && num_active >= 2 * kMinLeavesPerShard) {
    num_shards = std::min(shards, num_active / kMinLeavesPerShard);
  }

  struct ShardOut {
    std::vector<std::pair<std::uint32_t, double>> shares;  // (cell id, share)
    std::uint64_t in_pc_problems = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
  };
  std::vector<ShardOut> shard_out(num_shards);
  std::vector<std::size_t> bounds(num_shards + 1);
  for (std::size_t s = 0; s <= num_shards; ++s) {
    bounds[s] = num_active * s / num_shards;
  }

  MetricCache& mc = cache_[mi];
  const auto sweep_shard = [&](std::size_t shard) {
    SweepScratch scratch;
    ShardOut& so = shard_out[shard];
    for (std::size_t i = bounds[shard]; i < bounds[shard + 1]; ++i) {
      const std::uint32_t slot = active_slots_[i];
      const std::uint32_t problems = leaf_stats_[slot].problems[mi];
      if (problems == 0) continue;

      // Did any row cell change value this advance?  Probed against the
      // per-epoch changed bitmap (cache-resident, unlike the 8-byte-per-
      // cell seq array it replaced) and memoised once per advance (metrics
      // run back to back; writes are per-slot disjoint and the pool joins
      // between sweeps, so the memo is race-free).
      bool dirty;
      if (row_dirty_seq_[slot] == seq_) {
        dirty = row_dirty_[slot] != 0;
      } else {
        dirty = false;
        for (const std::uint32_t id : row(slot)) {
          if ((changed_bitmap_[id >> 6] >> (id & 63)) & 1u) {
            dirty = true;
            break;
          }
        }
        row_dirty_[slot] = dirty ? 1 : 0;
        row_dirty_seq_[slot] = seq_;
      }

      // The cached result is valid iff the leaf was swept on the previous
      // advance (every active problems>0 leaf is, and a hit re-stamps, so
      // validity is a single-advance question the bitmap answers), nothing
      // in its row changed since, and the global ratio is bit-equal.
      MaskBits candidates;
      bool in_pc;
      const bool hit = !dirty && mc.eval_seq[slot] + 1 == seq_ &&
                       mc.eval_global[slot] == global;
      if (hit) {
        candidates = mc.candidates[slot];
        in_pc = mc.in_pc[slot] != 0;
        mc.eval_seq[slot] = seq_;
        ++so.cache_hits;
      } else {
        in_pc = eval_leaf(slot, metric, global, scratch);
        for (const std::uint8_t mask : scratch.masks) candidates.set(mask);
        mc.eval_seq[slot] = seq_;
        mc.eval_global[slot] = global;
        mc.candidates[slot] = candidates;
        mc.in_pc[slot] = in_pc ? 1 : 0;
        ++so.cache_misses;
      }

      if (in_pc) so.in_pc_problems += problems;
      const unsigned count = popcount128(candidates);
      if (count == 0) continue;
      const double share =
          static_cast<double>(problems) / static_cast<double>(count);
      const std::span<const std::uint32_t> cell_row = row(slot);
      for_each_mask(candidates, [&](std::uint8_t mask) {
        so.shares.emplace_back(cell_row[mask_col_[mask]], share);
      });
    }
  };
  if (num_shards == 1) {
    sweep_shard(0);
  } else {
    pool->parallel_for(0, num_shards, sweep_shard);
  }

  // Deterministic merge — identical to the indexed strategy: shards cover
  // contiguous ranges of the ascending active-leaf array, so replaying
  // their share lists in shard order reproduces the serial floating-point
  // accumulation sequence exactly.
  attribution_.resize(cells_.size(), 0.0);
  touched_attr_.clear();
  for (const ShardOut& so : shard_out) {
    out.problem_sessions_in_pc += so.in_pc_problems;
    delta_.cache_hits += so.cache_hits;
    delta_.cache_misses += so.cache_misses;
    for (const auto& [id, share] : so.shares) {
      if (attribution_[id] == 0.0) touched_attr_.push_back(id);
      attribution_[id] += share;  // share > 0, so touched stays accurate
    }
  }

  out.criticals.reserve(touched_attr_.size());
  for (const std::uint32_t id : touched_attr_) {
    out.criticals.push_back({ClusterKey::from_raw(cells_.key(id)),
                             attribution_[id], cells_.cell(id)});
    attribution_[id] = 0.0;  // buffer is reused across metrics/epochs
  }
  detail::finalize_critical_analysis(out);
  return out;
}

std::array<CriticalAnalysis, kNumMetrics> IncrementalLattice::advance(
    const LeafFold& fold, ThreadPool* pool, std::size_t shards) {
  VQ_SPAN_EPOCH("core.incremental_advance", fold.epoch);
  ++seq_;
  epoch_ = fold.epoch;
  root_ = fold.root;
  delta_ = IncrementalDeltaStats{};
  delta_.epoch = fold.epoch;

  apply_deltas(fold);
  delta_.cells_touched = touched_cells_.size();
  update_flags();
  primed_ = true;

  std::array<CriticalAnalysis, kNumMetrics> analyses;
  for (int m = 0; m < kNumMetrics; ++m) {
    analyses[m] = extract(static_cast<Metric>(m), pool, shards);
  }

  delta_.active_leaves = active_slots_.size();
  delta_.cells = cells_.size();
  IncrementalMetrics& metrics = IncrementalMetrics::get();
  metrics.epochs.add(1);
  metrics.leaves_changed.add(delta_.leaves_added + delta_.leaves_updated +
                             delta_.leaves_retired);
  metrics.cells_touched.add(delta_.cells_touched);
  metrics.cache_hits.add(delta_.cache_hits);
  metrics.cache_misses.add(delta_.cache_misses);
  for (int m = 0; m < kNumMetrics; ++m) {
    if (delta_.full_flag_pass[m]) metrics.full_flag_passes.add(1);
  }
  return analyses;
}

}  // namespace vq
