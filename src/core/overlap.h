// Cross-metric structure of critical clusters (paper §4.3): attribute-type
// breakdown (Fig. 10) and top-k Jaccard overlap between metrics (Table 2).

#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "src/core/pipeline.h"

namespace vq {

/// Top-k critical cluster keys for a metric, ranked by total attributed
/// problem-session mass across all epochs.
[[nodiscard]] std::vector<std::uint64_t> top_critical_keys(
    const PipelineResult& result, Metric metric, std::size_t k);

/// Jaccard similarity of the top-k critical clusters for every metric pair;
/// entry [a][b] uses metrics a and b (diagonal = 1 when non-empty).
[[nodiscard]] std::array<std::array<double, kNumMetrics>, kNumMetrics>
critical_overlap_matrix(const PipelineResult& result, std::size_t k);

/// Fig. 10 breakdown: fraction of a metric's problem sessions attributed to
/// each attribute-combination type (keyed by presence mask), plus the
/// unattributed remainder.
struct TypeBreakdown {
  /// mask -> fraction of all problem sessions attributed to critical
  /// clusters with exactly this attribute combination.
  std::map<std::uint8_t, double> by_mask;
  double not_attributed = 0.0;      // in a problem cluster, but no critical
  double not_in_any_cluster = 0.0;  // outside every problem cluster
};

[[nodiscard]] TypeBreakdown critical_type_breakdown(
    const PipelineResult& result, Metric metric);

/// Human-readable label for an attribute mask, paper style:
/// "[Site, *, *, *, *, *, *]".
[[nodiscard]] std::string mask_label(std::uint8_t mask);

}  // namespace vq
