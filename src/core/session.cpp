#include "src/core/session.h"

#include <algorithm>
#include <stdexcept>

namespace vq {

std::string_view metric_name(Metric m) noexcept {
  switch (m) {
    case Metric::kBufRatio:
      return "BufRatio";
    case Metric::kBitrate:
      return "Bitrate";
    case Metric::kJoinTime:
      return "JoinTime";
    case Metric::kJoinFailure:
      return "JoinFailure";
  }
  return "?";
}

bool ProblemThresholds::is_problem(Metric m, const QualityMetrics& q) const
    noexcept {
  // A failed join never played content: buffering ratio and bitrate are
  // undefined for it, so it only counts against the JoinFailure metric
  // (the paper studies the metrics independently).
  // Thresholds are compared in float: measurements are float, and mixed
  // float/double comparison would misclassify exact-boundary values.
  switch (m) {
    case Metric::kBufRatio:
      return !q.join_failed &&
             q.buffering_ratio > static_cast<float>(max_buffering_ratio);
    case Metric::kBitrate:
      return !q.join_failed &&
             q.bitrate_kbps < static_cast<float>(min_bitrate_kbps);
    case Metric::kJoinTime:
      return !q.join_failed &&
             q.join_time_ms > static_cast<float>(max_join_time_ms);
    case Metric::kJoinFailure:
      return q.join_failed;
  }
  return false;
}

std::uint8_t ProblemThresholds::problem_bits(const QualityMetrics& q) const
    noexcept {
  std::uint8_t bits = 0;
  for (const Metric m : kAllMetrics) {
    if (is_problem(m, q)) {
      bits |= static_cast<std::uint8_t>(1u << static_cast<std::uint8_t>(m));
    }
  }
  return bits;
}

SessionTable::SessionTable(std::vector<Session> sessions)
    : sessions_(std::move(sessions)) {
  finalize();
}

std::span<const Session> SessionTable::epoch(std::uint32_t e) const {
  if (!finalized_) {
    throw std::logic_error{"SessionTable::epoch: finalize() not called"};
  }
  if (e >= num_epochs_) return {};
  return std::span<const Session>{sessions_}.subspan(
      epoch_offsets_[e], epoch_offsets_[e + 1] - epoch_offsets_[e]);
}

void SessionTable::append(const Session& s) {
  sessions_.push_back(s);
  finalized_ = false;
}

void SessionTable::finalize() {
  std::stable_sort(
      sessions_.begin(), sessions_.end(),
      [](const Session& a, const Session& b) { return a.epoch < b.epoch; });
  num_epochs_ = sessions_.empty() ? 0 : sessions_.back().epoch + 1;
  epoch_offsets_.assign(num_epochs_ + 1, 0);
  for (const auto& s : sessions_) ++epoch_offsets_[s.epoch + 1];
  for (std::uint32_t e = 0; e < num_epochs_; ++e) {
    epoch_offsets_[e + 1] += epoch_offsets_[e];
  }
  finalized_ = true;
}

}  // namespace vq
