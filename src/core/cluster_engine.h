// Per-epoch cluster lattice aggregation (paper §3.1).
//
// For every session we bump {total, per-metric problem} counters in every
// lattice cell the session belongs to: all non-empty subsets of its seven
// attribute values (127 cells, optionally capped by arity).  The result is
// one hash table per epoch mapping packed ClusterKey -> ClusterStats, plus
// the epoch's global counters (the lattice root).

#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/core/attributes.h"
#include "src/core/session.h"
#include "src/util/flat_hash_map.h"

namespace vq {

/// Counters for one cluster within one epoch.
struct ClusterStats {
  std::uint32_t sessions = 0;
  std::array<std::uint32_t, kNumMetrics> problems{};

  [[nodiscard]] double problem_ratio(Metric m) const noexcept {
    return sessions == 0
               ? 0.0
               : static_cast<double>(
                     problems[static_cast<std::uint8_t>(m)]) /
                     static_cast<double>(sessions);
  }

  ClusterStats& operator+=(const ClusterStats& o) noexcept {
    sessions += o.sessions;
    for (int m = 0; m < kNumMetrics; ++m) problems[m] += o.problems[m];
    return *this;
  }

  /// Saturating subtraction (used by the critical-cluster removal test).
  [[nodiscard]] ClusterStats minus(const ClusterStats& o) const noexcept;
};

struct ClusterEngineConfig {
  /// Largest attribute-subset size to materialise. kNumDims materialises the
  /// full 127-cell lattice (default, what the paper's method implies); lower
  /// caps trade fidelity for speed (explored in the perf benches).
  int max_arity = kNumDims;
};

/// All cluster statistics of one epoch.
struct EpochClusterTable {
  std::uint32_t epoch = 0;
  ClusterStats root;  // the epoch's global counters
  FlatMap64<ClusterStats> clusters;

  [[nodiscard]] double global_ratio(Metric m) const noexcept {
    return root.problem_ratio(m);
  }

  /// Stats for a key; zeros when the cluster never appeared.
  [[nodiscard]] ClusterStats stats(const ClusterKey& key) const noexcept;
};

/// Aggregates one epoch's sessions into a cluster table.
/// All sessions must carry the same epoch id as `epoch`.
[[nodiscard]] EpochClusterTable aggregate_epoch(
    std::span<const Session> sessions, const ProblemThresholds& thresholds,
    const ClusterEngineConfig& config, std::uint32_t epoch);

/// The non-empty attribute masks the engine materialises for a given cap,
/// in ascending mask order.
[[nodiscard]] std::vector<std::uint8_t> lattice_masks(int max_arity);

}  // namespace vq
