// Per-epoch cluster lattice aggregation (paper §3.1).
//
// For every session we bump {total, per-metric problem} counters in every
// lattice cell the session belongs to: all non-empty subsets of its seven
// attribute values (127 cells, optionally capped by arity).  The result is
// one indexed cell store per epoch mapping packed ClusterKey -> dense cell
// id -> ClusterStats, plus the epoch's global counters (the lattice root).
//
// Two aggregation strategies produce bit-identical tables:
//
//  * unfolded (the original): one pass over sessions, 127 hash bumps each.
//  * leaf-folded (default): pass 1 folds sessions onto their distinct
//    full-arity leaves (one hash bump per session); pass 2 expands each
//    *distinct* leaf once across its projections, adding the leaf's whole
//    counter block per cell.  Real workloads have far fewer distinct
//    7-attribute leaves than sessions, so pass 2 — the expensive part —
//    shrinks by the sessions-per-leaf ratio.  Pass 2 can additionally be
//    sharded across a ThreadPool: the (sorted) distinct-leaf array is cut
//    into contiguous ranges expanded into disjoint per-shard stores that
//    are merged in shard order.  Since every leaf lands in exactly one
//    shard and counter addition is commutative and associative over
//    uint32, the merged store's content is identical to the serial
//    expansion regardless of shard count or merge order.
//
// Pass 2 itself has two engines (ClusterEngineConfig::expand), again
// bit-identical in cell content:
//
//  * mask-major (default): a smallest-parent aggregation DAG.  Masks are
//    folded tier by tier in decreasing arity; each mask batch-projects the
//    cells of its cheapest already-aggregated superset (or the sorted
//    leaves) with the expand_kernels.h SIMD kernels and folds equal
//    projected keys by linear run-length scan, radix-sorting the
//    (projected key, source row) pairs first where the source order
//    doesn't already group them.  Hash-free; dense ids are assigned in the
//    canonical (mask-major, key-ascending) order, identical at any
//    worker/shard count.
//  * hashed: the original per-(leaf, mask) hash bump, retained as the
//    differential baseline; dense ids in first-touch order.
//
// Cells are stored *indexed*: dense uint32 id -> ClusterStats in one
// contiguous vector.  A hashed-path store maps key -> id through a
// FlatMap64; a mask-major store is built sorted and resolves keys by
// binary search within the key's mask group (no hash table at all).  As a
// byproduct of pass 2, expand_fold can record a LeafCellIndex — for every
// distinct leaf, the dense ids of its materialised projections — which lets
// the critical-cluster analysis (critical_cluster.h) replace its 127 hash
// lookups per leaf with plain array gathers over precomputed per-metric
// flag bitsets.

#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "src/core/attributes.h"
#include "src/core/batch_kernel.h"
#include "src/core/session.h"
#include "src/util/flat_hash_map.h"

namespace vq {

class ThreadPool;

/// Counters for one cluster within one epoch.
struct ClusterStats {
  std::uint32_t sessions = 0;
  std::array<std::uint32_t, kNumMetrics> problems{};

  [[nodiscard]] double problem_ratio(Metric m) const noexcept {
    return sessions == 0
               ? 0.0
               : static_cast<double>(
                     problems[static_cast<std::uint8_t>(m)]) /
                     static_cast<double>(sessions);
  }

  ClusterStats& operator+=(const ClusterStats& o) noexcept {
    sessions += o.sessions;
    for (int m = 0; m < kNumMetrics; ++m) problems[m] += o.problems[m];
    return *this;
  }

  friend bool operator==(const ClusterStats&, const ClusterStats&) = default;

  /// Saturating subtraction (used by the critical-cluster removal test).
  [[nodiscard]] ClusterStats minus(const ClusterStats& o) const noexcept;
};

/// Dense-id cell store: raw ClusterKey -> uint32 id with the ClusterStats
/// in one contiguous vector keyed by id.  Keeps the lookup surface of the
/// FlatMap64 it replaced (find/size/for_each/operator[]) and adds id-based
/// accessors for the indexed critical path.  Iteration order is id order.
///
/// Two modes share this type:
///  * mutable (default): ids assigned in first-touch order through a
///    FlatMap64 — the hashed expansion and the unfolded path build these.
///  * sorted (from_mask_major): keys laid out in canonical (mask-major,
///    key-ascending) id order; lookups binary-search the key's mask group,
///    so reads are hash-free, allocation-free, and safe from concurrent
///    threads; every mutator throws std::logic_error.
class CellStore {
 public:
  /// Sentinel for "no cell" in id-typed contexts.
  static constexpr std::uint32_t kNoCell = ~std::uint32_t{0};

  /// Builds a sorted-mode store from the mask-major expansion's canonical
  /// arrays: keys/stats in (mask-major, key-ascending) dense-id order, with
  /// `mask_offsets[m] .. mask_offsets[m + 1]` delimiting mask m's id range
  /// (the final entry must equal keys.size()).  Throws
  /// std::invalid_argument on inconsistent array shapes.
  static CellStore from_mask_major(
      std::vector<std::uint64_t> keys, std::vector<ClusterStats> stats,
      const std::array<std::uint32_t, kFullMask + 2>& mask_offsets);

  /// True for sorted-mode (immutable, binary-search) stores.
  [[nodiscard]] bool sorted() const noexcept { return sorted_; }

  [[nodiscard]] std::size_t size() const noexcept { return stats_.size(); }
  [[nodiscard]] bool empty() const noexcept { return stats_.empty(); }

  void reserve(std::size_t n) {
    ids_.reserve(n);
    keys_.reserve(n);
    stats_.reserve(n);
  }

  /// Dense id for `raw`, inserting a zero-stats cell on first touch.
  /// Throws std::logic_error on a sorted-mode store.
  std::uint32_t id_or_insert(std::uint64_t raw) {
    if (sorted_) throw_sorted_mutation();
    // The map stores id + 1 so the value-initialised 0 means "absent" and
    // one probe serves both hit and miss.
    std::uint32_t& slot = ids_[raw];
    if (slot == 0) {
      assert(keys_.size() < kNoCell);
      keys_.push_back(raw);
      stats_.emplace_back();
      slot = static_cast<std::uint32_t>(keys_.size());
    }
    return slot - 1;
  }

  /// Dense id for `raw`, or kNoCell when absent.
  [[nodiscard]] std::uint32_t id_of(std::uint64_t raw) const noexcept {
    if (sorted_) return sorted_id_of(raw);
    const std::uint32_t* slot = ids_.find(raw);
    return slot == nullptr ? kNoCell : *slot - 1;
  }

  /// Inserts (or finds) the cell and adds `s` to it; returns its dense id.
  std::uint32_t bump(std::uint64_t raw, const ClusterStats& s) {
    const std::uint32_t id = id_or_insert(raw);
    stats_[id] += s;
    return id;
  }

  /// Adds `s` to an existing cell by dense id — the incremental delta
  /// engine's hash-free hot path (the id was resolved once when the leaf's
  /// projection row was built).  Counter addition is over uint32, so
  /// applying a wrapped-difference delta (new - old mod 2^32) lands exactly
  /// on the new value.  Throws std::logic_error on a sorted-mode store.
  void add_to(std::uint32_t id, const ClusterStats& s) {
    if (sorted_) throw_sorted_mutation();
    stats_[id] += s;
  }

  ClusterStats& operator[](std::uint64_t raw) {
    return stats_[id_or_insert(raw)];
  }

  [[nodiscard]] const ClusterStats* find(std::uint64_t raw) const noexcept {
    const std::uint32_t id = id_of(raw);
    return id == kNoCell ? nullptr : &stats_[id];
  }

  [[nodiscard]] bool contains(std::uint64_t raw) const noexcept {
    return id_of(raw) != kNoCell;
  }

  [[nodiscard]] std::uint64_t key(std::uint32_t id) const noexcept {
    return keys_[id];
  }
  [[nodiscard]] const ClusterStats& cell(std::uint32_t id) const noexcept {
    return stats_[id];
  }
  [[nodiscard]] std::span<const std::uint64_t> keys() const noexcept {
    return keys_;
  }
  [[nodiscard]] std::span<const ClusterStats> cells() const noexcept {
    return stats_;
  }

  /// Invokes fn(raw_key, stats) for every cell in dense-id order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t id = 0; id < stats_.size(); ++id) {
      fn(keys_[id], stats_[id]);
    }
  }

  /// Adds every cell of `other` into this store in `other`'s id order
  /// (counter addition is commutative and associative, so merged content is
  /// independent of merge order — the shard-merge invariant).
  void merge_add(const CellStore& other) {
    reserve(size() + other.size());
    for (std::size_t id = 0; id < other.stats_.size(); ++id) {
      bump(other.keys_[id], other.stats_[id]);
    }
  }

 private:
  [[noreturn]] static void throw_sorted_mutation();
  [[nodiscard]] std::uint32_t sorted_id_of(std::uint64_t raw) const noexcept;

  FlatMap64<std::uint32_t> ids_;  // raw key -> dense id + 1 (mutable mode)
  std::vector<std::uint64_t> keys_;
  std::vector<ClusterStats> stats_;
  bool sorted_ = false;
  /// Sorted mode: id range of mask m is [mask_offsets_[m],
  /// mask_offsets_[m + 1]); keys_ ascend within each range.
  std::array<std::uint32_t, kFullMask + 2> mask_offsets_{};
};

/// Byproduct of the indexed pass-2 expansion: for every distinct leaf, the
/// dense cell ids of its materialised projections.  Leaves are sorted by
/// ascending raw key — the canonical order every critical-extraction
/// strategy iterates in, which is what makes sharded and serial runs
/// bit-identical (see critical_cluster.h).  Rows are row-major: row i holds
/// cell_rows[i * masks.size() + j] = id of leaf i projected onto masks[j].
struct LeafCellIndex {
  std::vector<std::uint8_t> masks;       // materialised masks, ascending
  std::vector<std::uint64_t> leaf_keys;  // distinct leaves, ascending raw
  std::vector<ClusterStats> leaf_stats;  // parallel to leaf_keys
  std::vector<std::uint32_t> cell_rows;  // leaf_keys.size() x masks.size()

  [[nodiscard]] bool empty() const noexcept { return leaf_keys.empty(); }
  [[nodiscard]] std::size_t num_leaves() const noexcept {
    return leaf_keys.size();
  }
  [[nodiscard]] std::span<const std::uint32_t> row(
      std::size_t leaf) const noexcept {
    return std::span{cell_rows}.subspan(leaf * masks.size(), masks.size());
  }
};

/// Pass-2 expansion engine selector (see the file comment).
enum class ExpandStrategy : std::uint8_t {
  /// Mask-major hash-free engine (default): batch projection kernels +
  /// radix/run-length grouping; dense ids in canonical (mask-major,
  /// key-ascending) order at any worker/shard count.
  kMaskMajor = 0,
  /// The original per-(leaf, mask) hash-bump expansion, retained as the
  /// differential baseline; dense ids in first-touch order.
  kHashed = 1,
};

struct ClusterEngineConfig {
  /// Largest attribute-subset size to materialise. kNumDims materialises the
  /// full 127-cell lattice (default, what the paper's method implies); lower
  /// caps trade fidelity for speed (explored in the perf benches).
  int max_arity = kNumDims;
  /// Leaf-folded two-pass aggregation (see file comment). Off reverts to
  /// the original session-by-session path; results are identical either
  /// way, which tests/test_fold_differential.cpp enforces.
  bool fold_leaves = true;
  /// Record the LeafCellIndex during expand_fold, enabling the indexed
  /// (gather + flag-bitset) critical-cluster path. Off leaves the index
  /// empty so the analyses fall back to the per-leaf hash-lookup path;
  /// results are identical either way, which
  /// tests/test_critical_differential.cpp enforces.
  bool index_cells = true;
  /// Pass-2 expansion engine.  Cell content (keys, stats, root) is
  /// identical either way — tests/test_expand_differential.cpp enforces it
  /// bit for bit — only the dense-id numbering differs (canonical vs
  /// first-touch), which no analysis output depends on.
  ExpandStrategy expand = ExpandStrategy::kMaskMajor;
  /// Kernel selection for the mask-major batch projections; kScalar forces
  /// the portable fallback (differential-tested against kAuto).
  BatchKernel expand_kernel = BatchKernel::kAuto;
};

/// All cluster statistics of one epoch.
struct EpochClusterTable {
  std::uint32_t epoch = 0;
  ClusterStats root;  // the epoch's global counters
  CellStore clusters;
  /// Per-leaf projection rows; empty unless built by expand_fold with
  /// ClusterEngineConfig::index_cells (the unfolded path never builds it).
  LeafCellIndex leaf_index;

  [[nodiscard]] double global_ratio(Metric m) const noexcept {
    return root.problem_ratio(m);
  }

  /// Stats for a key; zeros when the cluster never appeared.
  [[nodiscard]] ClusterStats stats(const ClusterKey& key) const noexcept;
};

/// Pass-1 output: sessions folded onto their distinct full-arity leaves.
/// `leaves` maps ClusterKey::pack(kFullMask, attrs).raw() to the combined
/// counters of every session sharing that leaf; `root` is their sum.
struct LeafFold {
  std::uint32_t epoch = 0;
  ClusterStats root;
  FlatMap64<ClusterStats> leaves;
};

/// Folds one epoch's sessions into their distinct leaves (one hash op per
/// session). All sessions must carry the same epoch id as `epoch`.
[[nodiscard]] LeafFold fold_sessions(std::span<const Session> sessions,
                                     const ProblemThresholds& thresholds,
                                     std::uint32_t epoch);

/// Expands a leaf fold into the full cluster table (pass 2), dispatching on
/// `config.expand`.  With `pool` non-null and `shards > 1` the expansion is
/// parallelised — the mask-major engine shards whole masks within each
/// arity tier, the hashed engine contiguous leaf ranges merged in range
/// order; content
/// is identical to the serial expansion either way. With
/// `config.index_cells` the table additionally carries the LeafCellIndex
/// (same dense ids for any shard count).
[[nodiscard]] EpochClusterTable expand_fold(const LeafFold& fold,
                                            const ClusterEngineConfig& config,
                                            ThreadPool* pool = nullptr,
                                            std::size_t shards = 1);

/// Aggregates one epoch's sessions into a cluster table, dispatching on
/// `config.fold_leaves`. All sessions must carry the same epoch id as
/// `epoch`.
[[nodiscard]] EpochClusterTable aggregate_epoch(
    std::span<const Session> sessions, const ProblemThresholds& thresholds,
    const ClusterEngineConfig& config, std::uint32_t epoch);

/// The original one-pass path (127 hash bumps per session); kept as the
/// differential-testing and benchmarking baseline.
[[nodiscard]] EpochClusterTable aggregate_epoch_unfolded(
    std::span<const Session> sessions, const ProblemThresholds& thresholds,
    const ClusterEngineConfig& config, std::uint32_t epoch);

/// The non-empty attribute masks the engine materialises for a given cap,
/// in ascending mask order.
[[nodiscard]] std::vector<std::uint8_t> lattice_masks(int max_arity);

}  // namespace vq
