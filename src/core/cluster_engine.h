// Per-epoch cluster lattice aggregation (paper §3.1).
//
// For every session we bump {total, per-metric problem} counters in every
// lattice cell the session belongs to: all non-empty subsets of its seven
// attribute values (127 cells, optionally capped by arity).  The result is
// one hash table per epoch mapping packed ClusterKey -> ClusterStats, plus
// the epoch's global counters (the lattice root).
//
// Two aggregation strategies produce bit-identical tables:
//
//  * unfolded (the original): one pass over sessions, 127 hash bumps each.
//  * leaf-folded (default): pass 1 folds sessions onto their distinct
//    full-arity leaves (one hash bump per session); pass 2 expands each
//    *distinct* leaf once across its projections, adding the leaf's whole
//    counter block per cell.  Real workloads have far fewer distinct
//    7-attribute leaves than sessions, so pass 2 — the expensive part —
//    shrinks by the sessions-per-leaf ratio.  Pass 2 can additionally be
//    sharded across a ThreadPool: leaves are partitioned by hash into
//    disjoint per-shard tables that are merged at the end.  Since every
//    leaf lands in exactly one shard and counter addition is commutative
//    and associative over uint32, the merged table's content is identical
//    to the serial expansion regardless of shard count or merge order.

#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/core/attributes.h"
#include "src/core/session.h"
#include "src/util/flat_hash_map.h"

namespace vq {

class ThreadPool;

/// Counters for one cluster within one epoch.
struct ClusterStats {
  std::uint32_t sessions = 0;
  std::array<std::uint32_t, kNumMetrics> problems{};

  [[nodiscard]] double problem_ratio(Metric m) const noexcept {
    return sessions == 0
               ? 0.0
               : static_cast<double>(
                     problems[static_cast<std::uint8_t>(m)]) /
                     static_cast<double>(sessions);
  }

  ClusterStats& operator+=(const ClusterStats& o) noexcept {
    sessions += o.sessions;
    for (int m = 0; m < kNumMetrics; ++m) problems[m] += o.problems[m];
    return *this;
  }

  friend bool operator==(const ClusterStats&, const ClusterStats&) = default;

  /// Saturating subtraction (used by the critical-cluster removal test).
  [[nodiscard]] ClusterStats minus(const ClusterStats& o) const noexcept;
};

struct ClusterEngineConfig {
  /// Largest attribute-subset size to materialise. kNumDims materialises the
  /// full 127-cell lattice (default, what the paper's method implies); lower
  /// caps trade fidelity for speed (explored in the perf benches).
  int max_arity = kNumDims;
  /// Leaf-folded two-pass aggregation (see file comment). Off reverts to
  /// the original session-by-session path; results are identical either
  /// way, which tests/test_fold_differential.cpp enforces.
  bool fold_leaves = true;
};

/// All cluster statistics of one epoch.
struct EpochClusterTable {
  std::uint32_t epoch = 0;
  ClusterStats root;  // the epoch's global counters
  FlatMap64<ClusterStats> clusters;

  [[nodiscard]] double global_ratio(Metric m) const noexcept {
    return root.problem_ratio(m);
  }

  /// Stats for a key; zeros when the cluster never appeared.
  [[nodiscard]] ClusterStats stats(const ClusterKey& key) const noexcept;
};

/// Pass-1 output: sessions folded onto their distinct full-arity leaves.
/// `leaves` maps ClusterKey::pack(kFullMask, attrs).raw() to the combined
/// counters of every session sharing that leaf; `root` is their sum.
struct LeafFold {
  std::uint32_t epoch = 0;
  ClusterStats root;
  FlatMap64<ClusterStats> leaves;
};

/// Folds one epoch's sessions into their distinct leaves (one hash op per
/// session). All sessions must carry the same epoch id as `epoch`.
[[nodiscard]] LeafFold fold_sessions(std::span<const Session> sessions,
                                     const ProblemThresholds& thresholds,
                                     std::uint32_t epoch);

/// Expands a leaf fold into the full cluster table (pass 2). With `pool`
/// non-null and `shards > 1`, leaves are partitioned across shards expanded
/// in parallel and merged; content is identical to the serial expansion.
[[nodiscard]] EpochClusterTable expand_fold(const LeafFold& fold,
                                            const ClusterEngineConfig& config,
                                            ThreadPool* pool = nullptr,
                                            std::size_t shards = 1);

/// Aggregates one epoch's sessions into a cluster table, dispatching on
/// `config.fold_leaves`. All sessions must carry the same epoch id as
/// `epoch`.
[[nodiscard]] EpochClusterTable aggregate_epoch(
    std::span<const Session> sessions, const ProblemThresholds& thresholds,
    const ClusterEngineConfig& config, std::uint32_t epoch);

/// The original one-pass path (127 hash bumps per session); kept as the
/// differential-testing and benchmarking baseline.
[[nodiscard]] EpochClusterTable aggregate_epoch_unfolded(
    std::span<const Session> sessions, const ProblemThresholds& thresholds,
    const ClusterEngineConfig& config, std::uint32_t epoch);

/// The non-empty attribute masks the engine materialises for a given cap,
/// in ascending mask order.
[[nodiscard]] std::vector<std::uint8_t> lattice_masks(int max_arity);

}  // namespace vq
