// Session records, quality metrics, and problem-session classification.
//
// Paper §2: each session carries four quality metrics — buffering ratio,
// average bitrate, join time, join failure — studied independently.  A
// session is a *problem session* w.r.t. a metric when it crosses the
// metric's threshold (bufratio > 5%, bitrate < 700 kbps, join time > 10 s,
// join failure as a binary event).

#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "src/core/attributes.h"

namespace vq {

/// The four quality metrics of the paper, in its reporting order.
enum class Metric : std::uint8_t {
  kBufRatio = 0,
  kBitrate = 1,
  kJoinTime = 2,
  kJoinFailure = 3,
};

inline constexpr int kNumMetrics = 4;

inline constexpr std::array<Metric, kNumMetrics> kAllMetrics = {
    Metric::kBufRatio, Metric::kBitrate, Metric::kJoinTime,
    Metric::kJoinFailure};

[[nodiscard]] std::string_view metric_name(Metric m) noexcept;

/// Per-session quality measurements.
struct QualityMetrics {
  float buffering_ratio = 0.0F;  // fraction of playing time spent buffering
  float bitrate_kbps = 0.0F;     // time-weighted average playback bitrate
  float join_time_ms = 0.0F;     // click-to-first-frame latency
  bool join_failed = false;      // no content ever played

  friend bool operator==(const QualityMetrics&, const QualityMetrics&) =
      default;
};

/// Problem-session thresholds (paper §2 defaults).
struct ProblemThresholds {
  double max_buffering_ratio = 0.05;  // > 5% buffering is a problem
  double min_bitrate_kbps = 700.0;    // < 700 kbps ("360p") is a problem
  double max_join_time_ms = 10'000.0;  // > 10 s startup is a problem

  [[nodiscard]] bool is_problem(Metric m, const QualityMetrics& q) const
      noexcept;

  /// Bitmask over all four metrics, bit i set iff the session is a problem
  /// session for metric i.
  [[nodiscard]] std::uint8_t problem_bits(const QualityMetrics& q) const
      noexcept;
};

/// One viewing session: where/what/how (attributes) plus how well (metrics).
struct Session {
  AttrVec attrs;
  std::uint32_t epoch = 0;  // one-hour bucket index, 0-based
  QualityMetrics quality;
};

/// Columnar access helpers over a session collection.
class SessionTable {
 public:
  SessionTable() = default;
  explicit SessionTable(std::vector<Session> sessions);

  [[nodiscard]] std::span<const Session> sessions() const noexcept {
    return sessions_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return sessions_.size(); }
  [[nodiscard]] bool empty() const noexcept { return sessions_.empty(); }

  /// Number of epochs spanned (max epoch + 1; 0 when empty).
  [[nodiscard]] std::uint32_t num_epochs() const noexcept {
    return num_epochs_;
  }

  /// Sessions of one epoch (table is kept sorted by epoch).
  [[nodiscard]] std::span<const Session> epoch(std::uint32_t e) const;

  void append(const Session& s);

  /// Sorts by epoch and (re)builds the epoch index; called automatically by
  /// the constructor, and required after manual append()s before epoch().
  void finalize();

 private:
  std::vector<Session> sessions_;
  std::vector<std::size_t> epoch_offsets_;  // size num_epochs_+1 once built
  std::uint32_t num_epochs_ = 0;
  bool finalized_ = false;
};

}  // namespace vq
