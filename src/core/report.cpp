#include "src/core/report.h"

#include <cstdio>

#include "src/core/anomaly.h"
#include "src/core/overlap.h"
#include "src/core/prevalence.h"
#include "src/core/whatif.h"
#include "src/stats/histogram.h"

namespace vq {

namespace {

void append_line(std::string& out, const char* format, auto... args) {
  char line[256];
  std::snprintf(line, sizeof line, format, args...);
  out += line;
  out += '\n';
}

}  // namespace

std::string render_report(const SessionTable& table,
                          const PipelineResult& result,
                          const AttributeSchema& schema,
                          const ReportOptions& options) {
  std::string out;
  out += "==================== video quality report ====================\n";
  append_line(out, "sessions: %zu   epochs: %u   (hourly)", table.size(),
              result.num_epochs);

  // ---- headline ratios ------------------------------------------------------
  out += "\n-- problem ratios (mean per hour) --\n";
  for (const Metric m : kAllMetrics) {
    double ratio = 0.0;
    for (std::uint32_t e = 0; e < result.num_epochs; ++e) {
      const auto& a = result.at(m, e).analysis;
      ratio += a.sessions == 0
                   ? 0.0
                   : static_cast<double>(a.problem_sessions) /
                         static_cast<double>(a.sessions);
    }
    ratio /= std::max(1u, result.num_epochs);
    const auto agg = result.aggregates(m);
    append_line(out,
                "%-12s %6.3f | problem clusters/h %6.1f | critical %5.1f | "
                "attributed %4.0f%%",
                std::string(metric_name(m)).c_str(), ratio,
                agg.mean_problem_clusters, agg.mean_critical_clusters,
                100.0 * agg.mean_critical_coverage);
  }

  // ---- distributions ---------------------------------------------------------
  out += "\n-- buffering ratio distribution (playing sessions) --\n";
  Histogram buffering = Histogram::logarithmic(0.001, 1.0, 8);
  std::size_t clean = 0;
  for (const Session& s : table.sessions()) {
    if (s.quality.join_failed) continue;
    if (s.quality.buffering_ratio <= 0.001F) {
      ++clean;
    } else {
      buffering.add(s.quality.buffering_ratio);
    }
  }
  append_line(out, "<= 0.1%%: %zu sessions", clean);
  out += buffering.render(36);

  // ---- top offenders ---------------------------------------------------------
  out += "\n-- top recurrent critical clusters --\n";
  for (const Metric m : kAllMetrics) {
    append_line(out, "%s:", std::string(metric_name(m)).c_str());
    for (const std::uint64_t raw :
         top_critical_keys(result, m, options.top_clusters)) {
      const ClusterKey key = ClusterKey::from_raw(raw);
      std::string line = "  " + schema.describe(key);
      if (options.annotate) {
        const std::string note = options.annotate(key);
        if (!note.empty()) line += "  <- " + note;
      }
      out += line;
      out += '\n';
    }
  }

  // ---- persistence -----------------------------------------------------------
  out += "\n-- persistence (problem clusters) --\n";
  for (const Metric m : kAllMetrics) {
    const auto report = build_prevalence(problem_cluster_keys(result, m),
                                         result.num_epochs);
    std::size_t multi_hour = 0;
    std::uint32_t longest = 0;
    for (const auto& t : report.timelines) {
      if (t.median_persistence >= 2) ++multi_hour;
      longest = std::max(longest, t.max_persistence);
    }
    append_line(out,
                "%-12s %4zu clusters | %4zu with median streak >= 2h | "
                "longest %u h",
                std::string(metric_name(m)).c_str(),
                report.timelines.size(), multi_hour, longest);
  }

  // ---- anomalies -------------------------------------------------------------
  const auto anomalies = detect_ratio_anomalies(result, {});
  out += "\n-- anomalous hours --\n";
  if (anomalies.empty()) out += "none\n";
  for (const RatioAnomaly& a : anomalies) {
    append_line(out, "epoch %3u %-12s ratio %.3f (expected %.3f, z=%.1f)",
                a.anomaly.index, std::string(metric_name(a.metric)).c_str(),
                a.anomaly.value, a.anomaly.expected, a.anomaly.zscore);
    for (const ClusterKey& suspect : a.suspects) {
      append_line(out, "    suspect %s", schema.describe(suspect).c_str());
    }
  }

  // ---- recommendations -------------------------------------------------------
  const WhatIfAnalyzer whatif{result};
  out += "\n-- what fixing the top clusters would buy --\n";
  const double fractions[] = {options.whatif_top_fraction};
  for (const Metric m : kAllMetrics) {
    const auto sweep = whatif.topk_sweep(m, RankBy::kCoverage, fractions);
    const auto reactive = whatif.reactive(m, 1);
    append_line(out,
                "%-12s top %.0f%% of clusters -> %4.1f%% alleviated | "
                "reactive(1h) -> %4.1f%%",
                std::string(metric_name(m)).c_str(),
                100.0 * options.whatif_top_fraction,
                100.0 * sweep[0].alleviated_fraction,
                100.0 * reactive.alleviated_fraction);
  }
  out += "===============================================================\n";
  return out;
}

}  // namespace vq
