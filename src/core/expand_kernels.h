// Batch kernels for the mask-major, hash-free lattice expansion
// (cluster_engine.cpp, DESIGN.md §4.10).
//
// The hashed expansion pays one random-access hash bump per (leaf, mask)
// projection — |leaves| x up to 127 probes into a table the size of the
// whole cell store.  The mask-major engine inverts the loop: for each
// lattice mask it projects *all* sorted leaf keys into a contiguous u64
// buffer (one AND+OR per key — the batch form of ClusterKey::project), then
// groups equal projected keys and folds each run of ClusterStats once.
// Everything here is the kernel layer for that plan:
//
//  * lattice_field_mask / project_keys — the projection itself, with
//    AVX2/SSE2 variants and a scalar fallback that are bit-identical
//    (pure integer AND/OR, mirroring the columns.h kernel discipline).
//  * chain_head / radix_plan / radix_sort_pairs — the grouping machinery.
//    A sorted key array groups contiguously under a projection only when
//    the dropped dimensions all sit below the mask's lowest dimension
//    (prefix-aligned); chain_head(m) names the smallest such sort order.
//    Non-aligned masks are grouped by an LSD radix sort of (projected key,
//    source row) pairs over exactly the occupied 8-bit digits of the
//    projected keys (constant digits are skipped), then accumulated with
//    the same linear run-length scan.  No hash table appears anywhere.
//
// The engine arranges these kernels as a smallest-parent aggregation DAG
// (the data-cube trick): each mask folds from the cheapest already-computed
// one-dim-larger superset's cells rather than from all leaves, so both the
// sort inputs and the run scans shrink to cell counts (cluster_engine.cpp).
//
// Determinism: radix sorting is stable and keyed only on the projected
// value, so the per-mask run order is ascending projected key — the
// canonical (mask-major, key-ascending) dense-id order — independent of
// kernel variant, worker count, or which shard processed the mask.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/core/attributes.h"
#include "src/core/batch_kernel.h"

namespace vq {

/// OR of the packed value-field bit ranges of every dimension in `mask` —
/// the bits ClusterKey::project keeps besides the low 7 mask bits.
[[nodiscard]] std::uint64_t lattice_field_mask(std::uint8_t mask) noexcept;

/// Batch projection: out[i] = mask | (keys[i] & lattice_field_mask(mask)).
/// Equivalent to ClusterKey::from_raw(keys[i]).project(mask).raw() when
/// every key carries the dimensions in `mask` — true for full-arity leaf
/// keys and for head-projected keys of any superset head.  `out` must hold
/// `n` elements and may not alias `keys`.
void project_keys(const std::uint64_t* keys, std::size_t n,
                  std::uint8_t mask, std::uint64_t* out,
                  BatchKernel kernel = BatchKernel::kAuto);

/// The chain head of a mask: `mask` with every dimension bit below its
/// lowest set bit filled in.  Sorting leaf keys by the head's projection
/// makes the projection of every mask with that head contiguous (equal
/// keys adjacent, ascending), because the head's extra dimensions are all
/// strictly less significant than the member's own.  chain_head(m) == m
/// exactly when m already includes dimension 0; masks whose chain head is
/// kFullMask (top-aligned runs) need no sort at all — the canonical
/// ascending-leaf order already groups them.
[[nodiscard]] constexpr std::uint8_t chain_head(std::uint8_t mask) noexcept {
  return static_cast<std::uint8_t>(
      mask | ((1u << (mask == 0 ? 0 : __builtin_ctz(mask))) - 1u));
}

/// Digit schedule for the LSD radix sort of keys projected by `head_mask`:
/// right-shift amounts of the 8-bit digits covering the occupied bit span,
/// least significant first.  Digits whose window contains no value-field
/// bit of the head are constant across all keys and are skipped, so a
/// narrow head (few/low dimensions) sorts in 1-3 passes instead of 8.
struct RadixPlan {
  std::array<std::uint8_t, 8> shifts{};
  int passes = 0;
};
[[nodiscard]] RadixPlan radix_plan(std::uint8_t head_mask) noexcept;

/// Stable LSD radix sort of the parallel (keys[i], rows[i]) arrays by the
/// plan's digits, ascending.  All digit histograms are gathered in one
/// read pass, then each pass scatters both arrays through the scratch
/// buffers (grown as needed); the sorted data always ends up back in
/// `keys`/`rows` (buffers are swapped, never copied).  Planned passes whose
/// digit turns out constant across the actual keys are skipped (a stable
/// identity scatter — common for small attribute cardinalities).  Returns
/// the scatter traffic in bytes — n * executed passes * (key + row width) —
/// a pure function of the key multiset and the plan, so the
/// expand.radix_bytes counter it feeds is identical at any worker/shard
/// count.
std::uint64_t radix_sort_pairs(std::vector<std::uint64_t>& keys,
                               std::vector<std::uint32_t>& rows,
                               const RadixPlan& plan,
                               std::vector<std::uint64_t>& key_scratch,
                               std::vector<std::uint32_t>& row_scratch);

/// Reusable per-worker buffers for one shard of the mask-major expansion;
/// capacity is retained across masks and epochs.
struct ExpandScratch {
  std::vector<std::uint64_t> proj;         // mask-projected source keys
  std::vector<std::uint32_t> rows;         // source row permutation
  std::vector<std::uint64_t> key_scratch;  // radix double buffer
  std::vector<std::uint32_t> row_scratch;  // radix double buffer
};

}  // namespace vq
