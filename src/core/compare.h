// A/B trace comparison: before/after view of an intervention.
//
// Pairs with remedy re-simulation (gen/tracegen remedies): given the
// pipeline results of a baseline and a treated trace, report per-metric
// problem-ratio deltas and classify critical clusters as fixed (gone in B),
// persisting, regressed (worse in B), or new. This is the evaluation a
// quality team runs after shipping a remediation.

#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/core/pipeline.h"

namespace vq {

enum class ClusterFate : std::uint8_t {
  kFixed = 0,      // critical in A, absent in B
  kImproved = 1,   // present in both, attributed mass down >= 25%
  kPersisting = 2, // present in both, mass within +/-25%
  kRegressed = 3,  // present in both, mass up >= 25%
  kNew = 4,        // absent in A, critical in B
};

[[nodiscard]] std::string_view cluster_fate_name(ClusterFate f) noexcept;

struct ClusterDelta {
  ClusterKey key;
  ClusterFate fate = ClusterFate::kPersisting;
  double mass_before = 0.0;  // attributed problem sessions across the trace
  double mass_after = 0.0;
};

struct MetricComparison {
  Metric metric = Metric::kBufRatio;
  double problem_ratio_before = 0.0;  // mean hourly
  double problem_ratio_after = 0.0;
  /// Relative change, negative = improvement.
  [[nodiscard]] double relative_change() const noexcept {
    return problem_ratio_before == 0.0
               ? 0.0
               : (problem_ratio_after - problem_ratio_before) /
                     problem_ratio_before;
  }
  /// Cluster deltas sorted by |mass change| descending.
  std::vector<ClusterDelta> clusters;
};

struct TraceComparison {
  std::array<MetricComparison, kNumMetrics> per_metric;

  [[nodiscard]] const MetricComparison& at(Metric m) const noexcept {
    return per_metric[static_cast<std::uint8_t>(m)];
  }
};

/// Compares two pipeline results over the same epoch span (typically the
/// same workload with and without an intervention). Results with different
/// epoch counts compare over the common prefix.
[[nodiscard]] TraceComparison compare_results(const PipelineResult& before,
                                              const PipelineResult& after);

}  // namespace vq
