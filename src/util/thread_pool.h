// Minimal fixed-size thread pool with a parallel_for convenience wrapper.
//
// The analysis pipeline processes epochs independently; on multi-core hosts
// parallel_for spreads epochs across workers, on single-core hosts it runs
// inline with zero thread overhead (worker count 0 or 1 short-circuits).
//
// parallel_for is re-entrant: the calling thread participates in the loop
// and only ever waits on iterations that are already running on some thread,
// so a worker may itself call parallel_for (epoch-level x shard-level
// nesting in run_pipeline) without risking queue-starvation deadlock.
// Exceptions thrown by iterations are captured (first wins), remaining
// unclaimed iterations are cancelled, and the exception is rethrown on the
// calling thread once in-flight iterations drain.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vq {

class ThreadPool {
 public:
  /// workers == 0 selects hardware_concurrency(); pool of size 1 executes
  /// submitted work on its single worker thread.
  explicit ThreadPool(std::size_t workers = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return threads_.size();
  }

  /// Enqueues a task; tasks must not throw (they run on worker threads with
  /// no channel back to the caller — wrap fallible work yourself, or use
  /// parallel_for which does).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Runs fn(i) for i in [begin, end), partitioned across workers; blocks
  /// until complete. Runs inline when the range is small or the pool has a
  /// single worker. If an iteration throws, no further iterations start and
  /// the first exception is rethrown here after in-flight ones finish.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace vq
