// Minimal fixed-size thread pool with a parallel_for convenience wrapper.
//
// The analysis pipeline processes epochs independently; on multi-core hosts
// parallel_for spreads epochs across workers, on single-core hosts it runs
// inline with zero thread overhead (worker count 0 or 1 short-circuits).
//
// parallel_for is re-entrant: the calling thread participates in the loop
// and only ever waits on iterations that are already running on some thread,
// so a worker may itself call parallel_for (epoch-level x shard-level
// nesting in run_pipeline) without risking queue-starvation deadlock.
// Exceptions thrown by iterations are captured (first wins), remaining
// unclaimed iterations are cancelled, and the exception is rethrown on the
// calling thread once in-flight iterations drain.
//
// Concurrency contract (machine-checked under Clang, see
// thread_annotations.h): queue_, in_flight_ and stopping_ are guarded by
// mutex_; threads_ is written only during construction/destruction on the
// owning thread.  This is the only component in vidqual that owns threads —
// vidqual_lint's `naked-thread` rule enforces that everything else
// parallelises through it.

#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace vq {

class ThreadPool {
 public:
  /// workers == 0 selects hardware_concurrency(); pool of size 1 executes
  /// submitted work on its single worker thread.
  explicit ThreadPool(std::size_t workers = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return threads_.size();
  }

  /// Enqueues a task; tasks must not throw (they run on worker threads with
  /// no channel back to the caller — wrap fallible work yourself, or use
  /// parallel_for which does).
  void submit(std::function<void()> task) VQ_EXCLUDES(mutex_);

  /// Blocks until every submitted task has finished.
  void wait_idle() VQ_EXCLUDES(mutex_);

  /// Runs fn(i) for i in [begin, end), partitioned across workers; blocks
  /// until complete. Runs inline when the range is small or the pool has a
  /// single worker. If an iteration throws, no further iterations start and
  /// the first exception is rethrown here after in-flight ones finish.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn)
      VQ_EXCLUDES(mutex_);

 private:
  void worker_loop() VQ_EXCLUDES(mutex_);

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_ VQ_GUARDED_BY(mutex_);
  Mutex mutex_;
  CondVar work_available_;
  CondVar idle_;
  std::size_t in_flight_ VQ_GUARDED_BY(mutex_) = 0;
  bool stopping_ VQ_GUARDED_BY(mutex_) = false;
};

}  // namespace vq
