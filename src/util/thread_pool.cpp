#include "src/util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace vq {

namespace {

// Execution-shape metrics: how the pool ran, not what the analysis found.
// All kRuntime — queue depth and batch latency depend on scheduling (and on
// whether a pool exists at all), so they must stay out of the default
// deterministic snapshot.
struct PoolMetrics {
  obs::Gauge& queue_depth_max;
  obs::Counter& batches;
  obs::Counter& tasks;
  obs::Histogram& batch_latency_ns;

  static PoolMetrics& get() {
    static PoolMetrics m{
        obs::Registry::global().gauge("threadpool.queue_depth_max",
                                      obs::Determinism::kRuntime),
        obs::Registry::global().counter("threadpool.parallel_for_batches",
                                        obs::Determinism::kRuntime),
        obs::Registry::global().counter("threadpool.tasks",
                                        obs::Determinism::kRuntime),
        obs::Registry::global().histogram(
            "threadpool.batch_latency_ns",
            // 100us, 1ms, 10ms, 100ms, 1s; overflow catches the rest.
            {100'000, 1'000'000, 10'000'000, 100'000'000, 1'000'000'000},
            obs::Determinism::kRuntime)};
    return m;
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock{mutex_};
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  PoolMetrics& metrics = PoolMetrics::get();
  {
    const MutexLock lock{mutex_};
    queue_.push_back(std::move(task));
    ++in_flight_;
    metrics.queue_depth_max.update_max(
        static_cast<std::int64_t>(queue_.size()));
  }
  metrics.tasks.add(1);
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock{mutex_};
  while (in_flight_ != 0) idle_.wait(mutex_);
}

namespace {

/// Per-parallel_for shared state. `pending` counts iterations not yet
/// finished (or cancelled); the caller waits for it to reach zero, which
/// only ever depends on iterations actively running on some thread — never
/// on helper tasks still sitting in the queue. That property is what makes
/// nested parallel_for calls deadlock-free.
///
/// Lock ordering: `mutex` here is only ever taken by a thread holding no
/// other lock (drain runs outside ThreadPool::mutex_), so it cannot
/// participate in a cycle with the pool's own mutex.
struct ForBatch {
  std::atomic<std::size_t> cursor;
  std::atomic<std::size_t> pending;
  std::size_t end;
  Mutex mutex;
  CondVar done;
  std::exception_ptr error VQ_GUARDED_BY(mutex);  // first exception wins

  ForBatch(std::size_t begin_, std::size_t end_)
      : cursor{begin_}, pending{end_ - begin_}, end{end_} {}

  void finish(std::size_t n) {
    if (pending.fetch_sub(n) == n) {
      {  // pair with the waiter's predicate check (avoids missed wakeups)
        const MutexLock lock{mutex};
      }
      done.notify_all();
    }
  }

  /// Claims and runs iterations until the cursor is exhausted. Returns
  /// normally even when an iteration throws: the exception is stored (first
  /// one wins) and every still-unclaimed iteration is cancelled.
  void drain(const std::function<void(std::size_t)>& fn) {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1);
      if (i >= end) return;
      try {
        fn(i);
      } catch (...) {
        {
          const MutexLock lock{mutex};
          if (!error) error = std::current_exception();
        }
        // Cancel everything not yet claimed; `exchange` serialises against
        // concurrent claims so each index is either run once or cancelled
        // once, never both.
        const std::size_t old = cursor.exchange(end);
        if (old < end) finish(end - old);
      }
      finish(1);
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (threads_.size() <= 1 || n == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  PoolMetrics& metrics = PoolMetrics::get();
  metrics.batches.add(1);
  // Wall-clock reads stay behind the kill switch; with obs disabled a batch
  // costs no clock syscalls.
  const std::uint64_t batch_start_ns =
      obs::enabled() ? obs::Stopwatch::now_ns() : 0;
  auto batch = std::make_shared<ForBatch>(begin, end);
  // One shared atomic cursor: participants pull indices until exhausted,
  // which load-balances uneven per-iteration costs better than static
  // chunking. The caller is one participant; helpers that only get
  // scheduled after the cursor drains exit immediately (they never touch
  // `fn`, which may be gone by then — hence the pointer capture).
  const auto* fn_ptr = &fn;
  const std::size_t helpers = std::min(threads_.size(), n - 1);
  for (std::size_t t = 0; t < helpers; ++t) {
    submit([batch, fn_ptr] {
      if (batch->pending.load() != 0) batch->drain(*fn_ptr);
    });
  }
  batch->drain(fn);
  // Copy the exception pointer out while still holding the batch mutex:
  // `error` is guarded by it, and reading it after the wait but outside the
  // lock — the pre-annotation code — is exactly the pattern the analysis
  // rejects (safe here only via a subtle release-sequence argument on
  // `pending`; holding the lock makes it unconditionally correct).
  std::exception_ptr error;
  {
    MutexLock lock{batch->mutex};
    while (batch->pending.load() != 0) batch->done.wait(batch->mutex);
    error = batch->error;
  }
  if (batch_start_ns != 0 && obs::enabled()) {
    metrics.batch_latency_ns.record(obs::Stopwatch::now_ns() -
                                    batch_start_ns);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock{mutex_};
      while (!stopping_ && queue_.empty()) work_available_.wait(mutex_);
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      const MutexLock lock{mutex_};
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace vq
