#include "src/util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace vq {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock{mutex_};
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock{mutex_};
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock{mutex_};
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (threads_.size() <= 1 || n == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // One shared atomic cursor: workers pull indices until exhausted, which
  // load-balances uneven per-epoch costs better than static chunking.
  auto cursor = std::make_shared<std::atomic<std::size_t>>(begin);
  const std::size_t tasks = std::min(threads_.size(), n);
  for (std::size_t t = 0; t < tasks; ++t) {
    submit([cursor, end, &fn] {
      for (;;) {
        const std::size_t i = cursor->fetch_add(1);
        if (i >= end) return;
        fn(i);
      }
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock{mutex_};
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      const std::lock_guard lock{mutex_};
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace vq
