#include "src/util/rng.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace vq {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256ss::Xoshiro256ss(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& word : s_) {
    x = splitmix64(x);
    word = x;
  }
  // xoshiro must not start in the all-zero state.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) {
    s_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

Xoshiro256ss::result_type Xoshiro256ss::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256ss::uniform01() noexcept {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256ss::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Xoshiro256ss::below(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless bounded sampling; bias is negligible for
  // the n (< 2^32) used in this project, and we debias with a retry loop.
  const std::uint64_t threshold = (~n + 1) % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

bool Xoshiro256ss::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Xoshiro256ss::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  const double u1 = 1.0 - uniform01();
  const double u2 = uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Xoshiro256ss::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Xoshiro256ss::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Xoshiro256ss::exponential(double mean) noexcept {
  const double u = 1.0 - uniform01();  // (0, 1]
  return -mean * std::log(u);
}

double Xoshiro256ss::pareto(double xm, double alpha) noexcept {
  const double u = 1.0 - uniform01();  // (0, 1]
  return xm * std::pow(u, -1.0 / alpha);
}

Xoshiro256ss Xoshiro256ss::derive(std::uint64_t stream_id) const noexcept {
  // Mix the current state with the stream id; deterministic and independent
  // of how far this generator has advanced only through its state snapshot.
  std::uint64_t mixed = s_[0];
  mixed = splitmix64(mixed ^ splitmix64(stream_id));
  return Xoshiro256ss{mixed};
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  if (n == 0) throw std::invalid_argument{"ZipfSampler: n must be >= 1"};
  if (exponent < 0.0) {
    throw std::invalid_argument{"ZipfSampler: exponent must be >= 0"};
  }
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t ZipfSampler::operator()(Xoshiro256ss& rng) const noexcept {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t rank) const {
  if (rank >= cdf_.size()) {
    throw std::out_of_range{"ZipfSampler::pmf: rank out of range"};
  }
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

DiscreteSampler::DiscreteSampler(std::span<const double> weights) {
  if (weights.empty()) {
    throw std::invalid_argument{"DiscreteSampler: empty weights"};
  }
  cdf_.resize(weights.size());
  double total = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] < 0.0) {
      throw std::invalid_argument{"DiscreteSampler: negative weight"};
    }
    total += weights[i];
    cdf_[i] = total;
  }
  if (total <= 0.0) {
    throw std::invalid_argument{"DiscreteSampler: weights sum to zero"};
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

std::size_t DiscreteSampler::operator()(Xoshiro256ss& rng) const noexcept {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace vq
