// Clang thread-safety annotation macros (no-ops on other compilers).
//
// These wrap Clang's `-Wthread-safety` capability analysis
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) so the compiler
// proves, at build time, which mutex protects which field and which lock a
// function requires — instead of hoping the differential tests catch every
// race.  The repo's concurrency invariants live in three places:
//
//   * util/mutex.h      — the annotated Mutex/MutexLock/CondVar primitives
//                         every vidqual component uses (never raw std::mutex
//                         outside that header).
//   * util/thread_pool  — the only component that owns threads; fully
//                         annotated.
//   * DESIGN.md §4.7    — the audit of the share-nothing shard paths that
//                         carry no locks by construction.
//
// CI builds with Clang turn the analysis into a hard error
// (-Werror=thread-safety); GCC builds compile the macros away.

#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define VQ_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define VQ_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability (e.g. a mutex wrapper).
#define VQ_CAPABILITY(x) VQ_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define VQ_SCOPED_CAPABILITY VQ_THREAD_ANNOTATION(scoped_lockable)

/// Field annotation: reads/writes require holding the given capability.
#define VQ_GUARDED_BY(x) VQ_THREAD_ANNOTATION(guarded_by(x))

/// Pointer/reference field annotation: the pointed-to data requires the
/// capability (the pointer itself may be read freely).
#define VQ_PT_GUARDED_BY(x) VQ_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function annotation: caller must hold the capability on entry (and still
/// holds it on exit).
#define VQ_REQUIRES(...) \
  VQ_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function annotation: acquires the capability; caller must not hold it.
#define VQ_ACQUIRE(...) \
  VQ_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function annotation: releases the capability; caller must hold it.
#define VQ_RELEASE(...) \
  VQ_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function annotation: acquires the capability iff the return value equals
/// the first argument.
#define VQ_TRY_ACQUIRE(...) \
  VQ_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function annotation: caller must NOT hold the capability (deadlock guard
/// for self-locking public entry points).
#define VQ_EXCLUDES(...) VQ_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares the relative acquisition order of two capabilities.
#define VQ_ACQUIRED_BEFORE(...) \
  VQ_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define VQ_ACQUIRED_AFTER(...) \
  VQ_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function annotation: returns a reference to the given capability.
#define VQ_RETURN_CAPABILITY(x) VQ_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function.  Every use must
/// carry a justification comment (vidqual_lint's suppression discipline
/// applies in spirit).
#define VQ_NO_THREAD_SAFETY_ANALYSIS \
  VQ_THREAD_ANNOTATION(no_thread_safety_analysis)
