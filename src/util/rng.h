// Deterministic pseudo-random number generation and the distributions used by
// the workload/world generators.
//
// All simulation randomness in vidqual flows through Xoshiro256ss seeded via
// splitmix64 so that every experiment is exactly reproducible from a single
// 64-bit seed.  Stream derivation (`derive`) lets independent subsystems
// (world building, event scheduling, per-session simulation) draw from
// decorrelated streams without sharing mutable state.

#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace vq {

/// splitmix64 step; used for seeding and cheap stateless hashing of ids.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Xoshiro256ss(std::uint64_t seed = 0x6a6a6a2013ULL) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~std::uint64_t{0};
  }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Standard normal via Box-Muller (cached second value).
  [[nodiscard]] double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Log-normal: exp(N(mu, sigma)). mu/sigma are in log space.
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;

  /// Exponential with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Pareto (Lomax-shifted classic): xm * U^(-1/alpha), heavy-tailed.
  [[nodiscard]] double pareto(double xm, double alpha) noexcept;

  /// A new generator whose stream is decorrelated from this one, derived
  /// deterministically from the given stream id. Does not advance *this.
  [[nodiscard]] Xoshiro256ss derive(std::uint64_t stream_id) const noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Bounded Zipf(s) sampler over ranks {0, ..., n-1} with precomputed inverse
/// CDF table. Rank 0 is the most popular item. O(log n) per sample.
class ZipfSampler {
 public:
  /// n >= 1; exponent s >= 0 (s = 0 degenerates to uniform).
  ZipfSampler(std::size_t n, double exponent);

  [[nodiscard]] std::size_t operator()(Xoshiro256ss& rng) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

  /// Probability mass of a given rank.
  [[nodiscard]] double pmf(std::size_t rank) const;

 private:
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i)
};

/// Weighted discrete sampler (alias-free, binary search over CDF).
class DiscreteSampler {
 public:
  /// Weights must be non-negative with a positive sum.
  explicit DiscreteSampler(std::span<const double> weights);

  [[nodiscard]] std::size_t operator()(Xoshiro256ss& rng) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace vq
