#include "src/util/args.h"

#include <charconv>
#include <stdexcept>

namespace vq {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.size() < 3 || arg.substr(0, 2) != "--") {
      positionals_.emplace_back(arg);
      continue;
    }
    const std::string_view body = arg.substr(2);
    if (const auto eq = body.find('='); eq != std::string_view::npos) {
      options_.push_back({std::string{body.substr(0, eq)},
                          std::string{body.substr(eq + 1)}});
      continue;
    }
    // `--key value` unless the next token is itself an option or missing.
    if (i + 1 < argc) {
      const std::string_view next = argv[i + 1];
      if (next.size() < 2 || next.substr(0, 2) != "--") {
        options_.push_back({std::string{body}, std::string{next}});
        ++i;
        continue;
      }
    }
    options_.push_back({std::string{body}, std::nullopt});
  }
}

std::string_view ArgParser::positional(std::size_t i) const noexcept {
  return i < positionals_.size() ? std::string_view{positionals_[i]}
                                 : std::string_view{};
}

std::optional<std::string_view> ArgParser::option(
    std::string_view name) const noexcept {
  for (const Option& opt : options_) {
    if (opt.name == name && opt.value.has_value()) {
      return std::string_view{*opt.value};
    }
  }
  return std::nullopt;
}

bool ArgParser::flag(std::string_view name) const noexcept {
  for (const Option& opt : options_) {
    if (opt.name == name) return true;
  }
  return false;
}

std::uint64_t ArgParser::option_u64(std::string_view name,
                                    std::uint64_t fallback) const {
  const auto value = option(name);
  if (!value.has_value()) return fallback;
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(value->data(), value->data() + value->size(), out);
  if (ec != std::errc{} || ptr != value->data() + value->size()) {
    throw std::invalid_argument{"--" + std::string{name} +
                                ": expected an unsigned integer"};
  }
  return out;
}

double ArgParser::option_double(std::string_view name,
                                double fallback) const {
  const auto value = option(name);
  if (!value.has_value()) return fallback;
  double out = 0.0;
  const auto [ptr, ec] =
      std::from_chars(value->data(), value->data() + value->size(), out);
  if (ec != std::errc{} || ptr != value->data() + value->size()) {
    throw std::invalid_argument{"--" + std::string{name} +
                                ": expected a number"};
  }
  return out;
}

std::vector<std::string> ArgParser::unknown_options(
    std::initializer_list<std::string_view> allowed) const {
  std::vector<std::string> unknown;
  for (const Option& opt : options_) {
    bool found = false;
    for (const std::string_view name : allowed) {
      if (opt.name == name) {
        found = true;
        break;
      }
    }
    if (!found) unknown.push_back(opt.name);
  }
  return unknown;
}

}  // namespace vq
