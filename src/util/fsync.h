// Durability helper for atomic temp-then-rename file commits.
//
// std::ofstream::flush() moves bytes into the page cache, not onto the
// disk: a crash after rename but before writeback can commit a zero-length
// or partial file.  fsync_path closes that window — fsync the data file,
// rename, fsync the parent directory (the rename is a directory mutation
// and needs its own barrier).  See StreamingDetector::save_checkpoint.

#pragma once

#include <filesystem>

namespace vq::detail {

/// fsyncs a file (or, with directory = true, a directory) by path.
/// Throws std::runtime_error on open/fsync failure, attributed to
/// `context`.  On platforms without POSIX fd syncing this is a no-op.
void fsync_path(const std::filesystem::path& path, bool directory,
                const char* context);

}  // namespace vq::detail
