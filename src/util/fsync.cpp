#include "src/util/fsync.h"

#include <stdexcept>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace vq::detail {

#if defined(__unix__) || defined(__APPLE__)

void fsync_path(const std::filesystem::path& path, bool directory,
                const char* context) {
  const int flags = directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY;
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) {
    throw std::runtime_error{std::string{context} + ": cannot open " +
                             path.string() + " for fsync: " +
                             std::strerror(errno)};
  }
  const int rc = ::fsync(fd);
  const int saved = errno;
  ::close(fd);
  if (rc != 0) {
    throw std::runtime_error{std::string{context} + ": fsync(" +
                             path.string() + ") failed: " +
                             std::strerror(saved)};
  }
}

#else

void fsync_path(const std::filesystem::path&, bool, const char*) {}

#endif

}  // namespace vq::detail
