// FlatMap64<V>: open-addressing hash map specialised for uint64_t keys.
//
// This is the hot-path container of the cluster engine: every session
// increments counters in up to 127 lattice cells per epoch, so lookup/insert
// must be a handful of instructions.  Linear probing over a power-of-two
// table with a reserved empty sentinel beats std::unordered_map by a wide
// margin here (no per-node allocation, no pointer chasing).
//
// Constraint: the key value FlatMap64::kEmptyKey (all ones) is reserved and
// must never be inserted.  vidqual cluster keys use at most 62 bits, so this
// never collides in practice and is checked in debug builds.
//
// The container's own internals (merge(), for_each()) necessarily walk the
// table in slot order; determinism is the *callers'* obligation, enforced at
// every call site by the flow-aware unordered-iter lint rule (the internals
// themselves no longer need a suppression: the walks neither accumulate
// floats nor append to ordered output).

#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/util/rng.h"  // splitmix64

namespace vq {

template <typename V>
class FlatMap64 {
 public:
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  FlatMap64() = default;

  explicit FlatMap64(std::size_t expected_size) { reserve(expected_size); }

  /// Number of stored entries.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Ensures capacity for at least n entries without rehashing.
  void reserve(std::size_t n) {
    std::size_t needed = 16;
    // Keep load factor below ~0.75.
    while (needed * 3 < n * 4) needed <<= 1;
    if (needed > capacity()) rehash(needed);
  }

  /// Removes all entries but keeps the allocated table.
  void clear() noexcept {
    for (auto& slot : slots_) slot.first = kEmptyKey;
    size_ = 0;
  }

  /// Returns a reference to the value for `key`, default-constructing it on
  /// first access (same contract as std::unordered_map::operator[]).
  V& operator[](std::uint64_t key) {
    assert(key != kEmptyKey && "FlatMap64: reserved sentinel key");
    if (slots_.empty() || (size_ + 1) * 4 > capacity() * 3) {
      rehash(capacity() == 0 ? 16 : capacity() * 2);
    }
    std::size_t i = probe_start(key);
    for (;;) {
      auto& slot = slots_[i];
      if (slot.first == key) return slot.second;
      if (slot.first == kEmptyKey) {
        slot.first = key;
        slot.second = V{};
        ++size_;
        return slot.second;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Returns a pointer to the value for `key`, or nullptr when absent.
  [[nodiscard]] const V* find(std::uint64_t key) const noexcept {
    if (slots_.empty()) return nullptr;
    std::size_t i = probe_start(key);
    for (;;) {
      const auto& slot = slots_[i];
      if (slot.first == key) return &slot.second;
      if (slot.first == kEmptyKey) return nullptr;
      i = (i + 1) & mask_;
    }
  }

  [[nodiscard]] V* find(std::uint64_t key) noexcept {
    return const_cast<V*>(std::as_const(*this).find(key));
  }

  [[nodiscard]] bool contains(std::uint64_t key) const noexcept {
    return find(key) != nullptr;
  }

  /// Adds every entry of `other` into this map, combining colliding values
  /// with `+=` (default-constructing absent ones first). This is the shard
  /// merge of the lattice engine: V's += must be commutative and associative
  /// for the merged content to be independent of merge order — true for the
  /// integer counters stored there.
  void merge_add(const FlatMap64& other) {
    reserve(size_ + other.size());
    other.for_each(
        [this](std::uint64_t key, const V& value) { (*this)[key] += value; });
  }

  /// Invokes fn(key, value) for every entry (unspecified order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& slot : slots_) {
      if (slot.first != kEmptyKey) fn(slot.first, slot.second);
    }
  }

  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& slot : slots_) {
      if (slot.first != kEmptyKey) fn(slot.first, slot.second);
    }
  }

 private:
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  [[nodiscard]] std::size_t probe_start(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>(splitmix64(key)) & mask_;
  }

  void rehash(std::size_t new_capacity) {
    std::vector<std::pair<std::uint64_t, V>> old = std::move(slots_);
    slots_.assign(new_capacity, {kEmptyKey, V{}});
    mask_ = new_capacity - 1;
    size_ = 0;
    for (auto& slot : old) {
      if (slot.first != kEmptyKey) (*this)[slot.first] = std::move(slot.second);
    }
  }

  std::vector<std::pair<std::uint64_t, V>> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

/// FlatSet64: companion set with the same storage discipline.
class FlatSet64 {
 public:
  FlatSet64() = default;
  explicit FlatSet64(std::size_t expected_size) : map_(expected_size) {}

  void insert(std::uint64_t key) { map_[key] = true; }
  [[nodiscard]] bool contains(std::uint64_t key) const noexcept {
    return map_.contains(key);
  }
  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] bool empty() const noexcept { return map_.empty(); }
  void clear() noexcept { map_.clear(); }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    map_.for_each([&fn](std::uint64_t key, bool) { fn(key); });
  }

 private:
  FlatMap64<bool> map_;
};

}  // namespace vq
