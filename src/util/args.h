// Minimal command-line argument parser for the vidqual CLI tool.
//
// Grammar: positionals and `--key value` / `--key=value` options (a `--key`
// followed by another option or end-of-line is a bare flag). No short
// options, no combining — deliberately small and predictable.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vq {

class ArgParser {
 public:
  /// Parses argv[1..argc); argv[0] is skipped as the program name.
  ArgParser(int argc, const char* const* argv);

  [[nodiscard]] std::size_t positional_count() const noexcept {
    return positionals_.size();
  }
  /// i-th positional; empty view when out of range.
  [[nodiscard]] std::string_view positional(std::size_t i) const noexcept;

  /// Value of `--name value` / `--name=value`; nullopt when absent or bare.
  [[nodiscard]] std::optional<std::string_view> option(
      std::string_view name) const noexcept;

  /// True when `--name` appeared (with or without a value).
  [[nodiscard]] bool flag(std::string_view name) const noexcept;

  /// Numeric conveniences; throw std::invalid_argument on malformed values.
  [[nodiscard]] std::uint64_t option_u64(std::string_view name,
                                         std::uint64_t fallback) const;
  [[nodiscard]] double option_double(std::string_view name,
                                     double fallback) const;

  /// Option names seen that are not in `allowed` (for strict commands).
  [[nodiscard]] std::vector<std::string> unknown_options(
      std::initializer_list<std::string_view> allowed) const;

 private:
  struct Option {
    std::string name;
    std::optional<std::string> value;
  };
  std::vector<std::string> positionals_;
  std::vector<Option> options_;
};

}  // namespace vq
