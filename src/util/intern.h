// StringInterner: bidirectional string <-> dense-id mapping with stable
// storage, used to give human-readable names (site/CDN/ASN labels) to the
// dense attribute-value ids the analysis engine works with.

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace vq {

class StringInterner {
 public:
  StringInterner() = default;
  // Copying would leave the map's string_view keys pointing into the source
  // interner's storage; moves keep allocations stable and are safe.
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;
  StringInterner(StringInterner&&) = default;
  StringInterner& operator=(StringInterner&&) = default;

  /// Returns the id for `name`, interning it on first sight.
  std::uint32_t intern(std::string_view name);

  /// Returns the id for `name` if already interned.
  [[nodiscard]] std::optional<std::uint32_t> lookup(
      std::string_view name) const;

  /// Returns the name for a previously returned id. Throws std::out_of_range
  /// on unknown ids.
  [[nodiscard]] std::string_view name(std::uint32_t id) const;

  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }

 private:
  // deque keeps string storage stable so string_views into it never dangle.
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, std::uint32_t> ids_;
};

}  // namespace vq
