// Annotated synchronisation primitives.
//
// vq::Mutex / vq::MutexLock / vq::CondVar are thin wrappers over the
// standard primitives whose only job is to carry the Clang thread-safety
// capability annotations (thread_annotations.h): libstdc++'s std::mutex is
// not annotated, so `-Wthread-safety` cannot reason about it.  Every
// vidqual component that needs a lock uses these wrappers — raw std::mutex
// outside this header defeats the analysis (and vidqual_lint's
// `naked-thread` rule keeps raw std::thread out of the same paths).
//
// Zero-cost by construction: on GCC the annotation macros expand to
// nothing and every wrapper method is a single inlined forwarding call.

#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "src/util/thread_annotations.h"

namespace vq {

class CondVar;

/// std::mutex carrying the Clang `capability` attribute.
class VQ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() VQ_ACQUIRE() { m_.lock(); }
  void unlock() VQ_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() VQ_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// Scoped lock (RAII) over vq::Mutex; the annotated std::lock_guard.
class VQ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) VQ_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() VQ_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to vq::Mutex.  wait() requires the mutex held
/// (which the analysis enforces at every call site); internally it adopts
/// the already-held std::mutex, waits, and releases the adoption so the
/// caller's MutexLock remains the sole owner.
///
/// No predicate overload on purpose: `while (!pred) cv.wait(mu);` keeps
/// every guarded-field read inside the caller's annotated scope, where the
/// analysis can see it (a predicate lambda would need its own annotation).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires `mu` before
  /// returning.  Subject to spurious wakeups: always wait in a loop.
  void wait(Mutex& mu) VQ_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock{mu.m_, std::adopt_lock};
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
  }

  /// wait(), but gives up after `timeout`.  Returns false on timeout, true
  /// when notified (or woken spuriously — always re-check the predicate).
  /// The timeout is a caller-supplied relative duration, not a wall-clock
  /// read: deterministic code never calls this, only deadline plumbing
  /// (bounded queues, the ingest server) does.
  template <typename Rep, typename Period>
  bool wait_for(Mutex& mu,
                std::chrono::duration<Rep, Period> timeout) VQ_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock{mu.m_, std::adopt_lock};
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();  // ownership stays with the caller's MutexLock
    return status == std::cv_status::no_timeout;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace vq
