#include "src/util/intern.h"

#include <stdexcept>

namespace vq {

std::uint32_t StringInterner::intern(std::string_view name) {
  if (const auto it = ids_.find(name); it != ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(std::string_view{names_.back()}, id);
  return id;
}

std::optional<std::uint32_t> StringInterner::lookup(
    std::string_view name) const {
  if (const auto it = ids_.find(name); it != ids_.end()) return it->second;
  return std::nullopt;
}

std::string_view StringInterner::name(std::uint32_t id) const {
  if (id >= names_.size()) {
    throw std::out_of_range{"StringInterner::name: unknown id"};
  }
  return names_[id];
}

}  // namespace vq
