#include "src/obs/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace vq::obs {

namespace {

std::atomic<bool> g_enabled{false};

}  // namespace

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

namespace detail {

std::size_t stripe_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return idx;
}

}  // namespace detail

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram(std::vector<std::uint64_t> edges)
    : edges_(std::move(edges)),
      buckets_(new std::atomic<std::uint64_t>[edges_.size() + 1]()) {
  if (!std::is_sorted(edges_.begin(), edges_.end()) ||
      std::adjacent_find(edges_.begin(), edges_.end()) != edges_.end()) {
    throw std::logic_error{
        "obs::Histogram: bucket edges must be strictly increasing"};
  }
}

void Histogram::record(std::uint64_t v) noexcept {
  // First edge >= v; everything past the last edge lands in the overflow
  // bucket at index edges_.size().
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), v);
  const auto i = static_cast<std::size_t>(it - edges_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(edges_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= edges_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

// --- Registry ----------------------------------------------------------------

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name, Determinism det) {
  const MutexLock lock{mutex_};
  const auto it = index_.find(std::string{name});
  if (it != index_.end()) {
    if (it->second.first != Kind::kCounter) {
      throw std::logic_error{"obs::Registry: '" + std::string{name} +
                             "' is already registered as a different kind"};
    }
    return *static_cast<Counter*>(it->second.second);
  }
  counters_.emplace_back(std::string{name}, det);
  CounterEntry& entry = counters_.back();
  index_.emplace(entry.name, std::make_pair(Kind::kCounter, &entry.counter));
  return entry.counter;
}

Gauge& Registry::gauge(std::string_view name, Determinism det) {
  const MutexLock lock{mutex_};
  const auto it = index_.find(std::string{name});
  if (it != index_.end()) {
    if (it->second.first != Kind::kGauge) {
      throw std::logic_error{"obs::Registry: '" + std::string{name} +
                             "' is already registered as a different kind"};
    }
    return *static_cast<Gauge*>(it->second.second);
  }
  gauges_.emplace_back(std::string{name}, det);
  GaugeEntry& entry = gauges_.back();
  index_.emplace(entry.name, std::make_pair(Kind::kGauge, &entry.gauge));
  return entry.gauge;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<std::uint64_t> edges,
                               Determinism det) {
  const MutexLock lock{mutex_};
  const auto it = index_.find(std::string{name});
  if (it != index_.end()) {
    if (it->second.first != Kind::kHistogram) {
      throw std::logic_error{"obs::Registry: '" + std::string{name} +
                             "' is already registered as a different kind"};
    }
    auto* existing = static_cast<Histogram*>(it->second.second);
    if (existing->edges() != edges) {
      throw std::logic_error{"obs::Registry: histogram '" +
                             std::string{name} +
                             "' re-registered with different bucket edges"};
    }
    return *existing;
  }
  histograms_.emplace_back(std::string{name}, det, std::move(edges));
  HistogramEntry& entry = histograms_.back();
  index_.emplace(entry.name,
                 std::make_pair(Kind::kHistogram, &entry.histogram));
  return entry.histogram;
}

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

}  // namespace

std::string Registry::snapshot_json(bool include_runtime) const {
  const MutexLock lock{mutex_};

  const auto included = [&](Determinism det) {
    return include_runtime || det == Determinism::kStable;
  };

  // Sorted name lists per section; values are read under the registry lock
  // but with relaxed atomics, which is exact because writers only add.
  std::vector<const CounterEntry*> counters;
  for (const CounterEntry& e : counters_) {
    if (included(e.det)) counters.push_back(&e);
  }
  std::vector<const GaugeEntry*> gauges;
  for (const GaugeEntry& e : gauges_) {
    if (included(e.det)) gauges.push_back(&e);
  }
  std::vector<const HistogramEntry*> histograms;
  for (const HistogramEntry& e : histograms_) {
    if (included(e.det)) histograms.push_back(&e);
  }
  const auto by_name = [](const auto* a, const auto* b) {
    return a->name < b->name;
  };
  std::sort(counters.begin(), counters.end(), by_name);
  std::sort(gauges.begin(), gauges.end(), by_name);
  std::sort(histograms.begin(), histograms.end(), by_name);

  std::string out = "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + counters[i]->name + "\": ";
    append_u64(out, counters[i]->counter.value());
  }
  out += counters.empty() ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + gauges[i]->name + "\": ";
    out += std::to_string(gauges[i]->gauge.value());
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramEntry& e = *histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + e.name + "\": {\"edges\": [";
    const auto& edges = e.histogram.edges();
    for (std::size_t k = 0; k < edges.size(); ++k) {
      if (k != 0) out += ", ";
      append_u64(out, edges[k]);
    }
    out += "], \"counts\": [";
    const auto counts = e.histogram.counts();
    for (std::size_t k = 0; k < counts.size(); ++k) {
      if (k != 0) out += ", ";
      append_u64(out, counts[k]);
    }
    out += "], \"count\": ";
    append_u64(out, e.histogram.count());
    out += ", \"sum\": ";
    append_u64(out, e.histogram.sum());
    out += "}";
  }
  out += histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void Registry::reset_values() {
  const MutexLock lock{mutex_};
  for (CounterEntry& e : counters_) e.counter.reset();
  for (GaugeEntry& e : gauges_) e.gauge.reset();
  for (HistogramEntry& e : histograms_) e.histogram.reset();
}

}  // namespace vq::obs
