// Observability: the metrics registry (DESIGN.md §4.8).
//
// Named counters, gauges, and fixed-bucket histograms, registered once and
// read out as a sorted JSON snapshot.  The design splits the cost the way a
// production pipeline needs it split:
//
//   * Registration (`Registry::counter("pipeline.epochs")`) takes the
//     registry mutex once; instrumented code caches the returned reference
//     in a function-local static, so the lock is paid once per process, not
//     per event.
//   * The hot path pays one relaxed atomic add.  Counters stripe their
//     cells across cache lines (thread -> stripe), so concurrent epoch
//     workers do not serialise on a single contended line; a snapshot sums
//     the stripes.  Integer addition is commutative, so the summed value is
//     independent of scheduling.
//   * Snapshots are deterministic by construction: entries are emitted
//     sorted by name and every published value is an integer (no float
//     formatting), so the same input produces byte-identical JSON for any
//     {workers, shards} configuration.
//
// Determinism contract: every metric is tagged at registration.
// `Determinism::kStable` metrics count *events of the analysis* (rows
// ingested, epochs processed, incidents opened) whose totals are provably
// independent of thread scheduling; these are what `snapshot_json()` emits
// by default, and what the CLI's --stats-out writes.  `kRuntime` metrics
// (queue depths, batch latencies, task counts) describe the execution and
// legitimately vary run to run; they are excluded from the default snapshot
// and opt in via `snapshot_json(/*include_runtime=*/true)`.
//
// The runtime kill switch (`set_enabled`) gates *timing* collection only —
// spans (trace.h) and duration histograms check it.  Plain counters and
// gauges stay on unconditionally: at the per-epoch/per-report granularity
// this layer instruments, their cost is one relaxed add and does not show
// up on any benchmark (EXPERIMENTS.md records the measurement).

#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace vq::obs {

/// Master runtime kill switch for timing instrumentation (spans and
/// duration histograms).  Off by default: an uninstrumented run reads no
/// clocks and buffers no events.  The CLI flips it on when --stats-out or
/// --trace-out is requested.
void set_enabled(bool on) noexcept;
[[nodiscard]] bool enabled() noexcept;

/// How a metric behaves across reruns of the same input.
enum class Determinism : std::uint8_t {
  kStable = 0,   // same value for any workers/shards setting; in --stats-out
  kRuntime = 1,  // scheduling-dependent (latency, queue depth); opt-in only
};

namespace detail {
inline constexpr std::size_t kStripes = 16;

/// Stable per-thread stripe index; threads round-robin over the stripes so
/// any fixed worker-pool size spreads across distinct cache lines.
[[nodiscard]] std::size_t stripe_index() noexcept;
}  // namespace detail

/// Monotonic event counter.  add() is one relaxed fetch_add on a
/// thread-striped cell; value() sums the stripes (exact: integer addition
/// commutes).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    cells_[detail::stripe_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, detail::kStripes> cells_{};
};

/// Last-write / high-water-mark gauge.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }

  void add(std::int64_t v) noexcept {
    value_.fetch_add(v, std::memory_order_relaxed);
  }

  /// Raises the gauge to `v` if `v` is larger (monotonic max).
  void update_max(std::int64_t v) noexcept {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram over unsigned integer samples (durations in ns,
/// row counts).  Bucket i counts samples v with edges[i-1] < v <= edges[i];
/// one implicit overflow bucket catches v > edges.back().  Integer counts
/// and an integer sum keep snapshots deterministic for kStable uses.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> edges);

  void record(std::uint64_t v) noexcept;

  [[nodiscard]] const std::vector<std::uint64_t>& edges() const noexcept {
    return edges_;
  }
  /// Per-bucket counts (edges().size() + 1 entries, last = overflow).
  [[nodiscard]] std::vector<std::uint64_t> counts() const;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

  void reset() noexcept;

 private:
  const std::vector<std::uint64_t> edges_;  // strictly increasing
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Process-wide metric registry.  Handles returned by counter()/gauge()/
/// histogram() are valid for the registry's lifetime (entries are never
/// removed); registering an existing name returns the existing handle, and
/// re-registering a name as a different kind (or a histogram with different
/// edges) throws std::logic_error — names are a global contract.
class Registry {
 public:
  [[nodiscard]] static Registry& global();

  Counter& counter(std::string_view name,
                   Determinism det = Determinism::kStable)
      VQ_EXCLUDES(mutex_);
  Gauge& gauge(std::string_view name, Determinism det = Determinism::kStable)
      VQ_EXCLUDES(mutex_);
  Histogram& histogram(std::string_view name,
                       std::vector<std::uint64_t> edges,
                       Determinism det = Determinism::kStable)
      VQ_EXCLUDES(mutex_);

  /// Sorted-by-name JSON snapshot.  Deterministic metrics only by default;
  /// include_runtime adds the scheduling-dependent ones (see the
  /// determinism contract above).  Integer values only, 2-space indent, so
  /// equal state means byte-equal output.
  [[nodiscard]] std::string snapshot_json(bool include_runtime = false) const
      VQ_EXCLUDES(mutex_);

  /// Zeroes every value while keeping all registrations (handles held by
  /// instrumented code stay valid).  Test/CLI-startup hook, not a hot path.
  void reset_values() VQ_EXCLUDES(mutex_);

 private:
  Registry() = default;

  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  // Entries hold atomics, so they are neither copyable nor movable; the
  // deques construct them in place and never relocate them.
  struct CounterEntry {
    CounterEntry(std::string n, Determinism d) : name(std::move(n)), det(d) {}
    std::string name;
    Determinism det;
    Counter counter;
  };
  struct GaugeEntry {
    GaugeEntry(std::string n, Determinism d) : name(std::move(n)), det(d) {}
    std::string name;
    Determinism det;
    Gauge gauge;
  };
  struct HistogramEntry {
    HistogramEntry(std::string n, Determinism d,
                   std::vector<std::uint64_t> edges)
        : name(std::move(n)), det(d), histogram(std::move(edges)) {}
    std::string name;
    Determinism det;
    Histogram histogram;
  };

  mutable Mutex mutex_;
  // Deques for reference stability under growth.
  std::deque<CounterEntry> counters_ VQ_GUARDED_BY(mutex_);
  std::deque<GaugeEntry> gauges_ VQ_GUARDED_BY(mutex_);
  std::deque<HistogramEntry> histograms_ VQ_GUARDED_BY(mutex_);
  // Name -> (kind, entry). Lookup only; never iterated (snapshot walks the
  // deques and sorts by name, so hash order cannot reach output).
  std::unordered_map<std::string, std::pair<Kind, void*>> index_
      VQ_GUARDED_BY(mutex_);
};

}  // namespace vq::obs
