#include "src/obs/trace.h"

#include <algorithm>
#include <ostream>

namespace vq::obs {

namespace {

// Nesting depth of live spans on this thread; gives the exporter a stable
// tiebreak so parent spans sort before the children they enclose.
thread_local std::uint32_t t_span_depth = 0;

}  // namespace

// --- TraceRecorder -----------------------------------------------------------

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

TraceRecorder::ThreadBuffer& TraceRecorder::local_buffer() {
  // The cached pointer stays valid for the process lifetime: buffers are
  // held by unique_ptr in buffers_ and never destroyed (clear() only
  // empties the event vectors).
  thread_local ThreadBuffer* t_buffer = nullptr;
  if (t_buffer == nullptr) {
    const MutexLock lock{mutex_};
    const auto tid = static_cast<std::uint32_t>(buffers_.size() + 1);
    buffers_.push_back(std::make_unique<ThreadBuffer>(tid));
    t_buffer = buffers_.back().get();
  }
  return *t_buffer;
}

void TraceRecorder::record(const char* name, std::uint32_t epoch,
                           std::uint32_t depth, std::uint64_t start_ns,
                           std::uint64_t dur_ns) {
  ThreadBuffer& buf = local_buffer();
  const MutexLock lock{buf.mutex};
  buf.events.push_back(Event{name, epoch, depth, start_ns, dur_ns});
}

void TraceRecorder::clear() {
  const MutexLock lock{mutex_};
  for (const auto& buf : buffers_) {
    const MutexLock buf_lock{buf->mutex};
    buf->events.clear();
  }
}

std::size_t TraceRecorder::size() const {
  const MutexLock lock{mutex_};
  std::size_t total = 0;
  for (const auto& buf : buffers_) {
    const MutexLock buf_lock{buf->mutex};
    total += buf->events.size();
  }
  return total;
}

std::vector<TraceRecorder::Recorded> TraceRecorder::events() const {
  std::vector<Recorded> out;
  {
    const MutexLock lock{mutex_};
    for (const auto& buf : buffers_) {
      const MutexLock buf_lock{buf->mutex};
      for (const Event& e : buf->events) {
        out.push_back(Recorded{std::string{e.name}, buf->tid, e.epoch,
                               e.depth, e.start_ns, e.dur_ns});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Recorded& a, const Recorded& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.depth < b.depth;
  });
  return out;
}

namespace {

// Microseconds with 3 decimals (nanosecond precision), without float
// formatting so output is locale- and platform-stable.
void append_us(std::string& out, std::uint64_t ns) {
  out += std::to_string(ns / 1000);
  out += '.';
  const std::uint64_t frac = ns % 1000;
  if (frac < 100) out += '0';
  if (frac < 10) out += '0';
  out += std::to_string(frac);
}

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

}  // namespace

void TraceRecorder::write_chrome_trace(std::ostream& out) const {
  const std::vector<Recorded> evs = events();
  std::uint64_t base_ns = 0;
  if (!evs.empty()) base_ns = evs.front().start_ns;  // evs sorted by start

  std::string json = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const Recorded& e = evs[i];
    json += i == 0 ? "\n" : ",\n";
    json += "{\"name\": \"";
    append_escaped(json, e.name);
    json += "\", \"cat\": \"vidqual\", \"ph\": \"X\", \"pid\": 1, \"tid\": ";
    json += std::to_string(e.tid);
    json += ", \"ts\": ";
    append_us(json, e.start_ns - base_ns);
    json += ", \"dur\": ";
    append_us(json, e.dur_ns);
    if (e.epoch != kNoEpoch) {
      json += ", \"args\": {\"epoch\": ";
      json += std::to_string(e.epoch);
      json += "}";
    }
    json += "}";
  }
  json += evs.empty() ? "]}\n" : "\n]}\n";
  out << json;
}

// --- Span --------------------------------------------------------------------

Span::Span(const char* name, std::uint32_t epoch) noexcept {
  if (!enabled()) return;
  name_ = name;
  epoch_ = epoch;
  depth_ = t_span_depth++;
  start_ns_ = Stopwatch::now_ns();
  active_ = true;
}

Span::~Span() {
  if (!active_) return;
  const std::uint64_t end_ns = Stopwatch::now_ns();
  --t_span_depth;
  try {
    TraceRecorder::global().record(name_, epoch_, depth_, start_ns_,
                                   end_ns - start_ns_);
  } catch (...) {
    // A span must never turn an observability allocation failure into a
    // pipeline failure; the event is simply dropped.
  }
}

}  // namespace vq::obs
