// Observability: stage spans and the chrome-trace exporter (DESIGN.md §4.8).
//
// `VQ_SPAN("pipeline.fold_sessions")` opens an RAII scope that records a
// (name, epoch, thread, start, duration) interval into a per-thread buffer;
// `TraceRecorder::write_chrome_trace` serialises every recorded interval as
// Chrome "X" (complete) events, loadable directly by chrome://tracing and
// Perfetto.  This is how "where does an epoch's time go" stops being a
// guess: one --trace-out flag on the CLI yields a flame view of
// ingest -> fold -> lattice -> critical extraction per epoch per thread.
//
// Cost model.  Spans are double-gated:
//   * Runtime kill switch — the Span constructor is one relaxed load of
//     obs::enabled() when tracing is off: no clock read, no buffer write,
//     no allocation.  Measured overhead of the disabled path is below noise
//     on perf_critical (EXPERIMENTS.md §Observability).
//   * Compile-time kill switch — building with -DVIDQUAL_OBS_SPANS=OFF
//     defines VIDQUAL_OBS_NO_SPANS and the VQ_SPAN macros expand to
//     nothing at all.
//
// Recording is per-thread: each thread appends to its own buffer (guarded
// by a per-buffer mutex that is uncontended in steady state — only the
// exporter ever takes it from another thread), so concurrent epoch workers
// never serialise on a shared log.  Buffers are owned by the recorder and
// survive thread exit; clear() empties them without invalidating the
// thread-local fast path.
//
// Span names must be string literals (or otherwise outlive the recorder):
// the buffer stores the pointer, not a copy — intentional, so the hot path
// never allocates.
//
// steady_clock lives here and only here: src/obs/ is the carve-out in
// vidqual_lint's wall-clock rule (timing is this component's job); naming
// a clock anywhere else in src/ is still a lint error.  Durations feed
// observability output exclusively — never analysis results — which is how
// the determinism contract (METHOD.md §9) survives an instrumented build.

#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace vq::obs {

/// The one sanctioned steady-clock reader.  Instrumented components call
/// this (or use VQ_SPAN) instead of naming a clock themselves.
struct Stopwatch {
  [[nodiscard]] static std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

/// Epoch value for spans with no epoch context.
inline constexpr std::uint32_t kNoEpoch = 0xFFFF'FFFFu;

/// Process-wide span sink.  record() is called by Span destructors on the
/// owning thread; events()/write_chrome_trace() may run concurrently from
/// any thread.
class TraceRecorder {
 public:
  [[nodiscard]] static TraceRecorder& global();

  /// One exported interval (events() resolves thread buffers and sorts).
  struct Recorded {
    std::string name;
    std::uint32_t tid = 0;    // recorder-assigned, dense from 1
    std::uint32_t epoch = kNoEpoch;
    std::uint32_t depth = 0;  // nesting depth on the recording thread
    std::uint64_t start_ns = 0;
    std::uint64_t dur_ns = 0;
  };

  /// Appends one interval to the calling thread's buffer.  `name` must
  /// point at storage that outlives the recorder (a string literal).
  void record(const char* name, std::uint32_t epoch, std::uint32_t depth,
              std::uint64_t start_ns, std::uint64_t dur_ns)
      VQ_EXCLUDES(mutex_);

  /// Drops every recorded event; buffers (and thread-local fast paths)
  /// stay valid.
  void clear() VQ_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t size() const VQ_EXCLUDES(mutex_);

  /// All recorded intervals, sorted by (start_ns, tid, depth) — i.e. in
  /// monotonic timestamp order.
  [[nodiscard]] std::vector<Recorded> events() const VQ_EXCLUDES(mutex_);

  /// Chrome trace-event JSON ("X" complete events, ts/dur in microseconds
  /// relative to the earliest recorded span), loadable by chrome://tracing
  /// and Perfetto.
  void write_chrome_trace(std::ostream& out) const VQ_EXCLUDES(mutex_);

 private:
  TraceRecorder() = default;

  struct Event {
    const char* name;
    std::uint32_t epoch;
    std::uint32_t depth;
    std::uint64_t start_ns;
    std::uint64_t dur_ns;
  };

  struct ThreadBuffer {
    explicit ThreadBuffer(std::uint32_t id) : tid(id) {}
    const std::uint32_t tid;
    Mutex mutex;
    std::vector<Event> events VQ_GUARDED_BY(mutex);
  };

  [[nodiscard]] ThreadBuffer& local_buffer() VQ_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ VQ_GUARDED_BY(mutex_);
};

/// RAII stage span.  When obs::enabled() is false, construction is a single
/// relaxed load and destruction a branch.  Use through the VQ_SPAN macros
/// so -DVIDQUAL_OBS_SPANS=OFF can compile instrumentation out entirely.
class Span {
 public:
  explicit Span(const char* name, std::uint32_t epoch = kNoEpoch) noexcept;
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint32_t epoch_ = kNoEpoch;
  std::uint32_t depth_ = 0;
  bool active_ = false;
};

}  // namespace vq::obs

#if defined(VIDQUAL_OBS_NO_SPANS)
#define VQ_SPAN(name)
#define VQ_SPAN_EPOCH(name, epoch)
#else
#define VQ_OBS_CONCAT_INNER(a, b) a##b
#define VQ_OBS_CONCAT(a, b) VQ_OBS_CONCAT_INNER(a, b)
#define VQ_SPAN(name) \
  const ::vq::obs::Span VQ_OBS_CONCAT(vq_obs_span_, __LINE__) { (name) }
#define VQ_SPAN_EPOCH(name, epoch)                           \
  const ::vq::obs::Span VQ_OBS_CONCAT(vq_obs_span_, __LINE__) { \
    (name), (epoch)                                          \
  }
#endif
