#include "src/gen/columnar.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/gen/ingest_sink.h"
#include "src/gen/trace_format.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace vq {

namespace {

using detail::kColumnarChunkHeaderBytes;
using detail::kColumnarChunkMagic;
using detail::kColumnarChunkTrailerBytes;
using detail::kColumnarFooterEntryBytes;
using detail::kColumnarFooterFixedBytes;
using detail::kColumnarFooterMagic;
using detail::kFooterEntryChecksumPos;
using detail::kFooterEntryCountPos;
using detail::kFooterEntryOffsetPos;
using detail::kColumnarMagic;
using detail::kColumnarRowBytes;
using detail::kColumnarTailBytes;
using detail::kColumnarTailMagic;
using detail::kColumnarVersion;
using detail::fnv1a;
using detail::load_pod;
using detail::write_pod;

/// One footer-index record: where epoch's chunk lives and what it holds.
struct ChunkEntry {
  std::uint32_t epoch = 0;
  std::uint64_t offset = 0;  // relative to container start
  std::uint64_t count = 0;
  std::uint64_t checksum = 0;
};

[[nodiscard]] std::string at_chunk(std::uint32_t epoch, std::uint64_t offset) {
  return " at chunk for epoch " + std::to_string(epoch) + " (offset " +
         std::to_string(offset) + ")";
}

/// Non-throwing read into a POD; false on any stream failure.
template <typename T>
[[nodiscard]] bool try_read(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  return static_cast<bool>(in);
}

[[nodiscard]] bool try_read_bytes(std::istream& in, char* dst,
                                  std::size_t n) {
  in.read(dst, static_cast<std::streamsize>(n));
  return static_cast<bool>(in);
}

/// Writes one epoch chunk; returns its payload checksum.
std::uint64_t write_chunk(std::ostream& out, std::uint32_t epoch,
                          const SessionColumns& columns) {
  const std::uint64_t count = columns.size();
  std::uint64_t h = detail::kFnvOffsetBasis;
  out.write(kColumnarChunkMagic, sizeof kColumnarChunkMagic);
  write_pod(out, epoch);
  h = fnv1a(&epoch, sizeof epoch, h);
  write_pod(out, count);
  h = fnv1a(&count, sizeof count, h);
  const auto write_column = [&](const void* data, std::size_t bytes) {
    out.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(bytes));
    h = fnv1a(data, bytes, h);
  };
  for (const auto& column : columns.attrs) {
    write_column(column.data(), count * sizeof(std::uint16_t));
  }
  write_column(columns.buffering_ratio.data(), count * sizeof(float));
  write_column(columns.bitrate_kbps.data(), count * sizeof(float));
  write_column(columns.join_time_ms.data(), count * sizeof(float));
  write_column(columns.join_failed.data(), count);
  write_pod(out, h);
  return h;
}

[[nodiscard]] std::uint64_t chunk_bytes(std::uint64_t count) {
  return kColumnarChunkHeaderBytes + count * kColumnarRowBytes +
         kColumnarChunkTrailerBytes;
}

}  // namespace

void write_trace_columnar(std::ostream& out, const SessionTable& table,
                          const AttributeSchema& schema) {
  VQ_SPAN("gen.write_trace_columnar");
  out.write(kColumnarMagic, sizeof kColumnarMagic);
  write_pod(out, kColumnarVersion);
  std::uint64_t offset =
      8 + detail::write_schema_section(out, schema, "write_trace_columnar");

  std::vector<ChunkEntry> entries;
  SessionColumns columns;
  obs::Counter& chunks_written =
      obs::Registry::global().counter("gen.columnar.chunks_written");
  for (std::uint32_t e = 0; e < table.num_epochs(); ++e) {
    const std::span<const Session> span = table.epoch(e);
    if (span.empty()) continue;
    columns.clear();
    for (const Session& s : span) columns.push_back(s);
    const std::uint64_t checksum = write_chunk(out, e, columns);
    entries.push_back(ChunkEntry{e, offset, span.size(), checksum});
    offset += chunk_bytes(span.size());
    chunks_written.add(1);
  }

  const std::uint64_t footer_offset = offset;
  out.write(kColumnarFooterMagic, sizeof kColumnarFooterMagic);
  write_pod(out, static_cast<std::uint32_t>(entries.size()));
  write_pod(out, table.num_epochs());
  std::uint64_t h = detail::kFnvOffsetBasis;
  for (const ChunkEntry& entry : entries) {
    char bytes[kColumnarFooterEntryBytes];
    std::memcpy(bytes, &entry.epoch, sizeof entry.epoch);
    std::memcpy(bytes + kFooterEntryOffsetPos, &entry.offset,
                sizeof entry.offset);
    std::memcpy(bytes + kFooterEntryCountPos, &entry.count,
                sizeof entry.count);
    std::memcpy(bytes + kFooterEntryChecksumPos, &entry.checksum,
                sizeof entry.checksum);
    out.write(bytes, sizeof bytes);
    h = fnv1a(bytes, sizeof bytes, h);
  }
  write_pod(out, h);
  write_pod(out, footer_offset);
  out.write(kColumnarTailMagic, sizeof kColumnarTailMagic);
  // Write-side failure on a caller-owned stream; no input position exists.
  // vq-lint: allow(positioned-throw)
  if (!out) throw std::runtime_error{"write_trace_columnar: write failed"};
}

void write_trace_columnar(const std::filesystem::path& path,
                          const SessionTable& table,
                          const AttributeSchema& schema) {
  std::ofstream out{path, std::ios::binary};
  if (!out) {
    throw std::runtime_error{"write_trace_columnar: cannot open " +
                             path.string()};
  }
  write_trace_columnar(out, table, schema);
  out.close();
  if (!out) {
    throw std::runtime_error{"write_trace_columnar: cannot write " +
                             path.string()};
  }
}

// --- reader ------------------------------------------------------------------

struct ColumnarReader::Impl {
  std::unique_ptr<std::ifstream> owned;
  std::istream* in = nullptr;
  RobustReadOptions options;
  AttributeSchema schema;
  std::streamoff base = 0;      // container start position in the stream
  std::uint64_t file_end = 0;   // container length, relative to base
  std::uint64_t data_start = 0;  // first chunk offset, relative to base
  std::vector<ChunkEntry> entries;
  std::vector<std::int64_t> by_epoch;  // epoch -> entries index, -1 if none
  std::uint32_t num_epochs = 0;
  std::uint64_t total_sessions = 0;
  bool footer_recovered = false;
  IngestReport report;
  detail::EpochTally tally;

  void init();
  void load_index();
  void scan_chunks();
  void adopt_entries(std::vector<ChunkEntry> found,
                     std::uint32_t footer_num_epochs);
  bool read_epoch(std::uint32_t e, SessionColumns& out);

  [[nodiscard]] std::istream& stream() noexcept { return *in; }
  void seek(std::uint64_t offset) {
    in->clear();
    in->seekg(base + static_cast<std::streamoff>(offset));
  }
};

void ColumnarReader::Impl::init() {
  VQ_SPAN("ingest.open_columnar");
  report.policy = options.policy;
  std::istream& s = stream();
  base = s.tellg();
  if (base < 0) base = 0;

  char magic[4];
  if (!try_read_bytes(s, magic, sizeof magic) ||
      std::memcmp(magic, kColumnarMagic, sizeof magic) != 0) {
    throw std::runtime_error{"read_trace_columnar: bad magic at offset 0"};
  }
  std::uint32_t version = 0;
  if (!try_read(s, version)) {
    throw std::runtime_error{
        "read_trace_columnar: truncated input at offset 4"};
  }
  if (version != kColumnarVersion) {
    throw std::runtime_error{"read_trace_columnar: unsupported version " +
                             std::to_string(version) + " at offset 4"};
  }
  std::uint64_t offset = 8;
  detail::read_schema_section(s, schema, offset, "read_trace_columnar");
  data_start = offset;

  s.clear();
  s.seekg(0, std::ios::end);
  const std::streamoff abs_end = s.tellg();
  if (abs_end < 0 || static_cast<std::uint64_t>(abs_end - base) < data_start) {
    throw std::runtime_error{
        "read_trace_columnar: stream is not seekable at offset " +
        std::to_string(data_start)};
  }
  file_end = static_cast<std::uint64_t>(abs_end - base);

  load_index();

  obs::Registry::global()
      .gauge("ingest.columnar.footer_recovered")
      .set(footer_recovered ? 1 : 0);
}

/// Loads the footer index; on damage throws under kStrict and falls back to
/// a sequential chunk scan otherwise.
void ColumnarReader::Impl::load_index() {
  std::istream& s = stream();
  std::string why;
  std::uint64_t where = file_end;
  std::vector<ChunkEntry> found;
  std::uint32_t footer_num_epochs = 0;

  const auto damaged = [&](std::string reason, std::uint64_t at) {
    why = std::move(reason);
    where = at;
    return false;
  };
  const bool ok = [&]() -> bool {
    if (file_end < data_start + kColumnarTailBytes) {
      return damaged("missing tail", file_end);
    }
    seek(file_end - kColumnarTailBytes);
    std::uint64_t footer_offset = 0;
    char tail[4];
    if (!try_read(s, footer_offset) ||
        !try_read_bytes(s, tail, sizeof tail) ||
        std::memcmp(tail, kColumnarTailMagic, sizeof tail) != 0) {
      return damaged("bad tail magic", file_end - kColumnarTailBytes);
    }
    if (footer_offset < data_start ||
        footer_offset + kColumnarFooterFixedBytes >
            file_end - kColumnarTailBytes) {
      return damaged("footer offset out of range", footer_offset);
    }
    seek(footer_offset);
    char fmagic[4];
    std::uint32_t chunk_count = 0;
    if (!try_read_bytes(s, fmagic, sizeof fmagic) ||
        std::memcmp(fmagic, kColumnarFooterMagic, sizeof fmagic) != 0 ||
        !try_read(s, chunk_count) || !try_read(s, footer_num_epochs)) {
      return damaged("bad footer header", footer_offset);
    }
    const std::uint64_t expected =
        kColumnarFooterFixedBytes +
        static_cast<std::uint64_t>(chunk_count) * kColumnarFooterEntryBytes;
    if (footer_offset + expected != file_end - kColumnarTailBytes) {
      return damaged("footer size mismatch", footer_offset);
    }
    std::vector<char> raw(static_cast<std::size_t>(chunk_count) *
                          kColumnarFooterEntryBytes);
    std::uint64_t stored = 0;
    if (!raw.empty() && !try_read_bytes(s, raw.data(), raw.size())) {
      return damaged("truncated footer", footer_offset);
    }
    if (!try_read(s, stored)) {
      return damaged("truncated footer", footer_offset);
    }
    if (fnv1a(raw.data(), raw.size()) != stored) {
      return damaged("footer checksum mismatch", footer_offset);
    }
    found.reserve(chunk_count);
    for (std::uint32_t i = 0; i < chunk_count; ++i) {
      const char* p = raw.data() + i * kColumnarFooterEntryBytes;
      ChunkEntry entry;
      entry.epoch = load_pod<std::uint32_t>(p);
      entry.offset = load_pod<std::uint64_t>(p + kFooterEntryOffsetPos);
      entry.count = load_pod<std::uint64_t>(p + kFooterEntryCountPos);
      entry.checksum = load_pod<std::uint64_t>(p + kFooterEntryChecksumPos);
      if (!found.empty() && entry.epoch <= found.back().epoch) {
        return damaged("footer epochs not ascending", footer_offset);
      }
      if (entry.offset < data_start ||
          entry.count > (footer_offset - entry.offset) / kColumnarRowBytes ||
          entry.offset + chunk_bytes(entry.count) > footer_offset) {
        return damaged("footer entry out of range", footer_offset);
      }
      found.push_back(entry);
    }
    return true;
  }();

  if (!ok) {
    if (options.policy == ErrorPolicy::kStrict) {
      throw std::runtime_error{"read_trace_columnar: damaged footer index (" +
                               why + ") at offset " + std::to_string(where)};
    }
    footer_recovered = true;
    scan_chunks();
    return;
  }
  adopt_entries(std::move(found), footer_num_epochs);
}

/// Footer-loss fallback: chunks are self-delimiting (magic + count), so the
/// index can be rebuilt by one forward pass.  Garbage mid-stream ends the
/// scan — everything after the cut is unreachable and reported truncated.
void ColumnarReader::Impl::scan_chunks() {
  std::istream& s = stream();
  std::vector<ChunkEntry> found;
  std::uint64_t pos = data_start;
  std::uint32_t prev_epoch = 0;
  while (pos + 4 <= file_end) {
    seek(pos);
    char magic[4];
    if (!try_read_bytes(s, magic, sizeof magic)) {
      // The loop guard proved these bytes exist, so a failed read is an
      // I/O fault, not EOF: everything past it is unreachable.
      report.input_truncated = true;
      break;
    }
    if (std::memcmp(magic, kColumnarFooterMagic, sizeof magic) == 0) {
      break;  // reached the (damaged) footer region: clean end of chunks
    }
    if (std::memcmp(magic, kColumnarChunkMagic, sizeof magic) != 0) {
      report.input_truncated = true;
      break;
    }
    ChunkEntry entry;
    entry.offset = pos;
    if (!try_read(s, entry.epoch) || !try_read(s, entry.count)) {
      report.input_truncated = true;
      break;
    }
    const std::uint64_t body_start = pos + kColumnarChunkHeaderBytes;
    if (entry.count > (file_end - body_start) / kColumnarRowBytes ||
        (!found.empty() && entry.epoch <= prev_epoch)) {
      report.input_truncated = true;
      break;
    }
    seek(body_start + entry.count * kColumnarRowBytes);
    if (!try_read(s, entry.checksum)) {
      report.input_truncated = true;
      break;
    }
    prev_epoch = entry.epoch;
    found.push_back(entry);
    pos += chunk_bytes(entry.count);
  }
  const std::uint32_t span =
      found.empty() ? 0 : found.back().epoch + 1;
  adopt_entries(std::move(found), span);
}

/// Installs the index: filters poisoned epochs (dense-index bombs), builds
/// the epoch lookup, and sizes the reader's view of the trace.
void ColumnarReader::Impl::adopt_entries(std::vector<ChunkEntry> found,
                                         std::uint32_t footer_num_epochs) {
  detail::RowSink sink{"read_trace_columnar", options, report};
  entries.clear();
  entries.reserve(found.size());
  std::uint32_t max_epoch_seen = 0;
  std::uint64_t chunk_ordinal = 0;
  for (const ChunkEntry& entry : found) {
    ++chunk_ordinal;
    if (entry.epoch > options.max_epoch) {
      // Counted only in the global totals, like rows whose epoch field was
      // unreadable: the epoch id itself is the poison.
      report.rows_read += entry.count;
      sink.reject(chunk_ordinal, entry.offset, RowErrorKind::kBadNumber,
                  "epoch " + std::to_string(entry.epoch) +
                      " out of range (max " +
                      std::to_string(options.max_epoch) + ")" +
                      at_chunk(entry.epoch, entry.offset),
                  entry.count);
      continue;
    }
    entries.push_back(entry);
    max_epoch_seen = std::max(max_epoch_seen, entry.epoch);
    total_sessions += entry.count;
  }
  num_epochs = footer_num_epochs;
  if (!entries.empty() && max_epoch_seen + 1 > num_epochs) {
    num_epochs = max_epoch_seen + 1;
  }
  if (options.max_epoch < UINT32_MAX) {
    num_epochs = std::min(num_epochs, options.max_epoch + 1);
  }
  if (entries.empty() && footer_num_epochs == 0) num_epochs = 0;

  by_epoch.assign(num_epochs, -1);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    by_epoch[entries[i].epoch] = static_cast<std::int64_t>(i);
  }
}

bool ColumnarReader::Impl::read_epoch(std::uint32_t e, SessionColumns& out) {
  out.clear();
  if (e >= num_epochs) {
    // vq-lint: allow(positioned-throw)
    throw std::out_of_range{"read_trace_columnar: epoch " +
                            std::to_string(e) + " out of range (num_epochs " +
                            std::to_string(num_epochs) + ")"};
  }
  const std::int64_t idx = by_epoch[e];
  if (idx < 0) return false;  // epoch had no sessions: empty, not degraded
  const ChunkEntry& entry = entries[static_cast<std::size_t>(idx)];
  VQ_SPAN_EPOCH("ingest.read_epoch", e);
  std::istream& s = stream();
  detail::RowSink sink{"read_trace_columnar", options, report};

  const auto chunk_fail = [&](RowErrorKind kind, std::string detail_msg) {
    report.rows_read += entry.count;
    tally.quarantined(entry.epoch, entry.count);
    if (kind == RowErrorKind::kTruncated || kind == RowErrorKind::kIoError) {
      report.input_truncated = true;
    }
    sink.reject(static_cast<std::uint64_t>(idx) + 1, entry.offset, kind,
                std::move(detail_msg), entry.count);
    out.clear();
    return true;
  };

  seek(entry.offset);
  char magic[4];
  std::uint32_t chunk_epoch = 0;
  std::uint64_t count = 0;
  if (!try_read_bytes(s, magic, sizeof magic) || !try_read(s, chunk_epoch) ||
      !try_read(s, count)) {
    return chunk_fail(s.bad() ? RowErrorKind::kIoError
                              : RowErrorKind::kTruncated,
                      "truncated chunk" + at_chunk(entry.epoch, entry.offset));
  }
  if (std::memcmp(magic, kColumnarChunkMagic, sizeof magic) != 0 ||
      chunk_epoch != entry.epoch || count != entry.count) {
    return chunk_fail(RowErrorKind::kBadChecksum,
                      "chunk header does not match footer index" +
                          at_chunk(entry.epoch, entry.offset));
  }

  std::uint64_t h = detail::kFnvOffsetBasis;
  h = fnv1a(&chunk_epoch, sizeof chunk_epoch, h);
  h = fnv1a(&count, sizeof count, h);
  const std::size_t n = static_cast<std::size_t>(count);
  bool short_read = false;
  const auto read_column = [&](void* data, std::size_t bytes) {
    if (short_read) return;
    if (!try_read_bytes(s, static_cast<char*>(data), bytes)) {
      short_read = true;
      return;
    }
    h = fnv1a(data, bytes, h);
  };
  for (auto& column : out.attrs) {
    column.resize(n);
    read_column(column.data(), n * sizeof(std::uint16_t));
  }
  out.buffering_ratio.resize(n);
  read_column(out.buffering_ratio.data(), n * sizeof(float));
  out.bitrate_kbps.resize(n);
  read_column(out.bitrate_kbps.data(), n * sizeof(float));
  out.join_time_ms.resize(n);
  read_column(out.join_time_ms.data(), n * sizeof(float));
  out.join_failed.resize(n);
  read_column(out.join_failed.data(), n);
  std::uint64_t stored = 0;
  if (short_read || !try_read(s, stored)) {
    return chunk_fail(s.bad() ? RowErrorKind::kIoError
                              : RowErrorKind::kTruncated,
                      "truncated chunk" + at_chunk(entry.epoch, entry.offset));
  }
  if (stored != h || stored != entry.checksum) {
    return chunk_fail(RowErrorKind::kBadChecksum,
                      "chunk checksum mismatch" +
                          at_chunk(entry.epoch, entry.offset));
  }
  obs::Registry::global().counter("ingest.columnar.chunks_read").add(1);

  // Row-level validation, mirroring the binary reader's sequence: attribute
  // ids against the schema, then metric finiteness, then the join flag.
  report.rows_read += count;
  const bool best_effort = options.policy == ErrorPolicy::kBestEffort;
  std::vector<std::uint8_t> bad(n, 0);
  std::uint64_t nbad = 0;
  const auto row_pos = [&](std::size_t r) {
    return " at record " + std::to_string(r + 1) + " in chunk for epoch " +
           std::to_string(entry.epoch) + " (offset " +
           std::to_string(entry.offset) + ")";
  };
  for (std::size_t r = 0; r < n; ++r) {
    bool rejected = false;
    for (int d = 0; d < kNumDims && !rejected; ++d) {
      const auto dim = static_cast<AttrDim>(d);
      const std::uint16_t id = out.attrs[static_cast<std::size_t>(d)][r];
      if (id >= schema.cardinality(dim)) {
        tally.quarantined(entry.epoch);
        sink.reject(r + 1, entry.offset, RowErrorKind::kSchemaViolation,
                    "attribute id outside schema (" +
                        std::string{dim_name(dim)} + "=" +
                        std::to_string(id) + ")" + row_pos(r));
        rejected = true;
      }
    }
    const auto check_metric = [&](float& value, std::string_view label) {
      if (rejected || std::isfinite(value)) return;
      if (best_effort) {
        report.fields_clamped += 1;
        value = 0.0F;
        return;
      }
      tally.quarantined(entry.epoch);
      sink.reject(r + 1, entry.offset, RowErrorKind::kNonFinite,
                  "non-finite " + std::string{label} + row_pos(r));
      rejected = true;
    };
    check_metric(out.buffering_ratio[r], "buffering_ratio");
    check_metric(out.bitrate_kbps[r], "bitrate_kbps");
    check_metric(out.join_time_ms[r], "join_time_ms");
    if (!rejected && out.join_failed[r] > 1) {
      if (best_effort) {
        report.fields_clamped += 1;
        out.join_failed[r] = 1;
      } else {
        tally.quarantined(entry.epoch);
        sink.reject(r + 1, entry.offset, RowErrorKind::kBadFlag,
                    "join_failed byte must be 0 or 1, got " +
                        std::to_string(out.join_failed[r]) + row_pos(r));
        rejected = true;
      }
    }
    if (rejected) {
      bad[r] = 1;
      ++nbad;
    }
  }

  const std::uint64_t kept = count - nbad;
  tally.kept(entry.epoch, kept);
  report.rows_kept += kept;
  if (nbad > 0) {
    const auto compact = [&](auto& column) {
      std::size_t w = 0;
      for (std::size_t r = 0; r < n; ++r) {
        if (bad[r] == 0) column[w++] = column[r];
      }
      column.resize(w);
    };
    for (auto& column : out.attrs) compact(column);
    compact(out.buffering_ratio);
    compact(out.bitrate_kbps);
    compact(out.join_time_ms);
    compact(out.join_failed);
  }
  return nbad > 0;
}

ColumnarReader::ColumnarReader(std::istream& in,
                               const RobustReadOptions& options)
    : impl_(std::make_unique<Impl>()) {
  impl_->in = &in;
  impl_->options = options;
  impl_->init();
}

ColumnarReader::ColumnarReader(const std::filesystem::path& path,
                               const RobustReadOptions& options)
    : impl_(std::make_unique<Impl>()) {
  impl_->owned = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!*impl_->owned) {
    throw std::runtime_error{"read_trace_columnar: cannot open " +
                             path.string()};
  }
  impl_->in = impl_->owned.get();
  impl_->options = options;
  impl_->init();
}

ColumnarReader::~ColumnarReader() = default;

std::uint32_t ColumnarReader::num_epochs() const { return impl_->num_epochs; }

bool ColumnarReader::read_epoch(std::uint32_t e, SessionColumns& out) {
  return impl_->read_epoch(e, out);
}

const AttributeSchema& ColumnarReader::schema() const noexcept {
  return impl_->schema;
}

AttributeSchema ColumnarReader::take_schema() noexcept {
  return std::move(impl_->schema);
}

std::uint64_t ColumnarReader::total_sessions() const noexcept {
  return impl_->total_sessions;
}

bool ColumnarReader::footer_recovered() const noexcept {
  return impl_->footer_recovered;
}

IngestReport ColumnarReader::report() const {
  IngestReport out = impl_->report;
  impl_->tally.fold_into(out);
  return out;
}

// --- materializing shims -----------------------------------------------------

namespace {

RobustLoadedTrace materialize(ColumnarReader& reader) {
  RobustLoadedTrace out;
  std::vector<Session> sessions;
  // The index counts are untrusted input; reserve a bounded floor and let
  // geometric growth cover honest large traces (same rationale as the
  // binary reader).
  constexpr std::uint64_t kMaxInitialReserve = 1u << 16;
  sessions.reserve(static_cast<std::size_t>(
      std::min(reader.total_sessions(), kMaxInitialReserve)));
  SessionColumns columns;
  for (std::uint32_t e = 0; e < reader.num_epochs(); ++e) {
    reader.read_epoch(e, columns);
    columns.append_rows(e, sessions);
  }
  out.report = reader.report();
  publish_ingest_metrics(out.report);
  out.schema = reader.take_schema();
  out.table = SessionTable{std::move(sessions)};
  return out;
}

}  // namespace

RobustLoadedTrace read_trace_columnar_robust(std::istream& in,
                                             const RobustReadOptions& options) {
  VQ_SPAN("ingest.read_trace_columnar");
  ColumnarReader reader{in, options};
  return materialize(reader);
}

RobustLoadedTrace read_trace_columnar_robust(const std::filesystem::path& path,
                                             const RobustReadOptions& options) {
  VQ_SPAN("ingest.read_trace_columnar");
  ColumnarReader reader{path, options};
  return materialize(reader);
}

LoadedTrace read_trace_columnar(std::istream& in) {
  RobustLoadedTrace loaded =
      read_trace_columnar_robust(in, {.policy = ErrorPolicy::kStrict});
  return LoadedTrace{std::move(loaded.table), std::move(loaded.schema)};
}

LoadedTrace read_trace_columnar(const std::filesystem::path& path) {
  RobustLoadedTrace loaded =
      read_trace_columnar_robust(path, {.policy = ErrorPolicy::kStrict});
  return LoadedTrace{std::move(loaded.table), std::move(loaded.schema)};
}

}  // namespace vq
