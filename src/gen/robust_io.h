// Fault-tolerant streaming trace ingest.
//
// Production telemetry is dirty: collectors crash mid-upload, rows arrive
// truncated or malformed, and a single bad byte must not cost the whole
// epoch.  These readers wrap the CSV/binary trace parsers with an explicit
// per-row error policy:
//
//   kStrict     — throw a positioned exception on the first bad row (the
//                 behaviour of read_trace_csv / read_trace_binary, which
//                 delegate here).
//   kQuarantine — divert bad rows to a quarantine sink (line/offset +
//                 reason) and keep parsing; good rows keep flowing.
//   kBestEffort — additionally salvage rows with repairable fields (a
//                 non-finite metric, an out-of-range flag byte) by clamping
//                 the field to a safe default; only structurally broken
//                 rows are quarantined.
//
// Every read returns an IngestReport — rows read/kept/quarantined, counts
// per failure reason, clamped-field counts, and per-epoch damage tallies —
// so downstream analyses can annotate partial epochs as degraded instead of
// either crashing or silently treating starved data as healthy (see
// StreamingDetector's degraded-epoch policy in core/monitor.h).

#pragma once

#include <array>
#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/gen/trace_io.h"

namespace vq {

enum class ErrorPolicy : std::uint8_t {
  kStrict = 0,
  kQuarantine = 1,
  kBestEffort = 2,
};

[[nodiscard]] std::string_view error_policy_name(ErrorPolicy p) noexcept;

/// Parses "strict" / "quarantine" / "best-effort" (the CLI's --on-error
/// vocabulary); nullopt on anything else.
[[nodiscard]] std::optional<ErrorPolicy> parse_error_policy(
    std::string_view name) noexcept;

/// Why a row was rejected (or repaired, for kNonFinite/kBadFlag under
/// best-effort).
enum class RowErrorKind : std::uint8_t {
  kFieldCount = 0,       // CSV: wrong number of fields
  kBadNumber = 1,        // unparseable numeric field
  kNonFinite = 2,        // NaN/Inf metric value
  kBadFlag = 3,          // join_failed outside {0, 1}
  kAttrOverflow = 4,     // attribute dimension id space exhausted
  kSchemaViolation = 5,  // binary: attribute id outside the schema section
  kTruncated = 6,        // stream ended mid-record
  kIoError = 7,          // underlying stream failure (badbit)
  kBadChecksum = 8,      // columnar: chunk/footer checksum mismatch
};

inline constexpr int kNumRowErrorKinds = 9;

[[nodiscard]] std::string_view row_error_name(RowErrorKind k) noexcept;

/// One diverted row: where it was and why it was rejected.
struct QuarantinedRow {
  /// 1-based position: physical line number for CSV (header = line 1),
  /// record ordinal for binary (first session record = 1).
  std::uint64_t line = 0;
  /// Byte offset of the record start (binary only; 0 for CSV).
  std::uint64_t offset = 0;
  RowErrorKind kind = RowErrorKind::kBadNumber;
  std::string detail;  // human-readable reason, positioned
};

/// Per-epoch damage tally (epochs ascending). Rows whose epoch field itself
/// was unreadable are counted only in the global totals.
struct EpochIngestStats {
  std::uint32_t epoch = 0;
  std::uint64_t kept = 0;
  std::uint64_t quarantined = 0;
};

/// Data-quality annotation for one ingest pass.
struct IngestReport {
  ErrorPolicy policy = ErrorPolicy::kStrict;
  std::uint64_t rows_read = 0;         // data rows encountered
  std::uint64_t rows_kept = 0;         // rows that reached the table
  std::uint64_t rows_quarantined = 0;  // rows diverted to the sink
  std::uint64_t fields_clamped = 0;    // best-effort field repairs
  /// True when the stream ended mid-record or failed (badbit): everything
  /// after the cut is missing, so trailing epochs are suspect.
  bool input_truncated = false;
  /// Quarantined rows whose sample payload was dropped because retaining it
  /// would exceed max_quarantine_samples or max_quarantine_bytes.  Counts
  /// stay exact either way; only the human-readable evidence is bounded.
  std::uint64_t quarantine_payloads_dropped = 0;
  std::array<std::uint64_t, kNumRowErrorKinds> reason_counts{};
  /// First max_quarantine_samples diverted rows (bounded so a fully
  /// corrupt multi-GB feed cannot balloon the report).
  std::vector<QuarantinedRow> quarantine;
  std::vector<EpochIngestStats> epochs;

  [[nodiscard]] bool degraded() const noexcept {
    return rows_quarantined > 0 || input_truncated;
  }

  /// Epochs whose quarantined-row fraction is >= min_fraction (min_fraction
  /// of 0 flags any epoch that lost at least one row). When the input was
  /// truncated the last epoch seen is always included — the cut may have
  /// cost it an unknown number of rows.
  [[nodiscard]] std::vector<std::uint32_t> degraded_epochs(
      double min_fraction = 0.0) const;

  /// One-line human summary ("1200 rows: 1190 kept, 10 quarantined
  /// (bad-number=7, non-finite=3), 0 clamped").
  [[nodiscard]] std::string summary() const;
};

/// Default epoch sanity cap (~120 years of hourly epochs). Epochs index
/// dense per-epoch structures throughout the pipeline (SessionTable offsets,
/// per-epoch summaries), so a corrupt epoch field must be rejected here —
/// otherwise one flipped high bit makes downstream code allocate
/// proportionally to a ~2^31 epoch id.
inline constexpr std::uint32_t kDefaultMaxEpoch = 1u << 20;

struct RobustReadOptions {
  ErrorPolicy policy = ErrorPolicy::kStrict;
  /// Cap on retained QuarantinedRow samples (counts are always exact).
  std::size_t max_quarantine_samples = 64;
  /// Byte budget for retained sample payloads (the `detail` strings): a
  /// hostile feed of huge malformed rows must not grow the report without
  /// bound.  Samples beyond the budget are dropped (and counted in
  /// IngestReport::quarantine_payloads_dropped); per-reason counts stay
  /// exact.
  std::size_t max_quarantine_bytes = 256 * 1024;
  /// Rows with epoch > max_epoch are rejected (kBadNumber): an epoch is a
  /// dense index, and a poisoned one is as unsalvageable as an unparseable
  /// one.
  std::uint32_t max_epoch = kDefaultMaxEpoch;
};

/// LoadedTrace plus the data-quality annotation.
struct RobustLoadedTrace {
  SessionTable table;
  AttributeSchema schema;
  IngestReport report;
};

/// Policy-driven CSV reader. Header errors (missing/garbled header) are
/// structural and throw under every policy; row-level errors follow the
/// policy. All error messages carry 1-based physical line numbers (the
/// header is line 1). CR/LF line endings and trailing newlines are accepted.
[[nodiscard]] RobustLoadedTrace read_trace_csv_robust(
    std::istream& in, const RobustReadOptions& options = {});
[[nodiscard]] RobustLoadedTrace read_trace_csv_robust(
    const std::filesystem::path& path, const RobustReadOptions& options = {});

/// Policy-driven binary reader. The container header and schema section are
/// structural (unrecoverable without them) and throw under every policy;
/// session records follow the policy. Records are fixed-size, so a corrupt
/// record never desynchronises its successors; a mid-record truncation ends
/// the stream (input_truncated) rather than throwing in the non-strict
/// policies.
[[nodiscard]] RobustLoadedTrace read_trace_binary_robust(
    std::istream& in, const RobustReadOptions& options = {});
[[nodiscard]] RobustLoadedTrace read_trace_binary_robust(
    const std::filesystem::path& path, const RobustReadOptions& options = {});

/// Publishes an ingest pass into the observability registry: ingest.rows_*
/// counters, one ingest.quarantined.<reason> counter per RowErrorKind, and
/// the ingest.degraded_epochs / ingest.input_truncated gauges. Both robust
/// readers call this on every completed pass; callers that assemble an
/// IngestReport some other way may publish it themselves.
void publish_ingest_metrics(const IngestReport& report);

}  // namespace vq
