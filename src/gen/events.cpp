#include "src/gen/events.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace vq {

std::string_view event_kind_name(EventKind k) noexcept {
  switch (k) {
    case EventKind::kThroughputCollapse:
      return "ThroughputCollapse";
    case EventKind::kFailureSpike:
      return "FailureSpike";
    case EventKind::kLatencyInflation:
      return "LatencyInflation";
  }
  return "?";
}

namespace {

enum class ScopeType : std::uint8_t {
  kSite,
  kCdn,
  kAsn,
  kConn,
  kSiteConn,
  kCdnAsn,
  kCdnConn,
  kSiteBrowser,
  kAsnConn,
};

EventImpact sample_impact(EventKind kind, Xoshiro256ss& rng) {
  EventImpact impact;
  switch (kind) {
    case EventKind::kThroughputCollapse:
      impact.bw_multiplier = rng.uniform(0.15, 0.5);
      break;
    case EventKind::kFailureSpike:
      impact.fail_prob_add = rng.uniform(0.08, 0.55);
      break;
    case EventKind::kLatencyInflation:
      impact.rtt_multiplier = rng.uniform(3.0, 9.0);
      impact.startup_add_ms = rng.uniform(4'000.0, 18'000.0);
      break;
  }
  return impact;
}

EventKind sample_kind(ScopeType scope, Xoshiro256ss& rng) {
  // Mechanism mix depends on where the problem sits: client-side scopes
  // skew to throughput problems, server-side scopes to failures/latency.
  const double u = rng.uniform01();
  switch (scope) {
    case ScopeType::kAsn:
    case ScopeType::kConn:
    case ScopeType::kAsnConn:
      return u < 0.7 ? EventKind::kThroughputCollapse
                     : (u < 0.85 ? EventKind::kLatencyInflation
                                 : EventKind::kFailureSpike);
    case ScopeType::kSite:
    case ScopeType::kSiteBrowser:
      return u < 0.45 ? EventKind::kFailureSpike
                      : (u < 0.75 ? EventKind::kThroughputCollapse
                                  : EventKind::kLatencyInflation);
    case ScopeType::kCdn:
    case ScopeType::kCdnAsn:
    case ScopeType::kCdnConn:
    case ScopeType::kSiteConn:
      return u < 0.45 ? EventKind::kThroughputCollapse
                      : (u < 0.8 ? EventKind::kFailureSpike
                                 : EventKind::kLatencyInflation);
  }
  return EventKind::kThroughputCollapse;
}

}  // namespace

EventSchedule EventSchedule::generate(const World& world,
                                      const EventScheduleConfig& config) {
  Xoshiro256ss rng{config.seed};
  EventSchedule schedule;
  schedule.num_epochs_ = config.num_epochs;

  const std::array<double, 9> weights = {
      config.w_site,      config.w_cdn,      config.w_asn,
      config.w_conn,      config.w_site_conn, config.w_cdn_asn,
      config.w_cdn_conn,  config.w_site_browser, config.w_asn_conn};
  const DiscreteSampler scope_sampler{std::span<const double>{weights}};

  for (std::uint32_t epoch = 0; epoch < config.num_epochs; ++epoch) {
    // Poisson arrivals via thinning-free inversion (rate is small).
    std::uint32_t arrivals = 0;
    double p = std::exp(-config.events_per_epoch);
    double cumulative = p;
    const double u = rng.uniform01();
    while (u > cumulative && arrivals < 64) {
      ++arrivals;
      p *= config.events_per_epoch / static_cast<double>(arrivals);
      cumulative += p;
    }

    for (std::uint32_t a = 0; a < arrivals; ++a) {
      const auto scope_type = static_cast<ScopeType>(scope_sampler(rng));

      AttrVec attrs;
      std::uint8_t mask = 0;
      const auto pick_site = [&] {
        attrs[AttrDim::kSite] =
            static_cast<std::uint16_t>(world.site_sampler()(rng));
        mask |= dim_bit(AttrDim::kSite);
      };
      const auto pick_cdn = [&] {
        attrs[AttrDim::kCdn] =
            static_cast<std::uint16_t>(rng.below(world.cdns().size()));
        mask |= dim_bit(AttrDim::kCdn);
      };
      const auto pick_asn = [&] {
        attrs[AttrDim::kAsn] =
            static_cast<std::uint16_t>(world.asn_sampler()(rng));
        mask |= dim_bit(AttrDim::kAsn);
      };
      const auto pick_conn = [&] {
        attrs[AttrDim::kConnType] =
            static_cast<std::uint16_t>(rng.below(kConnTypeNames.size()));
        mask |= dim_bit(AttrDim::kConnType);
      };
      const auto pick_browser = [&] {
        attrs[AttrDim::kBrowser] =
            static_cast<std::uint16_t>(rng.below(kBrowserNames.size()));
        mask |= dim_bit(AttrDim::kBrowser);
      };

      switch (scope_type) {
        case ScopeType::kSite:
          pick_site();
          break;
        case ScopeType::kCdn:
          pick_cdn();
          break;
        case ScopeType::kAsn:
          pick_asn();
          break;
        case ScopeType::kConn:
          pick_conn();
          break;
        case ScopeType::kSiteConn:
          pick_site();
          pick_conn();
          break;
        case ScopeType::kCdnAsn:
          pick_cdn();
          pick_asn();
          break;
        case ScopeType::kCdnConn:
          pick_cdn();
          pick_conn();
          break;
        case ScopeType::kSiteBrowser:
          pick_site();
          pick_browser();
          break;
        case ScopeType::kAsnConn:
          pick_asn();
          pick_conn();
          break;
      }

      ProblemEvent event;
      event.scope = ClusterKey::pack(mask, attrs);
      event.kind = sample_kind(scope_type, rng);
      event.impact = sample_impact(event.kind, rng);
      event.start_epoch = epoch;
      const double raw_duration =
          rng.pareto(1.0, config.duration_pareto_alpha);
      event.duration_epochs = static_cast<std::uint32_t>(std::clamp(
          raw_duration, 1.0,
          static_cast<double>(config.max_duration_epochs)));
      schedule.events_.push_back(event);
    }
  }

  schedule.build_index();
  return schedule;
}

EventSchedule EventSchedule::none(std::uint32_t num_epochs) {
  EventSchedule schedule;
  schedule.num_epochs_ = num_epochs;
  schedule.build_index();
  return schedule;
}

EventSchedule EventSchedule::from_events(std::vector<ProblemEvent> events,
                                         std::uint32_t num_epochs) {
  EventSchedule schedule;
  schedule.events_ = std::move(events);
  schedule.num_epochs_ = num_epochs;
  schedule.build_index();
  return schedule;
}

std::span<const std::uint32_t> EventSchedule::active_at(
    std::uint32_t epoch) const noexcept {
  if (epoch >= active_by_epoch_.size()) return {};
  return active_by_epoch_[epoch];
}

void EventSchedule::build_index() {
  active_by_epoch_.assign(num_epochs_, {});
  for (std::uint32_t i = 0; i < events_.size(); ++i) {
    const ProblemEvent& event = events_[i];
    const std::uint32_t end = std::min(
        num_epochs_, event.start_epoch + event.duration_epochs);
    for (std::uint32_t e = event.start_epoch; e < end; ++e) {
      active_by_epoch_[e].push_back(i);
    }
  }
}

}  // namespace vq
