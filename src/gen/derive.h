// Derived ("hidden") attributes — paper §6: "we found many ASNs in non-US
// regions, so it is natural to consider geography as an additional
// attribute."
//
// The analysis engine is attribute-agnostic: any relabeling of a dimension
// yields a new lattice. coarsen_asn_to_region() replaces the ASN value of
// every session with its region id, so the pipeline surfaces geography-
// level critical clusters (e.g. "China") that per-ASN analysis fragments
// into many small, individually insignificant clusters.

#pragma once

#include "src/core/session.h"
#include "src/gen/world.h"

namespace vq {

/// A copy of `table` with each session's ASN replaced by the region id of
/// that ASN in `world` (region ids index kRegionWeights / region_name).
[[nodiscard]] SessionTable coarsen_asn_to_region(const SessionTable& table,
                                                 const World& world);

/// A schema for the coarsened table: identical to the world's schema except
/// the Asn dimension holds region names.
[[nodiscard]] AttributeSchema region_schema(const World& world);

}  // namespace vq
