// Internal wire-format constants shared by the trace writers (trace_io.cpp),
// the policy-driven readers (robust_io.cpp), and the live ingest framing
// (src/serve/framing.cpp, which reuses the record layout and schema section
// on the wire).  Not installed as public API: include only from src/gen and
// src/serve implementation files.

#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>

#include "src/core/attributes.h"

namespace vq::detail {

inline constexpr std::string_view kCsvHeader =
    "epoch,site,cdn,asn,conn_type,player,browser,vod_live,"
    "buffering_ratio,bitrate_kbps,join_time_ms,join_failed";

inline constexpr std::array<AttrDim, kNumDims> kCsvColumnDims = {
    AttrDim::kSite,     AttrDim::kCdn,    AttrDim::kAsn,
    AttrDim::kConnType, AttrDim::kPlayer, AttrDim::kBrowser,
    AttrDim::kVodLive};

inline constexpr char kBinaryMagic[4] = {'V', 'Q', 'T', 'R'};
inline constexpr std::uint32_t kBinaryVersion = 1;

/// Shared cap on one attribute name's byte length, enforced by the writers
/// (throw std::invalid_argument before the u16 length cast can truncate)
/// and the readers (a claimed length beyond the cap is schema corruption,
/// not a 64 KiB allocation request).  4096 is far beyond any real CDN/ASN/
/// site label while keeping a corrupted 0xFFFF length field fail-fast.
inline constexpr std::size_t kMaxAttrNameLen = 4096;

// --- columnar container ("VQTC") ---------------------------------------------
// Out-of-core layout (columnar.h): header + schema section (identical to the
// VQTR schema block), then one self-delimiting column chunk per non-empty
// epoch, then a checksummed footer index and a fixed-size tail that points
// back at it:
//
//   "VQTC" u32 version
//   7 x [u32 name_count, name_count x (u16 len, bytes)]
//   chunks: "VQCH" u32 epoch, u64 count,
//           7 x (count x u16 attr column),
//           3 x (count x f32 metric column), count x u8 join_failed,
//           u64 fnv1a(epoch, count, columns)
//   footer: "VQTF" u32 chunk_count, u32 num_epochs,
//           chunk_count x (u32 epoch, u64 offset, u64 count, u64 checksum),
//           u64 fnv1a(entries)
//   tail:   u64 footer_offset, "VQTE"
//
// Chunks are readable without the footer (magic + count make them
// self-delimiting), so a damaged footer degrades to a sequential scan under
// the non-strict policies instead of losing the file.

inline constexpr char kColumnarMagic[4] = {'V', 'Q', 'T', 'C'};
inline constexpr char kColumnarChunkMagic[4] = {'V', 'Q', 'C', 'H'};
inline constexpr char kColumnarFooterMagic[4] = {'V', 'Q', 'T', 'F'};
inline constexpr char kColumnarTailMagic[4] = {'V', 'Q', 'T', 'E'};
inline constexpr std::uint32_t kColumnarVersion = 1;

/// Column bytes per session in a chunk: 7 x u16 attrs + 3 x f32 metrics +
/// u8 join_failed.
inline constexpr std::size_t kColumnarRowBytes = 7 * 2 + 3 * 4 + 1;
static_assert(kColumnarRowBytes == 27);

/// Fixed chunk overhead: magic + u32 epoch + u64 count + u64 checksum.
inline constexpr std::size_t kColumnarChunkHeaderBytes = 4 + 4 + 8;
inline constexpr std::size_t kColumnarChunkTrailerBytes = 8;

/// One footer index entry: u32 epoch, u64 offset, u64 count, u64 checksum.
/// The offsets are shared by the writer's pack and the reader's unpack in
/// columnar.cpp so the entry layout has a single definition.
inline constexpr std::size_t kColumnarFooterEntryBytes = 4 + 8 + 8 + 8;
inline constexpr std::size_t kFooterEntryOffsetPos = sizeof(std::uint32_t);
inline constexpr std::size_t kFooterEntryCountPos =
    kFooterEntryOffsetPos + sizeof(std::uint64_t);
inline constexpr std::size_t kFooterEntryChecksumPos =
    kFooterEntryCountPos + sizeof(std::uint64_t);
static_assert(kFooterEntryChecksumPos + sizeof(std::uint64_t) ==
              kColumnarFooterEntryBytes);

/// Fixed footer prefix/suffix around the entry array: magic + u32
/// chunk_count + u32 num_epochs before, u64 checksum after.
inline constexpr std::size_t kColumnarFooterFixedBytes = 4 + 4 + 4 + 8;

/// Trailing tail: u64 footer_offset + tail magic.
inline constexpr std::size_t kColumnarTailBytes = 8 + 4;

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Incremental FNV-1a 64: fold `n` bytes into hash `h`.  Chosen over CRC32
/// for zero dependencies and branch-free bytewise folding; this is an
/// integrity check against bit rot and truncation, not an adversary.
[[nodiscard]] inline std::uint64_t fnv1a(const void* data, std::size_t n,
                                         std::uint64_t h = kFnvOffsetBasis)
    noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Fixed size of one session record in the binary container:
/// 7 x u16 attrs + u32 epoch + 3 x f32 metrics + u8 join_failed.
inline constexpr std::size_t kBinaryRecordSize = 7 * 2 + 4 + 3 * 4 + 1;
static_assert(kBinaryRecordSize == 31);

static_assert(std::endian::native == std::endian::little,
              "binary trace format assumes a little-endian host");

template <typename T>
void write_pod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  // Generic header/schema-section helper; the stream offset is not threaded
  // this deep.  Record-level reads go through the positioned robust_io path
  // instead of this function.
  // vq-lint: allow(positioned-throw)
  if (!in) throw std::runtime_error{"read_trace_binary: truncated input"};
  return value;
}

/// Unaligned little-endian load out of a record buffer.
template <typename T>
[[nodiscard]] T load_pod(const char* bytes) noexcept {
  T value{};
  std::memcpy(&value, bytes, sizeof value);
  return value;
}

/// Writes the per-dimension name-table section shared by the VQTR and VQTC
/// containers: 7 x [u32 count, count x (u16 len, bytes)].  Returns the bytes
/// written.  Throws std::invalid_argument when a name exceeds
/// kMaxAttrNameLen — the u16 length field would otherwise silently truncate
/// it and corrupt every id that follows.
inline std::uint64_t write_schema_section(std::ostream& out,
                                          const AttributeSchema& schema,
                                          const char* context) {
  std::uint64_t bytes = 0;
  for (int d = 0; d < kNumDims; ++d) {
    const auto dim = static_cast<AttrDim>(d);
    const auto count = static_cast<std::uint32_t>(schema.cardinality(dim));
    write_pod(out, count);
    bytes += 4;
    for (std::uint32_t id = 0; id < count; ++id) {
      const std::string_view name =
          schema.name(dim, static_cast<std::uint16_t>(id));
      if (name.size() > kMaxAttrNameLen) {
        // Writer-side schema validation; no stream position exists for the
        // caller's data, so the offending dimension is named instead.
        // vq-lint: allow(positioned-throw)
        throw std::invalid_argument{
            std::string{context} + ": attribute name too long for " +
            std::string{dim_name(dim)} + " (" + std::to_string(name.size()) +
            " bytes, max " + std::to_string(kMaxAttrNameLen) + ")"};
      }
      write_pod(out, static_cast<std::uint16_t>(name.size()));
      out.write(name.data(), static_cast<std::streamsize>(name.size()));
      bytes += 2 + name.size();
    }
  }
  return bytes;
}

/// Reads the section write_schema_section emits, interning every name into
/// `schema`.  `offset` (the section's start offset) is advanced past the
/// section.  Structural under every ErrorPolicy: without the schema no
/// session record can be decoded, so all failures throw positioned
/// std::runtime_error attributed to `context`.
inline void read_schema_section(std::istream& in, AttributeSchema& schema,
                                std::uint64_t& offset, const char* context) {
  for (int d = 0; d < kNumDims; ++d) {
    const auto dim = static_cast<AttrDim>(d);
    const auto count = read_pod<std::uint32_t>(in);
    offset += 4;
    if (count > dim_capacity(dim) + 1u) {
      throw std::runtime_error{std::string{context} +
                               ": schema too large for " +
                               std::string{dim_name(dim)} + " at offset " +
                               std::to_string(offset - 4)};
    }
    std::string name;
    for (std::uint32_t id = 0; id < count; ++id) {
      const auto len = read_pod<std::uint16_t>(in);
      if (len > kMaxAttrNameLen) {
        // Symmetric with the writer's cap: a longer claimed length can only
        // be corruption, so fail fast instead of allocating and desyncing.
        throw std::runtime_error{
            std::string{context} + ": attribute name length " +
            std::to_string(len) + " exceeds cap " +
            std::to_string(kMaxAttrNameLen) + " at offset " +
            std::to_string(offset)};
      }
      name.resize(len);
      in.read(name.data(), len);
      if (!in) {
        throw std::runtime_error{std::string{context} +
                                 ": truncated name at offset " +
                                 std::to_string(offset + 2)};
      }
      offset += 2 + len;
      const std::uint16_t assigned = schema.intern(dim, name);
      if (assigned != id) {
        throw std::runtime_error{
            std::string{context} +
            ": duplicate name in schema section at offset " +
            std::to_string(offset - 2 - len)};
      }
    }
  }
}

}  // namespace vq::detail
