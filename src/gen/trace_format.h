// Internal wire-format constants shared by the trace writers (trace_io.cpp)
// and the policy-driven readers (robust_io.cpp).  Not installed as public
// API: include only from src/gen/*.cpp.

#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string_view>

#include "src/core/attributes.h"

namespace vq::detail {

inline constexpr std::string_view kCsvHeader =
    "epoch,site,cdn,asn,conn_type,player,browser,vod_live,"
    "buffering_ratio,bitrate_kbps,join_time_ms,join_failed";

inline constexpr std::array<AttrDim, kNumDims> kCsvColumnDims = {
    AttrDim::kSite,     AttrDim::kCdn,    AttrDim::kAsn,
    AttrDim::kConnType, AttrDim::kPlayer, AttrDim::kBrowser,
    AttrDim::kVodLive};

inline constexpr char kBinaryMagic[4] = {'V', 'Q', 'T', 'R'};
inline constexpr std::uint32_t kBinaryVersion = 1;

/// Fixed size of one session record in the binary container:
/// 7 x u16 attrs + u32 epoch + 3 x f32 metrics + u8 join_failed.
inline constexpr std::size_t kBinaryRecordSize = 7 * 2 + 4 + 3 * 4 + 1;
static_assert(kBinaryRecordSize == 31);

static_assert(std::endian::native == std::endian::little,
              "binary trace format assumes a little-endian host");

template <typename T>
void write_pod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  // Generic header/schema-section helper; the stream offset is not threaded
  // this deep.  Record-level reads go through the positioned robust_io path
  // instead of this function.
  // vq-lint: allow(positioned-throw)
  if (!in) throw std::runtime_error{"read_trace_binary: truncated input"};
  return value;
}

/// Unaligned little-endian load out of a record buffer.
template <typename T>
[[nodiscard]] T load_pod(const char* bytes) noexcept {
  T value{};
  std::memcpy(&value, bytes, sizeof value);
  return value;
}

}  // namespace vq::detail
