// Ground-truth-aware diagnosis of critical clusters — the "more diagnostic
// capabilities" direction of the paper's §6.
//
// The paper explains its prevalent critical clusters through manual domain
// analysis (Table 3). Our world model makes those explanations mechanical:
// given a critical cluster, consult the world's metadata (in-house CDNs,
// bitrate ladders, ISP quality, regions) and the planted event schedule to
// produce a human-readable hypothesis plus a machine-checkable category.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/core/attributes.h"
#include "src/gen/events.h"
#include "src/gen/world.h"

namespace vq {

enum class CauseCategory : std::uint8_t {
  kUnknown = 0,
  kActiveEvent,         // matches a planted event live at this epoch
  kInHouseCdn,          // chronically under-provisioned in-house CDN
  kOverloadedCdn,       // commercial CDN with peak-hour overload
  kSingleBitrateSite,   // single-rung provider
  kWeakOriginSite,      // under-provisioned origin/packaging
  kRemoteModulesSite,   // player modules loaded cross-continent
  kPoorIsp,             // chronically slow ASN
  kWirelessCarrier,     // mobile carrier ASN
  kNonUsRegion,         // regional footprint/peering gap
  kRadioAccess,         // mobile/fixed wireless/satellite access
};

[[nodiscard]] std::string_view cause_category_name(CauseCategory c) noexcept;

struct Diagnosis {
  CauseCategory category = CauseCategory::kUnknown;
  std::string summary;        // human-readable hypothesis
  std::string recommendation; // the "simple known solution" (§1) if any
};

/// Diagnoses a critical cluster against the world's chronic structure and —
/// when `events`+`epoch` are supplied — the events active in that epoch.
/// Checks are ordered: active events first, then server-side, client-side.
[[nodiscard]] Diagnosis diagnose_cluster(
    const ClusterKey& key, const World& world,
    const EventSchedule* events = nullptr,
    std::optional<std::uint32_t> epoch = std::nullopt);

}  // namespace vq
