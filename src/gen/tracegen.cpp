#include "src/gen/tracegen.h"

#include "src/simnet/tcp.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace vq {

namespace {

/// Per-region player/browser habit differences are mild; connection mix is
/// driven by the ASN (wireless carriers are mostly mobile clients).
std::uint16_t sample_conn_type(const AsnModel& asn, Xoshiro256ss& rng) {
  if (asn.wireless_provider) {
    const double u = rng.uniform01();
    if (u < 0.75) return kConnMobileWireless;
    if (u < 0.90) return 5;  // FixedWireless
    return 1;                // Cable (tethered/home product)
  }
  const double u = rng.uniform01();
  if (u < 0.30) return 0;  // DSL
  if (u < 0.63) return 1;  // Cable
  if (u < 0.80) return 2;  // Fiber
  if (u < 0.89) return 3;  // Ethernet
  if (u < 0.94) return kConnMobileWireless;  // 2013: mobile still a niche
  if (u < 0.985) return 5;  // FixedWireless
  return 6;                 // Satellite
}

std::uint16_t sample_player(Xoshiro256ss& rng) {
  const double u = rng.uniform01();
  if (u < 0.55) return 0;  // Flash (it is 2013)
  if (u < 0.70) return 1;  // Silverlight
  if (u < 0.90) return 2;  // HTML5
  return 3;                // NativeApp
}

std::uint16_t sample_browser(Xoshiro256ss& rng) {
  const double u = rng.uniform01();
  if (u < 0.35) return 0;  // Chrome
  if (u < 0.60) return 1;  // Firefox
  if (u < 0.82) return 2;  // MSIE
  if (u < 0.93) return 3;  // Safari
  return 4;                // Other
}

double sample_duration_s(bool live, Xoshiro256ss& rng) {
  // VoD sessions: median ~5 min, heavy tail; Live: longer.
  return live ? rng.lognormal(std::log(900.0), 0.8)
              : rng.lognormal(std::log(300.0), 0.9);
}

}  // namespace

std::uint32_t sessions_in_epoch(const TraceConfig& config,
                                std::uint32_t epoch) noexcept {
  // 24-hour sinusoid peaking at "evening" (epoch 20 of each day).
  const double phase =
      2.0 * std::numbers::pi * static_cast<double>(epoch % 24) / 24.0;
  const double factor =
      1.0 + config.diurnal_amplitude * std::sin(phase - 2.0);
  const double n = static_cast<double>(config.sessions_per_epoch) * factor;
  return static_cast<std::uint32_t>(std::max(1.0, n));
}

namespace {

/// Best-footprint commercial CDN for a region (deterministic).
std::uint16_t best_commercial_cdn(const World& world, Region region) {
  std::uint16_t best = 0;
  double best_presence = -1.0;
  for (const CdnModel& cdn : world.cdns()) {
    if (cdn.in_house) continue;
    const double presence =
        cdn.presence[static_cast<std::size_t>(region)] -
        0.5 * cdn.overload_sensitivity;
    if (presence > best_presence) {
      best_presence = presence;
      best = cdn.id;
    }
  }
  return best;
}

}  // namespace

std::vector<Session> generate_epoch(const World& world,
                                    const EventSchedule& events,
                                    const TraceConfig& config,
                                    std::uint32_t epoch,
                                    std::span<const Remedy> remedies) {
  // Derivation by (seed, epoch) keeps epochs independent and the whole
  // trace reproducible regardless of generation order.
  Xoshiro256ss epoch_rng =
      Xoshiro256ss{config.seed}.derive(0xE0000000ULL + epoch);

  const std::uint32_t count = sessions_in_epoch(config, epoch);
  std::vector<Session> sessions;
  sessions.reserve(count);

  const auto active = events.active_at(epoch);

  for (std::uint32_t i = 0; i < count; ++i) {
    Session s;
    s.epoch = epoch;

    // ---- attribute sampling --------------------------------------------
    const auto site_id =
        static_cast<std::uint16_t>(world.site_sampler()(epoch_rng));
    const auto asn_id =
        static_cast<std::uint16_t>(world.asn_sampler()(epoch_rng));
    const SiteModel& site = world.sites()[site_id];
    const AsnModel& asn = world.asns()[asn_id];

    s.attrs[AttrDim::kSite] = site_id;
    s.attrs[AttrDim::kAsn] = asn_id;
    s.attrs[AttrDim::kCdn] =
        site.cdn_ids[epoch_rng.below(site.cdn_ids.size())];
    s.attrs[AttrDim::kConnType] = sample_conn_type(asn, epoch_rng);
    s.attrs[AttrDim::kPlayer] = sample_player(epoch_rng);
    s.attrs[AttrDim::kBrowser] = sample_browser(epoch_rng);
    s.attrs[AttrDim::kVodLive] =
        epoch_rng.bernoulli(site.live_fraction) ? kLive : kVod;

    // ---- remedies: match on the as-sampled attributes -------------------
    bool remedy_ladder = false;
    bool remedy_local_modules = false;
    bool remedy_suppress_events = false;
    ClusterKey suppress_scope;
    if (!remedies.empty()) {
      const ClusterKey sampled_leaf = ClusterKey::pack(kFullMask, s.attrs);
      for (const Remedy& remedy : remedies) {
        if (!remedy.scope.generalizes(sampled_leaf)) continue;
        switch (remedy.action) {
          case RemedyAction::kSwitchToBestCdn:
            s.attrs[AttrDim::kCdn] = best_commercial_cdn(world, asn.region);
            break;
          case RemedyAction::kAddBitrateLadder:
            remedy_ladder = true;
            break;
          case RemedyAction::kLocalizePlayerModules:
            remedy_local_modules = true;
            break;
          case RemedyAction::kSuppressEvents:
            remedy_suppress_events = true;
            suppress_scope = remedy.scope;
            break;
        }
      }
    }

    const CdnModel& cdn = world.cdns()[s.attrs[AttrDim::kCdn]];
    const auto region = static_cast<std::size_t>(asn.region);

    // ---- delivery conditions ---------------------------------------------
    const std::uint16_t conn = s.attrs[AttrDim::kConnType];
    DeliveryConditions cond;
    const double presence = cdn.presence[region];
    // Heavy per-session heterogeneity (plan quality, home wiring, cross
    // traffic): this idiosyncratic spread is what keeps a share of problem
    // sessions outside any statistically significant cluster (Table 1).
    // Diurnal CDN congestion: under-provisioned CDNs degrade every peak
    // hour — the recurring daily problem events behind the paper's
    // prevalence findings (Fig. 7).
    const double load = static_cast<double>(sessions_in_epoch(config, epoch)) /
                        static_cast<double>(config.sessions_per_epoch);
    const double congestion =
        1.0 - cdn.overload_sensitivity * std::max(0.0, load - 0.95);

    const double access_kbps = kConnMeanKbps[conn] * asn.quality *
                               site.origin_quality *
                               (0.3 + 0.7 * presence) * congestion *
                               epoch_rng.lognormal(0.0, 0.5);
    cond.rtt_ms = cdn.rtt_base_ms * (1.0 + 3.5 * (1.0 - presence));
    // Transport ceiling (Mathis): long-RTT lossy paths to poorly present
    // CDNs cap below the access rate, whatever the client's line speed.
    TcpPathParams tcp;
    tcp.rtt_ms = cond.rtt_ms;
    tcp.loss_rate = 0.0004 + 0.006 * (1.0 - presence) +
                    0.004 * std::max(0.0, 1.0 - congestion);
    cond.bandwidth_mean_kbps =
        std::min(access_kbps, tcp_pool_ceiling_kbps(tcp));
    cond.bandwidth_sigma = kConnSigma[conn];
    // Deep fades: frequent on radio links, rarer on wired plants.
    cond.fade_prob = conn == kConnMobileWireless || conn >= 5 ? 0.018 : 0.012;
    cond.fade_depth = 0.18;
    cond.join_failure_prob = cdn.base_fail_prob + site.base_fail_prob +
                             cdn.overload_sensitivity *
                                 std::max(0.0, load - 1.15) * 0.15;
    cond.startup_overhead_ms = site.startup_overhead_ms;
    if (!remedy_local_modules &&
        site.remote_module_region == static_cast<int>(asn.region)) {
      cond.startup_overhead_ms += site.remote_module_penalty_ms;
    }

    // ---- planted events ---------------------------------------------------
    const ClusterKey leaf = ClusterKey::pack(kFullMask, s.attrs);
    for (const std::uint32_t idx : active) {
      const ProblemEvent& event = events.events()[idx];
      if (!event.scope.generalizes(leaf)) continue;
      if (remedy_suppress_events &&
          (suppress_scope.generalizes(event.scope) ||
           event.scope.generalizes(suppress_scope))) {
        continue;  // the root cause was repaired
      }
      cond.apply_impact(event.impact.bw_multiplier,
                        event.impact.rtt_multiplier,
                        event.impact.fail_prob_add,
                        event.impact.startup_add_ms);
    }
    cond.clamp();

    // ---- playback ----------------------------------------------------------
    const bool live = s.attrs[AttrDim::kVodLive] == kLive;
    const double duration = sample_duration_s(live, epoch_rng);
    // A slice of the catalogue is only encoded at low rates (old uploads,
    // UGC): those sessions fall below the paper's 700 kbps line wherever
    // they play, which is why bitrate problems are the least clustered
    // metric (Table 1's 0.57 coverage; the paper notes bitrate thresholds
    // are content-dependent).
    const bool content_capped =
        !site.single_bitrate && epoch_rng.bernoulli(0.08);
    if (content_capped) {
      // Low-rate-only content: a ladder remedy cannot help what was never
      // encoded.
      AbrConfig capped = site.abr;
      capped.ladder_kbps = {300, 560};
      s.quality = simulate_playback(cond, capped, config.player, duration,
                                    epoch_rng.derive(i));
    } else if (remedy_ladder && site.single_bitrate) {
      AbrConfig full;
      full.kind = AbrKind::kRateBased;
      full.ladder_kbps = {400, 800, 1500, 2500};
      s.quality = simulate_playback(cond, full, config.player, duration,
                                    epoch_rng.derive(i));
    } else {
      s.quality = simulate_playback(cond, site.abr, config.player, duration,
                                    epoch_rng.derive(i));
    }
    sessions.push_back(s);
  }
  return sessions;
}

SessionTable generate_trace(const World& world, const EventSchedule& events,
                            const TraceConfig& config,
                            std::span<const Remedy> remedies) {
  std::vector<Session> all;
  for (std::uint32_t epoch = 0; epoch < config.num_epochs; ++epoch) {
    std::vector<Session> chunk =
        generate_epoch(world, events, config, epoch, remedies);
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  return SessionTable{std::move(all)};
}

}  // namespace vq
