// CSV serialisation of session traces.
//
// Lets users run the analysis on externally collected data (the library's
// public entry point for real measurements) and lets generated traces be
// archived and reloaded.  Format: one header line, then one row per session:
//   epoch,site,cdn,asn,conn_type,player,browser,vod_live,
//   buffering_ratio,bitrate_kbps,join_time_ms,join_failed

#pragma once

#include <filesystem>
#include <iosfwd>

#include "src/core/attributes.h"
#include "src/core/session.h"

namespace vq {

/// Writes the trace as CSV with attribute names from `schema`.
void write_trace_csv(std::ostream& out, const SessionTable& table,
                     const AttributeSchema& schema);
void write_trace_csv(const std::filesystem::path& path,
                     const SessionTable& table, const AttributeSchema& schema);

/// Parsed result of read_trace_csv: the table plus the schema populated with
/// every attribute name encountered (ids assigned in first-seen order).
struct LoadedTrace {
  SessionTable table;
  AttributeSchema schema;
};

/// Reads a trace written by write_trace_csv (or produced by any compliant
/// exporter). Accepts LF and CRLF line endings and trailing newlines.
/// Throws std::runtime_error on malformed input; every message carries the
/// 1-based physical line number (the header is line 1).  For per-row fault
/// tolerance instead of first-error abort, see read_trace_csv_robust
/// (robust_io.h), which this delegates to.
[[nodiscard]] LoadedTrace read_trace_csv(std::istream& in);
[[nodiscard]] LoadedTrace read_trace_csv(const std::filesystem::path& path);

// --- binary format -----------------------------------------------------------
// Compact little-endian container (~31 bytes/session vs ~100 for CSV) for
// archiving large traces:
//   magic "VQTR", u32 version,
//   7 x [u32 name_count, name_count x (u16 len, bytes)]  (per-dim schema)
//   u64 session_count,
//   session_count x [7 x u16 attrs, u32 epoch, f32 bufratio, f32 bitrate,
//                    f32 join_ms, u8 join_failed]

/// Writes the binary container. Every attribute id present in `table` must
/// be registered in `schema`.
void write_trace_binary(std::ostream& out, const SessionTable& table,
                        const AttributeSchema& schema);
void write_trace_binary(const std::filesystem::path& path,
                        const SessionTable& table,
                        const AttributeSchema& schema);

/// Reads the binary container. Throws std::runtime_error (positioned by
/// record ordinal and byte offset) on corruption, truncation, or version
/// mismatch; rejects join_failed bytes outside {0, 1} and non-finite f32
/// metric fields rather than propagating poison into the lattice.  For
/// per-record fault tolerance, see read_trace_binary_robust (robust_io.h).
[[nodiscard]] LoadedTrace read_trace_binary(std::istream& in);
[[nodiscard]] LoadedTrace read_trace_binary(const std::filesystem::path& path);

}  // namespace vq
