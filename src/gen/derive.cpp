#include "src/gen/derive.h"

#include <vector>

namespace vq {

SessionTable coarsen_asn_to_region(const SessionTable& table,
                                   const World& world) {
  std::vector<Session> sessions(table.sessions().begin(),
                                table.sessions().end());
  for (Session& s : sessions) {
    const AsnModel& asn = world.asns()[s.attrs[AttrDim::kAsn]];
    s.attrs[AttrDim::kAsn] =
        static_cast<std::uint16_t>(asn.region);
  }
  return SessionTable{std::move(sessions)};
}

AttributeSchema region_schema(const World& world) {
  AttributeSchema schema;
  for (int d = 0; d < kNumDims; ++d) {
    const auto dim = static_cast<AttrDim>(d);
    if (dim == AttrDim::kAsn) {
      for (int r = 0; r < kNumRegions; ++r) {
        (void)schema.intern(dim, region_name(static_cast<Region>(r)));
      }
      continue;
    }
    const std::size_t n = world.schema().cardinality(dim);
    for (std::size_t id = 0; id < n; ++id) {
      (void)schema.intern(
          dim, world.schema().name(dim, static_cast<std::uint16_t>(id)));
    }
  }
  return schema;
}

}  // namespace vq
