#include "src/gen/diagnose.h"

#include <cstdio>

namespace vq {

std::string_view cause_category_name(CauseCategory c) noexcept {
  switch (c) {
    case CauseCategory::kUnknown:
      return "unknown";
    case CauseCategory::kActiveEvent:
      return "active-event";
    case CauseCategory::kInHouseCdn:
      return "in-house-cdn";
    case CauseCategory::kOverloadedCdn:
      return "overloaded-cdn";
    case CauseCategory::kSingleBitrateSite:
      return "single-bitrate-site";
    case CauseCategory::kWeakOriginSite:
      return "weak-origin-site";
    case CauseCategory::kRemoteModulesSite:
      return "remote-modules-site";
    case CauseCategory::kPoorIsp:
      return "poor-isp";
    case CauseCategory::kWirelessCarrier:
      return "wireless-carrier";
    case CauseCategory::kNonUsRegion:
      return "non-us-region";
    case CauseCategory::kRadioAccess:
      return "radio-access";
  }
  return "?";
}

Diagnosis diagnose_cluster(const ClusterKey& key, const World& world,
                           const EventSchedule* events,
                           std::optional<std::uint32_t> epoch) {
  Diagnosis d;
  char line[160];

  // 1. A live planted event whose scope explains this cluster.
  if (events != nullptr && epoch.has_value()) {
    for (const std::uint32_t idx : events->active_at(*epoch)) {
      const ProblemEvent& event = events->events()[idx];
      if (event.scope.generalizes(key) || key.generalizes(event.scope)) {
        std::snprintf(line, sizeof line,
                      "%s event at %s since epoch %u (planned duration %u h)",
                      std::string(event_kind_name(event.kind)).c_str(),
                      world.schema().describe(event.scope).c_str(),
                      event.start_epoch, event.duration_epochs);
        d.category = CauseCategory::kActiveEvent;
        d.summary = line;
        d.recommendation = "reactive mitigation: reroute or degrade "
                           "gracefully until the event clears";
        return d;
      }
    }
  }

  // 2. Server side: CDN, then Site.
  if (key.has(AttrDim::kCdn)) {
    const CdnModel& cdn = world.cdns()[key.value(AttrDim::kCdn)];
    if (cdn.in_house) {
      std::snprintf(line, sizeof line,
                    "in-house CDN (base failure %.1f%%, overload "
                    "sensitivity %.2f)",
                    100.0 * cdn.base_fail_prob, cdn.overload_sensitivity);
      d.category = CauseCategory::kInHouseCdn;
      d.summary = line;
      d.recommendation =
          "contract a commercial CDN or adopt multi-CDN delivery";
      return d;
    }
    if (cdn.overload_sensitivity > 0.2) {
      std::snprintf(line, sizeof line,
                    "commercial CDN degrading under peak load (sensitivity "
                    "%.2f)",
                    cdn.overload_sensitivity);
      d.category = CauseCategory::kOverloadedCdn;
      d.summary = line;
      d.recommendation = "add peak capacity or spill peak traffic to a "
                         "second CDN";
      return d;
    }
  }
  if (key.has(AttrDim::kSite)) {
    const SiteModel& site = world.sites()[key.value(AttrDim::kSite)];
    if (site.single_bitrate) {
      std::snprintf(line, sizeof line,
                    "site publishes a single %d kbps rendition",
                    static_cast<int>(site.abr.ladder_kbps.front()));
      d.category = CauseCategory::kSingleBitrateSite;
      d.summary = line;
      d.recommendation = "offer a finer-grained bitrate ladder";
      return d;
    }
    if (site.remote_module_region >= 0) {
      std::snprintf(
          line, sizeof line,
          "player modules load cross-continent for %s clients (+%.0f ms)",
          std::string(region_name(static_cast<Region>(
                          site.remote_module_region)))
              .c_str(),
          site.remote_module_penalty_ms);
      d.category = CauseCategory::kRemoteModulesSite;
      d.summary = line;
      d.recommendation = "serve third-party player modules from a local CDN";
      return d;
    }
    if (site.origin_quality < 0.85) {
      std::snprintf(line, sizeof line,
                    "under-provisioned origin/packaging (throughput factor "
                    "%.2f)",
                    site.origin_quality);
      d.category = CauseCategory::kWeakOriginSite;
      d.summary = line;
      d.recommendation = "upgrade origin capacity or enable origin shielding";
      return d;
    }
  }

  // 3. Client side: ASN, then access technology.
  if (key.has(AttrDim::kAsn)) {
    const AsnModel& asn = world.asns()[key.value(AttrDim::kAsn)];
    if (asn.wireless_provider) {
      std::snprintf(line, sizeof line,
                    "wireless carrier in %s (quality factor %.2f)",
                    std::string(region_name(asn.region)).c_str(),
                    asn.quality);
      d.category = CauseCategory::kWirelessCarrier;
      d.summary = line;
      d.recommendation =
          "lower the default rendition and extend buffers for this carrier";
      return d;
    }
    if (asn.quality < 0.7) {
      std::snprintf(line, sizeof line,
                    "chronically slow ISP in %s (quality factor %.2f)",
                    std::string(region_name(asn.region)).c_str(),
                    asn.quality);
      d.category = CauseCategory::kPoorIsp;
      d.summary = line;
      d.recommendation = "peering/transit review; consider an in-region CDN";
      return d;
    }
    if (asn.region != Region::kUS) {
      std::snprintf(line, sizeof line,
                    "%s ISP outside primary CDN footprints",
                    std::string(region_name(asn.region)).c_str());
      d.category = CauseCategory::kNonUsRegion;
      d.summary = line;
      d.recommendation = "contract a local/regional CDN operator";
      return d;
    }
  }
  if (key.has(AttrDim::kConnType)) {
    const auto conn = key.value(AttrDim::kConnType);
    if (conn == kConnMobileWireless || conn >= 5) {
      std::snprintf(line, sizeof line, "radio access technology (%s)",
                    std::string(kConnTypeNames[conn]).c_str());
      d.category = CauseCategory::kRadioAccess;
      d.summary = line;
      d.recommendation =
          "tune ABR for radio links: lower startup rung, larger reservoir";
      return d;
    }
  }

  d.summary = "no chronic cause on record; candidate for manual analysis";
  d.recommendation = "trigger fine-grained measurements (server load, "
                     "per-hop probes) for this combination";
  return d;
}

}  // namespace vq
