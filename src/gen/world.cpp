#include "src/gen/world.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace vq {

std::string_view region_name(Region r) noexcept {
  switch (r) {
    case Region::kUS:
      return "US";
    case Region::kEurope:
      return "Europe";
    case Region::kChina:
      return "China";
    case Region::kAsiaOther:
      return "AsiaOther";
    case Region::kLatAm:
      return "LatAm";
    case Region::kOther:
      return "Other";
  }
  return "?";
}

namespace {

AbrConfig make_full_ladder_abr(Xoshiro256ss& rng) {
  AbrConfig abr;
  abr.kind = rng.bernoulli(0.5) ? AbrKind::kRateBased : AbrKind::kBufferBased;
  // Sites encode different ladder depths (2013: most content tops out well
  // below "HD"; only well-provisioned providers publish high rungs).
  const double u = rng.uniform01();
  if (u < 0.45) {
    abr.ladder_kbps = {400, 800, 1500};
  } else if (u < 0.80) {
    abr.ladder_kbps = {400, 800, 1500, 2500};
  } else {
    abr.ladder_kbps = {400, 800, 1500, 2500, 4500};
  }
  return abr;
}

AbrConfig make_single_bitrate_abr(Xoshiro256ss& rng) {
  AbrConfig abr;
  abr.kind = AbrKind::kFixedSingle;
  // Single-rung providers typically publish one mid/high rate; on slow
  // paths this is exactly what buffers (paper Table 3 "single bitrate").
  abr.ladder_kbps = {rng.bernoulli(0.5) ? 1'800.0 : 1'200.0};
  return abr;
}

Region sample_region(Xoshiro256ss& rng, const DiscreteSampler& sampler) {
  return static_cast<Region>(sampler(rng));
}

}  // namespace

World World::build(const WorldConfig& config) {
  // Config validation, not stream ingest: there is no line/record/offset
  // to report, and the failing field is named in the message.
  if (config.num_sites == 0 || config.num_cdns == 0 || config.num_asns == 0) {
    // vq-lint: allow(positioned-throw)
    throw std::invalid_argument{"WorldConfig: empty population"};
  }
  if (config.num_sites > dim_capacity(AttrDim::kSite) ||
      config.num_cdns > dim_capacity(AttrDim::kCdn) ||
      config.num_asns > dim_capacity(AttrDim::kAsn)) {
    // vq-lint: allow(positioned-throw) — config validation, as above.
    throw std::invalid_argument{
        "WorldConfig: population exceeds attribute id space"};
  }

  Xoshiro256ss rng{config.seed};
  World world{config, ZipfSampler{config.num_sites, config.site_zipf},
              ZipfSampler{config.num_asns, config.asn_zipf}};

  const DiscreteSampler region_sampler{
      std::span<const double>{kRegionWeights}};

  char name[32];

  // ---- CDNs ---------------------------------------------------------------
  const auto num_inhouse = static_cast<std::uint32_t>(
      static_cast<double>(config.num_cdns) * config.inhouse_cdn_fraction);
  world.cdns_.reserve(config.num_cdns);
  for (std::uint32_t i = 0; i < config.num_cdns; ++i) {
    CdnModel cdn;
    cdn.in_house = i >= config.num_cdns - num_inhouse;
    std::snprintf(name, sizeof name, "%s-%02u",
                  cdn.in_house ? "inhouse" : "cdn", i);
    cdn.id = world.schema_.intern(AttrDim::kCdn, name);
    // A couple of in-house CDNs are chronically awful (the paper's
    // "low priority service" providers): stable, dominant join-failure
    // critical clusters week after week. The rest are merely mediocre.
    const bool awful =
        cdn.in_house && i < config.num_cdns - num_inhouse + 2;
    cdn.base_fail_prob = awful ? rng.uniform(0.07, 0.12)
                               : cdn.in_house ? rng.uniform(0.01, 0.03)
                                              : rng.uniform(0.001, 0.008);
    cdn.rtt_base_ms = rng.uniform(25.0, 60.0);
    cdn.overload_sensitivity =
        cdn.in_house ? rng.uniform(0.35, 0.75) : rng.uniform(0.0, 0.3);
    for (int r = 0; r < kNumRegions; ++r) {
      const bool home = (r == 0);  // every CDN is strongest in the US here
      double presence = home ? rng.uniform(0.85, 1.0)
                             : rng.uniform(cdn.in_house ? 0.15 : 0.35, 0.9);
      // A couple of commercial CDNs are truly global.
      if (!cdn.in_house && i < 3) presence = rng.uniform(0.8, 1.0);
      cdn.presence[static_cast<std::size_t>(r)] = presence;
    }
    world.cdns_.push_back(cdn);
  }

  // ---- Sites --------------------------------------------------------------
  world.sites_.reserve(config.num_sites);
  for (std::uint32_t i = 0; i < config.num_sites; ++i) {
    SiteModel site;
    std::snprintf(name, sizeof name, "site-%04u", i);
    site.id = world.schema_.intern(AttrDim::kSite, name);

    // Popularity rank correlates with provisioning: low-rank (less popular)
    // sites are likelier to be single-bitrate, single-CDN, in-house; major
    // providers almost never ship a single rung.
    const double rank_frac =
        static_cast<double>(i) / static_cast<double>(config.num_sites);
    const bool poorly_provisioned =
        rng.bernoulli(config.single_bitrate_site_fraction *
                      (0.3 + 1.8 * rank_frac * rank_frac));
    site.single_bitrate = poorly_provisioned;
    site.abr = poorly_provisioned ? make_single_bitrate_abr(rng)
                                  : make_full_ladder_abr(rng);

    const bool uses_inhouse = num_inhouse > 0 && rng.bernoulli(0.25);
    if (uses_inhouse) {
      const std::uint32_t pick =
          config.num_cdns - num_inhouse +
          static_cast<std::uint32_t>(rng.below(num_inhouse));
      site.cdn_ids = {static_cast<std::uint16_t>(pick)};
    } else {
      const auto commercial = config.num_cdns - num_inhouse;
      site.cdn_ids = {
          static_cast<std::uint16_t>(rng.below(commercial))};
      if (rng.bernoulli(config.multi_cdn_site_fraction)) {
        const auto second =
            static_cast<std::uint16_t>(rng.below(commercial));
        if (second != site.cdn_ids[0]) site.cdn_ids.push_back(second);
      }
    }

    site.live_fraction = rng.bernoulli(0.15) ? rng.uniform(0.4, 0.9)
                                             : rng.uniform(0.0, 0.15);
    site.base_fail_prob = rng.uniform(0.001, 0.006);
    site.startup_overhead_ms = rng.uniform(200.0, 900.0);
    // A slice of the long tail runs weak origins/packagers: a chronic
    // site-level throughput handicap on every path.
    if (rank_frac > 0.25 && rng.bernoulli(0.15)) {
      site.origin_quality = rng.uniform(0.45, 0.75);
    }
    if (rng.bernoulli(config.remote_module_site_fraction)) {
      // e.g. a Chinese site whose player loads analytics/module blobs from a
      // US CDN: that region's clients pay seconds of extra join time.
      site.remote_module_region = static_cast<int>(Region::kChina);
      site.remote_module_penalty_ms = rng.uniform(5'000.0, 15'000.0);
    }
    world.sites_.push_back(site);
  }

  // ---- ASNs ---------------------------------------------------------------
  world.asns_.reserve(config.num_asns);
  for (std::uint32_t i = 0; i < config.num_asns; ++i) {
    AsnModel asn;
    std::snprintf(name, sizeof name, "AS%05u", 1'000 + i);
    asn.id = world.schema_.intern(AttrDim::kAsn, name);
    asn.region = sample_region(rng, region_sampler);
    // Most ISPs are fine; a tail is chronically under-provisioned, more so
    // outside the US (paper Table 3: "Asian ISPs").
    const double bad_isp_prob =
        asn.region == Region::kUS ? 0.06 : 0.16;
    asn.quality = rng.bernoulli(bad_isp_prob) ? rng.uniform(0.2, 0.55)
                                              : rng.lognormal(0.0, 0.22);
    asn.wireless_provider = rng.bernoulli(config.wireless_asn_fraction);
    // Wireless carriers run congested radio backhauls: the badness of
    // mobile sessions concentrates in these specific ASNs rather than in
    // the MobileWireless connection type globally (paper Table 3 lists a
    // "wireless provider" under the ASN column of the bitrate row).
    if (asn.wireless_provider) asn.quality *= rng.uniform(0.55, 0.85);
    world.asns_.push_back(asn);
  }

  // ---- Fixed vocabularies ---------------------------------------------------
  for (const auto n : kConnTypeNames) {
    (void)world.schema_.intern(AttrDim::kConnType, n);
  }
  for (const auto n : kPlayerNames) {
    (void)world.schema_.intern(AttrDim::kPlayer, n);
  }
  for (const auto n : kBrowserNames) {
    (void)world.schema_.intern(AttrDim::kBrowser, n);
  }
  for (const auto n : kVodLiveNames) {
    (void)world.schema_.intern(AttrDim::kVodLive, n);
  }

  return world;
}

}  // namespace vq
