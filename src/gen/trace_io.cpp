#include "src/gen/trace_io.h"

#include <fstream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/gen/robust_io.h"
#include "src/gen/trace_format.h"

namespace vq {

using detail::kCsvColumnDims;
using detail::kCsvHeader;
using detail::write_pod;

void write_trace_csv(std::ostream& out, const SessionTable& table,
                     const AttributeSchema& schema) {
  // Names are written unquoted, so a delimiter or line break inside one
  // would silently corrupt the round trip read_trace_csv relies on; reject
  // the whole schema up front rather than emit a malformed file.
  for (const AttrDim dim : kCsvColumnDims) {
    for (std::size_t id = 0; id < schema.cardinality(dim); ++id) {
      const std::string_view name =
          schema.name(dim, static_cast<std::uint16_t>(id));
      if (name.find_first_of(",\n\r") != std::string_view::npos) {
        // Writer-side schema validation: no stream position exists yet;
        // the offending name is quoted instead.
        // vq-lint: allow(positioned-throw)
        throw std::invalid_argument{
            "write_trace_csv: attribute name contains a delimiter: \"" +
            std::string{name} + "\""};
      }
    }
  }
  // max_digits10 for float: values survive a write/read round trip exactly.
  // The stream is caller-owned, so the precision is restored on every exit
  // path instead of leaking a formatting change back to the caller.
  const std::streamsize saved_precision = out.precision(9);
  try {
    out << kCsvHeader << '\n';
    for (const Session& s : table.sessions()) {
      out << s.epoch;
      for (const AttrDim dim : kCsvColumnDims) {
        out << ',' << schema.name(dim, s.attrs[dim]);
      }
      out << ',' << s.quality.buffering_ratio << ',' << s.quality.bitrate_kbps
          << ',' << s.quality.join_time_ms << ','
          << (s.quality.join_failed ? 1 : 0) << '\n';
    }
  } catch (...) {
    out.precision(saved_precision);
    // Rethrow of a write-side failure on a caller-owned stream: the
    // original exception already carries whatever position it has.
    // vq-lint: allow(positioned-throw)
    throw;
  }
  out.precision(saved_precision);
  // A full disk or dead pipe leaves failbit/badbit set without throwing;
  // a silently short CSV must not report success.  Write-side failure on a
  // caller-owned stream: no input position exists.
  // vq-lint: allow(positioned-throw)
  if (!out) throw std::runtime_error{"write_trace_csv: write failed"};
}

void write_trace_csv(const std::filesystem::path& path,
                     const SessionTable& table,
                     const AttributeSchema& schema) {
  std::ofstream out{path};
  if (!out) {
    throw std::runtime_error{"write_trace_csv: cannot open " + path.string()};
  }
  write_trace_csv(out, table, schema);
  // The destructor's implicit close swallows flush failures; close here and
  // check so a disk-full tail loss surfaces with the path attached.
  out.close();
  if (!out) {
    throw std::runtime_error{"write_trace_csv: cannot write " + path.string()};
  }
}

// The strict readers are thin shims over the policy-driven robust readers
// (robust_io.h): one parser, one set of positioned error messages.

LoadedTrace read_trace_csv(std::istream& in) {
  RobustLoadedTrace loaded =
      read_trace_csv_robust(in, {.policy = ErrorPolicy::kStrict});
  return LoadedTrace{std::move(loaded.table), std::move(loaded.schema)};
}

LoadedTrace read_trace_csv(const std::filesystem::path& path) {
  std::ifstream in{path};
  if (!in) {
    throw std::runtime_error{"read_trace_csv: cannot open " + path.string()};
  }
  return read_trace_csv(in);
}

// --- binary format -----------------------------------------------------------

void write_trace_binary(std::ostream& out, const SessionTable& table,
                        const AttributeSchema& schema) {
  out.write(detail::kBinaryMagic, sizeof detail::kBinaryMagic);
  write_pod(out, detail::kBinaryVersion);
  // Validates every name against kMaxAttrNameLen before the u16 length
  // cast — an oversized name used to truncate silently and desync the
  // schema block for every id after it.
  detail::write_schema_section(out, schema, "write_trace_binary");
  write_pod(out, static_cast<std::uint64_t>(table.size()));
  // The per-session field writes below must stay in lockstep with the
  // record size the reader (robust_io.cpp) slices by.
  static_assert(detail::kBinaryRecordSize ==
                kNumDims * sizeof(std::uint16_t) + sizeof(std::uint32_t) +
                    3 * sizeof(float) + sizeof(std::uint8_t));
  for (const Session& s : table.sessions()) {
    for (int d = 0; d < kNumDims; ++d) write_pod(out, s.attrs.v[d]);
    write_pod(out, s.epoch);
    write_pod(out, s.quality.buffering_ratio);
    write_pod(out, s.quality.bitrate_kbps);
    write_pod(out, s.quality.join_time_ms);
    write_pod(out, static_cast<std::uint8_t>(s.quality.join_failed ? 1 : 0));
  }
  // Write-side failure on a caller-owned stream; there is no input
  // position, and the path (if any) is known only to the overload below.
  // vq-lint: allow(positioned-throw)
  if (!out) throw std::runtime_error{"write_trace_binary: write failed"};
}

void write_trace_binary(const std::filesystem::path& path,
                        const SessionTable& table,
                        const AttributeSchema& schema) {
  std::ofstream out{path, std::ios::binary};
  if (!out) {
    throw std::runtime_error{"write_trace_binary: cannot open " +
                             path.string()};
  }
  write_trace_binary(out, table, schema);
  out.close();
  if (!out) {
    throw std::runtime_error{"write_trace_binary: cannot write " +
                             path.string()};
  }
}

LoadedTrace read_trace_binary(std::istream& in) {
  RobustLoadedTrace loaded =
      read_trace_binary_robust(in, {.policy = ErrorPolicy::kStrict});
  return LoadedTrace{std::move(loaded.table), std::move(loaded.schema)};
}

LoadedTrace read_trace_binary(const std::filesystem::path& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    throw std::runtime_error{"read_trace_binary: cannot open " +
                             path.string()};
  }
  return read_trace_binary(in);
}

}  // namespace vq
