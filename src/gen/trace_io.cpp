#include "src/gen/trace_io.h"

#include <algorithm>
#include <array>
#include <bit>
#include <charconv>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace vq {

namespace {

constexpr std::string_view kHeader =
    "epoch,site,cdn,asn,conn_type,player,browser,vod_live,"
    "buffering_ratio,bitrate_kbps,join_time_ms,join_failed";

constexpr std::array<AttrDim, kNumDims> kColumnDims = {
    AttrDim::kSite,     AttrDim::kCdn,    AttrDim::kAsn,
    AttrDim::kConnType, AttrDim::kPlayer, AttrDim::kBrowser,
    AttrDim::kVodLive};

std::vector<std::string_view> split_csv(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == ',') {
      fields.push_back(line.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

template <typename T>
T parse_number(std::string_view field, std::size_t line_no) {
  T value{};
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    throw std::runtime_error{"read_trace_csv: bad numeric field at line " +
                             std::to_string(line_no)};
  }
  return value;
}

}  // namespace

void write_trace_csv(std::ostream& out, const SessionTable& table,
                     const AttributeSchema& schema) {
  // Names are written unquoted, so a delimiter or line break inside one
  // would silently corrupt the round trip read_trace_csv relies on; reject
  // the whole schema up front rather than emit a malformed file.
  for (const AttrDim dim : kColumnDims) {
    for (std::size_t id = 0; id < schema.cardinality(dim); ++id) {
      const std::string_view name =
          schema.name(dim, static_cast<std::uint16_t>(id));
      if (name.find_first_of(",\n\r") != std::string_view::npos) {
        throw std::invalid_argument{
            "write_trace_csv: attribute name contains a delimiter: \"" +
            std::string{name} + "\""};
      }
    }
  }
  // max_digits10 for float: values survive a write/read round trip exactly.
  out.precision(9);
  out << kHeader << '\n';
  for (const Session& s : table.sessions()) {
    out << s.epoch;
    for (const AttrDim dim : kColumnDims) {
      out << ',' << schema.name(dim, s.attrs[dim]);
    }
    out << ',' << s.quality.buffering_ratio << ',' << s.quality.bitrate_kbps
        << ',' << s.quality.join_time_ms << ','
        << (s.quality.join_failed ? 1 : 0) << '\n';
  }
}

void write_trace_csv(const std::filesystem::path& path,
                     const SessionTable& table,
                     const AttributeSchema& schema) {
  std::ofstream out{path};
  if (!out) {
    throw std::runtime_error{"write_trace_csv: cannot open " + path.string()};
  }
  write_trace_csv(out, table, schema);
}

LoadedTrace read_trace_csv(std::istream& in) {
  LoadedTrace loaded;
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error{"read_trace_csv: empty input"};
  }
  if (line != kHeader) {
    throw std::runtime_error{"read_trace_csv: unexpected header"};
  }

  std::vector<Session> sessions;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = split_csv(line);
    if (fields.size() != 12) {
      throw std::runtime_error{"read_trace_csv: expected 12 fields at line " +
                               std::to_string(line_no)};
    }
    Session s;
    s.epoch = parse_number<std::uint32_t>(fields[0], line_no);
    for (std::size_t d = 0; d < kColumnDims.size(); ++d) {
      s.attrs[kColumnDims[d]] =
          loaded.schema.intern(kColumnDims[d], fields[1 + d]);
    }
    s.quality.buffering_ratio = parse_number<float>(fields[8], line_no);
    s.quality.bitrate_kbps = parse_number<float>(fields[9], line_no);
    s.quality.join_time_ms = parse_number<float>(fields[10], line_no);
    s.quality.join_failed = parse_number<int>(fields[11], line_no) != 0;
    sessions.push_back(s);
  }
  loaded.table = SessionTable{std::move(sessions)};
  return loaded;
}

LoadedTrace read_trace_csv(const std::filesystem::path& path) {
  std::ifstream in{path};
  if (!in) {
    throw std::runtime_error{"read_trace_csv: cannot open " + path.string()};
  }
  return read_trace_csv(in);
}

// --- binary format -----------------------------------------------------------

namespace {

constexpr char kMagic[4] = {'V', 'Q', 'T', 'R'};
constexpr std::uint32_t kBinaryVersion = 1;

template <typename T>
void write_pod(std::ostream& out, T value) {
  // Little-endian hosts only (checked below); fine for this project's
  // deployment targets.
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw std::runtime_error{"read_trace_binary: truncated input"};
  return value;
}

static_assert(std::endian::native == std::endian::little,
              "binary trace format assumes a little-endian host");

}  // namespace

void write_trace_binary(std::ostream& out, const SessionTable& table,
                        const AttributeSchema& schema) {
  out.write(kMagic, sizeof kMagic);
  write_pod(out, kBinaryVersion);
  for (int d = 0; d < kNumDims; ++d) {
    const auto dim = static_cast<AttrDim>(d);
    const auto count = static_cast<std::uint32_t>(schema.cardinality(dim));
    write_pod(out, count);
    for (std::uint32_t id = 0; id < count; ++id) {
      const std::string_view name =
          schema.name(dim, static_cast<std::uint16_t>(id));
      write_pod(out, static_cast<std::uint16_t>(name.size()));
      out.write(name.data(), static_cast<std::streamsize>(name.size()));
    }
  }
  write_pod(out, static_cast<std::uint64_t>(table.size()));
  for (const Session& s : table.sessions()) {
    for (int d = 0; d < kNumDims; ++d) write_pod(out, s.attrs.v[d]);
    write_pod(out, s.epoch);
    write_pod(out, s.quality.buffering_ratio);
    write_pod(out, s.quality.bitrate_kbps);
    write_pod(out, s.quality.join_time_ms);
    write_pod(out, static_cast<std::uint8_t>(s.quality.join_failed ? 1 : 0));
  }
  if (!out) throw std::runtime_error{"write_trace_binary: write failed"};
}

void write_trace_binary(const std::filesystem::path& path,
                        const SessionTable& table,
                        const AttributeSchema& schema) {
  std::ofstream out{path, std::ios::binary};
  if (!out) {
    throw std::runtime_error{"write_trace_binary: cannot open " +
                             path.string()};
  }
  write_trace_binary(out, table, schema);
}

LoadedTrace read_trace_binary(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error{"read_trace_binary: bad magic"};
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kBinaryVersion) {
    throw std::runtime_error{"read_trace_binary: unsupported version " +
                             std::to_string(version)};
  }
  LoadedTrace loaded;
  for (int d = 0; d < kNumDims; ++d) {
    const auto dim = static_cast<AttrDim>(d);
    const auto count = read_pod<std::uint32_t>(in);
    if (count > dim_capacity(dim) + 1u) {
      throw std::runtime_error{"read_trace_binary: schema too large for " +
                               std::string{dim_name(dim)}};
    }
    std::string name;
    for (std::uint32_t id = 0; id < count; ++id) {
      const auto len = read_pod<std::uint16_t>(in);
      name.resize(len);
      in.read(name.data(), len);
      if (!in) throw std::runtime_error{"read_trace_binary: truncated name"};
      const std::uint16_t assigned = loaded.schema.intern(dim, name);
      if (assigned != id) {
        throw std::runtime_error{
            "read_trace_binary: duplicate name in schema section"};
      }
    }
  }
  const auto count = read_pod<std::uint64_t>(in);
  std::vector<Session> sessions;
  // The count is untrusted: a corrupted header could demand a multi-GB
  // up-front allocation before the first truncated read fails. Reserve a
  // bounded floor and let push_back's geometric growth cover honest large
  // traces.
  constexpr std::uint64_t kMaxInitialReserve = 1u << 16;
  sessions.reserve(
      static_cast<std::size_t>(std::min(count, kMaxInitialReserve)));
  for (std::uint64_t i = 0; i < count; ++i) {
    Session s;
    for (int d = 0; d < kNumDims; ++d) {
      s.attrs.v[d] = read_pod<std::uint16_t>(in);
      const auto dim = static_cast<AttrDim>(d);
      if (s.attrs.v[d] >= loaded.schema.cardinality(dim)) {
        throw std::runtime_error{
            "read_trace_binary: attribute id outside schema"};
      }
    }
    s.epoch = read_pod<std::uint32_t>(in);
    s.quality.buffering_ratio = read_pod<float>(in);
    s.quality.bitrate_kbps = read_pod<float>(in);
    s.quality.join_time_ms = read_pod<float>(in);
    s.quality.join_failed = read_pod<std::uint8_t>(in) != 0;
    sessions.push_back(s);
  }
  loaded.table = SessionTable{std::move(sessions)};
  return loaded;
}

LoadedTrace read_trace_binary(const std::filesystem::path& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    throw std::runtime_error{"read_trace_binary: cannot open " +
                             path.string()};
  }
  return read_trace_binary(in);
}

}  // namespace vq
