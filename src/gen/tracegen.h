// Trace generation: composes the world model, the planted event schedule and
// the delivery simulation into a SessionTable — the synthetic stand-in for
// the paper's 300M-session client-side measurement dataset.

#pragma once

#include <cstdint>
#include <span>

#include "src/core/session.h"
#include "src/gen/events.h"
#include "src/gen/world.h"
#include "src/simnet/player.h"

namespace vq {

struct TraceConfig {
  std::uint32_t num_epochs = 336;          // two weeks, hourly
  std::uint32_t sessions_per_epoch = 4000;  // mean; diurnally modulated
  double diurnal_amplitude = 0.35;          // peak/trough swing, in [0,1)
  std::uint64_t seed = 7;
  PlayerConfig player;
};

// --- remedies ---------------------------------------------------------------
// The paper (§5) models "fixing" a cluster as resetting its problem ratio to
// the global average and concedes it "cannot conclusively say that the
// specific sessions are actually fixable". With a mechanistic substrate we
// can close that loop: re-simulate the trace with a concrete remedy applied
// to the sessions a scope matches, holding all random streams fixed so only
// the remedied delivery paths change.

enum class RemedyAction : std::uint8_t {
  /// Reassign matching sessions to the commercial CDN with the best
  /// regional footprint for the client.
  kSwitchToBestCdn = 0,
  /// Replace the site's ladder with a full adaptive one for matching
  /// sessions (fixes single-bitrate providers).
  kAddBitrateLadder = 1,
  /// Serve third-party player modules locally (drops the cross-continent
  /// startup penalty).
  kLocalizePlayerModules = 2,
  /// Suppress planted problem events whose scope this remedy's scope
  /// matches (the idealised "root cause repaired" fix).
  kSuppressEvents = 3,
};

struct Remedy {
  ClusterKey scope;  // sessions with scope.generalizes(leaf) are remedied
  RemedyAction action = RemedyAction::kSwitchToBestCdn;
};

/// Generates sessions for a single epoch (exposed for streaming consumers
/// and tests; generate_trace loops this over all epochs). An empty remedy
/// list reproduces the unremedied trace bit-for-bit.
[[nodiscard]] std::vector<Session> generate_epoch(
    const World& world, const EventSchedule& events, const TraceConfig& config,
    std::uint32_t epoch, std::span<const Remedy> remedies = {});

/// Generates the full trace. Deterministic in (world, events, config,
/// remedies); sessions untouched by every remedy are identical to the
/// remedy-free trace.
[[nodiscard]] SessionTable generate_trace(const World& world,
                                          const EventSchedule& events,
                                          const TraceConfig& config,
                                          std::span<const Remedy> remedies =
                                              {});

/// Expected session count for an epoch after diurnal modulation.
[[nodiscard]] std::uint32_t sessions_in_epoch(const TraceConfig& config,
                                              std::uint32_t epoch) noexcept;

}  // namespace vq
