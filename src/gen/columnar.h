// Out-of-core columnar trace container ("VQTC").
//
// The row-wise containers (trace_io.h) materialize whole traces in RAM; at
// paper scale (~300M sessions x 336 epochs) that is the wall.  This format
// stores one *column chunk per epoch* — seven u16 attribute columns
// (dictionary-encoded against the same schema section the binary container
// uses) plus three f32 metric columns and the join_failed byte column — with
// a checksummed footer index of epoch -> chunk offsets, so an analysis
// streams the trace one epoch at a time at O(one epoch) memory and lands
// each chunk directly in the SoA layout the vectorized fold kernels
// (core/columns.h) consume.  Layout details: trace_format.h.
//
// Fault tolerance follows the ErrorPolicy contract of robust_io.h:
//
//   * Header and schema section are structural — throw under every policy.
//   * A damaged footer index (bad tail, bad checksum, implausible entries)
//     throws under kStrict; under the non-strict policies the reader falls
//     back to a sequential chunk scan (chunks are self-delimiting).
//   * A damaged chunk (checksum mismatch, truncation, header disagreeing
//     with the index) throws positioned under kStrict; otherwise the whole
//     chunk is quarantined — its declared row count is recorded lost and
//     the epoch is reported degraded.
//   * Row-level damage inside an intact chunk (attribute id outside the
//     schema, non-finite metric, join flag outside {0,1}) follows the
//     policy row by row, exactly like the binary reader: quarantine under
//     kQuarantine, clamp repairable fields under kBestEffort.

#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <memory>

#include "src/core/columns.h"
#include "src/gen/robust_io.h"

namespace vq {

/// Writes `table` (finalized, epoch-sorted) as a VQTC columnar container.
/// Every attribute id present must be registered in `schema`; attribute
/// names longer than detail::kMaxAttrNameLen throw std::invalid_argument.
/// Throws std::runtime_error when the stream reports failure.
void write_trace_columnar(std::ostream& out, const SessionTable& table,
                          const AttributeSchema& schema);
void write_trace_columnar(const std::filesystem::path& path,
                          const SessionTable& table,
                          const AttributeSchema& schema);

/// Streaming columnar reader: one chunk per read_epoch call, O(one epoch)
/// memory.  The constructor reads header + schema and loads the footer
/// index (or falls back to a chunk scan, see above); each read_epoch seeks
/// to that epoch's chunk.  The stream must therefore be seekable.
class ColumnarReader final : public EpochColumnsSource {
 public:
  /// Caller-owned stream; must outlive the reader.
  explicit ColumnarReader(std::istream& in,
                          const RobustReadOptions& options = {});
  /// Opens and owns the file stream.
  explicit ColumnarReader(const std::filesystem::path& path,
                          const RobustReadOptions& options = {});
  ~ColumnarReader() override;

  ColumnarReader(const ColumnarReader&) = delete;
  ColumnarReader& operator=(const ColumnarReader&) = delete;

  [[nodiscard]] std::uint32_t num_epochs() const override;

  /// Replaces `out` with epoch e's sessions (empty when the epoch has no
  /// chunk).  Returns true when the epoch is degraded: rows were lost to
  /// quarantine, checksum failure, or truncation.  Under kStrict, damage
  /// throws a positioned std::runtime_error instead.
  bool read_epoch(std::uint32_t e, SessionColumns& out) override;

  [[nodiscard]] const AttributeSchema& schema() const noexcept;

  /// Moves the schema out (AttributeSchema is move-only); the reader must
  /// not be used afterwards.  For materializing readers only.
  [[nodiscard]] AttributeSchema take_schema() noexcept;

  /// Sum of the index's per-chunk row counts (what an undamaged full read
  /// would yield).
  [[nodiscard]] std::uint64_t total_sessions() const noexcept;

  /// True when the footer index was damaged and rebuilt by sequential scan.
  [[nodiscard]] bool footer_recovered() const noexcept;

  /// Snapshot of the ingest damage accumulated by the read_epoch calls so
  /// far (per-epoch tallies folded in).  Callers publish it themselves
  /// (publish_ingest_metrics) once streaming completes.
  [[nodiscard]] IngestReport report() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Materializing shims, for tools and tests that want the whole trace in
/// RAM with the same API shape as the CSV/binary readers.  The robust
/// variant publishes ingest metrics like its siblings.
[[nodiscard]] RobustLoadedTrace read_trace_columnar_robust(
    std::istream& in, const RobustReadOptions& options = {});
[[nodiscard]] RobustLoadedTrace read_trace_columnar_robust(
    const std::filesystem::path& path, const RobustReadOptions& options = {});

[[nodiscard]] LoadedTrace read_trace_columnar(std::istream& in);
[[nodiscard]] LoadedTrace read_trace_columnar(
    const std::filesystem::path& path);

}  // namespace vq
