// Planted problem events: the dataset's dynamic ground truth.
//
// The paper infers problem events from observations; we *generate* them so
// that detection quality can be validated.  Each event scopes to an
// attribute combination (a ClusterKey: one specific Site, CDN, ASN,
// ConnType, or a pair), spans a contiguous run of epochs with a heavy-tailed
// duration (so the paper's persistence findings — 50% of events >= 2 h, a
// tail of day-long outages — can emerge), and degrades the delivery
// *mechanism* of matching sessions: throughput collapse, failure spikes, or
// latency/startup inflation.  Mechanistic impacts mean different event kinds
// surface on different quality metrics, which is what drives the paper's
// low cross-metric overlap (Table 2).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/attributes.h"
#include "src/gen/world.h"
#include "src/util/rng.h"

namespace vq {

/// How an active event degrades a matching session's delivery conditions.
struct EventImpact {
  double bw_multiplier = 1.0;    // multiplies mean throughput
  double rtt_multiplier = 1.0;   // multiplies control RTT
  double fail_prob_add = 0.0;    // adds to join-failure probability
  double startup_add_ms = 0.0;   // adds startup latency
};

/// Failure-mechanism families (each maps to a characteristic impact).
enum class EventKind : std::uint8_t {
  kThroughputCollapse = 0,  // congestion / under-provisioning
  kFailureSpike = 1,        // missing content, origin or edge errors
  kLatencyInflation = 2,    // slow control path, remote player modules
};

[[nodiscard]] std::string_view event_kind_name(EventKind k) noexcept;

struct ProblemEvent {
  ClusterKey scope;  // sessions with scope.generalizes(leaf) are affected
  EventKind kind = EventKind::kThroughputCollapse;
  EventImpact impact;
  std::uint32_t start_epoch = 0;
  std::uint32_t duration_epochs = 1;  // >= 1

  [[nodiscard]] bool active_at(std::uint32_t epoch) const noexcept {
    return epoch >= start_epoch && epoch < start_epoch + duration_epochs;
  }
};

struct EventScheduleConfig {
  std::uint32_t num_epochs = 336;  // two weeks of hourly epochs
  double events_per_epoch = 1.2;   // arrival rate (Poisson)
  /// Pareto duration: xm = 1 epoch, this alpha; capped below.
  double duration_pareto_alpha = 1.05;
  std::uint32_t max_duration_epochs = 72;
  /// Scope-type mix (normalised internally): single attributes and pairs.
  double w_site = 0.36;
  double w_cdn = 0.16;
  double w_asn = 0.22;
  double w_conn = 0.03;
  double w_site_conn = 0.06;
  double w_cdn_asn = 0.08;
  double w_cdn_conn = 0.04;
  double w_site_browser = 0.04;
  double w_asn_conn = 0.04;
  std::uint64_t seed = 77;
};

/// Immutable event schedule with a per-epoch active index.
class EventSchedule {
 public:
  /// Samples a schedule for `world`. Scope values are drawn from the world's
  /// popularity distributions, so events hit entities with enough traffic to
  /// form statistically significant clusters.
  [[nodiscard]] static EventSchedule generate(const World& world,
                                              const EventScheduleConfig&
                                                  config);

  /// An empty schedule (baseline: only chronic world structure).
  [[nodiscard]] static EventSchedule none(std::uint32_t num_epochs);

  /// A schedule of explicitly supplied events (scenario scripting: planted
  /// outages in examples and experiments).
  [[nodiscard]] static EventSchedule from_events(
      std::vector<ProblemEvent> events, std::uint32_t num_epochs);

  [[nodiscard]] std::span<const ProblemEvent> events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::uint32_t num_epochs() const noexcept {
    return num_epochs_;
  }

  /// Indices into events() active during `epoch`.
  [[nodiscard]] std::span<const std::uint32_t> active_at(
      std::uint32_t epoch) const noexcept;

 private:
  void build_index();

  std::vector<ProblemEvent> events_;
  std::vector<std::vector<std::uint32_t>> active_by_epoch_;
  std::uint32_t num_epochs_ = 0;
};

}  // namespace vq
