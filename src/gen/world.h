// Static world model: the population of content providers (sites), CDNs,
// client ASNs, and device platforms that sessions are drawn from.
//
// Substitutes for the demographic structure of the paper's dataset (§2):
// 379 sites, 19 CDNs (commercial + in-house), ~15K ASNs across 213 countries
// (~55% US / ~12% EU / ~8% CN viewers), diverse players/browsers/connection
// types.  The world also encodes the *chronic* structural causes the paper
// surfaces in Table 3 — single-bitrate sites, under-provisioned in-house
// CDNs, low-quality regional ISPs, mobile wireless providers, and sites that
// load player modules from another continent.

#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "src/core/attributes.h"
#include "src/simnet/abr.h"
#include "src/util/rng.h"

namespace vq {

enum class Region : std::uint8_t {
  kUS = 0,
  kEurope = 1,
  kChina = 2,
  kAsiaOther = 3,
  kLatAm = 4,
  kOther = 5,
};
inline constexpr int kNumRegions = 6;

[[nodiscard]] std::string_view region_name(Region r) noexcept;

/// Session share per region, mirroring the paper's viewer mix.
inline constexpr std::array<double, kNumRegions> kRegionWeights = {
    0.55, 0.12, 0.08, 0.10, 0.08, 0.07};

// --- fixed small-cardinality attribute vocabularies -----------------------
// Interned in this order during World::build, so the array index IS the
// attribute value id.

inline constexpr std::array<std::string_view, 7> kConnTypeNames = {
    "DSL",           "Cable",         "Fiber",    "Ethernet",
    "MobileWireless", "FixedWireless", "Satellite"};
inline constexpr std::uint16_t kConnMobileWireless = 4;

inline constexpr std::array<std::string_view, 4> kPlayerNames = {
    "Flash", "Silverlight", "HTML5", "NativeApp"};

inline constexpr std::array<std::string_view, 5> kBrowserNames = {
    "Chrome", "Firefox", "MSIE", "Safari", "Other"};

inline constexpr std::array<std::string_view, 2> kVodLiveNames = {"VoD",
                                                                  "Live"};
inline constexpr std::uint16_t kVod = 0;
inline constexpr std::uint16_t kLive = 1;

/// Mean achievable throughput (kbps) and per-chunk variability by access
/// technology, indexed by connection-type id. 2013-era values: most fixed
/// lines sit in the low single-digit Mbps, mobile wireless well below.
inline constexpr std::array<double, 7> kConnMeanKbps = {
    3'200, 6'500, 12'000, 8'000, 2'600, 3'200, 1'900};
inline constexpr std::array<double, 7> kConnSigma = {
    0.38, 0.32, 0.20, 0.25, 0.55, 0.45, 0.55};

// --- world entities --------------------------------------------------------

struct SiteModel {
  std::uint16_t id = 0;
  AbrConfig abr;
  bool single_bitrate = false;
  std::vector<std::uint16_t> cdn_ids;  // contracted CDNs (>=1)
  double live_fraction = 0.1;          // P(session is Live)
  double base_fail_prob = 0.002;       // origin/packaging failures
  double startup_overhead_ms = 350.0;  // player bootstrap
  /// Origin/packaging throughput factor in (0, 1]; below 1 for a slice of
  /// under-provisioned (typically UGC) providers — a chronic Site-level
  /// cause (paper Table 3: "UGC Sites").
  double origin_quality = 1.0;
  /// When >= 0: clients in this region load third-party player modules from
  /// far away and pay `remote_module_penalty_ms` extra at startup (the
  /// paper's China/US-CDN join-time anecdote, §4.3).
  int remote_module_region = -1;
  double remote_module_penalty_ms = 0.0;
};

struct CdnModel {
  std::uint16_t id = 0;
  bool in_house = false;      // run by a site, not a commercial operator
  double base_fail_prob = 0.004;
  double rtt_base_ms = 40.0;
  /// Edge footprint per region in (0, 1]; poor presence inflates RTT and
  /// deflates throughput for that region's clients.
  std::array<double, kNumRegions> presence{};
  /// How strongly peak-hour load degrades this CDN's delivery (0 = fully
  /// provisioned). In-house CDNs run hotter — the recurring daily
  /// congestion behind much of the paper's prevalence structure.
  double overload_sensitivity = 0.0;
};

struct AsnModel {
  std::uint16_t id = 0;
  Region region = Region::kUS;
  double quality = 1.0;            // multiplicative throughput factor
  bool wireless_provider = false;  // mobile carrier (conn mix skews mobile)
};

struct WorldConfig {
  std::uint32_t num_sites = 379;
  std::uint32_t num_cdns = 19;
  std::uint32_t num_asns = 3000;
  double site_zipf = 0.9;  // popularity skew across sites
  double asn_zipf = 1.0;   // popularity skew across ASNs
  double single_bitrate_site_fraction = 0.20;
  double multi_cdn_site_fraction = 0.25;
  double inhouse_cdn_fraction = 0.35;
  double wireless_asn_fraction = 0.06;
  double remote_module_site_fraction = 0.05;
  std::uint64_t seed = 2013;
};

/// The immutable world. Attribute value ids index the sites()/cdns()/asns()
/// vectors directly and are registered in schema() with readable names.
class World {
 public:
  [[nodiscard]] static World build(const WorldConfig& config);

  [[nodiscard]] const WorldConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::span<const SiteModel> sites() const noexcept {
    return sites_;
  }
  [[nodiscard]] std::span<const CdnModel> cdns() const noexcept {
    return cdns_;
  }
  [[nodiscard]] std::span<const AsnModel> asns() const noexcept {
    return asns_;
  }
  [[nodiscard]] const AttributeSchema& schema() const noexcept {
    return schema_;
  }

  [[nodiscard]] const ZipfSampler& site_sampler() const noexcept {
    return site_sampler_;
  }
  [[nodiscard]] const ZipfSampler& asn_sampler() const noexcept {
    return asn_sampler_;
  }

 private:
  World(WorldConfig config, ZipfSampler site_sampler, ZipfSampler asn_sampler)
      : config_(config),
        site_sampler_(std::move(site_sampler)),
        asn_sampler_(std::move(asn_sampler)) {}

  WorldConfig config_;
  std::vector<SiteModel> sites_;
  std::vector<CdnModel> cdns_;
  std::vector<AsnModel> asns_;
  AttributeSchema schema_;
  ZipfSampler site_sampler_;
  ZipfSampler asn_sampler_;
};

}  // namespace vq
