// Internal ingest plumbing shared by the policy-driven readers
// (robust_io.cpp, columnar.cpp): the rejection sink, the per-epoch damage
// tally, and the positioned-message helpers.  Not installed as public API:
// include only from src/gen/*.cpp.

#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/gen/robust_io.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace vq::detail {

/// Shared rejection path: counts the event, keeps a bounded sample, and in
/// strict mode throws instead of diverting.  `context` is the public
/// function name the strict exception is attributed to.
///
/// The sink is mutex-protected (and Clang-annotated): rejection is the rare
/// path, so one uncontended lock per bad row costs nothing today and lets a
/// future sharded ingest divert rows from several reader threads into one
/// report.  The hot-path report fields (rows_read/rows_kept/...) stay
/// reader-local by contract — each reader owns its stream and report until
/// it returns.
class RowSink {
 public:
  RowSink(const char* context, const RobustReadOptions& options,
          IngestReport& report)
      : context_(context), options_(options), report_(&report) {}

  /// Rejects one row. `line` and `offset` follow QuarantinedRow semantics.
  /// Throws (after recording the rejection) under ErrorPolicy::kStrict.
  /// `weight` counts several rows lost to one event (a damaged column
  /// chunk quarantines every row it held) while keeping a single sample.
  void reject(std::uint64_t line, std::uint64_t offset, RowErrorKind kind,
              std::string detail, std::uint64_t weight = 1)
      VQ_EXCLUDES(mutex_) {
    const MutexLock lock{mutex_};
    report_->rows_quarantined += weight;
    report_->reason_counts[static_cast<std::uint8_t>(kind)] += weight;
    if (options_.policy == ErrorPolicy::kStrict) {
      // The position lives inside `detail`: every caller formats
      // "... at line/record N (offset M)" (the exact strings are
      // contract-tested in test_robust_io.cpp).
      // vq-lint: allow(positioned-throw)
      throw std::runtime_error{std::string{context_} + ": " + detail};
    }
    if (report_->quarantine.size() < options_.max_quarantine_samples &&
        retained_bytes_ + detail.size() <= options_.max_quarantine_bytes) {
      retained_bytes_ += detail.size();
      report_->quarantine.push_back(
          QuarantinedRow{line, offset, kind, std::move(detail)});
    } else {
      // Over the sample or byte budget: the event stays exactly counted,
      // only its payload is shed.
      report_->quarantine_payloads_dropped += 1;
    }
  }

 private:
  const char* const context_;
  const RobustReadOptions& options_;
  Mutex mutex_;
  IngestReport* const report_ VQ_PT_GUARDED_BY(mutex_);
  std::size_t retained_bytes_ VQ_GUARDED_BY(mutex_) = 0;
};

/// Per-epoch kept/quarantined tallies, folded into the report at the end.
class EpochTally {
 public:
  void kept(std::uint32_t epoch, std::uint64_t n = 1) {
    counts_[epoch].first += n;
  }
  void quarantined(std::uint32_t epoch, std::uint64_t n = 1) {
    counts_[epoch].second += n;
  }

  void fold_into(IngestReport& report) const {
    report.epochs.clear();
    report.epochs.reserve(counts_.size());
    for (const auto& [epoch, kq] : counts_) {
      report.epochs.push_back(EpochIngestStats{epoch, kq.first, kq.second});
    }
  }

 private:
  std::map<std::uint32_t, std::pair<std::uint64_t, std::uint64_t>> counts_;
};

[[nodiscard]] inline std::string at_line(std::uint64_t line_no) {
  return " at line " + std::to_string(line_no);
}

[[nodiscard]] inline std::string at_record(std::uint64_t ordinal,
                                           std::uint64_t offset) {
  return " at record " + std::to_string(ordinal) + " (offset " +
         std::to_string(offset) + ")";
}

}  // namespace vq::detail
