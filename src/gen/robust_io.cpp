#include "src/gen/robust_io.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <map>
#include <stdexcept>
#include <utility>

#include "src/gen/ingest_sink.h"
#include "src/gen/trace_format.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace vq {

void publish_ingest_metrics(const IngestReport& report) {
  obs::Registry& reg = obs::Registry::global();
  // Eagerly register every per-reason counter (not just the nonzero ones) so
  // the snapshot's key set does not depend on which corruptions an input
  // happened to contain.
  reg.counter("ingest.rows_read").add(report.rows_read);
  reg.counter("ingest.rows_kept").add(report.rows_kept);
  reg.counter("ingest.rows_quarantined").add(report.rows_quarantined);
  reg.counter("ingest.fields_clamped").add(report.fields_clamped);
  for (int k = 0; k < kNumRowErrorKinds; ++k) {
    const std::string name =
        "ingest.quarantined." +
        std::string{row_error_name(static_cast<RowErrorKind>(k))};
    reg.counter(name).add(report.reason_counts[static_cast<std::size_t>(k)]);
  }
  reg.counter("quarantine.dropped_payloads")
      .add(report.quarantine_payloads_dropped);
  reg.gauge("ingest.degraded_epochs")
      .set(static_cast<std::int64_t>(report.degraded_epochs().size()));
  reg.gauge("ingest.input_truncated").set(report.input_truncated ? 1 : 0);
}

std::string_view error_policy_name(ErrorPolicy p) noexcept {
  switch (p) {
    case ErrorPolicy::kStrict:
      return "strict";
    case ErrorPolicy::kQuarantine:
      return "quarantine";
    case ErrorPolicy::kBestEffort:
      return "best-effort";
  }
  return "?";
}

std::optional<ErrorPolicy> parse_error_policy(std::string_view name) noexcept {
  if (name == "strict") return ErrorPolicy::kStrict;
  if (name == "quarantine") return ErrorPolicy::kQuarantine;
  if (name == "best-effort") return ErrorPolicy::kBestEffort;
  return std::nullopt;
}

std::string_view row_error_name(RowErrorKind k) noexcept {
  switch (k) {
    case RowErrorKind::kFieldCount:
      return "field-count";
    case RowErrorKind::kBadNumber:
      return "bad-number";
    case RowErrorKind::kNonFinite:
      return "non-finite";
    case RowErrorKind::kBadFlag:
      return "bad-flag";
    case RowErrorKind::kAttrOverflow:
      return "attr-overflow";
    case RowErrorKind::kSchemaViolation:
      return "schema-violation";
    case RowErrorKind::kTruncated:
      return "truncated";
    case RowErrorKind::kIoError:
      return "io-error";
    case RowErrorKind::kBadChecksum:
      return "bad-checksum";
  }
  return "?";
}

std::vector<std::uint32_t> IngestReport::degraded_epochs(
    double min_fraction) const {
  std::vector<std::uint32_t> out;
  for (const EpochIngestStats& e : epochs) {
    const auto total = static_cast<double>(e.kept + e.quarantined);
    if (e.quarantined > 0 &&
        static_cast<double>(e.quarantined) >= min_fraction * total) {
      out.push_back(e.epoch);
    }
  }
  // A truncation cut the tail off the stream: whatever epoch was last being
  // filled lost an unknown number of rows.
  if (input_truncated && !epochs.empty()) {
    const std::uint32_t last = epochs.back().epoch;
    if (out.empty() || out.back() != last) out.push_back(last);
  }
  return out;
}

std::string IngestReport::summary() const {
  std::string s = std::to_string(rows_read) + " rows: " +
                  std::to_string(rows_kept) + " kept, " +
                  std::to_string(rows_quarantined) + " quarantined";
  if (rows_quarantined > 0) {
    s += " (";
    bool first = true;
    for (int k = 0; k < kNumRowErrorKinds; ++k) {
      if (reason_counts[k] == 0) continue;
      if (!first) s += ", ";
      first = false;
      s += std::string{row_error_name(static_cast<RowErrorKind>(k))} + "=" +
           std::to_string(reason_counts[k]);
    }
    s += ")";
  }
  if (fields_clamped > 0) {
    s += ", " + std::to_string(fields_clamped) + " fields clamped";
  }
  if (input_truncated) s += ", input truncated";
  return s;
}

namespace {

using detail::kBinaryRecordSize;
using detail::kCsvColumnDims;
using detail::kCsvHeader;

using detail::EpochTally;
using detail::RowSink;
using detail::at_line;

void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

std::vector<std::string_view> split_csv(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == ',') {
      fields.push_back(line.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

template <typename T>
bool try_parse(std::string_view field, T& value) {
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  return ec == std::errc{} && ptr == field.data() + field.size();
}

}  // namespace

RobustLoadedTrace read_trace_csv_robust(std::istream& in,
                                        const RobustReadOptions& options) {
  VQ_SPAN("ingest.read_trace_csv");
  RobustLoadedTrace out;
  IngestReport& report = out.report;
  report.policy = options.policy;
  RowSink sink{"read_trace_csv", options, report};
  EpochTally tally;

  std::string line;
  if (!std::getline(in, line)) {
    // A missing header is structural under every policy: there is nothing
    // to quarantine row-by-row.
    throw std::runtime_error{in.bad()
                                 ? "read_trace_csv: stream failure at line 1"
                                 : "read_trace_csv: empty input at line 1"};
  }
  strip_cr(line);
  if (line != kCsvHeader) {
    throw std::runtime_error{"read_trace_csv: unexpected header at line 1"};
  }

  std::vector<Session> sessions;
  std::uint64_t line_no = 1;  // physical, 1-based; header is line 1
  const bool best_effort = options.policy == ErrorPolicy::kBestEffort;
  while (std::getline(in, line)) {
    ++line_no;
    strip_cr(line);
    if (line.empty()) continue;
    report.rows_read += 1;

    const auto fields = split_csv(line);
    if (fields.size() != 12) {
      sink.reject(line_no, 0, RowErrorKind::kFieldCount,
                  "expected 12 fields, got " + std::to_string(fields.size()) +
                      at_line(line_no));
      continue;
    }

    Session s;
    if (!try_parse(fields[0], s.epoch)) {
      // Without an epoch the row cannot be placed; unsalvageable even under
      // best-effort.
      sink.reject(line_no, 0, RowErrorKind::kBadNumber,
                  "bad numeric field (epoch)" + at_line(line_no));
      continue;
    }
    if (s.epoch > options.max_epoch) {
      // Epochs index dense per-epoch structures; a poisoned value would make
      // downstream code allocate proportionally to it.
      sink.reject(line_no, 0, RowErrorKind::kBadNumber,
                  "epoch " + std::to_string(s.epoch) + " out of range (max " +
                      std::to_string(options.max_epoch) + ")" +
                      at_line(line_no));
      continue;
    }

    // Metrics are validated before any attribute is interned so a rejected
    // row cannot grow the schema.
    bool rejected = false;
    const auto metric_field = [&](std::size_t idx, std::string_view label,
                                  float& dst) {
      float v = 0.0F;
      if (!try_parse(fields[idx], v)) {
        if (best_effort) {
          report.fields_clamped += 1;
          dst = 0.0F;
          return;
        }
        tally.quarantined(s.epoch);
        sink.reject(line_no, 0, RowErrorKind::kBadNumber,
                    "bad numeric field (" + std::string{label} + ")" +
                        at_line(line_no));
        rejected = true;
      } else if (!std::isfinite(v)) {
        if (best_effort) {
          report.fields_clamped += 1;
          dst = 0.0F;
          return;
        }
        tally.quarantined(s.epoch);
        sink.reject(line_no, 0, RowErrorKind::kNonFinite,
                    "non-finite " + std::string{label} + at_line(line_no));
        rejected = true;
      } else {
        dst = v;
      }
    };
    metric_field(8, "buffering_ratio", s.quality.buffering_ratio);
    if (rejected) continue;
    metric_field(9, "bitrate_kbps", s.quality.bitrate_kbps);
    if (rejected) continue;
    metric_field(10, "join_time_ms", s.quality.join_time_ms);
    if (rejected) continue;

    int join_failed = 0;
    if (!try_parse(fields[11], join_failed)) {
      if (best_effort) {
        report.fields_clamped += 1;
        join_failed = 0;
      } else {
        tally.quarantined(s.epoch);
        sink.reject(line_no, 0, RowErrorKind::kBadNumber,
                    "bad numeric field (join_failed)" + at_line(line_no));
        continue;
      }
    }
    s.quality.join_failed = join_failed != 0;

    try {
      for (std::size_t d = 0; d < kCsvColumnDims.size(); ++d) {
        s.attrs[kCsvColumnDims[d]] =
            out.schema.intern(kCsvColumnDims[d], fields[1 + d]);
      }
    } catch (const std::length_error& e) {
      tally.quarantined(s.epoch);
      sink.reject(line_no, 0, RowErrorKind::kAttrOverflow,
                  std::string{e.what()} + at_line(line_no));
      continue;
    }

    tally.kept(s.epoch);
    report.rows_kept += 1;
    sessions.push_back(s);
  }
  if (in.bad()) {
    // The stream died mid-read: treat the line being read as one lost row so
    // rows_read == rows_kept + rows_quarantined stays an invariant.
    report.rows_read += 1;
    report.input_truncated = true;
    sink.reject(line_no + 1, 0, RowErrorKind::kIoError,
                "stream failure (I/O error)" + at_line(line_no + 1));
  }

  tally.fold_into(report);
  publish_ingest_metrics(report);
  out.table = SessionTable{std::move(sessions)};
  return out;
}

RobustLoadedTrace read_trace_csv_robust(const std::filesystem::path& path,
                                        const RobustReadOptions& options) {
  std::ifstream in{path};
  if (!in) {
    throw std::runtime_error{"read_trace_csv: cannot open " + path.string()};
  }
  return read_trace_csv_robust(in, options);
}

// --- binary ------------------------------------------------------------------

namespace {

using detail::at_record;

}  // namespace

RobustLoadedTrace read_trace_binary_robust(std::istream& in,
                                           const RobustReadOptions& options) {
  VQ_SPAN("ingest.read_trace_binary");
  RobustLoadedTrace out;
  IngestReport& report = out.report;
  report.policy = options.policy;
  RowSink sink{"read_trace_binary", options, report};
  EpochTally tally;

  // Container header and schema section: structural, strict under every
  // policy — without the schema no session record can be decoded.
  char magic[4];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, detail::kBinaryMagic, sizeof magic) != 0) {
    throw std::runtime_error{"read_trace_binary: bad magic at offset 0"};
  }
  const auto version = detail::read_pod<std::uint32_t>(in);
  if (version != detail::kBinaryVersion) {
    throw std::runtime_error{"read_trace_binary: unsupported version " +
                             std::to_string(version) + " at offset 4"};
  }
  std::uint64_t offset = 8;  // magic + version
  detail::read_schema_section(in, out.schema, offset, "read_trace_binary");
  const auto count = detail::read_pod<std::uint64_t>(in);
  offset += 8;

  std::vector<Session> sessions;
  // The count is untrusted: a corrupted header could demand a multi-GB
  // up-front allocation before the first truncated read fails. Reserve a
  // bounded floor and let push_back's geometric growth cover honest large
  // traces.
  constexpr std::uint64_t kMaxInitialReserve = 1u << 16;
  sessions.reserve(
      static_cast<std::size_t>(std::min(count, kMaxInitialReserve)));

  const bool best_effort = options.policy == ErrorPolicy::kBestEffort;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t ordinal = i + 1;  // 1-based, mirrors CSV lines
    char record[kBinaryRecordSize];
    in.read(record, kBinaryRecordSize);
    if (in.gcount() != static_cast<std::streamsize>(kBinaryRecordSize)) {
      // Mid-record cut (or stream failure): everything after it is gone, so
      // this is terminal for the loop under every policy.
      report.rows_read += 1;
      report.input_truncated = true;
      if (in.bad()) {
        sink.reject(ordinal, offset, RowErrorKind::kIoError,
                    "stream failure (I/O error)" + at_record(ordinal, offset));
      } else {
        sink.reject(ordinal, offset, RowErrorKind::kTruncated,
                    "truncated input" + at_record(ordinal, offset));
      }
      break;
    }
    report.rows_read += 1;

    Session s;
    for (int d = 0; d < kNumDims; ++d) {
      s.attrs.v[d] = detail::load_pod<std::uint16_t>(record + 2 * d);
    }
    s.epoch = detail::load_pod<std::uint32_t>(record + 14);
    s.quality.buffering_ratio = detail::load_pod<float>(record + 18);
    s.quality.bitrate_kbps = detail::load_pod<float>(record + 22);
    s.quality.join_time_ms = detail::load_pod<float>(record + 26);
    const auto join_byte = detail::load_pod<std::uint8_t>(record + 30);

    if (s.epoch > options.max_epoch) {
      // Checked before anything tallies by epoch: a poisoned epoch is a
      // dense-index bomb downstream and must not enter the report either.
      sink.reject(ordinal, offset, RowErrorKind::kBadNumber,
                  "epoch " + std::to_string(s.epoch) + " out of range (max " +
                      std::to_string(options.max_epoch) + ")" +
                      at_record(ordinal, offset));
      offset += kBinaryRecordSize;
      continue;
    }

    bool rejected = false;
    for (int d = 0; d < kNumDims && !rejected; ++d) {
      const auto dim = static_cast<AttrDim>(d);
      if (s.attrs.v[d] >= out.schema.cardinality(dim)) {
        // An unknown attribute id has no salvageable interpretation.
        tally.quarantined(s.epoch);
        sink.reject(ordinal, offset, RowErrorKind::kSchemaViolation,
                    "attribute id outside schema (" +
                        std::string{dim_name(dim)} + "=" +
                        std::to_string(s.attrs.v[d]) +
                        ")" + at_record(ordinal, offset));
        rejected = true;
      }
    }
    if (rejected) {
      offset += kBinaryRecordSize;
      continue;
    }

    const auto check_metric = [&](float& value, std::string_view label) {
      if (std::isfinite(value)) return;
      if (best_effort) {
        report.fields_clamped += 1;
        value = 0.0F;
        return;
      }
      tally.quarantined(s.epoch);
      sink.reject(ordinal, offset, RowErrorKind::kNonFinite,
                  "non-finite " + std::string{label} +
                      at_record(ordinal, offset));
      rejected = true;
    };
    check_metric(s.quality.buffering_ratio, "buffering_ratio");
    if (!rejected) check_metric(s.quality.bitrate_kbps, "bitrate_kbps");
    if (!rejected) check_metric(s.quality.join_time_ms, "join_time_ms");
    if (rejected) {
      offset += kBinaryRecordSize;
      continue;
    }

    if (join_byte > 1) {
      if (best_effort) {
        report.fields_clamped += 1;
      } else {
        tally.quarantined(s.epoch);
        sink.reject(ordinal, offset, RowErrorKind::kBadFlag,
                    "join_failed byte must be 0 or 1, got " +
                        std::to_string(join_byte) +
                        at_record(ordinal, offset));
        offset += kBinaryRecordSize;
        continue;
      }
    }
    s.quality.join_failed = join_byte != 0;

    tally.kept(s.epoch);
    report.rows_kept += 1;
    sessions.push_back(s);
    offset += kBinaryRecordSize;
  }

  tally.fold_into(report);
  publish_ingest_metrics(report);
  out.table = SessionTable{std::move(sessions)};
  return out;
}

RobustLoadedTrace read_trace_binary_robust(const std::filesystem::path& path,
                                           const RobustReadOptions& options) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    throw std::runtime_error{"read_trace_binary: cannot open " +
                             path.string()};
  }
  return read_trace_binary_robust(in, options);
}

}  // namespace vq
