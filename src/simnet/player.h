// Chunked streaming playback simulation.
//
// Produces exactly the four client-side measurements the paper's
// instrumentation reports per session (§2): join failure, join time,
// buffering ratio, and time-weighted average bitrate.  The model is a
// standard discrete chunk loop: join phase (connect + manifest + initial
// buffer fill), then alternate chunk downloads against a stochastic
// bandwidth process while draining the playback buffer; stalls accumulate
// buffering time.

#pragma once

#include "src/core/session.h"
#include "src/simnet/abr.h"
#include "src/simnet/bandwidth.h"
#include "src/simnet/cdn.h"
#include "src/util/rng.h"

namespace vq {

struct PlayerConfig {
  double chunk_seconds = 4.0;           // media per chunk
  double startup_buffer_seconds = 6.0;  // buffer needed to start playback
  double max_buffer_seconds = 24.0;     // player buffer cap
  int max_chunks = 240;                 // simulation cap (16 min of media)
  double join_timeout_ms = 30'000.0;    // reported join time on failure
};

/// Simulates one session end to end. `duration_s` is how much media the
/// viewer intends to watch. `rng` is consumed by value so each session is an
/// independent reproducible stream.
[[nodiscard]] QualityMetrics simulate_playback(
    const DeliveryConditions& conditions, const AbrConfig& abr,
    const PlayerConfig& player, double duration_s, Xoshiro256ss rng);

}  // namespace vq
