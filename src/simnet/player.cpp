#include "src/simnet/player.h"

#include <algorithm>
#include <cmath>

namespace vq {

QualityMetrics simulate_playback(const DeliveryConditions& conditions,
                                 const AbrConfig& abr,
                                 const PlayerConfig& player,
                                 double duration_s, Xoshiro256ss rng) {
  QualityMetrics q;

  // ---- Join phase -------------------------------------------------------
  if (rng.bernoulli(conditions.join_failure_prob)) {
    q.join_failed = true;
    q.join_time_ms = static_cast<float>(player.join_timeout_ms);
    return q;
  }

  BandwidthParams bw_params;
  bw_params.mean_kbps = conditions.bandwidth_mean_kbps;
  bw_params.sigma = conditions.bandwidth_sigma;
  bw_params.fade_prob = conditions.fade_prob;
  bw_params.fade_depth = conditions.fade_depth;
  BandwidthProcess bandwidth{bw_params, rng.derive(1)};
  AbrController controller{abr};

  // The player's a-priori estimate is noisy (historical/probe based);
  // overestimates cause high initial rungs and slow startup fills.
  const double estimate =
      conditions.bandwidth_mean_kbps * rng.lognormal(0.0, 0.4);
  double bitrate = controller.initial_bitrate(estimate);

  // Connect + manifest round trips, player bootstrap, then fill the startup
  // buffer at the initial bitrate.
  double join_ms = conditions.startup_overhead_ms + 3.0 * conditions.rtt_ms;
  double startup_media = 0.0;
  while (startup_media < player.startup_buffer_seconds) {
    const double kbps = bandwidth.next_kbps();
    join_ms += 1000.0 * player.chunk_seconds * bitrate / kbps;
    startup_media += player.chunk_seconds;
    if (join_ms > player.join_timeout_ms) {
      // Startup starved outright: the client gives up — a join failure
      // ("the CDN is under overload or other unknown reasons", §2).
      q.join_failed = true;
      q.join_time_ms = static_cast<float>(player.join_timeout_ms);
      return q;
    }
  }
  q.join_time_ms = static_cast<float>(join_ms);

  // ---- Steady-state playback -------------------------------------------
  const int chunks = std::clamp(
      static_cast<int>(std::ceil(duration_s / player.chunk_seconds)), 1,
      player.max_chunks);

  double buffer_s = startup_media;
  double rebuffer_s = 0.0;
  double bitrate_weighted = 0.0;
  double media_played = 0.0;

  for (int i = 0; i < chunks; ++i) {
    const double kbps = bandwidth.next_kbps();
    const double download_s = player.chunk_seconds * bitrate / kbps;

    // Playback drains the buffer while the chunk downloads.
    if (download_s > buffer_s) {
      rebuffer_s += download_s - buffer_s;
      buffer_s = 0.0;
    } else {
      buffer_s -= download_s;
    }
    buffer_s = std::min(buffer_s + player.chunk_seconds,
                        player.max_buffer_seconds);

    bitrate_weighted += bitrate * player.chunk_seconds;
    media_played += player.chunk_seconds;

    bitrate = controller.next_bitrate(kbps, buffer_s);
  }

  q.buffering_ratio =
      static_cast<float>(rebuffer_s / (media_played + rebuffer_s));
  q.bitrate_kbps = static_cast<float>(bitrate_weighted / media_played);
  return q;
}

}  // namespace vq
