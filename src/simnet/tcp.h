// TCP throughput ceiling via the Mathis model.
//
// Access technology sets one throughput bound; the transport sets another:
// a loss-limited TCP connection cannot exceed  MSS/RTT * C/sqrt(p)
// (Mathis et al., CCR'97, C ~= 1.22 for periodic loss).  2013-era players
// fetch chunks over a handful of parallel HTTP connections, so the
// effective ceiling is the per-connection rate times the pool size.  This
// is what makes long-RTT, lossy paths (clients far from a CDN's footprint)
// slow even when the access line is fast — the mechanism behind the
// paper's non-US problem clusters.

#pragma once

namespace vq {

struct TcpPathParams {
  double rtt_ms = 50.0;
  double loss_rate = 0.001;       // packet loss probability
  double mss_bytes = 1460.0;      // segment size
  int parallel_connections = 6;   // player HTTP connection pool
};

/// Single-connection Mathis ceiling, in kbps.
[[nodiscard]] double mathis_throughput_kbps(double rtt_ms, double loss_rate,
                                            double mss_bytes = 1460.0);

/// Effective transport ceiling for a player connection pool, in kbps.
[[nodiscard]] double tcp_pool_ceiling_kbps(const TcpPathParams& params);

}  // namespace vq
