#include "src/simnet/abr.h"

#include <algorithm>
#include <stdexcept>

namespace vq {

std::string_view abr_kind_name(AbrKind kind) noexcept {
  switch (kind) {
    case AbrKind::kFixedSingle:
      return "FixedSingle";
    case AbrKind::kRateBased:
      return "RateBased";
    case AbrKind::kBufferBased:
      return "BufferBased";
  }
  return "?";
}

AbrController::AbrController(const AbrConfig& config) : config_(config) {
  if (config_.ladder_kbps.empty()) {
    throw std::invalid_argument{"AbrController: empty bitrate ladder"};
  }
  if (!std::is_sorted(config_.ladder_kbps.begin(),
                      config_.ladder_kbps.end())) {
    throw std::invalid_argument{"AbrController: ladder must be ascending"};
  }
  if (config_.kind == AbrKind::kFixedSingle) {
    // Degenerate ladder: keep only the single configured rung.
    config_.ladder_kbps.resize(1);
  }
}

double AbrController::highest_rung_below(double kbps) const noexcept {
  const auto& ladder = config_.ladder_kbps;
  auto it = std::upper_bound(ladder.begin(), ladder.end(), kbps);
  if (it == ladder.begin()) return ladder.front();
  return *(it - 1);
}

double AbrController::initial_bitrate(double estimated_kbps) noexcept {
  estimate_kbps_ = std::max(estimated_kbps, 1.0);
  switch (config_.kind) {
    case AbrKind::kFixedSingle:
      return config_.ladder_kbps.front();
    case AbrKind::kRateBased:
    case AbrKind::kBufferBased:
      // Both start conservatively from the throughput guess.
      return highest_rung_below(config_.safety_factor * estimate_kbps_);
  }
  return config_.ladder_kbps.front();
}

double AbrController::next_bitrate(double observed_kbps,
                                   double buffer_s) noexcept {
  estimate_kbps_ = config_.ewma_alpha * std::max(observed_kbps, 1.0) +
                   (1.0 - config_.ewma_alpha) * estimate_kbps_;
  const auto& ladder = config_.ladder_kbps;
  switch (config_.kind) {
    case AbrKind::kFixedSingle:
      return ladder.front();
    case AbrKind::kRateBased:
      return highest_rung_below(config_.safety_factor * estimate_kbps_);
    case AbrKind::kBufferBased: {
      if (buffer_s <= config_.buffer_low_s) return ladder.front();
      if (buffer_s >= config_.buffer_high_s) return ladder.back();
      const double t = (buffer_s - config_.buffer_low_s) /
                       (config_.buffer_high_s - config_.buffer_low_s);
      const auto idx = static_cast<std::size_t>(
          t * static_cast<double>(ladder.size() - 1) + 0.5);
      return ladder[std::min(idx, ladder.size() - 1)];
    }
  }
  return ladder.front();
}

}  // namespace vq
