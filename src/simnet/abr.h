// Adaptive bitrate (ABR) controllers.
//
// The paper's dataset spans providers with "different types of bitrate
// adaptation algorithms" (§2) and calls out sites that only offer a single
// bitrate as a recurrent problem cause (Table 3).  We implement the three
// classic controller families plus the degenerate single-rung ladder:
//   kFixedSingle  — no adaptation; one rung (the paper's "single bitrate"
//                   providers whose sessions buffer on slow paths)
//   kRateBased    — EWMA throughput estimate, pick the largest rung below
//                   safety * estimate (classic Smooth Streaming style)
//   kBufferBased  — map buffer occupancy linearly onto the ladder (BBA-0,
//                   Huang et al.)

#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace vq {

enum class AbrKind : std::uint8_t {
  kFixedSingle = 0,
  kRateBased = 1,
  kBufferBased = 2,
};

[[nodiscard]] std::string_view abr_kind_name(AbrKind kind) noexcept;

struct AbrConfig {
  AbrKind kind = AbrKind::kRateBased;
  /// Ascending playback rates in kbps; must be non-empty.
  std::vector<double> ladder_kbps = {400, 800, 1500, 2500, 4500};
  double safety_factor = 0.8;   // rate-based: fraction of estimate to use
  double ewma_alpha = 0.4;      // rate-based: weight of newest sample
  double buffer_low_s = 5.0;    // buffer-based: reservoir
  double buffer_high_s = 20.0;  // buffer-based: cushion top
};

class AbrController {
 public:
  /// Throws std::invalid_argument on an empty or unsorted ladder.
  explicit AbrController(const AbrConfig& config);

  /// Rung for the very first chunk given an a-priori bandwidth guess.
  [[nodiscard]] double initial_bitrate(double estimated_kbps) noexcept;

  /// Rung for the next chunk. `observed_kbps` is the throughput of the chunk
  /// just downloaded; `buffer_s` the current buffer occupancy.
  [[nodiscard]] double next_bitrate(double observed_kbps,
                                    double buffer_s) noexcept;

  [[nodiscard]] std::span<const double> ladder() const noexcept {
    return config_.ladder_kbps;
  }

 private:
  [[nodiscard]] double highest_rung_below(double kbps) const noexcept;

  AbrConfig config_;
  double estimate_kbps_ = 0.0;
};

}  // namespace vq
