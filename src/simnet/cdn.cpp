#include "src/simnet/cdn.h"

#include <algorithm>

namespace vq {

void DeliveryConditions::apply_impact(double bw_multiplier,
                                      double rtt_multiplier,
                                      double fail_prob_add,
                                      double startup_add_ms) noexcept {
  bandwidth_mean_kbps *= bw_multiplier;
  rtt_ms *= rtt_multiplier;
  join_failure_prob += fail_prob_add;
  startup_overhead_ms += startup_add_ms;
}

void DeliveryConditions::clamp() noexcept {
  bandwidth_mean_kbps = std::max(bandwidth_mean_kbps, 10.0);
  bandwidth_sigma = std::clamp(bandwidth_sigma, 0.0, 2.0);
  fade_prob = std::clamp(fade_prob, 0.0, 0.5);
  fade_depth = std::clamp(fade_depth, 0.01, 1.0);
  rtt_ms = std::clamp(rtt_ms, 1.0, 10'000.0);
  join_failure_prob = std::clamp(join_failure_prob, 0.0, 1.0);
  startup_overhead_ms = std::clamp(startup_overhead_ms, 0.0, 60'000.0);
}

}  // namespace vq
