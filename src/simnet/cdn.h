// Delivery-path conditions: everything between a client and the CDN edge
// that the playback simulation needs.  The world model (gen/) composes one
// DeliveryConditions per session from client access technology, ISP quality,
// CDN capacity/geography and any active planted problem events.

#pragma once

namespace vq {

struct DeliveryConditions {
  double bandwidth_mean_kbps = 5000.0;  // end-to-end achievable throughput
  double bandwidth_sigma = 0.35;        // per-chunk variability (log-space)
  double fade_prob = 0.0;               // deep-fade entry probability/chunk
  double fade_depth = 0.2;              // throughput multiplier inside fades
  double rtt_ms = 60.0;                 // control RTT (connect, manifest)
  double join_failure_prob = 0.0;       // P(session never starts)
  double startup_overhead_ms = 300.0;   // player bootstrap / module loads

  /// Applies one problem-event impact (multiplicative on bandwidth and RTT,
  /// additive on failure probability and startup overhead).
  void apply_impact(double bw_multiplier, double rtt_multiplier,
                    double fail_prob_add, double startup_add_ms) noexcept;

  /// Clamps every field into physically meaningful ranges; call once after
  /// all impacts are applied.
  void clamp() noexcept;
};

}  // namespace vq
