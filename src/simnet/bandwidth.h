// Per-session available-bandwidth process.
//
// The paper's substrate is the real Internet; our substitute is a two-level
// stochastic model: a session draws its mean achievable throughput from a
// log-normal (parameterised by access technology, ISP quality, CDN path
// factor, and any active problem events), then per-chunk throughput follows
// a mean-reverting multiplicative AR(1) process around that mean — bursty
// enough to starve ABR buffers occasionally, stable enough that good paths
// stay good, which is what shapes the buffering-ratio tail of Fig. 1(a).

#pragma once

#include "src/util/rng.h"

namespace vq {

struct BandwidthParams {
  double mean_kbps = 5000.0;  // session mean achievable throughput
  double sigma = 0.35;        // per-chunk log-space deviation
  double reversion = 0.6;     // AR(1) pull toward the mean, in [0,1]
  /// Deep-fade regime (wifi interference, cross traffic, radio handover):
  /// each chunk enters a fade with probability fade_prob; a fade multiplies
  /// throughput by fade_depth and persists per chunk with fade_continue.
  /// Fades are what starve an ABR buffer mid-stream — smooth AR(1) noise
  /// alone rarely does.
  double fade_prob = 0.0;
  double fade_depth = 0.2;
  double fade_continue = 0.65;
};

class BandwidthProcess {
 public:
  /// rng is held by value: each session owns an independent stream.
  BandwidthProcess(const BandwidthParams& params, Xoshiro256ss rng) noexcept;

  /// Throughput for the next chunk download, in kbps (always > 0).
  [[nodiscard]] double next_kbps() noexcept;

  [[nodiscard]] double mean_kbps() const noexcept {
    return params_.mean_kbps;
  }

 private:
  BandwidthParams params_;
  Xoshiro256ss rng_;
  double log_state_ = 0.0;  // deviation from log-mean
  bool in_fade_ = false;
};

}  // namespace vq
