#include "src/simnet/tcp.h"

#include <algorithm>
#include <cmath>

namespace vq {

double mathis_throughput_kbps(double rtt_ms, double loss_rate,
                              double mss_bytes) {
  constexpr double kMathisC = 1.22;
  rtt_ms = std::max(rtt_ms, 1.0);
  loss_rate = std::clamp(loss_rate, 1e-6, 0.5);
  const double rate_bytes_per_s =
      mss_bytes / (rtt_ms / 1'000.0) * kMathisC / std::sqrt(loss_rate);
  return rate_bytes_per_s * 8.0 / 1'000.0;
}

double tcp_pool_ceiling_kbps(const TcpPathParams& params) {
  const int pool = std::max(params.parallel_connections, 1);
  return static_cast<double>(pool) *
         mathis_throughput_kbps(params.rtt_ms, params.loss_rate,
                                params.mss_bytes);
}

}  // namespace vq
