#include "src/simnet/bandwidth.h"

#include <algorithm>
#include <cmath>

namespace vq {

BandwidthProcess::BandwidthProcess(const BandwidthParams& params,
                                   Xoshiro256ss rng) noexcept
    : params_(params), rng_(rng) {
  params_.mean_kbps = std::max(params_.mean_kbps, 1.0);
  params_.sigma = std::max(params_.sigma, 0.0);
  params_.reversion = std::clamp(params_.reversion, 0.0, 1.0);
  // Start at a random point of the stationary distribution.
  log_state_ = rng_.normal(0.0, params_.sigma);
}

double BandwidthProcess::next_kbps() noexcept {
  // AR(1) on the log deviation; innovation variance chosen so the
  // stationary stddev equals sigma.
  const double rho = 1.0 - params_.reversion;
  const double innovation_sigma =
      params_.sigma * std::sqrt(std::max(0.0, 1.0 - rho * rho));
  log_state_ = rho * log_state_ + rng_.normal(0.0, innovation_sigma);
  // Log-normal mean correction keeps E[throughput] == mean_kbps
  // (outside fades).
  const double correction = -0.5 * params_.sigma * params_.sigma;
  double kbps = params_.mean_kbps * std::exp(log_state_ + correction);

  if (in_fade_) {
    in_fade_ = rng_.bernoulli(params_.fade_continue);
  } else {
    in_fade_ = rng_.bernoulli(params_.fade_prob);
  }
  if (in_fade_) kbps *= params_.fade_depth;
  return kbps;
}

}  // namespace vq
