// Columnar ("VQTC") container tests: round-trips, streaming reader
// semantics, the CSV -> binary -> columnar differential, and the hardened
// write-path contracts (stream-state checks, precision restoration, the
// attribute-name length cap on both sides of the wire).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/pipeline.h"
#include "src/gen/columnar.h"
#include "src/gen/trace_io.h"
#include "src/gen/tracegen.h"
#include "tests/test_support.h"

namespace vq {
namespace {

using test::Attrs;

LoadedTrace generate_loaded(std::uint32_t epochs = 3,
                            std::uint32_t per_epoch = 400) {
  WorldConfig world_config;
  world_config.num_sites = 20;
  world_config.num_cdns = 4;
  world_config.num_asns = 35;
  const World world = World::build(world_config);
  TraceConfig trace_config;
  trace_config.num_epochs = epochs;
  trace_config.sessions_per_epoch = per_epoch;
  SessionTable table =
      generate_trace(world, EventSchedule::none(epochs), trace_config);
  std::stringstream buffer;
  write_trace_csv(buffer, table, world.schema());
  return read_trace_csv(buffer);
}

std::string columnar_bytes(const SessionTable& table,
                           const AttributeSchema& schema) {
  std::stringstream buffer{std::ios::in | std::ios::out | std::ios::binary};
  write_trace_columnar(buffer, table, schema);
  return buffer.str();
}

void expect_tables_equal(const SessionTable& expected,
                         const SessionTable& actual) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const Session& a = expected.sessions()[i];
    const Session& b = actual.sessions()[i];
    EXPECT_EQ(a.epoch, b.epoch);
    EXPECT_EQ(a.attrs, b.attrs);
    EXPECT_EQ(a.quality, b.quality);
  }
}

TEST(Columnar, RoundTripsExactly) {
  const LoadedTrace original = generate_loaded();
  std::stringstream buffer{std::ios::in | std::ios::out | std::ios::binary};
  write_trace_columnar(buffer, original.table, original.schema);
  const LoadedTrace loaded = read_trace_columnar(buffer);
  expect_tables_equal(original.table, loaded.table);
  for (int d = 0; d < kNumDims; ++d) {
    const auto dim = static_cast<AttrDim>(d);
    ASSERT_EQ(loaded.schema.cardinality(dim),
              original.schema.cardinality(dim));
    for (std::size_t id = 0; id < loaded.schema.cardinality(dim); ++id) {
      EXPECT_EQ(loaded.schema.name(dim, static_cast<std::uint16_t>(id)),
                original.schema.name(dim, static_cast<std::uint16_t>(id)));
    }
  }
}

TEST(Columnar, StreamingReaderServesEpochsIndependently) {
  const LoadedTrace original = generate_loaded(4, 250);
  std::stringstream buffer{columnar_bytes(original.table, original.schema),
                           std::ios::in | std::ios::binary};
  ColumnarReader reader{buffer};
  EXPECT_EQ(reader.num_epochs(), original.table.num_epochs());
  EXPECT_EQ(reader.total_sessions(), original.table.size());
  EXPECT_FALSE(reader.footer_recovered());

  SessionColumns columns;  // reused across epochs, like the pipeline does
  // Read out of order to prove chunks are independently addressable.
  for (const std::uint32_t e : {2u, 0u, 3u, 1u, 2u}) {
    EXPECT_FALSE(reader.read_epoch(e, columns));
    const std::span<const Session> expected = original.table.epoch(e);
    ASSERT_EQ(columns.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      const Session round = columns.row(i, e);
      EXPECT_EQ(round.attrs, expected[i].attrs);
      EXPECT_EQ(round.quality, expected[i].quality);
    }
  }
  EXPECT_THROW((void)reader.read_epoch(reader.num_epochs(), columns),
               std::out_of_range);
  EXPECT_FALSE(reader.report().degraded());
}

TEST(Columnar, EmptyEpochsYieldEmptyBatches) {
  // Epoch 1 has no sessions: no chunk is written, the reader serves an
  // empty, non-degraded batch for it, and neighbours are unaffected.
  std::vector<Session> sessions;
  test::add_sessions(sessions, 0, Attrs{.site = 1}, test::good_quality(), 5);
  test::add_sessions(sessions, 2, Attrs{.site = 2}, test::bad_buffering(), 7);
  AttributeSchema schema;
  for (int d = 0; d < kNumDims; ++d) {
    (void)schema.intern(static_cast<AttrDim>(d), "a");
    (void)schema.intern(static_cast<AttrDim>(d), "b");
    (void)schema.intern(static_cast<AttrDim>(d), "c");
  }
  const SessionTable table{std::move(sessions)};
  std::stringstream buffer{columnar_bytes(table, schema),
                           std::ios::in | std::ios::binary};
  ColumnarReader reader{buffer};
  EXPECT_EQ(reader.num_epochs(), 3u);
  EXPECT_EQ(reader.total_sessions(), 12u);
  SessionColumns columns;
  EXPECT_FALSE(reader.read_epoch(0, columns));
  EXPECT_EQ(columns.size(), 5u);
  EXPECT_FALSE(reader.read_epoch(1, columns));
  EXPECT_TRUE(columns.empty());
  EXPECT_FALSE(reader.read_epoch(2, columns));
  EXPECT_EQ(columns.size(), 7u);
}

TEST(Columnar, FileRoundTripAndStreamingPipelineAgree) {
  const LoadedTrace original = generate_loaded(3, 300);
  const auto path =
      std::filesystem::temp_directory_path() / "vidqual_trace_test.vqtc";
  write_trace_columnar(path, original.table, original.schema);

  PipelineConfig config;
  config.cluster_params.min_sessions = 30;
  const PipelineResult in_ram = run_pipeline(original.table, config);
  ColumnarReader reader{path};
  const PipelineResult streamed = run_pipeline_streaming(reader, config);
  ASSERT_EQ(streamed.num_epochs, in_ram.num_epochs);
  for (const Metric m : kAllMetrics) {
    for (std::uint32_t e = 0; e < in_ram.num_epochs; ++e) {
      const CriticalAnalysis& a = in_ram.at(m, e).analysis;
      const CriticalAnalysis& b = streamed.at(m, e).analysis;
      EXPECT_EQ(a.problem_sessions, b.problem_sessions);
      EXPECT_EQ(a.num_problem_clusters, b.num_problem_clusters);
      ASSERT_EQ(a.criticals.size(), b.criticals.size());
      for (std::size_t i = 0; i < a.criticals.size(); ++i) {
        EXPECT_EQ(a.criticals[i].key.raw(), b.criticals[i].key.raw());
        EXPECT_EQ(a.criticals[i].attributed, b.criticals[i].attributed);
      }
    }
  }
  std::filesystem::remove(path);
  EXPECT_THROW(ColumnarReader{path}, std::runtime_error);
}

TEST(Columnar, CsvBinaryColumnarChainIsLossless) {
  // The convert chain of the CLI: CSV -> binary -> columnar -> load must
  // preserve every session bit-exactly at each hop.
  const LoadedTrace original = generate_loaded(2, 350);

  std::stringstream bin{std::ios::in | std::ios::out | std::ios::binary};
  write_trace_binary(bin, original.table, original.schema);
  const LoadedTrace from_bin = read_trace_binary(bin);
  expect_tables_equal(original.table, from_bin.table);

  std::stringstream col{std::ios::in | std::ios::out | std::ios::binary};
  write_trace_columnar(col, from_bin.table, from_bin.schema);
  const LoadedTrace from_col = read_trace_columnar(col);
  expect_tables_equal(original.table, from_col.table);
}

TEST(Columnar, RejectsBadMagic) {
  std::stringstream buffer{std::string{"NOPE garbage bytes"},
                           std::ios::in | std::ios::binary};
  EXPECT_THROW((void)read_trace_columnar(buffer), std::runtime_error);
}

TEST(Columnar, RejectsWrongVersion) {
  const LoadedTrace original = generate_loaded(1, 20);
  std::string bytes = columnar_bytes(original.table, original.schema);
  bytes[4] = 99;  // patch the version field
  std::stringstream patched{bytes, std::ios::in | std::ios::binary};
  EXPECT_THROW((void)read_trace_columnar(patched), std::runtime_error);
}

TEST(Columnar, WriterReportsStreamFailure) {
  const LoadedTrace original = generate_loaded(1, 10);
  std::ostream broken{nullptr};  // every insertion sets badbit
  EXPECT_THROW(write_trace_columnar(broken, original.table, original.schema),
               std::runtime_error);
}

// --- hardened row-wise write paths (the bugfix satellites) ------------------

TEST(TraceWritePath, CsvWriterThrowsOnStreamFailure) {
  const LoadedTrace original = generate_loaded(1, 10);
  std::ostream broken{nullptr};
  EXPECT_THROW(write_trace_csv(broken, original.table, original.schema),
               std::runtime_error);
}

TEST(TraceWritePath, CsvWriterRestoresCallerPrecision) {
  const LoadedTrace original = generate_loaded(1, 10);
  std::ostringstream out;
  out.precision(3);
  write_trace_csv(out, original.table, original.schema);
  EXPECT_EQ(out.precision(), 3);

  // Restored on the failure path too.
  std::ostream broken{nullptr};
  broken.precision(5);
  EXPECT_THROW(write_trace_csv(broken, original.table, original.schema),
               std::runtime_error);
  EXPECT_EQ(broken.precision(), 5);
}

AttributeSchema schema_with_long_name(std::size_t len) {
  AttributeSchema schema;
  for (int d = 0; d < kNumDims; ++d) {
    (void)schema.intern(static_cast<AttrDim>(d), "v");
  }
  (void)schema.intern(AttrDim::kSite, std::string(len, 'x'));
  return schema;
}

TEST(TraceWritePath, BinaryWriterRejectsOverlongAttributeNames) {
  // A name longer than the shared cap would silently truncate through the
  // u16 length field; both binary-family writers must refuse it up front.
  std::vector<Session> sessions;
  test::add_sessions(sessions, 0, Attrs{}, test::good_quality(), 1);
  const SessionTable table{std::move(sessions)};
  const AttributeSchema schema = schema_with_long_name(4097);
  std::stringstream buffer{std::ios::in | std::ios::out | std::ios::binary};
  EXPECT_THROW(write_trace_binary(buffer, table, schema),
               std::invalid_argument);
  EXPECT_THROW(write_trace_columnar(buffer, table, schema),
               std::invalid_argument);
}

TEST(TraceWritePath, NamesAtTheCapRoundTrip) {
  std::vector<Session> sessions;
  test::add_sessions(sessions, 0, Attrs{}, test::good_quality(), 1);
  const SessionTable table{std::move(sessions)};
  const AttributeSchema schema = schema_with_long_name(4096);
  std::stringstream buffer{std::ios::in | std::ios::out | std::ios::binary};
  write_trace_binary(buffer, table, schema);
  const LoadedTrace loaded = read_trace_binary(buffer);
  EXPECT_EQ(loaded.schema.name(AttrDim::kSite, 1),
            std::string(4096, 'x'));
}

/// Patches the first schema name's u16 length field (offset 12 in both
/// binary-family containers: magic + version + first dim's u32 count).
std::string patch_first_name_len(std::string bytes, std::uint16_t claimed) {
  std::memcpy(bytes.data() + 12, &claimed, sizeof claimed);
  return bytes;
}

TEST(TraceWritePath, ReadersRejectOverlongClaimedNameLengths) {
  // Reader-side symmetry: a corrupted length field beyond the cap is
  // schema corruption, rejected before any allocation — in both containers.
  const LoadedTrace original = generate_loaded(1, 10);

  std::stringstream bin{std::ios::in | std::ios::out | std::ios::binary};
  write_trace_binary(bin, original.table, original.schema);
  std::stringstream bad_bin{patch_first_name_len(bin.str(), 4097),
                            std::ios::in | std::ios::binary};
  try {
    (void)read_trace_binary(bad_bin);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("exceeds cap"), std::string::npos)
        << e.what();
  }

  std::stringstream bad_col{
      patch_first_name_len(
          columnar_bytes(original.table, original.schema), 4097),
      std::ios::in | std::ios::binary};
  try {
    (void)read_trace_columnar(bad_col);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("exceeds cap"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace vq
