#include "src/core/monitor.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "tests/test_support.h"

namespace vq {
namespace {

using test::Attrs;

MonitorConfig small_monitor() {
  MonitorConfig config;
  config.cluster_params.min_sessions = 50;
  config.escalate_after = 1;
  return config;
}

/// Epoch with a bad CDN (optionally) plus quiet background.
std::vector<Session> monitored_epoch(std::uint32_t epoch, bool cdn_bad) {
  std::vector<Session> sessions;
  if (cdn_bad) {
    for (std::uint16_t asn = 1; asn <= 4; ++asn) {
      test::add_sessions(sessions, epoch, Attrs{.cdn = 1, .asn = asn},
                         test::bad_buffering(), 15);
      test::add_sessions(sessions, epoch, Attrs{.cdn = 1, .asn = asn},
                         test::good_quality(), 10);
    }
  } else {
    for (std::uint16_t asn = 1; asn <= 4; ++asn) {
      test::add_sessions(sessions, epoch, Attrs{.cdn = 1, .asn = asn},
                         test::good_quality(), 25);
    }
  }
  for (std::uint16_t asn = 10; asn < 28; ++asn) {
    test::add_sessions(sessions, epoch, Attrs{.cdn = 2, .asn = asn},
                       test::bad_buffering(), 2);
    test::add_sessions(sessions, epoch, Attrs{.cdn = 2, .asn = asn},
                       test::good_quality(), 48);
  }
  return sessions;
}

std::vector<IncidentEvent> events_of(std::vector<IncidentEvent> all,
                                     IncidentUpdate kind, Metric metric) {
  std::vector<IncidentEvent> out;
  for (auto& e : all) {
    if (e.update == kind && e.incident.metric == metric) {
      out.push_back(std::move(e));
    }
  }
  return out;
}

TEST(StreamingDetector, RaisesNewThenEscalatedThenCleared) {
  StreamingDetector detector{small_monitor()};

  auto e0 = detector.ingest(monitored_epoch(0, true), 0);
  const auto new0 =
      events_of(e0, IncidentUpdate::kNew, Metric::kBufRatio);
  ASSERT_EQ(new0.size(), 1u);
  EXPECT_TRUE(new0[0].incident.key.has(AttrDim::kCdn));
  EXPECT_EQ(new0[0].incident.streak, 1u);
  EXPECT_TRUE(
      events_of(e0, IncidentUpdate::kEscalated, Metric::kBufRatio).empty());

  auto e1 = detector.ingest(monitored_epoch(1, true), 1);
  const auto escalated =
      events_of(e1, IncidentUpdate::kEscalated, Metric::kBufRatio);
  ASSERT_EQ(escalated.size(), 1u);
  EXPECT_EQ(escalated[0].incident.streak, 2u);
  EXPECT_TRUE(escalated[0].incident.escalated);

  auto e2 = detector.ingest(monitored_epoch(2, false), 2);
  const auto cleared =
      events_of(e2, IncidentUpdate::kCleared, Metric::kBufRatio);
  ASSERT_EQ(cleared.size(), 1u);
  EXPECT_TRUE(detector.active(Metric::kBufRatio).empty());
  EXPECT_EQ(detector.total_opened(Metric::kBufRatio), 1u);
}

TEST(StreamingDetector, NoEscalationBelowDelay) {
  MonitorConfig config = small_monitor();
  config.escalate_after = 3;
  StreamingDetector detector{config};
  for (std::uint32_t e = 0; e < 3; ++e) {
    const auto events = detector.ingest(monitored_epoch(e, true), e);
    EXPECT_TRUE(
        events_of(events, IncidentUpdate::kEscalated, Metric::kBufRatio)
            .empty())
        << "escalated too early at epoch " << e;
  }
  const auto events = detector.ingest(monitored_epoch(3, true), 3);
  EXPECT_EQ(
      events_of(events, IncidentUpdate::kEscalated, Metric::kBufRatio).size(),
      1u);
}

TEST(StreamingDetector, ReopeningCountsAsNewIncident) {
  StreamingDetector detector{small_monitor()};
  (void)detector.ingest(monitored_epoch(0, true), 0);
  (void)detector.ingest(monitored_epoch(1, false), 1);
  const auto events = detector.ingest(monitored_epoch(2, true), 2);
  EXPECT_EQ(events_of(events, IncidentUpdate::kNew, Metric::kBufRatio).size(),
            1u);
  EXPECT_EQ(detector.total_opened(Metric::kBufRatio), 2u);
}

TEST(StreamingDetector, GapResetsStreaks) {
  StreamingDetector detector{small_monitor()};
  (void)detector.ingest(monitored_epoch(0, true), 0);
  // Epoch 5 after a gap: incident present but streak must restart at 1, so
  // no escalation fires even though the registry entry survived.
  const auto events = detector.ingest(monitored_epoch(5, true), 5);
  EXPECT_TRUE(
      events_of(events, IncidentUpdate::kEscalated, Metric::kBufRatio)
          .empty());
  const auto active = detector.active(Metric::kBufRatio);
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0].streak, 1u);
  EXPECT_EQ(active[0].first_epoch, 5u);
}

TEST(StreamingDetector, RejectsNonMonotonicEpochs) {
  StreamingDetector detector{small_monitor()};
  (void)detector.ingest(monitored_epoch(3, false), 3);
  EXPECT_THROW((void)detector.ingest(monitored_epoch(3, false), 3),
               std::invalid_argument);
  EXPECT_THROW((void)detector.ingest(monitored_epoch(1, false), 1),
               std::invalid_argument);
  // The throwing path must not have advanced detector state.
  EXPECT_EQ(detector.last_epoch(), 3u);
  EXPECT_EQ(detector.stale_epochs_dropped(), 0u);
}

TEST(StreamingDetector, SkipStaleDropsDuplicatesAndCounts) {
  MonitorConfig config = small_monitor();
  config.order_policy = EpochOrderPolicy::kSkipStale;
  StreamingDetector detector{config};
  (void)detector.ingest(monitored_epoch(3, true), 3);

  // Duplicate and late epochs are dropped: no events, no state change.
  EXPECT_TRUE(detector.ingest(monitored_epoch(3, true), 3).empty());
  EXPECT_TRUE(detector.ingest(monitored_epoch(1, false), 1).empty());
  EXPECT_EQ(detector.stale_epochs_dropped(), 2u);
  EXPECT_EQ(detector.last_epoch(), 3u);
  EXPECT_EQ(detector.active(Metric::kBufRatio).size(), 1u);

  // The stream continues normally afterwards.
  const auto events = detector.ingest(monitored_epoch(4, true), 4);
  EXPECT_EQ(
      events_of(events, IncidentUpdate::kEscalated, Metric::kBufRatio).size(),
      1u);
}

TEST(StreamingDetector, DegradedEpochSuppressesClears) {
  StreamingDetector detector{small_monitor()};
  (void)detector.ingest(monitored_epoch(0, true), 0);

  // The incident fails to recur on a degraded epoch: no kCleared, the
  // incident stays open with its streak frozen and zero attributed mass.
  const auto e1 =
      detector.ingest(monitored_epoch(1, false), 1, {.degraded = true});
  EXPECT_TRUE(
      events_of(e1, IncidentUpdate::kCleared, Metric::kBufRatio).empty());
  EXPECT_GE(detector.suppressed_clears(), 1u);
  auto active = detector.active(Metric::kBufRatio);
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0].streak, 1u);
  EXPECT_EQ(active[0].attributed, 0.0);

  // Recurring on the next (non-contiguous because epoch 1 "cleared" nothing)
  // epoch keeps the same incident open rather than raising a second kNew.
  const auto e2 = detector.ingest(monitored_epoch(2, true), 2);
  EXPECT_TRUE(events_of(e2, IncidentUpdate::kNew, Metric::kBufRatio).empty());
  EXPECT_EQ(detector.total_opened(Metric::kBufRatio), 1u);

  // A clean quiet epoch finally clears it.
  const auto e3 = detector.ingest(monitored_epoch(3, false), 3);
  EXPECT_EQ(
      events_of(e3, IncidentUpdate::kCleared, Metric::kBufRatio).size(), 1u);
  EXPECT_TRUE(detector.active(Metric::kBufRatio).empty());
}

TEST(StreamingDetector, ActiveListsMatchRegistry) {
  StreamingDetector detector{small_monitor()};
  (void)detector.ingest(monitored_epoch(0, true), 0);
  const auto active = detector.active(Metric::kBufRatio);
  ASSERT_EQ(active.size(), 1u);
  EXPECT_GT(active[0].attributed, 0.0);
  EXPECT_GE(active[0].stats.sessions, 50u);
  // Unrelated metrics stay quiet.
  EXPECT_TRUE(detector.active(Metric::kJoinFailure).empty());
}

TEST(IncidentUpdateName, Labels) {
  EXPECT_EQ(incident_update_name(IncidentUpdate::kNew), "new");
  EXPECT_EQ(incident_update_name(IncidentUpdate::kEscalated), "escalated");
  EXPECT_EQ(incident_update_name(IncidentUpdate::kCleared), "cleared");
}

}  // namespace
}  // namespace vq
