// Socket-level chaos harness for the live ingest server (DESIGN.md §4.11).
//
// Where fault_injection.h attacks the file readers through a hostile
// streambuf, this harness attacks the server through a real socket: a
// ServeHarness runs a serve::Server (detector loop on a background thread)
// against a unique Unix-domain socket, and tests drive serve::Producer —
// including its send_raw escape hatch — to deliver mid-frame disconnects,
// flipped bytes, stalled writers, interleaved producers, and floods.  The
// shared invariant every chaos test pins:
//
//   rows_received == rows_admitted + rows_quarantined + rows_shed
//                    + rows_stale      (ServeStats::accounting_exact)
//
// and the server survives to serve the next, well-behaved producer.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <unistd.h>

#include "src/core/attributes.h"
#include "src/core/monitor.h"
#include "src/serve/producer.h"
#include "src/serve/server.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace vq::test {

/// One value interned per dimension — the minimum vocabulary for
/// test_support's all-zero Attrs{} rows to pass the server's schema
/// validation (every dimension id must be under the hello's cardinality).
inline AttributeSchema one_value_schema() {
  AttributeSchema schema;
  for (int d = 0; d < kNumDims; ++d) {
    (void)schema.intern(static_cast<AttrDim>(d), "v0");
  }
  return schema;
}

/// Unique Unix-socket path in the temp dir (pid + counter, so parallel
/// test shards never collide).
inline std::string unique_socket_path(std::string_view tag) {
  static std::atomic<int> counter{0};
  const int n = counter.fetch_add(1);
  std::string name = "vq_" + std::string{tag} + "_" +
                     std::to_string(::getpid()) + "_" + std::to_string(n) +
                     ".sock";
  return (std::filesystem::temp_directory_path() / name).string();
}

/// One incident event rendered exactly as the monitor CLI prints it, so a
/// socket-path run can be diffed byte-for-byte against a file-path run.
inline std::string render_event(const IncidentEvent& event,
                                const std::string& description) {
  char line[256];
  std::snprintf(line, sizeof line,
                "%02u:00 %-9s %-11s %s (streak %u h, %.0f sessions)",
                event.epoch,
                std::string(incident_update_name(event.update)).c_str(),
                std::string(metric_name(event.incident.metric)).c_str(),
                description.c_str(), event.incident.streak,
                event.incident.attributed);
  return std::string{line};
}

/// Owns a detector + schema + server and runs Server::run() on a
/// background thread; tests connect producers at address() and then call
/// drain() (or rely on drain_on_idle) before reading stats()/events().
class ServeHarness {
 public:
  explicit ServeHarness(serve::ServeConfig config,
                        const MonitorConfig& monitor_config = MonitorConfig{})
      : detector_([&] {
          MonitorConfig mc = monitor_config;
          // A live feed cannot take the kThrow arm (server.h).
          mc.order_policy = EpochOrderPolicy::kSkipStale;
          return mc;
        }()),
        address_(config.address.empty() ? "unix:" + unique_socket_path("srv")
                                        : config.address) {
    config.address = address_;
    // Mirror the CLI's resume path: an existing checkpoint restores the
    // detector before the server starts sealing.
    if (!config.checkpoint_path.empty() &&
        std::filesystem::exists(config.checkpoint_path)) {
      detector_.load_checkpoint(config.checkpoint_path);
    }
    server_.emplace(std::move(config), detector_, schema_);
    server_->set_event_callback(
        [this](const IncidentEvent& event, const std::string& description) {
          const MutexLock lock{mutex_};
          events_.push_back(render_event(event, description));
        });
    // The harness must run the server off-thread while the test drives the
    // socket; ThreadPool::parallel_for has no detached long-lived task shape.
    // vq-lint: allow(naked-thread)
    runner_ = std::thread{[this] { rc_.store(server_->run()); }};
  }

  ~ServeHarness() {
    if (runner_.joinable()) {
      server_->request_drain();
      runner_.join();
    }
    if (address_.rfind("unix:", 0) == 0) {
      std::filesystem::remove(address_.substr(5));
    }
  }

  ServeHarness(const ServeHarness&) = delete;
  ServeHarness& operator=(const ServeHarness&) = delete;

  [[nodiscard]] const std::string& address() const noexcept {
    return address_;
  }

  [[nodiscard]] serve::Producer connect() const {
    return serve::Producer{address_};
  }

  /// Requests a drain and joins the server thread; returns run()'s rc.
  int drain() {
    server_->request_drain();
    if (runner_.joinable()) runner_.join();
    return rc_.load();
  }

  [[nodiscard]] serve::ServeStats stats() const { return server_->stats(); }
  [[nodiscard]] StreamingDetector& detector() noexcept { return detector_; }
  [[nodiscard]] serve::Server& server() noexcept { return *server_; }

  [[nodiscard]] std::vector<std::string> events() const {
    const MutexLock lock{mutex_};
    return events_;
  }

 private:
  StreamingDetector detector_;
  AttributeSchema schema_;
  std::string address_;
  std::optional<serve::Server> server_;
  std::thread runner_;  // vq-lint: allow(naked-thread)
  std::atomic<int> rc_{-1};

  mutable Mutex mutex_;
  std::vector<std::string> events_ VQ_GUARDED_BY(mutex_);
};

// --- byte-stream fault transforms (socket-side FaultyStreambuf) --------------

/// XORs `mask` into the byte at `offset` (no-op past the end).
inline std::string flip_byte(std::string bytes, std::size_t offset,
                             unsigned char mask = 0x01) {
  if (offset < bytes.size()) {
    bytes[offset] = static_cast<char>(
        static_cast<unsigned char>(bytes[offset]) ^ mask);
  }
  return bytes;
}

/// The stream simply ends at `at` (a producer killed mid-frame).
inline std::string truncate_at(std::string bytes, std::size_t at) {
  if (at < bytes.size()) bytes.resize(at);
  return bytes;
}

/// Sends `bytes` in `chunk`-sized writes with a pause between each — the
/// stalled/dripping writer a read deadline exists for.
inline void drip(serve::Producer& producer, std::string_view bytes,
                 std::size_t chunk, std::chrono::milliseconds gap) {
  for (std::size_t off = 0; off < bytes.size(); off += chunk) {
    producer.send_raw(bytes.substr(off, chunk));
    std::this_thread::sleep_for(gap);
  }
}

/// Polls `done` until it returns true or `deadline` passes (socket tests
/// must never hard-sleep for their whole budget).
template <typename Pred>
bool wait_until(Pred done, std::chrono::milliseconds deadline) {
  // Real elapsed time is the thing under test (socket deadlines); nothing
  // here feeds a seeded computation.
  // vq-lint: allow(wall-clock)
  const auto start = std::chrono::steady_clock::now();
  while (!done()) {
    if (std::chrono::steady_clock::now() - start > deadline)  // vq-lint: allow(wall-clock)
      return false;
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
  }
  return true;
}

}  // namespace vq::test
