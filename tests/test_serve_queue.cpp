// BoundedRowQueue (src/serve/bounded_queue.h): capacity accounting in rows,
// both overload policies, and the wake-ups that keep the acceptor and
// detector threads from deadlocking.  Row conservation is the theme: every
// pushed row ends up admitted, refused, or handed back in an evicted batch.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/serve/bounded_queue.h"

namespace vq::serve {
namespace {

using Queue = BoundedRowQueue<int>;
using Batch = Queue::Batch;
using std::chrono::milliseconds;

Batch batch(std::uint64_t conn, std::size_t n, int fill = 0) {
  Batch b;
  b.connection_id = conn;
  b.rows.assign(n, fill);
  return b;
}

std::size_t total_rows(const std::vector<Batch>& batches) {
  std::size_t n = 0;
  for (const Batch& b : batches) n += b.rows.size();
  return n;
}

TEST(ServeQueue, AdmitsUpToCapacityThenRefusesOnDeadline) {
  Queue q{10, OverloadPolicy::kBlockWithDeadline};
  EXPECT_TRUE(q.push(batch(1, 6), milliseconds{0}).admitted);
  EXPECT_TRUE(q.push(batch(1, 4), milliseconds{0}).admitted);
  EXPECT_EQ(q.size_rows(), 10u);

  const auto result = q.push(batch(2, 1), milliseconds{10});
  EXPECT_FALSE(result.admitted);
  EXPECT_EQ(result.refused, 1u);
  EXPECT_TRUE(result.evicted.empty());
  EXPECT_EQ(q.size_rows(), 10u);  // nothing was displaced
}

TEST(ServeQueue, BatchLargerThanCapacityIsRefusedOutright) {
  for (const OverloadPolicy policy :
       {OverloadPolicy::kBlockWithDeadline, OverloadPolicy::kShedOldest}) {
    Queue q{8, policy};
    const auto result = q.push(batch(1, 9), milliseconds{0});
    EXPECT_FALSE(result.admitted);
    EXPECT_EQ(result.refused, 9u);
    EXPECT_EQ(q.size_rows(), 0u);
  }
}

TEST(ServeQueue, ShedOldestEvictsWholeBatchesWithAttribution) {
  Queue q{10, OverloadPolicy::kShedOldest};
  ASSERT_TRUE(q.push(batch(1, 4, 11), milliseconds{0}).admitted);
  ASSERT_TRUE(q.push(batch(2, 4, 22), milliseconds{0}).admitted);
  // 8 rows queued; a 7-row batch must evict both conn-1 and conn-2 batches
  // (freshest-data-wins), and they come back whole for shed accounting.
  const auto result = q.push(batch(3, 7, 33), milliseconds{0});
  EXPECT_TRUE(result.admitted);
  EXPECT_EQ(result.refused, 0u);
  ASSERT_EQ(result.evicted.size(), 2u);
  EXPECT_EQ(result.evicted[0].connection_id, 1u);
  EXPECT_EQ(result.evicted[1].connection_id, 2u);
  EXPECT_EQ(total_rows(result.evicted), 8u);
  EXPECT_EQ(q.size_rows(), 7u);

  const auto popped = q.pop_all(milliseconds{0});
  ASSERT_EQ(popped.size(), 1u);
  EXPECT_EQ(popped[0].connection_id, 3u);
  EXPECT_EQ(popped[0].rows[0], 33);
}

TEST(ServeQueue, ShedOnlyEvictsWhatTheNewBatchNeeds) {
  Queue q{10, OverloadPolicy::kShedOldest};
  ASSERT_TRUE(q.push(batch(1, 3), milliseconds{0}).admitted);
  ASSERT_TRUE(q.push(batch(2, 3), milliseconds{0}).admitted);
  ASSERT_TRUE(q.push(batch(3, 3), milliseconds{0}).admitted);
  const auto result = q.push(batch(4, 2), milliseconds{0});
  EXPECT_TRUE(result.admitted);
  ASSERT_EQ(result.evicted.size(), 1u);  // one batch frees enough
  EXPECT_EQ(result.evicted[0].connection_id, 1u);
  EXPECT_EQ(q.size_rows(), 8u);
}

TEST(ServeQueue, PopAllUnblocksAWaitingProducer) {
  Queue q{4, OverloadPolicy::kBlockWithDeadline};
  ASSERT_TRUE(q.push(batch(1, 4), milliseconds{0}).admitted);

  // Blocking-queue wakeup tests need a thread parked inside push/pop —
  // exactly what ThreadPool::parallel_for abstracts away.
  std::thread producer{[&q] {  // vq-lint: allow(naked-thread)
    // Generous deadline: the pop below must wake us long before it.
    const auto result = q.push(batch(2, 2), milliseconds{5000});
    EXPECT_TRUE(result.admitted);
  }};
  std::this_thread::sleep_for(milliseconds{20});
  const auto popped = q.pop_all(milliseconds{0});
  EXPECT_EQ(total_rows(popped), 4u);
  producer.join();
  EXPECT_EQ(q.size_rows(), 2u);
}

TEST(ServeQueue, CloseWakesWaitersAndKeepsPendingPoppable) {
  Queue q{4, OverloadPolicy::kBlockWithDeadline};
  ASSERT_TRUE(q.push(batch(1, 4), milliseconds{0}).admitted);

  std::thread producer{[&q] {  // vq-lint: allow(naked-thread)
    const auto result = q.push(batch(2, 1), milliseconds{5000});
    EXPECT_FALSE(result.admitted);  // woken by close, not by space
    EXPECT_EQ(result.refused, 1u);
  }};
  std::this_thread::sleep_for(milliseconds{20});
  q.close();
  producer.join();

  // The drain contract: batches enqueued before close still come out.
  const auto popped = q.pop_all(milliseconds{0});
  EXPECT_EQ(total_rows(popped), 4u);
  EXPECT_TRUE(q.pop_all(milliseconds{0}).empty());
  EXPECT_FALSE(q.push(batch(3, 1), milliseconds{0}).admitted);
}

TEST(ServeQueue, PopAllBlocksUntilDataArrives) {
  Queue q{8, OverloadPolicy::kBlockWithDeadline};
  std::thread producer{[&q] {  // vq-lint: allow(naked-thread)
    std::this_thread::sleep_for(milliseconds{20});
    (void)q.push(batch(1, 3), milliseconds{0});
  }};
  const auto popped = q.pop_all(milliseconds{5000});
  EXPECT_EQ(total_rows(popped), 3u);
  producer.join();
}

TEST(ServeQueue, HighwaterTracksPeakRows) {
  Queue q{100, OverloadPolicy::kBlockWithDeadline};
  ASSERT_TRUE(q.push(batch(1, 30), milliseconds{0}).admitted);
  ASSERT_TRUE(q.push(batch(1, 40), milliseconds{0}).admitted);
  (void)q.pop_all(milliseconds{0});
  ASSERT_TRUE(q.push(batch(1, 10), milliseconds{0}).admitted);
  EXPECT_EQ(q.highwater_rows(), 70u);
  EXPECT_EQ(q.size_rows(), 10u);
}

TEST(ServeQueue, RowConservationUnderConcurrentHammer) {
  // 4 producers x 50 batches against a tiny queue under kShedOldest: every
  // row must come out exactly once as admitted-and-popped, evicted, or
  // refused.  (SPSC in the server; the lock makes MPSC safe for tests.)
  Queue q{64, OverloadPolicy::kShedOldest};
  constexpr int kProducers = 4;
  constexpr int kBatches = 50;
  constexpr std::size_t kRows = 7;
  std::atomic<std::uint64_t> evicted{0};
  std::atomic<std::uint64_t> refused{0};
  std::atomic<std::uint64_t> admitted{0};
  // Contention stress: kProducers threads hammering one queue, each with
  // its own batch cadence — not a fork-join workload.
  std::vector<std::thread> producers;  // vq-lint: allow(naked-thread)
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &evicted, &refused, &admitted, p] {
      for (int i = 0; i < kBatches; ++i) {
        auto result =
            q.push(batch(static_cast<std::uint64_t>(p), kRows),
                   milliseconds{0});
        if (result.admitted) admitted.fetch_add(kRows);
        refused.fetch_add(result.refused);
        evicted.fetch_add(total_rows(result.evicted));
      }
    });
  }
  std::uint64_t popped = 0;
  for (int drains = 0; drains < 200; ++drains) {
    popped += total_rows(q.pop_all(milliseconds{1}));
  }
  for (std::thread& t : producers) t.join();  // vq-lint: allow(naked-thread)
  popped += total_rows(q.pop_all(milliseconds{0}));

  const std::uint64_t pushed = kProducers * kBatches * kRows;
  EXPECT_EQ(admitted.load() + refused.load(), pushed);
  EXPECT_EQ(popped + evicted.load(), admitted.load());
}

}  // namespace
}  // namespace vq::serve
