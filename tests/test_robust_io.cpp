// Policy-driven ingest (gen/robust_io.h): quarantine accounting, best-effort
// field repair, positioned strict errors, CRLF tolerance, and the
// degraded-epoch annotation the monitor consumes.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "src/gen/robust_io.h"
#include "src/gen/trace_io.h"
#include "tests/test_support.h"

namespace vq {
namespace {

using test::Attrs;

constexpr std::string_view kHeader =
    "epoch,site,cdn,asn,conn_type,player,browser,vod_live,"
    "buffering_ratio,bitrate_kbps,join_time_ms,join_failed";

std::string good_row(std::uint32_t epoch) {
  return std::to_string(epoch) + ",s0,c0,a0,dsl,flash,chrome,vod," +
         "0.01,3000,1500,0";
}

std::string csv_of(const std::vector<std::string>& rows,
                   std::string_view eol = "\n") {
  std::string out{kHeader};
  out += eol;
  for (const auto& r : rows) {
    out += r;
    out += eol;
  }
  return out;
}

RobustLoadedTrace parse(const std::string& text,
                        const RobustReadOptions& options) {
  std::istringstream in{text};
  return read_trace_csv_robust(in, options);
}

std::uint64_t count_of(const IngestReport& r, RowErrorKind k) {
  return r.reason_counts[static_cast<std::uint8_t>(k)];
}

TEST(RobustCsv, AcceptsCrlfAndTrailingNewlines) {
  const std::string crlf =
      csv_of({good_row(0), good_row(0), good_row(1)}, "\r\n") + "\r\n\r\n";
  std::istringstream in{crlf};
  const LoadedTrace loaded = read_trace_csv(in);  // strict shim
  EXPECT_EQ(loaded.table.size(), 3u);
  EXPECT_EQ(loaded.table.num_epochs(), 2u);

  const std::string lf = csv_of({good_row(0)}) + "\n\n";
  std::istringstream in2{lf};
  EXPECT_EQ(read_trace_csv(in2).table.size(), 1u);
}

TEST(RobustCsv, StrictErrorsCarryOneBasedPhysicalLineNumbers) {
  // Header is line 1; first data row is line 2. Blank lines still advance
  // the physical line counter.
  const std::string text =
      std::string{kHeader} + "\n" + good_row(0) + "\n\n" +
      "1,s0,c0,a0,dsl,flash,chrome,vod,0.01,nope,1500,0\n";
  std::istringstream in{text};
  try {
    (void)read_trace_csv(in);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(),
                 "read_trace_csv: bad numeric field (bitrate_kbps) at line 4");
  }

  std::istringstream empty{""};
  try {
    (void)read_trace_csv(empty);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "read_trace_csv: empty input at line 1");
  }

  std::istringstream bad_header{"not,the,header\n"};
  try {
    (void)read_trace_csv(bad_header);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "read_trace_csv: unexpected header at line 1");
  }
}

TEST(RobustCsv, QuarantineDivertsBadRowsAndKeepsGoodOnes) {
  const std::string text = csv_of({
      good_row(0),
      "0,s0,c0,a0,dsl,flash,chrome,vod,0.01,3000",      // 10 fields
      "zero,s0,c0,a0,dsl,flash,chrome,vod,0.01,3000,1500,0",  // bad epoch
      "0,s0,c0,a0,dsl,flash,chrome,vod,inf,3000,1500,0",      // non-finite
      good_row(1),
  });
  const RobustLoadedTrace loaded =
      parse(text, {.policy = ErrorPolicy::kQuarantine});
  const IngestReport& r = loaded.report;
  EXPECT_EQ(r.rows_read, 5u);
  EXPECT_EQ(r.rows_kept, 2u);
  EXPECT_EQ(r.rows_quarantined, 3u);
  EXPECT_EQ(r.fields_clamped, 0u);
  EXPECT_FALSE(r.input_truncated);
  EXPECT_TRUE(r.degraded());
  EXPECT_EQ(count_of(r, RowErrorKind::kFieldCount), 1u);
  EXPECT_EQ(count_of(r, RowErrorKind::kBadNumber), 1u);
  EXPECT_EQ(count_of(r, RowErrorKind::kNonFinite), 1u);
  ASSERT_EQ(r.quarantine.size(), 3u);
  EXPECT_EQ(r.quarantine[0].line, 3u);
  EXPECT_EQ(r.quarantine[0].kind, RowErrorKind::kFieldCount);
  EXPECT_EQ(r.quarantine[1].line, 4u);
  EXPECT_EQ(r.quarantine[2].line, 5u);
  EXPECT_EQ(loaded.table.size(), 2u);

  // Per-epoch tallies: epoch 0 kept 1 / lost 1 (the epoch-less rows only
  // count globally), epoch 1 clean.
  ASSERT_EQ(r.epochs.size(), 2u);
  EXPECT_EQ(r.epochs[0].epoch, 0u);
  EXPECT_EQ(r.epochs[0].kept, 1u);
  EXPECT_EQ(r.epochs[0].quarantined, 1u);
  EXPECT_EQ(r.epochs[1].epoch, 1u);
  EXPECT_EQ(r.epochs[1].kept, 1u);
  EXPECT_EQ(r.epochs[1].quarantined, 0u);
  EXPECT_EQ(r.degraded_epochs(), (std::vector<std::uint32_t>{0}));
}

TEST(RobustCsv, BestEffortClampsRepairableFields) {
  const std::string text = csv_of({
      "0,s0,c0,a0,dsl,flash,chrome,vod,nan,3000,1500,0",   // non-finite ratio
      "0,s0,c0,a0,dsl,flash,chrome,vod,0.01,oops,1500,0",  // bad bitrate
      "0,s0,c0,a0,dsl,flash,chrome,vod,0.01,3000,1500,x",  // bad flag
      "zero,s0,c0,a0,dsl,flash,chrome,vod,0.01,3000,1500,0",  // bad epoch
  });
  const RobustLoadedTrace loaded =
      parse(text, {.policy = ErrorPolicy::kBestEffort});
  const IngestReport& r = loaded.report;
  // Three rows salvaged (one clamp each); the epoch-less row is
  // unsalvageable even under best-effort.
  EXPECT_EQ(r.rows_read, 4u);
  EXPECT_EQ(r.rows_kept, 3u);
  EXPECT_EQ(r.rows_quarantined, 1u);
  EXPECT_EQ(r.fields_clamped, 3u);
  ASSERT_EQ(loaded.table.size(), 3u);
  EXPECT_EQ(loaded.table.sessions()[0].quality.buffering_ratio, 0.0F);
  EXPECT_EQ(loaded.table.sessions()[1].quality.bitrate_kbps, 0.0F);
  EXPECT_FALSE(loaded.table.sessions()[2].quality.join_failed);
}

TEST(RobustCsv, RejectsEpochsAboveSanityCap) {
  // A poisoned epoch is a dense-index bomb: SessionTable and the per-epoch
  // summaries allocate proportionally to the max epoch, so one flipped high
  // bit (~2^31) must be rejected at ingest, under every policy.
  const std::string text = csv_of({
      good_row(0),
      "4000000000,s0,c0,a0,dsl,flash,chrome,vod,0.01,3000,1500,0",
  });
  for (const ErrorPolicy policy :
       {ErrorPolicy::kQuarantine, ErrorPolicy::kBestEffort}) {
    const RobustLoadedTrace loaded = parse(text, {.policy = policy});
    EXPECT_EQ(loaded.report.rows_kept, 1u);
    EXPECT_EQ(count_of(loaded.report, RowErrorKind::kBadNumber), 1u);
    // The bogus epoch must not leak into the per-epoch report either.
    ASSERT_EQ(loaded.report.epochs.size(), 1u);
    EXPECT_EQ(loaded.report.epochs[0].epoch, 0u);
  }
  std::istringstream in{text};
  try {
    (void)read_trace_csv(in);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("epoch 4000000000 out of range"),
              std::string::npos)
        << "got: " << e.what();
  }
}

TEST(RobustCsv, RejectedRowsDoNotGrowTheSchema) {
  // The bad row carries never-seen attribute names; the metric error must
  // quarantine it before any of them is interned.
  const std::string text = csv_of({
      good_row(0),
      "0,sX,cX,aX,dslX,flashX,chromeX,vodX,nan,3000,1500,0",
  });
  const RobustLoadedTrace loaded =
      parse(text, {.policy = ErrorPolicy::kQuarantine});
  for (int d = 0; d < kNumDims; ++d) {
    EXPECT_EQ(loaded.schema.cardinality(static_cast<AttrDim>(d)), 1u);
  }
}

TEST(RobustCsv, QuarantineSampleIsBoundedButCountsAreExact) {
  std::vector<std::string> rows;
  for (int i = 0; i < 10; ++i) rows.push_back("bad row");
  const RobustLoadedTrace loaded = parse(
      csv_of(rows),
      {.policy = ErrorPolicy::kQuarantine, .max_quarantine_samples = 4});
  EXPECT_EQ(loaded.report.rows_quarantined, 10u);
  EXPECT_EQ(loaded.report.quarantine.size(), 4u);
  // The 6 unretained payloads are visible, not silent.
  EXPECT_EQ(loaded.report.quarantine_payloads_dropped, 6u);
}

TEST(RobustCsv, QuarantineByteBudgetShedsPayloadsNotCounts) {
  // Ten bad rows against a byte budget that only fits a few of their
  // rejection details: the sink must stop retaining once the budget is
  // spent, count every shed payload, and keep the per-reason counts exact.
  std::vector<std::string> rows;
  for (int i = 0; i < 10; ++i) rows.push_back("bad row");
  const RobustLoadedTrace loaded =
      parse(csv_of(rows), {.policy = ErrorPolicy::kQuarantine,
                           .max_quarantine_samples = 100,
                           .max_quarantine_bytes = 128});
  const IngestReport& report = loaded.report;
  EXPECT_EQ(report.rows_quarantined, 10u);
  EXPECT_EQ(count_of(report, RowErrorKind::kFieldCount), 10u);
  EXPECT_GT(report.quarantine.size(), 0u);  // budget admits the first few
  EXPECT_LT(report.quarantine.size(), 10u);
  std::size_t retained_bytes = 0;
  for (const auto& q : report.quarantine) retained_bytes += q.detail.size();
  EXPECT_LE(retained_bytes, 128u);
  EXPECT_EQ(report.quarantine_payloads_dropped,
            10u - report.quarantine.size());
}

TEST(RobustCsv, ZeroByteBudgetRetainsNothingButStaysExact) {
  std::vector<std::string> rows;
  for (int i = 0; i < 5; ++i) rows.push_back("bad row");
  const RobustLoadedTrace loaded =
      parse(csv_of(rows), {.policy = ErrorPolicy::kQuarantine,
                           .max_quarantine_samples = 100,
                           .max_quarantine_bytes = 0});
  EXPECT_EQ(loaded.report.rows_quarantined, 5u);
  EXPECT_TRUE(loaded.report.quarantine.empty());
  EXPECT_EQ(loaded.report.quarantine_payloads_dropped, 5u);
}

TEST(RobustCsv, SummaryIsHumanReadable) {
  const std::string text = csv_of({
      good_row(0),
      "0,s0,c0,a0,dsl,flash,chrome,vod,0.01,3000",  // field count
  });
  const RobustLoadedTrace loaded =
      parse(text, {.policy = ErrorPolicy::kQuarantine});
  EXPECT_EQ(loaded.report.summary(),
            "2 rows: 1 kept, 1 quarantined (field-count=1)");
}

TEST(RobustCsv, DegradedEpochsRespectsMinFraction) {
  std::vector<std::string> rows;
  // Epoch 0: 9 good + 1 bad (10% damaged). Epoch 1: 1 good + 3 bad (75%).
  for (int i = 0; i < 9; ++i) rows.push_back(good_row(0));
  rows.push_back("0,s0,c0,a0,dsl,flash,chrome,vod,inf,3000,1500,0");
  rows.push_back(good_row(1));
  for (int i = 0; i < 3; ++i) {
    rows.push_back("1,s0,c0,a0,dsl,flash,chrome,vod,inf,3000,1500,0");
  }
  const RobustLoadedTrace loaded =
      parse(csv_of(rows), {.policy = ErrorPolicy::kQuarantine});
  EXPECT_EQ(loaded.report.degraded_epochs(),
            (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(loaded.report.degraded_epochs(0.5),
            (std::vector<std::uint32_t>{1}));
}

TEST(RobustIo, PolicyNamesRoundTrip) {
  for (const ErrorPolicy p : {ErrorPolicy::kStrict, ErrorPolicy::kQuarantine,
                              ErrorPolicy::kBestEffort}) {
    EXPECT_EQ(parse_error_policy(error_policy_name(p)), p);
  }
  EXPECT_EQ(parse_error_policy("lenient"), std::nullopt);
}

// --- binary ------------------------------------------------------------------

constexpr std::size_t kRecordSize = 31;

std::string binary_trace(std::size_t n_sessions) {
  AttributeSchema schema;
  for (int d = 0; d < kNumDims; ++d) {
    (void)schema.intern(static_cast<AttrDim>(d), "v0");
    (void)schema.intern(static_cast<AttrDim>(d), "v1");
  }
  std::vector<Session> sessions;
  for (std::size_t i = 0; i < n_sessions; ++i) {
    test::add_sessions(sessions, static_cast<std::uint32_t>(i / 4),
                       Attrs{.cdn = static_cast<std::uint16_t>(i % 2)},
                       test::good_quality(), 1);
  }
  std::stringstream out{std::ios::in | std::ios::out | std::ios::binary};
  write_trace_binary(out, SessionTable{std::move(sessions)}, schema);
  return out.str();
}

RobustLoadedTrace parse_binary(const std::string& bytes,
                               const RobustReadOptions& options) {
  std::istringstream in{bytes, std::ios::binary};
  return read_trace_binary_robust(in, options);
}

/// Patches one byte inside record `ordinal` (1-based) at `field_offset`.
std::string patch_record(std::string bytes, std::size_t n_sessions,
                         std::size_t ordinal, std::size_t field_offset,
                         char value) {
  const std::size_t start = bytes.size() - n_sessions * kRecordSize +
                            (ordinal - 1) * kRecordSize;
  bytes[start + field_offset] = value;
  return bytes;
}

TEST(RobustBinary, RejectsBadJoinFlagWithPosition) {
  const std::size_t n = 8;
  std::string bytes = patch_record(binary_trace(n), n, 3, 30, 2);
  const std::size_t offset =
      bytes.size() - n * kRecordSize + 2 * kRecordSize;
  std::istringstream in{bytes, std::ios::binary};
  try {
    (void)read_trace_binary(in);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string{e.what()},
              "read_trace_binary: join_failed byte must be 0 or 1, got 2 at "
              "record 3 (offset " +
                  std::to_string(offset) + ")");
  }

  const RobustLoadedTrace q =
      parse_binary(bytes, {.policy = ErrorPolicy::kQuarantine});
  EXPECT_EQ(q.report.rows_kept, n - 1);
  EXPECT_EQ(count_of(q.report, RowErrorKind::kBadFlag), 1u);
  ASSERT_EQ(q.report.quarantine.size(), 1u);
  EXPECT_EQ(q.report.quarantine[0].line, 3u);
  EXPECT_EQ(q.report.quarantine[0].offset, offset);

  // Best-effort: any non-zero byte means "failed", clamped to true.
  const RobustLoadedTrace b =
      parse_binary(bytes, {.policy = ErrorPolicy::kBestEffort});
  EXPECT_EQ(b.report.rows_kept, n);
  EXPECT_EQ(b.report.fields_clamped, 1u);
  EXPECT_TRUE(b.table.sessions()[2].quality.join_failed);
}

TEST(RobustBinary, RejectsNonFiniteMetricWithPosition) {
  const std::size_t n = 8;
  std::string bytes = binary_trace(n);
  // Overwrite record 5's bitrate_kbps (field offset 22) with a quiet NaN.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const std::size_t start =
      bytes.size() - n * kRecordSize + 4 * kRecordSize;
  std::memcpy(bytes.data() + start + 22, &nan, sizeof nan);

  std::istringstream in{bytes, std::ios::binary};
  try {
    (void)read_trace_binary(in);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string{e.what()},
              "read_trace_binary: non-finite bitrate_kbps at record 5 "
              "(offset " +
                  std::to_string(start) + ")");
  }

  const RobustLoadedTrace b =
      parse_binary(bytes, {.policy = ErrorPolicy::kBestEffort});
  EXPECT_EQ(b.report.rows_kept, n);
  EXPECT_EQ(b.report.fields_clamped, 1u);
  EXPECT_EQ(b.table.sessions()[4].quality.bitrate_kbps, 0.0F);
}

TEST(RobustBinary, SchemaViolationIsUnsalvageable) {
  const std::size_t n = 4;
  // Record 2's cdn id (u16 at field offset 2) -> 99, outside the 2-name
  // schema. Unknown ids have no safe repair, so even best-effort diverts.
  std::string bytes = patch_record(binary_trace(n), n, 2, 2, 99);
  for (const ErrorPolicy policy :
       {ErrorPolicy::kQuarantine, ErrorPolicy::kBestEffort}) {
    const RobustLoadedTrace loaded = parse_binary(bytes, {.policy = policy});
    EXPECT_EQ(loaded.report.rows_kept, n - 1);
    EXPECT_EQ(count_of(loaded.report, RowErrorKind::kSchemaViolation), 1u);
  }
  std::istringstream in{bytes, std::ios::binary};
  EXPECT_THROW((void)read_trace_binary(in), std::runtime_error);
}

TEST(RobustBinary, RejectsEpochsAboveSanityCap) {
  const std::size_t n = 4;
  std::string bytes = binary_trace(n);
  // Poison record 2's epoch (u32 at field offset 14) with its high bit.
  const std::size_t start =
      bytes.size() - n * kRecordSize + 1 * kRecordSize;
  const std::uint32_t huge = 1u << 31;
  std::memcpy(bytes.data() + start + 14, &huge, sizeof huge);

  std::istringstream in{bytes, std::ios::binary};
  try {
    (void)read_trace_binary(in);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("epoch 2147483648 out of range"),
              std::string::npos)
        << "got: " << e.what();
  }

  const RobustLoadedTrace q =
      parse_binary(bytes, {.policy = ErrorPolicy::kQuarantine});
  EXPECT_EQ(q.report.rows_kept, n - 1);
  EXPECT_EQ(count_of(q.report, RowErrorKind::kBadNumber), 1u);
  // The poisoned epoch never reaches the per-epoch stats or the table.
  for (const EpochIngestStats& e : q.report.epochs) EXPECT_LE(e.epoch, 1u);
  EXPECT_EQ(q.table.num_epochs(), 1u);
}

TEST(RobustBinary, TruncationReportsDegradedTailEpoch) {
  const std::size_t n = 8;  // epochs 0 (records 1-4) and 1 (records 5-8)
  std::string bytes = binary_trace(n);
  bytes.resize(bytes.size() - kRecordSize - 3);  // cut mid-record 7
  const RobustLoadedTrace loaded =
      parse_binary(bytes, {.policy = ErrorPolicy::kQuarantine});
  EXPECT_TRUE(loaded.report.input_truncated);
  EXPECT_EQ(loaded.report.rows_kept, 6u);
  EXPECT_EQ(count_of(loaded.report, RowErrorKind::kTruncated), 1u);
  // Epoch 0 is intact; epoch 1 lost its tail.
  EXPECT_EQ(loaded.report.degraded_epochs(),
            (std::vector<std::uint32_t>{1}));
}

}  // namespace
}  // namespace vq
