#include "src/gen/world.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vq {
namespace {

WorldConfig small_config() {
  WorldConfig config;
  config.num_sites = 40;
  config.num_cdns = 8;
  config.num_asns = 100;
  return config;
}

TEST(World, BuildsRequestedPopulation) {
  const World world = World::build(small_config());
  EXPECT_EQ(world.sites().size(), 40u);
  EXPECT_EQ(world.cdns().size(), 8u);
  EXPECT_EQ(world.asns().size(), 100u);
}

TEST(World, IdsAreDenseAndMatchIndices) {
  const World world = World::build(small_config());
  for (std::size_t i = 0; i < world.sites().size(); ++i) {
    EXPECT_EQ(world.sites()[i].id, i);
  }
  for (std::size_t i = 0; i < world.cdns().size(); ++i) {
    EXPECT_EQ(world.cdns()[i].id, i);
  }
  for (std::size_t i = 0; i < world.asns().size(); ++i) {
    EXPECT_EQ(world.asns()[i].id, i);
  }
}

TEST(World, SchemaHoldsAllNames) {
  const World world = World::build(small_config());
  EXPECT_EQ(world.schema().cardinality(AttrDim::kSite), 40u);
  EXPECT_EQ(world.schema().cardinality(AttrDim::kCdn), 8u);
  EXPECT_EQ(world.schema().cardinality(AttrDim::kAsn), 100u);
  EXPECT_EQ(world.schema().cardinality(AttrDim::kConnType),
            kConnTypeNames.size());
  EXPECT_EQ(world.schema().cardinality(AttrDim::kPlayer),
            kPlayerNames.size());
  EXPECT_EQ(world.schema().cardinality(AttrDim::kBrowser),
            kBrowserNames.size());
  EXPECT_EQ(world.schema().cardinality(AttrDim::kVodLive), 2u);
  EXPECT_EQ(world.schema().name(AttrDim::kSite, 0), "site-0000");
  EXPECT_EQ(world.schema().name(AttrDim::kConnType, kConnMobileWireless),
            "MobileWireless");
  EXPECT_EQ(world.schema().name(AttrDim::kVodLive, kVod), "VoD");
  EXPECT_EQ(world.schema().name(AttrDim::kVodLive, kLive), "Live");
}

TEST(World, EverySiteHasAtLeastOneCdnContract) {
  const World world = World::build(small_config());
  for (const SiteModel& site : world.sites()) {
    ASSERT_FALSE(site.cdn_ids.empty());
    for (const auto cdn : site.cdn_ids) {
      EXPECT_LT(cdn, world.cdns().size());
    }
    EXPECT_FALSE(site.abr.ladder_kbps.empty());
  }
}

TEST(World, SingleBitrateSitesHaveOneRung) {
  const World world = World::build(WorldConfig{});
  std::size_t single = 0;
  for (const SiteModel& site : world.sites()) {
    if (site.single_bitrate) {
      ++single;
      EXPECT_EQ(site.abr.ladder_kbps.size(), 1u);
      EXPECT_EQ(site.abr.kind, AbrKind::kFixedSingle);
    } else {
      EXPECT_GE(site.abr.ladder_kbps.size(), 2u);
    }
  }
  // Roughly the configured 20% (fraction is rank-modulated).
  EXPECT_GT(single, 20u);
  EXPECT_LT(single, 150u);
}

TEST(World, RegionMixRoughlyMatchesPaper) {
  WorldConfig config;
  config.num_asns = 4000;
  const World world = World::build(config);
  std::size_t us = 0;
  for (const AsnModel& asn : world.asns()) {
    if (asn.region == Region::kUS) ++us;
  }
  const double us_fraction = static_cast<double>(us) / 4000.0;
  EXPECT_NEAR(us_fraction, kRegionWeights[0], 0.04);
}

TEST(World, CdnPresenceWithinBounds) {
  const World world = World::build(WorldConfig{});
  for (const CdnModel& cdn : world.cdns()) {
    for (const double presence : cdn.presence) {
      EXPECT_GT(presence, 0.0);
      EXPECT_LE(presence, 1.0);
    }
    EXPECT_GE(cdn.base_fail_prob, 0.0);
    EXPECT_LE(cdn.base_fail_prob, 0.15);  // worst chronic in-house CDNs
  }
}

TEST(World, InHouseCdnsExistAndAreWorse) {
  const World world = World::build(WorldConfig{});
  double inhouse_fail = 0.0;
  double commercial_fail = 0.0;
  std::size_t inhouse = 0;
  for (const CdnModel& cdn : world.cdns()) {
    if (cdn.in_house) {
      ++inhouse;
      inhouse_fail += cdn.base_fail_prob;
    } else {
      commercial_fail += cdn.base_fail_prob;
    }
  }
  ASSERT_GT(inhouse, 0u);
  ASSERT_LT(inhouse, world.cdns().size());
  inhouse_fail /= static_cast<double>(inhouse);
  commercial_fail /= static_cast<double>(world.cdns().size() - inhouse);
  EXPECT_GT(inhouse_fail, commercial_fail);
}

TEST(World, DeterministicForSameSeed) {
  const World a = World::build(small_config());
  const World b = World::build(small_config());
  for (std::size_t i = 0; i < a.sites().size(); ++i) {
    EXPECT_EQ(a.sites()[i].single_bitrate, b.sites()[i].single_bitrate);
    EXPECT_EQ(a.sites()[i].cdn_ids, b.sites()[i].cdn_ids);
    EXPECT_EQ(a.sites()[i].base_fail_prob, b.sites()[i].base_fail_prob);
  }
  for (std::size_t i = 0; i < a.asns().size(); ++i) {
    EXPECT_EQ(a.asns()[i].quality, b.asns()[i].quality);
    EXPECT_EQ(a.asns()[i].region, b.asns()[i].region);
  }
}

TEST(World, DifferentSeedsDiffer) {
  WorldConfig config = small_config();
  const World a = World::build(config);
  config.seed = 999;
  const World b = World::build(config);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.asns().size(); ++i) {
    if (a.asns()[i].quality != b.asns()[i].quality) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(World, RejectsEmptyOrOversizedPopulations) {
  WorldConfig config = small_config();
  config.num_sites = 0;
  EXPECT_THROW((void)World::build(config), std::invalid_argument);
  config = small_config();
  config.num_asns = 100'000;  // exceeds the 16-bit ASN field
  EXPECT_THROW((void)World::build(config), std::invalid_argument);
}

TEST(World, ZipfSamplersMatchPopulation) {
  const World world = World::build(small_config());
  EXPECT_EQ(world.site_sampler().size(), 40u);
  EXPECT_EQ(world.asn_sampler().size(), 100u);
  // Popularity skew: rank 0 strictly more likely than rank 10.
  EXPECT_GT(world.site_sampler().pmf(0), world.site_sampler().pmf(10));
}

TEST(RegionName, AllLabelled) {
  for (int r = 0; r < kNumRegions; ++r) {
    EXPECT_NE(region_name(static_cast<Region>(r)), "?");
  }
}

}  // namespace
}  // namespace vq
