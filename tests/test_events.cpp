#include "src/gen/events.h"

#include <gtest/gtest.h>

#include <bit>

namespace vq {
namespace {

World small_world() {
  WorldConfig config;
  config.num_sites = 40;
  config.num_cdns = 8;
  config.num_asns = 100;
  return World::build(config);
}

EventScheduleConfig small_schedule() {
  EventScheduleConfig config;
  config.num_epochs = 100;
  config.events_per_epoch = 2.0;
  return config;
}

TEST(EventSchedule, GeneratesEvents) {
  const World world = small_world();
  const EventSchedule schedule =
      EventSchedule::generate(world, small_schedule());
  EXPECT_EQ(schedule.num_epochs(), 100u);
  // ~2 events/epoch over 100 epochs: expect a healthy count.
  EXPECT_GT(schedule.events().size(), 100u);
  EXPECT_LT(schedule.events().size(), 400u);
}

TEST(EventSchedule, EventFieldsWithinBounds) {
  const World world = small_world();
  const EventScheduleConfig config = small_schedule();
  const EventSchedule schedule = EventSchedule::generate(world, config);
  for (const ProblemEvent& event : schedule.events()) {
    EXPECT_LT(event.start_epoch, config.num_epochs);
    EXPECT_GE(event.duration_epochs, 1u);
    EXPECT_LE(event.duration_epochs, config.max_duration_epochs);
    const int arity = std::popcount(event.scope.mask());
    EXPECT_GE(arity, 1);
    EXPECT_LE(arity, 2);
    if (event.scope.has(AttrDim::kSite)) {
      EXPECT_LT(event.scope.value(AttrDim::kSite), world.sites().size());
    }
    if (event.scope.has(AttrDim::kCdn)) {
      EXPECT_LT(event.scope.value(AttrDim::kCdn), world.cdns().size());
    }
    if (event.scope.has(AttrDim::kAsn)) {
      EXPECT_LT(event.scope.value(AttrDim::kAsn), world.asns().size());
    }
  }
}

TEST(EventSchedule, ImpactsMatchKind) {
  const World world = small_world();
  const EventSchedule schedule =
      EventSchedule::generate(world, small_schedule());
  for (const ProblemEvent& event : schedule.events()) {
    switch (event.kind) {
      case EventKind::kThroughputCollapse:
        EXPECT_LT(event.impact.bw_multiplier, 1.0);
        EXPECT_EQ(event.impact.fail_prob_add, 0.0);
        break;
      case EventKind::kFailureSpike:
        EXPECT_GT(event.impact.fail_prob_add, 0.0);
        EXPECT_EQ(event.impact.bw_multiplier, 1.0);
        break;
      case EventKind::kLatencyInflation:
        EXPECT_GT(event.impact.rtt_multiplier, 1.0);
        EXPECT_GT(event.impact.startup_add_ms, 0.0);
        break;
    }
  }
}

TEST(EventSchedule, HeavyTailedDurations) {
  const World world = small_world();
  EventScheduleConfig config = small_schedule();
  config.num_epochs = 500;
  const EventSchedule schedule = EventSchedule::generate(world, config);
  std::size_t one_epoch = 0;
  std::size_t multi_hour = 0;
  std::size_t very_long = 0;
  for (const ProblemEvent& event : schedule.events()) {
    if (event.duration_epochs == 1) ++one_epoch;
    if (event.duration_epochs >= 2) ++multi_hour;
    if (event.duration_epochs >= 24) ++very_long;
  }
  // Pareto(alpha ~ 1.05): many short events, a real multi-hour mass, and a
  // tail of day-plus outages (paper: 50% of problem events last >= 2h,
  // ~1% last a day or more).
  EXPECT_GT(one_epoch, 0u);
  EXPECT_GT(multi_hour, schedule.events().size() / 5);
  EXPECT_GT(very_long, 0u);
}

TEST(EventSchedule, ActiveIndexMatchesEventWindows) {
  const World world = small_world();
  const EventSchedule schedule =
      EventSchedule::generate(world, small_schedule());
  for (std::uint32_t epoch = 0; epoch < schedule.num_epochs(); ++epoch) {
    for (const std::uint32_t idx : schedule.active_at(epoch)) {
      EXPECT_TRUE(schedule.events()[idx].active_at(epoch));
    }
  }
  // Converse: every event appears in the index for each active epoch.
  for (std::uint32_t i = 0; i < schedule.events().size(); ++i) {
    const ProblemEvent& event = schedule.events()[i];
    const std::uint32_t end = std::min(
        schedule.num_epochs(), event.start_epoch + event.duration_epochs);
    for (std::uint32_t e = event.start_epoch; e < end; ++e) {
      const auto active = schedule.active_at(e);
      EXPECT_NE(std::find(active.begin(), active.end(), i), active.end());
    }
  }
}

TEST(EventSchedule, ActiveAtOutOfRangeIsEmpty) {
  const World world = small_world();
  const EventSchedule schedule =
      EventSchedule::generate(world, small_schedule());
  EXPECT_TRUE(schedule.active_at(10'000).empty());
}

TEST(EventSchedule, NoneIsEmpty) {
  const EventSchedule schedule = EventSchedule::none(10);
  EXPECT_EQ(schedule.num_epochs(), 10u);
  EXPECT_TRUE(schedule.events().empty());
  for (std::uint32_t e = 0; e < 10; ++e) {
    EXPECT_TRUE(schedule.active_at(e).empty());
  }
}

TEST(EventSchedule, DeterministicForSeed) {
  const World world = small_world();
  const EventSchedule a = EventSchedule::generate(world, small_schedule());
  const EventSchedule b = EventSchedule::generate(world, small_schedule());
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].scope, b.events()[i].scope);
    EXPECT_EQ(a.events()[i].start_epoch, b.events()[i].start_epoch);
    EXPECT_EQ(a.events()[i].duration_epochs, b.events()[i].duration_epochs);
  }
}

TEST(ProblemEvent, ActiveWindowSemantics) {
  ProblemEvent event;
  event.start_epoch = 5;
  event.duration_epochs = 3;
  EXPECT_FALSE(event.active_at(4));
  EXPECT_TRUE(event.active_at(5));
  EXPECT_TRUE(event.active_at(7));
  EXPECT_FALSE(event.active_at(8));
}

TEST(EventKindName, Labels) {
  EXPECT_EQ(event_kind_name(EventKind::kThroughputCollapse),
            "ThroughputCollapse");
  EXPECT_EQ(event_kind_name(EventKind::kFailureSpike), "FailureSpike");
  EXPECT_EQ(event_kind_name(EventKind::kLatencyInflation),
            "LatencyInflation");
}

}  // namespace
}  // namespace vq
