// Chaos tests: every injected truncation, bit flip, short read, and
// transient I/O fault must end in a positioned exception (strict) or a
// quarantined row with exact IngestReport accounting (quarantine /
// best-effort) — never a crash, never UB.  CI runs this suite under
// ASan+UBSan (the chaos job), which is what turns "never crashes" into a
// checked property.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/gen/robust_io.h"
#include "src/gen/trace_io.h"
#include "tests/fault_injection.h"
#include "tests/test_support.h"

namespace vq {
namespace {

using test::Attrs;
using test::FaultyStream;
using test::FaultyStreambuf;

constexpr std::size_t kSessions = 16;   // 2 epochs x 8
constexpr std::size_t kRecordSize = 31;

/// A tiny but fully featured trace (several attribute values per dimension,
/// both epochs, good and bad quality) rendered as CSV and binary.  Small on
/// purpose: the sweeps below re-parse it once per byte offset.
struct TinyTrace {
  std::string csv;
  std::string binary;
};

TinyTrace tiny_trace() {
  AttributeSchema schema;
  for (int d = 0; d < kNumDims; ++d) {
    for (int i = 0; i < 3; ++i) {
      (void)schema.intern(static_cast<AttrDim>(d), "v" + std::to_string(i));
    }
  }
  std::vector<Session> sessions;
  for (std::uint32_t epoch = 0; epoch < 2; ++epoch) {
    for (std::uint16_t i = 0; i < 8; ++i) {
      test::add_sessions(
          sessions, epoch,
          Attrs{.cdn = static_cast<std::uint16_t>(i % 3),
                .asn = static_cast<std::uint16_t>((i + 1) % 3)},
          i % 2 == 0 ? test::good_quality() : test::bad_buffering(), 1);
    }
  }
  const SessionTable table{std::move(sessions)};
  TinyTrace out;
  std::stringstream csv;
  write_trace_csv(csv, table, schema);
  out.csv = csv.str();
  std::stringstream bin{std::ios::in | std::ios::out | std::ios::binary};
  write_trace_binary(bin, table, schema);
  out.binary = bin.str();
  return out;
}

std::size_t records_start(const TinyTrace& t) {
  return t.binary.size() - kSessions * kRecordSize;
}

TEST(FaultInjection, BinaryTruncationSweepStrictAlwaysThrows) {
  const TinyTrace t = tiny_trace();
  for (std::size_t cut = 0; cut < t.binary.size(); ++cut) {
    FaultyStream fs{t.binary, {.truncate_at = cut}};
    EXPECT_THROW((void)read_trace_binary(fs.stream()), std::runtime_error)
        << "cut at " << cut;
  }
}

TEST(FaultInjection, BinaryTruncationSweepQuarantineAccountsExactly) {
  const TinyTrace t = tiny_trace();
  const std::size_t start = records_start(t);
  for (std::size_t cut = start; cut < t.binary.size(); ++cut) {
    FaultyStream fs{t.binary, {.truncate_at = cut}};
    const RobustLoadedTrace loaded = read_trace_binary_robust(
        fs.stream(), {.policy = ErrorPolicy::kQuarantine});
    const std::uint64_t complete = (cut - start) / kRecordSize;
    EXPECT_TRUE(loaded.report.input_truncated) << "cut at " << cut;
    EXPECT_EQ(loaded.report.rows_kept, complete) << "cut at " << cut;
    EXPECT_EQ(loaded.table.size(), complete) << "cut at " << cut;
    EXPECT_EQ(loaded.report.rows_quarantined, 1u) << "cut at " << cut;
    EXPECT_EQ(loaded.report.reason_counts[static_cast<std::uint8_t>(
                  RowErrorKind::kTruncated)],
              1u)
        << "cut at " << cut;
    EXPECT_EQ(loaded.report.rows_read,
              loaded.report.rows_kept + loaded.report.rows_quarantined);
    ASSERT_EQ(loaded.report.quarantine.size(), 1u);
    EXPECT_EQ(loaded.report.quarantine[0].kind, RowErrorKind::kTruncated);
    EXPECT_EQ(loaded.report.quarantine[0].line, complete + 1);
  }
}

TEST(FaultInjection, BinaryBitFlipSweepNeverCrashes) {
  const TinyTrace t = tiny_trace();
  for (std::size_t off = 0; off < t.binary.size(); ++off) {
    for (const unsigned char mask : {0x01, 0x80}) {
      FaultyStream strict{t.binary,
                          {.flip_offset = off, .flip_mask = mask}};
      try {
        const LoadedTrace loaded = read_trace_binary(strict.stream());
        // A flip can land in a value bit and still decode; it must never
        // manufacture rows.
        EXPECT_LE(loaded.table.size(), kSessions) << "flip at " << off;
      } catch (const std::runtime_error&) {
        // Positioned rejection: fine.
      }
      FaultyStream lenient{t.binary,
                           {.flip_offset = off, .flip_mask = mask}};
      try {
        const RobustLoadedTrace loaded = read_trace_binary_robust(
            lenient.stream(), {.policy = ErrorPolicy::kQuarantine});
        EXPECT_EQ(loaded.report.rows_read,
                  loaded.report.rows_kept + loaded.report.rows_quarantined)
            << "flip at " << off;
        EXPECT_EQ(loaded.table.size(), loaded.report.rows_kept);
      } catch (const std::runtime_error&) {
        // Structural (header/schema) flips throw under every policy.
      }
    }
  }
}

TEST(FaultInjection, BinaryBitFlipsInRecordsNeverThrowUnderQuarantine) {
  const TinyTrace t = tiny_trace();
  for (std::size_t off = records_start(t); off < t.binary.size(); ++off) {
    for (const unsigned char mask : {0x01, 0x80}) {
      FaultyStream fs{t.binary, {.flip_offset = off, .flip_mask = mask}};
      const RobustLoadedTrace loaded = read_trace_binary_robust(
          fs.stream(), {.policy = ErrorPolicy::kQuarantine});
      EXPECT_EQ(loaded.report.rows_read, kSessions) << "flip at " << off;
      EXPECT_EQ(loaded.report.rows_kept + loaded.report.rows_quarantined,
                kSessions)
          << "flip at " << off;
    }
  }
}

TEST(FaultInjection, CsvTruncationSweepNeverCrashes) {
  const TinyTrace t = tiny_trace();
  for (std::size_t cut = 0; cut < t.csv.size(); ++cut) {
    FaultyStream fs{t.csv, {.truncate_at = cut}};
    try {
      const LoadedTrace loaded = read_trace_csv(fs.stream());
      // Cutting at a line boundary yields a valid shorter file.
      EXPECT_LE(loaded.table.size(), kSessions) << "cut at " << cut;
    } catch (const std::runtime_error&) {
      // Mid-line cuts reject the partial row (or the header).
    }
  }
}

TEST(FaultInjection, CsvBitFlipSweepQuarantineKeepsAccounts) {
  const TinyTrace t = tiny_trace();
  const std::size_t first_row = t.csv.find('\n') + 1;
  for (std::size_t off = 0; off < t.csv.size(); ++off) {
    FaultyStream fs{t.csv, {.flip_offset = off, .flip_mask = 0x01}};
    try {
      const RobustLoadedTrace loaded = read_trace_csv_robust(
          fs.stream(), {.policy = ErrorPolicy::kQuarantine});
      EXPECT_GE(off, first_row) << "header flip must throw";
      EXPECT_EQ(loaded.report.rows_read,
                loaded.report.rows_kept + loaded.report.rows_quarantined)
          << "flip at " << off;
      EXPECT_EQ(loaded.table.size(), loaded.report.rows_kept);
    } catch (const std::runtime_error&) {
      // Header flips (and a flipped header newline) are structural.
      EXPECT_LE(off, first_row) << "row flip must quarantine, not throw";
    }
  }
}

TEST(FaultInjection, ShortReadsParseIdentically) {
  const TinyTrace t = tiny_trace();
  std::stringstream direct_bin{t.binary,
                               std::ios::in | std::ios::binary};
  const LoadedTrace expected = read_trace_binary(direct_bin);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}}) {
    FaultyStream bin{t.binary, {.chunk = chunk}};
    const LoadedTrace loaded = read_trace_binary(bin.stream());
    ASSERT_EQ(loaded.table.size(), expected.table.size()) << chunk;
    for (std::size_t i = 0; i < loaded.table.size(); ++i) {
      EXPECT_EQ(loaded.table.sessions()[i].attrs,
                expected.table.sessions()[i].attrs);
      EXPECT_EQ(loaded.table.sessions()[i].quality,
                expected.table.sessions()[i].quality);
    }
    FaultyStream csv{t.csv, {.chunk = chunk}};
    const LoadedTrace loaded_csv = read_trace_csv(csv.stream());
    EXPECT_EQ(loaded_csv.table.size(), kSessions) << chunk;
  }
}

TEST(FaultInjection, TransientIoFaultCsv) {
  const TinyTrace t = tiny_trace();
  const std::size_t mid = t.csv.size() / 2;
  {
    FaultyStream fs{t.csv, {.fail_at = mid}};
    EXPECT_THROW((void)read_trace_csv(fs.stream()), std::runtime_error);
  }
  FaultyStream fs{t.csv, {.fail_at = mid}};
  const RobustLoadedTrace loaded = read_trace_csv_robust(
      fs.stream(), {.policy = ErrorPolicy::kQuarantine});
  EXPECT_EQ(fs.buf().faults_fired(), 1);
  EXPECT_TRUE(loaded.report.input_truncated);
  EXPECT_EQ(loaded.report.reason_counts[static_cast<std::uint8_t>(
                RowErrorKind::kIoError)],
            1u);
  EXPECT_EQ(loaded.report.rows_read,
            loaded.report.rows_kept + loaded.report.rows_quarantined);
  EXPECT_LT(loaded.table.size(), kSessions);
  EXPECT_EQ(loaded.table.size(), loaded.report.rows_kept);
}

TEST(FaultInjection, TransientIoFaultBinary) {
  const TinyTrace t = tiny_trace();
  const std::size_t fail_at = records_start(t) + 5 * kRecordSize + 7;
  {
    FaultyStream fs{t.binary, {.fail_at = fail_at}};
    EXPECT_THROW((void)read_trace_binary(fs.stream()), std::runtime_error);
  }
  FaultyStream fs{t.binary, {.fail_at = fail_at}};
  const RobustLoadedTrace loaded = read_trace_binary_robust(
      fs.stream(), {.policy = ErrorPolicy::kQuarantine});
  EXPECT_TRUE(loaded.report.input_truncated);
  EXPECT_EQ(loaded.report.rows_kept, 5u);
  EXPECT_EQ(loaded.report.reason_counts[static_cast<std::uint8_t>(
                RowErrorKind::kIoError)],
            1u);
  ASSERT_EQ(loaded.report.quarantine.size(), 1u);
  EXPECT_EQ(loaded.report.quarantine[0].kind, RowErrorKind::kIoError);
  EXPECT_EQ(loaded.report.quarantine[0].line, 6u);  // 1-based record ordinal
}

TEST(FaultInjection, IoFaultInHeaderIsStructuralUnderEveryPolicy) {
  const TinyTrace t = tiny_trace();
  for (const ErrorPolicy policy :
       {ErrorPolicy::kStrict, ErrorPolicy::kQuarantine,
        ErrorPolicy::kBestEffort}) {
    FaultyStream csv{t.csv, {.fail_at = 3}};
    EXPECT_THROW(
        (void)read_trace_csv_robust(csv.stream(), {.policy = policy}),
        std::runtime_error);
    FaultyStream bin{t.binary, {.fail_at = 3}};
    EXPECT_THROW(
        (void)read_trace_binary_robust(bin.stream(), {.policy = policy}),
        std::runtime_error);
  }
}

}  // namespace
}  // namespace vq
