#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <sstream>
#include <string>

#include "src/gen/trace_io.h"
#include "src/gen/tracegen.h"
#include "tests/test_support.h"

namespace vq {
namespace {

using test::Attrs;

LoadedTrace generate_loaded(std::uint32_t epochs = 2,
                            std::uint32_t per_epoch = 300) {
  WorldConfig world_config;
  world_config.num_sites = 25;
  world_config.num_cdns = 6;
  world_config.num_asns = 40;
  const World world = World::build(world_config);
  TraceConfig trace_config;
  trace_config.num_epochs = epochs;
  trace_config.sessions_per_epoch = per_epoch;
  SessionTable table =
      generate_trace(world, EventSchedule::none(epochs), trace_config);
  // Round through CSV once to get a LoadedTrace-style schema copy.
  std::stringstream buffer;
  write_trace_csv(buffer, table, world.schema());
  return read_trace_csv(buffer);
}

TEST(TraceBinary, RoundTripsExactly) {
  const LoadedTrace original = generate_loaded();
  std::stringstream buffer{std::ios::in | std::ios::out | std::ios::binary};
  write_trace_binary(buffer, original.table, original.schema);
  const LoadedTrace loaded = read_trace_binary(buffer);

  ASSERT_EQ(loaded.table.size(), original.table.size());
  for (std::size_t i = 0; i < original.table.size(); ++i) {
    const Session& a = original.table.sessions()[i];
    const Session& b = loaded.table.sessions()[i];
    EXPECT_EQ(a.epoch, b.epoch);
    EXPECT_EQ(a.attrs, b.attrs);  // binary keeps ids stable
    EXPECT_EQ(a.quality, b.quality);
  }
  for (int d = 0; d < kNumDims; ++d) {
    const auto dim = static_cast<AttrDim>(d);
    ASSERT_EQ(loaded.schema.cardinality(dim),
              original.schema.cardinality(dim));
    for (std::size_t id = 0; id < loaded.schema.cardinality(dim); ++id) {
      EXPECT_EQ(loaded.schema.name(dim, static_cast<std::uint16_t>(id)),
                original.schema.name(dim, static_cast<std::uint16_t>(id)));
    }
  }
}

TEST(TraceBinary, FloatsSurviveBitExactly) {
  AttributeSchema schema;
  for (int d = 0; d < kNumDims; ++d) {
    (void)schema.intern(static_cast<AttrDim>(d), "v");
  }
  std::vector<Session> sessions;
  Session s = test::make_session(3, Attrs{}, test::good_quality());
  s.quality.buffering_ratio = 0.123456789F;
  s.quality.bitrate_kbps = 1234.56789F;
  s.quality.join_time_ms = 98765.4321F;
  sessions.push_back(s);
  std::stringstream buffer{std::ios::in | std::ios::out | std::ios::binary};
  write_trace_binary(buffer, SessionTable{sessions}, schema);
  const LoadedTrace loaded = read_trace_binary(buffer);
  ASSERT_EQ(loaded.table.size(), 1u);
  EXPECT_EQ(loaded.table.sessions()[0].quality, s.quality);
}

TEST(TraceBinary, MuchSmallerThanCsv) {
  const LoadedTrace original = generate_loaded(2, 500);
  std::stringstream csv;
  write_trace_csv(csv, original.table, original.schema);
  std::stringstream bin{std::ios::in | std::ios::out | std::ios::binary};
  write_trace_binary(bin, original.table, original.schema);
  EXPECT_LT(bin.str().size(), csv.str().size() / 2);
}

TEST(TraceBinary, RejectsBadMagic) {
  std::stringstream buffer{std::ios::in | std::ios::out | std::ios::binary};
  buffer << "NOPE garbage";
  EXPECT_THROW((void)read_trace_binary(buffer), std::runtime_error);
}

TEST(TraceBinary, RejectsTruncation) {
  const LoadedTrace original = generate_loaded(1, 50);
  std::stringstream buffer{std::ios::in | std::ios::out | std::ios::binary};
  write_trace_binary(buffer, original.table, original.schema);
  const std::string full = buffer.str();
  // Truncate in the middle of the session records.
  std::stringstream cut{std::string{full.begin(),
                                    full.begin() +
                                        static_cast<long>(full.size() - 7)},
                        std::ios::in | std::ios::binary};
  EXPECT_THROW((void)read_trace_binary(cut), std::runtime_error);
}

TEST(TraceBinary, CorruptedSessionCountFailsFastWithoutHugeAllocation) {
  // Patch the 64-bit session count to an absurd value: the reader must hit
  // "truncated input" quickly instead of reserving sessions for the claimed
  // count (a multi-GB allocation) first.
  const LoadedTrace original = generate_loaded(1, 20);
  std::stringstream buffer{std::ios::in | std::ios::out | std::ios::binary};
  write_trace_binary(buffer, original.table, original.schema);
  std::string bytes = buffer.str();

  // The count is the little-endian u64 right before the fixed-size session
  // records (31 bytes each).
  constexpr std::size_t kRecordSize = 7 * 2 + 4 + 3 * 4 + 1;
  static_assert(kRecordSize == 31);
  const std::size_t count_pos = bytes.size() - 20 * kRecordSize - 8;
  const std::uint64_t huge = std::uint64_t{1} << 60;
  std::memcpy(bytes.data() + count_pos, &huge, sizeof huge);

  std::stringstream patched{bytes, std::ios::in | std::ios::binary};
  EXPECT_THROW((void)read_trace_binary(patched), std::runtime_error);
}

TEST(TraceBinary, RejectsWrongVersion) {
  const LoadedTrace original = generate_loaded(1, 10);
  std::stringstream buffer{std::ios::in | std::ios::out | std::ios::binary};
  write_trace_binary(buffer, original.table, original.schema);
  std::string bytes = buffer.str();
  bytes[4] = 99;  // patch the version field
  std::stringstream patched{bytes, std::ios::in | std::ios::binary};
  EXPECT_THROW((void)read_trace_binary(patched), std::runtime_error);
}

TEST(TraceBinary, RejectsOutOfSchemaAttributeIds) {
  AttributeSchema schema;
  for (int d = 0; d < kNumDims; ++d) {
    (void)schema.intern(static_cast<AttrDim>(d), "only");
  }
  std::vector<Session> sessions;
  sessions.push_back(test::make_session(0, Attrs{.site = 5},  // id 5 unknown
                                        test::good_quality()));
  std::stringstream buffer{std::ios::in | std::ios::out | std::ios::binary};
  write_trace_binary(buffer, SessionTable{sessions}, schema);
  EXPECT_THROW((void)read_trace_binary(buffer), std::runtime_error);
}

/// A deterministic container: `n` good sessions, one-name schema per dim.
std::string tiny_binary(std::size_t n) {
  AttributeSchema schema;
  for (int d = 0; d < kNumDims; ++d) {
    (void)schema.intern(static_cast<AttrDim>(d), "v");
  }
  std::vector<Session> sessions;
  for (std::size_t i = 0; i < n; ++i) {
    sessions.push_back(test::make_session(0, Attrs{}, test::good_quality()));
  }
  std::stringstream buffer{std::ios::in | std::ios::out | std::ios::binary};
  write_trace_binary(buffer, SessionTable{std::move(sessions)}, schema);
  return buffer.str();
}

TEST(TraceBinary, RejectsBadJoinFlagByte) {
  constexpr std::size_t kRecordSize = 31;
  const std::size_t n = 8;
  std::string bytes = tiny_binary(n);
  // join_failed is the last byte of each record; corrupt record 4's (the
  // 4 records after it span the trailing 4 * kRecordSize bytes).
  bytes[bytes.size() - 4 * kRecordSize - 1] = 2;
  std::stringstream patched{bytes, std::ios::in | std::ios::binary};
  try {
    (void)read_trace_binary(patched);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find(
                  "join_failed byte must be 0 or 1, got 2 at record 4"),
              std::string::npos)
        << "got: " << e.what();
  }
}

TEST(TraceBinary, RejectsNonFiniteMetrics) {
  constexpr std::size_t kRecordSize = 31;
  const std::size_t n = 8;
  std::string bytes = tiny_binary(n);
  // buffering_ratio is the f32 at record offset 18; give record 1 an Inf.
  const float inf = std::numeric_limits<float>::infinity();
  std::memcpy(bytes.data() + bytes.size() - n * kRecordSize + 18, &inf,
              sizeof inf);
  std::stringstream patched{bytes, std::ios::in | std::ios::binary};
  try {
    (void)read_trace_binary(patched);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find(
                  "non-finite buffering_ratio at record 1"),
              std::string::npos)
        << "got: " << e.what();
  }
}

TEST(TraceBinary, FileRoundTrip) {
  const LoadedTrace original = generate_loaded(1, 100);
  const auto path =
      std::filesystem::temp_directory_path() / "vidqual_trace_bin_test.vqtr";
  write_trace_binary(path, original.table, original.schema);
  const LoadedTrace loaded = read_trace_binary(path);
  EXPECT_EQ(loaded.table.size(), original.table.size());
  std::filesystem::remove(path);
  EXPECT_THROW((void)read_trace_binary(path), std::runtime_error);
}

}  // namespace
}  // namespace vq
