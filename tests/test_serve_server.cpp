// Live ingest server (src/serve/server.h): the file-vs-socket differential
// pin, the ErrorPolicy matrix over a socket, watermark/stale semantics,
// connection caps, and checkpoint-resume under replay.  The one invariant
// repeated everywhere: ServeStats::accounting_exact().

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/attributes.h"
#include "src/core/monitor.h"
#include "src/core/session.h"
#include "src/gen/tracegen.h"
#include "src/serve/framing.h"
#include "src/serve/producer.h"
#include "src/serve/server.h"
#include "tests/socket_fault.h"
#include "tests/test_support.h"

namespace vq::serve {
namespace {

using test::ServeHarness;
using test::render_event;
using test::unique_socket_path;
using test::wait_until;
using std::chrono::milliseconds;

/// Small but structured trace: enough sessions per epoch for real critical
/// clusters, small enough that four differential runs stay fast.
struct DemoTrace {
  World world;
  SessionTable table;

  DemoTrace()
      : world(World::build(WorldConfig{.num_sites = 40,
                                       .num_cdns = 4,
                                       .num_asns = 60,
                                       .seed = 77})),
        table([&] {
          EventScheduleConfig events;
          events.num_epochs = 6;
          events.seed = 78;
          TraceConfig trace;
          trace.num_epochs = 6;
          trace.sessions_per_epoch = 400;
          trace.seed = 79;
          return generate_trace(
              world, EventSchedule::generate(world, events), trace);
        }()) {}
};

MonitorConfig demo_monitor_config(std::uint32_t workers = 1,
                                  std::uint32_t shards = 1) {
  MonitorConfig config;
  config.cluster_params.min_sessions = 20;
  config.order_policy = EpochOrderPolicy::kSkipStale;
  config.workers = workers;
  config.shards = shards;
  return config;
}

/// The file-path reference: same detector config, epochs fed densely from
/// the table, events rendered exactly as the serve callback renders them.
std::vector<std::string> file_path_events(const DemoTrace& demo,
                                          const MonitorConfig& config,
                                          std::uint32_t from_epoch = 0) {
  StreamingDetector detector{config};
  std::vector<std::string> lines;
  for (std::uint32_t e = from_epoch; e < demo.table.num_epochs(); ++e) {
    for (const IncidentEvent& event :
         detector.ingest(demo.table.epoch(e), e)) {
      lines.push_back(
          render_event(event, demo.world.schema().describe(
                                  event.incident.key)));
    }
  }
  return lines;
}

ServeConfig quick_config() {
  ServeConfig config;
  config.drain_on_idle = true;
  return config;
}

TEST(ServeServer, FileAndSocketReportsAreByteIdenticalAcrossWorkersShards) {
  const DemoTrace demo;
  const std::vector<std::string> reference =
      file_path_events(demo, demo_monitor_config());
  ASSERT_FALSE(reference.empty());  // a vacuous diff pins nothing

  for (const std::uint32_t workers : {1u, 4u}) {
    for (const std::uint32_t shards : {1u, 4u}) {
      ServeHarness harness{quick_config(),
                           demo_monitor_config(workers, shards)};
      {
        Producer producer{harness.address()};
        producer.send_hello(demo.world.schema());
        producer.send_rows(demo.table.sessions());
      }  // close -> watermark waived -> every epoch seals -> idle drain
      EXPECT_EQ(harness.drain(), 0);

      const ServeStats stats = harness.stats();
      EXPECT_TRUE(stats.accounting_exact());
      EXPECT_EQ(stats.rows_received, demo.table.size());
      EXPECT_EQ(stats.rows_admitted, demo.table.size());
      EXPECT_EQ(stats.epochs_sealed, demo.table.num_epochs());
      EXPECT_EQ(harness.events(), reference)
          << "workers=" << workers << " shards=" << shards;
    }
  }
}

TEST(ServeServer, DataBeforeHelloIsAProtocolViolation) {
  ServeHarness harness{quick_config()};
  std::vector<Session> rows;
  test::add_sessions(rows, 0, test::Attrs{}, test::good_quality(), 5);
  {
    Producer producer{harness.address()};
    producer.send_raw(encode_data(rows));  // no hello first
  }
  ASSERT_TRUE(wait_until(
      [&] { return harness.stats().protocol_closed >= 1; },
      milliseconds{5000}));
  EXPECT_EQ(harness.drain(), 0);

  const ServeStats stats = harness.stats();
  EXPECT_TRUE(stats.accounting_exact());
  EXPECT_EQ(stats.rows_received, 5u);
  EXPECT_EQ(stats.rows_quarantined, 5u);
  EXPECT_EQ(stats.rows_admitted, 0u);
  EXPECT_GE(stats.row_reasons[static_cast<int>(
                RowErrorKind::kSchemaViolation)],
            5u);
}

TEST(ServeServer, QuarantinePolicyCountsAndDropsBadRows) {
  ServeHarness harness{quick_config()};
  const AttributeSchema schema = test::one_value_schema();

  std::vector<Session> rows;
  test::add_sessions(rows, 0, test::Attrs{}, test::good_quality(), 8);
  rows[3].quality.bitrate_kbps = std::numeric_limits<float>::quiet_NaN();
  rows[6].epoch = kDefaultMaxEpoch + 10;  // insane epoch
  {
    Producer producer{harness.address()};
    producer.send_hello(schema);
    producer.send_rows(rows);
  }
  EXPECT_EQ(harness.drain(), 0);

  const ServeStats stats = harness.stats();
  EXPECT_TRUE(stats.accounting_exact());
  EXPECT_EQ(stats.rows_received, 8u);
  EXPECT_EQ(stats.rows_admitted, 6u);
  EXPECT_EQ(stats.rows_quarantined, 2u);
  EXPECT_EQ(stats.row_reasons[static_cast<int>(RowErrorKind::kNonFinite)],
            1u);
  EXPECT_EQ(stats.row_reasons[static_cast<int>(RowErrorKind::kBadNumber)],
            1u);
}

TEST(ServeServer, BestEffortClampsRepairableFields) {
  ServeConfig config = quick_config();
  config.row_policy = ErrorPolicy::kBestEffort;
  ServeHarness harness{std::move(config)};
  const AttributeSchema schema = test::one_value_schema();

  std::vector<Session> rows;
  test::add_sessions(rows, 0, test::Attrs{}, test::good_quality(), 4);
  rows[1].quality.join_time_ms = std::numeric_limits<float>::infinity();
  {
    Producer producer{harness.address()};
    producer.send_hello(schema);
    producer.send_rows(rows);
  }
  EXPECT_EQ(harness.drain(), 0);

  const ServeStats stats = harness.stats();
  EXPECT_TRUE(stats.accounting_exact());
  EXPECT_EQ(stats.rows_admitted, 4u);  // repaired, not dropped
  EXPECT_EQ(stats.rows_quarantined, 0u);
  EXPECT_GE(stats.fields_clamped, 1u);
}

TEST(ServeServer, StrictPolicyClosesTheOffendingConnectionOnly) {
  ServeConfig config = quick_config();
  config.row_policy = ErrorPolicy::kStrict;
  config.drain_on_idle = false;
  ServeHarness harness{std::move(config)};
  const AttributeSchema schema = test::one_value_schema();

  std::vector<Session> bad_rows;
  test::add_sessions(bad_rows, 0, test::Attrs{}, test::good_quality(), 3);
  bad_rows[1].quality.buffering_ratio =
      std::numeric_limits<float>::quiet_NaN();
  {
    Producer offender{harness.address()};
    offender.send_hello(schema);
    offender.send_rows(bad_rows);
  }
  ASSERT_TRUE(wait_until(
      [&] { return harness.stats().protocol_closed >= 1; },
      milliseconds{5000}));

  // The error stayed on the offender: a well-behaved producer still works.
  // Epoch 5, not 0 — the offender's close advanced the watermark past 0,
  // so an epoch-0 resend would (correctly) count as stale.
  std::vector<Session> good_rows;
  test::add_sessions(good_rows, 5, test::Attrs{}, test::good_quality(), 4);
  {
    Producer good{harness.address()};
    good.send_hello(schema);
    good.send_rows(good_rows);
  }
  ASSERT_TRUE(wait_until(
      [&] { return harness.stats().rows_admitted >= 4; },
      milliseconds{5000}));
  EXPECT_EQ(harness.drain(), 0);

  const ServeStats stats = harness.stats();
  EXPECT_TRUE(stats.accounting_exact());
  EXPECT_GE(stats.rows_quarantined, 1u);
  EXPECT_GE(stats.rows_admitted, 4u);
  ASSERT_GE(stats.connections.size(), 2u);
  EXPECT_FALSE(stats.connections[0].open);
  EXPECT_FALSE(stats.connections[0].close_reason.empty());
}

TEST(ServeServer, LateRowsBehindTheWatermarkAreStale) {
  ServeConfig config = quick_config();
  config.drain_on_idle = false;
  ServeHarness harness{std::move(config)};
  const AttributeSchema schema = test::one_value_schema();

  std::vector<Session> epoch0;
  test::add_sessions(epoch0, 0, test::Attrs{}, test::good_quality(), 6);
  std::vector<Session> epoch2;
  test::add_sessions(epoch2, 2, test::Attrs{}, test::good_quality(), 6);

  Producer producer{harness.address()};
  producer.send_hello(schema);
  producer.send_rows(epoch0);
  // Epoch 2 promises epochs 0 and 1 are complete: watermark 2, both seal.
  producer.send_rows(epoch2);
  ASSERT_TRUE(wait_until(
      [&] { return harness.stats().epochs_sealed >= 2; },
      milliseconds{5000}));

  // A late replay of epoch 0 is behind the watermark — stale, not admitted.
  producer.send_rows(epoch0);
  ASSERT_TRUE(wait_until(
      [&] { return harness.stats().rows_stale >= 6; }, milliseconds{5000}));
  producer.close();
  EXPECT_EQ(harness.drain(), 0);

  const ServeStats stats = harness.stats();
  EXPECT_TRUE(stats.accounting_exact());
  EXPECT_EQ(stats.rows_received, 18u);
  EXPECT_EQ(stats.rows_admitted, 12u);
  EXPECT_EQ(stats.rows_stale, 6u);
  EXPECT_EQ(stats.epochs_sealed, 3u);  // 0, 1 (empty), 2
}

TEST(ServeServer, ConnectionCapRefusesTheOverflow) {
  ServeConfig config = quick_config();
  config.drain_on_idle = false;
  config.max_connections = 1;
  ServeHarness harness{std::move(config)};
  const AttributeSchema schema = test::one_value_schema();

  Producer first{harness.address()};
  first.send_hello(schema);
  ASSERT_TRUE(wait_until(
      [&] { return harness.stats().connections_accepted >= 1; },
      milliseconds{5000}));

  Producer second{harness.address()};  // connect() succeeds; server refuses
  ASSERT_TRUE(wait_until(
      [&] { return harness.stats().connections_refused >= 1; },
      milliseconds{5000}));
  first.close();
  second.close();
  EXPECT_EQ(harness.drain(), 0);
  EXPECT_TRUE(harness.stats().accounting_exact());
}

TEST(ServeServer, CheckpointResumeReplaysWithoutDuplicateEvents) {
  const DemoTrace demo;
  const std::filesystem::path checkpoint =
      std::filesystem::temp_directory_path() /
      ("vq_serve_ckpt_" + std::to_string(::getpid()) + ".bin");
  std::filesystem::remove(checkpoint);
  const std::vector<std::string> reference =
      file_path_events(demo, demo_monitor_config());

  // Phase 1: feed epochs 0..2, then the "crash" (drain + restart).
  std::vector<std::string> events;
  {
    ServeConfig config = quick_config();
    config.drain_on_idle = false;
    config.checkpoint_path = checkpoint;
    ServeHarness harness{std::move(config), demo_monitor_config()};
    {
      Producer producer{harness.address()};
      producer.send_hello(demo.world.schema());
      for (std::uint32_t e = 0; e < 3; ++e) {
        producer.send_rows(demo.table.epoch(e));
      }
    }  // close -> watermark waived -> epochs 0..2 seal
    ASSERT_TRUE(wait_until(
        [&] { return harness.stats().epochs_sealed >= 3; },
        milliseconds{5000}));
    EXPECT_EQ(harness.drain(), 0);
    EXPECT_GE(harness.stats().checkpoints_written, 1u);
    events = harness.events();
  }

  // Phase 2: a restarted server + a producer replaying from epoch 0.  The
  // checkpoint pins the seal cursor at 3: the replayed prefix is stale,
  // epochs 3..5 continue the event stream exactly.
  {
    ServeConfig config = quick_config();
    config.checkpoint_path = checkpoint;
    ServeHarness harness{std::move(config), demo_monitor_config()};
    {
      Producer producer{harness.address()};
      producer.send_hello(demo.world.schema());
      producer.send_rows(demo.table.sessions());  // full replay
    }
    EXPECT_EQ(harness.drain(), 0);

    const ServeStats stats = harness.stats();
    EXPECT_TRUE(stats.accounting_exact());
    EXPECT_GT(stats.rows_stale, 0u);  // the replayed prefix
    for (const std::string& line : harness.events()) {
      events.push_back(line);
    }
  }
  EXPECT_EQ(events, reference);
  std::filesystem::remove(checkpoint);
}

TEST(ServeServer, TcpEphemeralPortWorksEndToEnd) {
  ServeConfig config = quick_config();
  config.address = "127.0.0.1:0";
  ServeHarness harness{std::move(config)};
  const AttributeSchema schema = test::one_value_schema();

  std::vector<Session> rows;
  test::add_sessions(rows, 0, test::Attrs{}, test::good_quality(), 10);
  {
    Producer producer{"127.0.0.1:" +
                      std::to_string(harness.server().port())};
    producer.send_hello(schema);
    producer.send_rows(rows);
  }
  EXPECT_EQ(harness.drain(), 0);
  EXPECT_EQ(harness.stats().rows_admitted, 10u);
  EXPECT_TRUE(harness.stats().accounting_exact());
}

}  // namespace
}  // namespace vq::serve
