// Differential tests for the mask-major hash-free lattice expansion: on the
// same leaf fold, the mask-major engine (serial, sharded, SIMD and scalar
// kernels) must reproduce the retained hashed baseline's cell contents bit
// for bit, with a dense-id layout that is canonical (mask-major,
// key-ascending) and invariant across shard counts and kernel variants —
// over arity caps {1, 2, 7}, shard counts {1, 4}, and adversarial folds.
// Also unit-covers the expand_kernels.h batch kernels against their scalar
// ground truth (ClusterKey::project, std::stable_sort) and the sorted-mode
// CellStore contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <set>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/core/attributes.h"
#include "src/core/cluster_engine.h"
#include "src/core/expand_kernels.h"
#include "src/core/pipeline.h"
#include "src/gen/tracegen.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"
#include "tests/test_support.h"

namespace vq {
namespace {

ClusterStats make_stats(std::uint32_t sessions, std::uint32_t p0,
                        std::uint32_t p1, std::uint32_t p2,
                        std::uint32_t p3) {
  ClusterStats s;
  s.sessions = sessions;
  s.problems = {p0, p1, p2, p3};
  return s;
}

/// Builds a LeafFold from explicit (attrs, stats) pairs.
LeafFold make_fold(std::span<const std::pair<AttrVec, ClusterStats>> leaves) {
  LeafFold fold;
  for (const auto& [attrs, stats] : leaves) {
    fold.leaves[ClusterKey::pack(kFullMask, attrs).raw()] += stats;
    fold.root += stats;
  }
  return fold;
}

/// The mask-major dense-id contract: ids ascend by (mask value, raw key).
void expect_canonical_layout(const CellStore& store) {
  ASSERT_TRUE(store.sorted());
  const std::span<const std::uint64_t> keys = store.keys();
  for (std::size_t id = 1; id < keys.size(); ++id) {
    const std::uint64_t prev_mask = keys[id - 1] & kFullMask;
    const std::uint64_t cur_mask = keys[id] & kFullMask;
    const bool ordered =
        prev_mask < cur_mask ||
        (prev_mask == cur_mask && keys[id - 1] < keys[id]);
    ASSERT_TRUE(ordered) << "ids " << id - 1 << ", " << id;
  }
}

/// Same cell set with identical counters, plus id_of/key round trips.
void expect_same_cells(const EpochClusterTable& expected,
                       const EpochClusterTable& actual) {
  EXPECT_EQ(expected.epoch, actual.epoch);
  EXPECT_EQ(expected.root, actual.root);
  ASSERT_EQ(expected.clusters.size(), actual.clusters.size());
  std::size_t mismatches = 0;
  expected.clusters.for_each(
      [&](std::uint64_t raw, const ClusterStats& stats) {
        const ClusterStats* other = actual.clusters.find(raw);
        if (other == nullptr || !(stats == *other)) ++mismatches;
        const std::uint32_t id = actual.clusters.id_of(raw);
        if (id == CellStore::kNoCell || actual.clusters.key(id) != raw) {
          ++mismatches;
        }
      });
  EXPECT_EQ(mismatches, 0u);
}

/// Identical arrays, id for id — the layout-invariance contract between two
/// runs of the *same* engine (different shard counts / kernels).
void expect_tables_elementwise_equal(const EpochClusterTable& expected,
                                     const EpochClusterTable& actual) {
  EXPECT_EQ(expected.root, actual.root);
  ASSERT_EQ(expected.clusters.size(), actual.clusters.size());
  for (std::uint32_t id = 0; id < expected.clusters.size(); ++id) {
    ASSERT_EQ(expected.clusters.key(id), actual.clusters.key(id)) << id;
    ASSERT_EQ(expected.clusters.cell(id), actual.clusters.cell(id)) << id;
  }
  EXPECT_EQ(expected.leaf_index.masks, actual.leaf_index.masks);
  EXPECT_EQ(expected.leaf_index.leaf_keys, actual.leaf_index.leaf_keys);
  EXPECT_EQ(expected.leaf_index.leaf_stats, actual.leaf_index.leaf_stats);
  EXPECT_EQ(expected.leaf_index.cell_rows, actual.leaf_index.cell_rows);
}

/// Every LeafCellIndex row slot must point at the cell whose key is that
/// leaf's projection — the engine-independent meaning of the index.
void expect_index_rows_valid(const EpochClusterTable& table) {
  const LeafCellIndex& index = table.leaf_index;
  for (std::size_t leaf = 0; leaf < index.num_leaves(); ++leaf) {
    const ClusterKey key = ClusterKey::from_raw(index.leaf_keys[leaf]);
    const std::span<const std::uint32_t> row = index.row(leaf);
    for (std::size_t j = 0; j < index.masks.size(); ++j) {
      ASSERT_LT(row[j], table.clusters.size());
      ASSERT_EQ(table.clusters.key(row[j]),
                key.project(index.masks[j]).raw())
          << "leaf " << leaf << " mask " << int{index.masks[j]};
    }
  }
}

/// Full new-vs-hashed differential for one fold at one arity cap: serial
/// and sharded runs of both engines, SIMD and scalar kernels.
void run_differential(const LeafFold& fold, int arity) {
  SCOPED_TRACE("arity " + std::to_string(arity));
  ClusterEngineConfig hashed_config;
  hashed_config.max_arity = arity;
  hashed_config.expand = ExpandStrategy::kHashed;
  ClusterEngineConfig mm_config;
  mm_config.max_arity = arity;
  ASSERT_EQ(mm_config.expand, ExpandStrategy::kMaskMajor);  // the default

  const EpochClusterTable hashed = expand_fold(fold, hashed_config);
  const EpochClusterTable mask_major = expand_fold(fold, mm_config);
  EXPECT_FALSE(hashed.clusters.sorted());
  expect_canonical_layout(mask_major.clusters);
  expect_same_cells(hashed, mask_major);
  expect_same_cells(mask_major, hashed);
  expect_index_rows_valid(hashed);
  expect_index_rows_valid(mask_major);
  EXPECT_EQ(hashed.leaf_index.leaf_keys, mask_major.leaf_index.leaf_keys);
  EXPECT_EQ(hashed.leaf_index.leaf_stats, mask_major.leaf_index.leaf_stats);

  ClusterEngineConfig scalar_config = mm_config;
  scalar_config.expand_kernel = BatchKernel::kScalar;
  expect_tables_elementwise_equal(mask_major,
                                  expand_fold(fold, scalar_config));

  ThreadPool pool{4};
  for (const std::size_t shards : {1u, 4u}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    expect_tables_elementwise_equal(
        mask_major, expand_fold(fold, mm_config, &pool, shards));
    const EpochClusterTable hashed_sharded =
        expand_fold(fold, hashed_config, &pool, shards);
    expect_same_cells(hashed, hashed_sharded);
    expect_index_rows_valid(hashed_sharded);
  }
}

SessionTable big_trace() {
  // Small attribute universe so leaves repeat heavily; mirrors
  // test_fold_differential.cpp.
  WorldConfig world_config;
  world_config.num_sites = 12;
  world_config.num_cdns = 3;
  world_config.num_asns = 25;
  const World world = World::build(world_config);
  EventScheduleConfig event_config;
  event_config.num_epochs = 1;
  const EventSchedule events = EventSchedule::generate(world, event_config);
  TraceConfig trace_config;
  trace_config.num_epochs = 1;
  trace_config.sessions_per_epoch = 50'000;
  trace_config.diurnal_amplitude = 0.0;  // epoch 0 gets the full 50k
  return generate_trace(world, events, trace_config);
}

class ExpandDifferential : public ::testing::TestWithParam<int> {};

TEST_P(ExpandDifferential, GeneratedTrace) {
  static const SessionTable trace = big_trace();
  const LeafFold fold =
      fold_sessions(trace.epoch(0), ProblemThresholds{}, 0);
  // Enough distinct leaves to take the sharded paths for real.
  ASSERT_GT(fold.leaves.size(), 512u);
  run_differential(fold, GetParam());
}

TEST_P(ExpandDifferential, EmptyFold) {
  const LeafFold fold;
  run_differential(fold, GetParam());
  const EpochClusterTable table = expand_fold(fold, {});
  EXPECT_EQ(table.clusters.size(), 0u);
  EXPECT_TRUE(table.leaf_index.leaf_keys.empty());
  EXPECT_FALSE(table.leaf_index.masks.empty());
}

TEST_P(ExpandDifferential, SingleLeaf) {
  const std::vector<std::pair<AttrVec, ClusterStats>> leaves = {
      {AttrVec{{37, 5, 4211, 3, 2, 1, 1}}, make_stats(9, 4, 0, 1, 9)},
  };
  run_differential(make_fold(leaves), GetParam());
}

TEST_P(ExpandDifferential, AllLeavesProjectToOneCellOffSite) {
  // 600 leaves differing only in site: every mask without the site bit has
  // exactly one cell holding the whole population — maximal run sharing and
  // enough leaves to cross the shard threshold.
  std::vector<std::pair<AttrVec, ClusterStats>> leaves;
  for (std::uint16_t site = 0; site < 600; ++site) {
    leaves.emplace_back(AttrVec{{site, 2, 999, 1, 3, 2, 0}},
                        make_stats(2 + site % 5, site % 3, 1, 0, site % 2));
  }
  const LeafFold fold = make_fold(leaves);
  run_differential(fold, GetParam());

  const EpochClusterTable table = expand_fold(fold, {});
  const std::uint8_t off_site_mask = dim_bit(AttrDim::kCdn);
  const ClusterStats* cell = table.clusters.find(
      ClusterKey::pack(off_site_mask, leaves.front().first).raw());
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(*cell, fold.root);
}

TEST_P(ExpandDifferential, LeavesDifferOnlyInHighestAttribute) {
  // The VoD/Live dimension occupies the most significant key bits; keys
  // differing only there stress the top radix digit and the run boundaries
  // of every mask that drops it.
  std::vector<std::pair<AttrVec, ClusterStats>> leaves;
  for (std::uint16_t vod = 0; vod <= dim_capacity(AttrDim::kVodLive);
       ++vod) {
    leaves.emplace_back(AttrVec{{11, 4, 30000, 2, 1, 3, vod}},
                        make_stats(5, 1, 2, 3, 4));
  }
  run_differential(make_fold(leaves), GetParam());
}

INSTANTIATE_TEST_SUITE_P(ArityCaps, ExpandDifferential,
                         ::testing::Values(1, 2, 7), [](const auto& info) {
                           return "arity" + std::to_string(info.param);
                         });

TEST(ExpandDifferential, PipelineOutputsAgreeAcrossEngines) {
  // End to end: the full pipeline (fold -> expand -> per-metric critical
  // analysis) must publish identical results whichever expansion engine
  // built the per-epoch tables.
  static const SessionTable trace = big_trace();
  PipelineConfig hashed_config;
  hashed_config.cluster_params = {.ratio_multiplier = 1.5,
                                  .min_sessions = 150};
  hashed_config.workers = 2;
  hashed_config.shards = 4;
  hashed_config.engine.expand = ExpandStrategy::kHashed;
  PipelineConfig mm_config = hashed_config;
  mm_config.engine.expand = ExpandStrategy::kMaskMajor;

  const PipelineResult hashed = run_pipeline(trace, hashed_config);
  const PipelineResult mask_major = run_pipeline(trace, mm_config);
  ASSERT_EQ(hashed.num_epochs, mask_major.num_epochs);
  for (const Metric m : kAllMetrics) {
    for (std::uint32_t e = 0; e < hashed.num_epochs; ++e) {
      const CriticalAnalysis& a = hashed.at(m, e).analysis;
      const CriticalAnalysis& b = mask_major.at(m, e).analysis;
      EXPECT_EQ(a.problem_sessions, b.problem_sessions);
      EXPECT_EQ(a.problem_sessions_in_pc, b.problem_sessions_in_pc);
      EXPECT_EQ(a.num_problem_clusters, b.num_problem_clusters);
      EXPECT_EQ(a.problem_cluster_keys, b.problem_cluster_keys);
      EXPECT_EQ(a.attributed_mass, b.attributed_mass);
      ASSERT_EQ(a.criticals.size(), b.criticals.size());
      for (std::size_t i = 0; i < a.criticals.size(); ++i) {
        EXPECT_EQ(a.criticals[i].key, b.criticals[i].key);
        EXPECT_EQ(a.criticals[i].attributed, b.criticals[i].attributed);
        EXPECT_EQ(a.criticals[i].stats, b.criticals[i].stats);
      }
    }
  }
}

TEST(ExpandKernels, FieldMaskMatchesDimFieldTable) {
  for (unsigned mask = 0; mask <= kFullMask; ++mask) {
    std::uint64_t expected = 0;
    for (int d = 0; d < kNumDims; ++d) {
      if ((mask >> d) & 1u) {
        const DimField field = dim_field(static_cast<AttrDim>(d));
        expected |= ((std::uint64_t{1} << field.bits) - 1) << field.offset;
      }
    }
    EXPECT_EQ(lattice_field_mask(static_cast<std::uint8_t>(mask)), expected)
        << mask;
  }
}

TEST(ExpandKernels, ProjectMatchesClusterKeyProject) {
  // 1027 leaves (odd, to exercise the SIMD tails) over the full id ranges.
  Xoshiro256ss rng{42};
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 1027; ++i) {
    AttrVec attrs;
    for (int d = 0; d < kNumDims; ++d) {
      attrs.v[static_cast<std::size_t>(d)] = static_cast<std::uint16_t>(
          rng() % (dim_capacity(static_cast<AttrDim>(d)) + 1u));
    }
    keys.push_back(ClusterKey::pack(kFullMask, attrs).raw());
  }
  std::vector<std::uint64_t> got_auto(keys.size());
  std::vector<std::uint64_t> got_scalar(keys.size());
  for (unsigned mask = 1; mask <= kFullMask; ++mask) {
    const auto m = static_cast<std::uint8_t>(mask);
    project_keys(keys.data(), keys.size(), m, got_auto.data(),
                 BatchKernel::kAuto);
    project_keys(keys.data(), keys.size(), m, got_scalar.data(),
                 BatchKernel::kScalar);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const std::uint64_t expected =
          ClusterKey::from_raw(keys[i]).project(m).raw();
      ASSERT_EQ(got_auto[i], expected) << "mask " << mask << " i " << i;
      ASSERT_EQ(got_scalar[i], expected) << "mask " << mask << " i " << i;
    }
  }
}

TEST(ExpandKernels, ChainHeadFillsBelowLowestDimension) {
  EXPECT_EQ(chain_head(0b0000001), 0b0000001);
  EXPECT_EQ(chain_head(0b1000000), kFullMask);
  EXPECT_EQ(chain_head(0b0110000), 0b0111111);
  EXPECT_EQ(chain_head(0b1000100), 0b1000111);
  for (unsigned mask = 1; mask <= kFullMask; ++mask) {
    const std::uint8_t head = chain_head(static_cast<std::uint8_t>(mask));
    // The head extends the mask with exactly the dims below its lowest bit.
    EXPECT_EQ(head & mask, mask);
    EXPECT_EQ(head, mask | ((1u << std::countr_zero(mask)) - 1u));
    // Heads are fixed points: grouping by head never cascades.
    EXPECT_EQ(chain_head(head), head);
  }
}

TEST(ExpandKernels, RadixPlanCoversExactlyOccupiedDigits) {
  // Site occupies key bits 7-18: byte windows 0, 1, 2.
  const RadixPlan site = radix_plan(dim_bit(AttrDim::kSite));
  ASSERT_EQ(site.passes, 3);
  EXPECT_EQ(site.shifts[0], 0);
  EXPECT_EQ(site.shifts[1], 8);
  EXPECT_EQ(site.shifts[2], 16);
  // VoD/Live occupies bits 53-54: byte window 6 only.
  const RadixPlan vod = radix_plan(dim_bit(AttrDim::kVodLive));
  ASSERT_EQ(vod.passes, 1);
  EXPECT_EQ(vod.shifts[0], 48);
  // The full key spans bytes 0-6; byte 7 is always constant (bit 63 clear).
  const RadixPlan full = radix_plan(kFullMask);
  EXPECT_EQ(full.passes, 7);
}

TEST(ExpandKernels, RadixSortMatchesStableSort) {
  Xoshiro256ss rng{7};
  for (const std::size_t n : {0u, 1u, 2u, 255u, 4096u}) {
    std::vector<std::uint64_t> keys(n);
    std::vector<std::uint32_t> rows(n);
    std::vector<std::pair<std::uint64_t, std::uint32_t>> expected(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Duplicate-heavy keys under the full-mask plan's digit span.
      keys[i] = (rng() % 4096) << kNumDims;
      rows[i] = static_cast<std::uint32_t>(i);
      expected[i] = {keys[i], rows[i]};
    }
    std::stable_sort(
        expected.begin(), expected.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    const RadixPlan plan = radix_plan(kFullMask);
    std::vector<std::uint64_t> key_scratch(1);  // deliberately undersized
    std::vector<std::uint32_t> row_scratch;
    const std::uint64_t bytes =
        radix_sort_pairs(keys, rows, plan, key_scratch, row_scratch);
    ASSERT_EQ(keys.size(), n);
    ASSERT_EQ(rows.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(keys[i], expected[i].first) << i;
      EXPECT_EQ(rows[i], expected[i].second) << i;
    }
    // Only passes whose digit actually varies across the keys scatter;
    // constant digits (bytes 3-6 here, plus any small-n coincidences) are
    // skipped.
    std::uint64_t executed = 0;
    for (int p = 0; p < plan.passes && n >= 2; ++p) {
      std::set<std::uint64_t> digits;
      for (const auto& [k, r] : expected) digits.insert((k >> plan.shifts[static_cast<std::size_t>(p)]) & 0xFFu);
      executed += digits.size() > 1 ? 1 : 0;
    }
    const std::uint64_t expected_bytes =
        n < 2 ? 0 : static_cast<std::uint64_t>(n) * executed * 12;
    EXPECT_EQ(bytes, expected_bytes);
  }
}

TEST(CellStoreSorted, LookupsAndAccessors) {
  static const SessionTable trace = big_trace();
  const LeafFold fold =
      fold_sessions(trace.epoch(0), ProblemThresholds{}, 0);
  const EpochClusterTable table = expand_fold(fold, {});
  const CellStore& store = table.clusters;
  ASSERT_TRUE(store.sorted());
  ASSERT_GT(store.size(), 0u);

  // Every stored key resolves to its own id through the binary search.
  for (std::uint32_t id = 0; id < store.size(); ++id) {
    ASSERT_EQ(store.id_of(store.key(id)), id);
    ASSERT_TRUE(store.contains(store.key(id)));
    ASSERT_EQ(store.find(store.key(id)), &store.cell(id));
  }
  // Misses: a key absent from a populated mask group, and the root.
  std::uint64_t absent = store.key(0) ^ (std::uint64_t{1} << 20);
  while (store.contains(absent)) absent += std::uint64_t{1} << 20;
  EXPECT_EQ(store.id_of(absent), CellStore::kNoCell);
  EXPECT_EQ(store.find(absent), nullptr);
  EXPECT_FALSE(store.contains(0));
}

TEST(CellStoreSorted, MutatorsThrow) {
  const EpochClusterTable table = expand_fold(LeafFold{}, {});
  CellStore store = table.clusters;  // copy keeps sorted mode
  ASSERT_TRUE(store.sorted());
  EXPECT_THROW((void)store.id_or_insert(0x81), std::logic_error);
  EXPECT_THROW((void)store.bump(0x81, ClusterStats{}), std::logic_error);
  EXPECT_THROW((void)store[0x81], std::logic_error);
  CellStore target;
  (void)target.bump(0x81, ClusterStats{});
  EXPECT_THROW(store.merge_add(target), std::logic_error);
  // Merging *from* a sorted store into a mutable one is fine (reads only).
  target.merge_add(store);
}

TEST(CellStoreSorted, FromMaskMajorValidatesShapes) {
  std::array<std::uint32_t, kFullMask + 2> offsets{};
  EXPECT_THROW((void)CellStore::from_mask_major({0x81}, {}, offsets),
               std::invalid_argument);
  EXPECT_THROW(
      (void)CellStore::from_mask_major({0x81}, {ClusterStats{}}, offsets),
      std::invalid_argument);  // offsets say empty, arrays say 1
  offsets.back() = 1;
  offsets[1] = 1;  // mask 0's range would be [0, 1) but offsets[1] > ... ok;
  // make them non-monotone instead:
  offsets[2] = 0;
  EXPECT_THROW(
      (void)CellStore::from_mask_major({0x81}, {ClusterStats{}}, offsets),
      std::invalid_argument);
}

}  // namespace
}  // namespace vq
