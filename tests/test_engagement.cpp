#include "src/core/engagement.h"

#include <gtest/gtest.h>

#include "tests/test_support.h"

namespace vq {
namespace {

using test::Attrs;

TEST(EngagementModel, PerfectSessionLosesNothing) {
  const EngagementModel model;
  QualityMetrics q;
  q.buffering_ratio = 0.0F;
  q.bitrate_kbps = 3'000.0F;
  q.join_time_ms = 500.0F;
  EXPECT_DOUBLE_EQ(model.lost_minutes(q), 0.0);
}

TEST(EngagementModel, JoinFailureForfeitsWholeSession) {
  const EngagementModel model;
  EXPECT_DOUBLE_EQ(model.lost_minutes(test::failed_join()),
                   model.expected_session_minutes);
}

TEST(EngagementModel, BufferingLossIsNearLinearThenSaturates) {
  const EngagementModel model;
  QualityMetrics q;
  q.bitrate_kbps = 3'000.0F;
  q.join_time_ms = 500.0F;
  q.buffering_ratio = 0.01F;
  // ~3 min/pct when small (within the curvature of the saturation).
  EXPECT_NEAR(model.lost_minutes(q), model.minutes_lost_per_buffering_pct,
              0.5);
  const double at_1pct = model.lost_minutes(q);
  q.buffering_ratio = 0.05F;
  const double at_5pct = model.lost_minutes(q);
  q.buffering_ratio = 0.50F;
  const double at_50pct = model.lost_minutes(q);
  EXPECT_GT(at_5pct, at_1pct);
  EXPECT_GT(at_50pct, at_5pct);
  EXPECT_NEAR(at_50pct, model.max_buffering_loss_minutes, 0.01);
}

TEST(EngagementModel, JoinTimeLossKicksInPastThreshold) {
  const EngagementModel model;
  QualityMetrics q;
  q.buffering_ratio = 0.0F;
  q.bitrate_kbps = 3'000.0F;
  q.join_time_ms = 1'500.0F;  // under the 2 s patience threshold
  EXPECT_DOUBLE_EQ(model.lost_minutes(q), 0.0);
  q.join_time_ms = 12'000.0F;  // 10 s past -> 60% abandon probability
  EXPECT_NEAR(model.lost_minutes(q), 0.6 * model.expected_session_minutes,
              1e-6);
}

TEST(EngagementModel, LossIsCappedAtSessionLength) {
  const EngagementModel model;
  QualityMetrics q;
  q.buffering_ratio = 0.9F;
  q.bitrate_kbps = 100.0F;
  q.join_time_ms = 60'000.0F;
  EXPECT_DOUBLE_EQ(model.lost_minutes(q), model.expected_session_minutes);
}

TEST(EngagementReport, SumsAndDecomposes) {
  QualityMetrics perfect;
  perfect.buffering_ratio = 0.0F;
  perfect.bitrate_kbps = 3'000.0F;
  perfect.join_time_ms = 500.0F;
  std::vector<Session> sessions;
  test::add_sessions(sessions, 0, Attrs{.site = 1}, test::failed_join(), 3);
  test::add_sessions(sessions, 0, Attrs{.site = 2}, perfect, 7);
  const SessionTable table{std::move(sessions)};
  const EngagementModel model;
  const EngagementReport report = engagement_report(table, model);
  EXPECT_NEAR(report.total_lost_minutes,
              3.0 * model.expected_session_minutes, 1e-6);
  EXPECT_NEAR(report.mean_lost_minutes_per_session,
              report.total_lost_minutes / 10.0, 1e-9);
  EXPECT_NEAR(report.lost_by_cause[static_cast<int>(Metric::kJoinFailure)],
              report.total_lost_minutes, 1e-6);
}

TEST(EngagementWhatIf, RanksClustersByRecoverableMinutes) {
  // Cluster A: many sessions, mild buffering. Cluster B: fewer sessions,
  // catastrophic buffering -> B recovers more minutes per session and can
  // out-rank A on engagement while A wins on session counts.
  std::vector<Session> sessions;
  QualityMetrics mild = test::good_quality();
  mild.buffering_ratio = 0.06F;  // barely a problem
  QualityMetrics severe = test::good_quality();
  severe.buffering_ratio = 0.45F;  // session-destroying

  for (std::uint32_t e = 0; e < 2; ++e) {
    for (std::uint16_t asn = 1; asn <= 4; ++asn) {
      // 72 mild problem sessions vs 60 severe ones: A wins on session
      // counts, B on engagement minutes (severe sessions lose ~50% more).
      test::add_sessions(sessions, e, Attrs{.cdn = 1, .asn = asn}, mild, 18);
    }
    for (std::uint16_t asn = 1; asn <= 4; ++asn) {
      test::add_sessions(sessions, e, Attrs{.cdn = 2, .asn = asn}, severe,
                         15);
      test::add_sessions(sessions, e, Attrs{.cdn = 2, .asn = asn},
                         test::good_quality(), 10);
    }
    for (std::uint16_t asn = 10; asn < 28; ++asn) {
      test::add_sessions(sessions, e, Attrs{.cdn = 3, .asn = asn},
                         test::good_quality(), 50);
    }
  }
  const SessionTable table{std::move(sessions)};
  PipelineConfig config;
  config.cluster_params.min_sessions = 50;
  const PipelineResult result = run_pipeline(table, config);
  const EngagementWhatIf whatif{table, result, EngagementModel{}};

  const auto ranking = whatif.ranking(Metric::kBufRatio);
  ASSERT_GE(ranking.size(), 2u);
  // Engagement ranking puts the severe cluster (CDN 2) first even though
  // the mild cluster (CDN 1) has more problem sessions.
  EXPECT_EQ(ranking[0].key.value(AttrDim::kCdn), 2);
  double more_sessions = 0.0;
  for (const auto& r : ranking) {
    if (r.key.has(AttrDim::kCdn) && r.key.value(AttrDim::kCdn) == 1) {
      more_sessions = r.sessions_alleviated;
    }
  }
  EXPECT_GT(more_sessions, ranking[0].sessions_alleviated);
  EXPECT_GT(whatif.total_lost_minutes(Metric::kBufRatio), 0.0);
}

TEST(EngagementWhatIf, EngagementRankingDominatesOnMinutes) {
  // For any top fraction, picking by minutes recovers at least as many
  // minutes as picking by session counts (by construction of the ranking).
  std::vector<Session> sessions;
  QualityMetrics mild = test::good_quality();
  mild.buffering_ratio = 0.07F;
  QualityMetrics severe = test::good_quality();
  severe.buffering_ratio = 0.5F;
  for (std::uint16_t asn = 1; asn <= 4; ++asn) {
    test::add_sessions(sessions, 0, Attrs{.cdn = 1, .asn = asn}, mild, 30);
    test::add_sessions(sessions, 0, Attrs{.cdn = 2, .asn = asn}, severe, 15);
    test::add_sessions(sessions, 0, Attrs{.cdn = 2, .asn = asn},
                       test::good_quality(), 15);
  }
  for (std::uint16_t asn = 10; asn < 28; ++asn) {
    test::add_sessions(sessions, 0, Attrs{.cdn = 3, .asn = asn},
                       test::good_quality(), 50);
  }
  const SessionTable table{std::move(sessions)};
  PipelineConfig config;
  config.cluster_params.min_sessions = 50;
  const PipelineResult result = run_pipeline(table, config);
  const EngagementWhatIf whatif{table, result, EngagementModel{}};
  for (const double fraction : {0.25, 0.5, 1.0}) {
    const auto cmp = whatif.compare_rankings(Metric::kBufRatio, fraction);
    EXPECT_GE(cmp.minutes_engagement_ranked,
              cmp.minutes_session_ranked - 1e-9);
  }
}

TEST(EngagementWhatIf, EmptyTraceIsAllZero) {
  const SessionTable table;
  const PipelineResult result = run_pipeline(table, {});
  const EngagementWhatIf whatif{table, result, EngagementModel{}};
  EXPECT_TRUE(whatif.ranking(Metric::kJoinFailure).empty());
  EXPECT_EQ(whatif.total_lost_minutes(Metric::kJoinFailure), 0.0);
}

}  // namespace
}  // namespace vq
