#include "src/gen/diagnose.h"

#include <gtest/gtest.h>

namespace vq {
namespace {

World diag_world() {
  WorldConfig config;
  config.num_sites = 60;
  config.num_cdns = 10;
  config.num_asns = 200;
  return World::build(config);
}

ClusterKey key_for(AttrDim dim, std::uint16_t value) {
  AttrVec attrs;
  attrs[dim] = value;
  return ClusterKey::pack(dim_bit(dim), attrs);
}

template <typename Pred>
std::optional<std::uint16_t> find_entity(std::size_t n, Pred pred) {
  for (std::uint16_t i = 0; i < n; ++i) {
    if (pred(i)) return i;
  }
  return std::nullopt;
}

TEST(Diagnose, InHouseCdn) {
  const World world = diag_world();
  const auto id = find_entity(world.cdns().size(), [&](std::uint16_t i) {
    return world.cdns()[i].in_house;
  });
  ASSERT_TRUE(id.has_value());
  const Diagnosis d = diagnose_cluster(key_for(AttrDim::kCdn, *id), world);
  EXPECT_EQ(d.category, CauseCategory::kInHouseCdn);
  EXPECT_NE(d.summary.find("in-house"), std::string::npos);
  EXPECT_FALSE(d.recommendation.empty());
}

TEST(Diagnose, SingleBitrateSite) {
  const World world = diag_world();
  const auto id = find_entity(world.sites().size(), [&](std::uint16_t i) {
    return world.sites()[i].single_bitrate;
  });
  ASSERT_TRUE(id.has_value());
  const Diagnosis d = diagnose_cluster(key_for(AttrDim::kSite, *id), world);
  EXPECT_EQ(d.category, CauseCategory::kSingleBitrateSite);
  EXPECT_NE(d.recommendation.find("ladder"), std::string::npos);
}

TEST(Diagnose, RemoteModuleSite) {
  const World world = diag_world();
  const auto id = find_entity(world.sites().size(), [&](std::uint16_t i) {
    return world.sites()[i].remote_module_region >= 0 &&
           !world.sites()[i].single_bitrate;
  });
  if (!id.has_value()) GTEST_SKIP() << "no remote-module site in this world";
  const Diagnosis d = diagnose_cluster(key_for(AttrDim::kSite, *id), world);
  EXPECT_EQ(d.category, CauseCategory::kRemoteModulesSite);
}

TEST(Diagnose, PoorIspAndWirelessCarrier) {
  const World world = diag_world();
  const auto poor = find_entity(world.asns().size(), [&](std::uint16_t i) {
    return world.asns()[i].quality < 0.7 &&
           !world.asns()[i].wireless_provider;
  });
  ASSERT_TRUE(poor.has_value());
  EXPECT_EQ(diagnose_cluster(key_for(AttrDim::kAsn, *poor), world).category,
            CauseCategory::kPoorIsp);

  const auto carrier =
      find_entity(world.asns().size(), [&](std::uint16_t i) {
        return world.asns()[i].wireless_provider;
      });
  ASSERT_TRUE(carrier.has_value());
  EXPECT_EQ(
      diagnose_cluster(key_for(AttrDim::kAsn, *carrier), world).category,
      CauseCategory::kWirelessCarrier);
}

TEST(Diagnose, RadioAccessConnType) {
  const World world = diag_world();
  const Diagnosis d = diagnose_cluster(
      key_for(AttrDim::kConnType, kConnMobileWireless), world);
  EXPECT_EQ(d.category, CauseCategory::kRadioAccess);
  EXPECT_NE(d.summary.find("MobileWireless"), std::string::npos);
}

TEST(Diagnose, ActiveEventTakesPrecedence) {
  const World world = diag_world();
  // Scope an event on an in-house CDN: with event context the diagnosis
  // must name the live event, not the chronic cause.
  const auto id = find_entity(world.cdns().size(), [&](std::uint16_t i) {
    return world.cdns()[i].in_house;
  });
  ASSERT_TRUE(id.has_value());
  const ClusterKey key = key_for(AttrDim::kCdn, *id);

  ProblemEvent event;
  event.scope = key;
  event.kind = EventKind::kFailureSpike;
  event.impact.fail_prob_add = 0.3;
  event.start_epoch = 2;
  event.duration_epochs = 4;
  const EventSchedule schedule = EventSchedule::from_events({event}, 10);

  const Diagnosis live = diagnose_cluster(key, world, &schedule, 3);
  EXPECT_EQ(live.category, CauseCategory::kActiveEvent);
  EXPECT_NE(live.summary.find("FailureSpike"), std::string::npos);

  // Outside the event window the chronic explanation returns.
  const Diagnosis after = diagnose_cluster(key, world, &schedule, 8);
  EXPECT_EQ(after.category, CauseCategory::kInHouseCdn);
}

TEST(Diagnose, EventMatchesRefinedCluster) {
  const World world = diag_world();
  // An event on CDN 0 must also explain a detected (CDN 0, Browser) pair.
  AttrVec attrs;
  attrs[AttrDim::kCdn] = 0;
  attrs[AttrDim::kBrowser] = 2;
  ProblemEvent event;
  event.scope = ClusterKey::pack(dim_bit(AttrDim::kCdn), attrs);
  event.kind = EventKind::kThroughputCollapse;
  event.start_epoch = 0;
  event.duration_epochs = 2;
  const EventSchedule schedule = EventSchedule::from_events({event}, 4);

  const ClusterKey refined = ClusterKey::pack(
      dim_bit(AttrDim::kCdn) | dim_bit(AttrDim::kBrowser), attrs);
  EXPECT_EQ(diagnose_cluster(refined, world, &schedule, 1).category,
            CauseCategory::kActiveEvent);
}

TEST(Diagnose, UnknownFallsBackToManualAnalysis) {
  const World world = diag_world();
  // A healthy US ASN with no chronic flags.
  const auto id = find_entity(world.asns().size(), [&](std::uint16_t i) {
    return world.asns()[i].quality >= 0.9 &&
           !world.asns()[i].wireless_provider &&
           world.asns()[i].region == Region::kUS;
  });
  ASSERT_TRUE(id.has_value());
  const Diagnosis d = diagnose_cluster(key_for(AttrDim::kAsn, *id), world);
  EXPECT_EQ(d.category, CauseCategory::kUnknown);
  EXPECT_NE(d.recommendation.find("fine-grained"), std::string::npos);
}

TEST(Diagnose, CategoryNamesAreDistinct) {
  std::set<std::string_view> names;
  for (int c = 0; c <= static_cast<int>(CauseCategory::kRadioAccess); ++c) {
    names.insert(cause_category_name(static_cast<CauseCategory>(c)));
  }
  EXPECT_EQ(names.size(), 11u);
}

}  // namespace
}  // namespace vq
