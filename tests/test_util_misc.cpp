// StringInterner and ThreadPool tests.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "src/util/intern.h"
#include "src/util/thread_pool.h"

namespace vq {
namespace {

TEST(StringInterner, AssignsSequentialIds) {
  StringInterner interner;
  EXPECT_EQ(interner.intern("alpha"), 0u);
  EXPECT_EQ(interner.intern("beta"), 1u);
  EXPECT_EQ(interner.intern("gamma"), 2u);
  EXPECT_EQ(interner.size(), 3u);
}

TEST(StringInterner, InternIsIdempotent) {
  StringInterner interner;
  const auto id = interner.intern("x");
  EXPECT_EQ(interner.intern("x"), id);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(StringInterner, NameRoundTrip) {
  StringInterner interner;
  const auto id = interner.intern("comcast-like");
  EXPECT_EQ(interner.name(id), "comcast-like");
}

TEST(StringInterner, UnknownIdThrows) {
  StringInterner interner;
  EXPECT_THROW((void)interner.name(0), std::out_of_range);
}

TEST(StringInterner, LookupWithoutInterning) {
  StringInterner interner;
  EXPECT_FALSE(interner.lookup("missing").has_value());
  (void)interner.intern("present");
  ASSERT_TRUE(interner.lookup("present").has_value());
  EXPECT_EQ(*interner.lookup("present"), 0u);
  EXPECT_EQ(interner.size(), 1u);  // lookup never interns
}

TEST(StringInterner, ViewsStayValidAcrossGrowth) {
  StringInterner interner;
  const std::string_view first = interner.name(interner.intern("first"));
  for (int i = 0; i < 10'000; ++i) {
    (void)interner.intern("filler-" + std::to_string(i));
  }
  EXPECT_EQ(first, "first");
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool{2};
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> hits(1'000);
  pool.parallel_for(0, hits.size(),
                    [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool{2};
  pool.parallel_for(5, 5, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool{1};
  EXPECT_EQ(pool.worker_count(), 1u);
  std::vector<int> order;
  pool.parallel_for(0, 5, [&order](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, WaitIdleOnFreshPoolReturnsImmediately) {
  ThreadPool pool{2};
  pool.wait_idle();  // must not deadlock
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool{0};
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ThreadPool, ParallelForRethrowsFirstExceptionOnCaller) {
  ThreadPool pool{4};
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(0, 1'000,
                        [&ran](std::size_t i) {
                          if (i == 13) {
                            throw std::invalid_argument{"boom"};
                          }
                          ran.fetch_add(1);
                        }),
      std::invalid_argument);
  // Unclaimed iterations are cancelled once the exception fires.
  EXPECT_LT(ran.load(), 1'000);
  // The pool survives and keeps working.
  std::atomic<int> after{0};
  pool.parallel_for(0, 100, [&after](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 100);
}

TEST(ThreadPool, ParallelForPropagatesExceptionsFromEveryWorker) {
  // Whichever participant throws — worker or caller — the exception must
  // surface on the calling thread instead of std::terminate.
  ThreadPool pool{4};
  for (int trial = 0; trial < 20; ++trial) {
    EXPECT_THROW(pool.parallel_for(0, 64,
                                   [](std::size_t) {
                                     throw std::runtime_error{"all fail"};
                                   }),
                 std::runtime_error);
  }
}

TEST(ThreadPool, NestedParallelForCompletes) {
  // A worker running an outer iteration may itself call parallel_for (the
  // pipeline's epoch x shard nesting). With as many outer iterations as
  // workers this used to starve: every worker blocked waiting on inner
  // tasks that no thread was left to run.
  ThreadPool pool{2};
  std::atomic<int> total{0};
  pool.parallel_for(0, 4, [&](std::size_t) {
    pool.parallel_for(0, 8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, NestedParallelForPropagatesInnerException) {
  ThreadPool pool{3};
  EXPECT_THROW(
      pool.parallel_for(0, 3,
                        [&](std::size_t) {
                          pool.parallel_for(0, 4, [](std::size_t j) {
                            if (j == 2) {
                              throw std::invalid_argument{"inner"};
                            }
                          });
                        }),
      std::invalid_argument);
}

}  // namespace
}  // namespace vq
