// StringInterner and ThreadPool tests.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "src/util/intern.h"
#include "src/util/thread_pool.h"

namespace vq {
namespace {

TEST(StringInterner, AssignsSequentialIds) {
  StringInterner interner;
  EXPECT_EQ(interner.intern("alpha"), 0u);
  EXPECT_EQ(interner.intern("beta"), 1u);
  EXPECT_EQ(interner.intern("gamma"), 2u);
  EXPECT_EQ(interner.size(), 3u);
}

TEST(StringInterner, InternIsIdempotent) {
  StringInterner interner;
  const auto id = interner.intern("x");
  EXPECT_EQ(interner.intern("x"), id);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(StringInterner, NameRoundTrip) {
  StringInterner interner;
  const auto id = interner.intern("comcast-like");
  EXPECT_EQ(interner.name(id), "comcast-like");
}

TEST(StringInterner, UnknownIdThrows) {
  StringInterner interner;
  EXPECT_THROW((void)interner.name(0), std::out_of_range);
}

TEST(StringInterner, LookupWithoutInterning) {
  StringInterner interner;
  EXPECT_FALSE(interner.lookup("missing").has_value());
  (void)interner.intern("present");
  ASSERT_TRUE(interner.lookup("present").has_value());
  EXPECT_EQ(*interner.lookup("present"), 0u);
  EXPECT_EQ(interner.size(), 1u);  // lookup never interns
}

TEST(StringInterner, ViewsStayValidAcrossGrowth) {
  StringInterner interner;
  const std::string_view first = interner.name(interner.intern("first"));
  for (int i = 0; i < 10'000; ++i) {
    (void)interner.intern("filler-" + std::to_string(i));
  }
  EXPECT_EQ(first, "first");
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool{2};
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> hits(1'000);
  pool.parallel_for(0, hits.size(),
                    [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool{2};
  pool.parallel_for(5, 5, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool{1};
  EXPECT_EQ(pool.worker_count(), 1u);
  std::vector<int> order;
  pool.parallel_for(0, 5, [&order](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, WaitIdleOnFreshPoolReturnsImmediately) {
  ThreadPool pool{2};
  pool.wait_idle();  // must not deadlock
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool{0};
  EXPECT_GE(pool.worker_count(), 1u);
}

}  // namespace
}  // namespace vq
