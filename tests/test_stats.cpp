// StreamingSummary, EmpiricalCdf, streak utilities, Jaccard.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/stats/cdf.h"
#include "src/stats/jaccard.h"
#include "src/stats/summary.h"
#include "src/stats/timeseries.h"
#include "src/util/rng.h"

namespace vq {
namespace {

TEST(StreamingSummary, EmptyDefaults) {
  const StreamingSummary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(StreamingSummary, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.5, -3.0, 7.0, 0.5};
  StreamingSummary s;
  for (const double x : xs) s.add(x);
  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), mean);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_EQ(s.min(), -3.0);
  EXPECT_EQ(s.max(), 7.0);
  EXPECT_DOUBLE_EQ(s.sum(), 8.0);
}

TEST(StreamingSummary, SingleSampleHasZeroVariance) {
  StreamingSummary s;
  s.add(4.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(StreamingSummary, MergeEqualsPooledStream) {
  Xoshiro256ss rng{17};
  StreamingSummary a, b, pooled;
  for (int i = 0; i < 1'000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    pooled.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  EXPECT_NEAR(a.mean(), pooled.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), pooled.variance(), 1e-9);
  EXPECT_EQ(a.min(), pooled.min());
  EXPECT_EQ(a.max(), pooled.max());
}

TEST(StreamingSummary, MergeWithEmptyIsIdentity) {
  StreamingSummary a;
  a.add(1.0);
  a.add(2.0);
  StreamingSummary empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  StreamingSummary b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(EmpiricalCdf, EmptyBehaviour) {
  const EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_EQ(cdf.at(1.0), 0.0);
  EXPECT_THROW((void)cdf.quantile(0.5), std::invalid_argument);
  EXPECT_TRUE(cdf.curve(5).empty());
}

TEST(EmpiricalCdf, AtComputesInclusiveFraction) {
  const EmpiricalCdf cdf{std::vector<double>{1, 2, 3, 4}};
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(99.0), 1.0);
}

TEST(EmpiricalCdf, QuantileMatchesDefinition) {
  const EmpiricalCdf cdf{std::vector<double>{10, 20, 30, 40, 50}};
  EXPECT_EQ(cdf.quantile(0.0), 10.0);
  EXPECT_EQ(cdf.quantile(0.2), 10.0);
  EXPECT_EQ(cdf.quantile(0.21), 20.0);
  EXPECT_EQ(cdf.quantile(0.5), 30.0);
  EXPECT_EQ(cdf.quantile(1.0), 50.0);
  EXPECT_THROW((void)cdf.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)cdf.quantile(1.1), std::invalid_argument);
}

TEST(EmpiricalCdf, QuantileIsInverseOfAt) {
  Xoshiro256ss rng{21};
  std::vector<double> xs;
  for (int i = 0; i < 1'000; ++i) xs.push_back(rng.uniform01());
  const EmpiricalCdf cdf{xs};
  for (const double q : {0.1, 0.25, 0.5, 0.9, 0.99}) {
    EXPECT_GE(cdf.at(cdf.quantile(q)), q - 1e-9);
  }
}

TEST(EmpiricalCdf, CurveIsMonotone) {
  Xoshiro256ss rng{22};
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.normal());
  const EmpiricalCdf cdf{xs};
  const auto curve = cdf.curve(20);
  ASSERT_EQ(curve.size(), 20u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].value, curve[i].value);
    EXPECT_LT(curve[i - 1].probability, curve[i].probability);
  }
  EXPECT_DOUBLE_EQ(curve.front().probability, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().probability, 1.0);
}

TEST(EmpiricalCdf, TableContainsHeaderAndRows) {
  const EmpiricalCdf cdf{std::vector<double>{1, 2, 3}};
  const std::string table = cdf.table(3, "metric");
  EXPECT_NE(table.find("metric"), std::string::npos);
  EXPECT_NE(table.find("P(X<=v)"), std::string::npos);
  // Header plus 3 data rows -> 4 newline-terminated lines.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 4);
}

TEST(Streaks, FromBooleanSeries) {
  constexpr std::array<bool, 8> kActive = {true, true, false, true,
                                           false, true, true, true};
  EXPECT_EQ(streak_lengths(kActive), (std::vector<std::uint32_t>{2, 1, 3}));
}

TEST(Streaks, EmptyAndAllFalse) {
  EXPECT_TRUE(streak_lengths({}).empty());
  constexpr std::array<bool, 2> kOff = {false, false};
  EXPECT_TRUE(streak_lengths(kOff).empty());
}

TEST(Streaks, TrailingRunIsCounted) {
  constexpr std::array<bool, 3> kActive = {false, true, true};
  EXPECT_EQ(streak_lengths(kActive), (std::vector<std::uint32_t>{2}));
}

TEST(Streaks, FromEpochIndices) {
  const std::vector<std::uint32_t> epochs = {1, 2, 5, 7, 8, 9};
  EXPECT_EQ(streak_lengths_from_epochs(epochs),
            (std::vector<std::uint32_t>{2, 1, 3}));
  const auto streaks = streaks_from_epochs(epochs);
  ASSERT_EQ(streaks.size(), 3u);
  EXPECT_EQ(streaks[0].start, 1u);
  EXPECT_EQ(streaks[0].length, 2u);
  EXPECT_EQ(streaks[1].start, 5u);
  EXPECT_EQ(streaks[2].start, 7u);
  EXPECT_EQ(streaks[2].length, 3u);
}

TEST(Streaks, MatchesBooleanFormulationProperty) {
  Xoshiro256ss rng{33};
  for (int trial = 0; trial < 50; ++trial) {
    std::array<bool, 100> series{};
    std::vector<std::uint32_t> epochs;
    for (std::uint32_t i = 0; i < 100; ++i) {
      series[i] = rng.bernoulli(0.4);
      if (series[i]) epochs.push_back(i);
    }
    EXPECT_EQ(streak_lengths(series), streak_lengths_from_epochs(epochs));
  }
}

TEST(Streaks, MedianAndMax) {
  EXPECT_EQ(median_streak({}), 0u);
  EXPECT_EQ(median_streak({5}), 5u);
  EXPECT_EQ(median_streak({1, 9, 3}), 3u);
  EXPECT_EQ(median_streak({4, 1, 3, 2}), 2u);  // lower median
  EXPECT_EQ(max_streak(std::vector<std::uint32_t>{1, 9, 3}), 9u);
  EXPECT_EQ(max_streak(std::vector<std::uint32_t>{}), 0u);
}

TEST(Jaccard, BasicCases) {
  const std::vector<std::uint64_t> a = {1, 2, 3};
  const std::vector<std::uint64_t> b = {2, 3, 4};
  EXPECT_DOUBLE_EQ(jaccard_index(a, b), 0.5);
  EXPECT_DOUBLE_EQ(jaccard_index(a, a), 1.0);
  const std::vector<std::uint64_t> disjoint = {9, 10};
  EXPECT_DOUBLE_EQ(jaccard_index(a, disjoint), 0.0);
  EXPECT_DOUBLE_EQ(jaccard_index({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(jaccard_index(a, {}), 0.0);
}

TEST(Jaccard, OrderIndependent) {
  const std::vector<std::uint64_t> a = {5, 1, 3};
  const std::vector<std::uint64_t> b = {3, 7, 1};
  EXPECT_DOUBLE_EQ(jaccard_index(a, b), jaccard_index(b, a));
  EXPECT_DOUBLE_EQ(jaccard_index(a, b), 0.5);
}

}  // namespace
}  // namespace vq
