// Fixture: demo wire writer — emits the magic and version by referencing
// the header constants, never by spelling the bytes.
#include "wire_format.h"

unsigned long write_demo(char* out) {
  for (int i = 0; i < 4; ++i) out[i] = kDemoMagic[i];
  out[4] = static_cast<char>(kDemoVersion);
  return 5;
}
