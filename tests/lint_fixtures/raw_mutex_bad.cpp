// Fixture: raw synchronisation primitives outside src/util/mutex.h.  Every
// std:: mutex/condvar type and every manual .lock()/.unlock() must route
// through vq::Mutex / MutexLock / CondVar so the thread-safety annotations
// see every acquisition.
#include <condition_variable>
#include <mutex>

std::mutex gate;                 // LINT-EXPECT: raw-mutex
std::condition_variable wakeup;  // LINT-EXPECT: raw-mutex

int guarded_sum(int x) {
  gate.lock();  // LINT-EXPECT: raw-mutex
  x += 1;
  gate.unlock();  // LINT-EXPECT: raw-mutex
  {
    std::lock_guard lk{gate};  // LINT-EXPECT: raw-mutex
    x += 2;
  }
  return x;
}
