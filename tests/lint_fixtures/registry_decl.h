// Fixture: the unordered-container member is declared here; the violating
// iteration lives in registry_use.cpp.  Exercises the cross-file registry.
#pragma once

template <typename V>
class FlatMap64;

struct Fold {
  FlatMap64<int> leaves_by_key;
};
