// Fixture: demo wire reader — validates the magic and version against the
// same header constants the writer uses.
#include "wire_format.h"

bool read_demo(const char* in) {
  for (int i = 0; i < 4; ++i) {
    if (in[i] != kDemoMagic[i]) return false;
  }
  return in[4] == static_cast<char>(kDemoVersion);
}
