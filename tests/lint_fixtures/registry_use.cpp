// Fixture: iterates a member whose unordered type is only visible in
// registry_decl.h — the linter must resolve the name across files.
#include "registry_decl.h"

int sum(const Fold& fold) {
  int total = 0;
  fold.leaves_by_key.for_each([&](unsigned long long k, int v) {  // LINT-EXPECT: unordered-iter
    total += v + static_cast<int>(k);
  });
  return total;
}
