// Fixture: iterates a member whose unordered type is only visible in
// registry_decl.h — the linter must resolve the name across files.  The
// body accumulates a float in hash order, the flow the rule watches.
#include "registry_decl.h"

double sum(const Fold& fold) {
  double total = 0;
  fold.leaves_by_key.for_each([&](unsigned long long k, int v) {  // LINT-EXPECT: unordered-iter
    total += v + static_cast<double>(k);
  });
  return total;
}
