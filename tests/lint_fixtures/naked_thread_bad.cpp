// Fixture: raw thread creation outside util/thread_pool.  The
// hardware_concurrency query on the last line is allowed (it is a static
// member call, not thread creation).
#include <future>
#include <thread>

int run_detached() {
  std::thread worker{[] {}};  // LINT-EXPECT: naked-thread
  worker.join();
  auto f = std::async([] { return 1; });  // LINT-EXPECT: naked-thread
  return f.get() + static_cast<int>(std::thread::hardware_concurrency());
}
