// Fixture: stale reader — checks the magic but hard-codes the version, so a bump would pass it by.  LINT-EXPECT: wire-contract
#include "wire_format.h"

bool read_demo_stale(const char* in) {
  for (int i = 0; i < 4; ++i) {
    if (in[i] != kDemoMagic[i]) return false;
  }
  return in[4] == 3;
}
