// Fixture: a file-wide comma-separated suppression list.
// vq-lint: allow-file(wall-clock, naked-thread) — fixture exercising the
// file-wide grammar.
#include <cstdlib>
#include <thread>

int file_wide() {
  std::thread t{[] {}};
  t.join();
  return std::rand();
}
