// Fixture: direct console output from the analysis layer.
#include <cstdio>
#include <iostream>

void debug_dump(int n) {
  std::printf("n=%d\n", n);  // LINT-EXPECT: io-in-core
  std::cerr << n << "\n";  // LINT-EXPECT: io-in-core
}
