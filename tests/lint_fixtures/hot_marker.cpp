// Fixture: a `// vq:hot` marker line names the next function definition as
// a kernel; allocation, IO, throw and std::string construction inside it
// are hot-path findings.  The sibling below the kernel is unmarked and may
// do all of that freely.  Raw strings and comments mentioning the banned
// constructs (or the marker itself mid-sentence) must never fire.

#include <string>

// vq:hot
int hot_kernel(int n) {
  int* scratch = new int[8];  // LINT-EXPECT: hot-path
  std::string label = "k";    // LINT-EXPECT: hot-path
  const char* doc = R"(throw and new inside a raw string are data)";
  // a comment saying throw std::string new malloc() is just prose
  scratch[0] = n;
  const int out = scratch[0] + static_cast<int>(label.size()) +
                  static_cast<int>(doc[0]);
  delete[] scratch;
  return out;
}

// mentioning the vq:hot marker mid-sentence is prose, not a marker
int cold_sibling(int n) {
  std::string label = "fine outside the marked kernel";
  return n + static_cast<int>(label.size());
}
