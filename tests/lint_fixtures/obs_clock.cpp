// Fixture: steady-clock timing — sanctioned inside src/obs/ (timing is that
// component's job), a wall-clock violation anywhere else in src/.
#include <chrono>

unsigned long long stamp_ns() {
  const auto t = std::chrono::steady_clock::now();  // LINT-EXPECT: wall-clock
  return static_cast<unsigned long long>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          t.time_since_epoch())
          .count());
}

double elapsed_ms(unsigned long long begin_ns) {
  const auto end = std::chrono::high_resolution_clock::now();  // LINT-EXPECT: wall-clock
  const auto end_ns = static_cast<unsigned long long>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          end.time_since_epoch())
          .count());
  return static_cast<double>(end_ns - begin_ns) / 1e6;
}
