// Fixture: spells the demo magic outside the contract's declared
// writer/reader/site set — both as a string literal and as a
// comma-separated char initialiser.
const char* rogue_tag() {
  return "VQXX";  // LINT-EXPECT: wire-contract
}

const char kRogue[4] = {'V', 'Q', 'X', 'X'};  // LINT-EXPECT: wire-contract
