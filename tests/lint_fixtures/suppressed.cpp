// Fixture: line-level suppressions on the violating line and the line
// directly above both silence the finding.
#include <cstdio>
#include <unordered_map>

std::unordered_map<int, double> sizes;

double total() {
  double n = 0;
  // vq-lint: allow(unordered-iter) — fp addition order is accepted (fixture).
  for (const auto& [k, v] : sizes) {
    n += v + k;
  }
  std::printf("total\n");  // vq-lint: allow(io-in-core) — fixture.
  return n;
}
