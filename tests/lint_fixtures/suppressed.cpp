// Fixture: line-level suppressions on the violating line and the line
// directly above both silence the finding.
#include <cstdio>
#include <unordered_map>

std::unordered_map<int, int> sizes;

int total() {
  int n = 0;
  // vq-lint: allow(unordered-iter) — order-independent sum (fixture).
  for (const auto& [k, v] : sizes) {
    n += v + k;
  }
  std::printf("total\n");  // vq-lint: allow(io-in-core) — fixture.
  return n;
}
