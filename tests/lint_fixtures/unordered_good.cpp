// Fixture: flows the flow-aware unordered-iter rule must leave alone —
// appending followed by a sort inside the window, and integer accumulation
// (integer addition commutes, so hash order cannot change the result).
#include <algorithm>
#include <unordered_map>
#include <vector>

std::unordered_map<unsigned long long, int> totals2;

std::vector<int> dump_sorted() {
  std::vector<int> out;
  for (const auto& [key, value] : totals2) {
    out.push_back(value + static_cast<int>(key));
  }
  std::sort(out.begin(), out.end());
  return out;
}

long long count_all() {
  long long n = 0;
  for (const auto& [key, value] : totals2) {
    n += value;
  }
  return n;
}
