// Fixture: iteration followed by a sort within the window is clean.
#include <algorithm>
#include <unordered_map>
#include <vector>

std::unordered_map<unsigned long long, int> totals2;

std::vector<int> dump_sorted() {
  std::vector<int> out;
  for (const auto& [key, value] : totals2) {
    out.push_back(value + static_cast<int>(key));
  }
  std::sort(out.begin(), out.end());
  return out;
}
