// Fixture: a bare throw in the ingest layer is flagged; one that carries a
// position is clean.
#include <stdexcept>
#include <string>

void fail_bare() {
  throw std::runtime_error{"parse error"};  // LINT-EXPECT: positioned-throw
}

void fail_positioned(unsigned long long line_no) {
  throw std::runtime_error{"parse error at line " + std::to_string(line_no)};
}
