// Fixture: header that declares and pins the demo wire constants the
// wire-contract tests reference from their in-test manifest.
#pragma once

inline constexpr char kDemoMagic[4] = {'V', 'Q', 'X', 'X'};
inline constexpr unsigned kDemoVersion = 3;
