// Fixture: nondeterministic time/randomness sources in a core path.
#include <chrono>
#include <cstdlib>

int jitter() {
  return std::rand();  // LINT-EXPECT: wall-clock
}

double now_seconds() {
  const auto t = std::chrono::steady_clock::now();  // LINT-EXPECT: wall-clock
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}
