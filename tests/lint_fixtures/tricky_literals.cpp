// Fixture: patterns inside comments, string literals, raw strings,
// char/numeric literals, and preprocessor lines must never fire.
// std::printf("in a comment") and rand() should not fire here.
#include <string>

/* block comment mentioning std::cout << rand() << std::thread */

// Preprocessor tokens are exempt from every rule: a macro may *expand* to
// a lock at a sanctioned site without being one itself.  The continuation
// keeps the second line inside the directive.
#define VQ_TRICKY_LOCK(m) \
  (m).lock()
#define VQ_TRICKY_MUTEX std::mutex

std::string docs() {
  std::string s = "call std::printf(\"x\") or rand() here";
  s += R"(std::cerr << "raw" << std::thread)";
  s += "gate.unlock() and std::mutex in a string are data";
  const int big = 1'000'000;
  const double sci = 1.5e-3;
  const char quote = '\'';
  return s + std::to_string(big + static_cast<int>(sci)) + quote;
}
