// Fixture: patterns inside comments, string literals, raw strings, and
// char/numeric literals must never fire.
// std::printf("in a comment") and rand() should not fire here.
#include <string>

/* block comment mentioning std::cout << rand() << std::thread */
std::string docs() {
  std::string s = "call std::printf(\"x\") or rand() here";
  s += R"(std::cerr << "raw" << std::thread)";
  const int big = 1'000'000;
  const char quote = '\'';
  return s + std::to_string(big) + quote;
}
