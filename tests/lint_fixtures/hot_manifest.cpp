// Fixture: kernels named by hot-path manifest entries.  The expectations
// hold only when the test passes a manifest naming `function vq::fold_rows`
// and `namespace vq::serve`; with no manifest the file is clean (the
// HotManifestUnconfiguredIsClean test relies on that).
#include <cstdio>
#include <memory>

namespace vq {

int fold_rows(const int* xs, int n) {
  auto scratch = std::make_unique<int[]>(8);  // LINT-EXPECT: hot-path
  int acc = 0;
  for (int i = 0; i < n; ++i) acc += xs[i] + static_cast<int>(scratch[0]);
  return acc;
}

namespace serve {

int pump(int x) {
  std::printf("x=%d\n", x);  // LINT-EXPECT: hot-path
  return x + 1;
}

}  // namespace serve

int cold_path(int x) {
  std::printf("cold: %d\n", x);
  return x;
}

}  // namespace vq
