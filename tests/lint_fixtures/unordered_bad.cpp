// Fixture: hash-order iteration that lets the order reach output must be
// flagged — by appending to an ordered vector, or by accumulating a float
// (fp addition does not commute bit-exactly).
// Marker comments (LINT hyphen EXPECT, spelled out to stay out of the
// parser's way here) tag the lines findings are expected on; fixtures are
// lint inputs, never compiled or linted by CI itself.
#include <unordered_map>
#include <vector>

std::unordered_map<unsigned long long, int> totals;

std::vector<int> dump() {
  std::vector<int> out;
  for (const auto& [key, value] : totals) {  // LINT-EXPECT: unordered-iter
    out.push_back(value + static_cast<int>(key));
  }
  return out;
}

double mean_value() {
  double acc = 0;
  for (const auto& [key, value] : totals) {  // LINT-EXPECT: unordered-iter
    acc += static_cast<double>(value);
  }
  return acc / static_cast<double>(totals.size());
}
