#include "src/baseline/hhh.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_support.h"

namespace vq {
namespace {

using test::Attrs;

const HhhCluster* find_hhh_cluster(const std::vector<HhhCluster>& clusters,
                                   std::uint8_t mask, const Attrs& attrs) {
  const ClusterKey key = ClusterKey::pack(mask, attrs.vec());
  const auto it =
      std::find_if(clusters.begin(), clusters.end(),
                   [&](const HhhCluster& c) { return c.key == key; });
  return it == clusters.end() ? nullptr : &*it;
}

TEST(Hhh, EmptyInputYieldsNothing) {
  EXPECT_TRUE(find_hhh({}, {}, {}, Metric::kBufRatio).empty());
}

TEST(Hhh, NoProblemsYieldsNothing) {
  std::vector<Session> sessions;
  test::add_sessions(sessions, 0, Attrs{.cdn = 1}, test::good_quality(), 100);
  EXPECT_TRUE(find_hhh(sessions, {}, {}, Metric::kBufRatio).empty());
}

TEST(Hhh, FindsHeavyLeaf) {
  std::vector<Session> sessions;
  // One leaf with 60% of all problem mass.
  test::add_sessions(sessions, 0, Attrs{.site = 1, .cdn = 1, .asn = 1},
                     test::bad_buffering(), 60);
  // Scattered mass elsewhere, each leaf well below phi.
  for (std::uint16_t asn = 10; asn < 50; ++asn) {
    test::add_sessions(sessions, 0, Attrs{.site = 2, .cdn = 2, .asn = asn},
                       test::bad_buffering(), 1);
  }
  HhhParams params;
  params.phi = 0.2;
  const auto result = find_hhh(sessions, {}, params, Metric::kBufRatio);
  ASSERT_FALSE(result.empty());
  // The heavy full-arity leaf is claimed at the bottom level.
  const auto* leaf = find_hhh_cluster(
      result, kFullMask, Attrs{.site = 1, .cdn = 1, .asn = 1});
  ASSERT_NE(leaf, nullptr);
  EXPECT_DOUBLE_EQ(leaf->residual_mass, 60.0);
}

TEST(Hhh, DiscountsClaimedDescendants) {
  std::vector<Session> sessions;
  // Two heavy leaves under the same CDN, each above phi: both get claimed
  // at the leaf level and the CDN ancestor must NOT reappear with their
  // mass (its residual is only the unclaimed remainder).
  test::add_sessions(sessions, 0, Attrs{.cdn = 1, .asn = 1},
                     test::bad_buffering(), 40);
  test::add_sessions(sessions, 0, Attrs{.cdn = 1, .asn = 2},
                     test::bad_buffering(), 40);
  test::add_sessions(sessions, 0, Attrs{.cdn = 1, .asn = 3},
                     test::bad_buffering(), 5);
  test::add_sessions(sessions, 0, Attrs{.cdn = 2, .asn = 4},
                     test::bad_buffering(), 15);
  HhhParams params;
  params.phi = 0.3;  // threshold mass = 30
  const auto result = find_hhh(sessions, {}, params, Metric::kBufRatio);
  // Both 40-mass leaves found.
  EXPECT_NE(find_hhh_cluster(result, kFullMask, Attrs{.cdn = 1, .asn = 1}),
            nullptr);
  EXPECT_NE(find_hhh_cluster(result, kFullMask, Attrs{.cdn = 1, .asn = 2}),
            nullptr);
  // CDN1's residual after discounting = 5 < 30: no CDN1 cluster at any
  // coarser level.
  for (const HhhCluster& c : result) {
    if (c.key.arity() < kNumDims && c.key.has(AttrDim::kCdn)) {
      EXPECT_NE(c.key.value(AttrDim::kCdn), 1);
    }
  }
}

TEST(Hhh, AggregatesDispersedMassAtAncestor) {
  std::vector<Session> sessions;
  // 30 leaves of mass 2 under CDN 7 (each below phi), plus background.
  for (std::uint16_t asn = 0; asn < 30; ++asn) {
    test::add_sessions(sessions, 0, Attrs{.cdn = 7, .asn = asn},
                       test::bad_buffering(), 2);
  }
  test::add_sessions(sessions, 0, Attrs{.cdn = 1, .asn = 100},
                     test::bad_buffering(), 10);
  HhhParams params;
  params.phi = 0.5;  // threshold mass = 35
  const auto result = find_hhh(sessions, {}, params, Metric::kBufRatio);
  ASSERT_FALSE(result.empty());
  // The dispersed mass (60) only crosses the threshold at an ancestor that
  // contains all of CDN 7's leaves.
  bool found_cdn7_ancestor = false;
  for (const HhhCluster& c : result) {
    if (c.key.has(AttrDim::kCdn) && c.key.value(AttrDim::kCdn) == 7 &&
        !c.key.has(AttrDim::kAsn)) {
      found_cdn7_ancestor = true;
      EXPECT_DOUBLE_EQ(c.residual_mass, 60.0);
    }
  }
  EXPECT_TRUE(found_cdn7_ancestor);
}

TEST(Hhh, ResultsSortedByMass) {
  std::vector<Session> sessions;
  test::add_sessions(sessions, 0, Attrs{.cdn = 1, .asn = 1},
                     test::bad_buffering(), 50);
  test::add_sessions(sessions, 0, Attrs{.cdn = 2, .asn = 2},
                     test::bad_buffering(), 30);
  HhhParams params;
  params.phi = 0.2;
  const auto result = find_hhh(sessions, {}, params, Metric::kBufRatio);
  for (std::size_t i = 1; i < result.size(); ++i) {
    EXPECT_GE(result[i - 1].residual_mass, result[i].residual_mass);
  }
}

TEST(Hhh, RespectsMetricSelection) {
  std::vector<Session> sessions;
  test::add_sessions(sessions, 0, Attrs{.cdn = 1}, test::failed_join(), 50);
  HhhParams params;
  params.phi = 0.5;
  EXPECT_FALSE(find_hhh(sessions, {}, params, Metric::kJoinFailure).empty());
  EXPECT_TRUE(find_hhh(sessions, {}, params, Metric::kBufRatio).empty());
}

}  // namespace
}  // namespace vq
