// Shared fixtures/helpers for the vidqual test suite.

#pragma once

#include <cstdint>
#include <vector>

#include "src/core/attributes.h"
#include "src/core/session.h"

namespace vq::test {

/// Quality presets relative to the default ProblemThresholds.
inline QualityMetrics good_quality() {
  return {.buffering_ratio = 0.01F,
          .bitrate_kbps = 3000.0F,
          .join_time_ms = 1500.0F,
          .join_failed = false};
}

inline QualityMetrics bad_buffering() {
  QualityMetrics q = good_quality();
  q.buffering_ratio = 0.20F;
  return q;
}

inline QualityMetrics bad_bitrate() {
  QualityMetrics q = good_quality();
  q.bitrate_kbps = 350.0F;
  return q;
}

inline QualityMetrics bad_join_time() {
  QualityMetrics q = good_quality();
  q.join_time_ms = 25'000.0F;
  return q;
}

inline QualityMetrics failed_join() {
  QualityMetrics q{};
  q.join_failed = true;
  q.join_time_ms = 30'000.0F;
  return q;
}

/// Compact attribute construction: unspecified dims default to value 0.
struct Attrs {
  std::uint16_t site = 0;
  std::uint16_t cdn = 0;
  std::uint16_t asn = 0;
  std::uint16_t conn = 0;
  std::uint16_t player = 0;
  std::uint16_t browser = 0;
  std::uint16_t vod = 0;

  [[nodiscard]] AttrVec vec() const {
    AttrVec v;
    v[AttrDim::kSite] = site;
    v[AttrDim::kCdn] = cdn;
    v[AttrDim::kAsn] = asn;
    v[AttrDim::kConnType] = conn;
    v[AttrDim::kPlayer] = player;
    v[AttrDim::kBrowser] = browser;
    v[AttrDim::kVodLive] = vod;
    return v;
  }
};

inline Session make_session(std::uint32_t epoch, const Attrs& attrs,
                            const QualityMetrics& quality) {
  return Session{.attrs = attrs.vec(), .epoch = epoch, .quality = quality};
}

/// n copies of the same session.
inline void add_sessions(std::vector<Session>& out, std::uint32_t epoch,
                         const Attrs& attrs, const QualityMetrics& quality,
                         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(make_session(epoch, attrs, quality));
  }
}

}  // namespace vq::test
