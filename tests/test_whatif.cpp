// What-if engine (§5): exact arithmetic on hand-built traces plus
// invariant checks.

#include "src/core/whatif.h"

#include <gtest/gtest.h>

#include "tests/test_support.h"

namespace vq {
namespace {

using test::Attrs;

PipelineConfig small_config() {
  PipelineConfig config;
  config.cluster_params.min_sessions = 50;
  return config;
}

/// One epoch: CDN1 carries 100 sessions with 60 buffering problems; the
/// background carries 900 sessions with 36 problems spread over 18 ASNs.
/// Global ratio 0.096, CDN1 ratio 0.6, attributed mass 60, and fixing CDN1
/// to the global average alleviates 60 * (1 - 0.096/0.6) = 50.4 of the 96
/// problem sessions: fraction 0.525.
std::vector<Session> single_cause_epoch(std::uint32_t epoch) {
  std::vector<Session> sessions;
  // Four ASN sub-cells of 25 sessions each: individually below the
  // 50-session significance floor, so the CDN is the unique explanation.
  for (std::uint16_t asn = 1; asn <= 4; ++asn) {
    test::add_sessions(sessions, epoch, Attrs{.cdn = 1, .asn = asn},
                       test::bad_buffering(), 15);
    test::add_sessions(sessions, epoch, Attrs{.cdn = 1, .asn = asn},
                       test::good_quality(), 10);
  }
  // Background: 40 problems in 900 sessions, diluted across 18 ASNs so no
  // background cluster is elevated.
  for (std::uint16_t asn = 10; asn < 28; ++asn) {
    test::add_sessions(sessions, epoch, Attrs{.cdn = 2, .asn = asn},
                       test::bad_buffering(), 2);
    test::add_sessions(sessions, epoch, Attrs{.cdn = 2, .asn = asn},
                       test::good_quality(), 48);
  }
  return sessions;
}

TEST(WhatIf, SingleCauseExactAlleviation) {
  const PipelineResult result =
      run_pipeline(SessionTable{single_cause_epoch(0)}, small_config());
  const WhatIfAnalyzer whatif{result};

  ASSERT_EQ(whatif.distinct_critical_count(Metric::kBufRatio), 1u);
  const double fractions[] = {1.0};
  const auto sweep =
      whatif.topk_sweep(Metric::kBufRatio, RankBy::kCoverage, fractions);
  ASSERT_EQ(sweep.size(), 1u);
  // 60 * (1 - 0.096/0.6) / 96 = 0.525.
  EXPECT_NEAR(sweep[0].alleviated_fraction, 0.525, 1e-9);
}

TEST(WhatIf, SweepIsMonotoneInTopFraction) {
  std::vector<Session> sessions;
  for (std::uint32_t e = 0; e < 4; ++e) {
    auto epoch = single_cause_epoch(e);
    // Add a second, weaker cause.
    test::add_sessions(epoch, e, Attrs{.cdn = 3, .asn = 5},
                       test::bad_buffering(), 20);
    test::add_sessions(epoch, e, Attrs{.cdn = 3, .asn = 5},
                       test::good_quality(), 40);
    sessions.insert(sessions.end(), epoch.begin(), epoch.end());
  }
  const PipelineResult result =
      run_pipeline(SessionTable{std::move(sessions)}, small_config());
  const WhatIfAnalyzer whatif{result};

  const double fractions[] = {0.0, 0.25, 0.5, 0.75, 1.0};
  const auto sweep =
      whatif.topk_sweep(Metric::kBufRatio, RankBy::kCoverage, fractions);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GE(sweep[i].alleviated_fraction,
              sweep[i - 1].alleviated_fraction - 1e-12);
  }
  EXPECT_EQ(sweep.front().alleviated_fraction, 0.0);
  EXPECT_LE(sweep.back().alleviated_fraction, 1.0);
}

TEST(WhatIf, CoverageRankingDominatesAtEveryK) {
  // Coverage-ranked selection must alleviate at least as much as
  // prevalence- or persistence-ranked selection for the same k (the paper's
  // Fig. 11 observation).
  std::vector<Session> sessions;
  for (std::uint32_t e = 0; e < 6; ++e) {
    auto epoch = single_cause_epoch(e);
    if (e >= 4) {
      // A frequent-but-small cause late in the trace.
      test::add_sessions(epoch, e, Attrs{.cdn = 4, .asn = 6},
                         test::bad_buffering(), 15);
      test::add_sessions(epoch, e, Attrs{.cdn = 4, .asn = 6},
                         test::good_quality(), 40);
    }
    sessions.insert(sessions.end(), epoch.begin(), epoch.end());
  }
  const PipelineResult result =
      run_pipeline(SessionTable{std::move(sessions)}, small_config());
  const WhatIfAnalyzer whatif{result};
  const double fractions[] = {0.5, 1.0};
  const auto by_cov =
      whatif.topk_sweep(Metric::kBufRatio, RankBy::kCoverage, fractions);
  const auto by_prev =
      whatif.topk_sweep(Metric::kBufRatio, RankBy::kPrevalence, fractions);
  const auto by_pers =
      whatif.topk_sweep(Metric::kBufRatio, RankBy::kPersistence, fractions);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_GE(by_cov[i].alleviated_fraction,
              by_prev[i].alleviated_fraction - 1e-12);
    EXPECT_GE(by_cov[i].alleviated_fraction,
              by_pers[i].alleviated_fraction - 1e-12);
  }
}

TEST(WhatIf, MaskRestrictionFiltersSelection) {
  const PipelineResult result =
      run_pipeline(SessionTable{single_cause_epoch(0)}, small_config());
  const WhatIfAnalyzer whatif{result};
  const double fractions[] = {1.0};

  const std::uint8_t cdn_only[] = {dim_bit(AttrDim::kCdn)};
  const auto cdn_sweep = whatif.topk_sweep_masks(
      Metric::kBufRatio, RankBy::kCoverage, fractions, cdn_only);
  EXPECT_NEAR(cdn_sweep[0].alleviated_fraction, 0.525, 1e-9);

  const std::uint8_t site_only[] = {dim_bit(AttrDim::kSite)};
  const auto site_sweep = whatif.topk_sweep_masks(
      Metric::kBufRatio, RankBy::kCoverage, fractions, site_only);
  EXPECT_EQ(site_sweep[0].alleviated_fraction, 0.0);
}

TEST(WhatIf, ReactiveSkipsFirstEpochsOfEachStreak) {
  // CDN1 bad for epochs 0..5 (one streak of 6, equal mass per epoch).
  std::vector<Session> sessions;
  for (std::uint32_t e = 0; e < 6; ++e) {
    const auto epoch = single_cause_epoch(e);
    sessions.insert(sessions.end(), epoch.begin(), epoch.end());
  }
  const PipelineResult result =
      run_pipeline(SessionTable{std::move(sessions)}, small_config());
  const WhatIfAnalyzer whatif{result};

  const auto reactive = whatif.reactive(Metric::kBufRatio, 1);
  // Potential fixes all 6 epochs; the reactive strategy misses the first.
  EXPECT_NEAR(reactive.alleviated_fraction,
              reactive.potential_fraction * 5.0 / 6.0, 1e-9);
  ASSERT_EQ(reactive.original.size(), 6u);
  // Epoch 0 untouched; epochs 1..5 reduced.
  EXPECT_NEAR(reactive.after_reactive[0], reactive.original[0], 1e-9);
  for (std::uint32_t e = 1; e < 6; ++e) {
    EXPECT_LT(reactive.after_reactive[e], reactive.original[e]);
  }
  // outside_critical = problems - attributed = 36 background per epoch.
  for (std::uint32_t e = 0; e < 6; ++e) {
    EXPECT_NEAR(reactive.outside_critical[e], 36.0, 1e-9);
  }
}

TEST(WhatIf, ReactiveWithZeroDelayEqualsPotential) {
  std::vector<Session> sessions;
  for (std::uint32_t e = 0; e < 3; ++e) {
    const auto epoch = single_cause_epoch(e);
    sessions.insert(sessions.end(), epoch.begin(), epoch.end());
  }
  const PipelineResult result =
      run_pipeline(SessionTable{std::move(sessions)}, small_config());
  const WhatIfAnalyzer whatif{result};
  const auto reactive = whatif.reactive(Metric::kBufRatio, 0);
  EXPECT_NEAR(reactive.alleviated_fraction, reactive.potential_fraction,
              1e-12);
}

TEST(WhatIf, ReactiveLongDelayAlleviatesNothing) {
  std::vector<Session> sessions;
  for (std::uint32_t e = 0; e < 3; ++e) {
    const auto epoch = single_cause_epoch(e);
    sessions.insert(sessions.end(), epoch.begin(), epoch.end());
  }
  const PipelineResult result =
      run_pipeline(SessionTable{std::move(sessions)}, small_config());
  const WhatIfAnalyzer whatif{result};
  const auto reactive = whatif.reactive(Metric::kBufRatio, 10);
  EXPECT_EQ(reactive.alleviated_fraction, 0.0);
}

TEST(WhatIf, ProactivePersistentCauseTransfersPerfectly) {
  // The same cause is critical in every epoch: history-based selection on
  // epochs [0,3) achieves exactly the potential on epochs [3,6).
  std::vector<Session> sessions;
  for (std::uint32_t e = 0; e < 6; ++e) {
    const auto epoch = single_cause_epoch(e);
    sessions.insert(sessions.end(), epoch.begin(), epoch.end());
  }
  const PipelineResult result =
      run_pipeline(SessionTable{std::move(sessions)}, small_config());
  const WhatIfAnalyzer whatif{result};
  const auto outcome =
      whatif.proactive(Metric::kBufRatio, 1.0, 0, 3, 3, 6);
  EXPECT_GT(outcome.potential_fraction, 0.0);
  EXPECT_NEAR(outcome.alleviated_fraction, outcome.potential_fraction, 1e-9);
}

TEST(WhatIf, ProactiveMissesCausesAbsentFromHistory) {
  // Cause A lives in the training window only; cause B in the test window
  // only. History-based selection alleviates nothing in the test window.
  std::vector<Session> sessions;
  for (std::uint32_t e = 0; e < 2; ++e) {
    const auto epoch = single_cause_epoch(e);
    sessions.insert(sessions.end(), epoch.begin(), epoch.end());
  }
  for (std::uint32_t e = 2; e < 4; ++e) {
    test::add_sessions(sessions, e, Attrs{.cdn = 7, .asn = 3},
                       test::bad_buffering(), 60);
    test::add_sessions(sessions, e, Attrs{.cdn = 7, .asn = 4},
                       test::good_quality(), 40);
    test::add_sessions(sessions, e, Attrs{.cdn = 8, .asn = 5},
                       test::good_quality(), 900);
  }
  const PipelineResult result =
      run_pipeline(SessionTable{std::move(sessions)}, small_config());
  const WhatIfAnalyzer whatif{result};
  const auto outcome =
      whatif.proactive(Metric::kBufRatio, 1.0, 0, 2, 2, 4);
  EXPECT_EQ(outcome.alleviated_fraction, 0.0);
  EXPECT_GT(outcome.potential_fraction, 0.0);
}

TEST(WhatIf, EmptyResultIsAllZeros) {
  const PipelineResult result = run_pipeline(SessionTable{}, small_config());
  const WhatIfAnalyzer whatif{result};
  EXPECT_EQ(whatif.distinct_critical_count(Metric::kBufRatio), 0u);
  const double fractions[] = {1.0};
  const auto sweep =
      whatif.topk_sweep(Metric::kBufRatio, RankBy::kCoverage, fractions);
  EXPECT_EQ(sweep[0].alleviated_fraction, 0.0);
  const auto reactive = whatif.reactive(Metric::kJoinFailure, 1);
  EXPECT_EQ(reactive.alleviated_fraction, 0.0);
}

TEST(RankByName, Labels) {
  EXPECT_EQ(rank_by_name(RankBy::kCoverage), "coverage");
  EXPECT_EQ(rank_by_name(RankBy::kPrevalence), "prevalence");
  EXPECT_EQ(rank_by_name(RankBy::kPersistence), "persistence");
}

}  // namespace
}  // namespace vq
