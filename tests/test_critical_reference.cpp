// Randomized reference checks for the critical-cluster algorithm: an
// independent straight-line re-derivation of the candidate conditions is
// evaluated against critical_candidate_masks() over many random epochs.

#include <gtest/gtest.h>

#include <bit>

#include "src/core/critical_cluster.h"
#include "src/util/rng.h"
#include "tests/test_support.h"

namespace vq {
namespace {

using test::Attrs;

/// Straight-line reference: returns whether mask m is a minimal critical
/// candidate for `leaf`, checking every condition with naive loops.
bool reference_is_candidate(std::uint8_t m, const ClusterKey& leaf,
                            const EpochClusterTable& table,
                            const ProblemClusterParams& params,
                            Metric metric) {
  const double global = table.global_ratio(metric);
  const auto flagged = [&](std::uint8_t mask) {
    return is_problem_cluster(table.stats(leaf.project(mask)), global,
                              params, metric);
  };

  if (!flagged(m)) return false;

  // (b) every significant superset within the leaf is flagged.
  for (unsigned s = 1; s <= kFullMask; ++s) {
    if ((s & m) != m || s == m) continue;
    const ClusterStats stats =
        table.stats(leaf.project(static_cast<std::uint8_t>(s)));
    if (is_significant(stats, params) &&
        !flagged(static_cast<std::uint8_t>(s))) {
      return false;
    }
  }

  // (c) removing m's sessions un-flags every proper non-empty subset.
  const ClusterStats m_stats = table.stats(leaf.project(m));
  for (unsigned a = 1; a < static_cast<unsigned>(m); ++a) {
    if ((a & m) != a) continue;
    const ClusterStats remaining =
        table.stats(leaf.project(static_cast<std::uint8_t>(a)))
            .minus(m_stats);
    if (is_problem_cluster(remaining, global, params, metric)) return false;
  }

  // Minimality: no proper subset of m also satisfies (a)-(c).
  for (unsigned a = 1; a < static_cast<unsigned>(m); ++a) {
    if ((a & m) != a) continue;
    if (reference_is_candidate(static_cast<std::uint8_t>(a), leaf, table,
                               params, metric)) {
      return false;
    }
  }
  return true;
}

std::vector<Session> random_epoch(Xoshiro256ss& rng) {
  std::vector<Session> sessions;
  const int blocks = 4 + static_cast<int>(rng.below(6));
  for (int b = 0; b < blocks; ++b) {
    Attrs attrs;
    attrs.site = static_cast<std::uint16_t>(rng.below(4));
    attrs.cdn = static_cast<std::uint16_t>(rng.below(3));
    attrs.asn = static_cast<std::uint16_t>(rng.below(4));
    attrs.conn = static_cast<std::uint16_t>(rng.below(2));
    const auto total = 30 + rng.below(120);
    const double bad_fraction = rng.uniform(0.0, 0.7);
    const auto bad = static_cast<std::size_t>(
        bad_fraction * static_cast<double>(total));
    test::add_sessions(sessions, 0, attrs, test::bad_buffering(), bad);
    test::add_sessions(sessions, 0, attrs, test::good_quality(),
                       total - bad);
  }
  return sessions;
}

TEST(CriticalReference, RandomEpochsMatchReferenceDerivation) {
  Xoshiro256ss rng{20130912};
  const ProblemThresholds thresholds;
  const ProblemClusterParams params{.ratio_multiplier = 1.5,
                                    .min_sessions = 40};
  int leaves_checked = 0;
  int candidates_seen = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const std::vector<Session> sessions = random_epoch(rng);
    const EpochClusterTable table =
        aggregate_epoch(sessions, thresholds, {}, 0);

    // Every distinct leaf present in the epoch.
    FlatSet64 seen;
    for (const Session& s : sessions) {
      const ClusterKey leaf = ClusterKey::pack(kFullMask, s.attrs);
      if (seen.contains(leaf.raw())) continue;
      seen.insert(leaf.raw());
      ++leaves_checked;

      const auto fast = critical_candidate_masks(leaf, table, params,
                                                 Metric::kBufRatio);
      candidates_seen += static_cast<int>(fast.size());
      for (unsigned m = 1; m <= kFullMask; ++m) {
        const bool in_fast =
            std::find(fast.begin(), fast.end(),
                      static_cast<std::uint8_t>(m)) != fast.end();
        const bool in_reference = reference_is_candidate(
            static_cast<std::uint8_t>(m), leaf, table, params,
            Metric::kBufRatio);
        ASSERT_EQ(in_fast, in_reference)
            << "mask " << m << " trial " << trial << " leaf " << leaf.raw();
      }
    }
  }
  // Make sure the comparison was not vacuous.
  EXPECT_GT(leaves_checked, 100);
  EXPECT_GT(candidates_seen, 20);
}

TEST(CriticalReference, AttributionConservesMass) {
  // Over random epochs: attributed mass equals the number of problem
  // sessions whose leaves have a non-empty candidate set (each contributes
  // exactly 1 split across candidates).
  Xoshiro256ss rng{555};
  const ProblemThresholds thresholds;
  const ProblemClusterParams params{.ratio_multiplier = 1.5,
                                    .min_sessions = 40};
  for (int trial = 0; trial < 15; ++trial) {
    const std::vector<Session> sessions = random_epoch(rng);
    const EpochClusterTable table =
        aggregate_epoch(sessions, thresholds, {}, 0);
    const CriticalAnalysis analysis = find_critical_clusters(
        sessions, table, thresholds, params, Metric::kBufRatio);

    double expected = 0.0;
    for (const Session& s : sessions) {
      if (!thresholds.is_problem(Metric::kBufRatio, s.quality)) continue;
      const ClusterKey leaf = ClusterKey::pack(kFullMask, s.attrs);
      if (!critical_candidate_masks(leaf, table, params, Metric::kBufRatio)
               .empty()) {
        expected += 1.0;
      }
    }
    EXPECT_NEAR(analysis.attributed_mass, expected, 1e-6)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace vq
