// Anomaly detection and the Mathis TCP ceiling.

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/anomaly.h"
#include "src/simnet/tcp.h"
#include "tests/test_support.h"

namespace vq {
namespace {

using test::Attrs;

TEST(Mathis, MatchesClosedForm) {
  // 1460 B MSS, 100 ms RTT, 1% loss:
  // 1460/0.1 * 1.22/0.1 = 178120 B/s = 1424.96 kbps.
  EXPECT_NEAR(mathis_throughput_kbps(100.0, 0.01), 1'424.96, 0.5);
}

TEST(Mathis, ScalesInverselyWithRttAndSqrtLoss) {
  const double base = mathis_throughput_kbps(50.0, 0.001);
  EXPECT_NEAR(mathis_throughput_kbps(100.0, 0.001), base / 2.0, 1e-6);
  EXPECT_NEAR(mathis_throughput_kbps(50.0, 0.004), base / 2.0, 1e-6);
}

TEST(Mathis, ClampsDegenerateInputs) {
  EXPECT_GT(mathis_throughput_kbps(0.0, 0.001), 0.0);     // rtt floor
  EXPECT_GT(mathis_throughput_kbps(50.0, 0.0), 0.0);      // loss floor
  EXPECT_GT(mathis_throughput_kbps(50.0, 0.0),
            mathis_throughput_kbps(50.0, 0.01));
  EXPECT_LT(mathis_throughput_kbps(50.0, 1.0),            // loss ceiling
            mathis_throughput_kbps(50.0, 0.01));
}

TEST(TcpPool, MultipliesByConnectionCount) {
  TcpPathParams params;
  params.rtt_ms = 80.0;
  params.loss_rate = 0.002;
  params.parallel_connections = 6;
  EXPECT_NEAR(tcp_pool_ceiling_kbps(params),
              6.0 * mathis_throughput_kbps(80.0, 0.002), 1e-9);
  params.parallel_connections = 0;  // clamped to 1
  EXPECT_NEAR(tcp_pool_ceiling_kbps(params),
              mathis_throughput_kbps(80.0, 0.002), 1e-9);
}

TEST(SeriesAnomalies, QuietSeriesHasNone) {
  std::vector<double> series(50, 0.1);
  EXPECT_TRUE(detect_series_anomalies(series, {}).empty());
}

TEST(SeriesAnomalies, FlagsInjectedSpike) {
  std::vector<double> series(50, 0.1);
  for (std::size_t i = 0; i < series.size(); ++i) {
    series[i] += 0.002 * std::sin(static_cast<double>(i));  // mild noise
  }
  series[30] = 0.5;
  const auto anomalies = detect_series_anomalies(series, {});
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].index, 30u);
  EXPECT_NEAR(anomalies[0].value, 0.5, 1e-12);
  EXPECT_GT(anomalies[0].zscore, 3.0);
  EXPECT_NEAR(anomalies[0].expected, 0.1, 0.01);
}

TEST(SeriesAnomalies, SpikeDoesNotPoisonBaseline) {
  // Two identical spikes: both must be flagged (the first must not raise
  // the EWMA so much that the second passes).
  std::vector<double> series(60, 0.1);
  for (std::size_t i = 0; i < series.size(); ++i) {
    series[i] += 0.002 * std::sin(static_cast<double>(i) * 1.7);
  }
  series[25] = 0.4;
  series[40] = 0.4;
  const auto anomalies = detect_series_anomalies(series, {});
  ASSERT_EQ(anomalies.size(), 2u);
  EXPECT_EQ(anomalies[0].index, 25u);
  EXPECT_EQ(anomalies[1].index, 40u);
}

TEST(SeriesAnomalies, WarmupSuppressesEarlyFlags) {
  std::vector<double> series(20, 0.1);
  series[2] = 0.9;  // inside the warmup window
  AnomalyParams params;
  params.warmup_epochs = 8;
  EXPECT_TRUE(detect_series_anomalies(series, params).empty());
}

TEST(SeriesAnomalies, EmptyAndSingleton) {
  EXPECT_TRUE(detect_series_anomalies({}, {}).empty());
  const std::vector<double> one = {0.5};
  EXPECT_TRUE(detect_series_anomalies(one, {}).empty());
}

TEST(RatioAnomalies, FlagsEpochWithInjectedOutageAndNamesSuspects) {
  // 20 calm epochs, then one with a catastrophic CDN outage.
  std::vector<Session> sessions;
  for (std::uint32_t e = 0; e < 21; ++e) {
    const bool outage = e == 18;
    for (std::uint16_t asn = 1; asn <= 4; ++asn) {
      test::add_sessions(sessions, e, Attrs{.cdn = 1, .asn = asn},
                         outage ? test::failed_join() : test::good_quality(),
                         50);
    }
    for (std::uint16_t asn = 10; asn < 20; ++asn) {
      test::add_sessions(sessions, e, Attrs{.cdn = 2, .asn = asn},
                         test::good_quality(), 49);
      test::add_sessions(sessions, e, Attrs{.cdn = 2, .asn = asn},
                         test::failed_join(), 1);
    }
  }
  PipelineConfig config;
  config.cluster_params.min_sessions = 50;
  const PipelineResult result =
      run_pipeline(SessionTable{std::move(sessions)}, config);

  const auto anomalies = detect_ratio_anomalies(result, {});
  ASSERT_FALSE(anomalies.empty());
  bool found = false;
  for (const RatioAnomaly& a : anomalies) {
    if (a.metric != Metric::kJoinFailure || a.anomaly.index != 18) continue;
    found = true;
    ASSERT_FALSE(a.suspects.empty());
    EXPECT_TRUE(a.suspects[0].has(AttrDim::kCdn));
    EXPECT_EQ(a.suspects[0].value(AttrDim::kCdn), 1);
  }
  EXPECT_TRUE(found);
}

TEST(RatioAnomalies, CalmTraceProducesNone) {
  std::vector<Session> sessions;
  for (std::uint32_t e = 0; e < 20; ++e) {
    for (std::uint16_t asn = 1; asn <= 6; ++asn) {
      test::add_sessions(sessions, e, Attrs{.cdn = 1, .asn = asn},
                         test::good_quality(), 49);
      test::add_sessions(sessions, e, Attrs{.cdn = 1, .asn = asn},
                         test::bad_buffering(), 1);
    }
  }
  PipelineConfig config;
  config.cluster_params.min_sessions = 50;
  const PipelineResult result =
      run_pipeline(SessionTable{std::move(sessions)}, config);
  EXPECT_TRUE(detect_ratio_anomalies(result, {}).empty());
}

}  // namespace
}  // namespace vq
