#include "src/core/overlap.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tests/test_support.h"

namespace vq {
namespace {

using test::Attrs;

/// Builds a multi-epoch trace where CDN1 fails joins and ASN5 has low
/// bitrate, each in every epoch — disjoint causes per metric.
PipelineResult make_two_cause_result() {
  std::vector<Session> sessions;
  for (std::uint32_t e = 0; e < 4; ++e) {
    test::add_sessions(sessions, e, Attrs{.cdn = 1, .asn = 1},
                       test::failed_join(), 60);
    test::add_sessions(sessions, e, Attrs{.cdn = 1, .asn = 2},
                       test::good_quality(), 60);
    test::add_sessions(sessions, e, Attrs{.cdn = 2, .asn = 5},
                       test::bad_bitrate(), 60);
    test::add_sessions(sessions, e, Attrs{.cdn = 3, .asn = 5},
                       test::good_quality(), 60);
    test::add_sessions(sessions, e, Attrs{.cdn = 2, .asn = 9},
                       test::good_quality(), 700);
  }
  PipelineConfig config;
  config.cluster_params.min_sessions = 50;
  return run_pipeline(SessionTable{sessions}, config);
}

TEST(TopCriticalKeys, RanksByTotalAttributedMass) {
  const PipelineResult result = make_two_cause_result();
  const auto top = top_critical_keys(result, Metric::kJoinFailure, 10);
  ASSERT_FALSE(top.empty());
  // The strongest join-failure cluster must involve CDN 1.
  const ClusterKey first = ClusterKey::from_raw(top[0]);
  EXPECT_TRUE(first.has(AttrDim::kCdn));
  EXPECT_EQ(first.value(AttrDim::kCdn), 1);
}

TEST(TopCriticalKeys, KIsAnUpperBound) {
  const PipelineResult result = make_two_cause_result();
  EXPECT_LE(top_critical_keys(result, Metric::kJoinFailure, 1).size(), 1u);
  EXPECT_LE(top_critical_keys(result, Metric::kJoinFailure, 100).size(),
            100u);
}

TEST(TopCriticalKeys, EmptyMetricYieldsEmpty) {
  const PipelineResult result = make_two_cause_result();
  // No buffering problems were planted.
  EXPECT_TRUE(top_critical_keys(result, Metric::kBufRatio, 10).empty());
}

TEST(OverlapMatrix, DiagonalIsOneWhenNonEmpty) {
  const PipelineResult result = make_two_cause_result();
  const auto matrix = critical_overlap_matrix(result, 100);
  EXPECT_DOUBLE_EQ(
      matrix[static_cast<int>(Metric::kJoinFailure)]
            [static_cast<int>(Metric::kJoinFailure)],
      1.0);
  EXPECT_DOUBLE_EQ(matrix[static_cast<int>(Metric::kBitrate)]
                         [static_cast<int>(Metric::kBitrate)],
                   1.0);
}

TEST(OverlapMatrix, DisjointCausesHaveZeroOverlap) {
  const PipelineResult result = make_two_cause_result();
  const auto matrix = critical_overlap_matrix(result, 100);
  const double cross = matrix[static_cast<int>(Metric::kJoinFailure)]
                             [static_cast<int>(Metric::kBitrate)];
  EXPECT_DOUBLE_EQ(cross, 0.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(cross, matrix[static_cast<int>(Metric::kBitrate)]
                                [static_cast<int>(Metric::kJoinFailure)]);
}

TEST(TypeBreakdown, FractionsAreConsistent) {
  const PipelineResult result = make_two_cause_result();
  const TypeBreakdown breakdown =
      critical_type_breakdown(result, Metric::kJoinFailure);
  double total = breakdown.not_attributed + breakdown.not_in_any_cluster;
  for (const auto& [mask, fraction] : breakdown.by_mask) {
    EXPECT_GT(fraction, 0.0);
    EXPECT_NE(mask, 0);
    total += fraction;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(TypeBreakdown, EmptyMetricIsAllZero) {
  const PipelineResult result = make_two_cause_result();
  const TypeBreakdown breakdown =
      critical_type_breakdown(result, Metric::kBufRatio);
  // No buffering problem sessions at all -> breakdown is degenerate zeros.
  EXPECT_TRUE(breakdown.by_mask.empty());
  EXPECT_EQ(breakdown.not_attributed, 0.0);
  EXPECT_EQ(breakdown.not_in_any_cluster, 0.0);
}

TEST(MaskLabel, PaperStyleRendering) {
  EXPECT_EQ(mask_label(dim_bit(AttrDim::kSite)),
            "[Site, *, *, *, *, *, *]");
  EXPECT_EQ(mask_label(static_cast<std::uint8_t>(dim_bit(AttrDim::kCdn) |
                                                 dim_bit(AttrDim::kAsn))),
            "[*, Cdn, Asn, *, *, *, *]");
  EXPECT_EQ(mask_label(0), "[*, *, *, *, *, *, *]");
}

}  // namespace
}  // namespace vq
